#!/bin/sh
# Repo health check: full build, test suite, and a tracing round-trip smoke
# test (trace a run + a tiny GA tune into one JSONL file, then aggregate it
# with trace-summary and verify the expected sections appear).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== trace smoke =="
trace=$(mktemp -t inltune_trace.XXXXXX.jsonl)
trap 'rm -f "$trace"' EXIT
rm -f "$trace"

dune exec --no-build bin/main.exe -- run raytrace -s adapt --trace "$trace" > /dev/null
dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 2 --trace "$trace" > /dev/null 2>&1

for ev in inline.decision vm.compile vm.measure ga.generation; do
  grep -q "\"ev\":\"$ev\"" "$trace" || { echo "missing $ev events in trace"; exit 1; }
done

summary=$(dune exec --no-build bin/main.exe -- trace-summary "$trace")
for section in "inlining decisions" "compile-time breakdown" "GA fitness"; do
  echo "$summary" | grep -q "$section" || { echo "missing '$section' in trace-summary"; exit 1; }
done

echo "OK"
