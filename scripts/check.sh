#!/bin/sh
# Repo health check: full build, test suite, and a tracing round-trip smoke
# test (trace a run + a tiny GA tune into one JSONL file, then aggregate it
# with trace-summary and verify the expected sections appear).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== trace smoke =="
trace=$(mktemp -t inltune_trace.XXXXXX.jsonl)
trap 'rm -f "$trace"' EXIT
rm -f "$trace"

dune exec --no-build bin/main.exe -- run raytrace -s adapt --trace "$trace" > /dev/null
dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 2 --trace "$trace" > /dev/null 2>&1

for ev in inline.decision vm.compile vm.measure ga.generation; do
  grep -q "\"ev\":\"$ev\"" "$trace" || { echo "missing $ev events in trace"; exit 1; }
done

summary=$(dune exec --no-build bin/main.exe -- trace-summary "$trace")
for section in "inlining decisions" "compile-time breakdown" "GA fitness"; do
  echo "$summary" | grep -q "$section" || { echo "missing '$section' in trace-summary"; exit 1; }
done

echo "== fault-injection smoke =="
# Two injected faults hit the same genome, so its retry fails too: the run
# must quarantine it and still finish, with the failure visible in the trace.
faults=$(mktemp -t inltune_faults.XXXXXX.jsonl)
trap 'rm -f "$trace" "$faults"' EXIT
rm -f "$faults"
# --domains 1 keeps evaluation strictly sequential so the occurrence-indexed
# faults land deterministically.
INLTUNE_FAULTS="eval:raise@3,eval:raise@4" \
  dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 2 --domains 1 \
  --trace "$faults" > /dev/null 2>&1
grep -q '"ev":"eval.quarantine"' "$faults" || { echo "missing eval.quarantine event"; exit 1; }
dune exec --no-build bin/main.exe -- trace-summary "$faults" | grep -q "eval.failures" \
  || { echo "missing eval.failures counter in trace-summary"; exit 1; }

echo "== checkpoint/resume smoke =="
# A run interrupted after 1 generation and resumed must print exactly what an
# uninterrupted run prints.
ckpt=$(mktemp -t inltune_ckpt.XXXXXX.jsonl)
trap 'rm -f "$trace" "$faults" "$ckpt"' EXIT
rm -f "$ckpt"
full=$(dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 2 2> /dev/null)
dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 1 --checkpoint "$ckpt" \
  > /dev/null 2>&1
resumed=$(dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 2 --resume "$ckpt" \
  2> /dev/null)
[ "$full" = "$resumed" ] || {
  echo "resumed run differs from uninterrupted run:"
  echo "--- full ---"; echo "$full"
  echo "--- resumed ---"; echo "$resumed"
  exit 1
}

echo "== policy smoke =="
# Tiny dataset -> train -> eval round-trip: label a handful of compress call
# sites with the flip oracle, induce a tree, run it end-to-end on one unseen
# DaCapo benchmark, and verify the policy file reserializes canonically.
ds=$(mktemp -t inltune_ds.XXXXXX.jsonl)
pol=$(mktemp -t inltune_pol.XXXXXX.txt)
pol2=$(mktemp -t inltune_pol2.XXXXXX.txt)
trap 'rm -f "$trace" "$faults" "$ckpt" "$ds" "$pol" "$pol2"' EXIT
rm -f "$ds"
dune exec --no-build bin/main.exe -- dataset "$ds" --bench compress --max-sites 6 \
  > /dev/null 2>&1
[ -s "$ds" ] || { echo "dataset produced no examples"; exit 1; }
dune exec --no-build bin/main.exe -- train-policy "$ds" -o "$pol" > /dev/null
dune exec --no-build bin/main.exe -- eval-policy "$pol" --no-tuned --bench antlr \
  | grep -q "policy comparison" || { echo "missing eval-policy comparison table"; exit 1; }
# Serialize/deserialize equality: reprinting a reprinted policy is a fixpoint.
dune exec --no-build bin/main.exe -- eval-policy "$pol" --print > "$pol2"
dune exec --no-build bin/main.exe -- eval-policy "$pol2" --print | cmp -s - "$pol2" \
  || { echo "policy canonical form is not a serialization fixpoint"; exit 1; }
# A corrupt policy file must die with a one-line error and exit code 2.
printf 'inltune-policy v1 tree\nsplit 99 1.0\nleaf inline\nleaf no-inline\n' > "$pol"
rc=0
dune exec --no-build bin/main.exe -- eval-policy "$pol" --print > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "corrupt policy exited $rc, want 2"; exit 1; }

echo "== gp smoke =="
# GP policy evolution: a fixed-seed run interrupted after 1 generation and
# resumed must print exactly what an uninterrupted run prints (checkpoint /
# resume bit-identity); gp print is a serialization fixpoint; a corrupt tree
# file dies with a one-line error and exit code 2.
gpck=$(mktemp -t inltune_gpck.XXXXXX.jsonl)
gptree=$(mktemp -t inltune_gptree.XXXXXX.txt)
trap 'rm -f "$trace" "$faults" "$ckpt" "$ds" "$pol" "$pol2" "$gpck" "$gptree"' EXIT
rm -f "$gpck"
gp_full=$(dune exec --no-build bin/main.exe -- tune --evolve-policy -s opt:tot --pop 6 -g 2 \
  --seed 7 --gp-out "$gptree" 2> /dev/null)
dune exec --no-build bin/main.exe -- tune --evolve-policy -s opt:tot --pop 6 -g 1 --seed 7 \
  --checkpoint "$gpck" > /dev/null 2>&1
gp_resumed=$(dune exec --no-build bin/main.exe -- tune --evolve-policy -s opt:tot --pop 6 -g 2 \
  --seed 7 --gp-out "$gptree" --resume "$gpck" 2> /dev/null)
[ "$gp_full" = "$gp_resumed" ] || {
  echo "resumed GP run differs from uninterrupted run:"
  echo "--- full ---"; echo "$gp_full"
  echo "--- resumed ---"; echo "$gp_resumed"
  exit 1
}
dune exec --no-build bin/main.exe -- gp print "$gptree" | cmp -s - "$gptree" \
  || { echo "gp tree canonical form is not a serialization fixpoint"; exit 1; }
printf 'inltune-gp v1\n(and true)\n' > "$gptree"
rc=0
dune exec --no-build bin/main.exe -- gp print "$gptree" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "corrupt gp tree exited $rc, want 2"; exit 1; }

echo "== gp-bench smoke =="
# The GP comparison bench must leave a parseable BENCH_gp.json carrying the
# 4-column protocol geomeans and the pre-filter avoidance counters.
INLTUNE_POP=6 INLTUNE_GENS=2 dune exec --no-build bench/main.exe gp > /dev/null
for field in '"best_tree"' '"prefilter"' '"avoidance"' '"gp"' '"cart"' '"ga"'; do
  grep -q "$field" BENCH_gp.json || { echo "BENCH_gp.json: missing $field"; exit 1; }
done

echo "== tuner-bench smoke =="
# The decision-signature cache must avoid simulations without changing the
# search: bench tuner runs the same fixed-seed GA cache-off then cache-on and
# itself exits nonzero if the two searches differ.  Double-check the JSON.
INLTUNE_POP=6 INLTUNE_GENS=3 dune exec --no-build bench/main.exe tuner > /dev/null
grep -q '"identical_best":true' BENCH_tuner.json \
  || { echo "cache changed the best genome"; exit 1; }
grep -q '"identical_history":true' BENCH_tuner.json \
  || { echo "cache changed the per-generation history"; exit 1; }
sig_hits=$(sed -n 's/.*"sig_hits":\([0-9]*\).*/\1/p' BENCH_tuner.json)
[ "${sig_hits:-0}" -gt 0 ] || { echo "expected sig_hits > 0, got ${sig_hits:-none}"; exit 1; }

echo "== plan smoke =="
# The pass-manager layer: the canonical plan text is a serialization
# fixpoint, running under the explicit default plan prints exactly what the
# implicit default prints, invalid plans die with a one-line error and exit
# code 2, and the GA can evolve the plan itself.
plan=$(mktemp -t inltune_plan.XXXXXX.txt)
plan2=$(mktemp -t inltune_plan2.XXXXXX.txt)
trap 'rm -f "$trace" "$faults" "$ckpt" "$ds" "$pol" "$pol2" "$plan" "$plan2"' EXIT
dune exec --no-build bin/main.exe -- plan > "$plan"
dune exec --no-build bin/main.exe -- plan "$plan" > "$plan2"
cmp -s "$plan" "$plan2" || { echo "plan canonical form is not a serialization fixpoint"; exit 1; }
implicit=$(dune exec --no-build bin/main.exe -- run compress -s opt)
planned=$(dune exec --no-build bin/main.exe -- run compress -s opt --plan "$plan")
[ "$implicit" = "$planned" ] || {
  echo "run under the explicit default plan differs from the implicit default:"
  echo "--- implicit ---"; echo "$implicit"
  echo "--- planned ---"; echo "$planned"
  exit 1
}
printf 'inltune-plan v1\npass warp_speed on\n' > "$plan"
rc=0
dune exec --no-build bin/main.exe -- run compress --plan "$plan" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "unknown-pass plan exited $rc, want 2"; exit 1; }
printf 'inltune-plan v1\npass constprop on iters=99\n' > "$plan"
rc=0
dune exec --no-build bin/main.exe -- run compress --plan "$plan" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "out-of-range knob plan exited $rc, want 2"; exit 1; }
dune exec --no-build bin/main.exe -- tune --tune-passes -s opt:tot --pop 4 -g 2 2> /dev/null \
  | grep -q "best plan:" || { echo "tune --tune-passes printed no plan"; exit 1; }

echo "== passes-bench smoke =="
# bench passes asserts the default plan changes nothing (measurements and a
# fixed-seed GA search are bit-identical) and runs a plan-genome GA; it exits
# nonzero itself if any identity check fails.  Double-check the JSON.
INLTUNE_POP=6 INLTUNE_GENS=2 dune exec --no-build bench/main.exe passes > /dev/null
for flag in identical_measurements identical_best identical_history; do
  grep -q "\"$flag\":true" BENCH_passes.json \
    || { echo "BENCH_passes.json: $flag is not true"; exit 1; }
done

echo "== inliners smoke =="
# The pluggable inlining strategies: a plan with every strategy enabled at
# non-default knobs is a serialization fixpoint through the plan subcommand,
# a duplicated inliner-kind pass dies one-line + exit 2, corpus benchmark
# names resolve in run (and unknown ones die with the corpus families named),
# and the strategy bench writes BENCH_inliners.json with the default-plan
# identity intact.
cat > "$plan" <<'PLAN'
inltune-plan v1
pass constprop on iters=1
pass inline_leaves on leaf_size=30 rounds=3
pass inline_hot on hot_permille=200 budget=100
pass inline on
pass inline_region on budget=64 depth=2
pass cleanup on
PLAN
dune exec --no-build bin/main.exe -- plan "$plan" > "$plan2"
dune exec --no-build bin/main.exe -- plan "$plan2" | cmp -s "$plan2" - \
  || { echo "strategy plan is not a serialization fixpoint"; exit 1; }
printf 'inltune-plan v1\npass inline on\npass inline on\n' > "$plan"
rc=0
dune exec --no-build bin/main.exe -- run compress --plan "$plan" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "duplicate-inliner plan exited $rc, want 2"; exit 1; }
dune exec --no-build bin/main.exe -- run corpus_sweep00 > /dev/null \
  || { echo "corpus benchmark failed to run"; exit 1; }
rc=0
corpus_err=$(dune exec --no-build bin/main.exe -- run corpus_chain99 2>&1 > /dev/null) || rc=$?
[ "$rc" -eq 2 ] || { echo "unknown corpus benchmark exited $rc, want 2"; exit 1; }
echo "$corpus_err" | grep -q "corpus_chain00" \
  || { echo "unknown-benchmark error does not name the corpus families"; exit 1; }

echo "== inliners-bench smoke =="
# bench inliners asserts the strategies-disabled default plan changes no
# corpus measurement (exits nonzero itself otherwise) and compares default
# vs each strategy vs a tuned composite on an unseen suite.
INLTUNE_POP=4 INLTUNE_GENS=2 dune exec --no-build bench/main.exe inliners > /dev/null
grep -q '"identical_default":true' BENCH_inliners.json \
  || { echo "BENCH_inliners.json: identical_default is not true"; exit 1; }
grep -q '"geomean_vs_default"' BENCH_inliners.json \
  || { echo "BENCH_inliners.json: missing geomean_vs_default"; exit 1; }

echo "== observability smoke =="
# A profiled, progress-reported tune: per-generation progress lines land on
# stderr, the exit profile table names the span hierarchy, and the same
# trace aggregates into profile/histogram tables and flamegraph-ready
# folded stacks via trace-summary.
obs=$(mktemp -t inltune_obs.XXXXXX.jsonl)
trap 'rm -f "$trace" "$faults" "$ckpt" "$ds" "$pol" "$pol2" "$plan" "$plan2" "$obs"' EXIT
rm -f "$obs"
obs_err=$(dune exec --no-build bin/main.exe -- tune -s adapt --pop 6 -g 2 --domains 1 \
  --profile --progress --trace "$obs" 2>&1 > /dev/null)
echo "$obs_err" | grep -q '^\[inltune\] gen ' || { echo "missing --progress lines"; exit 1; }
echo "$obs_err" | grep -q 'eta' || { echo "missing ETA in --progress lines"; exit 1; }
echo "$obs_err" | grep -q 'fitness.eval' || { echo "missing fitness.eval in exit profile"; exit 1; }
obs_summary=$(dune exec --no-build bin/main.exe -- trace-summary "$obs")
echo "$obs_summary" | grep -q "profile (wall time" \
  || { echo "missing profile table in trace-summary"; exit 1; }
echo "$obs_summary" | grep -q "histograms" \
  || { echo "missing histogram table in trace-summary"; exit 1; }
dune exec --no-build bin/main.exe -- trace-summary --folded "$obs" \
  | grep -q '^fitness\.eval.* [0-9][0-9]*$' \
  || { echo "missing folded stacks in trace-summary --folded"; exit 1; }

echo "== vm-bench smoke =="
# The VM throughput trajectory bench must leave a parseable BENCH_vm.json
# with throughput, latency percentiles, per-step GC allocation, all three
# scenarios, and the speedup-vs-previous trajectory field (the bench reads
# the previous file before overwriting, and one just ran above).
INLTUNE_VM_REPEATS=1 INLTUNE_VM_ITERS=2 dune exec --no-build bench/main.exe vm > /dev/null
INLTUNE_VM_REPEATS=1 INLTUNE_VM_ITERS=2 dune exec --no-build bench/main.exe vm > /dev/null
for field in cycles_per_second steps_per_second gc_minor_words_per_step \
    speedup_vs_previous '"opt"' '"adapt"' '"ladder"' '"p50"' '"p99"'; do
  grep -q "$field" BENCH_vm.json || { echo "BENCH_vm.json: missing $field"; exit 1; }
done

echo "== flat-interpreter identity smoke =="
# The flat threaded-dispatch interpreter and the tree-walking reference
# (INLTUNE_VM_REFERENCE=1) must be bit-identical on every observable the
# CLI prints: cycles, steps, output hash, compile counts, per-iteration
# breakdowns.  The built binary is invoked directly — dune's build lock
# writes to stderr under concurrent process substitution and would show up
# as spurious diffs.
BIN=./_build/default/bin/main.exe
for prog in jess compress db; do
  for scen in opt adapt ladder; do
    flat=$("$BIN" run "$prog" -s "$scen")
    tree=$(INLTUNE_VM_REFERENCE=1 "$BIN" run "$prog" -s "$scen")
    [ "$flat" = "$tree" ] || {
      echo "flat vs reference interpreter differ on $prog/$scen:"
      echo "--- flat ---"; echo "$flat"
      echo "--- reference ---"; echo "$tree"
      exit 1
    }
  done
done
# A fixed-seed GA search must also be interpreter-independent end to end:
# same best genome, same per-generation history, same printed fitness.
tune_flat=$("$BIN" tune -s opt:tot --pop 4 -g 2 2> /dev/null)
tune_tree=$(INLTUNE_VM_REFERENCE=1 "$BIN" tune -s opt:tot --pop 4 -g 2 2> /dev/null)
[ "$tune_flat" = "$tune_tree" ] || {
  echo "fixed-seed tune differs between interpreters:"
  echo "--- flat ---"; echo "$tune_flat"
  echo "--- reference ---"; echo "$tune_tree"
  exit 1
}
# And the tuner bench's own cache-transparency contract must hold on the
# reference interpreter too.
INLTUNE_VM_REFERENCE=1 INLTUNE_POP=6 INLTUNE_GENS=2 \
  dune exec --no-build bench/main.exe tuner > /dev/null
for flag in identical_best identical_history; do
  grep -q "\"$flag\":true" BENCH_tuner.json \
    || { echo "reference-mode tuner bench: $flag is not true"; exit 1; }
done

echo "== serve smoke =="
# The tuning daemon end to end: an injected fault fails one request and
# quarantines its genome (the server stays up), the failure trips degraded
# cache-only mode (--degrade-after 1), duplicate ids replay the original
# reply, and SIGTERM drains to a clean exit with the socket removed.
sock=$(mktemp -t inltune_serve.XXXXXX.sock)
rm -f "$sock"
trap 'rm -f "$trace" "$faults" "$ckpt" "$ds" "$pol" "$pol2" "$plan" "$plan2" "$obs" "$sock";
      [ -n "${serve_pid:-}" ] && kill -9 "$serve_pid" 2> /dev/null || true' EXIT
INLTUNE_FAULTS="serve:raise@1,serve:raise@2" \
  ./_build/default/bin/main.exe serve --socket "$sock" --permits 2 \
  --max-retries 1 --degrade-after 1 --cooldown 60 --quiet &
serve_pid=$!

client() { ./_build/default/bin/main.exe client "$@" --socket "$sock"; }

i=0
until client ping 2> /dev/null | grep -q '"status":"ok"'; do
  i=$((i + 1))
  [ "$i" -lt 100 ] || { echo "daemon never came up"; exit 1; }
  sleep 0.1
done

# Both armed faults land on the first simulation request: one retry, then an
# explicit failed reply that quarantines the genome -- never the server.
out=$(client measure compress --tenant alice --id f1)
echo "$out" | grep -q '"status":"failed"' || { echo "faulted request not failed: $out"; exit 1; }
echo "$out" | grep -q '"quarantined":true' || { echo "failure did not quarantine: $out"; exit 1; }

# Replaying the same id returns the original reply, not a second execution.
out=$(client measure compress --tenant alice --id f1)
echo "$out" | grep -q '"duplicate":true' || { echo "id replay missing duplicate flag: $out"; exit 1; }
echo "$out" | grep -q '"status":"failed"' || { echo "id replay changed the reply: $out"; exit 1; }

# The same genome under a fresh id is refused outright as quarantined.
out=$(client measure compress --tenant alice)
echo "$out" | grep -q '"status":"quarantined"' || { echo "quarantined genome re-ran: $out"; exit 1; }

# The failure was a pressure event and --degrade-after 1: the daemon now
# answers from caches and the stock Jikes defaults instead of simulating.
out=$(client measure db --tenant bob)
echo "$out" | grep -q '"status":"degraded"' || { echo "expected degraded measure: $out"; exit 1; }
echo "$out" | grep -q '"mode":"degraded"' || { echo "missing degraded mode flag: $out"; exit 1; }
out=$(client tune -s opt:tot --pop 4 -g 1 --tenant bob)
echo "$out" | grep -q '"status":"degraded"' || { echo "expected degraded tune: $out"; exit 1; }
echo "$out" | grep -q '"fallback":"default-heuristic"' \
  || { echo "degraded tune did not fall back to the default heuristic: $out"; exit 1; }

# The daemon is still healthy throughout.
client ping | grep -q '"status":"ok"' || { echo "daemon unhealthy after faults"; exit 1; }

# SIGTERM: drain and exit 0, removing the socket.
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "daemon exited $rc on SIGTERM, want 0"; exit 1; }
[ ! -e "$sock" ] || { echo "daemon left its socket behind"; exit 1; }
serve_pid=""

echo "== serve-bench smoke =="
# bench serve floods an in-process daemon with concurrent tenants under
# fault injection and itself exits nonzero unless every client got an
# explicit reply, backpressure was exercised, tenants shared cache entries,
# and a fixed-seed tune through the daemon matched the offline tuner.
dune exec --no-build bench/main.exe serve > /dev/null
for field in '"server_crashes":0' '"identical_tune":true' '"healed":true'; do
  grep -q "$field" BENCH_serve.json || { echo "BENCH_serve.json: missing $field"; exit 1; }
done
cross=$(sed -n 's/.*"cross_tenant_hits":\([0-9]*\).*/\1/p' BENCH_serve.json)
[ "${cross:-0}" -gt 0 ] || { echo "expected cross_tenant_hits > 0, got ${cross:-none}"; exit 1; }

echo "== CLI error smoke =="
# Bad flag values must die with a one-line error and exit code 2.
rc=0
dune exec --no-build bin/main.exe -- tune -s nonsense > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "bad --scenario exited $rc, want 2"; exit 1; }
rc=0
dune exec --no-build bin/main.exe -- tune --domains 0 > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "bad --domains exited $rc, want 2"; exit 1; }
rc=0
INLTUNE_FAULTS="garbage" dune exec --no-build bin/main.exe -- list > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "bad INLTUNE_FAULTS exited $rc, want 2"; exit 1; }
rc=0
dune exec --no-build bin/main.exe -- trace-summary /no/such/trace.jsonl > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "missing trace file exited $rc, want 2"; exit 1; }

echo "OK"
