(* Quickstart: build a tiny JIR program, run it under both compilation
   scenarios, and compare the Jikes default heuristic against no inlining.

       dune exec examples/quickstart.exe
*)

open Inltune_jir
open Inltune_vm
open Inltune_opt
module B = Builder

(* A little program: main loops 1000 times calling a small helper chain. *)
let program () =
  let b = B.create "quickstart" in
  let square =
    B.method_ b ~name:"square" ~nargs:1 (fun mb ->
        let r = B.mul mb 0 0 in
        B.ret mb r)
  in
  let poly =
    B.method_ b ~name:"poly" ~nargs:2 (fun mb ->
        (* poly(x, c) = square(x) + 3x + c *)
        let sq = B.call mb square [ 0 ] in
        let three = B.const mb 3 in
        let lin = B.mul mb three 0 in
        let t = B.add mb sq lin in
        let r = B.add mb t 1 in
        B.ret mb r)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Const (acc, 0));
        let n = B.const mb 1000 in
        B.for_loop mb ~n (fun i ->
            let v = B.call mb poly [ i; acc ] in
            B.emit mb (Ir.Move (acc, v)));
        B.print mb acc;
        B.ret mb acc)
  in
  B.set_main b main;
  B.finish b

let describe label (m : Runner.measurement) =
  Printf.printf "%-28s total %8d cycles   running %8d cycles   compile %7d cycles\n" label
    m.Runner.total_cycles m.Runner.running_cycles m.Runner.first_compile_cycles

let () =
  let p = program () in
  Validate.check_exn p;
  Printf.printf "program: %d methods, %d instructions\n\n" (Array.length p.Ir.methods)
    (Ir.program_instr_count p);
  let measure scenario heuristic inline_enabled =
    Runner.measure (Machine.config ~inline_enabled scenario heuristic) Platform.x86 p
  in
  describe "Opt, default heuristic" (measure Machine.Opt Heuristic.default true);
  describe "Opt, no inlining" (measure Machine.Opt Heuristic.never false);
  describe "Adapt, default heuristic" (measure Machine.Adapt Heuristic.default true);
  describe "Adapt, no inlining" (measure Machine.Adapt Heuristic.never false);
  let on = measure Machine.Opt Heuristic.default true in
  let off = measure Machine.Opt Heuristic.never false in
  Printf.printf "\nInlining cuts running time by %.0f%% on this kernel.\n"
    (100.0
    *. (1.0
       -. Float.of_int on.Runner.running_cycles /. Float.of_int off.Runner.running_cycles))
