(* Custom workload: assemble your own benchmark from the generator
   combinators, then GA-tune the inlining heuristic *for that program* and
   compare against the Jikes default — the per-program tuning mode of the
   paper's Fig. 10.

       dune exec examples/custom_workload.exe
*)

open Inltune_jir
open Inltune_vm
open Inltune_opt
module B = Builder
module Gen = Inltune_workloads.Gen
module Rng = Inltune_support.Rng
module Ga = Inltune_ga

(* A "image filter" workload: per-pixel loop over a small kernel chain, plus
   a one-shot calibration sweep. *)
let program () =
  let b = B.create "imagefilter" in
  let rng = Rng.create 0x1337 in
  let arr_kid = Gen.array_class b ~name:"pixels" in
  let gamma = Gen.leaf b rng ~name:"gamma" ~nargs:2 ~ops:8 in
  let blur = Gen.nested_helper b rng ~name:"blur" ~outer_ops:10 ~inner_ops:11 ~leaf_ops:5 in
  let calibrate = Gen.one_shot_sweep b rng ~name:"calib" ~count:30 ~ops_min:20 ~ops_max:80 () in
  let per_pixel =
    B.method_ b ~name:"per_pixel" ~nargs:2 (fun mb ->
        let g = B.call mb gamma [ 0; 1 ] in
        let bl = B.call mb blur [ g; 0 ] in
        let r = B.add mb g bl in
        B.ret mb r)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 1 in
        let cfg = B.call mb calibrate [ seed ] in
        let img = Gen.alloc_filled_array mb ~kid:arr_kid ~len:128 in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:600 (fun i ->
            let m = B.const mb 127 in
            let idx = B.binop mb Ir.And i m in
            let px = B.load_idx mb img idx in
            let v = B.call mb per_pixel [ px; acc ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b

let () =
  let p = program () in
  Validate.check_exn p;
  let plat = Platform.x86 in
  let measure heuristic =
    Runner.measure (Machine.config Machine.Opt heuristic) plat p
  in
  let default = measure Heuristic.default in
  Printf.printf "default heuristic: total %d, running %d cycles\n" default.Runner.total_cycles
    default.Runner.running_cycles;

  (* Tune for running time with a small GA budget. *)
  let fitness g =
    let m = measure (Heuristic.of_array g) in
    Float.of_int m.Runner.running_cycles /. Float.of_int default.Runner.running_cycles
  in
  let spec = Ga.Genome.spec Heuristic.ranges in
  let params =
    { Ga.Evolve.default_params with Ga.Evolve.pop_size = 12; generations = 8; seed = 1 }
  in
  Printf.printf "tuning (pop %d, %d generations over %.0e candidate heuristics)...\n"
    params.Ga.Evolve.pop_size params.Ga.Evolve.generations (Ga.Genome.space_size spec);
  let r = Ga.Evolve.run ~spec ~params ~fitness () in
  let tuned = Heuristic.of_array r.Ga.Evolve.best in
  let m = measure tuned in
  Printf.printf "tuned heuristic: %s\n" (Heuristic.to_string tuned);
  Printf.printf "tuned: total %d, running %d cycles (%.1f%% running-time reduction)\n"
    m.Runner.total_cycles m.Runner.running_cycles
    (100.0 *. (1.0 -. r.Ga.Evolve.best_fitness));
  Printf.printf "GA evaluated %d distinct heuristics (%d cache hits)\n" r.Ga.Evolve.evaluations
    r.Ga.Evolve.cache_hits
