(* The JIR text format: write a program as assembly text, parse it, run it,
   and round-trip a generated benchmark.

       dune exec examples/text_format.exe
*)

open Inltune_jir
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

let fib_src =
  {|
# naive fibonacci, called in a loop; fib is a band-size inline candidate
program fib_demo
method fib args 1 regs 8
block
  const r1 2
  cmp.lt r2 r0 r1
  branch r2 1 2
block
  ret r0
block
  const r3 1
  sub r4 r0 r3
  call r5 m0 r4
  sub r6 r4 r3
  call r7 m0 r6
  add r5 r5 r7
  ret r5
method main args 0 regs 4
block
  const r0 14
  call r1 m0 r0
  print r1
  ret r1
main m1
|}

let () =
  (* 1. Parse and run a handwritten program. *)
  let p = Text.parse_exn fib_src in
  Validate.check_exn p;
  let ret, outputs = Runner.observe Platform.x86 p in
  Printf.printf "fib(14) = %d (printed: %s)\n" ret
    (String.concat ", " (Array.to_list (Array.map string_of_int outputs)));

  (* 2. The recursion guard in action: even a maximally aggressive heuristic
     cannot unroll fib into itself forever. *)
  let aggressive = Heuristic.of_array [| 50; 20; 15; 4000; 400 |] in
  let m =
    Runner.measure (Machine.config Machine.Opt aggressive) Platform.x86 p
  in
  Printf.printf "aggressive inlining: total %d cycles, result %d\n" m.Runner.total_cycles
    m.Runner.ret;

  (* 3. Round-trip a full generated benchmark through the text format. *)
  let bench = W.Suites.program (W.Suites.find "db") in
  let text = Text.to_string bench in
  (match Text.parse text with
  | Ok p' when p' = bench ->
    Printf.printf "db round-trips through %d bytes of assembly text\n" (String.length text)
  | Ok _ -> print_endline "round-trip produced a different program (bug!)"
  | Error e -> Printf.printf "round-trip failed at line %d: %s\n" e.Text.line e.Text.msg)
