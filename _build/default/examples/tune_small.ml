(* Scenario tuning in miniature: reproduce the paper's workflow end-to-end
   on a reduced budget — tune the heuristic for the Opt:Tot scenario on the
   SPEC-like training suite, then evaluate the tuned heuristic on the unseen
   DaCapo-like test suite.

       dune exec examples/tune_small.exe
*)

open Inltune_core
open Inltune_opt
module W = Inltune_workloads

let () =
  let budget = { Tuner.pop = 10; gens = 5; seed = 3 } in
  Printf.printf "tuning Opt:Tot on the SPEC training suite (pop %d, %d generations)\n"
    budget.Tuner.pop budget.Tuner.gens;
  let o =
    Tuner.tune ~budget
      ~on_generation:(fun p ->
        Printf.printf "  gen %d: best %.4f mean %.4f\n%!" p.Inltune_ga.Evolve.generation
          p.Inltune_ga.Evolve.best_fitness p.Inltune_ga.Evolve.mean_fitness)
      Tuner.Opt_tot_x86
  in
  Printf.printf "\ntuned: %s\n" (Heuristic.to_string o.Tuner.heuristic);
  Printf.printf "training-suite fitness (total-time geomean vs default): %.4f\n\n" o.Tuner.fitness;

  Printf.printf "evaluating on the unseen DaCapo+JBB test suite:\n";
  let spec = o.Tuner.spec in
  List.iter
    (fun bm ->
      let d = Measure.run_default ~scenario:spec.Tuner.scenario ~platform:spec.Tuner.platform bm in
      let t =
        Measure.run ~scenario:spec.Tuner.scenario ~platform:spec.Tuner.platform
          ~heuristic:o.Tuner.heuristic bm
      in
      Printf.printf "  %-10s total %.3f   running %.3f  (1.0 = default heuristic)\n"
        bm.W.Suites.bname
        (t.Measure.total /. d.Measure.total)
        (t.Measure.running /. d.Measure.running))
    W.Suites.dacapo
