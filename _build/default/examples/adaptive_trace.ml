(* Adaptive-optimization trace: run raytrace under the Adapt scenario and
   show what the adaptive system did — which methods were baseline-compiled,
   which got hot and were recompiled, and how iteration times fall as the VM
   warms up.

       dune exec examples/adaptive_trace.exe
*)

open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

let () =
  let bm = W.Suites.find "raytrace" in
  let p = W.Suites.program bm in
  let vm = Machine.create (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
  Printf.printf "running %s under the adaptive scenario (x86)\n\n" bm.W.Suites.bname;
  for iter = 1 to 4 do
    let it = Machine.run_iteration vm in
    Printf.printf
      "iteration %d: exec %8d cycles, compile %7d cycles (%3d baseline, %2d opt compiles so far)\n"
      iter it.Machine.it_exec_cycles it.Machine.it_compile_cycles
      (Machine.baseline_compiles vm) (Machine.opt_compiles vm)
  done;
  let profile = Machine.profile vm in
  Printf.printf "\nhottest methods by samples:\n";
  List.iter
    (fun mid ->
      let m = p.Inltune_jir.Ir.methods.(mid) in
      let tier =
        match Machine.compiled_method vm mid with
        | Some { Compile.tier = Compile.Optimized; _ } -> "OPT"
        | Some { Compile.tier = Compile.O1; _ } -> "O1"
        | Some { Compile.tier = Compile.Baseline; _ } -> "base"
        | None -> "-"
      in
      Printf.printf "  %-18s samples %4d  invocations %6d  [%s]\n" m.Inltune_jir.Ir.mname
        (Profile.samples profile mid) (Profile.invocations profile mid) tier)
    (Profile.hottest profile 10);
  Printf.printf "\ntotal code space: %d bytes;  icache miss rate %.4f\n"
    (Machine.code_bytes vm)
    (Float.of_int (Machine.icache_misses vm) /. Float.of_int (max 1 (Machine.icache_accesses vm)))
