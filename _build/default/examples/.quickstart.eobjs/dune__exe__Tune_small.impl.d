examples/tune_small.ml: Heuristic Inltune_core Inltune_ga Inltune_opt Inltune_workloads List Measure Printf Tuner
