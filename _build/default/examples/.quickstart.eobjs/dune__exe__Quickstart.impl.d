examples/quickstart.ml: Array Builder Float Heuristic Inltune_jir Inltune_opt Inltune_vm Ir Machine Platform Printf Runner Validate
