examples/text_format.mli:
