examples/adaptive_trace.ml: Array Compile Float Heuristic Inltune_jir Inltune_opt Inltune_vm Inltune_workloads List Machine Platform Printf Profile
