examples/adaptive_trace.mli:
