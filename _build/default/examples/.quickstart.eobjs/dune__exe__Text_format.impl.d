examples/text_format.ml: Array Heuristic Inltune_jir Inltune_opt Inltune_vm Inltune_workloads Machine Platform Printf Runner String Text Validate
