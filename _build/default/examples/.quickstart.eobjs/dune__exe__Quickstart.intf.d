examples/quickstart.mli:
