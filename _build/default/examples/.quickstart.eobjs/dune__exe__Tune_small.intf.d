examples/tune_small.mli:
