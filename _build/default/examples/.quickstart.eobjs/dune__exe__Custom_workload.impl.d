examples/custom_workload.ml: Builder Float Heuristic Inltune_ga Inltune_jir Inltune_opt Inltune_support Inltune_vm Inltune_workloads Ir Machine Platform Printf Runner Validate
