bin/main.mli:
