(* Calibration scratchpad: run every benchmark under both scenarios with the
   default heuristic and with inlining disabled, and dump the raw simulator
   counters.  Not part of the documented CLI; used to sanity-check the cost
   model while developing. *)

open Inltune_core
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

let () =
  let plat = Platform.x86 in
  Printf.printf
    "%-11s %-6s | %9s %9s %9s | %9s %9s | %6s %5s %5s | %8s\n"
    "bench" "scen" "tot(def)" "run(def)" "comp(def)" "tot(noinl)" "run(noinl)" "steps2" "nopt" "nbase" "missrate";
  List.iter
    (fun bm ->
      List.iter
        (fun (sname, scenario) ->
          let d = Measure.run ~scenario ~platform:plat ~heuristic:Heuristic.default bm in
          let n = Measure.run_no_inlining ~scenario ~platform:plat bm in
          let raw = d.Measure.raw in
          Printf.printf
            "%-11s %-6s | %9d %9d %9d | %9d %9d | %6d %5d %5d | %8.4f\n%!"
            bm.W.Suites.bname sname raw.Runner.total_cycles raw.Runner.running_cycles
            raw.Runner.first_compile_cycles n.Measure.raw.Runner.total_cycles
            n.Measure.raw.Runner.running_cycles
            raw.Runner.steps raw.Runner.opt_compiles raw.Runner.baseline_compiles
            (Float.of_int raw.Runner.icache_misses /. Float.of_int (max 1 raw.Runner.icache_accesses)))
        [ ("opt", Machine.Opt); ("adapt", Machine.Adapt) ])
    W.Suites.all
