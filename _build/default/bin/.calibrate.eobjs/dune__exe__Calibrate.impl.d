bin/calibrate.ml: Float Heuristic Inltune_core Inltune_opt Inltune_vm Inltune_workloads List Machine Measure Platform Printf Runner
