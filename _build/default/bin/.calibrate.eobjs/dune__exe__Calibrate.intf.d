bin/calibrate.mli:
