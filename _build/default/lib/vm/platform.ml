open Inltune_jir
(* Hardware and compiler cost models.

   All costs are in simulated cycles.  The two platforms stand in for the
   paper's Pentium-4 (deep pipeline: expensive calls and misses, large
   effective I-cache) and PowerPC G4 (shallower pipeline, small I-cache).
   Absolute values are not calibrated to 2005 silicon; what matters for the
   reproduction is the *relative* structure — call overhead vs. instruction
   cost, compile cost vs. run cost, and I-cache capacity vs. the code
   footprint of our workloads — which determines who wins each experiment. *)

type t = {
  pname : string;
  clock_hz : float;  (* converts cycles to the seconds axis of Fig. 2 *)
  (* Instruction costs. *)
  cost_simple : int;   (* const/move/binop/cmp *)
  cost_mul : int;
  cost_div : int;
  cost_mem : int;      (* load/store *)
  cost_branch : int;
  cost_alloc_base : int;
  cost_alloc_slot : int;
  cost_print : int;
  (* Call costs: the direct benefit of inlining is removing these. *)
  call_overhead : int;
  ret_overhead : int;
  arg_cost : int;
  virt_dispatch_extra : int;
  (* Register file: virtual registers beyond this spill (cost model). *)
  phys_regs : int;
  (* I-cache. *)
  icache_bytes : int;
  line_bytes : int;    (* power of two *)
  miss_penalty : int;
  (* Code quality and footprint per tier. *)
  baseline_quality : int;     (* baseline code per-instruction cost multiplier *)
  o1_quality : int;            (* mid-tier (no inlining) cost multiplier *)
  baseline_expansion : int;    (* code bytes per size-estimate unit *)
  o1_expansion : int;
  opt_expansion : int;
  (* Compile-time models. *)
  baseline_compile_base : int;
  baseline_compile_per_size : int;
  o1_compile_base : int;
  o1_compile_per_size : int;   (* linear only: O1 skips the inliner *)
  opt_compile_base : int;
  opt_compile_per_size : int;   (* linear in the post-inlining (peak) size *)
  opt_compile_quad_denom : int; (* plus size_peak^2 / this: register
                                   allocation and dataflow over big methods *)
  (* Adaptive optimization system. *)
  sample_interval : int;       (* cycles between samples *)
  hot_method_samples : int;    (* samples before a method is promoted *)
  hot_edge_fraction : float;   (* call-site share of all calls to be "hot" *)
  hot_edge_min : int;
}

let x86 =
  {
    pname = "x86";
    clock_hz = 2.8e9;
    cost_simple = 1;
    cost_mul = 4;
    cost_div = 30;
    cost_mem = 2;
    cost_branch = 2;
    cost_alloc_base = 12;
    cost_alloc_slot = 1;
    cost_print = 40;
    call_overhead = 16;
    ret_overhead = 6;
    arg_cost = 2;
    virt_dispatch_extra = 10;
    phys_regs = 8;
    icache_bytes = 16 * 1024;
    line_bytes = 64;
    miss_penalty = 26;
    baseline_quality = 3;
    o1_quality = 2;
    baseline_expansion = 12;
    o1_expansion = 10;
    opt_expansion = 8;
    baseline_compile_base = 150;
    baseline_compile_per_size = 4;
    o1_compile_base = 800;
    o1_compile_per_size = 14;
    opt_compile_base = 2500;
    opt_compile_per_size = 45;
    opt_compile_quad_denom = 50;
    sample_interval = 7_000;
    hot_method_samples = 2;
    hot_edge_fraction = 0.015;
    hot_edge_min = 40;
  }

let ppc =
  {
    pname = "ppc";
    clock_hz = 533.0e6;
    cost_simple = 1;
    cost_mul = 3;
    cost_div = 19;
    cost_mem = 2;
    cost_branch = 1;
    cost_alloc_base = 10;
    cost_alloc_slot = 1;
    cost_print = 40;
    call_overhead = 10;
    ret_overhead = 4;
    arg_cost = 1;
    virt_dispatch_extra = 6;
    phys_regs = 24;
    icache_bytes = 4 * 1024;
    line_bytes = 32;
    miss_penalty = 18;
    baseline_quality = 3;
    o1_quality = 2;
    baseline_expansion = 14;
    o1_expansion = 12;
    opt_expansion = 10;
    baseline_compile_base = 150;
    baseline_compile_per_size = 4;
    o1_compile_base = 800;
    o1_compile_per_size = 13;
    opt_compile_base = 2500;
    opt_compile_per_size = 40;
    opt_compile_quad_denom = 55;
    sample_interval = 7_000;
    hot_method_samples = 2;
    hot_edge_fraction = 0.015;
    hot_edge_min = 40;
  }

let by_name = function
  | "x86" -> x86
  | "ppc" -> ppc
  | s -> invalid_arg ("Platform.by_name: unknown platform " ^ s)

let all = [ x86; ppc ]

let instr_cost t = function
  | Ir.Const _ | Ir.Move _ -> t.cost_simple
  | Ir.Binop ((Ir.Div | Ir.Mod), _, _, _) -> t.cost_div
  | Ir.Binop (Ir.Mul, _, _, _) -> t.cost_mul
  | Ir.Binop (_, _, _, _) | Ir.Cmp _ -> t.cost_simple
  | Ir.Load _ | Ir.Store _ -> t.cost_mem
  | Ir.LoadIdx _ | Ir.StoreIdx _ -> t.cost_mem + 1
  | Ir.ClassOf _ -> t.cost_mem
  | Ir.Alloc (_, _, slots) -> t.cost_alloc_base + (t.cost_alloc_slot * slots)
  | Ir.Call (_, _, args) -> t.call_overhead + (t.arg_cost * Array.length args)
  | Ir.CallVirt (_, _, _, args) ->
    t.call_overhead + t.virt_dispatch_extra + (t.arg_cost * (1 + Array.length args))
  | Ir.Print _ -> t.cost_print

let term_cost t = function
  | Ir.Jump _ -> 1
  | Ir.Branch _ -> t.cost_branch
  | Ir.Ret _ -> t.ret_overhead

(* Cycles to optimize a method whose IR peaked at [size_peak] units. *)
let opt_compile_cycles t ~size_peak =
  t.opt_compile_base
  + (t.opt_compile_per_size * size_peak)
  + (size_peak * size_peak / t.opt_compile_quad_denom)

let baseline_compile_cycles t ~size =
  t.baseline_compile_base + (t.baseline_compile_per_size * size)

let o1_compile_cycles t ~size = t.o1_compile_base + (t.o1_compile_per_size * size)

let seconds t cycles = Float.of_int cycles /. t.clock_hz
