(** Bump allocator for compiled-code addresses. *)

type t

val create : unit -> t

(** Reserve [bytes] of code space; returns the start address. *)
val alloc : t -> int -> int

(** Total bytes ever allocated (includes abandoned code of recompiled
    methods). *)
val allocated : t -> int
