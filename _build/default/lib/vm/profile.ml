(* Online profile data gathered by the adaptive optimization system:
   per-method invocation counts and timer-style samples, plus per-call-edge
   counters used to classify call sites as hot when a method is recompiled
   (the Fig. 4 heuristic path). *)

type t = {
  nmethods : int;
  invocations : int array;
  samples : int array;
  edges : (int, int) Hashtbl.t;  (* (owner * nmethods + callee) -> calls *)
  mutable total_calls : int;
}

let create nmethods =
  {
    nmethods;
    invocations = Array.make nmethods 0;
    samples = Array.make nmethods 0;
    edges = Hashtbl.create 256;
    total_calls = 0;
  }

let record_invocation t mid = t.invocations.(mid) <- t.invocations.(mid) + 1

let record_call t ~site_owner ~callee =
  t.total_calls <- t.total_calls + 1;
  let key = (site_owner * t.nmethods) + callee in
  match Hashtbl.find_opt t.edges key with
  | Some n -> Hashtbl.replace t.edges key (n + 1)
  | None -> Hashtbl.add t.edges key 1

let record_sample t mid = t.samples.(mid) <- t.samples.(mid) + 1

let samples t mid = t.samples.(mid)
let invocations t mid = t.invocations.(mid)

let edge_count t ~site_owner ~callee =
  Option.value ~default:0 (Hashtbl.find_opt t.edges ((site_owner * t.nmethods) + callee))

(* A call site is hot when it carries at least [hot_edge_fraction] of all
   dynamic calls seen so far (with an absolute floor for early promotion). *)
let hot_site t ~fraction ~floor ~site_owner ~callee =
  let threshold = max floor (Float.to_int (fraction *. Float.of_int t.total_calls)) in
  edge_count t ~site_owner ~callee >= threshold

let hottest t n =
  let idx = Array.init (Array.length t.samples) (fun i -> i) in
  Array.sort (fun a b -> compare t.samples.(b) t.samples.(a)) idx;
  Array.to_list (Array.sub idx 0 (min n (Array.length idx)))

