open Inltune_jir
open Inltune_opt

(** The paper's two-iteration measurement methodology (Section 5). *)

type measurement = {
  total_cycles : int;        (** first iteration: execution + compilation *)
  running_cycles : int;      (** best exec-only cycles of later iterations *)
  first_exec_cycles : int;
  first_compile_cycles : int;
  opt_compiles : int;
  baseline_compiles : int;
  code_bytes : int;
  icache_misses : int;
  icache_accesses : int;
  steps : int;
  ret : int;                 (** the program's result (checksum) *)
  out_hash : int;            (** hash of everything printed *)
}

(** [measure cfg plat prog] runs [iterations] VM iterations (default 2, the
    paper's minimum; the library-wide default used by {!Inltune_core.Measure}
    is 3 so the adaptive system reaches steady state).  Raises
    [Invalid_argument] if [iterations < 2]. *)
val measure : ?iterations:int -> Machine.config -> Platform.t -> Ir.program -> measurement

(** [observe plat prog] interprets the program once (Opt scenario, the given
    heuristic — default: no inlining) and returns its result and the list of
    printed values.  Used by semantics-preservation tests. *)
val observe :
  ?fuel:int -> ?heuristic:Heuristic.t -> Platform.t -> Ir.program -> int * int array
