lib/vm/codespace.mli:
