lib/vm/machine.ml: Array Codespace Compile Guarded_devirt Heuristic Icache Inltune_jir Inltune_opt Inltune_support Ir Pipeline Platform Profile Validate
