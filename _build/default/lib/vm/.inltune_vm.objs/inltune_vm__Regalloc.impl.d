lib/vm/regalloc.ml: Array Inltune_jir Ir List Platform
