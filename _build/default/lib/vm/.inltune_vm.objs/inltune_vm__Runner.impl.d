lib/vm/runner.ml: Inltune_opt Machine
