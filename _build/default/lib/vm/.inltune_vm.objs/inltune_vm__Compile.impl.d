lib/vm/compile.ml: Array Codespace Heuristic Inltune_jir Inltune_opt Ir Pipeline Platform Regalloc Size
