lib/vm/profile.mli:
