lib/vm/profile.ml: Array Float Hashtbl Option
