lib/vm/icache.mli:
