lib/vm/compile.mli: Codespace Inltune_jir Inltune_opt Ir Pipeline Platform
