lib/vm/machine.mli: Codespace Compile Heuristic Icache Inltune_jir Inltune_opt Inltune_support Ir Pipeline Platform Profile
