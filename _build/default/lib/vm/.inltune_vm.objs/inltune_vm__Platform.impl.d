lib/vm/platform.ml: Array Float Inltune_jir Ir
