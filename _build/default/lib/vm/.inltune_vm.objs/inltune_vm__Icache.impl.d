lib/vm/icache.ml: Array Float
