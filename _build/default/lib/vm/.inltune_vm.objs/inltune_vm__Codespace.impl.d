lib/vm/codespace.ml:
