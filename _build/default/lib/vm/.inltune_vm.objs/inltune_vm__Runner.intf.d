lib/vm/runner.mli: Heuristic Inltune_jir Inltune_opt Ir Machine Platform
