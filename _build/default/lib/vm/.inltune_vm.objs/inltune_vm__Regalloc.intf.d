lib/vm/regalloc.mli: Inltune_jir Ir Platform
