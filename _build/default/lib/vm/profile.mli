(** Online profile data for the adaptive optimization system: per-method
    invocation counts, timer-style samples, and per-call-edge counters used
    to classify call sites as hot (the paper's Fig. 4 path). *)

type t

(** [create nmethods] — all counters zero. *)
val create : int -> t

val record_invocation : t -> int -> unit

(** [record_call t ~site_owner ~callee] bumps the edge counter. *)
val record_call : t -> site_owner:int -> callee:int -> unit

val record_sample : t -> int -> unit
val samples : t -> int -> int
val invocations : t -> int -> int
val edge_count : t -> site_owner:int -> callee:int -> int

(** [hot_site t ~fraction ~floor ~site_owner ~callee]: the edge carries at
    least [fraction] of all dynamic calls seen so far, with an absolute
    [floor] for early promotion decisions. *)
val hot_site : t -> fraction:float -> floor:int -> site_owner:int -> callee:int -> bool

(** The [n] methods with the most samples, hottest first. *)
val hottest : t -> int -> int list
