open Inltune_jir

(** Linear-scan register allocation as a cost model: estimates the spill
    traffic of a compiled method so that inlining's register-pressure cost
    is part of the simulated running time. *)

type result = {
  vregs : int;         (** virtual registers that occur in the body *)
  max_pressure : int;  (** peak simultaneously live intervals *)
  spilled : int;       (** intervals assigned to stack slots *)
  spill_ops : int;     (** memory operations induced by spills *)
}

(** [run ~phys_regs m] — linear scan over approximate live intervals.
    Raises if [phys_regs < 2]. *)
val run : phys_regs:int -> Ir.methd -> result

(** Cycles charged per executed block to account for the spill traffic. *)
val block_spill_cost : Platform.t -> Ir.methd -> result -> int
