(* Bump allocator for compiled-code addresses.  Recompiled methods get fresh
   addresses (the old code is abandoned, as in a real JIT without code GC), so
   recompilation churn shows up as I-cache pressure. *)

type t = { mutable next : int; mutable total : int }

let create () = { next = 0x1000; total = 0 }

let alloc t bytes =
  if bytes < 0 then invalid_arg "Codespace.alloc";
  let addr = t.next in
  t.next <- t.next + bytes;
  t.total <- t.total + bytes;
  addr

let allocated t = t.total
