open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* antlr — parses grammar files and generates parsers.  The most
   compile-bound program in the suite: hundreds of one-shot grammar-analysis
   and code-generation methods dwarf a short recursive parsing phase.  The
   paper reports the largest total-time win here (58% under Opt:Tot). *)

let name = "antlr"
let description = "grammar analysis: ~350 one-shot methods + short parse phase"

let parse_rounds = 14

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0xA2712 in
  let analysis = Gen.one_shot_sweep b rng ~name:"antlr_an" ~count:190 ~ops_min:30 ~ops_max:140 () in
  let codegen = Gen.one_shot_sweep b rng ~name:"antlr_cg" ~count:160 ~ops_min:40 ~ops_max:170 () in
  (* Token-prediction fast path: a guarded DAG under the grammar walk. *)
  let predict = Gen.guarded_dag b rng ~name:"antlr_pred" ~levels:4 ~width:4 ~ops:2 in
  (* Short recursive grammar walk. *)
  let walk = B.declare b ~name:"walk_grammar" ~nargs:2 in
  B.define b walk (fun mb ->
      let zero = B.const mb 0 in
      let stop = B.cmp mb Ir.Le 0 zero in
      let result = B.fresh_reg mb in
      B.if_ mb stop
        ~then_:(fun () ->
          let t0 = Gen.arith mb rng ~ops:8 [ 1 ] in
          let t = B.call mb predict [ t0 ] in
          B.emit mb (Ir.Move (result, t)))
        ~else_:(fun () ->
          let one = B.const mb 1 in
          let d' = B.sub mb 0 one in
          let t = Gen.arith mb rng ~ops:22 [ 0; 1 ] in
          let a = B.call mb walk [ d'; t ] in
          let c2 = B.add mb t one in
          let c = B.call mb walk [ d'; c2 ] in
          let x = B.add mb a c in
          B.emit mb (Ir.Move (result, x)));
      B.ret mb result);
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 23 in
        let a1 = B.call mb analysis [ seed ] in
        let a2 = B.call mb codegen [ a1 ] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, a2));
        Gen.repeat mb ~iters:(max 1 (parse_rounds * scale / 100)) (fun r ->
            let d = B.const mb 5 in
            let s = B.add mb acc r in
            let v = B.call mb walk [ d; s ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
