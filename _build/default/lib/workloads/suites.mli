open Inltune_jir

(** The benchmark registry: a SPECjvm98-like training suite and a
    DaCapo+JBB-like test suite (paper Tables 2 and 3). *)

type benchmark = {
  bname : string;
  bdescription : string;
  generate : ?scale:int -> unit -> Ir.program;
      (** deterministic generator; [scale] stretches the running phase
          (100 = the paper's default input size) *)
}

(** The 7 training programs (compress, jess, db, javac, mpegaudio, raytrace,
    jack), in paper order. *)
val spec : benchmark list

(** The 7 unseen test programs (antlr, fop, jython, pmd, ps, ipsixql,
    pseudojbb), in paper order. *)
val dacapo : benchmark list

(** [spec @ dacapo]. *)
val all : benchmark list

(** Lookup by name; raises [Invalid_argument] on unknown benchmarks. *)
val find : string -> benchmark

val names : benchmark list -> string list

(** The benchmark's program at the default input size.  Generated once per
    process, validated, and cached (programs are immutable). *)
val program : benchmark -> Ir.program

(** The program at a non-default input size; cached per (benchmark, scale).
    [scale:100] returns the same value as {!program}. *)
val program_scaled : benchmark -> scale:int -> Ir.program
