open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* compress — modelled on SPEC's 129.compress: a long-running byte-stream
   LZW-style loop.  Hot shape: one tight driver loop calling a short static
   chain (next_byte -> hash -> probe -> emit) of small-to-medium helpers over
   a hash table array.  Few methods, long run: the classic case where
   inlining the hot chain pays and the Opt scenario wins. *)

let name = "compress"
let description = "LZW-style byte-stream compression loop (long-running kernel)"

let table_size = 512
let input_len = 450
let passes = 4

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0xC0413 in
  let arr_kid = Gen.array_class b ~name:"compress_table" in
  (* next_byte(state): tiny pseudo-input generator — ALWAYS_INLINE fodder. *)
  let next_byte =
    B.method_ b ~name:"next_byte" ~nargs:1 (fun mb ->
        let c1 = B.const mb 1103515245 in
        let c2 = B.const mb 12345 in
        let t = B.mul mb 0 c1 in
        let t = B.add mb t c2 in
        let mask = B.const mb 255 in
        let r = B.binop mb Ir.And t mask in
        B.ret mb r)
  in
  (* The hash pipeline: a 6-level guarded call DAG of band-size methods.
     MAX_INLINE_DEPTH decides how much of it is flattened into the hot
     compiled code. *)
  let hash_dag = Gen.guarded_dag b rng ~name:"hash" ~levels:6 ~width:5 ~ops:2 in
  let hash =
    B.method_ b ~name:"hash" ~nargs:2 (fun mb ->
        let sh = B.const mb 4 in
        let h = B.binop mb Ir.Shl 0 sh in
        let h2 = B.binop mb Ir.Xor h 1 in
        let m1 = B.call mb hash_dag [ h2 ] in
        let m = B.const mb (table_size - 1) in
        let r = B.binop mb Ir.And m1 m in
        B.ret mb r)
  in
  (* probe(table, slot, code): table lookup with one reprobe — medium. *)
  let probe =
    B.method_ b ~name:"probe" ~nargs:3 (fun mb ->
        let v = B.load_idx mb 0 1 in
        let hit = B.cmp mb Ir.Eq v 2 in
        let result = B.fresh_reg mb in
        B.if_ mb hit
          ~then_:(fun () -> B.emit mb (Ir.Move (result, 1)))
          ~else_:(fun () ->
            let one = B.const mb 1 in
            let s = B.add mb 1 one in
            let m = B.const mb (table_size - 1) in
            let s = B.binop mb Ir.And s m in
            let v2 = B.load_idx mb 0 s in
            let x = B.binop mb Ir.Xor v2 2 in
            B.store_idx mb 0 s 2;
            B.emit mb (Ir.Move (result, x)));
        B.ret mb result)
  in
  (* emit(acc, code): fold an output code into the checksum — small. *)
  let emit = Gen.leaf b rng ~name:"emit_code" ~nargs:2 ~ops:7 in
  (* compress_byte(table, state, acc): the hot chain. *)
  let compress_byte =
    B.method_ b ~name:"compress_byte" ~nargs:3 (fun mb ->
        let byte = B.call mb next_byte [ 1 ] in
        let slot = B.call mb hash [ 2; byte ] in
        let code = B.call mb probe [ 0; slot; byte ] in
        let out = B.call mb emit [ 2; code ] in
        let r = B.add mb out byte in
        B.ret mb r)
  in
  (* One compression pass over the input. *)
  let pass =
    B.method_ b ~name:"compress_pass" ~nargs:2 (fun mb ->
        (* args: table, acc *)
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:input_len (fun i ->
            let st = B.add mb acc i in
            let r = B.call mb compress_byte [ 0; st; acc ] in
            B.emit mb (Ir.Move (acc, r)));
        B.ret mb acc)
  in
  (* A handful of one-shot setup methods (option parsing, buffer setup). *)
  let setup = Gen.one_shot_sweep b rng ~name:"compress" ~count:12 ~ops_min:15 ~ops_max:50 () in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 7 in
        let cfg = B.call mb setup [ seed ] in
        let table = Gen.alloc_filled_array mb ~kid:arr_kid ~len:table_size in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (passes * scale / 100)) (fun p ->
            let a = B.add mb acc p in
            let r = B.call mb pass [ table; a ] in
            B.emit mb (Ir.Move (acc, r)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
