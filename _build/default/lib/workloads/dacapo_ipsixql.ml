open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* ipsixql — an XML database queried against the works of Shakespeare.
   Hot shape: build a wide document tree once (alloc-heavy), then run a
   short query phase of recursive descents with small predicate helpers.
   Short run + broad index-building methods = compile-dominated total (the
   paper reports a 50% total-time win under Opt:Tot). *)

let name = "ipsixql"
let description = "XML database: document tree build + recursive query scans"

let doc_depth = 9
let queries = 28

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x1B51 in
  let indexing = Gen.one_shot_sweep b rng ~name:"xql_idx" ~count:140 ~ops_min:30 ~ops_max:130 () in
  let doc = Gen.tree b rng ~name:"xml" ~fold_ops:5 in
  (* Text-node content extraction: a *monomorphic* virtual call (only one
     text-node class is ever loaded) — the case guarded devirtualization
     turns into an inlinable static call under the adaptive scenario. *)
  let accept_impl =
    B.method_ b ~name:"text_accept" ~nargs:2 (fun mb ->
        let f = B.load mb 0 1 in
        let r = Gen.arith mb rng ~ops:9 [ 1; f ] in
        B.ret mb r)
  in
  let text_kid = B.new_class b ~name:"text_node" ~vtable:[| accept_impl |] in
  (* Path-expression evaluation: a guarded DAG under every leaf test. *)
  let path_eval = Gen.guarded_dag b rng ~name:"xql_path" ~levels:4 ~width:4 ~ops:2 in
  (* Predicate helpers: tiny. *)
  let name_test =
    B.method_ b ~name:"name_test" ~nargs:2 (fun mb ->
        let m = B.const mb 31 in
        let h = B.binop mb Ir.And 0 m in
        let r = B.cmp mb Ir.Eq h 1 in
        B.ret mb r)
  in
  let value_test =
    B.method_ b ~name:"value_test" ~nargs:2 (fun mb ->
        let d = B.sub mb 0 1 in
        let m = B.const mb 63 in
        let r = B.binop mb Ir.And d m in
        B.ret mb r)
  in
  (* query(node, depth, pat, txt): recursive descent applying the
     predicates; [txt] is the shared text-node receiver. *)
  let query = B.declare b ~name:"xql_query" ~nargs:4 in
  B.define b query (fun mb ->
      let v = B.load mb 0 3 in
      let zero = B.const mb 0 in
      let stop = B.cmp mb Ir.Le 1 zero in
      let result = B.fresh_reg mb in
      B.if_ mb stop
        ~then_:(fun () ->
          let t0 = B.call mb value_test [ v; 2 ] in
          let tv = B.call_virt mb ~slot:0 3 [ t0 ] in
          let t = B.call mb path_eval [ tv ] in
          B.emit mb (Ir.Move (result, t)))
        ~else_:(fun () ->
          let hit = B.call mb name_test [ v; 2 ] in
          let one = B.const mb 1 in
          let d' = B.sub mb 1 one in
          let l = B.load mb 0 1 in
          let r = B.load mb 0 2 in
          let a = B.call mb query [ l; d'; 2; 3 ] in
          let c = B.call mb query [ r; d'; 2; 3 ] in
          let x = B.add mb a c in
          let y = B.add mb x hit in
          B.emit mb (Ir.Move (result, y)));
      B.ret mb result);
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 59 in
        let cfg = B.call mb indexing [ seed ] in
        let d = B.const mb doc_depth in
        let root = B.call mb doc.Gen.build [ d; seed ] in
        let txt = B.alloc mb text_kid ~slots:2 in
        let seventeen = B.const mb 17 in
        B.store mb txt 1 seventeen;
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (queries * scale / 100)) (fun q ->
            let pat = B.add mb acc q in
            let qd = B.const mb 6 in
            let v = B.call mb query [ root; qd; pat; txt ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
