open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* mpegaudio — MP3 decoding.  Hot shape: numeric filter kernels over
   coefficient arrays, called with *constant* configuration arguments, so
   inlining unlocks constant folding (the "indirect benefit").  Long-running,
   few methods; the paper's tuned heuristics slightly degrade it under
   Adapt:Bal (it prefers aggressive inlining). *)

let name = "mpegaudio"
let description = "numeric subband/DCT filter kernels over coefficient arrays"

let coeffs = 64
let frames = 90

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x3A6D10 in
  let arr_kid = Gen.array_class b ~name:"coeff_bank" in
  (* window(bank, i, scale): one windowed multiply-accumulate — small. *)
  let window =
    B.method_ b ~name:"window" ~nargs:3 (fun mb ->
        let m = B.const mb (coeffs - 1) in
        let i = B.binop mb Ir.And 1 m in
        let v = B.load_idx mb 0 i in
        let p = B.mul mb v 2 in
        let sh = B.const mb 3 in
        let r = B.binop mb Ir.Shr p sh in
        B.ret mb r)
  in
  (* subband(bank, i): unrolled 8-tap filter — medium, calls window with
     constant scales (fold fodder once inlined). *)
  let subband =
    B.method_ b ~name:"subband" ~nargs:2 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Const (acc, 0));
        for tap = 0 to 7 do
          let o = B.const mb tap in
          let idx = B.add mb 1 o in
          let scale = B.const mb (3 + (2 * tap)) in
          let t = B.call mb window [ 0; idx; scale ] in
          B.emit mb (Ir.Binop (Ir.Add, acc, acc, t))
        done;
        B.ret mb acc)
  in
  (* dct32(bank, x): butterfly-style arithmetic block — medium-large. *)
  let dct32 =
    B.method_ b ~name:"dct32" ~nargs:2 (fun mb ->
        let a = Gen.arith mb rng ~ops:40 [ 1 ] in
        let m = B.const mb (coeffs - 1) in
        let i = B.binop mb Ir.And a m in
        let v = B.load_idx mb 0 i in
        let r = Gen.arith mb rng ~ops:14 [ v; a ] in
        B.ret mb r)
  in
  (* antialias: small cleanup helper. *)
  let antialias = Gen.leaf b rng ~name:"antialias" ~nargs:2 ~ops:9 in
  (* decode_frame(bank, f): the hot per-frame chain. *)
  let decode_frame =
    B.method_ b ~name:"decode_frame" ~nargs:2 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:8 (fun g ->
            let i = B.add mb acc g in
            let s = B.call mb subband [ 0; i ] in
            let d = B.call mb dct32 [ 0; s ] in
            let a = B.call mb antialias [ s; d ] in
            B.emit mb (Ir.Binop (Ir.Add, acc, acc, a)));
        B.ret mb acc)
  in
  let setup = Gen.one_shot_sweep b rng ~name:"mpeg" ~count:18 ~ops_min:20 ~ops_max:70 () in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 2 in
        let cfg = B.call mb setup [ seed ] in
        let bank = Gen.alloc_filled_array mb ~kid:arr_kid ~len:coeffs in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (frames * scale / 100)) (fun f ->
            let x = B.add mb acc f in
            let r = B.call mb decode_frame [ bank; x ] in
            B.emit mb (Ir.Move (acc, r)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
