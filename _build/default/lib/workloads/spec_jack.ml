open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* jack — a parser generator with lexical analysis.  Two phases: a one-shot
   automaton-construction phase (breadth of medium methods, compile-bound)
   and a tokenizing loop with a shallow static chain (run-bound).  A mixed
   profile: neither as loopy as compress nor as wide as javac. *)

let name = "jack"
let description = "parser generator: automaton build phase + tokenizing loop"

let tokens_per_round = 220
let rounds = 9

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x7ACC in
  let arr_kid = Gen.array_class b ~name:"dfa" in
  (* Automaton construction: one-shot breadth. *)
  let build_nfa = Gen.one_shot_sweep b rng ~name:"nfa" ~count:34 ~ops_min:25 ~ops_max:90 () in
  let build_dfa = Gen.one_shot_sweep b rng ~name:"dfa" ~count:26 ~ops_min:30 ~ops_max:110 () in
  (* Lexing chain: classify -> advance -> accept. *)
  let classify =
    B.method_ b ~name:"classify" ~nargs:2 (fun mb ->
        (* args: dfa array, ch *)
        let m = B.const mb 127 in
        let i = B.binop mb Ir.And 1 m in
        let s = B.load_idx mb 0 i in
        let r = B.binop mb Ir.Xor s 1 in
        B.ret mb r)
  in
  let advance =
    B.method_ b ~name:"advance" ~nargs:2 (fun mb ->
        let t = Gen.arith mb rng ~ops:12 [ 0; 1 ] in
        B.ret mb t)
  in
  let accept = Gen.leaf b rng ~name:"accept" ~nargs:2 ~ops:16 in
  let next_token =
    B.method_ b ~name:"next_token" ~nargs:3 (fun mb ->
        (* args: dfa, state, ch *)
        let c = B.call mb classify [ 0; 2 ] in
        let s = B.call mb advance [ 1; c ] in
        let a = B.call mb accept [ s; c ] in
        let r = B.add mb a s in
        B.ret mb r)
  in
  let lex_round =
    B.method_ b ~name:"lex_round" ~nargs:2 (fun mb ->
        (* args: dfa, acc *)
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:tokens_per_round (fun i ->
            let ch = B.add mb acc i in
            let t = B.call mb next_token [ 0; acc; ch ] in
            B.emit mb (Ir.Move (acc, t)));
        B.ret mb acc)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 17 in
        let n1 = B.call mb build_nfa [ seed ] in
        let n2 = B.call mb build_dfa [ n1 ] in
        let dfa = Gen.alloc_filled_array mb ~kid:arr_kid ~len:128 in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, n2));
        Gen.repeat mb ~iters:(max 1 (rounds * scale / 100)) (fun r ->
            let a = B.add mb acc r in
            let x = B.call mb lex_round [ dfa; a ] in
            B.emit mb (Ir.Move (acc, x)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
