open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* pseudojbb — SPECjbb2000 doing a fixed amount of work (one warehouse,
   fixed transaction count).  Hot shape: a transaction loop over a mix of
   order/payment/stock-level operations, each a static chain of medium
   business-logic methods with allocation, over a very broad one-shot
   warehouse-population phase. *)

let name = "pseudojbb"
let description = "fixed-transaction TPC-C-style loop over one warehouse"

let transactions = 170

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x9BB in
  let populate = Gen.one_shot_sweep b rng ~name:"jbb_pop" ~count:160 ~ops_min:30 ~ops_max:120 () in
  let order_kid = B.new_class b ~name:"order" ~vtable:[||] in
  let wh_kid = Gen.array_class b ~name:"warehouse" in
  let wh_size = 96 in
  (* District tax policy: a monomorphic virtual call per transaction (one
     district class loaded) — guarded-devirtualization fodder. *)
  let tax_impl =
    B.method_ b ~name:"district_tax" ~nargs:2 (fun mb ->
        let rate = B.load mb 0 1 in
        let t = B.mul mb 1 rate in
        let c = B.const mb 100 in
        let r = B.binop mb Ir.Div t c in
        B.ret mb r)
  in
  let district_kid = B.new_class b ~name:"district" ~vtable:[| tax_impl |] in
  (* The item-lookup fast path: deep guarded DAG under every transaction. *)
  let item_lookup = Gen.guarded_dag b rng ~name:"jbb_item" ~levels:6 ~width:5 ~ops:2 in
  (* Business-logic chains. *)
  let new_order = Gen.chain b rng ~name:"new_order" ~len:4 ~ops:8 ~leaf_ops:6 in
  let payment = Gen.chain b rng ~name:"payment" ~len:3 ~ops:6 ~leaf_ops:5 in
  let stock_level = Gen.chain b rng ~name:"stock_level" ~len:2 ~ops:9 ~leaf_ops:7 in
  (* process(wh, txn, district): pick a transaction kind, run its chain,
     touch the warehouse array, allocate an order record, apply the tax. *)
  let process =
    B.method_ b ~name:"process_txn" ~nargs:3 (fun mb ->
        let three = B.const mb 3 in
        let kind = B.binop mb Ir.Mod 1 three in
        let zero = B.const mb 0 in
        let one = B.const mb 1 in
        let result = B.fresh_reg mb in
        let is0 = B.cmp mb Ir.Eq kind zero in
        B.if_ mb is0
          ~then_:(fun () ->
            let r = B.call mb new_order [ 1; kind ] in
            B.emit mb (Ir.Move (result, r)))
          ~else_:(fun () ->
            let is1 = B.cmp mb Ir.Eq kind one in
            B.if_ mb is1
              ~then_:(fun () ->
                let r = B.call mb payment [ 1; kind ] in
                B.emit mb (Ir.Move (result, r)))
              ~else_:(fun () ->
                let r = B.call mb stock_level [ 1; kind ] in
                B.emit mb (Ir.Move (result, r))));
        (* Record the order and update the warehouse row. *)
        let o = B.alloc mb order_kid ~slots:3 in
        B.store mb o 1 result;
        B.store mb o 2 kind;
        let m = B.const mb (wh_size - 1) in
        let row = B.binop mb Ir.And result m in
        let old = B.load_idx mb 0 row in
        let upd = B.add mb old result in
        B.store_idx mb 0 row upd;
        let v = B.load mb o 1 in
        let it = B.call mb item_lookup [ v ] in
        let tax = B.call_virt mb ~slot:0 2 [ it ] in
        let final = B.add mb it tax in
        B.ret mb final)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 61 in
        let cfg = B.call mb populate [ seed ] in
        let wh = Gen.alloc_filled_array mb ~kid:wh_kid ~len:wh_size in
        let district = B.alloc mb district_kid ~slots:1 in
        let eight = B.const mb 8 in
        B.store mb district 1 eight;
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (transactions * scale / 100)) (fun t ->
            let x = B.add mb acc t in
            let r = B.call mb process [ wh; x; district ] in
            B.emit mb (Ir.Move (acc, r)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
