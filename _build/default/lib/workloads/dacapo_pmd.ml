open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* pmd — static analysis of Java classes.  Hot shape: polymorphic AST visits
   (virtual dispatch over node kinds) where each rule applies a few shared
   checker helpers, over a wide one-shot rule-registration population. *)

let name = "pmd"
let description = "AST rule checker: polymorphic node visits + shared checkers"

let node_kinds = 9
let ast_nodes = 60
let check_rounds = 7

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x93D in
  let registration = Gen.one_shot_sweep b rng ~name:"pmd_reg" ~count:170 ~ops_min:25 ~ops_max:120 () in
  (* Symbol-table walk: a guarded DAG under every visit. *)
  let symtab = Gen.guarded_dag b rng ~name:"pmd_sym" ~levels:5 ~width:5 ~ops:2 in
  (* Shared checkers used by all node visitors. *)
  let check_naming = Gen.leaf b rng ~name:"check_naming" ~nargs:2 ~ops:12 in
  let check_unused = Gen.leaf b rng ~name:"check_unused" ~nargs:2 ~ops:14 in
  let check_size = Gen.leaf b rng ~name:"check_size" ~nargs:2 ~ops:9 in
  let visitors =
    Array.init node_kinds (fun v ->
        B.method_ b ~name:(Printf.sprintf "visit_%d" v) ~nargs:2 (fun mb ->
            let f1 = B.load mb 0 1 in
            let a = B.call mb check_naming [ f1; 1 ] in
            let c = B.call mb check_unused [ a; f1 ] in
            let d = B.call mb check_size [ c; a ] in
            let w = B.call mb symtab [ d ] in
            let r = Gen.arith mb rng ~ops:(6 + v) [ w ] in
            B.ret mb r))
  in
  let kids =
    Array.init node_kinds (fun v ->
        B.new_class b ~name:(Printf.sprintf "ast_node%d" v) ~vtable:[| visitors.(v) |])
  in
  let arr_kid = Gen.array_class b ~name:"ast_list" in
  let build_ast =
    B.method_ b ~name:"build_ast" ~nargs:0 (fun mb ->
        let arr = B.alloc mb arr_kid ~slots:ast_nodes in
        Gen.repeat mb ~iters:ast_nodes (fun i ->
            let k = B.const mb node_kinds in
            let sel = B.binop mb Ir.Mod i k in
            let obj = B.fresh_reg mb in
            let rec pick v =
              if v = node_kinds - 1 then begin
                let o = Gen.make_obj mb ~kid:kids.(v) ~f1:i ~f2:sel in
                B.emit mb (Ir.Move (obj, o))
              end
              else begin
                let c = B.const mb v in
                let eq = B.cmp mb Ir.Eq sel c in
                B.if_ mb eq
                  ~then_:(fun () ->
                    let o = Gen.make_obj mb ~kid:kids.(v) ~f1:i ~f2:sel in
                    B.emit mb (Ir.Move (obj, o)))
                  ~else_:(fun () -> pick (v + 1))
              end
            in
            pick 0;
            B.store_idx mb arr i obj);
        B.ret mb arr)
  in
  let apply_rules =
    B.method_ b ~name:"apply_rules" ~nargs:2 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:ast_nodes (fun i ->
            let node = B.load_idx mb 0 i in
            let r = B.call_virt mb ~slot:0 node [ acc ] in
            B.emit mb (Ir.Move (acc, r)));
        B.ret mb acc)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 43 in
        let cfg = B.call mb registration [ seed ] in
        let ast = B.call mb build_ast [] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (check_rounds * scale / 100)) (fun r ->
            let a = B.add mb acc r in
            let v = B.call mb apply_rules [ ast; a ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
