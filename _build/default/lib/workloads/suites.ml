open Inltune_jir

(* The benchmark registry: the SPECjvm98-like training suite and the
   DaCapo+JBB-like test suite (paper Tables 2 and 3). *)

type benchmark = {
  bname : string;
  bdescription : string;
  generate : ?scale:int -> unit -> Ir.program;
}

let spec =
  [
    { bname = Spec_compress.name; bdescription = Spec_compress.description; generate = Spec_compress.program };
    { bname = Spec_jess.name; bdescription = Spec_jess.description; generate = Spec_jess.program };
    { bname = Spec_db.name; bdescription = Spec_db.description; generate = Spec_db.program };
    { bname = Spec_javac.name; bdescription = Spec_javac.description; generate = Spec_javac.program };
    { bname = Spec_mpegaudio.name; bdescription = Spec_mpegaudio.description; generate = Spec_mpegaudio.program };
    { bname = Spec_raytrace.name; bdescription = Spec_raytrace.description; generate = Spec_raytrace.program };
    { bname = Spec_jack.name; bdescription = Spec_jack.description; generate = Spec_jack.program };
  ]

let dacapo =
  [
    { bname = Dacapo_antlr.name; bdescription = Dacapo_antlr.description; generate = Dacapo_antlr.program };
    { bname = Dacapo_fop.name; bdescription = Dacapo_fop.description; generate = Dacapo_fop.program };
    { bname = Dacapo_jython.name; bdescription = Dacapo_jython.description; generate = Dacapo_jython.program };
    { bname = Dacapo_pmd.name; bdescription = Dacapo_pmd.description; generate = Dacapo_pmd.program };
    { bname = Dacapo_ps.name; bdescription = Dacapo_ps.description; generate = Dacapo_ps.program };
    { bname = Dacapo_ipsixql.name; bdescription = Dacapo_ipsixql.description; generate = Dacapo_ipsixql.program };
    { bname = Dacapo_pseudojbb.name; bdescription = Dacapo_pseudojbb.description; generate = Dacapo_pseudojbb.program };
  ]

let all = spec @ dacapo

let find name =
  match List.find_opt (fun bm -> bm.bname = name) all with
  | Some bm -> bm
  | None -> invalid_arg ("Suites.find: unknown benchmark " ^ name)

let names suite = List.map (fun bm -> bm.bname) suite

(* Generated programs are deterministic, so share them per process: program
   generation is cheap but not free, and tuning asks for the same program
   thousands of times. *)
let cache : (string, Ir.program) Hashtbl.t = Hashtbl.create 16

let program bm =
  match Hashtbl.find_opt cache bm.bname with
  | Some p -> p
  | None ->
    let p = bm.generate () in
    Validate.check_exn p;
    Hashtbl.add cache bm.bname p;
    p

(* Non-default input sizes (the paper ran SPEC at size 100; smaller scales
   shift total time toward compilation).  Cached per (benchmark, scale). *)
let scaled_cache : (string, Ir.program) Hashtbl.t = Hashtbl.create 16

let program_scaled bm ~scale =
  if scale = 100 then program bm
  else begin
    let key = Printf.sprintf "%s@%d" bm.bname scale in
    match Hashtbl.find_opt scaled_cache key with
    | Some p -> p
    | None ->
      let p = bm.generate ~scale () in
      Validate.check_exn p;
      Hashtbl.add scaled_cache key p;
      p
  end
