open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* ps — a PostScript interpreter.  Hot shape: an operand-stack machine with
   tiny push/pop helpers and a token-dispatch chain.  Its hot operations are
   already minimal, which is why per-program tuning buys ps almost nothing in
   the paper's Fig. 10. *)

let name = "ps"
let description = "PostScript-style stack machine over a token stream"

let stack_size = 64
let tokens = 200
let rounds = 7

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x9505 in
  let arr_kid = Gen.array_class b ~name:"ps_stack" in
  let loader = Gen.one_shot_sweep b rng ~name:"ps_fonts" ~count:110 ~ops_min:20 ~ops_max:95 () in
  (* Tiny stack helpers: stack object slot 1 is the depth, payload follows. *)
  let push_op =
    B.method_ b ~name:"ps_push" ~nargs:2 (fun mb ->
        let sp = B.load_idx mb 0 (B.const mb 0) in
        let m = B.const mb (stack_size - 4) in
        let sp' = B.binop mb Ir.Mod sp m in
        let one = B.const mb 1 in
        let slot = B.add mb sp' one in
        B.store_idx mb 0 slot 1;
        let nsp = B.add mb sp' one in
        B.store_idx mb 0 (B.const mb 0) nsp;
        B.ret mb nsp)
  in
  let pop_op =
    B.method_ b ~name:"ps_pop" ~nargs:1 (fun mb ->
        let z = B.const mb 0 in
        let sp = B.load_idx mb 0 z in
        let v = B.load_idx mb 0 sp in
        let one = B.const mb 1 in
        let sp' = B.sub mb sp one in
        let zero = B.const mb 0 in
        let neg = B.cmp mb Ir.Lt sp' zero in
        let nsp = B.fresh_reg mb in
        B.if_ mb neg
          ~then_:(fun () -> B.emit mb (Ir.Move (nsp, zero)))
          ~else_:(fun () -> B.emit mb (Ir.Move (nsp, sp')));
        B.store_idx mb 0 z nsp;
        B.ret mb v)
  in
  (* Graphics-state resolution: a guarded DAG under every operator. *)
  let gstate = Gen.guarded_dag b rng ~name:"ps_gstate" ~levels:4 ~width:4 ~ops:2 in
  (* moveto/lineto/curveto: small-to-medium graphics operators. *)
  let moveto = Gen.leaf b rng ~name:"ps_moveto" ~nargs:2 ~ops:10 in
  let lineto = Gen.leaf b rng ~name:"ps_lineto" ~nargs:2 ~ops:13 in
  let curveto = Gen.leaf b rng ~name:"ps_curveto" ~nargs:2 ~ops:14 in
  let exec_token =
    B.method_ b ~name:"exec_token" ~nargs:3 (fun mb ->
        (* args: stack, token, acc *)
        let _sp = B.call mb push_op [ 0; 1 ] in
        let v0 = B.call mb pop_op [ 0 ] in
        let v = B.call mb gstate [ v0 ] in
        let three = B.const mb 3 in
        let sel = B.binop mb Ir.Mod 1 three in
        let zero = B.const mb 0 in
        let one = B.const mb 1 in
        let result = B.fresh_reg mb in
        let is0 = B.cmp mb Ir.Eq sel zero in
        B.if_ mb is0
          ~then_:(fun () ->
            let r = B.call mb moveto [ v; 2 ] in
            B.emit mb (Ir.Move (result, r)))
          ~else_:(fun () ->
            let is1 = B.cmp mb Ir.Eq sel one in
            B.if_ mb is1
              ~then_:(fun () ->
                let r = B.call mb lineto [ v; 2 ] in
                B.emit mb (Ir.Move (result, r)))
              ~else_:(fun () ->
                let r = B.call mb curveto [ v; 2 ] in
                B.emit mb (Ir.Move (result, r))));
        B.ret mb result)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 53 in
        let cfg = B.call mb loader [ seed ] in
        let stack = B.alloc mb arr_kid ~slots:stack_size in
        let z = B.const mb 0 in
        B.store_idx mb stack z z;
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (rounds * scale / 100)) (fun r ->
            Gen.repeat mb ~iters:tokens (fun t ->
                let tok = B.add mb acc t in
                let tok2 = B.add mb tok r in
                let v = B.call mb exec_token [ stack; tok2; acc ] in
                B.emit mb (Ir.Binop (Ir.Add, acc, acc, v))));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
