lib/workloads/spec_jack.ml: Builder Gen Inltune_jir Inltune_support Ir
