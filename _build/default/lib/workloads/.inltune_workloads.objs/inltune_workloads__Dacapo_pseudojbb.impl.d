lib/workloads/dacapo_pseudojbb.ml: Builder Gen Inltune_jir Inltune_support Ir
