lib/workloads/spec_compress.ml: Builder Gen Inltune_jir Inltune_support Ir
