lib/workloads/spec_raytrace.ml: Builder Gen Inltune_jir Inltune_support Ir
