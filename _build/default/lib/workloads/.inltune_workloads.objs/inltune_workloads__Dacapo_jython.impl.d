lib/workloads/dacapo_jython.ml: Array Builder Gen Inltune_jir Inltune_support Ir Printf
