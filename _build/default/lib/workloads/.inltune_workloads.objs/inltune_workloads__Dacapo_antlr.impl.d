lib/workloads/dacapo_antlr.ml: Builder Gen Inltune_jir Inltune_support Ir
