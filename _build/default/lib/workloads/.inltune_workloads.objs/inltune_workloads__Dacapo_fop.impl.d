lib/workloads/dacapo_fop.ml: Builder Gen Inltune_jir Inltune_support Ir
