lib/workloads/spec_mpegaudio.ml: Builder Gen Inltune_jir Inltune_support Ir
