lib/workloads/dacapo_ps.ml: Builder Gen Inltune_jir Inltune_support Ir
