lib/workloads/dacapo_ipsixql.ml: Builder Gen Inltune_jir Inltune_support Ir
