lib/workloads/gen.mli: Builder Inltune_jir Inltune_support Ir
