lib/workloads/gen.ml: Array Builder Inltune_jir Inltune_support Ir List Printf
