lib/workloads/spec_javac.ml: Builder Gen Inltune_jir Inltune_support Ir
