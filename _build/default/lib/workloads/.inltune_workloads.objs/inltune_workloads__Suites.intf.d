lib/workloads/suites.mli: Inltune_jir Ir
