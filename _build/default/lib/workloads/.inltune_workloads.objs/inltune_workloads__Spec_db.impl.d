lib/workloads/spec_db.ml: Builder Gen Inltune_jir Inltune_support Ir
