lib/workloads/dacapo_pmd.ml: Array Builder Gen Inltune_jir Inltune_support Ir Printf
