lib/workloads/spec_jess.ml: Array Builder Gen Inltune_jir Inltune_support Ir Printf
