open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* javac — a source-to-bytecode compiler.  Hot shape: a recursive-descent
   parser (mutually recursive *large* methods over a token array) plus a wide
   population of one-shot code-emission methods.  Large callees defeat
   CALLEE_MAX_SIZE; the many one-shot methods make compile time a real part
   of total time even in SPEC. *)

let name = "javac"
let description = "recursive-descent parser + one-shot emitters (large methods)"

let tokens = 600
let parse_rounds = 60

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x7AC in
  let arr_kid = Gen.array_class b ~name:"token_stream" in
  (* Tiny token accessor. *)
  let tok =
    B.method_ b ~name:"tok" ~nargs:2 (fun mb ->
        let m = B.const mb tokens in
        let i = B.binop mb Ir.Mod 1 m in
        let z = B.const mb 0 in
        let neg = B.cmp mb Ir.Lt i z in
        let idx = B.fresh_reg mb in
        B.if_ mb neg
          ~then_:(fun () ->
            let t = B.add mb i m in
            B.emit mb (Ir.Move (idx, t)))
          ~else_:(fun () -> B.emit mb (Ir.Move (idx, i)));
        let v = B.load_idx mb 0 idx in
        B.ret mb v)
  in
  (* Mutually recursive parser: expr -> term -> factor -> expr.  Each level
     carries a big body of "semantic action" arithmetic. *)
  let parse_expr = B.declare b ~name:"parse_expr" ~nargs:3 in
  let parse_term = B.declare b ~name:"parse_term" ~nargs:3 in
  let parse_factor = B.declare b ~name:"parse_factor" ~nargs:3 in
  (* args: stream, pos, depth *)
  let define_level mid ~ops ~next =
    B.define b mid (fun mb ->
        let t = B.call mb tok [ 0; 1 ] in
        let act = Gen.arith mb rng ~ops [ 1; t ] in
        let zero = B.const mb 0 in
        let stop = B.cmp mb Ir.Le 2 zero in
        let result = B.fresh_reg mb in
        B.if_ mb stop
          ~then_:(fun () -> B.emit mb (Ir.Move (result, act)))
          ~else_:(fun () ->
            let one = B.const mb 1 in
            let d' = B.sub mb 2 one in
            let p' = B.add mb 1 act in
            let sub = B.call mb next [ 0; p'; d' ] in
            let x = B.add mb sub act in
            B.emit mb (Ir.Move (result, x)));
        B.ret mb result)
  in
  define_level parse_expr ~ops:70 ~next:parse_term;
  define_level parse_term ~ops:55 ~next:parse_factor;
  define_level parse_factor ~ops:45 ~next:parse_expr;
  (* Wide one-shot emitter population: the "backend" of the compiler. *)
  let emitters = Gen.one_shot_sweep b rng ~name:"javac" ~count:70 ~ops_min:30 ~ops_max:120 () in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 5 in
        let cfg = B.call mb emitters [ seed ] in
        let stream = Gen.alloc_filled_array mb ~kid:arr_kid ~len:tokens in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (parse_rounds * scale / 100)) (fun r ->
            let depth = B.const mb 12 in
            let pos = B.add mb acc r in
            let v = B.call mb parse_expr [ stream; pos; depth ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
