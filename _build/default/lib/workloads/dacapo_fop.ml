open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* fop — XSL-FO to PDF formatting.  Allocation-heavy tree construction and a
   formatting traversal with medium-size layout helpers, over a broad
   one-shot property-resolution population. *)

let name = "fop"
let description = "XSL-FO formatting: tree build + layout traversal, alloc-heavy"

let doc_depth = 8
let layout_rounds = 8

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0xF09 in
  let props = Gen.one_shot_sweep b rng ~name:"fop_props" ~count:150 ~ops_min:25 ~ops_max:110 () in
  let doc = Gen.tree b rng ~name:"fo_tree" ~fold_ops:8 in
  (* Property resolution: a guarded DAG consulted per page. *)
  let resolve = Gen.guarded_dag b rng ~name:"fop_resolve" ~levels:5 ~width:5 ~ops:2 in
  (* Layout helpers: medium methods. *)
  let measure = Gen.leaf b rng ~name:"measure_box" ~nargs:2 ~ops:13 in
  let place = Gen.leaf b rng ~name:"place_box" ~nargs:2 ~ops:11 in
  let break_lines = Gen.leaf b rng ~name:"break_lines" ~nargs:2 ~ops:15 in
  (* render_page(root, page): fold the tree then run layout helpers, and
     allocate fresh area objects per page. *)
  let area_kid = B.new_class b ~name:"area" ~vtable:[||] in
  let render_page =
    B.method_ b ~name:"render_page" ~nargs:2 (fun mb ->
        let d = B.const mb 5 in
        let f = B.call mb doc.Gen.fold [ 0; d ] in
        let m = B.call mb measure [ f; 1 ] in
        let p = B.call mb place [ m; f ] in
        let br0 = B.call mb break_lines [ p; m ] in
        let br = B.call mb resolve [ br0 ] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, br));
        Gen.repeat mb ~iters:24 (fun i ->
            let a = B.alloc mb area_kid ~slots:4 in
            B.store mb a 1 acc;
            B.store mb a 2 i;
            let v1 = B.load mb a 1 in
            let v2 = B.load mb a 2 in
            let s = B.add mb v1 v2 in
            B.emit mb (Ir.Binop (Ir.Add, acc, acc, s)));
        B.ret mb acc)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 31 in
        let cfg = B.call mb props [ seed ] in
        let d = B.const mb doc_depth in
        let root = B.call mb doc.Gen.build [ d; seed ] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (layout_rounds * scale / 100)) (fun page ->
            let x = B.add mb acc page in
            let r = B.call mb render_page [ root; x ] in
            B.emit mb (Ir.Move (acc, r)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
