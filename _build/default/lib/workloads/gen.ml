open Inltune_jir
module Rng = Inltune_support.Rng
module B = Builder

(* Combinators for building synthetic JIR benchmarks.

   Every benchmark is a deterministic function of its seed: the Rng only
   shapes the *code* (operation mixes, method sizes, call targets), never the
   execution, so a given benchmark is the same program every time it is
   generated.  The combinators are chosen to reproduce the *structural*
   features the inlining heuristic is sensitive to: tiny arithmetic leaves
   (ALWAYS_INLINE fodder), medium helpers (CALLEE_MAX territory), deep static
   call chains (MAX_INLINE_DEPTH), huge one-shot methods (CALLER_MAX and
   compile time), and megamorphic virtual dispatch (not inlinable at all). *)

(* Emit [ops] arithmetic instructions drawing operands from a growing pool
   seeded with [inputs]; returns the register holding the final value.  Only
   "safe" operations are generated (no address arithmetic), so the result is
   a pure function of the inputs. *)
let arith mb rng ~ops inputs =
  let pool = Inltune_support.Vec.create () in
  List.iter (fun r -> Inltune_support.Vec.push pool r) inputs;
  if Inltune_support.Vec.is_empty pool then
    Inltune_support.Vec.push pool (B.const mb (Rng.range rng 1 64));
  let pick () =
    Inltune_support.Vec.get pool (Rng.int rng (Inltune_support.Vec.length pool))
  in
  let push r = Inltune_support.Vec.push pool r in
  for _ = 1 to ops do
    let r =
      match Rng.int rng 10 with
      | 0 -> B.const mb (Rng.range rng (-64) 64)
      | 1 -> B.add mb (pick ()) (pick ())
      | 2 -> B.sub mb (pick ()) (pick ())
      | 3 -> B.mul mb (pick ()) (pick ())
      | 4 -> B.binop mb Ir.Xor (pick ()) (pick ())
      | 5 -> B.binop mb Ir.And (pick ()) (pick ())
      | 6 -> B.binop mb Ir.Or (pick ()) (pick ())
      | 7 ->
        let amount = B.const mb (Rng.range rng 1 5) in
        B.binop mb (if Rng.bool rng then Ir.Shl else Ir.Shr) (pick ()) amount
      | 8 ->
        let divisor = B.const mb (Rng.range rng 2 17) in
        B.binop mb (if Rng.bool rng then Ir.Div else Ir.Mod) (pick ()) divisor
      | _ -> B.cmp mb (if Rng.bool rng then Ir.Lt else Ir.Gt) (pick ()) (pick ())
    in
    push r
  done;
  (* Fold the tail of the pool so the result depends on recent work. *)
  let a = Inltune_support.Vec.last pool in
  let b = pick () in
  B.add mb a b

(* A leaf method: pure arithmetic over its arguments. *)
let leaf b rng ~name ~nargs ~ops =
  B.method_ b ~name ~nargs (fun mb ->
      let inputs = List.init nargs (fun i -> i) in
      let r = arith mb rng ~ops inputs in
      B.ret mb r)

(* A two-level helper: a band-size outer method calling a band-size inner
   method calling a tiny leaf.  "Band" means between ALWAYS_INLINE_SIZE and
   CALLEE_MAX_SIZE at the Jikes defaults, where the depth and caller-size
   tests actually decide — the shape that makes MAX_INLINE_DEPTH matter. *)
let nested_helper b rng ~name ~outer_ops ~inner_ops ~leaf_ops =
  let lf = leaf b rng ~name:(name ^ "_leaf") ~nargs:2 ~ops:leaf_ops in
  let inner =
    B.method_ b ~name:(name ^ "_inner") ~nargs:2 (fun mb ->
        let t = arith mb rng ~ops:inner_ops [ 0; 1 ] in
        let r = B.call mb lf [ t; 0 ] in
        let out = B.add mb r t in
        B.ret mb out)
  in
  B.method_ b ~name ~nargs:2 (fun mb ->
      let t = arith mb rng ~ops:outer_ops [ 0; 1 ] in
      let r = B.call mb inner [ t; 1 ] in
      let out = B.add mb r t in
      B.ret mb out)

(* A linear call chain f1 -> f2 -> ... -> f_len (all two-argument): each link
   does [ops] local work, calls the next link, and combines.  Returns the
   entry method.  This is the shape MAX_INLINE_DEPTH governs. *)
let chain b rng ~name ~len ~ops ~leaf_ops =
  if len < 1 then invalid_arg "Gen.chain";
  let tail = leaf b rng ~name:(name ^ "_leaf") ~nargs:2 ~ops:leaf_ops in
  let rec build k next =
    if k = 0 then next
    else
      let m =
        B.method_ b ~name:(Printf.sprintf "%s_%d" name k) ~nargs:2 (fun mb ->
            let t = arith mb rng ~ops [ 0; 1 ] in
            let u = arith mb rng ~ops:(max 1 (ops / 2)) [ 1; t ] in
            let r = B.call mb next [ t; u ] in
            let out = B.add mb r t in
            B.ret mb out)
      in
      build (k - 1) m
  in
  build (len - 1) tail

(* A layered call DAG with *static* fanout 2 and *dynamic* fanout 1: each
   node does a little arithmetic, then a parity branch calls one of two
   children on the next level.  Inlining to depth d therefore grows code
   exponentially (both arms are candidates, one of them cold) while
   execution stays linear in the number of levels — the mechanism by which
   deep inlining bloats the I-cache and compile time without buying speed.
   Nodes are single-argument and sized to sit inside the
   [ALWAYS_INLINE_SIZE, CALLEE_MAX_SIZE] band of the default heuristic so
   the depth test is what decides.  Returns the entry method (1 argument). *)
let guarded_dag b rng ~name ~levels ~width ~ops =
  if levels < 1 || width < 1 then invalid_arg "Gen.guarded_dag";
  let leaves =
    Array.init width (fun i ->
        leaf b rng ~name:(Printf.sprintf "%s_l%d_n%d" name (levels - 1) i) ~nargs:1
          ~ops:(ops + 7))
  in
  let prev = ref leaves in
  for lev = levels - 2 downto 0 do
    prev :=
      Array.init width (fun i ->
          let t1 = Rng.pick rng !prev in
          let t2 = Rng.pick rng !prev in
          B.method_ b ~name:(Printf.sprintf "%s_l%d_n%d" name lev i) ~nargs:1 (fun mb ->
              let t = arith mb rng ~ops [ 0 ] in
              let one = B.const mb 1 in
              let parity = B.binop mb Ir.And t one in
              let r = B.fresh_reg mb in
              B.if_ mb parity
                ~then_:(fun () ->
                  let x = B.call mb t1 [ t ] in
                  B.emit mb (Ir.Move (r, x)))
                ~else_:(fun () ->
                  let x = B.call mb t2 [ t ] in
                  B.emit mb (Ir.Move (r, x)));
              B.ret mb r))
  done;
  !prev.(0)

(* A family of classes implementing one virtual slot with differently-sized
   method bodies; returns the class ids.  Instances carry two integer fields
   (slots 1 and 2) that the implementations read. *)
let dispatch_family b rng ~name ~variants ~ops =
  let mids =
    Array.init variants (fun v ->
        B.method_ b ~name:(Printf.sprintf "%s_impl%d" name v) ~nargs:2 (fun mb ->
            (* args: self, x *)
            let f1 = B.load mb 0 1 in
            let f2 = B.load mb 0 2 in
            let r = arith mb rng ~ops [ 1; f1; f2 ] in
            B.ret mb r))
  in
  Array.init variants (fun v ->
      B.new_class b ~name:(Printf.sprintf "%s_k%d" name v) ~vtable:[| mids.(v) |])

(* Allocate an instance of [kid] with two integer fields. *)
let make_obj mb ~kid ~f1 ~f2 =
  let o = B.alloc mb kid ~slots:2 in
  B.store mb o 1 f1;
  B.store mb o 2 f2;
  o

(* A "startup sweep": [count] methods of pseudo-random size, a fraction of
   which call earlier sweep methods, plus drivers that invoke each exactly
   once.  Models the one-shot class-loading / initialization breadth that
   makes the DaCapo suite compile-time-bound.  Returns the driver method
   (one argument, returns an accumulated value). *)
let one_shot_sweep b rng ~name ~count ~ops_min ~ops_max ?(per_driver = 40) () =
  if count < 1 then invalid_arg "Gen.one_shot_sweep";
  (* Shared utility helpers: small enough that the default heuristic inlines
     them into every one-shot body — pure compile-time waste, the effect that
     makes the default heuristic lose on DaCapo-style programs. *)
  let n_utils = max 3 (count / 30) in
  let utils =
    Array.init n_utils (fun u ->
        leaf b rng ~name:(Printf.sprintf "%s_util%d" name u) ~nargs:2
          ~ops:(Rng.range rng 12 17))
  in
  let members = Array.make count (-1) in
  for j = 0 to count - 1 do
    let ops = Rng.range rng ops_min ops_max in
    let calls_earlier = j > 0 && Rng.chance rng 0.3 in
    let n_util_calls = Rng.range rng 2 5 in
    members.(j) <-
      B.method_ b ~name:(Printf.sprintf "%s_init%d" name j) ~nargs:1 (fun mb ->
          let t = arith mb rng ~ops [ 0 ] in
          let t = ref t in
          for _ = 1 to n_util_calls do
            let u = utils.(Rng.int rng n_utils) in
            let r = B.call mb u [ !t; 0 ] in
            t := B.add mb !t r
          done;
          let r =
            if calls_earlier then begin
              let target = members.(Rng.int rng j) in
              let u = B.call mb target [ !t ] in
              B.add mb !t u
            end
            else !t
          in
          B.ret mb r)
  done;
  let ndrivers = (count + per_driver - 1) / per_driver in
  let drivers =
    Array.init ndrivers (fun d ->
        B.method_ b ~name:(Printf.sprintf "%s_load%d" name d) ~nargs:1 (fun mb ->
            let acc = B.move mb 0 in
            let lo = d * per_driver in
            let hi = min count (lo + per_driver) - 1 in
            let final =
              List.fold_left
                (fun acc j ->
                  let r = B.call mb members.(j) [ acc ] in
                  B.add mb acc r)
                acc
                (List.init (hi - lo + 1) (fun k -> lo + k))
            in
            B.ret mb final))
  in
  B.method_ b ~name:(name ^ "_load_all") ~nargs:1 (fun mb ->
      let final =
        Array.fold_left
          (fun acc d ->
            let r = B.call mb d [ acc ] in
            B.add mb acc r)
          0 drivers
      in
      B.ret mb final)

(* Binary-tree utilities: a node class with fields left (1), right (2),
   value (3).  Leaves point to themselves, so no null is needed; traversals
   are depth-guided. *)
type tree = { node_kid : Ir.kid; build : Ir.mid; fold : Ir.mid }

let tree b rng ~name ~fold_ops =
  let node_kid = B.new_class b ~name:(name ^ "_node") ~vtable:[||] in
  let build = B.declare b ~name:(name ^ "_build") ~nargs:2 in
  (* build(depth, seed) *)
  B.define b build (fun mb ->
      let node = B.alloc mb node_kid ~slots:3 in
      let seed_mix = arith mb rng ~ops:3 [ 1 ] in
      B.store mb node 3 seed_mix;
      let zero = B.const mb 0 in
      let stop = B.cmp mb Ir.Le 0 zero in
      B.if_ mb stop
        ~then_:(fun () ->
          B.store mb node 1 node;
          B.store mb node 2 node)
        ~else_:(fun () ->
          let one = B.const mb 1 in
          let d' = B.sub mb 0 one in
          let two = B.const mb 2 in
          let s1 = B.mul mb 1 two in
          let l = B.call mb build [ d'; s1 ] in
          let s2 = B.add mb s1 one in
          let r = B.call mb build [ d'; s2 ] in
          B.store mb node 1 l;
          B.store mb node 2 r);
      B.ret mb node);
  let fold = B.declare b ~name:(name ^ "_fold") ~nargs:2 in
  (* fold(node, depth) *)
  B.define b fold (fun mb ->
      let v = B.load mb 0 3 in
      let zero = B.const mb 0 in
      let stop = B.cmp mb Ir.Le 1 zero in
      let result = B.fresh_reg mb in
      B.if_ mb stop
        ~then_:(fun () ->
          let x = arith mb rng ~ops:fold_ops [ v ] in
          B.emit mb (Ir.Move (result, x)))
        ~else_:(fun () ->
          let one = B.const mb 1 in
          let d' = B.sub mb 1 one in
          let l = B.load mb 0 1 in
          let r = B.load mb 0 2 in
          let a = B.call mb fold [ l; d' ] in
          let c = B.call mb fold [ r; d' ] in
          let x = B.add mb a c in
          let y = B.add mb x v in
          B.emit mb (Ir.Move (result, y)));
      B.ret mb result);
  { node_kid; build; fold }

(* A vtable-less class used as a raw integer-array container. *)
let array_class b ~name = B.new_class b ~name ~vtable:[||]

(* Fixed-size integer array: allocate [len] slots and fill them with a
   deterministic mix of the index.  Emitted inline into the current method
   builder; returns the array register. *)
let alloc_filled_array mb ~kid ~len =
  let arr = B.alloc mb kid ~slots:len in
  let n = B.const mb len in
  B.for_loop mb ~n (fun i ->
      let c1 = B.const mb 2654435761 in
      let v0 = B.mul mb i c1 in
      let sh = B.const mb 7 in
      let v1 = B.binop mb Ir.Shr v0 sh in
      let v = B.binop mb Ir.Xor v0 v1 in
      B.store_idx mb arr i v);
  arr

(* Run [body] inside a counted loop of [iters] iterations. *)
let repeat mb ~iters body =
  let n = B.const mb iters in
  B.for_loop mb ~n body

(* Standard benchmark epilogue: print the checksum so the whole computation
   is observable (and hence not removable by DCE). *)
let finish_main mb acc =
  B.print mb acc;
  B.ret mb acc
