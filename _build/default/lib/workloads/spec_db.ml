open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* db — an in-memory database: build a table of record objects, then run a
   query mix of scans, keyed lookups and an insertion-sort pass.  Hot shape:
   O(n^2)-ish loops whose bodies are *tiny* comparison/extraction helpers —
   the workload that rewards ALWAYS_INLINE_SIZE most directly. *)

let name = "db"
let description = "in-memory database: scans, lookups, sort over record objects"

let records = 120
let query_rounds = 24

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0xDB05 in
  let rec_kid = B.new_class b ~name:"record" ~vtable:[||] in
  let arr_kid = Gen.array_class b ~name:"db_index" in
  (* Tiny accessors and comparators. *)
  let key_of =
    B.method_ b ~name:"key_of" ~nargs:1 (fun mb ->
        let k = B.load mb 0 1 in
        B.ret mb k)
  in
  let val_of =
    B.method_ b ~name:"val_of" ~nargs:1 (fun mb ->
        let v = B.load mb 0 2 in
        B.ret mb v)
  in
  let rec_less =
    B.method_ b ~name:"rec_less" ~nargs:2 (fun mb ->
        let ka = B.call mb key_of [ 0 ] in
        let kb = B.call mb key_of [ 1 ] in
        let r = B.cmp mb Ir.Lt ka kb in
        B.ret mb r)
  in
  let combine = Gen.leaf b rng ~name:"fold_val" ~nargs:2 ~ops:6 in
  (* make_record(i): allocate and fill one row. *)
  let make_record =
    B.method_ b ~name:"make_record" ~nargs:1 (fun mb ->
        let o = B.alloc mb rec_kid ~slots:3 in
        let c = B.const mb 48271 in
        let k = B.mul mb 0 c in
        let m = B.const mb 9973 in
        let k = B.binop mb Ir.Mod k m in
        B.store mb o 1 k;
        let v = Gen.arith mb rng ~ops:8 [ 0 ] in
        B.store mb o 2 v;
        B.store mb o 3 0;
        B.ret mb o)
  in
  let build_table =
    B.method_ b ~name:"build_table" ~nargs:0 (fun mb ->
        let arr = B.alloc mb arr_kid ~slots:records in
        Gen.repeat mb ~iters:records (fun i ->
            let o = B.call mb make_record [ i ] in
            B.store_idx mb arr i o);
        B.ret mb arr)
  in
  (* scan(table, acc): fold every record's value. *)
  let scan =
    B.method_ b ~name:"scan" ~nargs:2 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:records (fun i ->
            let o = B.load_idx mb 0 i in
            let v = B.call mb val_of [ o ] in
            let r = B.call mb combine [ acc; v ] in
            B.emit mb (Ir.Move (acc, r)));
        B.ret mb acc)
  in
  (* sort_pass(table): one insertion-sort sweep using rec_less. *)
  let sort_pass =
    B.method_ b ~name:"sort_pass" ~nargs:1 (fun mb ->
        let swaps = B.fresh_reg mb in
        B.emit mb (Ir.Const (swaps, 0));
        Gen.repeat mb ~iters:(records - 1) (fun i ->
            let one = B.const mb 1 in
            let j = B.add mb i one in
            let a = B.load_idx mb 0 i in
            let c = B.load_idx mb 0 j in
            let lt = B.call mb rec_less [ c; a ] in
            B.if_ mb lt
              ~then_:(fun () ->
                B.store_idx mb 0 i c;
                B.store_idx mb 0 j a;
                B.emit mb (Ir.Binop (Ir.Add, swaps, swaps, one)))
              ~else_:(fun () -> ()));
        B.ret mb swaps)
  in
  (* lookup(table, key): linear probe for a key, fold position. *)
  let lookup =
    B.method_ b ~name:"lookup" ~nargs:2 (fun mb ->
        let found = B.fresh_reg mb in
        B.emit mb (Ir.Const (found, -1));
        Gen.repeat mb ~iters:records (fun i ->
            let o = B.load_idx mb 0 i in
            let k = B.call mb key_of [ o ] in
            let eq = B.cmp mb Ir.Eq k 1 in
            B.if_ mb eq
              ~then_:(fun () -> B.emit mb (Ir.Move (found, i)))
              ~else_:(fun () -> ()));
        B.ret mb found)
  in
  let setup = Gen.one_shot_sweep b rng ~name:"db" ~count:25 ~ops_min:15 ~ops_max:60 () in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 11 in
        let cfg = B.call mb setup [ seed ] in
        let table = B.call mb build_table [] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (query_rounds * scale / 100)) (fun q ->
            let s = B.call mb scan [ table; acc ] in
            let sw = B.call mb sort_pass [ table ] in
            let m = B.const mb 9973 in
            let key = B.binop mb Ir.Mod s m in
            let pos = B.call mb lookup [ table; key ] in
            let t = B.add mb s sw in
            let t2 = B.add mb t pos in
            let t3 = B.add mb t2 q in
            B.emit mb (Ir.Move (acc, t3)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
