open Inltune_jir
module Rng = Inltune_support.Rng

(** Combinators for building synthetic JIR benchmarks.

    Generators are deterministic in their [Rng]: randomness shapes the code
    (operation mixes, sizes, call targets), never the execution.  The
    combinators reproduce the structural features the inlining heuristic is
    sensitive to — tiny leaves (ALWAYS_INLINE fodder), band-size helpers
    (where the depth and caller tests decide), deep guarded call DAGs
    (exponential static growth, linear execution), huge one-shot methods
    (compile-time mass), and megamorphic dispatch (never inlinable). *)

(** Emit [ops] arithmetic instructions over a pool seeded with [inputs];
    returns the register holding the result.  Total (no traps). *)
val arith : Builder.mb -> Rng.t -> ops:int -> Ir.reg list -> Ir.reg

(** A pure-arithmetic method of roughly [ops] instructions. *)
val leaf : Builder.t -> Rng.t -> name:string -> nargs:int -> ops:int -> Ir.mid

(** Outer (band) -> inner (band) -> leaf (tiny) helper; returns the outer
    method (two arguments). *)
val nested_helper :
  Builder.t -> Rng.t -> name:string -> outer_ops:int -> inner_ops:int -> leaf_ops:int -> Ir.mid

(** A linear two-argument call chain of [len] links, each doing [ops] local
    work; the shape MAX_INLINE_DEPTH governs.  Returns the entry method. *)
val chain :
  Builder.t -> Rng.t -> name:string -> len:int -> ops:int -> leaf_ops:int -> Ir.mid

(** A layered call DAG with static fanout 2 and dynamic fanout 1 (a parity
    branch picks one child): code grows exponentially under deep inlining
    while execution stays linear.  Returns the entry method (1 argument). *)
val guarded_dag :
  Builder.t -> Rng.t -> name:string -> levels:int -> width:int -> ops:int -> Ir.mid

(** [variants] classes implementing one virtual slot with different bodies;
    instances carry two integer fields.  Returns the class ids. *)
val dispatch_family :
  Builder.t -> Rng.t -> name:string -> variants:int -> ops:int -> Ir.kid array

(** Allocate an instance of [kid] with fields 1 and 2 initialized. *)
val make_obj : Builder.mb -> kid:Ir.kid -> f1:Ir.reg -> f2:Ir.reg -> Ir.reg

(** [count] one-shot methods plus drivers invoking each exactly once, with
    shared band-size utility callees (inline bait that wastes compile time).
    Returns the driver method (1 argument). *)
val one_shot_sweep :
  Builder.t ->
  Rng.t ->
  name:string ->
  count:int ->
  ops_min:int ->
  ops_max:int ->
  ?per_driver:int ->
  unit ->
  Ir.mid

(** Binary-tree utilities; leaves self-link so no null exists and traversals
    are depth-guided. *)
type tree = { node_kid : Ir.kid; build : Ir.mid; fold : Ir.mid }

val tree : Builder.t -> Rng.t -> name:string -> fold_ops:int -> tree

(** A vtable-less class used as a raw integer-array container. *)
val array_class : Builder.t -> name:string -> Ir.kid

(** Allocate a [len]-slot array and fill it with a deterministic index mix;
    emitted into the current block. *)
val alloc_filled_array : Builder.mb -> kid:Ir.kid -> len:int -> Ir.reg

(** Counted loop of [iters] iterations. *)
val repeat : Builder.mb -> iters:int -> (Ir.reg -> unit) -> unit

(** Benchmark epilogue: print the checksum (making the computation
    observable) and return it. *)
val finish_main : Builder.mb -> Ir.reg -> unit
