open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* raytrace — single-threaded mtrt.  Hot shape: swarms of *tiny* vector
   helpers (dot, scale, reflect) invoked from a recursive scene traversal
   over an object tree.  The paper's biggest Adapt winner (-27% running
   time): inlining the tiny helpers everywhere is almost pure profit. *)

let name = "raytrace"
let description = "recursive scene traversal calling tiny vector helpers"

let scene_depth = 7
let rays = 260

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x6A97 in
  (* Tiny vector kernels. *)
  let dot =
    B.method_ b ~name:"v_dot" ~nargs:2 (fun mb ->
        let p = B.mul mb 0 1 in
        let sh = B.const mb 5 in
        let r = B.binop mb Ir.Shr p sh in
        B.ret mb r)
  in
  let vscale =
    B.method_ b ~name:"v_scale" ~nargs:2 (fun mb ->
        let t = B.mul mb 0 1 in
        let c = B.const mb 3 in
        let r = B.binop mb Ir.Div t c in
        B.ret mb r)
  in
  let reflect =
    B.method_ b ~name:"v_reflect" ~nargs:2 (fun mb ->
        let d = B.call mb dot [ 0; 1 ] in
        let s = B.call mb vscale [ d; 1 ] in
        let r = B.sub mb 0 s in
        B.ret mb r)
  in
  let clamp =
    B.method_ b ~name:"clamp" ~nargs:1 (fun mb ->
        let m = B.const mb 255 in
        let r = B.binop mb Ir.And 0 m in
        B.ret mb r)
  in
  (* The scene: a binary BSP-style tree. *)
  let scene = Gen.tree b rng ~name:"scene" ~fold_ops:6 in
  (* shade(hit, ray): medium shading math over tiny helpers. *)
  let shade =
    B.method_ b ~name:"shade" ~nargs:2 (fun mb ->
        let d = B.call mb dot [ 0; 1 ] in
        let s = B.call mb vscale [ d; 0 ] in
        let rf = B.call mb reflect [ s; 1 ] in
        let c = B.call mb clamp [ rf ] in
        let r = Gen.arith mb rng ~ops:10 [ c; d ] in
        B.ret mb r)
  in
  (* trace(node_tree, ray, depth): recursive ray walk: fold the scene subtree
     then shade. *)
  let trace = B.declare b ~name:"trace" ~nargs:3 in
  B.define b trace (fun mb ->
      (* args: root, ray, depth *)
      let zero = B.const mb 0 in
      let stop = B.cmp mb Ir.Le 2 zero in
      let result = B.fresh_reg mb in
      B.if_ mb stop
        ~then_:(fun () ->
          let c = B.call mb clamp [ 1 ] in
          B.emit mb (Ir.Move (result, c)))
        ~else_:(fun () ->
          let two = B.const mb 2 in
          let sub_d = B.binop mb Ir.Mod 1 two in
          let hit = B.call mb scene.Gen.fold [ 0; sub_d ] in
          let sh = B.call mb shade [ hit; 1 ] in
          let one = B.const mb 1 in
          let d' = B.sub mb 2 one in
          let ray' = B.call mb reflect [ 1; sh ] in
          let deeper = B.call mb trace [ 0; ray'; d' ] in
          let x = B.add mb sh deeper in
          B.emit mb (Ir.Move (result, x)));
      B.ret mb result);
  let setup = Gen.one_shot_sweep b rng ~name:"rt" ~count:20 ~ops_min:15 ~ops_max:55 () in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 13 in
        let cfg = B.call mb setup [ seed ] in
        let depth = B.const mb scene_depth in
        let root = B.call mb scene.Gen.build [ depth; seed ] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (rays * scale / 100)) (fun ray ->
            let r0 = B.add mb acc ray in
            let bounce = B.const mb 4 in
            let v = B.call mb trace [ root; r0; bounce ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
