open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* jess — a rule-based expert system shell.  Hot shape: a megamorphic
   dispatch loop over many fact kinds (virtual calls the inliner cannot
   touch) whose implementations each statically call several *shared* medium
   helpers.  Inlining those helpers duplicates them into every rule body, so
   aggressive depth/size settings bloat the hot working set past the I-cache
   — this is the benchmark where the Jikes default depth of 5 is the worst
   choice in the paper's Fig. 2(b). *)

let name = "jess"
let description = "rule-engine dispatch over many fact kinds (I-cache-bound)"

let fact_kinds = 20
let facts = 48
let rounds = 10

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x1E55 in
  (* Shared condition-evaluation helpers: medium-size, called from every
     rule implementation. *)
  let eval_lhs = Gen.nested_helper b rng ~name:"eval_lhs" ~outer_ops:10 ~inner_ops:11 ~leaf_ops:5 in
  let eval_rhs = Gen.nested_helper b rng ~name:"eval_rhs" ~outer_ops:9 ~inner_ops:10 ~leaf_ops:4 in
  let unify = Gen.nested_helper b rng ~name:"unify" ~outer_ops:11 ~inner_ops:12 ~leaf_ops:6 in
  let bind = Gen.nested_helper b rng ~name:"bind_vars" ~outer_ops:8 ~inner_ops:9 ~leaf_ops:4 in
  (* The Rete-network walk: a deep guarded DAG shared by every rule — the
     code that multiplies across all 20 rule bodies when inlined deep. *)
  let rete = Gen.guarded_dag b rng ~name:"rete" ~levels:7 ~width:6 ~ops:2 in
  (* Rule bodies: one per fact kind, each dispatch target calls the shared
     helpers statically. *)
  let impls =
    Array.init fact_kinds (fun v ->
        B.method_ b ~name:(Printf.sprintf "rule_match%d" v) ~nargs:2 (fun mb ->
            let f1 = B.load mb 0 1 in
            let f2 = B.load mb 0 2 in
            let a = B.call mb eval_lhs [ f1; 1 ] in
            let c = B.call mb eval_rhs [ f2; a ] in
            let u = B.call mb unify [ a; c ] in
            let d = B.call mb bind [ u; f1 ] in
            let w = B.call mb rete [ d ] in
            let r = Gen.arith mb rng ~ops:(8 + (v mod 5)) [ w; c ] in
            B.ret mb r))
  in
  let kids =
    Array.init fact_kinds (fun v ->
        B.new_class b ~name:(Printf.sprintf "fact%d" v) ~vtable:[| impls.(v) |])
  in
  let fact_arr_kid = Gen.array_class b ~name:"fact_list" in
  (* agenda(acc): firing chain — static calls of medium helpers, depth 5. *)
  let agenda = Gen.chain b rng ~name:"agenda" ~len:5 ~ops:8 ~leaf_ops:6 in
  (* assert_facts: build the working memory (one object per fact). *)
  let assert_facts =
    B.method_ b ~name:"assert_facts" ~nargs:0 (fun mb ->
        let arr = B.alloc mb fact_arr_kid ~slots:facts in
        Gen.repeat mb ~iters:facts (fun i ->
            let k = B.const mb fact_kinds in
            let sel = B.binop mb Ir.Mod i k in
            (* Choose the class by a chain of comparisons (class ids are not
               first-class values). *)
            let obj = B.fresh_reg mb in
            let rec pick v =
              if v = fact_kinds - 1 then begin
                let o = Gen.make_obj mb ~kid:kids.(v) ~f1:i ~f2:sel in
                B.emit mb (Ir.Move (obj, o))
              end
              else begin
                let c = B.const mb v in
                let eq = B.cmp mb Ir.Eq sel c in
                B.if_ mb eq
                  ~then_:(fun () ->
                    let o = Gen.make_obj mb ~kid:kids.(v) ~f1:i ~f2:sel in
                    B.emit mb (Ir.Move (obj, o)))
                  ~else_:(fun () -> pick (v + 1))
              end
            in
            pick 0;
            B.store_idx mb arr i obj);
        B.ret mb arr)
  in
  let run_rules =
    B.method_ b ~name:"run_rules" ~nargs:2 (fun mb ->
        (* args: facts array, acc *)
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:facts (fun i ->
            let f = B.load_idx mb 0 i in
            let r = B.call_virt mb ~slot:0 f [ acc ] in
            let fired = B.call mb agenda [ r; acc ] in
            B.emit mb (Ir.Move (acc, fired)));
        B.ret mb acc)
  in
  let setup = Gen.one_shot_sweep b rng ~name:"jess" ~count:110 ~ops_min:20 ~ops_max:80 () in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 3 in
        let cfg = B.call mb setup [ seed ] in
        let wm = B.call mb assert_facts [] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (rounds * scale / 100)) (fun r ->
            let a = B.add mb acc r in
            let x = B.call mb run_rules [ wm; a ] in
            B.emit mb (Ir.Move (acc, x)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
