open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* jython — a Python interpreter.  Hot shape: one *big* dispatch method
   (nested opcode tests) statically calling a population of small opcode
   handlers — the structure that rewards inlining handlers into the dispatch
   loop on a big I-cache and punishes it on a small one. *)

let name = "jython"
let description = "bytecode-interpreter loop: big dispatcher + 20 opcode handlers"

let opcode_kinds = 20
let bytecode_len = 256
let exec_rounds = 8

(* [scale] stretches the running phase (100 = the paper's default size):
   the setup/compile work is fixed, so scale moves the compile/run balance
   exactly like SPEC's input sizes did. *)
let program ?(scale = 100) () =
  let b = B.create name in
  let rng = Rng.create 0x97 in
  let arr_kid = Gen.array_class b ~name:"pycode" in
  let runtime = Gen.one_shot_sweep b rng ~name:"py_rt" ~count:130 ~ops_min:25 ~ops_max:100 () in
  (* The object-model fast path: a guarded call DAG every handler descends
     into — the deep inline-bait in jython's hot code. *)
  let obj_model = Gen.guarded_dag b rng ~name:"py_obj" ~levels:5 ~width:5 ~ops:2 in
  (* Opcode handlers: smallish, statically called by the dispatcher. *)
  let handlers =
    Array.init opcode_kinds (fun v ->
        if v mod 3 = 0 then
          B.method_ b ~name:(Printf.sprintf "op_%d" v) ~nargs:2 (fun mb ->
              let t = Gen.arith mb rng ~ops:4 [ 0; 1 ] in
              let r = B.call mb obj_model [ t ] in
              let out = B.add mb r t in
              B.ret mb out)
        else Gen.leaf b rng ~name:(Printf.sprintf "op_%d" v) ~nargs:2 ~ops:(7 + (v mod 9)))
  in
  (* dispatch(op, acc): nested comparisons selecting the handler. *)
  let dispatch =
    B.method_ b ~name:"dispatch" ~nargs:2 (fun mb ->
        let result = B.fresh_reg mb in
        let rec cases v =
          if v = opcode_kinds - 1 then begin
            let r = B.call mb handlers.(v) [ 1; 0 ] in
            B.emit mb (Ir.Move (result, r))
          end
          else begin
            let c = B.const mb v in
            let eq = B.cmp mb Ir.Eq 0 c in
            B.if_ mb eq
              ~then_:(fun () ->
                let r = B.call mb handlers.(v) [ 1; 0 ] in
                B.emit mb (Ir.Move (result, r)))
              ~else_:(fun () -> cases (v + 1))
          end
        in
        cases 0;
        B.ret mb result)
  in
  (* exec_code(code, acc): the interpreter loop. *)
  let exec_code =
    B.method_ b ~name:"exec_code" ~nargs:2 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, 1));
        Gen.repeat mb ~iters:bytecode_len (fun pc ->
            let raw = B.load_idx mb 0 pc in
            let k = B.const mb opcode_kinds in
            let op = B.binop mb Ir.Mod raw k in
            let z = B.const mb 0 in
            let neg = B.cmp mb Ir.Lt op z in
            let op' = B.fresh_reg mb in
            B.if_ mb neg
              ~then_:(fun () ->
                let t = B.add mb op k in
                B.emit mb (Ir.Move (op', t)))
              ~else_:(fun () -> B.emit mb (Ir.Move (op', op)));
            let r = B.call mb dispatch [ op'; acc ] in
            B.emit mb (Ir.Binop (Ir.Add, acc, acc, r)));
        B.ret mb acc)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let seed = B.const mb 41 in
        let cfg = B.call mb runtime [ seed ] in
        let code = Gen.alloc_filled_array mb ~kid:arr_kid ~len:bytecode_len in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(max 1 (exec_rounds * scale / 100)) (fun r ->
            let a = B.add mb acc r in
            let v = B.call mb exec_code [ code; a ] in
            B.emit mb (Ir.Move (acc, v)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b
