module Rng = Inltune_support.Rng

(* Local-search baselines for the tuning problem: hill climbing with random
   restarts, and simulated annealing.  Both share the GA's genome spec and a
   fixed evaluation budget so searchers can be compared fairly (the paper
   chose a GA; these quantify what that choice buys). *)

type result = {
  best : int array;
  best_fitness : float;
  evaluations : int;
}

(* A neighbour: perturb one gene, small step or full reset. *)
let neighbour spec rng g =
  let g' = Array.copy g in
  let i = Rng.int rng (Array.length g) in
  let lo, hi = Genome.range spec i in
  let span = hi - lo + 1 in
  if Rng.chance rng 0.3 || span <= 4 then g'.(i) <- Rng.range rng lo hi
  else begin
    let step = max 1 (span / 10) in
    let delta = Rng.range rng 1 step * if Rng.bool rng then 1 else -1 in
    g'.(i) <- max lo (min hi (g'.(i) + delta))
  end;
  g'

(* First-improvement hill climbing with random restarts: accept a neighbour
   as soon as it improves; restart from a random point after [patience]
   consecutive non-improving neighbours. *)
let hill_climb ?(patience = 20) ~spec ~budget ~seed ~fitness () =
  if budget < 1 then invalid_arg "Localsearch.hill_climb";
  let rng = Rng.create seed in
  let evaluations = ref 0 in
  let eval g =
    incr evaluations;
    fitness g
  in
  let current = ref (Genome.random spec rng) in
  let current_fit = ref (eval !current) in
  let best = ref !current and best_fit = ref !current_fit in
  let stale = ref 0 in
  while !evaluations < budget do
    if !stale >= patience then begin
      current := Genome.random spec rng;
      current_fit := eval !current;
      stale := 0
    end
    else begin
      let cand = neighbour spec rng !current in
      let f = eval cand in
      if f < !current_fit then begin
        current := cand;
        current_fit := f;
        stale := 0
      end
      else incr stale
    end;
    if !current_fit < !best_fit then begin
      best := !current;
      best_fit := !current_fit
    end
  done;
  { best = !best; best_fitness = !best_fit; evaluations = !evaluations }

(* Simulated annealing with a geometric cooling schedule.  Worse neighbours
   are accepted with probability exp(-delta / temperature). *)
let anneal ?(t0 = 0.05) ?(cooling = 0.98) ~spec ~budget ~seed ~fitness () =
  if budget < 1 then invalid_arg "Localsearch.anneal";
  if not (cooling > 0.0 && cooling < 1.0) then invalid_arg "Localsearch.anneal: cooling";
  let rng = Rng.create seed in
  let evaluations = ref 0 in
  let eval g =
    incr evaluations;
    fitness g
  in
  let current = ref (Genome.random spec rng) in
  let current_fit = ref (eval !current) in
  let best = ref !current and best_fit = ref !current_fit in
  let temperature = ref t0 in
  while !evaluations < budget do
    let cand = neighbour spec rng !current in
    let f = eval cand in
    let accept =
      f < !current_fit
      || Rng.float rng 1.0 < Float.exp (-.(f -. !current_fit) /. Float.max 1e-9 !temperature)
    in
    if accept then begin
      current := cand;
      current_fit := f
    end;
    if !current_fit < !best_fit then begin
      best := !current;
      best_fit := !current_fit
    end;
    temperature := !temperature *. cooling
  done;
  { best = !best; best_fitness = !best_fit; evaluations = !evaluations }
