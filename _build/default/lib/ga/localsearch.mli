(** Local-search baselines (hill climbing with restarts, simulated
    annealing) sharing the GA's genome spec and evaluation-budget accounting
    so search algorithms can be compared fairly. *)

type result = {
  best : int array;
  best_fitness : float;
  evaluations : int;
}

(** First-improvement hill climbing with random restarts after [patience]
    consecutive non-improving neighbours (default 20).  Minimizes. *)
val hill_climb :
  ?patience:int ->
  spec:Genome.spec ->
  budget:int ->
  seed:int ->
  fitness:(int array -> float) ->
  unit ->
  result

(** Simulated annealing with geometric cooling ([t0] initial temperature,
    [cooling] in (0, 1)).  Minimizes. *)
val anneal :
  ?t0:float ->
  ?cooling:float ->
  spec:Genome.spec ->
  budget:int ->
  seed:int ->
  fitness:(int array -> float) ->
  unit ->
  result
