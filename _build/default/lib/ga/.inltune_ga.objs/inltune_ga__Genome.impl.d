lib/ga/genome.ml: Array Float Inltune_support String
