lib/ga/evolve.ml: Array Genome Hashtbl Inltune_support List
