lib/ga/localsearch.mli: Genome
