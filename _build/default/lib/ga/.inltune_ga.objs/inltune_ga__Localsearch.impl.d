lib/ga/localsearch.ml: Array Float Genome Inltune_support
