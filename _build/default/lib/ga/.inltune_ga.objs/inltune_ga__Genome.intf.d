lib/ga/genome.mli: Inltune_support
