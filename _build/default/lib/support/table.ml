(* Plain-text table rendering for experiment reports: every paper table and
   figure is printed as one of these. *)

type align = Left | Right

type t = {
  title : string;
  header : string array;
  aligns : align array;
  rows : string array Vec.t;
}

let create ~title ~header ~aligns =
  if Array.length header <> Array.length aligns then
    invalid_arg "Table.create: header/aligns length mismatch";
  { title; header; aligns; rows = Vec.create () }

let add_row t row =
  if Array.length row <> Array.length t.header then
    invalid_arg "Table.add_row: wrong arity";
  Vec.push t.rows row

let add_rule t = Vec.push t.rows [||]

let fmt_float ?(digits = 3) v = Printf.sprintf "%.*f" digits v

let fmt_pct v = Printf.sprintf "%+.1f%%" v

let render t =
  let ncols = Array.length t.header in
  let widths = Array.map String.length t.header in
  Vec.iter
    (fun row ->
      if Array.length row > 0 then
        Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    t.rows;
  let buf = Buffer.create 1024 in
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let rule () =
    for i = 0 to ncols - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      if i < ncols - 1 then Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  let emit_row align_of row =
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad (align_of i) widths.(i) row.(i));
      Buffer.add_char buf ' ';
      if i < ncols - 1 then Buffer.add_char buf '|'
    done;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  emit_row (fun _ -> Left) t.header;
  rule ();
  Vec.iter
    (fun row -> if Array.length row = 0 then rule () else emit_row (fun i -> t.aligns.(i)) row)
    t.rows;
  Buffer.contents buf

let print t = print_string (render t)

(* A crude horizontal bar for figure-style output: value 1.0 is the baseline
   mark; shorter bars mean improvement, per the paper's normalized plots. *)
let bar ?(width = 40) v =
  let clamped = Float.max 0.0 (Float.min 2.0 v) in
  let n = Float.to_int (clamped /. 2.0 *. Float.of_int width) in
  let marker = width / 2 in
  String.init width (fun i ->
      if i = marker then '|' else if i < n then '#' else ' ')
