(** Growable arrays with amortized O(1) push. *)

type 'a t

(** Fresh empty vector. *)
val create : unit -> 'a t

(** [make capacity dummy] pre-allocates room for [capacity] elements. *)
val make : int -> 'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Bounds-checked access; raise [Invalid_argument] outside [0, length). *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** Remove and return the last element. *)
val pop : 'a t -> 'a

(** Last element without removing it. *)
val last : 'a t -> 'a

(** [append t other] pushes all of [other] onto [t]. *)
val append : 'a t -> 'a t -> unit

val push_array : 'a t -> 'a array -> unit
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val clear : 'a t -> unit
