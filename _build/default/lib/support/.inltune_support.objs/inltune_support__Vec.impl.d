lib/support/vec.ml: Array
