lib/support/table.ml: Array Buffer Float Printf String Vec
