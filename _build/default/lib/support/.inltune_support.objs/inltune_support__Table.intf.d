lib/support/table.mli:
