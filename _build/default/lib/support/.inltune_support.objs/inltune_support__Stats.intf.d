lib/support/stats.mli:
