lib/support/pool.ml: Array Atomic Domain List
