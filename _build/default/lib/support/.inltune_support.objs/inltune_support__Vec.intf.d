lib/support/vec.mli:
