lib/support/pool.mli:
