lib/support/rng.mli:
