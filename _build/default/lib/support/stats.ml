let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

(* Geometric mean, the paper's aggregate over a benchmark suite:
   Perf(S) = (prod Perf(s))^(1/|S|).  Computed in log space to avoid
   overflow on long suites. *)
let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive") xs;
  let s = Array.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs in
  Float.exp (s /. Float.of_int (Array.length xs))

let min_of xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_of: empty";
  Array.fold_left Float.min xs.(0) xs

let max_of xs =
  if Array.length xs = 0 then invalid_arg "Stats.max_of: empty";
  Array.fold_left Float.max xs.(0) xs

let stddev xs =
  let m = mean xs in
  let n = Float.of_int (Array.length xs) in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. n in
  Float.sqrt var

(* Percentage reduction relative to a baseline: 0.83 -> 17.%. *)
let reduction_pct ratio = (1.0 -. ratio) *. 100.0

let ratio ~baseline x =
  if baseline <= 0.0 then invalid_arg "Stats.ratio: non-positive baseline";
  x /. baseline
