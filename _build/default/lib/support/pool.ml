(* Parallel map across OCaml 5 domains.

   GA fitness evaluation is embarrassingly parallel: each individual's
   simulation touches only freshly allocated VM state.  We spawn [domains - 1]
   worker domains per call and share work through an atomic index counter; the
   calling domain participates too.  Exceptions raised by [f] are captured and
   re-raised on the caller once all domains have joined, so no work is
   leaked. *)

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

exception Worker_failure of exn

let map ?domains f input =
  let n = Array.length input in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f input.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
            (* First failure wins; racing stores of a different exception are
               harmless because we only ever re-raise one. *)
            Atomic.set failure (Some e);
            continue := false
      done
    in
    let spawned = List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some e -> raise (Worker_failure e)
    | None ->
      Array.map
        (function
          | Some y -> y
          | None -> invalid_arg "Pool.map: missing result (worker aborted)")
        results
  end

let mapi ?domains f input =
  let indexed = Array.mapi (fun i x -> (i, x)) input in
  map ?domains (fun (i, x) -> f i x) indexed
