(** Parallel array map over OCaml 5 domains.

    Intended for pure, CPU-bound work items (e.g. GA fitness evaluations).
    The function [f] must not share mutable state across items. *)

(** Raised by {!map} when any work item raised; carries the first failure. *)
exception Worker_failure of exn

(** Number of domains used by default (bounded, >= 1). *)
val default_domains : unit -> int

(** [map ?domains f a] is [Array.map f a] computed in parallel.  Result order
    matches input order.  If any application of [f] raises, all domains are
    drained and [Worker_failure] is raised on the caller. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Indexed variant of {!map}. *)
val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
