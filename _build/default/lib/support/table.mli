(** Plain-text tables for experiment reports. *)

type align = Left | Right

type t

(** [create ~title ~header ~aligns] starts an empty table; [header] and
    [aligns] must have equal length. *)
val create : title:string -> header:string array -> aligns:align array -> t

(** Append a data row (arity must match the header). *)
val add_row : t -> string array -> unit

(** Append a horizontal rule. *)
val add_rule : t -> unit

(** Format a float with [digits] decimals (default 3). *)
val fmt_float : ?digits:int -> float -> string

(** Format a signed percentage, e.g. [+12.5%]. *)
val fmt_pct : float -> string

val render : t -> string
val print : t -> unit

(** ASCII bar for a value normalized around 1.0 (the baseline mark). *)
val bar : ?width:int -> float -> string
