(* Growable array.  Used pervasively by the builder and the inliner, which
   assemble blocks and instruction sequences of unknown final length. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make capacity dummy =
  if capacity < 0 then invalid_arg "Vec.make";
  { data = Array.make capacity dummy; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: out of bounds";
  t.data.(i) <- x

let ensure t n =
  let cap = Array.length t.data in
  if n > cap then begin
    let cap' = max n (max 8 (2 * cap)) in
    let data' = Array.make cap' t.data.(0) in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'
  end

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make 8 x else ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let append t other =
  for i = 0 to other.len - 1 do
    push t other.data.(i)
  done

let push_array t a = Array.iter (fun x -> push t x) a

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let clear t = t.len <- 0
