(** Jikes RVM's five-parameter inlining heuristic (paper Figs. 3–4, Table 1).

    This record is the object being tuned: the GA searches over its five
    integer fields within the Table 1 ranges. *)

type t = {
  callee_max_size : int;      (** max estimated callee size to inline *)
  always_inline_size : int;   (** callees below this are always inlined *)
  max_inline_depth : int;     (** max inlining depth at a call site *)
  caller_max_size : int;      (** max expanded caller size to inline into *)
  hot_callee_max_size : int;  (** max hot-callee size (adaptive scenario) *)
}

(** Jikes RVM's shipped values: 23 / 11 / 5 / 2048 / 135. *)
val default : t

(** Refuses every inlining opportunity (the "no inlining" baseline). *)
val never : t

(** The optimizing compiler's decision (paper Fig. 3).  [inline_depth] is the
    depth of the call chain at this site (direct calls in the method being
    compiled have depth 1). *)
val consider : t -> callee_size:int -> inline_depth:int -> caller_size:int -> bool

(** The hot-call-site decision (paper Fig. 4), adaptive scenario only. *)
val consider_hot : t -> callee_size:int -> bool

(** Genome encoding: the five parameters in Table 1 order. *)
val to_array : t -> int array

(** Inverse of {!to_array}; raises on wrong length. *)
val of_array : int array -> t

val equal : t -> t -> bool
val to_string : t -> string

(** Parameter names in Table 1 order. *)
val param_names : string array

(** Search ranges from paper Table 1, in the same order. *)
val ranges : (int * int) array

(** Clamp a genome into the Table 1 ranges. *)
val clamp_to_ranges : int array -> int array

(** Convenience for the Fig. 2 depth sweep. *)
val with_depth : t -> int -> t
