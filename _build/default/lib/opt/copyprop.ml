open Inltune_jir
(* Block-local copy propagation: within a basic block, uses of a register
   that was assigned [Move (d, s)] are rewritten to use [s] directly while
   neither register has been redefined.  Cleans up the argument-binding moves
   the inliner introduces when caller and callee cooperate within a block;
   cross-block copies are left to the interpreter (they model the real
   register moves Jikes emits after inlining). *)

let analysis_budget = 2_000_000

let run m =
  if Array.length m.Ir.blocks * m.Ir.nregs > analysis_budget then (m, 0)
  else
  let rewritten = ref 0 in
  let blocks =
    Array.map
      (fun blk ->
        (* copy_of.(r) = Some s when r currently holds a copy of s. *)
        let copy_of = Array.make m.Ir.nregs None in
        let resolve r =
          match copy_of.(r) with
          | Some s ->
            incr rewritten;
            s
          | None -> r
        in
        let invalidate d =
          copy_of.(d) <- None;
          Array.iteri (fun r c -> if c = Some d then copy_of.(r) <- None) copy_of
        in
        let instrs =
          Array.map
            (fun i ->
              let i' =
                match i with
                | Ir.Const (d, n) -> Ir.Const (d, n)
                | Ir.Move (d, s) -> Ir.Move (d, resolve s)
                | Ir.Binop (op, d, a, b) -> Ir.Binop (op, d, resolve a, resolve b)
                | Ir.Cmp (op, d, a, b) -> Ir.Cmp (op, d, resolve a, resolve b)
                | Ir.Load (d, o, off) -> Ir.Load (d, resolve o, off)
                | Ir.Store (o, off, s) -> Ir.Store (resolve o, off, resolve s)
                | Ir.LoadIdx (d, o, i) -> Ir.LoadIdx (d, resolve o, resolve i)
                | Ir.StoreIdx (o, i, s) -> Ir.StoreIdx (resolve o, resolve i, resolve s)
                | Ir.ClassOf (d, o) -> Ir.ClassOf (d, resolve o)
                | Ir.Alloc (d, k, s) -> Ir.Alloc (d, k, s)
                | Ir.Call (d, t, args) -> Ir.Call (d, t, Array.map resolve args)
                | Ir.CallVirt (d, slot, recv, args) ->
                  Ir.CallVirt (d, slot, resolve recv, Array.map resolve args)
                | Ir.Print r -> Ir.Print (resolve r)
              in
              (match Ir.def_of i' with
              | Some d ->
                invalidate d;
                (match i' with
                | Ir.Move (d, s) when d <> s -> copy_of.(d) <- Some s
                | _ -> ())
              | None -> ());
              i')
            blk.Ir.instrs
        in
        let term =
          match blk.Ir.term with
          | Ir.Jump l -> Ir.Jump l
          | Ir.Branch (c, t, f) -> Ir.Branch (resolve c, t, f)
          | Ir.Ret r -> Ir.Ret (resolve r)
        in
        { Ir.instrs; term })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, !rewritten)
