open Inltune_jir

(* Block-local common-subexpression elimination by value numbering over
   pure operators.  After inlining, the merged body frequently recomputes
   the same subexpression (the callee and caller both computed it), so CSE
   is another slice of inlining's indirect benefit.

   Available expressions are tracked per block as a map from an operator
   signature over *current* value numbers to the register holding the
   result.  Loads are not value-numbered (stores and calls would have to
   invalidate them); this pass only touches arithmetic. *)

type key =
  | Kbin of Ir.binop * int * int
  | Kcmp of Ir.cmpop * int * int
  | Kconst of int

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | Ir.Sub | Ir.Div | Ir.Mod | Ir.Shl | Ir.Shr -> false

let run m =
  let replaced = ref 0 in
  let blocks =
    Array.map
      (fun blk ->
        (* vn.(r) = the value number currently held by register r. *)
        let vn = Array.init m.Ir.nregs (fun r -> -r - 1) in
        let next_vn = ref 0 in
        let fresh_vn r =
          incr next_vn;
          vn.(r) <- !next_vn
        in
        let table : (key, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
        (* When a register is redefined, stale table entries pointing at it
           must not be reused: we key the check on value numbers, so it is
           enough to verify that the memoized register still holds the value
           number it had when inserted. *)
        let holder : (key, int) Hashtbl.t = Hashtbl.create 16 in
        let lookup key =
          match (Hashtbl.find_opt table key, Hashtbl.find_opt holder key) with
          | Some r, Some v when vn.(r) = v -> Some r
          | _ -> None
        in
        let remember key r =
          Hashtbl.replace table key r;
          Hashtbl.replace holder key vn.(r)
        in
        let instrs =
          Array.map
            (fun i ->
              match i with
              | Ir.Binop (op, d, a, b) ->
                let va, vb =
                  if commutative op && vn.(a) > vn.(b) then (vn.(b), vn.(a)) else (vn.(a), vn.(b))
                in
                let key = Kbin (op, va, vb) in
                (match lookup key with
                | Some r ->
                  incr replaced;
                  vn.(d) <- vn.(r);
                  Ir.Move (d, r)
                | None ->
                  fresh_vn d;
                  remember key d;
                  i)
              | Ir.Cmp (op, d, a, b) ->
                let key = Kcmp (op, vn.(a), vn.(b)) in
                (match lookup key with
                | Some r ->
                  incr replaced;
                  vn.(d) <- vn.(r);
                  Ir.Move (d, r)
                | None ->
                  fresh_vn d;
                  remember key d;
                  i)
              | Ir.Const (d, v) ->
                let key = Kconst v in
                (match lookup key with
                | Some r ->
                  incr replaced;
                  vn.(d) <- vn.(r);
                  Ir.Move (d, r)
                | None ->
                  fresh_vn d;
                  remember key d;
                  i)
              | Ir.Move (d, s) ->
                vn.(d) <- vn.(s);
                i
              | _ ->
                (match Ir.def_of i with Some d -> fresh_vn d | None -> ());
                i)
            blk.Ir.instrs
        in
        { blk with Ir.instrs })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, !replaced)
