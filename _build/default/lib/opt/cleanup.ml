open Inltune_jir
(* Control-flow cleanup: jump threading through empty blocks, folding of
   branches whose arms coincide, and removal of unreachable blocks (with
   label compaction).  Run last so the I-cache footprint reflects code that
   would really be emitted. *)

(* Resolve a label through chains of empty forwarding blocks.  A cycle of
   empty blocks (an empty infinite loop) is left alone. *)
let forward_map m =
  let nblocks = Array.length m.Ir.blocks in
  let resolve l =
    let rec go l seen =
      let blk = m.Ir.blocks.(l) in
      if Array.length blk.Ir.instrs > 0 then l
      else
        match blk.Ir.term with
        | Ir.Jump l' when not (List.mem l' seen) -> go l' (l' :: seen)
        | _ -> l
    in
    go l [ l ]
  in
  Array.init nblocks resolve

let thread m =
  let fwd = forward_map m in
  let blocks =
    Array.map
      (fun blk ->
        let term =
          match blk.Ir.term with
          | Ir.Jump l -> Ir.Jump fwd.(l)
          | Ir.Branch (c, t, f) ->
            let t = fwd.(t) and f = fwd.(f) in
            if t = f then Ir.Jump t else Ir.Branch (c, t, f)
          | Ir.Ret r -> Ir.Ret r
        in
        { blk with Ir.term })
      m.Ir.blocks
  in
  { m with Ir.blocks }

let drop_unreachable m =
  let nblocks = Array.length m.Ir.blocks in
  let reached = Array.make nblocks false in
  let rec visit l =
    if not reached.(l) then begin
      reached.(l) <- true;
      List.iter visit (Ir.successors m.Ir.blocks.(l).Ir.term)
    end
  in
  visit 0;
  let remap = Array.make nblocks (-1) in
  let count = ref 0 in
  for l = 0 to nblocks - 1 do
    if reached.(l) then begin
      remap.(l) <- !count;
      incr count
    end
  done;
  if !count = nblocks then m
  else begin
    let blocks = Array.make !count m.Ir.blocks.(0) in
    for l = 0 to nblocks - 1 do
      if reached.(l) then begin
        let blk = m.Ir.blocks.(l) in
        let term =
          match blk.Ir.term with
          | Ir.Jump t -> Ir.Jump remap.(t)
          | Ir.Branch (c, t, f) -> Ir.Branch (c, remap.(t), remap.(f))
          | Ir.Ret r -> Ir.Ret r
        in
        blocks.(remap.(l)) <- { blk with Ir.term }
      end
    done;
    { m with Ir.blocks }
  end

let run m = drop_unreachable (thread m)
