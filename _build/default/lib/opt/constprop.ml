open Inltune_jir
(* Forward constant propagation with a small class-analysis extension.

   This pass carries the *indirect* benefit of inlining: once a callee body
   sits inside its caller, constant actual arguments flow into it and whole
   computations fold away — exactly the effect the paper credits inlining with
   ("increasing the opportunities for compiler optimization").

   Lattice per register:
     Undef  — no definition seen on any path yet (bottom)
     Const  — known integer value
     Obj    — known allocation class (enables devirtualization)
     Any    — top

   A standard worklist fixpoint over the CFG, then a rewrite:
   - binops/cmps whose operands are all constant become [Const];
   - algebraic identities with one constant operand simplify (x+0, x*1, x*0,
     x-0, x and 0, x or 0, shifts by 0);
   - moves of known constants become [Const];
   - branches on constant conditions become [Jump];
   - virtual calls whose receiver has a known class become static [Call]s
     (receiver passed as first argument), which the inliner can then see. *)

type value = Undef | Const of int | Obj of Ir.kid | Any

let join a b =
  match (a, b) with
  | Undef, x | x, Undef -> x
  | Const x, Const y when x = y -> Const x
  | Obj x, Obj y when x = y -> Obj x
  | _ -> Any

let value_equal a b =
  match (a, b) with
  | Undef, Undef | Any, Any -> true
  | Const x, Const y -> x = y
  | Obj x, Obj y -> x = y
  | _ -> false

let transfer_instr env i =
  let set d v = env.(d) <- v in
  match i with
  | Ir.Const (d, n) -> set d (Const n)
  | Ir.Move (d, s) -> set d env.(s)
  | Ir.Binop (op, d, a, b) -> (
    match (env.(a), env.(b)) with
    | Const x, Const y -> set d (Const (Ir.eval_binop op x y))
    | _ -> set d Any)
  | Ir.Cmp (op, d, a, b) -> (
    match (env.(a), env.(b)) with
    | Const x, Const y -> set d (Const (Ir.eval_cmp op x y))
    | _ -> set d Any)
  | Ir.Load (d, _, _) -> set d Any
  | Ir.LoadIdx (d, _, _) -> set d Any
  | Ir.ClassOf (d, o) -> set d (match env.(o) with Obj kid -> Const kid | _ -> Any)
  | Ir.Store _ | Ir.StoreIdx _ -> ()
  | Ir.Alloc (d, kid, _) -> set d (Obj kid)
  | Ir.Call (d, _, _) -> set d Any
  | Ir.CallVirt (d, _, _, _) -> set d Any
  | Ir.Print _ -> ()

let analyze m =
  let nblocks = Array.length m.Ir.blocks in
  let nregs = m.Ir.nregs in
  let in_states = Array.init nblocks (fun _ -> Array.make nregs Undef) in
  (* Entry: arguments hold caller-supplied values; all other registers are
     zero-initialized by the calling convention (see [Interp]), so Const 0 is
     both sound and precise. *)
  for r = 0 to nregs - 1 do
    in_states.(0).(r) <- (if r < m.Ir.nargs then Any else Const 0)
  done;
  let preds_done = Array.make nblocks false in
  preds_done.(0) <- true;
  let work = Queue.create () in
  Queue.add 0 work;
  while not (Queue.is_empty work) do
    let bi = Queue.take work in
    let env = Array.copy in_states.(bi) in
    let blk = m.Ir.blocks.(bi) in
    Array.iter (transfer_instr env) blk.Ir.instrs;
    List.iter
      (fun succ ->
        let changed = ref false in
        let dst = in_states.(succ) in
        if not preds_done.(succ) then begin
          (* First flow into this block: adopt env wholesale. *)
          Array.blit env 0 dst 0 nregs;
          preds_done.(succ) <- true;
          changed := true
        end
        else
          for r = 0 to nregs - 1 do
            let v = join dst.(r) env.(r) in
            if not (value_equal v dst.(r)) then begin
              dst.(r) <- v;
              changed := true
            end
          done;
        if !changed then Queue.add succ work)
      (Ir.successors blk.Ir.term)
  done;
  in_states

(* Algebraic simplification of a binop with one known-constant operand.
   Returns a replacement instruction, or None to keep the original. *)
let simplify_binop op d a b va vb =
  let move s = Some (Ir.Move (d, s)) in
  let const n = Some (Ir.Const (d, n)) in
  match (op, va, vb) with
  | Ir.Add, Const 0, _ -> move b
  | Ir.Add, _, Const 0 -> move a
  | Ir.Sub, _, Const 0 -> move a
  | Ir.Mul, Const 1, _ -> move b
  | Ir.Mul, _, Const 1 -> move a
  | Ir.Mul, Const 0, _ | Ir.Mul, _, Const 0 -> const 0
  | Ir.And, Const 0, _ | Ir.And, _, Const 0 -> const 0
  | Ir.Or, Const 0, _ -> move b
  | Ir.Or, _, Const 0 -> move a
  | Ir.Xor, Const 0, _ -> move b
  | Ir.Xor, _, Const 0 -> move a
  | (Ir.Shl | Ir.Shr), _, Const 0 -> move a
  | Ir.Div, _, Const 1 -> move a
  | _ -> None

type rewrite_stats = { mutable folded : int; mutable devirtualized : int; mutable branches_folded : int }

let rewrite prog m in_states =
  let stats = { folded = 0; devirtualized = 0; branches_folded = 0 } in
  let blocks =
    Array.mapi
      (fun bi blk ->
        let env = Array.copy in_states.(bi) in
        let instrs =
          Array.map
            (fun i ->
              let replacement =
                match i with
                | Ir.Binop (op, d, a, b) -> (
                  match (env.(a), env.(b)) with
                  | Const x, Const y ->
                    stats.folded <- stats.folded + 1;
                    Some (Ir.Const (d, Ir.eval_binop op x y))
                  | va, vb ->
                    let r = simplify_binop op d a b va vb in
                    if r <> None then stats.folded <- stats.folded + 1;
                    r)
                | Ir.Cmp (op, d, a, b) -> (
                  match (env.(a), env.(b)) with
                  | Const x, Const y ->
                    stats.folded <- stats.folded + 1;
                    Some (Ir.Const (d, Ir.eval_cmp op x y))
                  | _ -> None)
                | Ir.Move (d, s) -> (
                  match env.(s) with
                  | Const x ->
                    stats.folded <- stats.folded + 1;
                    Some (Ir.Const (d, x))
                  | _ -> None)
                | Ir.ClassOf (d, o) -> (
                  match env.(o) with
                  | Obj kid ->
                    stats.folded <- stats.folded + 1;
                    Some (Ir.Const (d, kid))
                  | _ -> None)
                | Ir.CallVirt (d, slot, recv, args) -> (
                  match env.(recv) with
                  | Obj kid ->
                    let k = prog.Ir.classes.(kid) in
                    if slot < Array.length k.Ir.vtable then begin
                      stats.devirtualized <- stats.devirtualized + 1;
                      Some (Ir.Call (d, k.Ir.vtable.(slot), Array.append [| recv |] args))
                    end
                    else None
                  | _ -> None)
                | _ -> None
              in
              let i' = Option.value replacement ~default:i in
              transfer_instr env i';
              i')
            blk.Ir.instrs
        in
        let term =
          match blk.Ir.term with
          | Ir.Branch (c, t, f) -> (
            match env.(c) with
            | Const 0 ->
              stats.branches_folded <- stats.branches_folded + 1;
              Ir.Jump f
            | Const _ ->
              stats.branches_folded <- stats.branches_folded + 1;
              Ir.Jump t
            | _ -> blk.Ir.term)
          | t -> t
        in
        { Ir.instrs; term })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, stats)

(* Dataflow state is O(blocks * registers); on monster methods produced by
   maximally aggressive inlining a real compiler bails to a cheaper strategy,
   and so do we: beyond this budget the method is returned unchanged. *)
let analysis_budget = 2_000_000

let run prog m =
  if Array.length m.Ir.blocks * m.Ir.nregs > analysis_budget then
    (m, { folded = 0; devirtualized = 0; branches_folded = 0 })
  else begin
    let in_states = analyze m in
    rewrite prog m in_states
  end
