open Inltune_jir
(** Global liveness-based dead-code elimination.

    [run m] removes pure instructions whose destination register is dead and
    returns the rewritten method with the number of instructions removed. *)

val run : Ir.methd -> Ir.methd * int
