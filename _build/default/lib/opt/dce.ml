open Inltune_jir
(* Dead-code elimination by global liveness.

   Backward dataflow: a register is live at a point if some path from there
   reads it before writing it.  Pure instructions (no side effect beyond
   their destination) whose destination is dead are deleted.  Calls, stores
   and prints are always kept.

   Together with constant propagation this removes the computation that
   folding made redundant — most of the code-size payback the optimizing
   compiler gets for having inlined. *)

module ISet = Set.Make (Int)

let liveness m =
  let nblocks = Array.length m.Ir.blocks in
  let live_in = Array.make nblocks ISet.empty in
  let live_out = Array.make nblocks ISet.empty in
  (* Predecessor lists for the backward worklist. *)
  let preds = Array.make nblocks [] in
  Array.iteri
    (fun bi blk ->
      List.iter (fun s -> preds.(s) <- bi :: preds.(s)) (Ir.successors blk.Ir.term))
    m.Ir.blocks;
  let transfer bi =
    let blk = m.Ir.blocks.(bi) in
    let live = ref live_out.(bi) in
    live := List.fold_left (fun acc r -> ISet.add r acc) !live (Ir.term_uses blk.Ir.term);
    for k = Array.length blk.Ir.instrs - 1 downto 0 do
      let i = blk.Ir.instrs.(k) in
      (match Ir.def_of i with Some d -> live := ISet.remove d !live | None -> ());
      List.iter (fun r -> live := ISet.add r !live) (Ir.uses_of i)
    done;
    !live
  in
  let work = Queue.create () in
  for bi = nblocks - 1 downto 0 do
    Queue.add bi work
  done;
  while not (Queue.is_empty work) do
    let bi = Queue.take work in
    let out =
      List.fold_left
        (fun acc s -> ISet.union acc live_in.(s))
        ISet.empty
        (Ir.successors m.Ir.blocks.(bi).Ir.term)
    in
    live_out.(bi) <- out;
    let inn = transfer bi in
    if not (ISet.equal inn live_in.(bi)) then begin
      live_in.(bi) <- inn;
      List.iter (fun p -> Queue.add p work) preds.(bi)
    end
  done;
  (live_in, live_out)

(* Liveness is O(blocks * registers); monster methods produced by maximally
   aggressive inlining are skipped, mirroring [Constprop.analysis_budget]. *)
let analysis_budget = 2_000_000

let run m =
  if Array.length m.Ir.blocks * m.Ir.nregs > analysis_budget then (m, 0)
  else
  let _, live_out = liveness m in
  let removed = ref 0 in
  let blocks =
    Array.mapi
      (fun bi blk ->
        let live = ref live_out.(bi) in
        live := List.fold_left (fun acc r -> ISet.add r acc) !live (Ir.term_uses blk.Ir.term);
        let keep = Array.make (Array.length blk.Ir.instrs) true in
        for k = Array.length blk.Ir.instrs - 1 downto 0 do
          let i = blk.Ir.instrs.(k) in
          let dead =
            Ir.pure i
            && match Ir.def_of i with Some d -> not (ISet.mem d !live) | None -> false
          in
          if dead then begin
            keep.(k) <- false;
            incr removed
          end
          else begin
            (match Ir.def_of i with Some d -> live := ISet.remove d !live | None -> ());
            List.iter (fun r -> live := ISet.add r !live) (Ir.uses_of i)
          end
        done;
        let instrs =
          Array.of_seq
            (Seq.filter_map
               (fun (k, i) -> if keep.(k) then Some i else None)
               (Array.to_seqi blk.Ir.instrs))
        in
        { blk with Ir.instrs })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, !removed)
