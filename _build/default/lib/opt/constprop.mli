open Inltune_jir
(** Forward constant propagation, algebraic simplification, branch folding,
    and allocation-site devirtualization (virtual calls whose receiver class
    is proven become static calls, exposing them to the inliner). *)

type rewrite_stats = {
  mutable folded : int;            (** instructions folded or simplified *)
  mutable devirtualized : int;     (** virtual sites turned into static calls *)
  mutable branches_folded : int;   (** conditional branches made unconditional *)
}

(** [run prog m] returns the rewritten method and rewrite statistics.  The
    transformation is semantics-preserving. *)
val run : Ir.program -> Ir.methd -> Ir.methd * rewrite_stats
