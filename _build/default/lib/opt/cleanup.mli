open Inltune_jir
(** Control-flow cleanup: jump threading through empty blocks, branch
    unification, unreachable-block removal with label compaction. *)

val run : Ir.methd -> Ir.methd
