open Inltune_jir

(** Profile-guided guarded devirtualization: monomorphic virtual sites
    become a class guard around a static (inlinable) call with the virtual
    call on the slow path.  Semantics-preserving for any oracle. *)

type site_oracle = site_owner:Ir.mid -> slot:int -> Ir.kid option

(** Derive the oracle from adaptive-profile edge counts: a site is
    monomorphic when exactly one implementation of the slot was ever called
    from the method and exactly one class provides it. *)
val oracle_of_profile :
  program:Ir.program ->
  edge_count:(site_owner:Ir.mid -> callee:Ir.mid -> int) ->
  site_oracle

type stats = { mutable sites_guarded : int }

val run : program:Ir.program -> oracle:site_oracle -> Ir.methd -> Ir.methd * stats
