open Inltune_jir
(** Heuristic-driven method inlining (the transformation the tuned heuristic
    controls).  Semantics-preserving for well-formed (define-before-use)
    programs. *)

type stats = {
  mutable sites_seen : int;
  mutable sites_inlined : int;
  mutable hot_sites_seen : int;
  mutable hot_sites_inlined : int;
}

val fresh_stats : unit -> stats

(** Hard cap on the expanded size of any single method, in size-estimate
    units; a code-space sanity net above anything the heuristic's caller test
    normally allows. *)
val max_expanded_size : int

(** [run ~program ~heuristic m] inlines call sites in [m] per the heuristic.
    [hot_site] (adaptive scenario) selects call sites that take the
    single-test hot path; [site_owner] is the method whose source body the
    call site originally belonged to. *)
val run :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  program:Ir.program ->
  heuristic:Heuristic.t ->
  Ir.methd ->
  Ir.methd * stats

(** Same transformation driven by an arbitrary per-site decision procedure
    (used by alternative inlining strategies such as the knapsack baseline).
    The hard size cap still applies on top of [decide]. *)
val run_custom :
  decide:
    (site_owner:Ir.mid ->
    callee:Ir.mid ->
    callee_size:int ->
    inline_depth:int ->
    caller_size:int ->
    bool) ->
  program:Ir.program ->
  Ir.methd ->
  Ir.methd * stats
