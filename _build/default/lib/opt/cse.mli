open Inltune_jir

(** Block-local common-subexpression elimination by value numbering over
    pure arithmetic.  Returns the rewritten method and the number of
    recomputations replaced by moves (DCE then removes the dead originals
    when the whole chain became redundant). *)

val run : Ir.methd -> Ir.methd * int
