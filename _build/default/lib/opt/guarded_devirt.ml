open Inltune_jir
module Vec = Inltune_support.Vec

(* Profile-guided guarded devirtualization.

   When the adaptive system recompiles a method, the profile may show that a
   virtual call site only ever dispatched to one receiver class.  In that
   case the site is rewritten into a class guard:

       r = classof recv
       if r == K then  dst = call K.impl(recv, args)   (inlinable!)
       else            dst = callvirt recv.[slot](args)

   This is the polymorphic-inline-cache-style optimization Jikes RVM applies
   before inlining; it matters to the tuned heuristic because the guarded
   static call becomes an ordinary inlining candidate whose size counts
   against CALLER_MAX_SIZE.  Semantics are preserved unconditionally: a
   wrong (stale) profile just falls through to the virtual call. *)

type site_oracle = site_owner:Ir.mid -> slot:int -> Ir.kid option

(* Build the oracle from an adaptive profile: the site is monomorphic if,
   among the slot's possible implementations, exactly one was ever called
   from [site_owner], and exactly one class provides it on that slot. *)
let oracle_of_profile ~program ~edge_count : site_oracle =
 fun ~site_owner ~slot ->
  let impls = Hashtbl.create 8 in
  Array.iter
    (fun k ->
      if slot < Array.length k.Ir.vtable then begin
        let impl = k.Ir.vtable.(slot) in
        let kids = Option.value ~default:[] (Hashtbl.find_opt impls impl) in
        Hashtbl.replace impls impl (k.Ir.kid :: kids)
      end)
    program.Ir.classes;
  let called =
    Hashtbl.fold
      (fun impl kids acc ->
        if edge_count ~site_owner ~callee:impl > 0 then (impl, kids) :: acc else acc)
      impls []
  in
  match called with
  | [ (_, [ kid ]) ] -> Some kid
  | _ -> None

type stats = { mutable sites_guarded : int }

let run ~program ~(oracle : site_oracle) m =
  let stats = { sites_guarded = 0 } in
  let has_virt =
    Array.exists
      (fun blk ->
        Array.exists (fun i -> match i with Ir.CallVirt _ -> true | _ -> false) blk.Ir.instrs)
      m.Ir.blocks
  in
  if not has_virt then (m, stats)
  else begin
    let nregs = ref m.Ir.nregs in
    let fresh () =
      let r = !nregs in
      incr nregs;
      r
    in
    (* Pending output blocks; the first |blocks| mirror the input labels. *)
    let out : (Ir.instr Vec.t * Ir.terminator option ref) Vec.t = Vec.create () in
    let new_block () =
      Vec.push out (Vec.create (), ref None);
      Vec.length out - 1
    in
    Array.iter (fun _ -> ignore (new_block ())) m.Ir.blocks;
    let cur = ref 0 in
    let push i = Vec.push (fst (Vec.get out !cur)) i in
    let terminate t = snd (Vec.get out !cur) := Some t in
    Array.iteri
      (fun bi blk ->
        cur := bi;
        Array.iter
          (fun i ->
            match i with
            | Ir.CallVirt (dst, slot, recv, args) -> (
              match oracle ~site_owner:m.Ir.mid ~slot with
              | Some kid when slot < Array.length program.Ir.classes.(kid).Ir.vtable ->
                stats.sites_guarded <- stats.sites_guarded + 1;
                let target = program.Ir.classes.(kid).Ir.vtable.(slot) in
                let c = fresh () and k = fresh () and eq = fresh () in
                push (Ir.ClassOf (c, recv));
                push (Ir.Const (k, kid));
                push (Ir.Cmp (Ir.Eq, eq, c, k));
                let then_b = new_block () in
                let else_b = new_block () in
                let cont = new_block () in
                terminate (Ir.Branch (eq, then_b, else_b));
                cur := then_b;
                push (Ir.Call (dst, target, Array.append [| recv |] args));
                terminate (Ir.Jump cont);
                cur := else_b;
                push (Ir.CallVirt (dst, slot, recv, args));
                terminate (Ir.Jump cont);
                cur := cont
              | _ -> push i)
            | _ -> push i)
          blk.Ir.instrs;
        terminate blk.Ir.term)
      m.Ir.blocks;
    let blocks =
      Array.map
        (fun (instrs, term) ->
          match !term with
          | None -> assert false
          | Some t -> { Ir.instrs = Vec.to_array instrs; term = t })
        (Vec.to_array out)
    in
    ({ m with Ir.nregs = !nregs; blocks }, stats)
  end
