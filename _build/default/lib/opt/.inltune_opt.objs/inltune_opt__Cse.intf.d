lib/opt/cse.mli: Inltune_jir Ir
