lib/opt/cleanup.ml: Array Inltune_jir Ir List
