lib/opt/guarded_devirt.mli: Inltune_jir Ir
