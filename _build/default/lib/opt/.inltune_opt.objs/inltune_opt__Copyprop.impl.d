lib/opt/copyprop.ml: Array Inltune_jir Ir
