lib/opt/copyprop.mli: Inltune_jir Ir
