lib/opt/cleanup.mli: Inltune_jir Ir
