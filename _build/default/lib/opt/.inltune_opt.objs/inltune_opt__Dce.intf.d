lib/opt/dce.mli: Inltune_jir Ir
