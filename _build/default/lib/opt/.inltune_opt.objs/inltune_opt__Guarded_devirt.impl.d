lib/opt/guarded_devirt.ml: Array Hashtbl Inltune_jir Inltune_support Ir Option
