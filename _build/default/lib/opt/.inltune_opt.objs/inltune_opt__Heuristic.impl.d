lib/opt/heuristic.ml: Array Printf
