lib/opt/cse.ml: Array Hashtbl Inltune_jir Ir
