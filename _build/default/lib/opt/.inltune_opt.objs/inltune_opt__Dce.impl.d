lib/opt/dce.ml: Array Inltune_jir Int Ir List Queue Seq Set
