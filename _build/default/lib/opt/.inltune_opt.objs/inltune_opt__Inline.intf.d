lib/opt/inline.mli: Heuristic Inltune_jir Ir
