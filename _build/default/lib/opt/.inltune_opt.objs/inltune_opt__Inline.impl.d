lib/opt/inline.ml: Array Hashtbl Heuristic Inltune_jir Inltune_support Ir List Size
