lib/opt/pipeline.ml: Cleanup Constprop Copyprop Cse Dce Guarded_devirt Heuristic Inline Inltune_jir Ir Size
