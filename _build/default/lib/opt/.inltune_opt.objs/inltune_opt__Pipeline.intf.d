lib/opt/pipeline.mli: Guarded_devirt Heuristic Inltune_jir Ir
