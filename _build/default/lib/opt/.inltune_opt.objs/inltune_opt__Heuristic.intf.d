lib/opt/heuristic.mli:
