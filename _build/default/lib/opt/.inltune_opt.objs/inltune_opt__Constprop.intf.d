lib/opt/constprop.mli: Inltune_jir Ir
