lib/opt/constprop.ml: Array Inltune_jir Ir List Option Queue
