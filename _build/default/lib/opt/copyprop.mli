open Inltune_jir
(** Block-local copy propagation.  Returns the rewritten method and the
    number of operand rewrites performed. *)

val run : Ir.methd -> Ir.methd * int
