(** Plain-text serialization of JIR programs (a small assembly format).

    The representation round-trips exactly: [parse (to_string p) = Ok p] for
    every well-formed program. *)

type error = { line : int; msg : string }

val to_string : Ir.program -> string

(** Parse and validate.  [Error] carries the offending line (0 when the
    failure is a whole-program validation error). *)
val parse : string -> (Ir.program, error) result

(** Like {!parse}; raises [Invalid_argument] with a located message. *)
val parse_exn : string -> Ir.program
