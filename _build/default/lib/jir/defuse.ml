(* Definite-assignment analysis: JIR's define-before-use convention, checked.

   The interpreter zero-initializes registers, so reading an unwritten
   register is not a crash — but the *inliner* relies on bodies never reading
   a register before writing it on every path (a spliced body re-entered
   inside a loop sees stale values from the previous iteration in registers
   it has not yet rewritten).  This module makes the convention checkable:
   generators and optimizer outputs are audited by tests.

   Standard forward must-analysis: a register is definitely-assigned at a
   point if every path from entry writes it first.  In-states meet by
   intersection; unreachable blocks stay at top (no false positives). *)

type issue = {
  iblock : int;
  iindex : int;  (* instruction index; -1 for the terminator *)
  ireg : Ir.reg;
}

let check (m : Ir.methd) =
  let nblocks = Array.length m.Ir.blocks in
  let nregs = m.Ir.nregs in
  (* in_defined.(b).(r): definitely assigned at entry of b.  Top = all true. *)
  let in_defined = Array.init nblocks (fun _ -> Array.make nregs true) in
  let entry = Array.init nregs (fun r -> r < m.Ir.nargs) in
  Array.blit entry 0 in_defined.(0) 0 nregs;
  let reached = Array.make nblocks false in
  reached.(0) <- true;
  let work = Queue.create () in
  Queue.add 0 work;
  let out_of bi =
    let defined = Array.copy in_defined.(bi) in
    Array.iter
      (fun i -> match Ir.def_of i with Some d -> defined.(d) <- true | None -> ())
      m.Ir.blocks.(bi).Ir.instrs;
    defined
  in
  while not (Queue.is_empty work) do
    let bi = Queue.take work in
    let out = out_of bi in
    List.iter
      (fun succ ->
        let dst = in_defined.(succ) in
        let changed = ref false in
        if not reached.(succ) then begin
          Array.blit out 0 dst 0 nregs;
          reached.(succ) <- true;
          changed := true
        end
        else
          for r = 0 to nregs - 1 do
            let v = dst.(r) && out.(r) in
            if v <> dst.(r) then begin
              dst.(r) <- v;
              changed := true
            end
          done;
        if !changed then Queue.add succ work)
      (Ir.successors m.Ir.blocks.(bi).Ir.term)
  done;
  (* Report reads of possibly-unassigned registers, in program order. *)
  let issues = ref [] in
  for bi = nblocks - 1 downto 0 do
    if reached.(bi) then begin
      let defined = Array.copy in_defined.(bi) in
      let blk = m.Ir.blocks.(bi) in
      (* walk forward, but collect in reverse order to keep the fold cheap *)
      let local = ref [] in
      Array.iteri
        (fun k i ->
          List.iter
            (fun r -> if not defined.(r) then local := { iblock = bi; iindex = k; ireg = r } :: !local)
            (Ir.uses_of i);
          match Ir.def_of i with Some d -> defined.(d) <- true | None -> ())
        blk.Ir.instrs;
      List.iter
        (fun r -> if not defined.(r) then local := { iblock = bi; iindex = -1; ireg = r } :: !local)
        (Ir.term_uses blk.Ir.term);
      issues := List.rev_append !local !issues
    end
  done;
  !issues

let check_program (p : Ir.program) =
  Array.fold_left (fun acc m -> acc @ List.map (fun i -> (m.Ir.mid, i)) (check m)) [] p.Ir.methods
