(* Imperative construction of JIR programs.

   Methods may be mutually recursive, so building is two-phase: [declare]
   reserves a method id (usable immediately in call instructions), [define]
   fills in the body.  [finish] checks that everything declared was defined
   and produces an immutable [Ir.program]. *)

module Vec = Inltune_support.Vec

type pending_block = {
  pb_instrs : Ir.instr Vec.t;
  mutable pb_term : Ir.terminator option;
}

type mb = {
  mb_mid : Ir.mid;
  mb_name : string;
  mb_nargs : int;
  mutable mb_nregs : int;
  mb_blocks : pending_block Vec.t;
  mutable mb_current : int;
}

type decl = {
  d_name : string;
  d_nargs : int;
  mutable d_body : Ir.methd option;
}

type t = {
  b_name : string;
  b_methods : decl Vec.t;
  b_classes : Ir.klass Vec.t;
  mutable b_main : Ir.mid option;
}

let create pname = { b_name = pname; b_methods = Vec.create (); b_classes = Vec.create (); b_main = None }

let declare t ~name ~nargs =
  if nargs < 0 then invalid_arg "Builder.declare: negative arity";
  let mid = Vec.length t.b_methods in
  Vec.push t.b_methods { d_name = name; d_nargs = nargs; d_body = None };
  mid

let new_class t ~name ~vtable =
  let kid = Vec.length t.b_classes in
  Vec.push t.b_classes { Ir.kid; kname = name; vtable = Array.copy vtable };
  kid

let set_main t mid = t.b_main <- Some mid

(* --- method bodies --- *)

let fresh_block mb =
  let l = Vec.length mb.mb_blocks in
  Vec.push mb.mb_blocks { pb_instrs = Vec.create (); pb_term = None };
  l

let select mb l =
  if l < 0 || l >= Vec.length mb.mb_blocks then invalid_arg "Builder.select";
  mb.mb_current <- l

let current mb = mb.mb_current

let fresh_reg mb =
  let r = mb.mb_nregs in
  mb.mb_nregs <- r + 1;
  r

let emit mb i =
  let blk = Vec.get mb.mb_blocks mb.mb_current in
  (match blk.pb_term with
  | Some _ -> invalid_arg "Builder.emit: block already terminated"
  | None -> ());
  Vec.push blk.pb_instrs i

let terminate mb term =
  let blk = Vec.get mb.mb_blocks mb.mb_current in
  match blk.pb_term with
  | Some _ -> invalid_arg "Builder.terminate: block already terminated"
  | None -> blk.pb_term <- Some term

let jump mb l = terminate mb (Ir.Jump l)
let branch mb c ~ifso ~ifnot = terminate mb (Ir.Branch (c, ifso, ifnot))
let ret mb r = terminate mb (Ir.Ret r)

(* Convenience emitters returning a fresh destination register. *)
let const mb n =
  let d = fresh_reg mb in
  emit mb (Ir.Const (d, n));
  d

let move mb src =
  let d = fresh_reg mb in
  emit mb (Ir.Move (d, src));
  d

let binop mb op a b =
  let d = fresh_reg mb in
  emit mb (Ir.Binop (op, d, a, b));
  d

let add mb a b = binop mb Ir.Add a b
let sub mb a b = binop mb Ir.Sub a b
let mul mb a b = binop mb Ir.Mul a b

let cmp mb op a b =
  let d = fresh_reg mb in
  emit mb (Ir.Cmp (op, d, a, b));
  d

let load mb obj off =
  let d = fresh_reg mb in
  emit mb (Ir.Load (d, obj, off));
  d

let store mb obj off src = emit mb (Ir.Store (obj, off, src))

let load_idx mb obj idx =
  let d = fresh_reg mb in
  emit mb (Ir.LoadIdx (d, obj, idx));
  d

let store_idx mb obj idx src = emit mb (Ir.StoreIdx (obj, idx, src))

let class_of mb obj =
  let d = fresh_reg mb in
  emit mb (Ir.ClassOf (d, obj));
  d

let alloc mb kid ~slots =
  let d = fresh_reg mb in
  emit mb (Ir.Alloc (d, kid, slots));
  d

let call mb target args =
  let d = fresh_reg mb in
  emit mb (Ir.Call (d, target, Array.of_list args));
  d

let call_virt mb ~slot recv args =
  let d = fresh_reg mb in
  emit mb (Ir.CallVirt (d, slot, recv, Array.of_list args));
  d

let print mb r = emit mb (Ir.Print r)

let define t mid f =
  let decl = Vec.get t.b_methods mid in
  (match decl.d_body with
  | Some _ -> invalid_arg ("Builder.define: already defined: " ^ decl.d_name)
  | None -> ());
  let mb =
    {
      mb_mid = mid;
      mb_name = decl.d_name;
      mb_nargs = decl.d_nargs;
      mb_nregs = decl.d_nargs;
      mb_blocks = Vec.create ();
      mb_current = 0;
    }
  in
  let entry = fresh_block mb in
  select mb entry;
  f mb;
  let blocks =
    Array.map
      (fun pb ->
        match pb.pb_term with
        | None -> invalid_arg ("Builder.define: unterminated block in " ^ decl.d_name)
        | Some term -> { Ir.instrs = Vec.to_array pb.pb_instrs; term })
      (Vec.to_array mb.mb_blocks)
  in
  decl.d_body <-
    Some { Ir.mid; mname = decl.d_name; nargs = decl.d_nargs; nregs = mb.mb_nregs; blocks }

(* Declare-and-define in one step for non-recursive methods. *)
let method_ t ~name ~nargs f =
  let mid = declare t ~name ~nargs in
  define t mid f;
  mid

let finish t =
  let main =
    match t.b_main with
    | None -> invalid_arg "Builder.finish: no main method set"
    | Some m -> m
  in
  let methods =
    Array.map
      (fun d ->
        match d.d_body with
        | None -> invalid_arg ("Builder.finish: undefined method " ^ d.d_name)
        | Some m -> m)
      (Vec.to_array t.b_methods)
  in
  { Ir.pname = t.b_name; methods; classes = Vec.to_array t.b_classes; main }

(* Structured helpers ----------------------------------------------------- *)

(* Counted loop: executes [body] with the induction register, counting from 0
   to [n]-1 where [n] is a register.  The loop variable register is fresh. *)
let for_loop mb ~n body =
  let i = fresh_reg mb in
  emit mb (Ir.Const (i, 0));
  let head = fresh_block mb in
  let body_l = fresh_block mb in
  let exit = fresh_block mb in
  jump mb head;
  select mb head;
  let c = cmp mb Ir.Lt i n in
  branch mb c ~ifso:body_l ~ifnot:exit;
  select mb body_l;
  body i;
  let one = const mb 1 in
  emit mb (Ir.Binop (Ir.Add, i, i, one));
  jump mb head;
  select mb exit

(* if-then-else on a condition register; both arms must leave the builder on
   a non-terminated block; control rejoins afterwards. *)
let if_ mb c ~then_ ~else_ =
  let t_l = fresh_block mb in
  let e_l = fresh_block mb in
  let join = fresh_block mb in
  branch mb c ~ifso:t_l ~ifnot:e_l;
  select mb t_l;
  then_ ();
  jump mb join;
  select mb e_l;
  else_ ();
  jump mb join;
  select mb join
