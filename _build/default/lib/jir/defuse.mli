(** Definite-assignment analysis: checks JIR's define-before-use convention
    (the invariant the inliner relies on). *)

type issue = {
  iblock : int;
  iindex : int;  (** instruction index within the block; -1 = terminator *)
  ireg : Ir.reg;
}

(** Reads of registers not definitely assigned on every path from entry.
    [[]] means the method obeys the convention. *)
val check : Ir.methd -> issue list

(** All issues across a program, tagged with the method id. *)
val check_program : Ir.program -> (Ir.mid * issue) list
