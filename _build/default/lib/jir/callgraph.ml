(* Static call graph: the set of possible callees of each method.  Virtual
   call sites contribute every class's implementation of the slot (a sound
   over-approximation).  Used by the inliner's recursion guard, by workload
   sanity tests, and by the examples to describe program shape. *)

module ISet = Set.Make (Int)

type t = {
  callees : ISet.t array;  (* index = caller mid *)
  callers : ISet.t array;
}

let build p =
  let n = Array.length p.Ir.methods in
  let callees = Array.make n ISet.empty in
  let callers = Array.make n ISet.empty in
  let edge caller callee =
    callees.(caller) <- ISet.add callee callees.(caller);
    callers.(callee) <- ISet.add caller callers.(callee)
  in
  Array.iter
    (fun m ->
      Array.iter
        (fun blk ->
          Array.iter
            (fun i ->
              match i with
              | Ir.Call (_, callee, _) -> edge m.Ir.mid callee
              | Ir.CallVirt (_, slot, _, _) ->
                Array.iter
                  (fun k ->
                    if slot < Array.length k.Ir.vtable then edge m.Ir.mid k.Ir.vtable.(slot))
                  p.Ir.classes
              | _ -> ())
            blk.Ir.instrs)
        m.Ir.blocks)
    p.Ir.methods;
  { callees; callers }

let callees t m = ISet.elements t.callees.(m)
let callers t m = ISet.elements t.callers.(m)

(* Methods reachable from [root] (including it). *)
let reachable t root =
  let seen = Hashtbl.create 64 in
  let rec go m =
    if not (Hashtbl.mem seen m) then begin
      Hashtbl.add seen m ();
      ISet.iter go t.callees.(m)
    end
  in
  go root;
  Hashtbl.fold (fun m () acc -> m :: acc) seen [] |> List.sort compare

(* Whether [m] can reach itself through calls. *)
let recursive t m =
  let seen = Hashtbl.create 16 in
  let rec go cur =
    ISet.exists
      (fun callee ->
        callee = m
        ||
        if Hashtbl.mem seen callee then false
        else begin
          Hashtbl.add seen callee ();
          go callee
        end)
      t.callees.(cur)
  in
  go m

let call_site_count p =
  Array.fold_left
    (fun acc m ->
      Array.fold_left
        (fun acc blk ->
          Array.fold_left
            (fun acc i -> match i with Ir.Call _ | Ir.CallVirt _ -> acc + 1 | _ -> acc)
            acc blk.Ir.instrs)
        acc m.Ir.blocks)
    0 p.Ir.methods
