(** Estimated machine-code size of methods — the input to the inlining
    heuristic's size tests, mirroring Jikes RVM's per-bytecode estimate. *)

val instr_weight : Ir.instr -> int
val term_weight : Ir.terminator -> int
val block : Ir.block -> int

(** Size estimate of a whole method (sum of its blocks). *)
val of_method : Ir.methd -> int

(** Sum over all methods of a program. *)
val of_program : Ir.program -> int

(** [code_bytes ~expansion m] is the compiled footprint in bytes given a
    compiler's bytes-per-estimate expansion factor. *)
val code_bytes : expansion:int -> Ir.methd -> int
