lib/jir/validate.ml: Array Ir List Printf
