lib/jir/builder.ml: Array Inltune_support Ir
