lib/jir/builder.mli: Ir
