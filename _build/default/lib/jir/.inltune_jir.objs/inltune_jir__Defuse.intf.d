lib/jir/defuse.mli: Ir
