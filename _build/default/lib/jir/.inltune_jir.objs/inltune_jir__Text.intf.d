lib/jir/text.mli: Ir
