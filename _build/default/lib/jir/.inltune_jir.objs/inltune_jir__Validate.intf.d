lib/jir/validate.mli: Ir
