lib/jir/size.ml: Array Ir
