lib/jir/size.mli: Ir
