lib/jir/callgraph.ml: Array Hashtbl Int Ir List Set
