lib/jir/pp.ml: Array Fmt Ir Size
