lib/jir/text.ml: Array Buffer Inltune_support Ir List Printf String Validate
