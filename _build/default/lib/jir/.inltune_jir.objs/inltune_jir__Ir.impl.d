lib/jir/ir.ml: Array
