lib/jir/defuse.ml: Array Ir List Queue
