lib/jir/callgraph.mli: Ir
