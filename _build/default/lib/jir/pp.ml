(* Human-readable dumps of JIR, for debugging and the examples. *)

let binop_name = function
  | Ir.Add -> "add"
  | Ir.Sub -> "sub"
  | Ir.Mul -> "mul"
  | Ir.Div -> "div"
  | Ir.Mod -> "mod"
  | Ir.And -> "and"
  | Ir.Or -> "or"
  | Ir.Xor -> "xor"
  | Ir.Shl -> "shl"
  | Ir.Shr -> "shr"

let cmpop_name = function
  | Ir.Lt -> "lt"
  | Ir.Le -> "le"
  | Ir.Eq -> "eq"
  | Ir.Ne -> "ne"
  | Ir.Gt -> "gt"
  | Ir.Ge -> "ge"

let pp_args ppf args =
  Fmt.pf ppf "%a" Fmt.(array ~sep:(any ", ") (fmt "r%d")) args

let pp_instr ppf = function
  | Ir.Const (d, n) -> Fmt.pf ppf "r%d = const %d" d n
  | Ir.Move (d, s) -> Fmt.pf ppf "r%d = r%d" d s
  | Ir.Binop (op, d, a, b) -> Fmt.pf ppf "r%d = %s r%d, r%d" d (binop_name op) a b
  | Ir.Cmp (op, d, a, b) -> Fmt.pf ppf "r%d = cmp.%s r%d, r%d" d (cmpop_name op) a b
  | Ir.Load (d, o, off) -> Fmt.pf ppf "r%d = load r%d[%d]" d o off
  | Ir.Store (o, off, s) -> Fmt.pf ppf "store r%d[%d] = r%d" o off s
  | Ir.LoadIdx (d, o, i) -> Fmt.pf ppf "r%d = load r%d[1 + r%d]" d o i
  | Ir.StoreIdx (o, i, s) -> Fmt.pf ppf "store r%d[1 + r%d] = r%d" o i s
  | Ir.ClassOf (d, o) -> Fmt.pf ppf "r%d = classof r%d" d o
  | Ir.Alloc (d, kid, slots) -> Fmt.pf ppf "r%d = new k%d (%d slots)" d kid slots
  | Ir.Call (d, m, args) -> Fmt.pf ppf "r%d = call m%d(%a)" d m pp_args args
  | Ir.CallVirt (d, slot, recv, args) ->
    Fmt.pf ppf "r%d = callvirt r%d.[%d](%a)" d recv slot pp_args args
  | Ir.Print r -> Fmt.pf ppf "print r%d" r

let pp_term ppf = function
  | Ir.Jump l -> Fmt.pf ppf "jump B%d" l
  | Ir.Branch (c, t, f) -> Fmt.pf ppf "branch r%d ? B%d : B%d" c t f
  | Ir.Ret r -> Fmt.pf ppf "ret r%d" r

let pp_method ppf m =
  Fmt.pf ppf "method m%d %s(%d args, %d regs, size %d):@." m.Ir.mid m.Ir.mname m.Ir.nargs
    m.Ir.nregs (Size.of_method m);
  Array.iteri
    (fun bi blk ->
      Fmt.pf ppf "  B%d:@." bi;
      Array.iter (fun i -> Fmt.pf ppf "    %a@." pp_instr i) blk.Ir.instrs;
      Fmt.pf ppf "    %a@." pp_term blk.Ir.term)
    m.Ir.blocks

let pp_program ppf p =
  Fmt.pf ppf "program %s: %d methods, %d classes, main=m%d@." p.Ir.pname
    (Array.length p.Ir.methods) (Array.length p.Ir.classes) p.Ir.main;
  Array.iter (fun k ->
      Fmt.pf ppf "class k%d %s vtable=[%a]@." k.Ir.kid k.Ir.kname
        Fmt.(array ~sep:(any " ") (fmt "m%d")) k.Ir.vtable)
    p.Ir.classes;
  Array.iter (pp_method ppf) p.Ir.methods

let method_to_string m = Fmt.str "%a" pp_method m
let program_to_string p = Fmt.str "%a" pp_program p
