(* Structural well-formedness of programs.  Run by tests after every program
   generator and after every optimizer pass: a pass that produces an invalid
   program is a bug regardless of what the interpreter happens to do. *)

type error = { where : string; what : string }

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let check_method p m errors =
  let where = Printf.sprintf "method %d (%s)" m.Ir.mid m.Ir.mname in
  let nblocks = Array.length m.Ir.blocks in
  let push e = errors := e :: !errors in
  if nblocks = 0 then push (err where "no blocks");
  if m.Ir.nargs > m.Ir.nregs then push (err where "nargs %d > nregs %d" m.Ir.nargs m.Ir.nregs);
  let check_reg ctx r =
    if r < 0 || r >= m.Ir.nregs then push (err where "%s: register %d out of range [0,%d)" ctx r m.Ir.nregs)
  in
  let check_label ctx l =
    if l < 0 || l >= nblocks then push (err where "%s: label %d out of range [0,%d)" ctx l nblocks)
  in
  let check_target ctx callee nargs_given =
    if callee < 0 || callee >= Array.length p.Ir.methods then
      push (err where "%s: method id %d out of range" ctx callee)
    else begin
      let callee_m = p.Ir.methods.(callee) in
      if callee_m.Ir.nargs <> nargs_given then
        push
          (err where "%s: arity mismatch calling %s (%d given, %d expected)" ctx callee_m.Ir.mname
             nargs_given callee_m.Ir.nargs)
    end
  in
  Array.iteri
    (fun bi blk ->
      let ctx = Printf.sprintf "block %d" bi in
      Array.iter
        (fun i ->
          (match Ir.def_of i with Some d -> check_reg ctx d | None -> ());
          List.iter (check_reg ctx) (Ir.uses_of i);
          begin match i with
          | Ir.Call (_, callee, args) -> check_target ctx callee (Array.length args)
          | Ir.CallVirt (_, slot, _, args) ->
            if slot < 0 then push (err where "%s: negative vtable slot" ctx);
            Array.iter
              (fun k ->
                if slot < Array.length k.Ir.vtable then
                  check_target ctx k.Ir.vtable.(slot) (1 + Array.length args))
              p.Ir.classes
          | Ir.Alloc (_, kid, slots) ->
            if kid < 0 || kid >= Array.length p.Ir.classes then
              push (err where "%s: class id %d out of range" ctx kid);
            if slots < 0 then push (err where "%s: negative slot count" ctx)
          | Ir.Load (_, _, off) | Ir.Store (_, off, _) ->
            if off < 1 then push (err where "%s: field offset %d < 1 (slot 0 is the header)" ctx off)
          | _ -> ()
          end)
        blk.Ir.instrs;
      List.iter (check_reg ctx) (Ir.term_uses blk.Ir.term);
      List.iter (check_label ctx) (Ir.successors blk.Ir.term))
    m.Ir.blocks

let check p =
  let errors = ref [] in
  let n = Array.length p.Ir.methods in
  Array.iteri
    (fun i m ->
      if m.Ir.mid <> i then errors := err "program" "method at index %d has mid %d" i m.Ir.mid :: !errors;
      check_method p m errors)
    p.Ir.methods;
  Array.iteri
    (fun i k ->
      if k.Ir.kid <> i then errors := err "program" "class at index %d has kid %d" i k.Ir.kid :: !errors;
      Array.iter
        (fun mid ->
          if mid < 0 || mid >= n then
            errors := err ("class " ^ k.Ir.kname) "vtable entry %d out of range" mid :: !errors)
        k.Ir.vtable)
    p.Ir.classes;
  if p.Ir.main < 0 || p.Ir.main >= n then errors := err "program" "main %d out of range" p.Ir.main :: !errors
  else if p.Ir.methods.(p.Ir.main).Ir.nargs <> 0 then
    errors := err "program" "main must take no arguments" :: !errors;
  List.rev !errors

let check_exn p =
  match check p with
  | [] -> ()
  | { where; what } :: _ as es ->
    invalid_arg
      (Printf.sprintf "Validate: %d error(s); first: %s: %s" (List.length es) where what)
