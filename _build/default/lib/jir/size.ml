(* Estimated machine-code size, the quantity the inlining heuristic tests
   against CALLEE_MAX_SIZE / CALLER_MAX_SIZE / etc.  Mirrors Jikes RVM's
   "estimated number of machine instructions" for a method: a per-bytecode
   weight, summed.  Units are abstract "instruction estimate" points chosen so
   typical small helpers land under the default ALWAYS_INLINE_SIZE of 11 and
   big parser methods run into the hundreds, matching the paper's Table 1
   ranges. *)

let instr_weight = function
  | Ir.Const _ -> 1
  | Ir.Move _ -> 1
  | Ir.Binop ((Ir.Div | Ir.Mod), _, _, _) -> 3
  | Ir.Binop (_, _, _, _) -> 1
  | Ir.Cmp _ -> 1
  | Ir.Load _ -> 2
  | Ir.Store _ -> 2
  | Ir.LoadIdx _ -> 3
  | Ir.StoreIdx _ -> 3
  | Ir.ClassOf _ -> 2
  | Ir.Alloc _ -> 6
  | Ir.Call (_, _, args) -> 4 + Array.length args
  | Ir.CallVirt (_, _, _, args) -> 6 + Array.length args
  | Ir.Print _ -> 4

let term_weight = function
  | Ir.Jump _ -> 1
  | Ir.Branch _ -> 2
  | Ir.Ret _ -> 1

let block b =
  Array.fold_left (fun acc i -> acc + instr_weight i) (term_weight b.Ir.term) b.Ir.instrs

let of_method m = Array.fold_left (fun acc b -> acc + block b) 0 m.Ir.blocks

let of_program p = Array.fold_left (fun acc m -> acc + of_method m) 0 p.Ir.methods

(* Machine-code bytes occupied by a compiled method; drives the I-cache
   footprint.  [expansion] is the compiler-dependent bytes-per-estimate factor
   (baseline code is bulkier than optimized code). *)
let code_bytes ~expansion m = of_method m * expansion
