(** Static call graph over a program; virtual sites are over-approximated by
    every class's implementation of the slot. *)

type t

val build : Ir.program -> t

(** Possible callees of a method, sorted. *)
val callees : t -> Ir.mid -> Ir.mid list

(** Possible callers of a method, sorted. *)
val callers : t -> Ir.mid -> Ir.mid list

(** Methods reachable from [root] through calls, including [root], sorted. *)
val reachable : t -> Ir.mid -> Ir.mid list

(** Whether the method can reach itself through calls. *)
val recursive : t -> Ir.mid -> bool

(** Number of static call sites (static + virtual) in the program. *)
val call_site_count : Ir.program -> int
