(** Imperative construction of {!Ir.program} values.

    Methods are declared first (reserving a method id usable in call
    instructions, enabling mutual recursion) and defined afterwards.  A method
    definition runs inside a method-builder [mb] that tracks fresh registers,
    blocks, and the "current" block that emitters append to. *)

type t
type mb

(** Start building a program with the given name. *)
val create : string -> t

(** Reserve a method id. *)
val declare : t -> name:string -> nargs:int -> Ir.mid

(** Register a class with a vtable of method ids (copied). *)
val new_class : t -> name:string -> vtable:Ir.mid array -> Ir.kid

val set_main : t -> Ir.mid -> unit

(** Fill in the body of a declared method.  The callback receives a method
    builder positioned on the (fresh) entry block.  Every block must be
    terminated when the callback returns. *)
val define : t -> Ir.mid -> (mb -> unit) -> unit

(** [declare] + [define] in one step. *)
val method_ : t -> name:string -> nargs:int -> (mb -> unit) -> Ir.mid

(** Check completeness and produce the immutable program. *)
val finish : t -> Ir.program

(** {1 Method-builder primitives} *)

val fresh_block : mb -> int
val select : mb -> int -> unit
val current : mb -> int
val fresh_reg : mb -> Ir.reg
val emit : mb -> Ir.instr -> unit
val terminate : mb -> Ir.terminator -> unit
val jump : mb -> int -> unit
val branch : mb -> Ir.reg -> ifso:int -> ifnot:int -> unit
val ret : mb -> Ir.reg -> unit

(** {1 Emitters returning a fresh destination register} *)

val const : mb -> int -> Ir.reg
val move : mb -> Ir.reg -> Ir.reg
val binop : mb -> Ir.binop -> Ir.reg -> Ir.reg -> Ir.reg
val add : mb -> Ir.reg -> Ir.reg -> Ir.reg
val sub : mb -> Ir.reg -> Ir.reg -> Ir.reg
val mul : mb -> Ir.reg -> Ir.reg -> Ir.reg
val cmp : mb -> Ir.cmpop -> Ir.reg -> Ir.reg -> Ir.reg
val load : mb -> Ir.reg -> int -> Ir.reg
val store : mb -> Ir.reg -> int -> Ir.reg -> unit
val load_idx : mb -> Ir.reg -> Ir.reg -> Ir.reg
val store_idx : mb -> Ir.reg -> Ir.reg -> Ir.reg -> unit
val class_of : mb -> Ir.reg -> Ir.reg
val alloc : mb -> Ir.kid -> slots:int -> Ir.reg
val call : mb -> Ir.mid -> Ir.reg list -> Ir.reg
val call_virt : mb -> slot:int -> Ir.reg -> Ir.reg list -> Ir.reg
val print : mb -> Ir.reg -> unit

(** {1 Structured control flow} *)

(** [for_loop mb ~n body] runs [body i] for the induction register [i]
    counting 0, 1, ... while [i < n]. *)
val for_loop : mb -> n:Ir.reg -> (Ir.reg -> unit) -> unit

(** [if_ mb c ~then_ ~else_] emits a diamond; both arms rejoin and the builder
    is left on the join block. *)
val if_ : mb -> Ir.reg -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
