(** Structural validation of JIR programs: register/label/method-id ranges,
    call arities, vtable consistency, main arity. *)

type error = { where : string; what : string }

(** All validation errors, in program order ([[]] means well-formed). *)
val check : Ir.program -> error list

(** Raise [Invalid_argument] summarizing the first error, if any. *)
val check_exn : Ir.program -> unit
