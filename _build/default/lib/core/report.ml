module Table = Inltune_support.Table
module Stats = Inltune_support.Stats

(* Rendering helpers shared by the experiment drivers: the paper's figures
   are bar charts of time normalized to a baseline (1.0 = baseline), which we
   print as tables with ASCII bars. *)

type bar_row = {
  label : string;
  running_ratio : float;
  total_ratio : float;
}

let ratio_cell v = Table.fmt_float ~digits:3 v

let bars_table ~title ~baseline_name rows =
  let t =
    Table.create ~title
      ~header:[| "benchmark"; "running"; "total"; Printf.sprintf "total vs %s" baseline_name |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Left |]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [| r.label; ratio_cell r.running_ratio; ratio_cell r.total_ratio; Table.bar r.total_ratio |])
    rows;
  Table.add_rule t;
  let run_avg = Stats.geomean (Array.of_list (List.map (fun r -> r.running_ratio) rows)) in
  let tot_avg = Stats.geomean (Array.of_list (List.map (fun r -> r.total_ratio) rows)) in
  Table.add_row t [| "geomean"; ratio_cell run_avg; ratio_cell tot_avg; Table.bar tot_avg |];
  (t, run_avg, tot_avg)

(* "X% reduction" phrasing used throughout the paper's prose. *)
let describe_reduction what ratio =
  if ratio <= 1.0 then Printf.sprintf "%s reduced by %.0f%%" what (Stats.reduction_pct ratio)
  else Printf.sprintf "%s increased by %.0f%%" what ((ratio -. 1.0) *. 100.0)
