open Inltune_jir
open Inltune_opt
open Inltune_vm
module W = Inltune_workloads

(* The knapsack-oracle inlining baseline of Arnold, Fink, Sarkar & Sweeney
   (DYNAMO'00), which the paper discusses in Related Work: with *global*
   knowledge of a complete profiled run, treat each call edge as a knapsack
   item — benefit = dynamic calls saved x per-call overhead, cost = callee
   code size — and greedily select edges by benefit/cost ratio under a code
   expansion budget (Arnold et al. used expansions of up to 10%).

   The paper's point is that this is a limit study: a JIT cannot know future
   edge frequencies when it compiles.  We reproduce it as an oracle to
   compare the GA-tuned online heuristic against:

   1. profile a complete run with inlining disabled;
   2. select edges greedily under the budget;
   3. compile with exactly those edges inlined (direct call sites only,
      matching the one-level knapsack formulation) and measure. *)

type plan = {
  selected : (int, unit) Hashtbl.t;  (* key = owner * nmethods + callee *)
  nmethods : int;
  budget : int;          (* size units of allowed growth *)
  spent : int;
  candidates : int;
  chosen : int;
}

let edge_key ~nmethods ~site_owner ~callee = (site_owner * nmethods) + callee

(* Per-call cycles an inlined edge saves (call + return + argument setup). *)
let edge_benefit (plat : Platform.t) (callee : Ir.methd) count =
  count
  * (plat.Platform.call_overhead + plat.Platform.ret_overhead
    + (plat.Platform.arg_cost * callee.Ir.nargs))

let build_plan ?(expansion_limit = 0.10) (plat : Platform.t) (prog : Ir.program) =
  (* Oracle profiling run: whole program, no inlining, one iteration. *)
  let cfg = Machine.config ~inline_enabled:false Machine.Opt Heuristic.never in
  let vm = Machine.create cfg plat prog in
  ignore (Machine.run_iteration vm);
  let profile = Machine.profile vm in
  let nmethods = Array.length prog.Ir.methods in
  (* Candidate edges: static call edges with a positive dynamic count. *)
  let cg = Callgraph.build prog in
  let candidates = ref [] in
  Array.iter
    (fun m ->
      List.iter
        (fun callee ->
          if callee <> m.Ir.mid then begin
            let count = Profile.edge_count profile ~site_owner:m.Ir.mid ~callee in
            if count > 0 then begin
              let callee_m = prog.Ir.methods.(callee) in
              let cost = Size.of_method callee_m in
              let benefit = edge_benefit plat callee_m count in
              candidates := (m.Ir.mid, callee, benefit, cost) :: !candidates
            end
          end)
        (Callgraph.callees cg m.Ir.mid))
    prog.Ir.methods;
  let items = Array.of_list !candidates in
  (* Greedy by benefit/cost ratio, ties broken deterministically. *)
  Array.sort
    (fun (o1, c1, b1, s1) (o2, c2, b2, s2) ->
      let r1 = Float.of_int b1 /. Float.of_int s1 in
      let r2 = Float.of_int b2 /. Float.of_int s2 in
      match compare r2 r1 with 0 -> compare (o1, c1) (o2, c2) | c -> c)
    items;
  let budget =
    Float.to_int (expansion_limit *. Float.of_int (Size.of_program prog))
  in
  let selected = Hashtbl.create 64 in
  let spent = ref 0 in
  Array.iter
    (fun (owner, callee, _benefit, cost) ->
      if !spent + cost <= budget then begin
        Hashtbl.replace selected (edge_key ~nmethods ~site_owner:owner ~callee) ();
        spent := !spent + cost
      end)
    items;
  {
    selected;
    nmethods;
    budget;
    spent = !spent;
    candidates = Array.length items;
    chosen = Hashtbl.length selected;
  }

(* The per-site decision the oracle compiles with: inline exactly the
   selected edges, at direct call sites only (the knapsack formulation is
   one-level — nested opportunities were already counted as their own
   edges). *)
let decision plan ~site_owner ~callee ~callee_size:_ ~inline_depth ~caller_size:_ =
  inline_depth = 1
  && Hashtbl.mem plan.selected (edge_key ~nmethods:plan.nmethods ~site_owner ~callee)

(* Measure a benchmark compiled by the oracle plan (Opt scenario). *)
let measure ?expansion_limit ?(iterations = 3) (plat : Platform.t) bm =
  let prog = W.Suites.program bm in
  let plan = build_plan ?expansion_limit plat prog in
  let decide = decision plan in
  let cfg = Machine.config ~custom_inliner:decide Machine.Opt Heuristic.never in
  (plan, Measure.of_measurement (Runner.measure ~iterations cfg plat prog))
