lib/core/tuner.ml: Heuristic Inltune_ga Inltune_opt Inltune_vm Inltune_workloads Machine Objective Params Platform
