lib/core/params.ml: Array Heuristic Inltune_ga Inltune_opt List String
