lib/core/report.ml: Array Inltune_support List Printf
