lib/core/knapsack.ml: Array Callgraph Float Hashtbl Heuristic Inltune_jir Inltune_opt Inltune_vm Inltune_workloads Ir List Machine Measure Platform Profile Runner Size
