lib/core/objective.mli: Heuristic Inltune_opt Inltune_vm Inltune_workloads Measure
