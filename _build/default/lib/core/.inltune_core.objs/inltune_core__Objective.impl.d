lib/core/objective.ml: Array Heuristic Inltune_opt Inltune_support List Measure
