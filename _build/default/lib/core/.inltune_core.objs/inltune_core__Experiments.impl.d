lib/core/experiments.ml: Array Float Heuristic Inltune_ga Inltune_opt Inltune_support Inltune_vm Inltune_workloads List Machine Measure Params Platform Printf Report Tuner
