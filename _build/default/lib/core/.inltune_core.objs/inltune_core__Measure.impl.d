lib/core/measure.ml: Float Hashtbl Heuristic Inltune_opt Inltune_vm Inltune_workloads Machine Platform Printf Runner
