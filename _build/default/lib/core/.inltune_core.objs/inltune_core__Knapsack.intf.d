lib/core/knapsack.mli: Hashtbl Inltune_jir Inltune_vm Inltune_workloads Ir Measure Platform
