lib/core/measure.mli: Heuristic Inltune_opt Inltune_vm Inltune_workloads Machine Platform Runner
