open Inltune_opt
open Inltune_vm
module Workloads = Inltune_workloads

(* Benchmark measurement: one (benchmark, scenario, platform, heuristic)
   simulation following the paper's two-iteration methodology. *)

type times = {
  running : float;  (* cycles, as float for the fitness arithmetic *)
  total : float;
  compile : float;
  raw : Runner.measurement;
}

let of_measurement m =
  {
    running = Float.of_int m.Runner.running_cycles;
    total = Float.of_int m.Runner.total_cycles;
    compile = Float.of_int m.Runner.first_compile_cycles;
    raw = m;
  }

let run ?(iterations = 3) ?(inline_enabled = true) ~scenario ~platform ~heuristic bm =
  let prog = Workloads.Suites.program bm in
  let cfg = Machine.config ~inline_enabled scenario heuristic in
  of_measurement (Runner.measure ~iterations cfg platform prog)

(* Measurements with the default (Jikes) heuristic are requested constantly —
   every normalized bar divides by one — so memoize those alone.  The cache
   key is benchmark/scenario/platform; the heuristic is pinned to default.
   Not used from worker domains (fitness evaluation precomputes baselines
   up-front), so a plain Hashtbl is fine. *)
let default_cache : (string, times) Hashtbl.t = Hashtbl.create 64

let run_default ?(iterations = 3) ~scenario ~platform bm =
  let key =
    Printf.sprintf "%s/%s/%s/%d" bm.Workloads.Suites.bname (Machine.scenario_name scenario)
      platform.Platform.pname iterations
  in
  match Hashtbl.find_opt default_cache key with
  | Some t -> t
  | None ->
    let t = run ~iterations ~scenario ~platform ~heuristic:Heuristic.default bm in
    Hashtbl.add default_cache key t;
    t

(* The Fig. 1 baseline: same scenario, inlining disabled entirely. *)
let run_no_inlining ?(iterations = 3) ~scenario ~platform bm =
  run ~iterations ~inline_enabled:false ~scenario ~platform ~heuristic:Heuristic.never bm
