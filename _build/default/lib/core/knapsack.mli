open Inltune_jir
open Inltune_vm

(** The knapsack-oracle inlining baseline of Arnold et al. (DYNAMO'00),
    discussed in the paper's Related Work: select call edges to inline by
    benefit/cost ratio under a code-expansion budget, using a *complete*
    profile of the run — information a dynamic compiler does not have. *)

type plan = {
  selected : (int, unit) Hashtbl.t;
  nmethods : int;
  budget : int;      (** allowed code growth, size units *)
  spent : int;       (** growth actually claimed by selected edges *)
  candidates : int;  (** dynamic call edges considered *)
  chosen : int;      (** edges selected *)
}

(** Profile the program (inlining off) and greedily select edges.
    [expansion_limit] is the growth budget as a fraction of total program
    size (default 0.10, Arnold et al.'s "modest" limit). *)
val build_plan : ?expansion_limit:float -> Platform.t -> Ir.program -> plan

(** The per-site decision procedure compiling the plan (direct sites only). *)
val decision :
  plan ->
  site_owner:Ir.mid ->
  callee:Ir.mid ->
  callee_size:int ->
  inline_depth:int ->
  caller_size:int ->
  bool

(** Build the plan for a benchmark and measure it under the Opt scenario. *)
val measure :
  ?expansion_limit:float ->
  ?iterations:int ->
  Platform.t ->
  Inltune_workloads.Suites.benchmark ->
  plan * Measure.times
