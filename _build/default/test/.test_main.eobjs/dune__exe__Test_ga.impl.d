test/test_ga.ml: Alcotest Array Float Inltune_ga Inltune_opt Inltune_support List Printf
