test/test_shapes.ml: Alcotest Array Compile Float Heuristic Inline Inltune_jir Inltune_opt Inltune_vm Inltune_workloads Ir List Machine Platform Printf Regalloc Runner Size String
