test/test_opt.ml: Alcotest Array Builder Cleanup Constprop Copyprop Cse Dce Fmt Guarded_devirt Heuristic Inline Inltune_jir Inltune_opt Inltune_vm Ir Pipeline Pp Size Validate
