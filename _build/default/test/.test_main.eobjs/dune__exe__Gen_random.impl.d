test/gen_random.ml: Array Builder Inltune_jir Inltune_support Ir List Printf
