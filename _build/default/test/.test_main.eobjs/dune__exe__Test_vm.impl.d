test/test_vm.ml: Alcotest Array Builder Codespace Heuristic Icache Inline Inltune_jir Inltune_opt Inltune_vm Inltune_workloads Ir List Machine Platform Printf Profile Regalloc Runner
