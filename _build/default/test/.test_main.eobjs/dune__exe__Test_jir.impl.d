test/test_jir.ml: Alcotest Array Builder Callgraph Defuse Gen_random Inltune_jir Inltune_support Inltune_vm Inltune_workloads Ir List Pp Size String Text Validate
