test/test_main.ml: Alcotest Test_core Test_extensions Test_ga Test_jir Test_opt Test_properties Test_shapes Test_support Test_vm Test_workloads
