test/test_support.ml: Alcotest Array Inltune_support List String
