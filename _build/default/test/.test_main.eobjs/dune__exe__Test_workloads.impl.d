test/test_workloads.ml: Alcotest Array Callgraph Float Heuristic Inltune_jir Inltune_opt Inltune_support Inltune_vm Inltune_workloads Ir List Machine Platform Printf Runner Size Validate
