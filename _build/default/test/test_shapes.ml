open Inltune_jir
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

(* Per-benchmark structural characterizations.  These lock in the calibrated
   *shape* of each workload — the properties the paper's experiments depend
   on.  If a generator edit silently changes a benchmark's character (say,
   jess stops being I-cache-bound), these tests fail rather than the
   experiment tables quietly drifting. *)

let program name = W.Suites.program (W.Suites.find name)

let measure ?(scenario = Machine.Opt) ?(heuristic = Heuristic.default) name =
  Runner.measure (Machine.config scenario heuristic) Platform.x86 (program name)

let method_count name = Array.length (program name).Ir.methods

let has_method name mname =
  Array.exists (fun m -> m.Ir.mname = mname) (program name).Ir.methods

(* -- suite-level shapes -- *)

let test_method_count_bands () =
  (* SPEC programs are tens of methods; DaCapo programs are hundreds. *)
  List.iter
    (fun bm ->
      let n = method_count bm.W.Suites.bname in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d methods in SPEC band" bm.W.Suites.bname n)
        true (n >= 15 && n < 260))
    W.Suites.spec;
  List.iter
    (fun bm ->
      let n = method_count bm.W.Suites.bname in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d methods in DaCapo band" bm.W.Suites.bname n)
        true (n >= 120 && n < 600))
    W.Suites.dacapo

let test_step_budgets () =
  (* Simulations stay within the budget the GA's evaluation cost assumes. *)
  List.iter
    (fun bm ->
      let m = measure bm.W.Suites.bname in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d steps in range" bm.W.Suites.bname m.Runner.steps)
        true
        (m.Runner.steps > 20_000 && m.Runner.steps < 2_000_000))
    W.Suites.all

(* -- per-benchmark characters -- *)

let test_compress_prefers_opt () =
  let o = measure ~scenario:Machine.Opt "compress" in
  let a = measure ~scenario:Machine.Adapt "compress" in
  Alcotest.(check bool) "Opt beats Adapt on compress (paper Fig. 2a)" true
    (o.Runner.total_cycles < a.Runner.total_cycles)

let test_jess_prefers_adapt () =
  let o = measure ~scenario:Machine.Opt "jess" in
  let a = measure ~scenario:Machine.Adapt "jess" in
  Alcotest.(check bool) "Adapt beats Opt on jess (paper Fig. 2b)" true
    (a.Runner.total_cycles < o.Runner.total_cycles)

let test_jess_depth_default_bad_under_opt () =
  (* Paper: depth 0 is the best Opt setting for jess; the default (5) is
     substantially worse. *)
  let at_depth d =
    (measure ~heuristic:(Heuristic.with_depth Heuristic.default d) "jess").Runner.total_cycles
  in
  Alcotest.(check bool) "depth 0 beats depth 5 for jess under Opt" true (at_depth 0 < at_depth 5)

let test_compress_hot_chain_inlined () =
  (* compress's hot helpers are consumed by the inliner under the default
     heuristic: the compiled hot code should contain fewer calls than the
     source. *)
  let p = program "compress" in
  let vm = Machine.create (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
  ignore (Machine.run_iteration vm);
  let byte_mid =
    (Array.to_list p.Ir.methods |> List.find (fun m -> m.Ir.mname = "compress_byte")).Ir.mid
  in
  match Machine.compiled_method vm byte_mid with
  | Some c ->
    (* The direct helpers (next_byte / hash / probe / emit_code) are all
       within CALLEE_MAX at the defaults, so none of their call sites may
       survive in the compiled hot method (deeper DAG calls may remain). *)
    let direct_targets =
      Array.to_list p.Ir.methods
      |> List.filter (fun m ->
             List.mem m.Ir.mname [ "next_byte"; "hash"; "probe"; "emit_code" ])
      |> List.map (fun m -> m.Ir.mid)
    in
    let survivors =
      Array.fold_left
        (fun acc blk ->
          Array.fold_left
            (fun acc i ->
              match i with
              | Ir.Call (_, t, _) when List.mem t direct_targets -> acc + 1
              | _ -> acc)
            acc blk.Ir.instrs)
        0 c.Compile.code.Ir.blocks
    in
    Alcotest.(check int) "direct helpers all inlined" 0 survivors
  | None -> Alcotest.fail "compress_byte never compiled"

let test_javac_methods_are_large () =
  let p = program "javac" in
  let big =
    Array.exists
      (fun m -> String.length m.Ir.mname >= 5 && String.sub m.Ir.mname 0 5 = "parse"
                && Size.of_method m > Heuristic.default.Heuristic.callee_max_size * 3)
      p.Ir.methods
  in
  Alcotest.(check bool) "parser methods exceed CALLEE_MAX several times over" true big

let test_raytrace_has_tiny_hot_helpers () =
  let p = program "raytrace" in
  let tiny name =
    let m = Array.to_list p.Ir.methods |> List.find (fun m -> m.Ir.mname = name) in
    Size.of_method m < Heuristic.default.Heuristic.always_inline_size
  in
  Alcotest.(check bool) "v_dot always-inlined" true (tiny "v_dot");
  Alcotest.(check bool) "v_scale always-inlined" true (tiny "v_scale")

let test_mpegaudio_benefits_from_folding () =
  (* The indirect benefit: with the dataflow passes disabled, mpegaudio's
     running time worsens even with identical inlining. *)
  let on = measure "mpegaudio" in
  let off =
    Runner.measure
      (Machine.config ~optimize:false Machine.Opt Heuristic.default)
      Platform.x86 (program "mpegaudio")
  in
  Alcotest.(check bool) "optimizations carry real benefit" true
    (on.Runner.running_cycles < off.Runner.running_cycles)

let test_dacapo_has_guarded_dags () =
  List.iter
    (fun (bench, dag) ->
      Alcotest.(check bool) (bench ^ " has its DAG") true (has_method bench (dag ^ "_l0_n0")))
    [
      ("jython", "py_obj"); ("pseudojbb", "jbb_item"); ("fop", "fop_resolve");
      ("ipsixql", "xql_path"); ("antlr", "antlr_pred"); ("pmd", "pmd_sym"); ("ps", "ps_gstate");
    ]

let test_antlr_most_compile_bound () =
  (* antlr has the paper's biggest total-time win; structurally that requires
     it to be the most compile-dominated program in the suite under Opt. *)
  let share name =
    let m = measure name in
    Float.of_int m.Runner.first_compile_cycles /. Float.of_int m.Runner.total_cycles
  in
  let antlr = share "antlr" in
  Alcotest.(check bool) "antlr compile share > 80%" true (antlr > 0.8);
  List.iter
    (fun bm ->
      Alcotest.(check bool)
        (Printf.sprintf "antlr more compile-bound than %s" bm.W.Suites.bname)
        true
        (antlr >= share bm.W.Suites.bname))
    W.Suites.spec

let test_monomorphic_sites_guarded_under_adapt () =
  List.iter
    (fun name ->
      let p = program name in
      let vm = Machine.create (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
      for _ = 1 to 2 do
        ignore (Machine.run_iteration vm)
      done;
      let guarded =
        Array.exists
          (fun (m : Ir.methd) ->
            match Machine.compiled_method vm m.Ir.mid with
            | Some { Compile.tier = Compile.Optimized; code; _ } ->
              Array.exists
                (fun blk ->
                  Array.exists (fun i -> match i with Ir.ClassOf _ -> true | _ -> false)
                    blk.Ir.instrs)
                code.Ir.blocks
            | _ -> false)
          p.Ir.methods
      in
      Alcotest.(check bool) (name ^ ": guard emitted somewhere hot") true guarded)
    [ "ipsixql" ]

let test_x86_spills_more_than_ppc () =
  (* 8 vs 24 architectural registers: aggressive inlining must spill more on
     x86 for the same method. *)
  let p = program "jess" in
  let hot = Array.to_list p.Ir.methods |> List.find (fun m -> m.Ir.mname = "rule_match0") in
  let inlined, _ =
    Inline.run ~program:p ~heuristic:(Heuristic.of_array [| 50; 20; 15; 4000; 400 |]) hot
  in
  let x86 = Regalloc.run ~phys_regs:Platform.x86.Platform.phys_regs inlined in
  let ppc = Regalloc.run ~phys_regs:Platform.ppc.Platform.phys_regs inlined in
  Alcotest.(check bool) "x86 spills more" true (x86.Regalloc.spilled > ppc.Regalloc.spilled)

let suite =
  [
    ("method counts per suite band", `Quick, test_method_count_bands);
    ("step budgets", `Slow, test_step_budgets);
    ("compress prefers Opt", `Quick, test_compress_prefers_opt);
    ("jess prefers Adapt", `Quick, test_jess_prefers_adapt);
    ("jess: depth 0 beats the default under Opt", `Quick, test_jess_depth_default_bad_under_opt);
    ("compress: hot chain is inlined", `Quick, test_compress_hot_chain_inlined);
    ("javac: parser methods are large", `Quick, test_javac_methods_are_large);
    ("raytrace: tiny hot helpers", `Quick, test_raytrace_has_tiny_hot_helpers);
    ("mpegaudio: folding matters", `Quick, test_mpegaudio_benefits_from_folding);
    ("DaCapo programs carry guarded DAGs", `Quick, test_dacapo_has_guarded_dags);
    ("antlr is the most compile-bound", `Slow, test_antlr_most_compile_bound);
    ("monomorphic sites get guards under Adapt", `Quick, test_monomorphic_sites_guarded_under_adapt);
    ("x86 spills more than PPC", `Quick, test_x86_spills_more_than_ppc);
  ]
