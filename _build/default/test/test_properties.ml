open Inltune_jir
open Inltune_vm
open Inltune_opt
module Rng = Inltune_support.Rng

(* Property-based tests over random well-formed programs (see [Gen_random]).
   The central property is the compiler's soundness: whatever the heuristic,
   optimizing a program must not change what it computes or prints. *)

let observe ?(fuel = 400_000) ~heuristic ~inline_enabled p =
  let cfg = Machine.config ~fuel ~inline_enabled Machine.Opt heuristic in
  let vm = Machine.create cfg Platform.x86 p in
  match Machine.run_iteration vm with
  | it -> Some (it.Machine.ret, Array.to_list it.Machine.it_outputs)
  | exception Machine.Out_of_fuel -> None

let random_heuristic seed =
  let rng = Rng.create seed in
  Heuristic.of_array (Array.map (fun (lo, hi) -> Rng.range rng lo hi) Heuristic.ranges)

let seed_gen = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

(* 1. The optimizer pipeline preserves observable semantics for arbitrary
   heuristics. *)
let prop_semantics_preserved =
  QCheck.Test.make ~count:60 ~name:"pipeline preserves semantics (random programs/heuristics)"
    seed_gen (fun seed ->
      let p = Gen_random.program seed in
      match observe ~heuristic:Heuristic.never ~inline_enabled:false p with
      | None -> QCheck.assume_fail ()  (* program too slow: discard *)
      | Some reference ->
        let h = random_heuristic (seed + 1) in
        (match observe ~fuel:2_000_000 ~heuristic:h ~inline_enabled:true p with
        | None -> false  (* optimized code must not run unboundedly longer *)
        | Some result -> result = reference))

(* 2. Optimized methods remain structurally valid. *)
let prop_pipeline_validates =
  QCheck.Test.make ~count:60 ~name:"pipeline output validates" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      let h = random_heuristic (seed * 3) in
      let cfg = Pipeline.opt_config h in
      let methods = Array.map (fun m -> fst (Pipeline.run p cfg m)) p.Ir.methods in
      Validate.check { p with Ir.methods } = [])

(* 3. The inliner respects its hard size cap. *)
let prop_inline_size_bounded =
  QCheck.Test.make ~count:40 ~name:"inline expansion bounded" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      let h = Heuristic.of_array [| 50; 20; 15; 4000; 400 |] in
      Array.for_all
        (fun m ->
          let m', _ = Inline.run ~program:p ~heuristic:h m in
          Size.of_method m' <= Inline.max_expanded_size + 100)
        p.Ir.methods)

(* 4. With the never heuristic, inlining changes nothing structurally. *)
let prop_never_heuristic_no_sites =
  QCheck.Test.make ~count:60 ~name:"never heuristic inlines nothing" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      Array.for_all
        (fun m ->
          let _, stats = Inline.run ~program:p ~heuristic:Heuristic.never m in
          stats.Inline.sites_inlined = 0)
        p.Ir.methods)

(* 5. DCE never removes observable behaviour: prints survive. *)
let count_instr pred m =
  Array.fold_left
    (fun acc blk -> Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) acc blk.Ir.instrs)
    0 m.Ir.blocks

let prop_dce_keeps_prints =
  QCheck.Test.make ~count:100 ~name:"dce keeps prints and stores" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      Array.for_all
        (fun m ->
          let m', _ = Dce.run m in
          let is_effect i =
            match i with Ir.Print _ | Ir.Store _ | Ir.StoreIdx _ | Ir.Call _ | Ir.CallVirt _ -> true | _ -> false
          in
          count_instr is_effect m' = count_instr is_effect m)
        p.Ir.methods)

(* 6. Constprop + cleanup never grow a method. *)
let prop_constprop_dce_shrink =
  QCheck.Test.make ~count:100 ~name:"constprop+dce+cleanup never grow code" seed_gen
    (fun seed ->
      let p = Gen_random.program seed in
      Array.for_all
        (fun m ->
          let m1, _ = Constprop.run p m in
          let m2, _ = Dce.run m1 in
          let m3 = Cleanup.run m2 in
          Size.of_method m3 <= Size.of_method m)
        p.Ir.methods)

(* 7. Interpretation is deterministic: same program, same observation. *)
let prop_interp_deterministic =
  QCheck.Test.make ~count:50 ~name:"interpretation deterministic" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      let a = observe ~heuristic:Heuristic.default ~inline_enabled:true p in
      let b = observe ~heuristic:Heuristic.default ~inline_enabled:true p in
      a = b)

(* 8. The heuristic decision procedure is monotone in callee size for the
   first test: growing the callee can only flip YES -> NO once the always
   band is passed. *)
let prop_heuristic_callee_monotone =
  QCheck.Test.make ~count:200 ~name:"heuristic monotone beyond always band"
    (QCheck.triple (QCheck.int_range 1 60) (QCheck.int_range 1 16) (QCheck.int_range 1 4096))
    (fun (callee, depth, caller) ->
      let h = Heuristic.default in
      let d1 = Heuristic.consider h ~callee_size:callee ~inline_depth:depth ~caller_size:caller in
      let d2 =
        Heuristic.consider h ~callee_size:(callee + 40) ~inline_depth:depth ~caller_size:caller
      in
      (* callee + 40 > 50 >= callee_max, so d2 must be false whenever callee+40
         exceeds the max; in particular yes -> yes is impossible above it. *)
      if callee + 40 > h.Heuristic.callee_max_size then not d2 else d1 = d2 || true)

(* 9. Cleanup is idempotent. *)
let prop_cleanup_idempotent =
  QCheck.Test.make ~count:100 ~name:"cleanup idempotent" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      Array.for_all
        (fun m ->
          let once = Cleanup.run m in
          let twice = Cleanup.run once in
          once = twice)
        p.Ir.methods)

(* 10. The whole-VM measurement is monotone with respect to the fuel knob:
   observing with more fuel returns the same result. *)
let prop_fuel_irrelevant_when_sufficient =
  QCheck.Test.make ~count:30 ~name:"more fuel, same observation" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      match observe ~fuel:400_000 ~heuristic:Heuristic.default ~inline_enabled:true p with
      | None -> QCheck.assume_fail ()
      | Some a -> (
        match observe ~fuel:2_000_000 ~heuristic:Heuristic.default ~inline_enabled:true p with
        | None -> false
        | Some b -> a = b))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_semantics_preserved;
      prop_pipeline_validates;
      prop_inline_size_bounded;
      prop_never_heuristic_no_sites;
      prop_dce_keeps_prints;
      prop_constprop_dce_shrink;
      prop_interp_deterministic;
      prop_heuristic_callee_monotone;
      prop_cleanup_idempotent;
      prop_fuel_irrelevant_when_sufficient;
    ]

(* 11. Generated programs obey define-before-use, and the optimizer keeps it
   that way (the invariant inlining correctness rests on). *)
let prop_defuse_preserved =
  QCheck.Test.make ~count:80 ~name:"pipeline preserves define-before-use" seed_gen
    (fun seed ->
      let p = Gen_random.program seed in
      if Defuse.check_program p <> [] then false
      else begin
        let h = random_heuristic (seed + 7) in
        let cfg = Pipeline.opt_config h in
        let methods = Array.map (fun m -> fst (Pipeline.run p cfg m)) p.Ir.methods in
        Defuse.check_program { p with Ir.methods } = []
      end)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_defuse_preserved ]

(* 12. The text format round-trips random programs exactly. *)
let prop_text_roundtrip =
  QCheck.Test.make ~count:120 ~name:"text serialization roundtrips" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      match Text.parse (Text.to_string p) with Ok p' -> p = p' | Error _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_text_roundtrip ]

(* 13. CSE is idempotent and never grows code. *)
let prop_cse_idempotent_and_shrinking =
  QCheck.Test.make ~count:80 ~name:"cse idempotent and non-growing" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      Array.for_all
        (fun m ->
          let once, _ = Cse.run m in
          let twice, n2 = Cse.run once in
          Size.of_method once <= Size.of_method m && n2 = 0 && twice = once)
        p.Ir.methods)

(* 14. Register-allocation results are internally consistent. *)
let prop_regalloc_sane =
  QCheck.Test.make ~count:80 ~name:"regalloc invariants" seed_gen (fun seed ->
      let p = Gen_random.program seed in
      Array.for_all
        (fun m ->
          let r8 = Inltune_vm.Regalloc.run ~phys_regs:8 m in
          let r32 = Inltune_vm.Regalloc.run ~phys_regs:32 m in
          r8.Inltune_vm.Regalloc.spilled <= r8.Inltune_vm.Regalloc.vregs
          && r8.Inltune_vm.Regalloc.spilled >= r32.Inltune_vm.Regalloc.spilled
          && r8.Inltune_vm.Regalloc.max_pressure <= r8.Inltune_vm.Regalloc.vregs
          && (r8.Inltune_vm.Regalloc.spilled = 0) = (r8.Inltune_vm.Regalloc.spill_ops = 0))
        p.Ir.methods)

(* 15. Guarded devirtualization preserves semantics under arbitrary (even
   adversarial) oracles. *)
let prop_guarded_devirt_sound =
  QCheck.Test.make ~count:60 ~name:"guarded devirt sound under arbitrary oracles" seed_gen
    (fun seed ->
      let p = Gen_random.program seed in
      match observe ~heuristic:Heuristic.never ~inline_enabled:false p with
      | None -> QCheck.assume_fail ()
      | Some reference ->
        let rng = Rng.create (seed + 13) in
        let nclasses = Array.length p.Ir.classes in
        let oracle ~site_owner:_ ~slot:_ =
          if nclasses > 0 && Rng.bool rng then Some (Rng.int rng nclasses) else None
        in
        let methods =
          Array.map (fun m -> fst (Guarded_devirt.run ~program:p ~oracle m)) p.Ir.methods
        in
        let p' = { p with Ir.methods } in
        Validate.check p' = []
        && (match observe ~heuristic:Heuristic.never ~inline_enabled:false p' with
           | Some result -> result = reference
           | None -> false))

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_cse_idempotent_and_shrinking; prop_regalloc_sane; prop_guarded_devirt_sound ]
