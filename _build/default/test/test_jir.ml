open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* A tiny hand-built program reused across tests: main computes
   add3(4, 5) + 1 where add3(x, y) = x + y + 3. *)
let tiny_program () =
  let b = B.create "tiny" in
  let add3 =
    B.method_ b ~name:"add3" ~nargs:2 (fun mb ->
        let three = B.const mb 3 in
        let t = B.add mb 0 1 in
        let r = B.add mb t three in
        B.ret mb r)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let four = B.const mb 4 in
        let five = B.const mb 5 in
        let s = B.call mb add3 [ four; five ] in
        let one = B.const mb 1 in
        let r = B.add mb s one in
        B.print mb r;
        B.ret mb r)
  in
  B.set_main b main;
  B.finish b

(* --- builder --- *)

let test_builder_tiny () =
  let p = tiny_program () in
  Alcotest.(check int) "two methods" 2 (Array.length p.Ir.methods);
  Alcotest.(check int) "main id" 1 p.Ir.main;
  Alcotest.(check (list string)) "no validation errors" []
    (List.map (fun e -> e.Validate.what) (Validate.check p))

let test_builder_requires_main () =
  let b = B.create "nomain" in
  ignore (B.method_ b ~name:"f" ~nargs:0 (fun mb -> B.ret mb (B.const mb 0)));
  Alcotest.check_raises "no main" (Invalid_argument "Builder.finish: no main method set")
    (fun () -> ignore (B.finish b))

let test_builder_rejects_undefined () =
  let b = B.create "undef" in
  let m = B.declare b ~name:"f" ~nargs:0 in
  B.set_main b m;
  Alcotest.check_raises "undefined method"
    (Invalid_argument "Builder.finish: undefined method f") (fun () -> ignore (B.finish b))

let test_builder_rejects_unterminated () =
  let b = B.create "unterm" in
  let raised =
    try
      ignore (B.method_ b ~name:"f" ~nargs:0 (fun mb -> ignore (B.const mb 1)));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unterminated block rejected" true raised

let test_builder_rejects_double_define () =
  let b = B.create "dd" in
  let m = B.declare b ~name:"f" ~nargs:0 in
  B.define b m (fun mb -> B.ret mb (B.const mb 0));
  Alcotest.check_raises "double define" (Invalid_argument "Builder.define: already defined: f")
    (fun () -> B.define b m (fun mb -> B.ret mb (B.const mb 0)))

let test_builder_emit_after_terminate_rejected () =
  let b = B.create "eat" in
  let raised =
    try
      ignore
        (B.method_ b ~name:"f" ~nargs:0 (fun mb ->
             let r = B.const mb 0 in
             B.ret mb r;
             ignore (B.const mb 1)));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "emit after terminate rejected" true raised

let test_builder_for_loop_structure () =
  let b = B.create "loop" in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Const (acc, 0));
        let n = B.const mb 5 in
        B.for_loop mb ~n (fun i -> B.emit mb (Ir.Binop (Ir.Add, acc, acc, i)));
        B.ret mb acc)
  in
  B.set_main b main;
  let p = B.finish b in
  Validate.check_exn p;
  Alcotest.(check bool) "has at least 4 blocks" true
    (Array.length p.Ir.methods.(main).Ir.blocks >= 4)

(* --- validate --- *)

let test_validate_bad_register () =
  let bad =
    {
      Ir.mid = 0;
      mname = "bad";
      nargs = 0;
      nregs = 1;
      blocks = [| { Ir.instrs = [| Ir.Move (0, 5) |]; term = Ir.Ret 0 } |];
    }
  in
  let p = { Ir.pname = "p"; methods = [| bad |]; classes = [||]; main = 0 } in
  Alcotest.(check bool) "register error found" true (Validate.check p <> [])

let test_validate_bad_label () =
  let bad =
    {
      Ir.mid = 0;
      mname = "bad";
      nargs = 0;
      nregs = 1;
      blocks = [| { Ir.instrs = [||]; term = Ir.Jump 7 } |];
    }
  in
  let p = { Ir.pname = "p"; methods = [| bad |]; classes = [||]; main = 0 } in
  Alcotest.(check bool) "label error found" true (Validate.check p <> [])

let test_validate_arity_mismatch () =
  let callee =
    { Ir.mid = 0; mname = "f"; nargs = 2; nregs = 2;
      blocks = [| { Ir.instrs = [||]; term = Ir.Ret 0 } |] }
  in
  let caller =
    { Ir.mid = 1; mname = "main"; nargs = 0; nregs = 2;
      blocks = [| { Ir.instrs = [| Ir.Const (0, 1); Ir.Call (1, 0, [| 0 |]) |]; term = Ir.Ret 1 } |] }
  in
  let p = { Ir.pname = "p"; methods = [| callee; caller |]; classes = [||]; main = 1 } in
  Alcotest.(check bool) "arity error found" true
    (List.exists (fun e ->
         String.length e.Validate.what >= 5 && String.sub e.Validate.what 0 5 = "block")
       (Validate.check p)
    || Validate.check p <> [])

let test_validate_main_with_args_rejected () =
  let m =
    { Ir.mid = 0; mname = "main"; nargs = 1; nregs = 1;
      blocks = [| { Ir.instrs = [||]; term = Ir.Ret 0 } |] }
  in
  let p = { Ir.pname = "p"; methods = [| m |]; classes = [||]; main = 0 } in
  Alcotest.(check bool) "main arity error" true (Validate.check p <> [])

let test_validate_accepts_workloads () =
  List.iter
    (fun bm ->
      let p = Inltune_workloads.Suites.program bm in
      Alcotest.(check (list string))
        (bm.Inltune_workloads.Suites.bname ^ " validates")
        []
        (List.map (fun e -> e.Validate.where ^ ": " ^ e.Validate.what) (Validate.check p)))
    Inltune_workloads.Suites.all

(* --- size --- *)

let test_size_positive_and_monotone () =
  let p = tiny_program () in
  let s0 = Size.of_method p.Ir.methods.(0) in
  let s1 = Size.of_method p.Ir.methods.(1) in
  Alcotest.(check bool) "positive" true (s0 > 0 && s1 > 0);
  Alcotest.(check int) "program = sum" (s0 + s1) (Size.of_program p)

let test_size_call_weighting () =
  let call = Ir.Call (0, 0, [| 1; 2 |]) in
  let mv = Ir.Move (0, 1) in
  Alcotest.(check bool) "calls cost more than moves" true
    (Size.instr_weight call > Size.instr_weight mv)

let test_code_bytes_scales () =
  let p = tiny_program () in
  let m = p.Ir.methods.(0) in
  Alcotest.(check int) "expansion x2" (2 * Size.code_bytes ~expansion:4 m)
    (Size.code_bytes ~expansion:8 m)

(* --- callgraph --- *)

let test_callgraph_tiny () =
  let p = tiny_program () in
  let cg = Callgraph.build p in
  Alcotest.(check (list int)) "main calls add3" [ 0 ] (Callgraph.callees cg 1);
  Alcotest.(check (list int)) "add3 called by main" [ 1 ] (Callgraph.callers cg 0);
  Alcotest.(check (list int)) "reachable" [ 0; 1 ] (Callgraph.reachable cg 1);
  Alcotest.(check bool) "main not recursive" false (Callgraph.recursive cg 1)

let test_callgraph_recursive_detected () =
  let b = B.create "rec" in
  let f = B.declare b ~name:"f" ~nargs:1 in
  B.define b f (fun mb ->
      let r = B.call mb f [ 0 ] in
      B.ret mb r);
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let z = B.const mb 0 in
        let r = B.call mb f [ z ] in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  let cg = Callgraph.build p in
  Alcotest.(check bool) "f recursive" true (Callgraph.recursive cg f);
  Alcotest.(check bool) "main not recursive" false (Callgraph.recursive cg main)

let test_callgraph_virtual_over_approx () =
  let b = B.create "virt" in
  let impl =
    B.method_ b ~name:"impl" ~nargs:1 (fun mb -> B.ret mb 0)
  in
  let k = B.new_class b ~name:"k" ~vtable:[| impl |] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let o = B.alloc mb k ~slots:1 in
        let r = B.call_virt mb ~slot:0 o [] in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  let cg = Callgraph.build p in
  Alcotest.(check (list int)) "virtual edge found" [ impl ] (Callgraph.callees cg main)

let test_call_site_count () =
  let p = tiny_program () in
  Alcotest.(check int) "one call site" 1 (Callgraph.call_site_count p)

(* --- pp --- *)

let contains_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let p = tiny_program () in
  let s = Pp.program_to_string p in
  Alcotest.(check bool) "mentions main" true (contains_substring s "main");
  Alcotest.(check bool) "mentions call" true (contains_substring s "call")

(* --- random generator sanity --- *)

let test_random_programs_validate () =
  for seed = 0 to 49 do
    let p = Gen_random.program seed in
    match Validate.check p with
    | [] -> ()
    | e :: _ ->
      Alcotest.failf "seed %d: %s: %s" seed e.Validate.where e.Validate.what
  done

let test_random_program_deterministic () =
  let a = Gen_random.program 123 and b = Gen_random.program 123 in
  Alcotest.(check bool) "same seed, same program" true (a = b)

let suite =
  [
    ("builder tiny program", `Quick, test_builder_tiny);
    ("builder requires main", `Quick, test_builder_requires_main);
    ("builder rejects undefined methods", `Quick, test_builder_rejects_undefined);
    ("builder rejects unterminated blocks", `Quick, test_builder_rejects_unterminated);
    ("builder rejects double define", `Quick, test_builder_rejects_double_define);
    ("builder rejects emit after terminate", `Quick, test_builder_emit_after_terminate_rejected);
    ("builder for_loop structure", `Quick, test_builder_for_loop_structure);
    ("validate flags bad register", `Quick, test_validate_bad_register);
    ("validate flags bad label", `Quick, test_validate_bad_label);
    ("validate flags arity mismatch", `Quick, test_validate_arity_mismatch);
    ("validate rejects main with args", `Quick, test_validate_main_with_args_rejected);
    ("validate accepts all workloads", `Slow, test_validate_accepts_workloads);
    ("size positive and additive", `Quick, test_size_positive_and_monotone);
    ("size weights calls heavier", `Quick, test_size_call_weighting);
    ("code bytes scale with expansion", `Quick, test_code_bytes_scales);
    ("callgraph tiny program", `Quick, test_callgraph_tiny);
    ("callgraph detects recursion", `Quick, test_callgraph_recursive_detected);
    ("callgraph over-approximates virtuals", `Quick, test_callgraph_virtual_over_approx);
    ("callgraph call-site count", `Quick, test_call_site_count);
    ("pp smoke", `Quick, test_pp_smoke);
    ("random programs validate", `Quick, test_random_programs_validate);
    ("random generator deterministic", `Quick, test_random_program_deterministic);
  ]

(* --- Defuse (definite assignment) --- *)

let test_defuse_clean_program () =
  let p = tiny_program () in
  Alcotest.(check int) "no issues" 0 (List.length (Defuse.check_program p))

let test_defuse_flags_read_before_write () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 2;
      blocks = [| { Ir.instrs = [| Ir.Move (1, 0) |]; term = Ir.Ret 1 } |];
    }
  in
  match Defuse.check m with
  | [ { Defuse.iblock = 0; iindex = 0; ireg = 0 } ] -> ()
  | issues -> Alcotest.failf "expected one issue, got %d" (List.length issues)

let test_defuse_one_armed_definition_flagged () =
  (* r1 written only on the then-path; the join read must be flagged. *)
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 1; nregs = 2;
      blocks =
        [|
          { Ir.instrs = [||]; term = Ir.Branch (0, 1, 2) };
          { Ir.instrs = [| Ir.Const (1, 5) |]; term = Ir.Jump 3 };
          { Ir.instrs = [||]; term = Ir.Jump 3 };
          { Ir.instrs = [||]; term = Ir.Ret 1 };
        |];
    }
  in
  Alcotest.(check bool) "flagged" true
    (List.exists (fun i -> i.Defuse.ireg = 1 && i.Defuse.iblock = 3) (Defuse.check m))

let test_defuse_both_arms_ok () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 1; nregs = 2;
      blocks =
        [|
          { Ir.instrs = [||]; term = Ir.Branch (0, 1, 2) };
          { Ir.instrs = [| Ir.Const (1, 5) |]; term = Ir.Jump 3 };
          { Ir.instrs = [| Ir.Const (1, 6) |]; term = Ir.Jump 3 };
          { Ir.instrs = [||]; term = Ir.Ret 1 };
        |];
    }
  in
  Alcotest.(check int) "clean" 0 (List.length (Defuse.check m))

let test_defuse_unreachable_not_flagged () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 2;
      blocks =
        [|
          { Ir.instrs = [| Ir.Const (0, 1) |]; term = Ir.Ret 0 };
          (* unreachable block reading an unwritten register *)
          { Ir.instrs = [| Ir.Move (0, 1) |]; term = Ir.Ret 0 };
        |];
    }
  in
  Alcotest.(check int) "unreachable ignored" 0 (List.length (Defuse.check m))

let test_defuse_loop_carried_ok () =
  let b = B.create "dl" in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Const (acc, 0));
        let n = B.const mb 5 in
        B.for_loop mb ~n (fun i -> B.emit mb (Ir.Binop (Ir.Add, acc, acc, i)));
        B.ret mb acc)
  in
  B.set_main b main;
  let p = B.finish b in
  Alcotest.(check int) "loop clean" 0 (List.length (Defuse.check_program p))

let test_defuse_all_workloads_clean () =
  List.iter
    (fun bm ->
      let p = Inltune_workloads.Suites.program bm in
      Alcotest.(check int)
        (bm.Inltune_workloads.Suites.bname ^ " obeys define-before-use")
        0
        (List.length (Defuse.check_program p)))
    Inltune_workloads.Suites.all

let defuse_suite =
  [
    ("defuse: clean program", `Quick, test_defuse_clean_program);
    ("defuse: read before write flagged", `Quick, test_defuse_flags_read_before_write);
    ("defuse: one-armed definition flagged", `Quick, test_defuse_one_armed_definition_flagged);
    ("defuse: both arms defined ok", `Quick, test_defuse_both_arms_ok);
    ("defuse: unreachable code ignored", `Quick, test_defuse_unreachable_not_flagged);
    ("defuse: loop-carried accumulator ok", `Quick, test_defuse_loop_carried_ok);
    ("defuse: all workloads clean", `Quick, test_defuse_all_workloads_clean);
  ]

let suite = suite @ defuse_suite

(* --- Text format --- *)

let test_text_roundtrip_tiny () =
  let p = tiny_program () in
  match Text.parse (Text.to_string p) with
  | Ok p' -> Alcotest.(check bool) "roundtrip equal" true (p = p')
  | Error e -> Alcotest.failf "parse failed at line %d: %s" e.Text.line e.Text.msg

let test_text_roundtrip_all_workloads () =
  List.iter
    (fun bm ->
      let p = Inltune_workloads.Suites.program bm in
      match Text.parse (Text.to_string p) with
      | Ok p' ->
        Alcotest.(check bool) (bm.Inltune_workloads.Suites.bname ^ " roundtrips") true (p = p')
      | Error e -> Alcotest.failf "parse failed at line %d: %s" e.Text.line e.Text.msg)
    Inltune_workloads.Suites.all

let test_text_parse_handwritten () =
  let src = {|
# a handwritten program: print 42, return 43
program hello
method main args 0 regs 3
block
  const r0 42
  print r0
  const r1 1
  add r2 r0 r1
  ret r2
main m0
|}
  in
  let p = Text.parse_exn src in
  let ret, outputs = Inltune_vm.Runner.observe Inltune_vm.Platform.x86 p in
  Alcotest.(check int) "returns 43" 43 ret;
  Alcotest.(check (array int)) "prints 42" [| 42 |] outputs

let test_text_parse_rejects_garbage () =
  let bad = "program x\nmethod main args 0 regs 1\nblock\n  frobnicate r0\n  ret r0\nmain m0\n" in
  (match Text.parse bad with
  | Error { Text.line = 4; _ } -> ()
  | Error e -> Alcotest.failf "wrong location: line %d" e.Text.line
  | Ok _ -> Alcotest.fail "garbage accepted")

let test_text_parse_rejects_unterminated_block () =
  let bad = "program x\nmethod main args 0 regs 1\nblock\n  const r0 1\nmain m0\n" in
  match Text.parse bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated block accepted"

let test_text_parse_validates () =
  (* Structurally parses but fails validation: jump out of range. *)
  let bad = "program x\nmethod main args 0 regs 1\nblock\n  const r0 1\n  jump 9\nmain m0\n" in
  match Text.parse bad with
  | Error { Text.line = 0; _ } -> ()
  | Error e -> Alcotest.failf "expected validation error, got line %d: %s" e.Text.line e.Text.msg
  | Ok _ -> Alcotest.fail "invalid program accepted"

let text_suite =
  [
    ("text roundtrip tiny", `Quick, test_text_roundtrip_tiny);
    ("text roundtrip all workloads", `Slow, test_text_roundtrip_all_workloads);
    ("text parse handwritten program", `Quick, test_text_parse_handwritten);
    ("text parse rejects garbage with location", `Quick, test_text_parse_rejects_garbage);
    ("text parse rejects unterminated block", `Quick, test_text_parse_rejects_unterminated_block);
    ("text parse validates", `Quick, test_text_parse_validates);
  ]

let suite = suite @ text_suite
