open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* Random well-formed JIR programs for property-based testing.

   Guarantees, by construction:
   - define-before-use: every register read was written on every path first
     (diamond arms write a pre-reserved join register on both sides);
   - termination: methods only call methods with a *larger* id, so the call
     graph is a DAG, and loops have constant trip counts;
   - memory safety: object registers are tracked separately from data
     registers, loads/stores only target live objects with in-range slots,
     and addresses never flow into arithmetic or prints (so optimizations
     that remove dead allocations cannot perturb observable behaviour). *)

let slots = 3

type pools = {
  mutable data : Ir.reg list;     (* defined integer registers *)
  mutable objects : Ir.reg list;  (* defined object registers *)
}

let pick_data rng pools = List.nth pools.data (Rng.int rng (List.length pools.data))

let random_binop rng =
  Rng.pick rng [| Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Mod; Ir.And; Ir.Or; Ir.Xor; Ir.Shl; Ir.Shr |]

let random_cmpop rng = Rng.pick rng [| Ir.Lt; Ir.Le; Ir.Eq; Ir.Ne; Ir.Gt; Ir.Ge |]

(* One straight-line-ish statement; may create blocks (diamond, loop). *)
let rec emit_stmt mb rng pools ~callees ~has_class ~depth =
  let data r = pools.data <- r :: pools.data in
  match Rng.int rng 13 with
  | 0 -> data (B.const mb (Rng.range rng (-100) 100))
  | 1 ->
    let a = pick_data rng pools and b = pick_data rng pools in
    data (B.binop mb (random_binop rng) a b)
  | 2 ->
    let a = pick_data rng pools and b = pick_data rng pools in
    data (B.cmp mb (random_cmpop rng) a b)
  | 3 -> data (B.move mb (pick_data rng pools))
  | 4 ->
    let o = B.alloc mb 0 ~slots in
    pools.objects <- o :: pools.objects
  | 5 when pools.objects <> [] ->
    let o = List.nth pools.objects (Rng.int rng (List.length pools.objects)) in
    if Rng.bool rng then data (B.load mb o (1 + Rng.int rng slots))
    else B.store mb o (1 + Rng.int rng slots) (pick_data rng pools)
  | 11 when pools.objects <> [] ->
    let o = List.nth pools.objects (Rng.int rng (List.length pools.objects)) in
    data (B.class_of mb o)
  | 6 when pools.objects <> [] ->
    let o = List.nth pools.objects (Rng.int rng (List.length pools.objects)) in
    let idx = B.const mb (Rng.int rng slots) in
    if Rng.bool rng then data (B.load_idx mb o idx)
    else B.store_idx mb o idx (pick_data rng pools)
  | 7 when callees <> [] ->
    let callee = List.nth callees (Rng.int rng (List.length callees)) in
    let a = pick_data rng pools and b = pick_data rng pools in
    data (B.call mb callee [ a; b ])
  | 8 when has_class && pools.objects <> [] ->
    let o = List.nth pools.objects (Rng.int rng (List.length pools.objects)) in
    data (B.call_virt mb ~slot:0 o [ pick_data rng pools ])
  | 9 -> B.print mb (pick_data rng pools)
  | 10 when depth < 2 ->
    (* Diamond with a join register written on both paths. *)
    let join = B.fresh_reg mb in
    let c = pick_data rng pools in
    let arm () =
      let saved_objects = pools.objects in
      for _ = 1 to 1 + Rng.int rng 2 do
        emit_stmt mb rng pools ~callees ~has_class ~depth:(depth + 1)
      done;
      B.emit mb (Ir.Move (join, pick_data rng pools));
      (* Registers defined inside an arm are not defined on the other path:
         roll the pools back to the pre-branch state. *)
      pools.objects <- saved_objects
    in
    let saved_data = pools.data in
    B.if_ mb c
      ~then_:(fun () ->
        arm ();
        pools.data <- saved_data)
      ~else_:(fun () ->
        arm ();
        pools.data <- saved_data);
    pools.data <- join :: saved_data
  | _ when depth < 2 ->
    (* Constant-bound loop accumulating into a pre-defined register. *)
    let acc = B.fresh_reg mb in
    B.emit mb (Ir.Const (acc, Rng.range rng 0 10));
    let n = B.const mb (1 + Rng.int rng 4) in
    let saved_data = pools.data in
    let saved_objects = pools.objects in
    B.for_loop mb ~n (fun i ->
        pools.data <- i :: pools.data;
        for _ = 1 to 1 + Rng.int rng 2 do
          emit_stmt mb rng pools ~callees ~has_class ~depth:(depth + 1)
        done;
        B.emit mb (Ir.Binop (Ir.Add, acc, acc, pick_data rng pools));
        pools.data <- saved_data;
        pools.objects <- saved_objects);
    pools.data <- acc :: saved_data
  | _ -> data (B.const mb (Rng.range rng 0 7))

let fill_body mb rng ~nargs ~callees ~has_class =
  let pools = { data = List.init nargs (fun i -> i); objects = [] } in
  (* Ensure the data pool is never empty. *)
  pools.data <- B.const mb (Rng.range rng 1 9) :: pools.data;
  let n = 4 + Rng.int rng 18 in
  for _ = 1 to n do
    emit_stmt mb rng pools ~callees ~has_class ~depth:0
  done;
  B.ret mb (pick_data rng pools)

(* Generate a program from a seed.  [max_methods] bounds the method count. *)
let program ?(max_methods = 6) seed =
  let rng = Rng.create seed in
  let b = B.create (Printf.sprintf "random_%d" seed) in
  let nmethods = 2 + Rng.int rng (max 1 (max_methods - 1)) in
  let mids = Array.init nmethods (fun i ->
      B.declare b ~name:(Printf.sprintf "m%d" i) ~nargs:(if i = 0 then 0 else 2))
  in
  (* A class whose virtual slot points at the last (leaf) method. *)
  let has_class = Rng.bool rng in
  if has_class then ignore (B.new_class b ~name:"k0" ~vtable:[| mids.(nmethods - 1) |])
  else ignore (B.new_class b ~name:"k0" ~vtable:[||]);
  for i = nmethods - 1 downto 0 do
    let callees = List.init (nmethods - 1 - i) (fun j -> mids.(i + 1 + j)) in
    (* Virtual dispatch targets the leaf, which takes 2 args (self + 1). *)
    let has_class = has_class && nmethods - 1 > i in
    B.define b mids.(i) (fun mb -> fill_body mb rng ~nargs:(if i = 0 then 0 else 2) ~callees ~has_class)
  done;
  B.set_main b mids.(0);
  B.finish b
