module Ga = Inltune_ga
module Rng = Inltune_support.Rng

let spec3 = Ga.Genome.spec [| (0, 10); (-5, 5); (1, 100) |]

(* --- Genome --- *)

let test_genome_random_in_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let g = Ga.Genome.random spec3 rng in
    Alcotest.(check bool) "valid" true (Ga.Genome.valid spec3 g)
  done

let test_genome_clamp () =
  Alcotest.(check (array int)) "clamped" [| 10; -5; 1 |]
    (Ga.Genome.clamp spec3 [| 99; -99; 0 |])

let test_genome_valid_rejects_bad () =
  Alcotest.(check bool) "wrong arity" false (Ga.Genome.valid spec3 [| 1; 2 |]);
  Alcotest.(check bool) "out of range" false (Ga.Genome.valid spec3 [| 11; 0; 1 |])

let test_genome_key_injective_on_distinct () =
  Alcotest.(check bool) "distinct keys" true
    (Ga.Genome.key [| 1; 23 |] <> Ga.Genome.key [| 12; 3 |])

let test_genome_space_size () =
  Alcotest.(check (float 1e-9)) "11*11*100" (11.0 *. 11.0 *. 100.0) (Ga.Genome.space_size spec3)

let test_genome_empty_range_rejected () =
  Alcotest.(check bool) "empty range" true
    (try ignore (Ga.Genome.spec [| (3, 2) |]); false with Invalid_argument _ -> true)

let test_paper_space_size () =
  (* Table 1's ranges give 50*20*15*4000*400 = 2.4e10; the paper quotes
     ~3e11 (presumably counting a wider encoding).  Either way the space is
     far beyond exhaustive search, which is all the claim needs. *)
  let s = Ga.Genome.space_size (Ga.Genome.spec Inltune_opt.Heuristic.ranges) in
  Alcotest.(check bool) "intractably large" true (s > 1.0e10)

(* --- Evolve --- *)

(* Sphere-like function with known optimum at (3, -2, 50). *)
let sphere g =
  let d0 = Float.of_int (g.(0) - 3) in
  let d1 = Float.of_int (g.(1) + 2) in
  let d2 = Float.of_int (g.(2) - 50) in
  (d0 *. d0) +. (d1 *. d1) +. (d2 *. d2 /. 100.0)

let run_ga ?(seed = 42) ?(gens = 30) () =
  Ga.Evolve.run ~spec:spec3
    ~params:{ Ga.Evolve.default_params with Ga.Evolve.generations = gens; seed; domains = Some 1 }
    ~fitness:sphere ()

let test_evolve_converges_on_sphere () =
  let r = run_ga () in
  Alcotest.(check bool)
    (Printf.sprintf "best fitness small (%f)" r.Ga.Evolve.best_fitness)
    true (r.Ga.Evolve.best_fitness < 2.0)

let test_evolve_deterministic () =
  let a = run_ga () and b = run_ga () in
  Alcotest.(check (array int)) "same best" a.Ga.Evolve.best b.Ga.Evolve.best;
  Alcotest.(check (float 1e-12)) "same fitness" a.Ga.Evolve.best_fitness b.Ga.Evolve.best_fitness

let test_evolve_seed_changes_search () =
  let a = run_ga ~seed:1 () and b = run_ga ~seed:2 () in
  (* Same optimum region, but the trajectories must differ. *)
  Alcotest.(check bool) "histories differ" true
    (List.map (fun p -> p.Ga.Evolve.mean_fitness) a.Ga.Evolve.history
    <> List.map (fun p -> p.Ga.Evolve.mean_fitness) b.Ga.Evolve.history)

let test_evolve_best_never_worsens () =
  let r = run_ga () in
  let rec monotone : Ga.Evolve.progress list -> unit = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone best" true
        (b.Ga.Evolve.best_fitness <= a.Ga.Evolve.best_fitness);
      monotone rest
    | _ -> ()
  in
  monotone r.Ga.Evolve.history

let test_evolve_history_length () =
  let r = run_ga ~gens:7 () in
  Alcotest.(check int) "gens + initial" 8 (List.length r.Ga.Evolve.history)

let test_evolve_best_valid () =
  let r = run_ga () in
  Alcotest.(check bool) "best in ranges" true (Ga.Genome.valid spec3 r.Ga.Evolve.best)

let test_evolve_caches () =
  let calls = ref 0 in
  let f g =
    incr calls;
    sphere g
  in
  let r =
    Ga.Evolve.run ~spec:spec3
      ~params:{ Ga.Evolve.default_params with Ga.Evolve.generations = 20; domains = Some 1 }
      ~fitness:f ()
  in
  Alcotest.(check int) "fitness called once per distinct genome" r.Ga.Evolve.evaluations !calls;
  Alcotest.(check bool) "cache used" true (r.Ga.Evolve.cache_hits > 0)

let test_evolve_parallel_matches_sequential () =
  let seq =
    Ga.Evolve.run ~spec:spec3
      ~params:{ Ga.Evolve.default_params with Ga.Evolve.generations = 10; domains = Some 1 }
      ~fitness:sphere ()
  in
  let par =
    Ga.Evolve.run ~spec:spec3
      ~params:{ Ga.Evolve.default_params with Ga.Evolve.generations = 10; domains = Some 4 }
      ~fitness:sphere ()
  in
  Alcotest.(check (array int)) "same best either way" seq.Ga.Evolve.best par.Ga.Evolve.best

let test_evolve_rejects_bad_params () =
  let bad params =
    try
      ignore (Ga.Evolve.run ~spec:spec3 ~params ~fitness:sphere ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "pop 1" true
    (bad { Ga.Evolve.default_params with Ga.Evolve.pop_size = 1 });
  Alcotest.(check bool) "all elites" true
    (bad { Ga.Evolve.default_params with Ga.Evolve.pop_size = 4; elites = 4 });
  Alcotest.(check bool) "tournament 0" true
    (bad { Ga.Evolve.default_params with Ga.Evolve.tournament = 0 })

let test_crossover_mutation_stay_in_range () =
  (* Indirect: run many generations with high mutation and check validity of
     the best (operators never escape the ranges). *)
  let r =
    Ga.Evolve.run ~spec:spec3
      ~params:
        { Ga.Evolve.default_params with Ga.Evolve.generations = 15; mutation_prob = 0.9; domains = Some 1 }
      ~fitness:sphere ()
  in
  Alcotest.(check bool) "valid under heavy mutation" true (Ga.Genome.valid spec3 r.Ga.Evolve.best)

let test_random_search_improves_over_first () =
  let first_fitness = sphere (Ga.Genome.random spec3 (Rng.create 5)) in
  let _, best = Ga.Evolve.random_search ~spec:spec3 ~budget:300 ~seed:5 ~fitness:sphere () in
  Alcotest.(check bool) "random search beats first draw" true (best <= first_fitness)

let test_ga_beats_random_search_on_budget () =
  let r = run_ga ~gens:30 () in
  let budget = r.Ga.Evolve.evaluations in
  let _, rs = Ga.Evolve.random_search ~spec:spec3 ~budget ~seed:42 ~fitness:sphere () in
  Alcotest.(check bool)
    (Printf.sprintf "GA (%.3f) <= random (%.3f) at equal budget" r.Ga.Evolve.best_fitness rs)
    true
    (r.Ga.Evolve.best_fitness <= rs)

let suite =
  [
    ("genome random in range", `Quick, test_genome_random_in_range);
    ("genome clamp", `Quick, test_genome_clamp);
    ("genome validity", `Quick, test_genome_valid_rejects_bad);
    ("genome keys distinct", `Quick, test_genome_key_injective_on_distinct);
    ("genome space size", `Quick, test_genome_space_size);
    ("genome empty range rejected", `Quick, test_genome_empty_range_rejected);
    ("paper search space ~3e11", `Quick, test_paper_space_size);
    ("evolve converges on sphere", `Quick, test_evolve_converges_on_sphere);
    ("evolve deterministic", `Quick, test_evolve_deterministic);
    ("evolve seed sensitivity", `Quick, test_evolve_seed_changes_search);
    ("evolve best-so-far monotone", `Quick, test_evolve_best_never_worsens);
    ("evolve history length", `Quick, test_evolve_history_length);
    ("evolve best stays valid", `Quick, test_evolve_best_valid);
    ("evolve memoizes fitness", `Quick, test_evolve_caches);
    ("evolve parallel = sequential", `Quick, test_evolve_parallel_matches_sequential);
    ("evolve rejects bad params", `Quick, test_evolve_rejects_bad_params);
    ("operators respect ranges", `Quick, test_crossover_mutation_stay_in_range);
    ("random search sanity", `Quick, test_random_search_improves_over_first);
    ("GA beats random search at equal budget", `Quick, test_ga_beats_random_search_on_budget);
  ]
