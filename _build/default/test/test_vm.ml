open Inltune_jir
open Inltune_vm
open Inltune_opt
module B = Builder

(* --- Icache --- *)

let test_icache_cold_miss_then_hit () =
  let c = Icache.create ~bytes:1024 ~line_bytes:64 in
  Alcotest.(check bool) "first access misses" true (Icache.access c 0x100);
  Alcotest.(check bool) "second access hits" false (Icache.access c 0x100);
  Alcotest.(check bool) "same line hits" false (Icache.access c 0x13f)

let test_icache_conflict_eviction () =
  let c = Icache.create ~bytes:1024 ~line_bytes:64 in
  (* 16 lines; addresses 0 and 1024 map to the same index. *)
  ignore (Icache.access c 0);
  Alcotest.(check bool) "conflicting line misses" true (Icache.access c 1024);
  Alcotest.(check bool) "original evicted" true (Icache.access c 0)

let test_icache_counters () =
  let c = Icache.create ~bytes:512 ~line_bytes:64 in
  for i = 0 to 9 do
    ignore (Icache.access c (i * 64))
  done;
  Alcotest.(check int) "accesses" 10 (Icache.accesses c);
  Alcotest.(check bool) "miss rate positive" true (Icache.miss_rate c > 0.0);
  Icache.reset_counters c;
  Alcotest.(check int) "reset" 0 (Icache.accesses c)

let test_icache_rejects_bad_geometry () =
  Alcotest.(check bool) "non-power-of-two rejected" true
    (try
       ignore (Icache.create ~bytes:1000 ~line_bytes:48);
       false
     with Invalid_argument _ -> true)

(* --- Codespace --- *)

let test_codespace_bump () =
  let cs = Codespace.create () in
  let a1 = Codespace.alloc cs 100 in
  let a2 = Codespace.alloc cs 50 in
  Alcotest.(check int) "disjoint" (a1 + 100) a2;
  Alcotest.(check int) "total" 150 (Codespace.allocated cs)

(* --- Profile --- *)

let test_profile_edges_and_hotness () =
  let p = Profile.create 4 in
  for _ = 1 to 90 do
    Profile.record_call p ~site_owner:0 ~callee:1
  done;
  for _ = 1 to 10 do
    Profile.record_call p ~site_owner:0 ~callee:2
  done;
  Alcotest.(check int) "edge count" 90 (Profile.edge_count p ~site_owner:0 ~callee:1);
  Alcotest.(check bool) "hot edge" true
    (Profile.hot_site p ~fraction:0.5 ~floor:1 ~site_owner:0 ~callee:1);
  Alcotest.(check bool) "cold edge" false
    (Profile.hot_site p ~fraction:0.5 ~floor:1 ~site_owner:0 ~callee:2)

let test_profile_samples () =
  let p = Profile.create 3 in
  Profile.record_sample p 1;
  Profile.record_sample p 1;
  Profile.record_sample p 2;
  Alcotest.(check int) "samples" 2 (Profile.samples p 1);
  Alcotest.(check (list int)) "hottest first" [ 1 ] [ List.hd (Profile.hottest p 1) ]

(* --- Platform --- *)

let test_platform_lookup () =
  Alcotest.(check string) "x86" "x86" Platform.x86.Platform.pname;
  Alcotest.(check string) "ppc" "ppc" (Platform.by_name "ppc").Platform.pname;
  Alcotest.(check bool) "unknown rejected" true
    (try ignore (Platform.by_name "sparc"); false with Invalid_argument _ -> true)

let test_platform_compile_costs_monotone () =
  let p = Platform.x86 in
  Alcotest.(check bool) "opt compile grows superlinearly" true
    (Platform.opt_compile_cycles p ~size_peak:2000
     > 2 * Platform.opt_compile_cycles p ~size_peak:1000);
  Alcotest.(check bool) "baseline compile cheaper" true
    (Platform.baseline_compile_cycles p ~size:1000 < Platform.opt_compile_cycles p ~size_peak:1000)

let test_platform_seconds () =
  Alcotest.(check (float 1e-12)) "1 cycle at 1Hz-scaled" (1.0 /. Platform.x86.Platform.clock_hz)
    (Platform.seconds Platform.x86 1)

(* --- Machine / Interp --- *)

let program_with_result f =
  let b = B.create "t" in
  let main = B.method_ b ~name:"main" ~nargs:0 f in
  B.set_main b main;
  B.finish b

let run_ret ?(scenario = Machine.Opt) ?(heuristic = Heuristic.default) p =
  let vm = Machine.create (Machine.config scenario heuristic) Platform.x86 p in
  (Machine.run_iteration vm).Machine.ret

let test_interp_arithmetic () =
  let p =
    program_with_result (fun mb ->
        let a = B.const mb 20 in
        let c = B.const mb 3 in
        let m = B.mul mb a c in
        let d = B.binop mb Ir.Div m c in
        let s = B.sub mb d c in
        let r = B.add mb s c in
        B.ret mb r)
  in
  Alcotest.(check int) "arithmetic" 20 (run_ret p)

let test_interp_division_by_zero_is_zero () =
  let p =
    program_with_result (fun mb ->
        let a = B.const mb 7 in
        let z = B.const mb 0 in
        let d = B.binop mb Ir.Div a z in
        let m = B.binop mb Ir.Mod a z in
        let r = B.add mb d m in
        B.ret mb r)
  in
  Alcotest.(check int) "x/0 = x mod 0 = 0" 0 (run_ret p)

let test_interp_branch_and_loop () =
  let p =
    program_with_result (fun mb ->
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Const (acc, 0));
        let n = B.const mb 10 in
        B.for_loop mb ~n (fun i -> B.emit mb (Ir.Binop (Ir.Add, acc, acc, i)));
        B.ret mb acc)
  in
  Alcotest.(check int) "sum 0..9" 45 (run_ret p)

let test_interp_heap_roundtrip () =
  let b = B.create "heap" in
  let k = B.new_class b ~name:"k" ~vtable:[||] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let o = B.alloc mb k ~slots:3 in
        let v = B.const mb 99 in
        B.store mb o 2 v;
        let r = B.load mb o 2 in
        let i = B.const mb 0 in
        B.store_idx mb o i r;
        let r2 = B.load_idx mb o i in
        B.ret mb r2)
  in
  B.set_main b main;
  Alcotest.(check int) "heap roundtrip" 99 (run_ret (B.finish b))

let test_interp_virtual_dispatch () =
  let b = B.create "virt" in
  let impl1 = B.method_ b ~name:"one" ~nargs:1 (fun mb -> B.ret mb (B.const mb 1)) in
  let impl2 = B.method_ b ~name:"two" ~nargs:1 (fun mb -> B.ret mb (B.const mb 2)) in
  let k1 = B.new_class b ~name:"k1" ~vtable:[| impl1 |] in
  let k2 = B.new_class b ~name:"k2" ~vtable:[| impl2 |] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let o1 = B.alloc mb k1 ~slots:0 in
        let o2 = B.alloc mb k2 ~slots:0 in
        let r1 = B.call_virt mb ~slot:0 o1 [] in
        let r2 = B.call_virt mb ~slot:0 o2 [] in
        let ten = B.const mb 10 in
        let t = B.mul mb r2 ten in
        let r = B.add mb r1 t in
        B.ret mb r)
  in
  B.set_main b main;
  Alcotest.(check int) "dispatch picks per-class impl" 21 (run_ret (B.finish b))

let test_interp_out_of_fuel () =
  let b = B.create "inf" in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let l = B.fresh_block mb in
        B.jump mb l;
        B.select mb l;
        ignore (B.const mb 1);
        B.jump mb l)
  in
  (* The entry block jumps into an infinite loop; give it a Ret-able shape by
     construction: loop never returns, fuel must trip. *)
  B.set_main b main;
  let p = B.finish b in
  let vm = Machine.create (Machine.config ~fuel:10_000 Machine.Opt Heuristic.default) Platform.x86 p in
  Alcotest.(check bool) "fuel exhausted" true
    (try ignore (Machine.run_iteration vm); false with Machine.Out_of_fuel -> true)

let test_interp_heap_bounds_trap () =
  let b = B.create "oob" in
  let k = B.new_class b ~name:"k" ~vtable:[||] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let o = B.alloc mb k ~slots:1 in
        let r = B.load mb o 5000 in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  let vm = Machine.create (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
  Alcotest.(check bool) "trap raised" true
    (try ignore (Machine.run_iteration vm); false with Machine.Trap _ -> true)

let test_interp_stack_overflow_trap () =
  let b = B.create "deep" in
  let f = B.declare b ~name:"f" ~nargs:1 in
  B.define b f (fun mb ->
      let one = B.const mb 1 in
      let x = B.add mb 0 one in
      let r = B.call mb f [ x ] in
      B.ret mb r);
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let z = B.const mb 0 in
        let r = B.call mb f [ z ] in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  (* Use the never heuristic so the recursion is not unrolled at compile
     time; execution must hit the simulated stack limit. *)
  let vm = Machine.create (Machine.config Machine.Opt Heuristic.never) Platform.x86 p in
  Alcotest.(check bool) "stack trap" true
    (try ignore (Machine.run_iteration vm); false with Machine.Trap _ -> true)

let test_opt_scenario_compiles_reachable_only () =
  let b = B.create "lazy" in
  let _unused = B.method_ b ~name:"unused" ~nargs:0 (fun mb -> B.ret mb (B.const mb 0)) in
  let main = B.method_ b ~name:"main" ~nargs:0 (fun mb -> B.ret mb (B.const mb 7)) in
  B.set_main b main;
  let p = B.finish b in
  let vm = Machine.create (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
  ignore (Machine.run_iteration vm);
  Alcotest.(check int) "only main compiled" 1 (Machine.opt_compiles vm);
  Alcotest.(check bool) "unused never compiled" true (Machine.compiled_method vm _unused = None)

let test_adapt_starts_baseline () =
  let bm = Inltune_workloads.Suites.find "compress" in
  let p = Inltune_workloads.Suites.program bm in
  let vm = Machine.create (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
  ignore (Machine.run_iteration vm);
  Alcotest.(check bool) "baseline compiles happened" true (Machine.baseline_compiles vm > 0);
  Alcotest.(check bool) "hot methods promoted" true (Machine.opt_compiles vm > 0);
  Alcotest.(check bool) "fewer promotions than baselines" true
    (Machine.opt_compiles vm < Machine.baseline_compiles vm)

let test_adapt_promotion_improves_later_iterations () =
  let bm = Inltune_workloads.Suites.find "compress" in
  let p = Inltune_workloads.Suites.program bm in
  let vm = Machine.create (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
  let it1 = Machine.run_iteration vm in
  let _it2 = Machine.run_iteration vm in
  let it3 = Machine.run_iteration vm in
  Alcotest.(check bool) "warmed run faster" true
    (it3.Machine.it_exec_cycles < it1.Machine.it_exec_cycles)

let test_iterations_deterministic_outputs () =
  let bm = Inltune_workloads.Suites.find "db" in
  let p = Inltune_workloads.Suites.program bm in
  let vm = Machine.create (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
  let it1 = Machine.run_iteration vm in
  let it2 = Machine.run_iteration vm in
  Alcotest.(check int) "same result" it1.Machine.ret it2.Machine.ret;
  Alcotest.(check int) "same output hash" it1.Machine.it_out_hash it2.Machine.it_out_hash

let test_vm_runs_deterministic () =
  let bm = Inltune_workloads.Suites.find "raytrace" in
  let p = Inltune_workloads.Suites.program bm in
  let go () =
    let vm = Machine.create (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
    let it = Machine.run_iteration vm in
    (it.Machine.ret, it.Machine.it_exec_cycles, vm.Machine.compile_cycles)
  in
  Alcotest.(check bool) "two fresh VMs agree exactly" true (go () = go ())

(* --- Runner --- *)

let test_runner_total_includes_compile () =
  let bm = Inltune_workloads.Suites.find "compress" in
  let p = Inltune_workloads.Suites.program bm in
  let m = Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
  Alcotest.(check int) "total = exec + compile"
    (m.Runner.first_exec_cycles + m.Runner.first_compile_cycles)
    m.Runner.total_cycles;
  Alcotest.(check bool) "running < total" true (m.Runner.running_cycles < m.Runner.total_cycles)

let test_runner_rejects_single_iteration () =
  let bm = Inltune_workloads.Suites.find "compress" in
  let p = Inltune_workloads.Suites.program bm in
  Alcotest.(check bool) "needs >= 2 iterations" true
    (try
       ignore (Runner.measure ~iterations:1 (Machine.config Machine.Opt Heuristic.default) Platform.x86 p);
       false
     with Invalid_argument _ -> true)

let test_icache_disabled_is_faster () =
  let bm = Inltune_workloads.Suites.find "jess" in
  let p = Inltune_workloads.Suites.program bm in
  let with_cache =
    Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p
  in
  let without =
    Runner.measure (Machine.config ~icache_enabled:false Machine.Opt Heuristic.default) Platform.x86 p
  in
  Alcotest.(check bool) "icache adds cost" true
    (without.Runner.running_cycles < with_cache.Runner.running_cycles)

let test_observe_matches_checksum () =
  let bm = Inltune_workloads.Suites.find "compress" in
  let p = Inltune_workloads.Suites.program bm in
  let ret, outputs = Runner.observe Platform.x86 p in
  Alcotest.(check bool) "one output (the checksum)" true (Array.length outputs = 1);
  Alcotest.(check int) "checksum printed" ret outputs.(0)

let suite =
  [
    ("icache cold miss then hit", `Quick, test_icache_cold_miss_then_hit);
    ("icache conflict eviction", `Quick, test_icache_conflict_eviction);
    ("icache counters", `Quick, test_icache_counters);
    ("icache rejects bad geometry", `Quick, test_icache_rejects_bad_geometry);
    ("codespace bump allocation", `Quick, test_codespace_bump);
    ("profile edges and hotness", `Quick, test_profile_edges_and_hotness);
    ("profile samples", `Quick, test_profile_samples);
    ("platform lookup", `Quick, test_platform_lookup);
    ("platform compile costs monotone", `Quick, test_platform_compile_costs_monotone);
    ("platform seconds", `Quick, test_platform_seconds);
    ("interp arithmetic", `Quick, test_interp_arithmetic);
    ("interp division by zero", `Quick, test_interp_division_by_zero_is_zero);
    ("interp branch and loop", `Quick, test_interp_branch_and_loop);
    ("interp heap roundtrip", `Quick, test_interp_heap_roundtrip);
    ("interp virtual dispatch", `Quick, test_interp_virtual_dispatch);
    ("interp out of fuel", `Quick, test_interp_out_of_fuel);
    ("interp heap bounds trap", `Quick, test_interp_heap_bounds_trap);
    ("interp stack overflow trap", `Quick, test_interp_stack_overflow_trap);
    ("opt scenario compiles lazily", `Quick, test_opt_scenario_compiles_reachable_only);
    ("adapt starts baseline, promotes hot", `Quick, test_adapt_starts_baseline);
    ("adapt warms up across iterations", `Quick, test_adapt_promotion_improves_later_iterations);
    ("iterations produce identical outputs", `Quick, test_iterations_deterministic_outputs);
    ("fresh VMs deterministic", `Quick, test_vm_runs_deterministic);
    ("runner total = exec + compile", `Quick, test_runner_total_includes_compile);
    ("runner rejects 1 iteration", `Quick, test_runner_rejects_single_iteration);
    ("icache ablation is faster without cache", `Quick, test_icache_disabled_is_faster);
    ("observe returns the checksum", `Quick, test_observe_matches_checksum);
  ]

(* --- Ladder scenario (multi-level recompilation extension) --- *)

let test_ladder_promotes_through_levels () =
  let bm = Inltune_workloads.Suites.find "compress" in
  let p = Inltune_workloads.Suites.program bm in
  let vm = Machine.create (Machine.config Machine.Ladder Heuristic.default) Platform.x86 p in
  for _ = 1 to 3 do
    ignore (Machine.run_iteration vm)
  done;
  Alcotest.(check bool) "baseline compiles" true (Machine.baseline_compiles vm > 0);
  Alcotest.(check bool) "O1 promotions happened" true (Machine.o1_compiles vm > 0);
  Alcotest.(check bool) "O2 promotions happened" true (Machine.opt_compiles vm > 0)

let test_ladder_semantics_match_adapt () =
  List.iter
    (fun name ->
      let p = Inltune_workloads.Suites.program (Inltune_workloads.Suites.find name) in
      let run scenario =
        let vm = Machine.create (Machine.config scenario Heuristic.default) Platform.x86 p in
        let it = Machine.run_iteration vm in
        (it.Machine.ret, it.Machine.it_out_hash)
      in
      Alcotest.(check (pair int int)) (name ^ ": ladder = adapt result") (run Machine.Adapt)
        (run Machine.Ladder))
    [ "compress"; "jess"; "ipsixql" ]

let test_o1_quality_between_tiers () =
  let plat = Platform.x86 in
  Alcotest.(check bool) "baseline > o1 > opt" true
    (plat.Platform.baseline_quality > plat.Platform.o1_quality && plat.Platform.o1_quality > 1)

let test_o1_compile_cheaper_than_opt () =
  let plat = Platform.x86 in
  Alcotest.(check bool) "o1 compile cheaper" true
    (Platform.o1_compile_cycles plat ~size:500 < Platform.opt_compile_cycles plat ~size_peak:500)

let ladder_suite =
  [
    ("ladder promotes through levels", `Quick, test_ladder_promotes_through_levels);
    ("ladder preserves semantics", `Quick, test_ladder_semantics_match_adapt);
    ("o1 quality between tiers", `Quick, test_o1_quality_between_tiers);
    ("o1 compile cheaper than opt", `Quick, test_o1_compile_cheaper_than_opt);
  ]

let suite = suite @ ladder_suite

(* --- Regalloc (spill cost model) --- *)

let test_regalloc_small_method_no_spills () =
  let p = program_with_result (fun mb ->
      let a = B.const mb 1 in
      let c = B.const mb 2 in
      let r = B.add mb a c in
      B.ret mb r)
  in
  let ra = Regalloc.run ~phys_regs:8 p.Ir.methods.(p.Ir.main) in
  Alcotest.(check int) "no spills" 0 ra.Regalloc.spilled;
  Alcotest.(check bool) "pressure positive" true (ra.Regalloc.max_pressure >= 1)

let test_regalloc_pressure_forces_spills () =
  (* 20 long-lived values (all defined first, all used at the end) on an
     8-register machine must spill. *)
  let b = B.create "spill" in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let vals = List.init 20 (fun i -> B.const mb i) in
        let acc =
          List.fold_left (fun acc v -> B.add mb acc v) (List.hd vals) (List.tl vals)
        in
        B.ret mb acc)
  in
  B.set_main b main;
  let p = B.finish b in
  let ra = Regalloc.run ~phys_regs:8 p.Ir.methods.(main) in
  Alcotest.(check bool)
    (Printf.sprintf "spills on 8 regs (%d)" ra.Regalloc.spilled)
    true (ra.Regalloc.spilled > 0);
  let ra24 = Regalloc.run ~phys_regs:24 p.Ir.methods.(main) in
  Alcotest.(check bool) "fewer spills with more registers" true
    (ra24.Regalloc.spilled < ra.Regalloc.spilled)

let test_regalloc_inlining_increases_pressure () =
  let bm = Inltune_workloads.Suites.find "jess" in
  let p = Inltune_workloads.Suites.program bm in
  let hot = Array.to_list p.Ir.methods |> List.find (fun m -> m.Ir.mname = "rule_match0") in
  let inlined, _ = Inline.run ~program:p ~heuristic:Heuristic.default hot in
  let before = Regalloc.run ~phys_regs:8 hot in
  let after = Regalloc.run ~phys_regs:8 inlined in
  Alcotest.(check bool) "pressure grows under inlining" true
    (after.Regalloc.max_pressure >= before.Regalloc.max_pressure);
  Alcotest.(check bool) "more vregs" true (after.Regalloc.vregs > before.Regalloc.vregs)

let test_regalloc_rejects_tiny_register_file () =
  Alcotest.(check bool) "phys_regs < 2 rejected" true
    (try
       let p = program_with_result (fun mb -> B.ret mb (B.const mb 1)) in
       ignore (Regalloc.run ~phys_regs:1 p.Ir.methods.(p.Ir.main));
       false
     with Invalid_argument _ -> true)

let test_spill_cost_zero_without_spills () =
  let p = program_with_result (fun mb -> B.ret mb (B.const mb 1)) in
  let m = p.Ir.methods.(p.Ir.main) in
  let ra = Regalloc.run ~phys_regs:8 m in
  Alcotest.(check int) "no surcharge" 0 (Regalloc.block_spill_cost Platform.x86 m ra)

let regalloc_suite =
  [
    ("regalloc: small method fits", `Quick, test_regalloc_small_method_no_spills);
    ("regalloc: pressure forces spills", `Quick, test_regalloc_pressure_forces_spills);
    ("regalloc: inlining increases pressure", `Quick, test_regalloc_inlining_increases_pressure);
    ("regalloc: tiny register file rejected", `Quick, test_regalloc_rejects_tiny_register_file);
    ("regalloc: zero surcharge without spills", `Quick, test_spill_cost_zero_without_spills);
  ]

let suite = suite @ regalloc_suite
