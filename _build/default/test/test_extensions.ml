open Inltune_jir
open Inltune_vm
open Inltune_opt
open Inltune_core
module W = Inltune_workloads
module Ga = Inltune_ga

(* Tests for the related-work extensions: the custom (per-site) inliner
   policy, the knapsack oracle baseline, and the local-search tuners. *)

(* --- custom inliner policy --- *)

let small_program () =
  let b = Builder.create "custom" in
  let f =
    Builder.method_ b ~name:"f" ~nargs:1 (fun mb ->
        let one = Builder.const mb 1 in
        let r = Builder.add mb 0 one in
        Builder.ret mb r)
  in
  let g =
    Builder.method_ b ~name:"g" ~nargs:1 (fun mb ->
        let two = Builder.const mb 2 in
        let r = Builder.mul mb 0 two in
        Builder.ret mb r)
  in
  let main =
    Builder.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let x = Builder.const mb 5 in
        let a = Builder.call mb f [ x ] in
        let c = Builder.call mb g [ a ] in
        Builder.print mb c;
        Builder.ret mb c)
  in
  Builder.set_main b main;
  (Builder.finish b, f, g, main)

let count_calls m =
  Array.fold_left
    (fun acc blk ->
      Array.fold_left
        (fun acc i -> match i with Ir.Call _ | Ir.CallVirt _ -> acc + 1 | _ -> acc)
        acc blk.Ir.instrs)
    0 m.Ir.blocks

let test_custom_inlines_selected_site_only () =
  let p, f, _g, main = small_program () in
  let decide ~site_owner:_ ~callee ~callee_size:_ ~inline_depth:_ ~caller_size:_ =
    callee = f
  in
  let m, stats = Inline.run_custom ~decide ~program:p p.Ir.methods.(main) in
  Alcotest.(check int) "one site inlined" 1 stats.Inline.sites_inlined;
  Alcotest.(check int) "one call left (g)" 1 (count_calls m)

let test_custom_preserves_semantics () =
  let p, f, _, _ = small_program () in
  let reference = Runner.observe Platform.x86 p in
  let decide ~site_owner:_ ~callee ~callee_size:_ ~inline_depth ~caller_size:_ =
    callee = f && inline_depth = 1
  in
  let cfg = Machine.config ~custom_inliner:decide Machine.Opt Heuristic.never in
  let vm = Machine.create cfg Platform.x86 p in
  let it = Machine.run_iteration vm in
  Alcotest.(check int) "same result" (fst reference) it.Machine.ret

let test_pipeline_custom_config () =
  let p, _, _, main = small_program () in
  let cfg = Pipeline.custom_config (fun ~site_owner:_ ~callee:_ ~callee_size:_ ~inline_depth:_ ~caller_size:_ -> true) in
  let m, stats = Pipeline.run p cfg p.Ir.methods.(main) in
  Alcotest.(check int) "all sites inlined" 2 stats.Pipeline.sites_inlined;
  Alcotest.(check int) "no calls left" 0 (count_calls m)

(* --- knapsack --- *)

let test_knapsack_plan_respects_budget () =
  let bm = W.Suites.find "compress" in
  let p = W.Suites.program bm in
  let plan = Knapsack.build_plan ~expansion_limit:0.1 Platform.x86 p in
  Alcotest.(check bool) "budget positive" true (plan.Knapsack.budget > 0);
  Alcotest.(check bool) "spent within budget" true (plan.Knapsack.spent <= plan.Knapsack.budget);
  Alcotest.(check bool) "selected something" true (plan.Knapsack.chosen > 0);
  Alcotest.(check bool) "chosen <= candidates" true
    (plan.Knapsack.chosen <= plan.Knapsack.candidates)

let test_knapsack_zero_budget_selects_nothing () =
  let bm = W.Suites.find "compress" in
  let p = W.Suites.program bm in
  let plan = Knapsack.build_plan ~expansion_limit:0.0 Platform.x86 p in
  Alcotest.(check int) "nothing chosen" 0 plan.Knapsack.chosen

let test_knapsack_monotone_in_budget () =
  let bm = W.Suites.find "db" in
  let p = W.Suites.program bm in
  let small = Knapsack.build_plan ~expansion_limit:0.02 Platform.x86 p in
  let large = Knapsack.build_plan ~expansion_limit:0.20 Platform.x86 p in
  Alcotest.(check bool) "more budget, at least as many edges" true
    (large.Knapsack.chosen >= small.Knapsack.chosen)

let test_knapsack_preserves_semantics_and_improves () =
  let bm = W.Suites.find "raytrace" in
  let p = W.Suites.program bm in
  let reference = Runner.observe Platform.x86 p in
  let _, kn = Knapsack.measure Platform.x86 bm in
  Alcotest.(check int) "same checksum" (fst reference) kn.Measure.raw.Runner.ret;
  let off = Measure.run_no_inlining ~scenario:Machine.Opt ~platform:Platform.x86 bm in
  Alcotest.(check bool) "oracle beats no inlining on running time" true
    (kn.Measure.running < off.Measure.running)

let test_knapsack_decision_depth_one_only () =
  let bm = W.Suites.find "compress" in
  let p = W.Suites.program bm in
  let plan = Knapsack.build_plan Platform.x86 p in
  (* Whatever is selected, nothing is inlined past depth 1. *)
  let any_owner = p.Ir.main in
  Alcotest.(check bool) "depth 2 always refused" true
    (Array.for_all
       (fun (m : Ir.methd) ->
         not
           (Knapsack.decision plan ~site_owner:any_owner ~callee:m.Ir.mid ~callee_size:1
              ~inline_depth:2 ~caller_size:1))
       p.Ir.methods)

(* --- local search --- *)

let spec3 = Ga.Genome.spec [| (0, 20); (0, 20); (0, 20) |]

let sphere g =
  Array.fold_left (fun acc v -> acc +. (Float.of_int ((v - 7) * (v - 7)))) 0.0 g

let test_hill_climb_converges () =
  let r = Ga.Localsearch.hill_climb ~spec:spec3 ~budget:600 ~seed:1 ~fitness:sphere () in
  Alcotest.(check bool)
    (Printf.sprintf "near optimum (%.1f)" r.Ga.Localsearch.best_fitness)
    true
    (r.Ga.Localsearch.best_fitness <= 4.0)

let test_anneal_converges () =
  let r = Ga.Localsearch.anneal ~spec:spec3 ~budget:800 ~seed:1 ~fitness:sphere () in
  Alcotest.(check bool)
    (Printf.sprintf "near optimum (%.1f)" r.Ga.Localsearch.best_fitness)
    true
    (r.Ga.Localsearch.best_fitness <= 6.0)

let test_local_search_budget_respected () =
  let count = ref 0 in
  let f g =
    incr count;
    sphere g
  in
  let _ = Ga.Localsearch.hill_climb ~spec:spec3 ~budget:100 ~seed:2 ~fitness:f () in
  Alcotest.(check bool) "hc stops at budget" true (!count <= 101);
  count := 0;
  let _ = Ga.Localsearch.anneal ~spec:spec3 ~budget:100 ~seed:2 ~fitness:f () in
  Alcotest.(check bool) "sa stops at budget" true (!count <= 101)

let test_local_search_deterministic () =
  let a = Ga.Localsearch.hill_climb ~spec:spec3 ~budget:200 ~seed:9 ~fitness:sphere () in
  let b = Ga.Localsearch.hill_climb ~spec:spec3 ~budget:200 ~seed:9 ~fitness:sphere () in
  Alcotest.(check (array int)) "same best" a.Ga.Localsearch.best b.Ga.Localsearch.best

let test_local_search_stays_in_ranges () =
  List.iter
    (fun seed ->
      let r = Ga.Localsearch.anneal ~spec:spec3 ~budget:300 ~seed ~fitness:sphere () in
      Alcotest.(check bool) "valid" true (Ga.Genome.valid spec3 r.Ga.Localsearch.best))
    [ 1; 2; 3; 4; 5 ]

let test_local_search_rejects_bad_args () =
  Alcotest.(check bool) "budget 0" true
    (try
       ignore (Ga.Localsearch.hill_climb ~spec:spec3 ~budget:0 ~seed:1 ~fitness:sphere ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cooling 1.5" true
    (try
       ignore (Ga.Localsearch.anneal ~cooling:1.5 ~spec:spec3 ~budget:10 ~seed:1 ~fitness:sphere ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("custom policy inlines selected sites only", `Quick, test_custom_inlines_selected_site_only);
    ("custom policy preserves semantics", `Quick, test_custom_preserves_semantics);
    ("pipeline custom config", `Quick, test_pipeline_custom_config);
    ("knapsack plan respects budget", `Quick, test_knapsack_plan_respects_budget);
    ("knapsack zero budget", `Quick, test_knapsack_zero_budget_selects_nothing);
    ("knapsack monotone in budget", `Quick, test_knapsack_monotone_in_budget);
    ("knapsack preserves semantics and improves", `Slow, test_knapsack_preserves_semantics_and_improves);
    ("knapsack decisions are depth-1 only", `Quick, test_knapsack_decision_depth_one_only);
    ("hill climbing converges", `Quick, test_hill_climb_converges);
    ("annealing converges", `Quick, test_anneal_converges);
    ("local search respects budget", `Quick, test_local_search_budget_respected);
    ("local search deterministic", `Quick, test_local_search_deterministic);
    ("local search stays in ranges", `Quick, test_local_search_stays_in_ranges);
    ("local search rejects bad args", `Quick, test_local_search_rejects_bad_args);
  ]
