(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation benches called out in DESIGN.md, and
   finishes with Bechamel micro-benchmarks of the core primitives.

       dune exec bench/main.exe                 # everything
       dune exec bench/main.exe fig5            # one experiment
       dune exec bench/main.exe ablations       # just the ablations
       dune exec bench/main.exe policy          # GA-vs-learned policy comparison
       dune exec bench/main.exe gp              # GP structure search -> BENCH_gp.json
       dune exec bench/main.exe tuner           # fitness-cache off/on protocol
       dune exec bench/main.exe passes          # plan-interpreter identity + plan GA
       dune exec bench/main.exe inliners        # strategy plans vs default -> BENCH_inliners.json
       dune exec bench/main.exe vm              # VM throughput trajectory -> BENCH_vm.json
       dune exec bench/main.exe serve           # daemon under load -> BENCH_serve.json
       dune exec bench/main.exe micro           # just the micro-benchmarks

   Environment knobs (for bigger GA budgets):
       INLTUNE_POP (default 16), INLTUNE_GENS (default 12),
       INLTUNE_SEED (default 42); for the vm bench,
       INLTUNE_VM_REPEATS (default 3), INLTUNE_VM_ITERS (default 3). *)

open Inltune_core
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads
module Table = Inltune_support.Table
module Stats = Inltune_support.Stats

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let budget () =
  {
    Tuner.pop = env_int "INLTUNE_POP" 16;
    gens = env_int "INLTUNE_GENS" 12;
    seed = env_int "INLTUNE_SEED" 42;
  }

(* ---- Ablation benches (DESIGN.md section 5) ----------------------------- *)

(* Ablation 1: the hot-call-site heuristic path (Fig. 4).  Disabling it under
   Adapt forces the static Fig. 3 tests everywhere. *)
let ablation_hot_path () =
  let t =
    Table.create ~title:"Ablation: Adapt without the hot-call-site heuristic (Fig. 4 path)"
      ~header:[| "benchmark"; "total (hot on)"; "total (hot off)"; "hot-off / hot-on" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
  in
  let ratios =
    List.map
      (fun bm ->
        let p = W.Suites.program bm in
        let on = Runner.measure (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
        let off =
          Runner.measure
            (Machine.config ~hot_path_enabled:false Machine.Adapt Heuristic.default)
            Platform.x86 p
        in
        let r = Float.of_int off.Runner.total_cycles /. Float.of_int on.Runner.total_cycles in
        Table.add_row t
          [|
            bm.W.Suites.bname;
            string_of_int on.Runner.total_cycles;
            string_of_int off.Runner.total_cycles;
            Table.fmt_float r;
          |];
        r)
      W.Suites.spec
  in
  Table.add_rule t;
  Table.add_row t
    [| "geomean"; ""; ""; Table.fmt_float (Stats.geomean (Array.of_list ratios)) |];
  Table.print t;
  print_newline ()

(* Ablation 2: inlining's indirect benefit — run the pipeline with the
   dataflow passes disabled so inlining only removes call overhead. *)
let ablation_optimizations () =
  let t =
    Table.create ~title:"Ablation: inlining without post-inline optimization (Opt scenario)"
      ~header:[| "benchmark"; "running (opt on)"; "running (opt off)"; "off / on" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
  in
  let ratios =
    List.map
      (fun bm ->
        let p = W.Suites.program bm in
        let on = Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
        let off =
          Runner.measure (Machine.config ~optimize:false Machine.Opt Heuristic.default)
            Platform.x86 p
        in
        let r = Float.of_int off.Runner.running_cycles /. Float.of_int on.Runner.running_cycles in
        Table.add_row t
          [|
            bm.W.Suites.bname;
            string_of_int on.Runner.running_cycles;
            string_of_int off.Runner.running_cycles;
            Table.fmt_float r;
          |];
        r)
      W.Suites.spec
  in
  Table.add_rule t;
  Table.add_row t
    [| "geomean"; ""; ""; Table.fmt_float (Stats.geomean (Array.of_list ratios)) |];
  Table.print t;
  print_newline ()

(* Ablation 3: the I-cache model — without it, deeper inlining is
   monotonically better and the Fig. 2 curves lose their knee. *)
let ablation_icache () =
  let t =
    Table.create ~title:"Ablation: jess total time vs depth, with and without the I-cache model"
      ~header:[| "depth"; "icache on (cycles)"; "icache off (cycles)" |]
      ~aligns:[| Table.Right; Table.Right; Table.Right |]
  in
  let p = W.Suites.program (W.Suites.find "jess") in
  List.iter
    (fun d ->
      let h = Heuristic.with_depth Heuristic.default d in
      let on = Runner.measure (Machine.config Machine.Opt h) Platform.x86 p in
      let off =
        Runner.measure (Machine.config ~icache_enabled:false Machine.Opt h) Platform.x86 p
      in
      Table.add_row t
        [|
          string_of_int d;
          string_of_int on.Runner.total_cycles;
          string_of_int off.Runner.total_cycles;
        |])
    [ 0; 1; 2; 4; 6; 8; 10 ];
  Table.print t;
  print_newline ()

(* Ablation 4: GA vs random search at the same evaluation budget. *)
let ablation_ga_vs_random () =
  let suite = [ W.Suites.find "compress"; W.Suites.find "raytrace" ] in
  let fitness =
    Objective.genome_fitness ~suite ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Total
  in
  let params =
    {
      Inltune_ga.Evolve.default_params with
      Inltune_ga.Evolve.pop_size = 10;
      generations = 6;
      seed = 42;
    }
  in
  let ga = Inltune_ga.Evolve.run ~spec:Params.genome_spec ~params ~fitness () in
  let _, random_best =
    Inltune_ga.Evolve.random_search ~spec:Params.genome_spec
      ~budget:ga.Inltune_ga.Evolve.evaluations ~seed:42 ~fitness ()
  in
  let t =
    Table.create ~title:"Ablation: GA vs random search (same evaluation budget)"
      ~header:[| "searcher"; "evaluations"; "best fitness (lower = better)" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right |]
  in
  Table.add_row t
    [|
      "genetic algorithm";
      string_of_int ga.Inltune_ga.Evolve.evaluations;
      Table.fmt_float ~digits:4 ga.Inltune_ga.Evolve.best_fitness;
    |];
  Table.add_row t
    [|
      "random search";
      string_of_int ga.Inltune_ga.Evolve.evaluations;
      Table.fmt_float ~digits:4 random_best;
    |];
  Table.print t;
  print_newline ()

(* Ablation 5: guarded devirtualization under Adapt — monomorphic virtual
   sites become guarded, inlinable static calls. *)
let ablation_guarded_devirt () =
  let t =
    Table.create ~title:"Ablation: Adapt with and without guarded devirtualization"
      ~header:[| "benchmark"; "running (on)"; "running (off)"; "off / on" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
  in
  List.iter
    (fun name ->
      let p = W.Suites.program (W.Suites.find name) in
      let on = Runner.measure (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
      let off =
        Runner.measure
          (Machine.config ~guarded_devirt_enabled:false Machine.Adapt Heuristic.default)
          Platform.x86 p
      in
      Table.add_row t
        [|
          name;
          string_of_int on.Runner.running_cycles;
          string_of_int off.Runner.running_cycles;
          Table.fmt_float
            (Float.of_int off.Runner.running_cycles /. Float.of_int on.Runner.running_cycles);
        |])
    [ "ipsixql"; "pseudojbb"; "jess"; "pmd" ];
  Table.print t;
  print_newline ()

let ablations () =
  print_endline "==== Ablation benches (DESIGN.md section 5) ====\n";
  ablation_hot_path ();
  ablation_optimizations ();
  ablation_icache ();
  ablation_guarded_devirt ();
  ablation_ga_vs_random ()

(* ---- Extensions: related-work baselines --------------------------------- *)

(* The knapsack oracle of Arnold et al. (paper Related Work [3]): full-run
   profile knowledge, greedy edge selection under a 10% code-growth budget.
   Compare running time against no inlining and the default heuristic. *)
let knapsack_baseline () =
  let t =
    Table.create
      ~title:
        "Knapsack oracle (Arnold et al. [3], 10% growth budget) vs heuristics — running time, Opt x86"
      ~header:
        [| "benchmark"; "no-inline"; "default"; "knapsack"; "knapsack vs no-inline"; "edges" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
  in
  let ratios =
    List.map
      (fun bm ->
        let p = W.Suites.program bm in
        let off =
          Runner.measure (Machine.config ~inline_enabled:false Machine.Opt Heuristic.never)
            Platform.x86 p
        in
        let def = Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
        let plan, kn = Knapsack.measure Platform.x86 bm in
        let r = kn.Measure.running /. Float.of_int off.Runner.running_cycles in
        Table.add_row t
          [|
            bm.W.Suites.bname;
            string_of_int off.Runner.running_cycles;
            string_of_int def.Runner.running_cycles;
            Printf.sprintf "%.0f" kn.Measure.running;
            Table.fmt_float r;
            Printf.sprintf "%d/%d" plan.Knapsack.chosen plan.Knapsack.candidates;
          |];
        r)
      W.Suites.spec
  in
  Table.add_rule t;
  Table.add_row t
    [| "geomean"; ""; ""; ""; Table.fmt_float (Stats.geomean (Array.of_list ratios)); "" |];
  Table.print t;
  print_newline ()

(* Search-algorithm shootout on the real tuning objective: GA vs hill
   climbing vs simulated annealing vs random search, equal budgets. *)
let search_comparison () =
  let suite = [ W.Suites.find "compress"; W.Suites.find "raytrace"; W.Suites.find "db" ] in
  let fitness =
    Objective.genome_fitness ~suite ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Total
  in
  let params =
    {
      Inltune_ga.Evolve.default_params with
      Inltune_ga.Evolve.pop_size = 10;
      generations = 8;
      seed = 42;
    }
  in
  let ga = Inltune_ga.Evolve.run ~spec:Params.genome_spec ~params ~fitness () in
  let budget = ga.Inltune_ga.Evolve.evaluations in
  let hc =
    Inltune_ga.Localsearch.hill_climb ~spec:Params.genome_spec ~budget ~seed:42 ~fitness ()
  in
  let sa = Inltune_ga.Localsearch.anneal ~spec:Params.genome_spec ~budget ~seed:42 ~fitness () in
  let _, rs =
    Inltune_ga.Evolve.random_search ~spec:Params.genome_spec ~budget ~seed:42 ~fitness ()
  in
  let t =
    Table.create ~title:"Search algorithms on the tuning objective (equal budgets)"
      ~header:[| "searcher"; "evaluations"; "best fitness"; "best heuristic" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Left |]
  in
  Table.add_row t
    [|
      "genetic algorithm"; string_of_int budget;
      Table.fmt_float ~digits:4 ga.Inltune_ga.Evolve.best_fitness;
      Heuristic.to_string (Heuristic.of_array ga.Inltune_ga.Evolve.best);
    |];
  Table.add_row t
    [|
      "hill climbing"; string_of_int hc.Inltune_ga.Localsearch.evaluations;
      Table.fmt_float ~digits:4 hc.Inltune_ga.Localsearch.best_fitness;
      Heuristic.to_string (Heuristic.of_array hc.Inltune_ga.Localsearch.best);
    |];
  Table.add_row t
    [|
      "simulated annealing"; string_of_int sa.Inltune_ga.Localsearch.evaluations;
      Table.fmt_float ~digits:4 sa.Inltune_ga.Localsearch.best_fitness;
      Heuristic.to_string (Heuristic.of_array sa.Inltune_ga.Localsearch.best);
    |];
  Table.add_row t
    [| "random search"; string_of_int budget; Table.fmt_float ~digits:4 rs; "" |];
  Table.print t;
  print_newline ()

(* The multi-level recompilation ladder (baseline -> O1 -> O2), an extension
   mirroring Jikes RVM's real optimization levels: compare against the
   paper's two-level Adapt on both time metrics. *)
let ladder_comparison () =
  let t =
    Table.create ~title:"Extension: two-level Adapt vs three-level Ladder (default heuristic, x86)"
      ~header:
        [| "benchmark"; "total adapt"; "total ladder"; "ladder/adapt"; "run adapt"; "run ladder" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
  in
  let ratios =
    List.map
      (fun bm ->
        let p = W.Suites.program bm in
        let a = Runner.measure (Machine.config Machine.Adapt Heuristic.default) Platform.x86 p in
        let l = Runner.measure (Machine.config Machine.Ladder Heuristic.default) Platform.x86 p in
        let r = Float.of_int l.Runner.total_cycles /. Float.of_int a.Runner.total_cycles in
        Table.add_row t
          [|
            bm.W.Suites.bname;
            string_of_int a.Runner.total_cycles;
            string_of_int l.Runner.total_cycles;
            Table.fmt_float r;
            string_of_int a.Runner.running_cycles;
            string_of_int l.Runner.running_cycles;
          |];
        r)
      W.Suites.all
  in
  Table.add_rule t;
  Table.add_row t
    [| "geomean"; ""; ""; Table.fmt_float (Stats.geomean (Array.of_list ratios)); ""; "" |];
  Table.print t;
  print_newline ()

(* Input-size crossover: the paper's motivation section argues Opt suits
   long-running programs and Adapt short ones.  Sweep the input scale: the
   winner flips per program as the running phase grows relative to the fixed
   compile work. *)
let scaling_crossover () =
  let t =
    Table.create
      ~title:"Extension: Opt vs Adapt total time across input scales (winner per program)"
      ~header:[| "scale (%)"; "compress Opt"; "compress Adapt"; "compress"; "jess Opt"; "jess Adapt"; "jess" |]
      ~aligns:
        [| Table.Right; Table.Right; Table.Right; Table.Left; Table.Right; Table.Right; Table.Left |]
  in
  List.iter
    (fun scale ->
      let total name scenario =
        let p = W.Suites.program_scaled (W.Suites.find name) ~scale in
        (Runner.measure (Machine.config scenario Heuristic.default) Platform.x86 p)
          .Runner.total_cycles
      in
      let co = total "compress" Machine.Opt and ca = total "compress" Machine.Adapt in
      let jo = total "jess" Machine.Opt and ja = total "jess" Machine.Adapt in
      Table.add_row t
        [|
          string_of_int scale;
          string_of_int co; string_of_int ca; (if co < ca then "Opt" else "Adapt");
          string_of_int jo; string_of_int ja; (if jo < ja then "Opt" else "Adapt");
        |])
    [ 10; 25; 50; 100; 200; 400 ];
  Table.print t;
  print_newline ()

(* GA stability: the tuned result should not hinge on one lucky seed. *)
let ga_stability () =
  let suite = [ W.Suites.find "compress"; W.Suites.find "raytrace"; W.Suites.find "db" ] in
  let fitness =
    Objective.genome_fitness ~suite ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Total
  in
  let fits =
    List.map
      (fun seed ->
        let params =
          {
            Inltune_ga.Evolve.default_params with
            Inltune_ga.Evolve.pop_size = 10;
            generations = 6;
            seed;
          }
        in
        (Inltune_ga.Evolve.run ~spec:Params.genome_spec ~params ~fitness ())
          .Inltune_ga.Evolve.best_fitness)
      [ 1; 2; 3; 4; 5 ]
  in
  let arr = Array.of_list fits in
  let t =
    Table.create ~title:"Extension: GA stability across seeds (Opt:Tot objective, 3 benchmarks)"
      ~header:[| "seed"; "best fitness" |]
      ~aligns:[| Table.Right; Table.Right |]
  in
  List.iteri
    (fun i f -> Table.add_row t [| string_of_int (i + 1); Table.fmt_float ~digits:4 f |])
    fits;
  Table.add_rule t;
  Table.add_row t
    [| "mean +- stddev";
       Printf.sprintf "%.4f +- %.4f" (Stats.mean arr) (Stats.stddev arr) |];
  Table.print t;
  print_newline ()

let extensions () =
  print_endline "==== Extension benches (related-work baselines) ====\n";
  knapsack_baseline ();
  ladder_comparison ();
  scaling_crossover ();
  ga_stability ();
  search_comparison ()

(* ---- Learned-policy comparison ------------------------------------------ *)

module P = Inltune_policy
module Gp = Inltune_gp

(* The GA-vs-learned protocol: tune and train on SPECjvm98, then measure
   default vs GA-tuned vs learned CART policy on both suites.  Besides the
   printed tables, the per-suite geomean time ratios land in
   BENCH_policy.json so CI and tooling can diff runs without scraping
   tables. *)
(* The shared protocol of the policy and gp benches: GA-tune on SPECjvm98,
   label a flip-oracle dataset there, train CART on it, and evolve a GP
   policy with the dataset as the agreement pre-filter. *)
let train_all_policies () =
  let b = budget () in
  let o = Tuner.tune ~budget:b Tuner.Opt_tot_x86 in
  let cfg = { P.Dataset.default_config with P.Dataset.max_sites = 12 } in
  let examples = P.Dataset.generate cfg W.Suites.spec in
  let training = P.Dataset.to_training examples in
  let tree = P.Cart.train training in
  let gp_params =
    {
      Gp.Evolve.default_params with
      Gp.Evolve.pop_size = b.Tuner.pop;
      generations = b.Tuner.gens;
      seed = b.Tuner.seed;
    }
  in
  let gpr =
    Gp.Evolve.run ~dataset:training ~suite:W.Suites.spec ~scenario:Machine.Opt
      ~platform:Platform.x86 ~goal:Objective.Total ~params:gp_params ()
  in
  Printf.printf "tuned heuristic: %s\n" (Heuristic.to_string o.Tuner.heuristic);
  Printf.printf "dataset: %d examples; CART tree: %d nodes, depth %d\n"
    (List.length examples) (P.Dtree.size tree) (P.Dtree.depth tree);
  Printf.printf "GP best (%d evals, %d cache hits, size %d): %s\n"
    gpr.Gp.Evolve.evaluations gpr.Gp.Evolve.cache_hits (Gp.Tree.size gpr.Gp.Evolve.best)
    (Gp.Tree.to_text gpr.Gp.Evolve.best);
  (o.Tuner.heuristic, tree, gpr)

let policy_systems tuned tree gp_tree =
  let scenario = Machine.Opt and platform = Platform.x86 in
  [
    ("ga", fun bm -> Measure.run ~scenario ~platform ~heuristic:tuned bm);
    ("cart", fun bm -> P.Evaluate.measure ~scenario ~platform (P.Store.Tree tree) bm);
    ("gp", fun bm -> Gp.Fitness.measure ~scenario ~platform gp_tree bm);
  ]

let policy_comparison () =
  print_endline "==== Learned-policy comparison (default vs GA-tuned vs CART vs GP) ====\n";
  let tuned, tree, gpr = train_all_policies () in
  print_newline ();
  let systems = policy_systems tuned tree gpr.Gp.Evolve.best in
  let reports =
    List.map
      (fun (tag, suite) ->
        let r =
          P.Evaluate.compare_many ~scenario:Machine.Opt ~platform:Platform.x86 systems suite
        in
        Table.print (P.Evaluate.many_table r);
        print_newline ();
        (tag, r))
      [ ("spec", W.Suites.spec); ("dacapo", W.Suites.dacapo) ]
  in
  let oc = open_out "BENCH_policy.json" in
  let suite_json (tag, r) =
    let geos = P.Evaluate.many_geos r in
    let geo l = List.assoc l geos in
    Printf.sprintf
      "\"%s\":{\"running\":{\"default\":1.0,\"ga\":%.6f,\"learned\":%.6f,\"gp\":%.6f},\"total\":{\"default\":1.0,\"ga\":%.6f,\"learned\":%.6f,\"gp\":%.6f}}"
      tag
      (geo "ga").P.Evaluate.g_running (geo "cart").P.Evaluate.g_running
      (geo "gp").P.Evaluate.g_running (geo "ga").P.Evaluate.g_total
      (geo "cart").P.Evaluate.g_total (geo "gp").P.Evaluate.g_total
  in
  Printf.fprintf oc "{\"scenario\":\"opt\",\"platform\":\"x86\",\"suites\":{%s}}\n"
    (String.concat "," (List.map suite_json reports));
  close_out oc;
  print_endline "wrote BENCH_policy.json\n"

(* ---- GP bench ------------------------------------------------------------ *)

(* The tentpole's headline experiment: evolve the rule's structure on
   SPECjvm98, evaluate on the unseen DaCapo+JBB suite against the GA-tuned
   heuristic (the paper's Fig. 3 protocol) and the CART policy, and report
   how much simulation the dataset-agreement pre-filter avoided.  Numbers
   land in BENCH_gp.json for CI. *)
let gp_bench () =
  print_endline "==== GP policy evolution (structure search vs GA-tuned and CART) ====\n";
  let tuned, tree, gpr = train_all_policies () in
  let avoidance =
    if gpr.Gp.Evolve.prefilter_candidates = 0 then 0.0
    else
      Float.of_int gpr.Gp.Evolve.prefilter_skips
      /. Float.of_int gpr.Gp.Evolve.prefilter_candidates
  in
  Printf.printf "pre-filter: skipped %d of %d fresh trees (%.0f%% simulation avoidance)\n\n"
    gpr.Gp.Evolve.prefilter_skips gpr.Gp.Evolve.prefilter_candidates (100.0 *. avoidance);
  let report =
    P.Evaluate.compare_many ~scenario:Machine.Opt ~platform:Platform.x86
      (policy_systems tuned tree gpr.Gp.Evolve.best)
      W.Suites.dacapo
  in
  Table.print (P.Evaluate.many_table report);
  print_newline ();
  let geos = P.Evaluate.many_geos report in
  let geo l = List.assoc l geos in
  let oc = open_out "BENCH_gp.json" in
  Printf.fprintf oc
    "{\"scenario\":\"opt\",\"platform\":\"x86\",\"suite\":\"dacapo\",\"best_tree\":\"%s\",\"tree_size\":%d,\"evaluations\":%d,\"cache_hits\":%d,\"prefilter\":{\"candidates\":%d,\"skips\":%d,\"avoidance\":%.4f},\"running\":{\"default\":1.0,\"ga\":%.6f,\"cart\":%.6f,\"gp\":%.6f},\"total\":{\"default\":1.0,\"ga\":%.6f,\"cart\":%.6f,\"gp\":%.6f}}\n"
    (Gp.Tree.to_text gpr.Gp.Evolve.best)
    (Gp.Tree.size gpr.Gp.Evolve.best)
    gpr.Gp.Evolve.evaluations gpr.Gp.Evolve.cache_hits gpr.Gp.Evolve.prefilter_candidates
    gpr.Gp.Evolve.prefilter_skips avoidance (geo "ga").P.Evaluate.g_running
    (geo "cart").P.Evaluate.g_running (geo "gp").P.Evaluate.g_running
    (geo "ga").P.Evaluate.g_total (geo "cart").P.Evaluate.g_total (geo "gp").P.Evaluate.g_total;
  close_out oc;
  print_endline "wrote BENCH_gp.json\n"

(* ---- Tuner caching bench ------------------------------------------------- *)

(* The decision-signature caching protocol (EXPERIMENTS.md): one fixed-seed
   GA run twice — cache off, then cache on starting empty.  Caching must be
   bit-transparent, so the two searches are required to produce the same
   best genome and the same per-generation history; the win is the count of
   full VM simulations avoided.  Numbers land in BENCH_tuner.json so CI can
   diff runs without scraping tables. *)
let tuner_bench () =
  print_endline "==== Tuner bench: decision-signature fitness caching ====\n";
  let suite = [ W.Suites.find "compress"; W.Suites.find "raytrace"; W.Suites.find "db" ] in
  let budget = budget () in
  let value name = Inltune_obs.Metric.value (Inltune_obs.Metric.counter name) in
  (* Default-heuristic baselines are memoized process-wide by
     [Measure.run_default]; pay for them once before either timed run so
     neither side gets them for free. *)
  Fitcache.set_enabled false;
  Fitcache.clear ();
  List.iter
    (fun bm -> ignore (Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm))
    suite;
  let timed_run () =
    let s0 = value "measure.simulations" in
    let t0 = Inltune_support.Pool.now () in
    let o = Tuner.tune ~budget ~suite Tuner.Opt_tot_x86 in
    let wall = Inltune_support.Pool.now () -. t0 in
    (o, value "measure.simulations" - s0, wall)
  in
  let off, sims_off, wall_off = timed_run () in
  Fitcache.clear ();
  Fitcache.set_enabled true;
  let h0 = value "fitness.sig_hits"
  and m0 = value "fitness.sig_misses"
  and u0 = value "fitness.unique_plans" in
  let on, sims_on, wall_on = timed_run () in
  let sig_hits = value "fitness.sig_hits" - h0
  and sig_misses = value "fitness.sig_misses" - m0
  and unique_plans = value "fitness.unique_plans" - u0 in
  let identical_best = off.Tuner.ga.Inltune_ga.Evolve.best = on.Tuner.ga.Inltune_ga.Evolve.best in
  let identical_history =
    off.Tuner.ga.Inltune_ga.Evolve.history = on.Tuner.ga.Inltune_ga.Evolve.history
  in
  let avoided = sims_off - sims_on in
  let frac = Float.of_int avoided /. Float.of_int (max 1 sims_off) in
  let t =
    Table.create ~title:"Fixed-seed GA, cache off vs on (Opt:Tot, 3 benchmarks)"
      ~header:[| "run"; "wall (s)"; "simulations"; "sig hits"; "sig misses"; "unique plans" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
  in
  Table.add_row t
    [| "cache off"; Printf.sprintf "%.2f" wall_off; string_of_int sims_off; "-"; "-"; "-" |];
  Table.add_row t
    [|
      "cache on"; Printf.sprintf "%.2f" wall_on; string_of_int sims_on;
      string_of_int sig_hits; string_of_int sig_misses; string_of_int unique_plans;
    |];
  Table.add_rule t;
  Table.add_row t
    [|
      "avoided"; ""; Printf.sprintf "%d (%.0f%%)" avoided (100.0 *. frac); ""; ""; "";
    |];
  Table.print t;
  Printf.printf "best genome identical: %b   per-generation history identical: %b\n"
    identical_best identical_history;
  let oc = open_out "BENCH_tuner.json" in
  Printf.fprintf oc
    "{\"suite\":[%s],\"scenario\":\"opt:tot\",\"pop\":%d,\"gens\":%d,\"seed\":%d,\
     \"cache_off\":{\"wall_s\":%.3f,\"simulations\":%d},\
     \"cache_on\":{\"wall_s\":%.3f,\"simulations\":%d,\"sig_hits\":%d,\"sig_misses\":%d,\
     \"unique_plans\":%d},\
     \"simulations_avoided\":%d,\"avoided_fraction\":%.4f,\
     \"identical_best\":%b,\"identical_history\":%b}\n"
    (String.concat "," (List.map (fun bm -> "\"" ^ bm.W.Suites.bname ^ "\"") suite))
    budget.Tuner.pop budget.Tuner.gens budget.Tuner.seed wall_off sims_off wall_on sims_on
    sig_hits sig_misses unique_plans avoided frac identical_best identical_history;
  close_out oc;
  print_endline "wrote BENCH_tuner.json\n";
  if not (identical_best && identical_history) then begin
    prerr_endline "tuner bench: caching changed the search result (must be bit-transparent)";
    exit 1
  end

(* ---- Pass-manager bench --------------------------------------------------- *)

(* The plan-interpreter protocol (EXPERIMENTS.md): the refactored pipeline
   must be a pure reorganization — an explicitly parsed default plan has to
   measure bit-identically to the implicit built-in schedule in every
   scenario, and a fixed-seed heuristic GA run under the explicit plan must
   reproduce the implicit run's best genome and per-generation history.
   Then the new capability: a fixed-seed plan-genome GA (heuristic + plan
   co-evolution) end to end.  Numbers land in BENCH_passes.json so CI can
   diff runs without scraping tables; any identity violation exits 1. *)
let passes_bench () =
  print_endline "==== Pass-manager bench: plan interpreter identity + plan-genome GA ====\n";
  let suite = [ W.Suites.find "compress"; W.Suites.find "raytrace"; W.Suites.find "db" ] in
  let budget = budget () in
  let parsed_default =
    match Plan.of_string (Plan.to_string Plan.default) with
    | Ok p -> p
    | Error msg -> failwith ("default plan does not round-trip: " ^ msg)
  in
  (* (a) Raw measurements: implicit built-in schedule vs the parsed default
     plan, across every scenario. *)
  let scenarios = [ ("opt", Machine.Opt); ("adapt", Machine.Adapt); ("ladder", Machine.Ladder) ] in
  let t =
    Table.create ~title:"Implicit schedule vs parsed default plan (default heuristic, x86)"
      ~header:[| "benchmark"; "scenario"; "total (implicit)"; "total (plan)"; "identical" |]
      ~aligns:[| Table.Left; Table.Left; Table.Right; Table.Right; Table.Left |]
  in
  let identical_measurements = ref true in
  List.iter
    (fun bm ->
      let p = W.Suites.program bm in
      List.iter
        (fun (sname, scen) ->
          let implicit =
            Runner.measure (Machine.config scen Heuristic.default) Platform.x86 p
          in
          let planned =
            Runner.measure
              (Machine.config ~plan:parsed_default scen Heuristic.default)
              Platform.x86 p
          in
          let same = implicit = planned in
          if not same then identical_measurements := false;
          Table.add_row t
            [|
              bm.W.Suites.bname; sname;
              string_of_int implicit.Runner.total_cycles;
              string_of_int planned.Runner.total_cycles;
              string_of_bool same;
            |])
        scenarios)
    suite;
  Table.print t;
  print_newline ();
  (* (b) Fixed-seed heuristic GA, implicit vs explicit default plan.  The
     fitness cache is off so both searches simulate from scratch. *)
  Fitcache.set_enabled false;
  Fitcache.clear ();
  let implicit_ga = Tuner.tune ~budget ~suite Tuner.Opt_tot_x86 in
  let planned_ga = Tuner.tune ~budget ~suite ~plan:parsed_default Tuner.Opt_tot_x86 in
  Fitcache.set_enabled true;
  let identical_best =
    implicit_ga.Tuner.ga.Inltune_ga.Evolve.best = planned_ga.Tuner.ga.Inltune_ga.Evolve.best
  in
  let identical_history =
    implicit_ga.Tuner.ga.Inltune_ga.Evolve.history
    = planned_ga.Tuner.ga.Inltune_ga.Evolve.history
  in
  Printf.printf "heuristic GA under explicit default plan: best identical %b, history identical %b\n"
    identical_best identical_history;
  (* (c) The new capability: co-evolve heuristic and plan. *)
  let po = Tuner.tune_plan ~budget ~suite Tuner.Opt_tot_x86 in
  Printf.printf "plan-genome GA: fitness %.4f (heuristic-only %.4f)   best plan %s\n"
    po.Tuner.p_fitness implicit_ga.Tuner.fitness
    (if Plan.is_default po.Tuner.p_plan then "= default"
     else "digest " ^ Plan.digest po.Tuner.p_plan);
  print_string (Plan.to_string po.Tuner.p_plan);
  print_newline ();
  let oc = open_out "BENCH_passes.json" in
  Printf.fprintf oc
    "{\"suite\":[%s],\"scenario\":\"opt:tot\",\"pop\":%d,\"gens\":%d,\"seed\":%d,\
     \"identical_measurements\":%b,\"identical_best\":%b,\"identical_history\":%b,\
     \"heuristic_ga\":{\"best_fitness\":%.6f,\"evaluations\":%d},\
     \"plan_ga\":{\"best_fitness\":%.6f,\"evaluations\":%d,\"plan_is_default\":%b,\
     \"plan_digest\":\"%s\"}}\n"
    (String.concat "," (List.map (fun bm -> "\"" ^ bm.W.Suites.bname ^ "\"") suite))
    budget.Tuner.pop budget.Tuner.gens budget.Tuner.seed !identical_measurements
    identical_best identical_history implicit_ga.Tuner.fitness
    implicit_ga.Tuner.ga.Inltune_ga.Evolve.evaluations po.Tuner.p_fitness
    po.Tuner.p_ga.Inltune_ga.Evolve.evaluations
    (Plan.is_default po.Tuner.p_plan)
    (Plan.digest po.Tuner.p_plan);
  close_out oc;
  print_endline "wrote BENCH_passes.json\n";
  if not (!identical_measurements && identical_best && identical_history) then begin
    prerr_endline
      "passes bench: the plan interpreter changed measurements or the GA trajectory \
       (must be bit-identical under the default plan)";
    exit 1
  end

(* ---- Inlining-strategy bench ---------------------------------------------- *)

(* The default plan with one alternative inlining strategy switched on (at
   its default knobs) in place of the decider-driven inline pass. *)
let strategy_plan strategy =
  let items =
    Array.map
      (fun it ->
        if it.Plan.pass = strategy then { it with Plan.enabled = true }
        else if it.Plan.pass = "inline" then { it with Plan.enabled = false }
        else it)
      Plan.default.Plan.items
  in
  match Plan.validate { Plan.items } with
  | Ok p -> p
  | Error msg -> failwith ("strategy plan " ^ strategy ^ ": " ^ msg)

(* Default plan vs each strategy plan vs a GA-tuned composite (heuristic +
   plan genes co-evolved on a training slice of the generated corpus), all
   evaluated on an unseen suite the GA never saw.  Writes
   BENCH_inliners.json. *)
let inliners_bench () =
  print_endline "==== Inliners bench: strategy plans vs the Fig. 3 default ====\n";
  let budget = budget () in
  let corpus name =
    match W.Corpus.find_opt name with
    | Some bm -> bm
    | None -> failwith ("inliners bench: no corpus program " ^ name)
  in
  let train =
    List.map corpus
      [ "corpus_chain00"; "corpus_dispatch00"; "corpus_recur00"; "corpus_sweep00";
        "corpus_sweep01"; "corpus_phase00" ]
  in
  let unseen =
    List.map corpus
      [ "corpus_chain10"; "corpus_dispatch10"; "corpus_recur10"; "corpus_sweep10";
        "corpus_phase01" ]
    @ [ W.Suites.find "compress"; W.Suites.find "jess" ]
  in
  let total ?plan scen heuristic bm =
    let cfg =
      match plan with
      | None -> Machine.config scen heuristic
      | Some plan -> Machine.config ~plan scen heuristic
    in
    (Runner.measure cfg Platform.x86 (W.Suites.program bm)).Runner.total_cycles
  in
  (* (a) Identity: corpus programs measure bit-identically under the parsed
     default plan, where the strategies are scheduled but disabled. *)
  let parsed_default =
    match Plan.of_string (Plan.to_string Plan.default) with
    | Ok p -> p
    | Error msg -> failwith ("default plan does not round-trip: " ^ msg)
  in
  let identical =
    List.for_all
      (fun bm ->
        total Machine.Opt Heuristic.default bm
        = total ~plan:parsed_default Machine.Opt Heuristic.default bm)
      train
  in
  Printf.printf "default-plan identity on the corpus: %b\n\n" identical;
  (* (b) Tuned composite: co-evolve heuristic + plan genes (which now span
     the strategy toggles and knobs) on the training corpus. *)
  Fitcache.clear ();
  let po = Tuner.tune_plan ~budget ~suite:train Tuner.Opt_tot_x86 in
  Printf.printf "tuned composite: fitness %.4f   plan %s\n%s\n" po.Tuner.p_fitness
    (if Plan.is_default po.Tuner.p_plan then "= default"
     else "digest " ^ Plan.digest po.Tuner.p_plan)
    (Plan.to_string po.Tuner.p_plan);
  (* (c) Unseen-suite comparison under Opt.  inline_hot is omitted here: it
     needs a live profile, so it competes under Adapt below. *)
  let opt_columns =
    [ ("inline_leaves", strategy_plan "inline_leaves", Heuristic.default);
      ("inline_region", strategy_plan "inline_region", Heuristic.default);
      ("tuned", po.Tuner.p_plan, po.Tuner.p_heuristic) ]
  in
  let t =
    Table.create ~title:"Unseen suite, Opt: total cycles vs the default plan"
      ~header:
        (Array.of_list
           ("benchmark" :: "default"
           :: List.concat_map (fun (n, _, _) -> [ n; n ^ " /def" ]) opt_columns))
      ~aligns:(Array.make (2 + (2 * List.length opt_columns)) Table.Right)
  in
  let opt_rows =
    List.map
      (fun bm ->
        let def = total Machine.Opt Heuristic.default bm in
        let cells =
          List.map
            (fun (_, plan, heuristic) ->
              let c = total ~plan Machine.Opt heuristic bm in
              (c, Float.of_int c /. Float.of_int def))
            opt_columns
        in
        Table.add_row t
          (Array.of_list
             (bm.W.Suites.bname :: string_of_int def
             :: List.concat_map
                  (fun (c, r) -> [ string_of_int c; Table.fmt_float r ])
                  cells));
        (bm, def, cells))
      unseen
  in
  let geomean_of idx =
    Stats.geomean
      (Array.of_list (List.map (fun (_, _, cells) -> snd (List.nth cells idx)) opt_rows))
  in
  let opt_geomeans = List.mapi (fun i (n, _, _) -> (n, geomean_of i)) opt_columns in
  Table.add_row t
    (Array.of_list
       ("geomean" :: ""
       :: List.concat_map (fun (_, g) -> [ ""; Table.fmt_float g ]) opt_geomeans));
  Table.print t;
  print_newline ();
  (* (d) Adapt: the hot-path strategy against the default, on the unseen
     corpus programs (the profile-consuming pass only exists here). *)
  let t2 =
    Table.create ~title:"Unseen suite, Adapt: hot-path strategy vs the default plan"
      ~header:[| "benchmark"; "default"; "inline_hot"; "hot /def" |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
  in
  let hot_plan = strategy_plan "inline_hot" in
  let adapt_rows =
    List.map
      (fun bm ->
        let def = total Machine.Adapt Heuristic.default bm in
        let hot = total ~plan:hot_plan Machine.Adapt Heuristic.default bm in
        let r = Float.of_int hot /. Float.of_int def in
        Table.add_row t2
          [| bm.W.Suites.bname; string_of_int def; string_of_int hot; Table.fmt_float r |];
        (bm, def, hot, r))
      unseen
  in
  let hot_geomean =
    Stats.geomean (Array.of_list (List.map (fun (_, _, _, r) -> r) adapt_rows))
  in
  Table.add_row t2 [| "geomean"; ""; ""; Table.fmt_float hot_geomean |];
  Table.print t2;
  print_newline ();
  (* A corpus program "wins" when some strategy or the tuned composite beats
     the default plan's total time on it. *)
  let corpus_wins =
    List.filter
      (fun (bm, def, cells) ->
        String.length bm.W.Suites.bname >= 7
        && String.sub bm.W.Suites.bname 0 7 = "corpus_"
        && List.exists (fun (c, _) -> c < def) cells)
      opt_rows
    |> List.map (fun (bm, _, _) -> bm.W.Suites.bname)
  in
  Printf.printf "corpus programs where a strategy/tuned plan beats the default: %s\n"
    (match corpus_wins with [] -> "none" | l -> String.concat ", " l);
  let oc = open_out "BENCH_inliners.json" in
  Printf.fprintf oc
    "{\"train\":[%s],\"unseen\":[%s],\"pop\":%d,\"gens\":%d,\"seed\":%d,\
     \"identical_default\":%b,\
     \"tuned\":{\"fitness\":%.6f,\"plan_is_default\":%b,\"plan_digest\":\"%s\"},\
     \"opt\":{\"benchmarks\":[%s],\"geomean_vs_default\":{%s}},\
     \"adapt\":{\"benchmarks\":[%s],\"geomean_vs_default\":{\"inline_hot\":%.6f}},\
     \"corpus_wins\":[%s],\"any_corpus_win\":%b}\n"
    (String.concat "," (List.map (fun bm -> "\"" ^ bm.W.Suites.bname ^ "\"") train))
    (String.concat "," (List.map (fun bm -> "\"" ^ bm.W.Suites.bname ^ "\"") unseen))
    budget.Tuner.pop budget.Tuner.gens budget.Tuner.seed identical po.Tuner.p_fitness
    (Plan.is_default po.Tuner.p_plan)
    (Plan.digest po.Tuner.p_plan)
    (String.concat ","
       (List.map
          (fun (bm, def, cells) ->
            Printf.sprintf "{\"name\":\"%s\",\"default\":%d,%s}" bm.W.Suites.bname def
              (String.concat ","
                 (List.map2
                    (fun (n, _, _) (c, _) -> Printf.sprintf "\"%s\":%d" n c)
                    opt_columns cells)))
          opt_rows))
    (String.concat ","
       (List.map (fun (n, g) -> Printf.sprintf "\"%s\":%.6f" n g) opt_geomeans))
    (String.concat ","
       (List.map
          (fun (bm, def, hot, _) ->
            Printf.sprintf "{\"name\":\"%s\",\"default\":%d,\"inline_hot\":%d}"
              bm.W.Suites.bname def hot)
          adapt_rows))
    hot_geomean
    (String.concat "," (List.map (fun n -> "\"" ^ n ^ "\"") corpus_wins))
    (corpus_wins <> []);
  close_out oc;
  print_endline "wrote BENCH_inliners.json\n";
  if not identical then begin
    prerr_endline
      "inliners bench: the default plan (strategies scheduled but disabled) changed \
       corpus measurements (must be bit-identical)";
    exit 1
  end

(* ---- VM throughput trajectory bench -------------------------------------- *)

(* ROADMAP item 5's trajectory: interpreter throughput (simulated cycles per
   host second) and per-simulation latency percentiles on a fixed workload
   (the generated SPECjvm98 suite is internally seeded, so every run
   simulates exactly the same programs).  Direct [Machine] runs — no
   Fitcache, no memo — so the numbers are pure simulator cost.  Results land
   in BENCH_vm.json so every future hot-path speedup shows up as a
   trajectory across runs rather than being claimed once.

   Environment knobs: INLTUNE_VM_REPEATS (timed simulations per benchmark x
   scenario, default 3), INLTUNE_VM_ITERS (VM iterations per simulation,
   default 3). *)
let vm_bench () =
  print_endline "==== VM bench: interpreter throughput trajectory ====\n";
  let repeats = max 1 (env_int "INLTUNE_VM_REPEATS" 3) in
  let iterations = max 2 (env_int "INLTUNE_VM_ITERS" 3) in
  let scenarios =
    [ ("opt", Machine.Opt); ("adapt", Machine.Adapt); ("ladder", Machine.Ladder) ]
  in
  let suite = W.Suites.spec in
  let now = Inltune_support.Pool.now in
  (* The previous run's headline number, read before this run overwrites the
     file, turns BENCH_vm.json into a trajectory: every hot-path change
     reports its own speedup instead of claiming it once in a commit
     message. *)
  let previous_sps =
    match In_channel.with_open_text "BENCH_vm.json" In_channel.input_all with
    | exception _ -> None
    | text -> (
      match Inltune_obs.Json.parse text with
      | Error _ -> None
      | Ok j ->
        Option.bind (Inltune_obs.Json.member "overall" j) (fun o ->
            Option.bind (Inltune_obs.Json.member "steps_per_second" o)
              Inltune_obs.Json.to_float))
  in
  (* One simulation: fresh VM, [iterations] runs of main.  Returns (wall
     seconds, simulated cycles, interpreter steps, minor words allocated) —
     the GC column catches allocation regressions in the dispatch loop that
     wall-clock noise can hide. *)
  let simulate scen p =
    let t0 = now () in
    let g0 = Gc.minor_words () in
    let vm = Machine.create (Machine.config scen Heuristic.default) Platform.x86 p in
    for _ = 1 to iterations do
      ignore (Machine.run_iteration vm : Machine.iteration)
    done;
    ( now () -. t0,
      vm.Machine.exec_cycles + vm.Machine.compile_cycles,
      vm.Machine.steps,
      Gc.minor_words () -. g0 )
  in
  let t =
    Table.create ~title:"VM throughput (simulated cycles and steps per host second)"
      ~header:
        [|
          "scenario"; "sims"; "cycles/s"; "steps/s"; "gc w/step"; "p50 ms"; "p90 ms";
          "p99 ms"; "max ms";
        |]
      ~aligns:
        [|
          Table.Left;
          Table.Right;
          Table.Right;
          Table.Right;
          Table.Right;
          Table.Right;
          Table.Right;
          Table.Right;
          Table.Right;
        |]
  in
  let all_lat = ref [] in
  let all_wall = ref 0.0 and all_cycles = ref 0 and all_steps = ref 0 in
  let all_words = ref 0.0 in
  let per_scenario =
    List.map
      (fun (sname, scen) ->
        let lats = ref [] in
        let wall = ref 0.0 and cycles = ref 0 and steps = ref 0 in
        let words = ref 0.0 in
        List.iter
          (fun bm ->
            let p = W.Suites.program bm in
            (* Warmup untimed: first touch pays generation/validation costs
               that are not interpreter throughput. *)
            ignore (simulate scen p);
            for _ = 1 to repeats do
              let w, c, s, g = simulate scen p in
              lats := w :: !lats;
              wall := !wall +. w;
              cycles := !cycles + c;
              steps := !steps + s;
              words := !words +. g
            done)
          suite;
        let lat = Array.of_list !lats in
        let pct p = Stats.percentile lat p *. 1e3 in
        let per_s v = Float.of_int v /. Float.max 1e-9 !wall in
        let wps = !words /. Float.max 1.0 (Float.of_int !steps) in
        Table.add_row t
          [|
            sname;
            string_of_int (Array.length lat);
            Printf.sprintf "%.3e" (per_s !cycles);
            Printf.sprintf "%.3e" (per_s !steps);
            Printf.sprintf "%.4f" wps;
            Table.fmt_float (pct 50.0);
            Table.fmt_float (pct 90.0);
            Table.fmt_float (pct 99.0);
            Table.fmt_float (Stats.max_of lat *. 1e3);
          |];
        all_lat := !lats @ !all_lat;
        all_wall := !all_wall +. !wall;
        all_cycles := !all_cycles + !cycles;
        all_steps := !all_steps + !steps;
        all_words := !all_words +. !words;
        (sname, per_s !cycles, per_s !steps, wps, pct 50.0, pct 90.0, pct 99.0))
      scenarios
  in
  let lat = Array.of_list !all_lat in
  let pct p = Stats.percentile lat p *. 1e3 in
  let per_s v = Float.of_int v /. Float.max 1e-9 !all_wall in
  let overall_sps = per_s !all_steps in
  let overall_wps = !all_words /. Float.max 1.0 (Float.of_int !all_steps) in
  Table.add_rule t;
  Table.add_row t
    [|
      "overall";
      string_of_int (Array.length lat);
      Printf.sprintf "%.3e" (per_s !all_cycles);
      Printf.sprintf "%.3e" overall_sps;
      Printf.sprintf "%.4f" overall_wps;
      Table.fmt_float (pct 50.0);
      Table.fmt_float (pct 90.0);
      Table.fmt_float (pct 99.0);
      Table.fmt_float (Stats.max_of lat *. 1e3);
    |];
  Table.print t;
  (match previous_sps with
  | Some prev when prev > 0.0 ->
    Printf.printf "speedup vs previous BENCH_vm.json: %.2fx (%.3e -> %.3e steps/s)\n" (overall_sps /. prev)
      prev overall_sps
  | _ -> ());
  print_newline ();
  let oc = open_out "BENCH_vm.json" in
  let scenario_json (sname, cps, sps, wps, p50, p90, p99) =
    Printf.sprintf
      "\"%s\":{\"cycles_per_second\":%.1f,\"steps_per_second\":%.1f,\
       \"gc_minor_words_per_step\":%.6f,\
       \"sim_latency_ms\":{\"p50\":%.4f,\"p90\":%.4f,\"p99\":%.4f}}"
      sname cps sps wps p50 p90 p99
  in
  let trajectory_json =
    match previous_sps with
    | Some prev when prev > 0.0 ->
      Printf.sprintf ",\"previous_steps_per_second\":%.1f,\"speedup_vs_previous\":%.4f" prev
        (overall_sps /. prev)
    | _ -> ""
  in
  Printf.fprintf oc
    "{\"benchmarks\":%d,\"repeats\":%d,\"iterations\":%d,\
     \"overall\":{\"cycles_per_second\":%.1f,\"steps_per_second\":%.1f,\
     \"gc_minor_words_per_step\":%.6f,\
     \"sim_latency_ms\":{\"p50\":%.4f,\"p90\":%.4f,\"p99\":%.4f}}%s,\
     \"scenarios\":{%s}}\n"
    (List.length suite) repeats iterations (per_s !all_cycles) overall_sps overall_wps
    (pct 50.0) (pct 90.0) (pct 99.0) trajectory_json
    (String.concat "," (List.map scenario_json per_scenario));
  close_out oc;
  print_endline "wrote BENCH_vm.json\n"

(* ---- Serve bench: concurrent clients vs a saturated daemon -------------- *)

(* The robustness protocol for the tuning daemon: N concurrent clients hammer
   an in-process server whose pool admission is deliberately tiny, with one
   injected fault armed mid-load.  Every request must get an explicit reply
   (ok / degraded / overloaded / quota / failed — never a hang), overload
   must produce real backpressure, tenants must hit each other's cache
   entries, and a fixed-seed tune through the daemon must return the exact
   genome the offline [Tuner.tune] path computes.  Numbers land in
   BENCH_serve.json; any violated invariant exits 1. *)
let serve_bench () =
  let module Server = Inltune_serve.Server in
  let module Sproto = Inltune_serve.Proto in
  let module Sclient = Inltune_serve.Client in
  let module Json = Inltune_obs.Json in
  let module Metric = Inltune_obs.Metric in
  let module Faultinject = Inltune_resilience.Faultinject in
  print_endline "==== Serve: concurrent clients vs a saturated daemon ====\n";
  let clients = env_int "INLTUNE_SERVE_CLIENTS" 8 in
  let measures_per_client = env_int "INLTUNE_SERVE_MEASURES" 10 in
  (* Offline reference first, before the daemon exists (and before its
     tenant hook is installed), with a fixed small budget. *)
  let suite = [ W.Suites.find "compress" ] in
  let ibudget = { Tuner.pop = 6; gens = 2; seed = 123 } in
  let offline = Tuner.tune ~budget:ibudget ~suite Tuner.Opt_tot_x86 in
  let sock = Filename.temp_file "inltune_serve" ".sock" in
  Sys.remove sock;
  let endpoint = Sproto.Unix_path sock in
  let config =
    {
      Server.default_config with
      Server.permits = 2;
      queue_cap = 2;
      quota_rate = 50.0;
      quota_burst = 10.0;
      max_retries = 1;
      degrade_after = 4;
      degrade_window_s = 10.0;
      cooldown_s = 1.0;
      quiet = true;
    }
  in
  let cross0 = Metric.value (Metric.counter "fitness.cross_tenant_hits") in
  let srv = Server.start ~config endpoint in
  (* One faulted request mid-load (both its attempts), so the failure path
     runs under concurrency. *)
  Faultinject.install
    [
      { Faultinject.site = "serve"; action = Faultinject.Raise; at = 5 };
      { Faultinject.site = "serve"; action = Faultinject.Raise; at = 6 };
    ];
  let benches = [| "compress"; "db"; "jess"; "raytrace" |] in
  let results = Array.make clients [] in
  let missing = Atomic.make 0 in
  let t_start = Unix.gettimeofday () in
  let client_thread i =
    let outcomes = ref [] in
    let record line ms =
      let status =
        match Json.parse line with
        | Ok j -> (
          match Json.member "status" j with Some (Json.Str s) -> s | _ -> "?")
        | Error _ -> "?"
      in
      outcomes := (status, ms) :: !outcomes
    in
    let rpc line =
      let t0 = Unix.gettimeofday () in
      match Sclient.rpc ~timeout_s:180.0 endpoint line with
      | Ok reply -> record reply ((Unix.gettimeofday () -. t0) *. 1e3)
      | Error _ -> Atomic.incr missing
    in
    let tenant = Printf.sprintf "t%d" (i mod 4) in
    (* Phase 1: every client starts a small tune at once — 8 concurrent
       tunes against permits=2/queue=2 forces sheds. *)
    rpc
      (Printf.sprintf
         "{\"op\":\"tune\",\"tenant\":%S,\"scenario\":\"opt:bal\",\"pop\":4,\"gens\":1,\
          \"seed\":%d,\"suite\":[\"compress\"]}"
         tenant (100 + i));
    (* Phase 2: measure queries shared across tenants, so later clients hit
       cache entries earlier tenants paid for. *)
    for k = 0 to measures_per_client - 1 do
      rpc
        (Printf.sprintf
           "{\"op\":\"measure\",\"tenant\":%S,\"bench\":%S,\"deadline_ms\":60000}" tenant
           benches.((i + k) mod Array.length benches))
    done;
    results.(i) <- !outcomes
  in
  let threads = Array.init clients (fun i -> Thread.create client_thread i) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t_start in
  Faultinject.clear ();
  (* Let the daemon cool down out of degraded mode before the identity
     check; it must heal on its own. *)
  let rec wait_normal tries =
    if Server.degraded_mode srv && tries > 0 then begin
      Thread.delay 0.1;
      wait_normal (tries - 1)
    end
  in
  wait_normal 300;
  let healed = not (Server.degraded_mode srv) in
  (* Identity: same budget and suite as the offline reference, through the
     daemon, must reproduce the genome and fitness bit-for-bit. *)
  let identity_reply =
    Sclient.rpc ~timeout_s:300.0 endpoint
      (Printf.sprintf
         "{\"op\":\"tune\",\"tenant\":\"identity\",\"scenario\":\"opt:tot\",\"pop\":%d,\
          \"gens\":%d,\"seed\":%d,\"suite\":[\"compress\"]}"
         ibudget.Tuner.pop ibudget.Tuner.gens ibudget.Tuner.seed)
  in
  let identical_tune, served_fitness =
    match identity_reply with
    | Error _ -> (false, Float.nan)
    | Ok reply -> (
      match Json.parse reply with
      | Error _ -> (false, Float.nan)
      | Ok j ->
        let genome =
          match Json.member "genome" j with
          | Some (Json.List gs) ->
            Some
              (Array.of_list
                 (List.filter_map
                    (fun g -> Option.map int_of_float (Json.to_float g))
                    gs))
          | _ -> None
        in
        let fitness =
          Option.bind (Json.member "fitness" j) Json.to_float
          |> Option.value ~default:Float.nan
        in
        let status =
          match Json.member "status" j with Some (Json.Str s) -> s | _ -> "?"
        in
        ( status = "ok"
          && genome = Some (Heuristic.to_array offline.Tuner.heuristic)
          && fitness = offline.Tuner.fitness,
          fitness ))
  in
  let crashed =
    match Sclient.rpc ~timeout_s:10.0 endpoint "{\"op\":\"ping\"}" with
    | Ok _ -> false
    | Error _ -> true
  in
  Server.stop srv;
  (* Tally. *)
  let statuses = Hashtbl.create 8 in
  let lats = ref [] in
  Array.iter
    (fun rs ->
      List.iter
        (fun (s, ms) ->
          Hashtbl.replace statuses s (1 + Option.value ~default:0 (Hashtbl.find_opt statuses s));
          lats := ms :: !lats)
        rs)
    results;
  let count s = Option.value ~default:0 (Hashtbl.find_opt statuses s) in
  let lat = Array.of_list !lats in
  let replies = Array.length lat in
  let expected = clients * (1 + measures_per_client) in
  let pct p = if replies = 0 then 0.0 else Stats.percentile lat p in
  let cross = Metric.value (Metric.counter "fitness.cross_tenant_hits") - cross0 in
  let backpressure = count "overloaded" + count "quota" + count "degraded" in
  let t =
    Table.create ~title:"Serve load bench"
      ~header:[| "metric"; "value" |]
      ~aligns:[| Table.Left; Table.Right |]
  in
  Table.add_row t [| "clients"; string_of_int clients |];
  Table.add_row t [| "requests sent"; string_of_int expected |];
  Table.add_row t [| "replies received"; string_of_int replies |];
  Table.add_row t [| "no reply (hang/conn)"; string_of_int (Atomic.get missing) |];
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) statuses []
  |> List.sort compare
  |> List.iter (fun (s, n) -> Table.add_row t [| "status " ^ s; string_of_int n |]);
  Table.add_row t [| "cross-tenant cache hits"; string_of_int cross |];
  Table.add_row t [| "wall"; Printf.sprintf "%.2fs" wall_s |];
  Table.add_row t [| "throughput"; Printf.sprintf "%.1f req/s" (Float.of_int replies /. Float.max 1e-9 wall_s) |];
  Table.add_row t [| "latency p50/p90/p99"; Printf.sprintf "%.0f/%.0f/%.0f ms" (pct 50.0) (pct 90.0) (pct 99.0) |];
  Table.add_row t [| "healed from degraded"; string_of_bool healed |];
  Table.add_row t [| "identical tune"; string_of_bool identical_tune |];
  Table.add_row t [| "server crashes"; string_of_int (if crashed then 1 else 0) |];
  Table.print t;
  print_newline ();
  let statuses_json =
    Hashtbl.fold (fun s n acc -> (s, n) :: acc) statuses []
    |> List.sort compare
    |> List.map (fun (s, n) -> Printf.sprintf "\"%s\":%d" s n)
    |> String.concat ","
  in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\"clients\":%d,\"requests\":%d,\"replies\":%d,\"no_reply\":%d,\"wall_s\":%.3f,\
     \"throughput_rps\":%.2f,\
     \"latency_ms\":{\"p50\":%.2f,\"p90\":%.2f,\"p99\":%.2f,\"max\":%.2f},\
     \"statuses\":{%s},\"backpressure_replies\":%d,\"cross_tenant_hits\":%d,\
     \"healed\":%b,\"identical_tune\":%b,\"served_fitness\":%.17g,\
     \"offline_fitness\":%.17g,\"server_crashes\":%d}\n"
    clients expected replies (Atomic.get missing) wall_s
    (Float.of_int replies /. Float.max 1e-9 wall_s)
    (pct 50.0) (pct 90.0) (pct 99.0)
    (if replies = 0 then 0.0 else Stats.max_of lat)
    statuses_json backpressure cross healed identical_tune served_fitness
    offline.Tuner.fitness
    (if crashed then 1 else 0);
  close_out oc;
  print_endline "wrote BENCH_serve.json\n";
  let failures = ref [] in
  let check cond what = if not cond then failures := what :: !failures in
  check (replies = expected) "some requests got no reply";
  check (Atomic.get missing = 0) "connection-level failures";
  check (backpressure > 0) "saturation produced no explicit backpressure";
  check (cross > 0) "no cross-tenant cache hits";
  check healed "daemon did not recover from degraded mode";
  check identical_tune "served tune differs from offline tune";
  check (not crashed) "daemon died under load";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "serve bench FAILED: %s\n%!") !failures;
    exit 1
  end

(* ---- Bechamel micro-benchmarks ------------------------------------------ *)

let micro () =
  let open Bechamel in
  print_endline "==== Bechamel micro-benchmarks (ns per run) ====\n";
  let compress = W.Suites.program (W.Suites.find "compress") in
  let jess = W.Suites.program (W.Suites.find "jess") in
  let jess_main = jess.Inltune_jir.Ir.methods.(jess.Inltune_jir.Ir.main) in
  (* Pre-inline a jess rule body so the dataflow benches see a big method. *)
  let rule =
    Array.to_list jess.Inltune_jir.Ir.methods
    |> List.find (fun m -> m.Inltune_jir.Ir.mname = "rule_match0")
  in
  let inlined_rule, _ =
    Inline.run ~program:jess ~heuristic:Heuristic.default rule
  in
  let sphere g =
    Array.fold_left (fun acc v -> acc +. (Float.of_int (v - 5) ** 2.0)) 0.0 g
  in
  let tests =
    Test.make_grouped ~name:"inltune"
      [
        Test.make ~name:"interp: compress iteration"
          (Staged.stage (fun () ->
               let vm =
                 Machine.create (Machine.config Machine.Opt Heuristic.default) Platform.x86
                   compress
               in
               ignore (Machine.run_iteration vm)));
        Test.make ~name:"pipeline: optimize jess main"
          (Staged.stage (fun () ->
               ignore
                 (Pipeline.run jess (Pipeline.opt_config Heuristic.default) jess_main)));
        Test.make ~name:"inline: jess rule body"
          (Staged.stage (fun () ->
               ignore (Inline.run ~program:jess ~heuristic:Heuristic.default rule)));
        Test.make ~name:"constprop: inlined rule body"
          (Staged.stage (fun () -> ignore (Constprop.run jess inlined_rule)));
        Test.make ~name:"dce: inlined rule body"
          (Staged.stage (fun () -> ignore (Dce.run inlined_rule)));
        Test.make ~name:"ga: 20 generations on sphere"
          (Staged.stage (fun () ->
               ignore
                 (Inltune_ga.Evolve.run
                    ~spec:(Inltune_ga.Genome.spec [| (0, 10); (0, 10); (0, 10) |])
                    ~params:
                      {
                        Inltune_ga.Evolve.default_params with
                        Inltune_ga.Evolve.generations = 20;
                        domains = Some 1;
                      }
                    ~fitness:sphere ())));
        Test.make ~name:"icache: 4k accesses"
          (Staged.stage
             (let c = Icache.create ~bytes:16384 ~line_bytes:64 in
              fun () ->
                for i = 0 to 4095 do
                  ignore (Icache.access c (i * 48))
                done));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t =
    Table.create ~title:"micro-benchmarks"
      ~header:[| "benchmark"; "time per run" |]
      ~aligns:[| Table.Left; Table.Right |]
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      let cell =
        if Float.is_nan ns then "n/a"
        else if ns > 1.0e9 then Printf.sprintf "%.2f s" (ns /. 1.0e9)
        else if ns > 1.0e6 then Printf.sprintf "%.2f ms" (ns /. 1.0e6)
        else if ns > 1.0e3 then Printf.sprintf "%.2f us" (ns /. 1.0e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row t [| name; cell |])
    rows;
  Table.print t;
  print_newline ()

(* ---- main ----------------------------------------------------------------- *)

let () =
  Inltune_obs.Trace.init_from_env ();
  (* INLTUNE_PROFILE=1 works for benches exactly as it does for the CLI. *)
  Inltune_obs.Prof.init_from_env ();
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "everything" in
  let ctx = Experiments.make_ctx ~budget:(budget ()) () in
  match arg with
  | "everything" ->
    print_endline "==== Paper experiments (all tables and figures) ====\n";
    Experiments.run_all ctx;
    ablations ();
    extensions ();
    policy_comparison ();
    tuner_bench ();
    passes_bench ();
    inliners_bench ();
    vm_bench ();
    serve_bench ();
    micro ()
  | "ablations" -> ablations ()
  | "extensions" -> extensions ()
  | "policy" -> policy_comparison ()
  | "gp" -> gp_bench ()
  | "tuner" -> tuner_bench ()
  | "passes" -> passes_bench ()
  | "inliners" -> inliners_bench ()
  | "vm" -> vm_bench ()
  | "serve" -> serve_bench ()
  | "micro" -> micro ()
  | id -> Experiments.run_one ctx id
