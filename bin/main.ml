(* inltune — command-line interface.

   Subcommands:
     list                      show the benchmark suites
     show <bench>              dump a benchmark's JIR and shape statistics
     run <bench>               simulate one benchmark and report times
     tune                      GA-tune the heuristic (and, with --tune-passes,
                               the optimization plan; with --evolve-policy,
                               the rule's structure itself) for a scenario
     plan [<file>]             print, validate, or canonicalize a plan
     experiment <id>           regenerate a paper table/figure (or "all")
     trace-summary <file>      aggregate a JSONL trace into report tables
     features <bench>          dump call-site feature vectors
     dataset <file>            build a flip-oracle labeled dataset (resumable)
     train-policy              induce a decision-tree (or threshold) policy
     eval-policy <file>        run a stored policy on a suite vs default/GA
     gp print|eval <file>      inspect / evaluate an evolved policy tree
     serve                     run the tuning daemon (line-JSON over a socket)
     client <op>               talk to a running daemon (ping/stats/measure/tune)

   INLTUNE_VM_REFERENCE=1 runs every simulation on the tree-walking
   reference interpreter instead of the flat compiled-dispatch one; the
   two are bit-identical on all reported numbers (see README
   "Performance"), so this is a cross-check knob, not a behaviour knob.
*)

open Cmdliner
open Inltune_core
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads
module P = Inltune_policy
module Gp = Inltune_gp

(* Bad flag values get one line on stderr and exit code 2 (usage error),
   never a raw OCaml backtrace. *)
let die fmt = Printf.ksprintf (fun s -> Printf.eprintf "inltune: %s\n%!" s; exit 2) fmt

let platform_arg =
  let doc = "Platform model: x86 or ppc." in
  Arg.(value & opt string "x86" & info [ "platform"; "p" ] ~docv:"PLATFORM" ~doc)

let scenario_arg =
  let doc = "Compilation scenario: opt, adapt, or ladder (staged recompilation)." in
  Arg.(value & opt string "opt" & info [ "scenario"; "s" ] ~docv:"SCENARIO" ~doc)

let heuristic_arg =
  let doc =
    "Heuristic parameter overrides, e.g. 'CALLEE_MAX_SIZE=10,MAX_INLINE_DEPTH=2'.  Unset \
     parameters keep the Jikes RVM defaults."
  in
  Arg.(value & opt string "" & info [ "heuristic"; "H" ] ~docv:"PARAMS" ~doc)

let scenario_of_flag = function
  | "opt" -> Machine.Opt
  | "adapt" -> Machine.Adapt
  | "ladder" -> Machine.Ladder
  | s -> die "unknown scenario '%s' (valid: opt, adapt, ladder)" s

let tuner_scenario_of_flag s =
  try Tuner.scenario_of_string s
  with Invalid_argument _ ->
    die "unknown tuning scenario '%s' (valid: %s)" s (String.concat ", " Tuner.scenario_names)

let platform_of_flag s =
  try Platform.by_name s
  with Invalid_argument _ -> die "unknown platform '%s' (valid: x86, ppc)" s

let heuristic_of_flag s =
  try Params.heuristic_of_string s with
  | Invalid_argument msg -> die "bad --heuristic: %s" msg
  | Failure _ -> die "bad --heuristic '%s': parameter values must be integers" s

let plan_arg =
  let doc =
    "Run the optimizing tier under the plan in $(docv) instead of the built-in schedule \
     (see the $(b,plan) subcommand for the text format)."
  in
  Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)

let read_text_file path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with Sys_error msg -> die "cannot read plan file: %s" msg

let plan_of_flag = function
  | None -> None
  | Some path -> (
    match Plan.of_string (read_text_file path) with
    | Ok p -> Some p
    | Error msg -> die "bad plan %s: %s" path msg)

let find_bench name =
  try W.Suites.find name
  with Invalid_argument _ -> (
    match W.Corpus.find_opt name with
    | Some bm -> bm
    | None ->
      die "unknown benchmark '%s' (valid: %s; or a generated corpus program: %s)" name
        (String.concat ", "
           (List.map (fun bm -> bm.W.Suites.bname) (W.Suites.spec @ W.Suites.dacapo)))
        (String.concat ", "
           (List.map
              (fun f -> Printf.sprintf "corpus_%s00..%02d" f.W.Corpus.fname (f.W.Corpus.fcount - 1))
              W.Corpus.families)))

let trace_arg =
  let doc =
    "Append a JSONL trace (inlining decisions, pass timings, compiles, GA generations) to \
     $(docv); '-' streams human-readable events to stderr.  Overrides $(b,INLTUNE_TRACE)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let domains_arg =
  let doc =
    "Bound parallel fitness evaluation to $(docv) domains (>= 1); 1 runs strictly \
     sequentially on the calling domain.  Default: the machine's recommended domain \
     count, capped at 8."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

(* The one shared --domains parser: validate, then set the process-wide
   default so every Pool user — explicit [?domains] thread-through or not —
   is bounded uniformly. *)
let domains_of_flag = function
  | Some d when d < 1 -> die "bad --domains %d: must be >= 1" d
  | d ->
    Option.iter Inltune_support.Pool.set_default_domains d;
    d

let fitness_cache_arg =
  let doc =
    "Persist fitness measurements to $(docv) (append-only JSONL keyed by program, \
     scenario, platform and decision signature) and reload its entries at startup, so \
     repeated tuning runs skip simulations they have already paid for.  Corrupt or \
     truncated lines are skipped with a warning."
  in
  Arg.(value & opt (some string) None & info [ "fitness-cache" ] ~docv:"FILE" ~doc)

let setup_fitness_cache = function
  | None -> ()
  | Some path -> Fitcache.set_file (Some path)

let setup_trace = function
  | Some "-" -> Inltune_obs.Trace.to_channel stderr
  | Some path -> (
    try Inltune_obs.Trace.to_file path
    with Sys_error msg ->
      Printf.eprintf "inltune: cannot open trace file: %s\n" msg;
      exit 1)
  | None -> Inltune_obs.Trace.init_from_env ()

let profile_arg =
  let doc =
    "Enable the hierarchical wall-time profiler and print its table (self vs. cumulative \
     time per span, exact p50/p90/p99) to stderr at exit.  Never perturbs measurements: \
     simulated cycle counts and GA history are bit-identical with or without it.  \
     Overrides $(b,INLTUNE_PROFILE)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let setup_profile = function
  | true ->
    Inltune_obs.Prof.enable ();
    Inltune_obs.Prof.report_at_exit ()
  | false -> Inltune_obs.Prof.init_from_env ()

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    let dump title suite =
      Printf.printf "%s:\n" title;
      List.iter
        (fun bm ->
          let p = W.Suites.program bm in
          Printf.printf "  %-10s %4d methods %5d instrs  %s\n" bm.W.Suites.bname
            (Array.length p.Inltune_jir.Ir.methods)
            (Inltune_jir.Ir.program_instr_count p)
            bm.W.Suites.bdescription)
        suite
    in
    dump "SPECjvm98 (training suite)" W.Suites.spec;
    dump "DaCapo+JBB (test suite)" W.Suites.dacapo
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suites")
    Term.(const run $ const ())

(* --- show ---------------------------------------------------------------- *)

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"Benchmark name")

let show_cmd =
  let run bench full =
    let bm = find_bench bench in
    let p = W.Suites.program bm in
    let cg = Inltune_jir.Callgraph.build p in
    Printf.printf "%s: %s\n" bm.W.Suites.bname bm.W.Suites.bdescription;
    Printf.printf "  methods: %d   classes: %d   call sites: %d   size estimate: %d\n"
      (Array.length p.Inltune_jir.Ir.methods)
      (Array.length p.Inltune_jir.Ir.classes)
      (Inltune_jir.Callgraph.call_site_count p)
      (Inltune_jir.Size.of_program p);
    Printf.printf "  reachable from main: %d methods\n"
      (List.length (Inltune_jir.Callgraph.reachable cg p.Inltune_jir.Ir.main));
    if full then print_string (Inltune_jir.Pp.program_to_string p)
  in
  let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Dump the full JIR") in
  Cmd.v (Cmd.info "show" ~doc:"Describe a benchmark program")
    Term.(const run $ bench_arg $ full_arg)

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let run bench scenario platform hstring iterations planfile trace profile =
    setup_trace trace;
    setup_profile profile;
    let bm = find_bench bench in
    let plat = platform_of_flag platform in
    let scen = scenario_of_flag scenario in
    let heuristic = heuristic_of_flag hstring in
    let plan = plan_of_flag planfile in
    let t = Measure.run ?plan ~iterations ~scenario:scen ~platform:plat ~heuristic bm in
    let d = Measure.run_default ~iterations ~scenario:scen ~platform:plat bm in
    let raw = t.Measure.raw in
    Printf.printf "%s under %s on %s with %s\n" bench scenario platform
      (Heuristic.to_string heuristic);
    Printf.printf "  total:    %10d cycles (%.6f s)  [vs default: %.3f]\n"
      raw.Runner.total_cycles
      (Platform.seconds plat raw.Runner.total_cycles)
      (t.Measure.total /. d.Measure.total);
    Printf.printf "  running:  %10d cycles (%.6f s)  [vs default: %.3f]\n"
      raw.Runner.running_cycles
      (Platform.seconds plat raw.Runner.running_cycles)
      (t.Measure.running /. d.Measure.running);
    Printf.printf "  compile:  %10d cycles   opt-compiled: %d   baseline-compiled: %d\n"
      raw.Runner.first_compile_cycles raw.Runner.opt_compiles raw.Runner.baseline_compiles;
    Printf.printf "  code: %d bytes   icache miss rate: %.4f   checksum: %d\n"
      raw.Runner.code_bytes
      (Float.of_int raw.Runner.icache_misses /. Float.of_int (max 1 raw.Runner.icache_accesses))
      raw.Runner.ret
  in
  let iters = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"VM iterations (>= 2)") in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one benchmark and report times")
    Term.(
      const run $ bench_arg $ scenario_arg $ platform_arg $ heuristic_arg $ iters $ plan_arg
      $ trace_arg $ profile_arg)

(* --- tune ---------------------------------------------------------------- *)

let checkpoint_arg =
  let doc =
    "Append a GA snapshot to $(docv) after every generation (JSONL); a later run can pick \
     up from it with $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Resume the GA from the last valid snapshot in $(docv) (written by $(b,--checkpoint)).  \
     The continued run is deterministic: it produces exactly the result an uninterrupted \
     run would have."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let max_retries_arg =
  let doc =
    "How many times to retry a transiently failing fitness evaluation before the genome is \
     penalized and quarantined."
  in
  Arg.(value & opt int 1 & info [ "max-retries" ] ~docv:"N" ~doc)

(* The --progress reporter: one stderr line per generation with the search
   telemetry (diversity, cache hit rate, pool utilization) and an ETA
   extrapolated from the per-generation wall times so far.  gens + 1 total
   because generation 0 is evaluated too. *)
let progress_reporter ~gens =
  let t0 = Inltune_support.Pool.now () in
  fun (s : Inltune_ga.Evolve.gen_stats) ->
    let total = gens + 1 in
    let finished = min total (s.Inltune_ga.Evolve.g_gen + 1) in
    let elapsed = Inltune_support.Pool.now () -. t0 in
    let eta =
      if finished >= total then 0.0
      else elapsed /. Float.of_int finished *. Float.of_int (total - finished)
    in
    let hit_pct =
      let denom = s.Inltune_ga.Evolve.g_cache_hits + s.Inltune_ga.Evolve.g_evals in
      if denom = 0 then 0.0
      else 100.0 *. Float.of_int s.Inltune_ga.Evolve.g_cache_hits /. Float.of_int denom
    in
    let util =
      let busy = Float.of_int s.Inltune_ga.Evolve.g_busy_ns in
      let idle = Float.of_int s.Inltune_ga.Evolve.g_idle_ns in
      if busy +. idle <= 0.0 then "  - " else Printf.sprintf "%3.0f%%" (100.0 *. busy /. (busy +. idle))
    in
    Printf.eprintf
      "[inltune] gen %2d/%d  best %.4f  mean %.4f  div %.2f  fresh %3d  hit %5.1f%%  quar %2d  \
       stolen %4d  util %s  %5.2fs/gen  eta %.0fs\n%!"
      s.Inltune_ga.Evolve.g_gen gens s.Inltune_ga.Evolve.g_best s.Inltune_ga.Evolve.g_mean
      s.Inltune_ga.Evolve.g_diversity s.Inltune_ga.Evolve.g_fresh hit_pct
      s.Inltune_ga.Evolve.g_quarantined s.Inltune_ga.Evolve.g_stolen util
      s.Inltune_ga.Evolve.g_wall_s eta

let tune_cmd =
  let run scenario pop gens seed max_retries domains fcache checkpoint resume planfile
      tune_passes evolve_policy dataset_file gp_out trace profile progress =
    setup_trace trace;
    setup_profile profile;
    let domains = domains_of_flag domains in
    setup_fitness_cache fcache;
    let id = tuner_scenario_of_flag scenario in
    let budget = { Tuner.pop; gens; seed } in
    let plan = plan_of_flag planfile in
    if tune_passes && Option.is_some plan then
      die "--tune-passes evolves the plan itself; it cannot be combined with --plan";
    if evolve_policy && tune_passes then
      die "--evolve-policy and --tune-passes are different searches; pick one";
    if evolve_policy && Option.is_some plan then
      die "--evolve-policy runs under the default plan; it cannot be combined with --plan";
    let on_generation (p : Inltune_ga.Evolve.progress) =
      Printf.eprintf "[inltune]   gen %2d: best %.4f mean %.4f (%d evals)\n%!"
        p.Inltune_ga.Evolve.generation p.Inltune_ga.Evolve.best_fitness
        p.Inltune_ga.Evolve.mean_fitness p.Inltune_ga.Evolve.evaluations
    in
    (* --progress upgrades the basic per-generation line to the telemetry
       reporter; exactly one of the two prints. *)
    let on_generation = if progress then None else Some on_generation in
    let on_stats = if progress then Some (progress_reporter ~gens) else None in
    let report_ga (ga : Inltune_ga.Evolve.result) =
      Printf.printf "distinct evaluations: %d (cache hits: %d)\n"
        ga.Inltune_ga.Evolve.evaluations ga.Inltune_ga.Evolve.cache_hits;
      let failures = ga.Inltune_ga.Evolve.failures in
      if failures > 0 then
        Printf.printf "evaluation failures: %d (quarantined genotypes: %d)\n" failures
          ga.Inltune_ga.Evolve.quarantined
    in
    if evolve_policy then begin
      let spec = Tuner.spec_of id in
      (* --dataset enables the agreement pre-filter: the flip-oracle labels
         are loaded when the file already exists (policy.dataset_reused) and
         computed — with the file as the resumable journal — when not. *)
      let dataset =
        match dataset_file with
        | None -> None
        | Some path ->
          let cfg =
            {
              P.Dataset.default_config with
              P.Dataset.scenario = spec.Tuner.scenario;
              platform = spec.Tuner.platform;
              goal = spec.Tuner.goal;
            }
          in
          let examples =
            P.Dataset.load_or_generate ~file:path
              ~on_benchmark:(fun b n -> Printf.eprintf "[inltune] labeling %s: %d sites\n%!" b n)
              cfg W.Suites.spec
          in
          Some (P.Dataset.to_training examples)
      in
      let params =
        {
          Gp.Evolve.default_params with
          Gp.Evolve.pop_size = pop;
          generations = gens;
          seed;
          domains;
        }
      in
      let guard = { Gp.Evolve.default_guard with Inltune_ga.Evolve.max_retries } in
      let r =
        Gp.Evolve.run ?on_generation ?on_stats ~guard ?checkpoint ?resume ?dataset
          ~suite:W.Suites.spec ~scenario:spec.Tuner.scenario ~platform:spec.Tuner.platform
          ~goal:spec.Tuner.goal ~params ()
      in
      Printf.printf "scenario: %s\n" spec.Tuner.label;
      (match r.Gp.Evolve.stopped with
      | Some reason -> Printf.printf "search stopped early: %s\n" reason
      | None -> ());
      Printf.printf "best policy: %s\n" (Gp.Tree.to_text r.Gp.Evolve.best);
      Printf.printf "  i.e. %s\n" (Gp.Tree.pretty ~names:P.Features.names r.Gp.Evolve.best);
      Printf.printf "fitness (geomean vs default + parsimony, lower is better): %.4f\n"
        r.Gp.Evolve.best_fitness;
      Printf.printf "distinct evaluations: %d (cache hits: %d)\n" r.Gp.Evolve.evaluations
        r.Gp.Evolve.cache_hits;
      if r.Gp.Evolve.prefilter_candidates > 0 then
        Printf.printf "pre-filter: skipped %d of %d fresh trees (%.0f%% simulation avoidance)\n"
          r.Gp.Evolve.prefilter_skips r.Gp.Evolve.prefilter_candidates
          (100.0
          *. Float.of_int r.Gp.Evolve.prefilter_skips
          /. Float.of_int r.Gp.Evolve.prefilter_candidates);
      if r.Gp.Evolve.failures > 0 then
        Printf.printf "evaluation failures: %d (quarantined genotypes: %d)\n" r.Gp.Evolve.failures
          r.Gp.Evolve.quarantined;
      match gp_out with
      | Some path ->
        Gp.Tree.save path r.Gp.Evolve.best;
        Printf.printf "wrote policy tree to %s\n" path
      | None -> ()
    end
    else if tune_passes then begin
      let o =
        Tuner.tune_plan ~budget ?on_generation ?on_stats ?checkpoint ?resume ~max_retries
          ?domains id
      in
      Printf.printf "scenario: %s\n" o.Tuner.p_spec.Tuner.label;
      (match o.Tuner.p_degraded with
      | Some reason -> Printf.printf "search stopped early: %s\n" reason
      | None -> ());
      Printf.printf "best heuristic: %s\n" (Heuristic.to_string o.Tuner.p_heuristic);
      Printf.printf "best plan:\n%s" (Plan.to_string o.Tuner.p_plan);
      Printf.printf "fitness (geomean vs default, lower is better): %.4f\n" o.Tuner.p_fitness;
      report_ga o.Tuner.p_ga
    end
    else begin
      let o =
        Tuner.tune ~budget ?on_generation ?on_stats ?checkpoint ?resume ~max_retries ?domains
          ?plan id
      in
      Printf.printf "scenario: %s\n" o.Tuner.spec.Tuner.label;
      (match o.Tuner.degraded with
      | Some reason -> Printf.printf "search stopped early: %s\n" reason
      | None -> ());
      Printf.printf "best heuristic: %s\n" (Heuristic.to_string o.Tuner.heuristic);
      Printf.printf "fitness (geomean vs default, lower is better): %.4f\n" o.Tuner.fitness;
      report_ga o.Tuner.ga
    end
  in
  let scenario =
    Arg.(
      value
      & opt string "adapt"
      & info [ "scenario"; "s" ]
          ~doc:"Tuning scenario: adapt, opt:bal, opt:tot, adapt-ppc, opt:bal-ppc")
  in
  let pop = Arg.(value & opt int 16 & info [ "pop" ] ~doc:"GA population size") in
  let gens = Arg.(value & opt int 10 & info [ "generations"; "g" ] ~doc:"GA generations") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"GA random seed") in
  let tune_passes =
    Arg.(
      value & flag
      & info [ "tune-passes" ]
          ~doc:
            "Co-evolve the optimization plan (pass toggles, strengths, payoff-pass order) \
             together with the five heuristic parameters, over the composite plan genome.")
  in
  let evolve_policy =
    Arg.(
      value & flag
      & info [ "evolve-policy" ]
          ~doc:
            "Genetic programming instead of parameter tuning: evolve the inlining rule's \
             structure as a typed expression tree over the call-site features, rather than \
             the five thresholds of the fixed Fig. 3/4 rule.")
  in
  let dataset_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "dataset" ] ~docv:"FILE"
          ~doc:
            "Flip-oracle dataset (see the $(b,dataset) subcommand) enabling the \
             agreement pre-filter under $(b,--evolve-policy): trees whose label agreement \
             trails the current elite's are surrogate-scored without simulation.  Loaded \
             when the file exists; labeled from scratch (resumably) when not.")
  in
  let gp_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "gp-out" ] ~docv:"FILE"
          ~doc:"Write the best evolved policy tree to $(docv) (inltune-gp v1 format).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Live search telemetry on stderr: one line per generation with best/mean fitness, \
             population diversity, fresh evaluations, cache hit rate, quarantine size, pool \
             steal counts and utilization, per-generation wall time, and an ETA.")
  in
  Cmd.v (Cmd.info "tune" ~doc:"GA-tune the inlining heuristic for a scenario")
    Term.(
      const run $ scenario $ pop $ gens $ seed $ max_retries_arg $ domains_arg
      $ fitness_cache_arg $ checkpoint_arg $ resume_arg $ plan_arg $ tune_passes
      $ evolve_policy $ dataset_file $ gp_out $ trace_arg $ profile_arg $ progress)

(* --- export / run-file ----------------------------------------------------- *)

let export_cmd =
  let run bench file =
    let bm = find_bench bench in
    let text = Inltune_jir.Text.to_string (W.Suites.program bm) in
    match file with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  let file =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output file (default stdout)")
  in
  Cmd.v (Cmd.info "export" ~doc:"Serialize a benchmark to the JIR text format")
    Term.(const run $ bench_arg $ file)

let run_file_cmd =
  let run path scenario platform hstring planfile trace =
    setup_trace trace;
    let ic = open_in path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    match Inltune_jir.Text.parse src with
    | Error e ->
      Printf.eprintf "%s: line %d: %s\n" path e.Inltune_jir.Text.line e.Inltune_jir.Text.msg;
      exit 1
    | Ok p ->
      let plat = platform_of_flag platform in
      let scen = scenario_of_flag scenario in
      let heuristic = heuristic_of_flag hstring in
      let plan = plan_of_flag planfile in
      let m = Runner.measure (Machine.config ?plan scen heuristic) plat p in
      Printf.printf "%s under %s on %s with %s\n" p.Inltune_jir.Ir.pname scenario platform
        (Heuristic.to_string heuristic);
      Printf.printf "  total: %d cycles   running: %d cycles   compile: %d cycles\n"
        m.Runner.total_cycles m.Runner.running_cycles m.Runner.first_compile_cycles;
      Printf.printf "  result: %d\n" m.Runner.ret
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JIR text file")
  in
  Cmd.v (Cmd.info "run-file" ~doc:"Simulate a program written in the JIR text format")
    Term.(const run $ path $ scenario_arg $ platform_arg $ heuristic_arg $ plan_arg $ trace_arg)

(* --- plan ------------------------------------------------------------------- *)

let plan_cmd =
  let run file =
    match file with
    | None -> print_string (Plan.to_string Plan.default)
    | Some path -> (
      match Plan.of_string (read_text_file path) with
      | Ok p -> print_string (Plan.to_string p)
      | Error msg -> die "bad plan %s: %s" path msg)
  in
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Plan file to validate and reprint in canonical form.  Without it, print the \
             built-in default plan (the historical pass schedule).")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Print the default optimization plan, or validate and canonicalize a plan file")
    Term.(const run $ file)

(* --- knapsack --------------------------------------------------------------- *)

let knapsack_cmd =
  let run bench platform limit =
    let bm = find_bench bench in
    let plat = platform_of_flag platform in
    let plan, kn = Knapsack.measure ~expansion_limit:limit plat bm in
    let off = Measure.run_no_inlining ~scenario:Machine.Opt ~platform:plat bm in
    let def = Measure.run_default ~scenario:Machine.Opt ~platform:plat bm in
    Printf.printf "knapsack oracle on %s (growth budget %.0f%%):\n" bench (100.0 *. limit);
    Printf.printf "  edges: %d selected of %d candidates; growth %d / %d size units\n"
      plan.Knapsack.chosen plan.Knapsack.candidates plan.Knapsack.spent plan.Knapsack.budget;
    Printf.printf "  running: %.0f cycles (no-inline %.0f, default heuristic %.0f)\n"
      kn.Measure.running off.Measure.running def.Measure.running;
    Printf.printf "  vs no-inline: %.3f   vs default: %.3f\n"
      (kn.Measure.running /. off.Measure.running)
      (kn.Measure.running /. def.Measure.running)
  in
  let limit =
    Arg.(value & opt float 0.10 & info [ "limit" ] ~doc:"Code-growth budget (fraction)")
  in
  Cmd.v
    (Cmd.info "knapsack" ~doc:"Run the Arnold et al. knapsack-oracle inlining baseline")
    Term.(const run $ bench_arg $ platform_arg $ limit)

(* --- search ------------------------------------------------------------------ *)

let search_cmd =
  let run algo budget seed =
    let suite = W.Suites.spec in
    let fitness =
      Objective.genome_fitness ~suite ~scenario:Machine.Opt ~platform:Platform.x86
        ~goal:Objective.Total
    in
    let best, fit, evals =
      match algo with
      | "hill" ->
        let r = Inltune_ga.Localsearch.hill_climb ~spec:Params.genome_spec ~budget ~seed ~fitness () in
        (r.Inltune_ga.Localsearch.best, r.Inltune_ga.Localsearch.best_fitness,
         r.Inltune_ga.Localsearch.evaluations)
      | "anneal" ->
        let r = Inltune_ga.Localsearch.anneal ~spec:Params.genome_spec ~budget ~seed ~fitness () in
        (r.Inltune_ga.Localsearch.best, r.Inltune_ga.Localsearch.best_fitness,
         r.Inltune_ga.Localsearch.evaluations)
      | "random" ->
        let b, f = Inltune_ga.Evolve.random_search ~spec:Params.genome_spec ~budget ~seed ~fitness () in
        (b, f, budget)
      | s -> die "unknown searcher '%s' (valid: hill, anneal, random)" s
    in
    Printf.printf "%s search: best %s  fitness %.4f  (%d evaluations)\n" algo
      (Heuristic.to_string (Heuristic.of_array best))
      fit evals
  in
  let algo =
    Arg.(value & opt string "hill" & info [ "algo"; "a" ] ~doc:"hill, anneal, or random")
  in
  let budget = Arg.(value & opt int 80 & info [ "budget" ] ~doc:"Evaluation budget") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed") in
  Cmd.v
    (Cmd.info "search" ~doc:"Tune with a local-search baseline instead of the GA")
    Term.(const run $ algo $ budget $ seed)

(* --- trace-summary --------------------------------------------------------- *)

let trace_summary_cmd =
  let run path folded =
    (* A string positional, not [Arg.file]: a missing trace must follow the
       CLI error convention (one stderr line, exit 2), not cmdliner's parse
       error and exit 124. *)
    let records, malformed =
      try Inltune_obs.Summary.load_file path
      with Sys_error msg -> die "cannot read trace file: %s" msg
    in
    if malformed > 0 then
      Printf.eprintf "warning: skipped %d malformed line(s) in %s\n%!" malformed path;
    if folded then
      List.iter print_endline (Inltune_obs.Summary.folded records)
    else begin
      (* Counter-only traces (every sink flushes metric snapshots on close) must
         say so explicitly, not render a counters table that looks like a run. *)
      if not (Inltune_obs.Summary.has_events records) then
        Printf.printf "no trace events in %s%s\n" path
          (if records = [] then "" else " (counters only)");
      match Inltune_obs.Summary.tables records with
      | [] -> ()
      | tables ->
        if not (Inltune_obs.Summary.has_events records) then print_newline ();
        List.iteri
          (fun i t ->
            if i > 0 then print_newline ();
            Inltune_support.Table.print t)
          tables
    end
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file")
  in
  let folded =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "Emit folded-stack lines ('path;to;span <self-µs>') from the trace's profile \
             nodes instead of tables; pipe into flamegraph.pl or inferno-flamegraph.")
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Aggregate a JSONL trace (from --trace or INLTUNE_TRACE) into report tables")
    Term.(const run $ path $ folded)

(* --- learned policies ------------------------------------------------------ *)

let suite_of_flag = function
  | "spec" -> W.Suites.spec
  | "dacapo" -> W.Suites.dacapo
  | "all" -> W.Suites.all
  | s -> die "unknown suite '%s' (valid: spec, dacapo, all)" s

let benches_of_flags suite bench_csv =
  match bench_csv with
  | "" -> suite_of_flag suite
  | csv -> List.map find_bench (String.split_on_char ',' csv)

let goal_of_flag s =
  try Objective.goal_of_string s
  with Invalid_argument _ -> die "unknown goal '%s' (valid: running, total, balance)" s

let load_policy path =
  match P.Store.load path with
  | Ok store -> store
  | Error msg -> die "bad policy file %s: %s" path msg

let features_cmd =
  let run bench =
    let bm = find_bench bench in
    let p = W.Suites.program bm in
    let ctx = P.Features.make_ctx p in
    let sites = P.Features.of_program ctx p in
    Printf.printf "# %s\n" (String.concat " " (Array.to_list P.Features.names));
    Array.iter
      (fun ((s : Policy.site), x) ->
        Printf.printf "%s -> %s : %s\n"
          p.Inltune_jir.Ir.methods.(s.Policy.owner).Inltune_jir.Ir.mname
          p.Inltune_jir.Ir.methods.(s.Policy.callee).Inltune_jir.Ir.mname
          (P.Features.vector_to_string x))
      sites
  in
  Cmd.v
    (Cmd.info "features"
       ~doc:"Dump the feature vector of every static call site of a benchmark")
    Term.(const run $ bench_arg)

let dataset_cmd =
  let run out suite bench_csv scenario platform hstring goal max_sites iterations
      max_retries domains trace =
    setup_trace trace;
    (* The flip-oracle labeling loop is sequential by design (the output file
       is append-ordered and resumable), but its measurements share the
       process-wide pool default with every other subcommand — validate and
       apply the bound here too so the flag behaves uniformly. *)
    let (_ : int option) = domains_of_flag domains in
    let cfg =
      {
        P.Dataset.scenario = scenario_of_flag scenario;
        platform = platform_of_flag platform;
        heuristic = heuristic_of_flag hstring;
        goal = goal_of_flag goal;
        iterations;
        max_sites;
        max_retries;
      }
    in
    let benches = benches_of_flags suite bench_csv in
    let examples =
      P.Dataset.generate ~resume:out
        ~on_benchmark:(fun b n -> Printf.eprintf "[inltune] labeling %s: %d sites\n%!" b n)
        cfg benches
    in
    let flips = List.length (List.filter (fun e -> e.P.Dataset.x_label <> e.P.Dataset.x_base) examples) in
    Printf.printf "%s: %d examples (%d oracle flips) over %d benchmarks\n" out
      (List.length examples) flips (List.length benches)
  in
  let out =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Output JSONL dataset.  Append-only and resumable: already-labeled sites in \
               the file are kept, only missing ones are measured.")
  in
  let suite =
    Arg.(value & opt string "spec" & info [ "suite" ] ~doc:"Benchmark suite: spec, dacapo, or all")
  in
  let bench_csv =
    Arg.(value & opt string "" & info [ "bench" ] ~docv:"NAMES"
         ~doc:"Comma-separated benchmark names (overrides --suite)")
  in
  let goal =
    Arg.(value & opt string "total" & info [ "goal" ] ~doc:"Oracle metric: running, total, or balance")
  in
  let max_sites =
    Arg.(value & opt int 20 & info [ "max-sites" ] ~docv:"N"
         ~doc:"Flip measurements per benchmark (0 = every site)")
  in
  let iters = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"VM iterations per measurement") in
  Cmd.v
    (Cmd.info "dataset"
       ~doc:"Label call-site inlining decisions with the flip oracle (resumable)")
    Term.(
      const run $ out $ suite $ bench_csv $ scenario_arg $ platform_arg $ heuristic_arg
      $ goal $ max_sites $ iters $ max_retries_arg $ domains_arg $ trace_arg)

let train_policy_cmd =
  let run data out kind hstring max_depth min_leaf holdout =
    let store =
      match kind with
      | "threshold" -> P.Store.Threshold (heuristic_of_flag hstring)
      | "tree" -> (
        match data with
        | None -> die "training a tree needs a dataset (give the JSONL file as DATASET)"
        | Some path ->
          let examples, bad = P.Dataset.load path in
          if bad > 0 then
            Printf.eprintf "warning: skipped %d malformed line(s) in %s\n%!" bad path;
          if examples = [] then die "dataset %s holds no examples" path;
          let pairs = P.Dataset.to_training examples in
          let train_set, test_set =
            if holdout >= 2 && Array.length pairs >= holdout then P.Cart.split ~k:holdout pairs
            else (pairs, [||])
          in
          let params = { P.Cart.default_params with P.Cart.max_depth; min_leaf } in
          let tree = P.Cart.train ~params train_set in
          Printf.printf "examples: %d train / %d test\n" (Array.length train_set)
            (Array.length test_set);
          Printf.printf "tree: %d nodes, depth %d\n" (P.Dtree.size tree) (P.Dtree.depth tree);
          Printf.printf "train accuracy: %.3f\n" (P.Cart.accuracy tree train_set);
          if Array.length test_set > 0 then
            Printf.printf "test accuracy:  %.3f\n" (P.Cart.accuracy tree test_set);
          print_string (P.Dtree.pretty ~names:P.Features.names tree);
          P.Store.Tree tree)
      | s -> die "unknown policy kind '%s' (valid: tree, threshold)" s
    in
    P.Store.save out store;
    Printf.printf "wrote %s policy to %s\n" (P.Store.kind_name store) out
  in
  let data =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"DATASET"
         ~doc:"JSONL dataset from the $(b,dataset) command (required for --kind tree)")
  in
  let out =
    Arg.(value & opt string "policy.txt" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output policy file")
  in
  let kind =
    Arg.(value & opt string "tree" & info [ "kind" ] ~doc:"Policy kind: tree or threshold")
  in
  let max_depth = Arg.(value & opt int 6 & info [ "max-depth" ] ~doc:"CART depth limit") in
  let min_leaf = Arg.(value & opt int 3 & info [ "min-leaf" ] ~doc:"CART minimum leaf size") in
  let holdout =
    Arg.(value & opt int 4 & info [ "holdout" ] ~docv:"K"
         ~doc:"Hold out every K-th example as the test split (0 disables)")
  in
  Cmd.v
    (Cmd.info "train-policy" ~doc:"Train a decision-tree inlining policy from a dataset")
    Term.(const run $ data $ out $ kind $ heuristic_arg $ max_depth $ min_leaf $ holdout)

let eval_policy_cmd =
  let run path print_only suite bench_csv scenario platform iterations no_tuned tuned_params
      pop gens seed domains trace =
    setup_trace trace;
    let domains = domains_of_flag domains in
    let store = load_policy path in
    if print_only then print_string (P.Store.to_string store)
    else begin
      let scen = scenario_of_flag scenario in
      let plat = platform_of_flag platform in
      let benches = benches_of_flags suite bench_csv in
      let tuned =
        if no_tuned then None
        else if tuned_params <> "" then Some (heuristic_of_flag tuned_params)
        else begin
          Printf.eprintf "[inltune] GA-tuning the comparison heuristic (use --no-tuned to skip)\n%!";
          let budget = { Tuner.pop; gens; seed } in
          let o = Tuner.tune ~budget ?domains Tuner.Opt_tot_x86 in
          Some o.Tuner.heuristic
        end
      in
      let report =
        P.Evaluate.compare ~iterations ?tuned ~scenario:scen ~platform:plat store benches
      in
      Inltune_support.Table.print (P.Evaluate.table report)
    end
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY" ~doc:"Stored policy file")
  in
  let print_only =
    Arg.(value & flag & info [ "print" ]
         ~doc:"Parse, validate, and reprint the policy in canonical form; no simulation")
  in
  let suite =
    Arg.(value & opt string "dacapo" & info [ "suite" ] ~doc:"Benchmark suite: spec, dacapo, or all")
  in
  let bench_csv =
    Arg.(value & opt string "" & info [ "bench" ] ~docv:"NAMES"
         ~doc:"Comma-separated benchmark names (overrides --suite)")
  in
  let iters = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"VM iterations (>= 2)") in
  let no_tuned =
    Arg.(value & flag & info [ "no-tuned" ] ~doc:"Skip the GA-tuned comparison column")
  in
  let tuned_params =
    Arg.(value & opt string "" & info [ "tuned" ] ~docv:"PARAMS"
         ~doc:"Use this heuristic for the tuned column instead of running the GA")
  in
  let pop = Arg.(value & opt int 16 & info [ "pop" ] ~doc:"GA population size") in
  let gens = Arg.(value & opt int 10 & info [ "generations"; "g" ] ~doc:"GA generations") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"GA random seed") in
  Cmd.v
    (Cmd.info "eval-policy"
       ~doc:"Run a stored policy on a suite and compare default vs GA-tuned vs learned")
    Term.(
      const run $ path $ print_only $ suite $ bench_csv $ scenario_arg $ platform_arg $ iters
      $ no_tuned $ tuned_params $ pop $ gens $ seed $ domains_arg $ trace_arg)

(* --- gp ------------------------------------------------------------------- *)

let load_gp_tree path =
  match Gp.Tree.load ~dim:P.Features.dim path with
  | Ok t -> t
  | Error msg -> die "bad policy tree %s: %s" path msg

let gp_print_cmd =
  let run path pretty =
    let t = load_gp_tree path in
    if pretty then print_endline (Gp.Tree.pretty ~names:P.Features.names t)
    else print_string (Gp.Tree.to_string t)
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TREE"
         ~doc:"Policy tree file (inltune-gp v1)")
  in
  let pretty =
    Arg.(value & flag & info [ "pretty" ]
         ~doc:"Render as an infix expression over feature names instead of the canonical form")
  in
  Cmd.v
    (Cmd.info "print"
       ~doc:"Parse, validate, and reprint an evolved policy tree in canonical form")
    Term.(const run $ path $ pretty)

let gp_eval_cmd =
  let run path suite bench_csv scenario platform iterations fcache domains trace =
    setup_trace trace;
    let (_ : int option) = domains_of_flag domains in
    setup_fitness_cache fcache;
    let tree = load_gp_tree path in
    let scen = scenario_of_flag scenario in
    let plat = platform_of_flag platform in
    let benches = benches_of_flags suite bench_csv in
    let report =
      P.Evaluate.compare_many ~iterations ~scenario:scen ~platform:plat
        [ ("gp", fun bm -> Gp.Fitness.measure ~iterations ~scenario:scen ~platform:plat tree bm) ]
        benches
    in
    Inltune_support.Table.print (P.Evaluate.many_table report)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TREE"
         ~doc:"Policy tree file (inltune-gp v1)")
  in
  let suite =
    Arg.(value & opt string "dacapo" & info [ "suite" ] ~doc:"Benchmark suite: spec, dacapo, or all")
  in
  let bench_csv =
    Arg.(value & opt string "" & info [ "bench" ] ~docv:"NAMES"
         ~doc:"Comma-separated benchmark names (overrides --suite)")
  in
  let iters = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"VM iterations per measurement") in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Run an evolved policy tree on a suite and report time ratios vs default")
    Term.(
      const run $ path $ suite $ bench_csv $ scenario_arg $ platform_arg $ iters
      $ fitness_cache_arg $ domains_arg $ trace_arg)

let gp_cmd =
  Cmd.group
    (Cmd.info "gp" ~doc:"Inspect and evaluate evolved policy trees (see tune --evolve-policy)")
    [ gp_print_cmd; gp_eval_cmd ]

(* --- experiment ----------------------------------------------------------- *)

(* The learned-policy row lives here rather than in Experiments because the
   policy library sits above the core library in the build: train on
   SPECjvm98 (GA + flip-oracle dataset + CART), evaluate on unseen
   DaCapo+JBB against the default and GA-tuned heuristics. *)
let policy_experiment ~verbose ~budget ?domains () =
  let say fmt = Printf.ksprintf (fun s -> if verbose then Printf.eprintf "%s%!" s) fmt in
  say "[inltune] GA-tuning Opt:Tot on SPECjvm98\n";
  let o = Tuner.tune ~budget ?domains Tuner.Opt_tot_x86 in
  say "[inltune] tuned heuristic: %s\n" (Heuristic.to_string o.Tuner.heuristic);
  let cfg = { P.Dataset.default_config with P.Dataset.max_sites = 12 } in
  let examples =
    P.Dataset.generate
      ~on_benchmark:(fun b n -> say "[inltune] labeling %s: %d sites\n" b n)
      cfg W.Suites.spec
  in
  let tree = P.Cart.train (P.Dataset.to_training examples) in
  say "[inltune] trained tree: %d nodes, depth %d\n" (P.Dtree.size tree) (P.Dtree.depth tree);
  let report =
    P.Evaluate.compare ~tuned:o.Tuner.heuristic ~scenario:Machine.Opt ~platform:Platform.x86
      (P.Store.Tree tree) W.Suites.dacapo
  in
  Inltune_support.Table.print (P.Evaluate.table report)

let experiment_cmd =
  let run id pop gens seed quiet max_retries domains fcache checkpoint resume trace =
    setup_trace trace;
    let domains = domains_of_flag domains in
    setup_fitness_cache fcache;
    let budget = { Tuner.pop; gens; seed } in
    if id = "policy" then policy_experiment ~verbose:(not quiet) ~budget ?domains ()
    else begin
      (* One experiment tunes several scenarios, so the checkpoint/resume paths
         here are bases: each GA run appends ".<scenario-slug>". *)
      let ctx =
        Experiments.make_ctx ~verbose:(not quiet) ~budget ?checkpoint ?resume ~max_retries
          ?domains ()
      in
      Experiments.run_one ctx id
    end
  in
  let id =
    Arg.(
      required
      & pos 0 (some (Arg.enum (List.map (fun s -> (s, s)) (Experiments.known @ [ "policy" ]))))
          None
      & info [] ~docv:"EXPERIMENT"
          ~doc:"One of: table1 fig1 fig2 table4 fig5..fig10 table5 sweep policy all")
  in
  let pop = Arg.(value & opt int 16 & info [ "pop" ] ~doc:"GA population size") in
  let gens = Arg.(value & opt int 10 & info [ "generations"; "g" ] ~doc:"GA generations") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"GA random seed") in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress GA progress on stderr") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper")
    Term.(
      const run $ id $ pop $ gens $ seed $ quiet $ max_retries_arg $ domains_arg
      $ fitness_cache_arg $ checkpoint_arg $ resume_arg $ trace_arg)

(* --- serve / client ------------------------------------------------------- *)

module Server = Inltune_serve.Server
module Sproto = Inltune_serve.Proto
module Sclient = Inltune_serve.Client
module J = Inltune_obs.Json

let socket_arg =
  let doc = "Unix socket path to listen/connect on." in
  Arg.(value & opt string "inltune.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Listen/connect on 127.0.0.1:$(docv) instead of a Unix socket." in
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)

let endpoint_of_flags socket port =
  if port > 0 then Sproto.Tcp port
  else if socket <> "" then Sproto.Unix_path socket
  else die "need --socket PATH or --port N"

let serve_cmd =
  let d = Server.default_config in
  let permits =
    Arg.(value & opt int d.Server.permits
         & info [ "permits" ] ~docv:"N" ~doc:"Concurrently executing requests.")
  in
  let queue =
    Arg.(value & opt int d.Server.queue_cap
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue bound; requests beyond it are shed with an \
                   $(b,overloaded) reply.")
  in
  let quota_rate =
    Arg.(value & opt float d.Server.quota_rate
         & info [ "quota-rate" ] ~docv:"R"
             ~doc:"Per-tenant request rate (requests/second); <= 0 disables quotas.")
  in
  let quota_burst =
    Arg.(value & opt float d.Server.quota_burst
         & info [ "quota-burst" ] ~docv:"B" ~doc:"Per-tenant burst size.")
  in
  let deadline_ms =
    Arg.(value & opt int d.Server.default_deadline_ms
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline applied when a request carries none; 0 \
                   means none.")
  in
  let degrade_after =
    Arg.(value & opt int d.Server.degrade_after
         & info [ "degrade-after" ] ~docv:"N"
             ~doc:"Pressure events (sheds + failures) within the window that switch the \
                   daemon to degraded, cache-only mode.")
  in
  let cooldown =
    Arg.(value & opt float d.Server.cooldown_s
         & info [ "cooldown" ] ~docv:"S"
             ~doc:"Seconds without pressure before leaving degraded mode.")
  in
  let drain =
    Arg.(value & opt float d.Server.drain_timeout_s
         & info [ "drain-timeout" ] ~docv:"S"
             ~doc:"Bound on draining in-flight work at SIGTERM.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress lifecycle notes on stderr.")
  in
  let run socket port permits queue quota_rate quota_burst deadline_ms max_retries
      degrade_after cooldown drain quiet domains fitness_cache trace =
    ignore (domains_of_flag domains);
    setup_trace trace;
    setup_fitness_cache fitness_cache;
    let config =
      {
        Server.default_config with
        Server.permits;
        queue_cap = queue;
        quota_rate;
        quota_burst;
        default_deadline_ms = deadline_ms;
        max_retries;
        degrade_after;
        cooldown_s = cooldown;
        drain_timeout_s = drain;
        quiet;
      }
    in
    Server.run ~config (endpoint_of_flags socket port)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning daemon: accept measure/tune requests from concurrent clients \
          over a line-delimited JSON protocol, multiplexed onto one shared evaluation \
          pool and fitness cache")
    Term.(
      const run $ socket_arg $ port_arg $ permits $ queue $ quota_rate $ quota_burst
      $ deadline_ms $ max_retries_arg $ degrade_after $ cooldown $ drain $ quiet
      $ domains_arg $ fitness_cache_arg $ trace_arg)

let tenant_arg =
  let doc = "Tenant name for quotas and cache attribution." in
  Arg.(value & opt string "anon" & info [ "tenant" ] ~docv:"NAME" ~doc)

let reqid_arg =
  let doc = "Idempotency id: retrying the same id replays the original reply." in
  Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)

let req_deadline_arg =
  let doc = "Per-request deadline in milliseconds (0 = none)." in
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let client_timeout_arg =
  let doc = "Client-side seconds to wait for the reply." in
  Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"S" ~doc)

let base_request_fields ~tenant ~id ~deadline_ms op =
  [ ("op", J.Str op); ("tenant", J.Str tenant) ]
  @ (match id with Some i -> [ ("id", J.Str i) ] | None -> [])
  @
  if deadline_ms > 0 then [ ("deadline_ms", J.Num (float_of_int deadline_ms)) ] else []

(* The client prints the raw reply line and exits 0 for any reply — the
   reply's "status" field is the protocol-level outcome.  Exit 1 means no
   reply (connection refused, timeout, server gone). *)
let client_rpc endpoint timeout fields =
  match Sclient.rpc ~timeout_s:timeout endpoint (J.encode (J.Obj fields)) with
  | Ok reply -> print_endline reply
  | Error e ->
    Printf.eprintf "inltune client: %s\n%!" e;
    exit 1

let client_ping_cmd =
  let run socket port timeout =
    client_rpc (endpoint_of_flags socket port) timeout [ ("op", J.Str "ping") ]
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Liveness check")
    Term.(const run $ socket_arg $ port_arg $ client_timeout_arg)

let client_stats_cmd =
  let run socket port timeout =
    client_rpc (endpoint_of_flags socket port) timeout [ ("op", J.Str "stats") ]
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Daemon counters and mode snapshot")
    Term.(const run $ socket_arg $ port_arg $ client_timeout_arg)

let client_measure_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"Benchmark name")
  in
  let iters = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"VM iterations") in
  let run socket port timeout tenant id deadline_ms bench scenario platform hstring iters =
    client_rpc (endpoint_of_flags socket port) timeout
      (base_request_fields ~tenant ~id ~deadline_ms "measure"
      @ [
          ("bench", J.Str bench);
          ("scenario", J.Str scenario);
          ("platform", J.Str platform);
          ("heuristic", J.Str hstring);
          ("iterations", J.Num (float_of_int iters));
        ])
  in
  Cmd.v
    (Cmd.info "measure" ~doc:"Measure one benchmark under a heuristic via the daemon")
    Term.(
      const run $ socket_arg $ port_arg $ client_timeout_arg $ tenant_arg $ reqid_arg
      $ req_deadline_arg $ bench $ scenario_arg $ platform_arg $ heuristic_arg $ iters)

let client_tune_cmd =
  let scenario =
    let doc =
      Printf.sprintf "Tuning scenario: %s." (String.concat ", " Tuner.scenario_names)
    in
    Arg.(value & opt string "opt:tot" & info [ "scenario"; "s" ] ~docv:"SCENARIO" ~doc)
  in
  let pop = Arg.(value & opt int 8 & info [ "pop" ] ~doc:"GA population size") in
  let gens = Arg.(value & opt int 3 & info [ "generations"; "g" ] ~doc:"GA generations") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"GA random seed") in
  let suite =
    Arg.(value & opt string ""
         & info [ "bench" ] ~docv:"NAMES"
             ~doc:"Comma-separated training benchmarks (default: the full SPEC suite).")
  in
  let run socket port timeout tenant id deadline_ms scenario pop gens seed suite =
    let suite_field =
      match String.split_on_char ',' suite |> List.filter (fun s -> String.trim s <> "") with
      | [] -> []
      | names -> [ ("suite", J.List (List.map (fun n -> J.Str (String.trim n)) names)) ]
    in
    client_rpc (endpoint_of_flags socket port) timeout
      (base_request_fields ~tenant ~id ~deadline_ms "tune"
      @ [
          ("scenario", J.Str scenario);
          ("pop", J.Num (float_of_int pop));
          ("gens", J.Num (float_of_int gens));
          ("seed", J.Num (float_of_int seed));
        ]
      @ suite_field)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"GA-tune a scenario via the daemon")
    Term.(
      const run $ socket_arg $ port_arg $ client_timeout_arg $ tenant_arg $ reqid_arg
      $ req_deadline_arg $ scenario $ pop $ gens $ seed $ suite)

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running inltune serve daemon")
    [ client_ping_cmd; client_stats_cmd; client_measure_cmd; client_tune_cmd ]

let main_cmd =
  let doc = "GA-tuned inlining heuristics for a dynamic compiler (SC'05 reproduction)" in
  Cmd.group (Cmd.info "inltune" ~version:"1.0.0" ~doc)
    [
      list_cmd; show_cmd; run_cmd; tune_cmd; plan_cmd; experiment_cmd; export_cmd;
      run_file_cmd; knapsack_cmd; search_cmd; trace_summary_cmd; features_cmd; dataset_cmd;
      train_policy_cmd; eval_policy_cmd; gp_cmd; serve_cmd; client_cmd;
    ]

let () =
  (match Inltune_resilience.Faultinject.init_from_env () with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "inltune: bad INLTUNE_FAULTS: %s\n%!" msg;
    exit 2);
  exit (Cmd.eval main_cmd)
