module Prof = Inltune_obs.Prof
module Metric = Inltune_obs.Metric
open Inltune_core
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

(* The profiler's two contracts: span trees are deterministic in everything
   but wall time (same shape and call counts at --domains 1 and 4), and
   profiling is pure observation (measurements and GA history are
   bit-identical whether it is on or off). *)

(* Leave the profiler exactly as we found it, whatever a test does. *)
let with_prof f =
  Fun.protect
    ~finally:(fun () ->
      Prof.disable ();
      Prof.reset ())
    f

let busy () = ignore (Sys.opaque_identity (Array.init 20_000 Fun.id))

(* --- span mechanics --- *)

let test_span_nesting_and_order () =
  with_prof (fun () ->
      Prof.enable ();
      Prof.reset ();
      Prof.span "a" (fun () ->
          Prof.span "b" (fun () -> busy ());
          Prof.span "b" (fun () -> busy ()));
      Prof.span "a" (fun () -> busy ());
      let shape =
        List.map (fun n -> (n.Prof.n_path, n.Prof.n_depth, n.Prof.n_calls)) (Prof.snapshot ())
      in
      Alcotest.(check (list (triple string int int)))
        "paths in tree order, calls accumulated"
        [ ("a", 0, 2); ("a;b", 1, 2) ]
        shape)

let test_self_time_vs_cumulative () =
  with_prof (fun () ->
      Prof.enable ();
      Prof.reset ();
      Prof.span "outer" (fun () ->
          busy ();
          Prof.span "inner" (fun () -> busy ()));
      match Prof.snapshot () with
      | [ outer; inner ] ->
        Alcotest.(check string) "outer first" "outer" outer.Prof.n_path;
        Alcotest.(check bool) "self <= total" true (outer.Prof.n_self_s <= outer.Prof.n_total_s);
        Alcotest.(check (float 1e-9)) "outer self = total - inner"
          (outer.Prof.n_total_s -. inner.Prof.n_total_s)
          outer.Prof.n_self_s;
        Alcotest.(check (float 1e-9)) "leaf self = leaf total" inner.Prof.n_total_s
          inner.Prof.n_self_s;
        Alcotest.(check bool) "percentiles ordered" true
          (outer.Prof.n_p50_s <= outer.Prof.n_p90_s
          && outer.Prof.n_p90_s <= outer.Prof.n_p99_s
          && outer.Prof.n_p99_s <= outer.Prof.n_max_s)
      | nodes -> Alcotest.failf "expected 2 nodes, got %d" (List.length nodes))

let test_disabled_span_is_passthrough () =
  with_prof (fun () ->
      Prof.disable ();
      Prof.reset ();
      let r = Prof.span "ghost" ~on_time:(fun _ -> Alcotest.fail "on_time while disabled") (fun () -> 11) in
      Alcotest.(check int) "result passes through" 11 r;
      Alcotest.(check int) "nothing recorded" 0 (List.length (Prof.snapshot ())))

let test_span_exception_safe () =
  with_prof (fun () ->
      Prof.enable ();
      Prof.reset ();
      (try Prof.span "boom" (fun () -> failwith "boom") with Failure _ -> ());
      Prof.span "after" (fun () -> busy ());
      match Prof.snapshot () with
      | [ n ] ->
        (* The aborted span is dropped AND the path was restored: "after" is
           a root, not a child of "boom". *)
        Alcotest.(check string) "only the clean span" "after" n.Prof.n_path;
        Alcotest.(check int) "at root depth" 0 n.Prof.n_depth
      | nodes -> Alcotest.failf "expected 1 node, got %d" (List.length nodes))

let test_on_time_receives_duration () =
  with_prof (fun () ->
      Prof.enable ();
      Prof.reset ();
      let got = ref nan in
      Prof.span "timed" ~on_time:(fun dt -> got := dt) (fun () -> busy ());
      Alcotest.(check bool) "duration reported" true (Float.is_finite !got && !got >= 0.0))

let test_folded_matches_snapshot () =
  with_prof (fun () ->
      Prof.enable ();
      Prof.reset ();
      Prof.span "root" (fun () ->
          busy ();
          Prof.span "leaf" (fun () -> busy ()));
      let paths = List.map (fun n -> n.Prof.n_path) (Prof.snapshot ()) in
      let lines = Prof.folded () in
      Alcotest.(check bool) "busy work shows up" true (List.length lines > 0);
      List.iter
        (fun line ->
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "no separator in %S" line
          | Some i ->
            let path = String.sub line 0 i in
            let us = String.sub line (i + 1) (String.length line - i - 1) in
            Alcotest.(check bool) ("known path: " ^ path) true (List.mem path paths);
            Alcotest.(check bool) ("positive self us: " ^ us) true (int_of_string us > 0))
        lines)

(* --- determinism across domain counts --- *)

let bm_compress = W.Suites.find "compress"

let budget = { Tuner.pop = 6; gens = 2; seed = 11 }

(* Counters that read clocks or depend on work-stealing order legitimately
   differ between runs; everything else must match exactly. *)
let deterministic_counters () =
  List.filter
    (fun (name, _) ->
      not (String.starts_with ~prefix:"pool." name)
      && not (String.ends_with ~suffix:"_ns" name))
    (Metric.counters_snapshot ())

let with_cold_fitcache f =
  Fitcache.set_enabled false;
  Fitcache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Fitcache.set_enabled true;
      Fitcache.clear ())
    f

let test_profile_deterministic_across_domains () =
  with_prof (fun () ->
      with_cold_fitcache (fun () ->
          (* Warm the memoized default baselines first so neither run pays
             (and profiles) them. *)
          ignore (Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm_compress);
          let run domains =
            Metric.reset_all ();
            Prof.reset ();
            Prof.enable ();
            let o = Tuner.tune ~budget ~suite:[ bm_compress ] ~domains Tuner.Opt_bal_x86 in
            Prof.disable ();
            let shape =
              List.map
                (fun n -> (n.Prof.n_path, n.Prof.n_label, n.Prof.n_calls))
                (Prof.snapshot ())
            in
            (o, deterministic_counters (), shape)
          in
          let o1, counters1, shape1 = run 1 in
          let o4, counters4, shape4 = run 4 in
          Metric.reset_all ();
          Alcotest.(check bool) "same GA history" true
            (o1.Tuner.ga.Inltune_ga.Evolve.history = o4.Tuner.ga.Inltune_ga.Evolve.history);
          Alcotest.(check (float 0.0)) "same fitness" o1.Tuner.fitness o4.Tuner.fitness;
          Alcotest.(check (list (pair string int)))
            "same deterministic counters" counters1 counters4;
          Alcotest.(check (list (triple string string int)))
            "same span tree shape and call counts" shape1 shape4;
          Alcotest.(check bool) "tree is non-trivial" true
            (List.exists (fun (p, _, _) -> p = "fitness.eval") shape1)))

(* --- bit-identity: profiling must not perturb results --- *)

let test_profiling_does_not_change_results () =
  with_prof (fun () ->
      with_cold_fitcache (fun () ->
          let measure () =
            Runner.measure (Machine.config Machine.Adapt Heuristic.default) Platform.x86
              (W.Suites.program bm_compress)
          in
          let tune () = Tuner.tune ~budget ~suite:[ bm_compress ] ~domains:1 Tuner.Opt_bal_x86 in
          Prof.disable ();
          let m_off = measure () and o_off = tune () in
          Prof.enable ();
          Prof.reset ();
          let m_on = measure () and o_on = tune () in
          Prof.disable ();
          Metric.reset_all ();
          Alcotest.(check bool) "raw measurement bit-identical" true (m_off = m_on);
          Alcotest.(check bool) "GA history bit-identical" true
            (o_off.Tuner.ga.Inltune_ga.Evolve.history = o_on.Tuner.ga.Inltune_ga.Evolve.history);
          Alcotest.(check bool) "best genome bit-identical" true
            (o_off.Tuner.ga.Inltune_ga.Evolve.best = o_on.Tuner.ga.Inltune_ga.Evolve.best);
          Alcotest.(check (float 0.0)) "fitness bit-identical" o_off.Tuner.fitness o_on.Tuner.fitness;
          Alcotest.(check bool) "tuned heuristic identical" true
            (Heuristic.equal o_off.Tuner.heuristic o_on.Tuner.heuristic)))

let suite =
  [
    Alcotest.test_case "span nesting and tree order" `Quick test_span_nesting_and_order;
    Alcotest.test_case "self vs cumulative time" `Quick test_self_time_vs_cumulative;
    Alcotest.test_case "disabled span is passthrough" `Quick test_disabled_span_is_passthrough;
    Alcotest.test_case "span is exception-safe" `Quick test_span_exception_safe;
    Alcotest.test_case "on_time side channel" `Quick test_on_time_receives_duration;
    Alcotest.test_case "folded output matches snapshot" `Quick test_folded_matches_snapshot;
    Alcotest.test_case "profile deterministic across domains" `Slow
      test_profile_deterministic_across_domains;
    Alcotest.test_case "profiling does not change results" `Slow
      test_profiling_does_not_change_results;
  ]
