let () =
  Alcotest.run "inltune"
    [
      ("support", Test_support.suite);
      ("obs", Test_obs.suite);
      ("prof", Test_prof.suite);
      ("jir", Test_jir.suite);
      ("opt", Test_opt.suite);
      ("plan", Test_plan.suite);
      ("vm", Test_vm.suite);
      ("flat", Test_flat.suite);
      ("workloads", Test_workloads.suite);
      ("shapes", Test_shapes.suite);
      ("ga", Test_ga.suite);
      ("resilience", Test_resilience.suite);
      ("core", Test_core.suite);
      ("policy", Test_policy.suite);
      ("gp", Test_gp.suite);
      ("serve", Test_serve.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
    ]
