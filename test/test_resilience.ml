module R = Inltune_resilience
module Faultinject = R.Faultinject
module Sandbox = R.Sandbox
module Checkpoint = R.Checkpoint
module Evolve = Inltune_ga.Evolve
module Genome = Inltune_ga.Genome

(* --- Faultinject --- *)

let test_parse_ok () =
  match Faultinject.parse "eval:raise@3, eval:corrupt@7,io:hang@1" with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok specs ->
    Alcotest.(check int) "three specs" 3 (List.length specs);
    let s = List.nth specs 0 in
    Alcotest.(check string) "site" "eval" s.Faultinject.site;
    Alcotest.(check int) "at" 3 s.Faultinject.at;
    Alcotest.(check string) "action" "raise" (Faultinject.action_name s.Faultinject.action)

let test_parse_empty () =
  match Faultinject.parse "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty string should arm nothing"
  | Error m -> Alcotest.failf "empty string rejected: %s" m

let test_parse_errors () =
  List.iter
    (fun s ->
      match Faultinject.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed spec %S" s
      | Error _ -> ())
    [ "bogus"; "eval:raise"; "eval:explode@3"; "eval:raise@0"; "eval:raise@x"; ":raise@1" ]

let test_fires_at_exactly_k () =
  (match Faultinject.parse "eval:raise@3" with
  | Ok specs -> Faultinject.install specs
  | Error m -> Alcotest.failf "parse: %s" m);
  Fun.protect ~finally:Faultinject.clear (fun () ->
      Alcotest.(check bool) "armed" true (Faultinject.active ());
      let hits =
        List.init 5 (fun _ -> match Faultinject.check "eval" with Some _ -> 1 | None -> 0)
      in
      Alcotest.(check (list int)) "only the 3rd call fires" [ 0; 0; 1; 0; 0 ] hits;
      Alcotest.(check int) "call count" 5 (Faultinject.calls "eval");
      Alcotest.(check int) "other sites unaffected" 0 (Faultinject.calls "io"))

let test_clear_disarms () =
  (match Faultinject.parse "eval:corrupt@1" with
  | Ok specs -> Faultinject.install specs
  | Error m -> Alcotest.failf "parse: %s" m);
  Faultinject.clear ();
  Alcotest.(check bool) "disarmed" false (Faultinject.active ());
  Alcotest.(check bool) "check is a no-op" true (Faultinject.check "eval" = None)

(* --- Sandbox --- *)

let test_sandbox_first_try () =
  match Sandbox.protect ~site:"t" (fun () -> 0.25) with
  | Ok ok ->
    Alcotest.(check (float 0.0)) "value" 0.25 ok.Sandbox.value;
    Alcotest.(check int) "one attempt" 1 ok.Sandbox.attempts
  | Error f -> Alcotest.failf "unexpected failure: %s" (Sandbox.failure_to_string f)

let test_sandbox_retry_then_success () =
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls < 3 then failwith "flaky" else 0.5
  in
  match Sandbox.protect ~max_retries:2 ~site:"t" f with
  | Ok ok ->
    Alcotest.(check (float 0.0)) "value" 0.5 ok.Sandbox.value;
    Alcotest.(check int) "attempts" 3 ok.Sandbox.attempts;
    Alcotest.(check int) "calls" 3 !calls
  | Error f -> Alcotest.failf "unexpected failure: %s" (Sandbox.failure_to_string f)

let test_sandbox_exhaustion () =
  let calls = ref 0 in
  let f () = incr calls; failwith "always" in
  match Sandbox.protect ~max_retries:2 ~site:"t" f with
  | Ok _ -> Alcotest.fail "should have failed"
  | Error fl ->
    Alcotest.(check int) "attempts = 1 + max_retries" 3 fl.Sandbox.f_attempts;
    Alcotest.(check int) "calls" 3 !calls;
    (* 2^0 after attempt 1, 2^1 after attempt 2 (no backoff after the last). *)
    Alcotest.(check int) "backoff units" 3 fl.Sandbox.f_backoff_units

let test_sandbox_corrupt_output () =
  let calls = ref 0 in
  let f () = incr calls; Float.nan in
  (match Sandbox.protect ~max_retries:1 ~site:"t" f with
  | Ok _ -> Alcotest.fail "NaN must not be an Ok value"
  | Error fl ->
    Alcotest.(check int) "retried once" 2 fl.Sandbox.f_attempts;
    Alcotest.(check bool) "reason mentions corrupt" true
      (String.length fl.Sandbox.f_reason >= 7
      && String.sub fl.Sandbox.f_reason 0 7 = "corrupt"));
  match Sandbox.protect ~site:"t" (fun () -> Float.infinity) with
  | Ok _ -> Alcotest.fail "infinity must not be an Ok value"
  | Error _ -> ()

let test_sandbox_classify_rejects () =
  let f () = raise Exit in
  Alcotest.check_raises "unclassified exception propagates" Exit (fun () ->
      ignore (Sandbox.protect ~classify:(fun e -> e <> Exit) ~site:"t" f))

let test_sandbox_run_generic_corrupt () =
  (* The generic engine retries arbitrary result types; [corrupt] rejects a
     bad success exactly like an exception. *)
  let calls = ref 0 in
  let f () = incr calls; if !calls = 1 then "garbage" else "fine" in
  let corrupt s = if s = "garbage" then Some "garbage result" else None in
  match Sandbox.run ~max_retries:1 ~corrupt ~site:"t" f with
  | Ok o ->
    Alcotest.(check string) "second result kept" "fine" o.Sandbox.result;
    Alcotest.(check int) "attempts" 2 o.Sandbox.o_attempts
  | Error fl -> Alcotest.failf "unexpected failure: %s" (Sandbox.failure_to_string fl)

(* The env-armed hang path: INLTUNE_FAULTS="SITE:hang@K" makes the K-th gate
   check of SITE burn its whole fuel budget (Out_of_fuel), which the sandbox
   treats as one more transient failure — retried with the deterministic
   exponential backoff schedule. *)

let arm_from_env spec =
  Unix.putenv "INLTUNE_FAULTS" spec;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "INLTUNE_FAULTS" "")
    (fun () ->
      match Faultinject.init_from_env () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "init_from_env: %s" m)

let hang_gate site () =
  match Faultinject.check site with
  | Some Faultinject.Hang -> raise Inltune_vm.Machine.Out_of_fuel
  | Some Faultinject.Raise -> raise (Faultinject.Injected site)
  | Some Faultinject.Corrupt -> Float.nan
  | None -> 0.5

let test_sandbox_hang_retries_then_succeeds () =
  arm_from_env "sbx:hang@1";
  Fun.protect ~finally:Faultinject.clear (fun () ->
      match Sandbox.protect ~max_retries:2 ~site:"sbx" (hang_gate "sbx") with
      | Ok ok ->
        Alcotest.(check (float 0.0)) "recovered value" 0.5 ok.Sandbox.value;
        Alcotest.(check int) "hang, then success" 2 ok.Sandbox.attempts
      | Error fl -> Alcotest.failf "unexpected failure: %s" (Sandbox.failure_to_string fl))

let test_sandbox_hang_exhaustion_deterministic_backoff () =
  (* Every attempt hangs: the failure record carries exactly the backoff the
     schedule prescribes (1 after attempt 1, 2 after attempt 2), every run. *)
  arm_from_env "sbx2:hang@1,sbx2:hang@2,sbx2:hang@3";
  Fun.protect ~finally:Faultinject.clear (fun () ->
      match Sandbox.protect ~max_retries:2 ~site:"sbx2" (hang_gate "sbx2") with
      | Ok _ -> Alcotest.fail "three hangs must exhaust two retries"
      | Error fl ->
        Alcotest.(check int) "attempts" 3 fl.Sandbox.f_attempts;
        Alcotest.(check int) "backoff 1 + 2"
          (Sandbox.backoff_units ~attempt:1 + Sandbox.backoff_units ~attempt:2)
          fl.Sandbox.f_backoff_units;
        Alcotest.(check int) "gate consumed all three faults" 3
          (Faultinject.calls "sbx2"))

let test_backoff_schedule () =
  Alcotest.(check (list int)) "exponential" [ 1; 2; 4; 8 ]
    (List.map (fun a -> Sandbox.backoff_units ~attempt:a) [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "capped" (Sandbox.backoff_units ~attempt:100)
    (Sandbox.backoff_units ~attempt:21)

(* --- Checkpoint --- *)

let sample_state =
  {
    Checkpoint.gen = 7;
    rng = -4616189618054758400L;
    pop = [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |];
    best = [| 1; 2; 3 |];
    best_fitness = 0.123456789012345678;
    cache = [ ("1,2,3", 0.5); ("4,5,6", 1.0e6) ];
    quarantine = [ "4,5,6" ];
    history =
      [
        { Checkpoint.e_gen = 0; e_best = 1.0; e_mean = 2.0; e_evals = 2 };
        { Checkpoint.e_gen = 7; e_best = 0.5; e_mean = 0.75; e_evals = 4 };
      ];
    evaluations = 4;
    cache_hits = 9;
    failures = 1;
    retries = 2;
    pop_size = 2;
    seed = 42;
  }

let test_checkpoint_roundtrip () =
  match Checkpoint.of_line (Checkpoint.to_line sample_state) with
  | Error m -> Alcotest.failf "of_line: %s" m
  | Ok s ->
    Alcotest.(check bool) "exact round-trip" true (s = sample_state);
    Alcotest.(check int64) "raw rng state" sample_state.Checkpoint.rng s.Checkpoint.rng

let test_checkpoint_float_fidelity () =
  let s = { sample_state with Checkpoint.best_fitness = 0.1 +. 0.2 } in
  match Checkpoint.of_line (Checkpoint.to_line s) with
  | Error m -> Alcotest.failf "of_line: %s" m
  | Ok s' ->
    Alcotest.(check bool) "bit-identical float" true
      (Int64.equal
         (Int64.bits_of_float s.Checkpoint.best_fitness)
         (Int64.bits_of_float s'.Checkpoint.best_fitness))

let test_checkpoint_load_last_valid () =
  let path = Filename.temp_file "inltune_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let early = { sample_state with Checkpoint.gen = 3 } in
      Checkpoint.write ~path early;
      Checkpoint.write ~path sample_state;
      (* Simulate a crash mid-append: a truncated last line. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc (String.sub (Checkpoint.to_line sample_state) 0 25);
      close_out oc;
      match Checkpoint.load ~path with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok s -> Alcotest.(check int) "last complete snapshot wins" 7 s.Checkpoint.gen)

let test_checkpoint_load_missing () =
  match Checkpoint.load ~path:"/nonexistent/inltune.ckpt" with
  | Ok _ -> Alcotest.fail "missing file must not load"
  | Error _ -> ()

(* --- Guarded evolution --- *)

let spec3 = Genome.spec [| (0, 20); (0, 20); (0, 20) |]

let small_params =
  {
    Evolve.default_params with
    Evolve.pop_size = 8;
    generations = 5;
    seed = 7;
    domains = Some 1;
  }

(* Sphere function: smooth, deterministic, minimized at (5,5,5). *)
let sphere g =
  Array.fold_left (fun acc v -> acc +. (Float.of_int ((v - 5) * (v - 5)) /. 100.0)) 0.01 g

let test_guarded_run_isolates_failures () =
  (* Genomes whose first gene is even fail every attempt; the search must
     still complete and return a finite (odd-first-gene) best. *)
  let fitness g = if g.(0) mod 2 = 0 then failwith "injected" else sphere g in
  let guard = { Evolve.default_guard with Evolve.failure_threshold = 1.1 } in
  let r = Evolve.run ~guard ~spec:spec3 ~params:small_params ~fitness () in
  Alcotest.(check bool) "failures recorded" true (r.Evolve.failures > 0);
  Alcotest.(check int) "every failure quarantined" r.Evolve.failures r.Evolve.quarantined;
  Alcotest.(check bool) "run not degraded" true (r.Evolve.stopped = None);
  Alcotest.(check bool) "best is a real evaluation" true
    (Float.is_finite r.Evolve.best_fitness && r.Evolve.best_fitness < 100.0);
  Alcotest.(check int) "best genome survived the fault" 1 (r.Evolve.best.(0) mod 2)

let test_quarantine_stops_reevaluation () =
  (* A persistently failing genotype is attempted exactly (1 + max_retries)
     times in total, however many generations revisit it. *)
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let fitness g =
    let k = Genome.key g in
    Hashtbl.replace attempts k (1 + Option.value ~default:0 (Hashtbl.find_opt attempts k));
    if g.(0) mod 2 = 0 then failwith "injected" else sphere g
  in
  let guard =
    { Evolve.default_guard with Evolve.max_retries = 2; failure_threshold = 1.1 }
  in
  let r = Evolve.run ~guard ~spec:spec3 ~params:small_params ~fitness () in
  Alcotest.(check bool) "some genomes failed" true (r.Evolve.quarantined > 0);
  Hashtbl.iter
    (fun k n ->
      let even = int_of_string (List.hd (String.split_on_char ',' k)) mod 2 = 0 in
      if even then Alcotest.(check int) ("attempts for failing " ^ k) 3 n
      else Alcotest.(check int) ("attempts for healthy " ^ k) 1 n)
    attempts

let test_degradation_stops_search () =
  let fitness _ = failwith "dead evaluator" in
  let r = Evolve.run ~guard:Evolve.default_guard ~spec:spec3 ~params:small_params ~fitness () in
  (match r.Evolve.stopped with
  | None -> Alcotest.fail "total failure must degrade the search"
  | Some reason ->
    Alcotest.(check bool) "reason is human-readable" true
      (String.length reason > 0 && String.sub reason 0 10 = "generation"));
  Alcotest.(check bool) "stopped at generation 0" true (List.length r.Evolve.history = 1);
  Alcotest.(check (float 0.0)) "every fitness is the penalty"
    Evolve.default_guard.Evolve.penalty r.Evolve.best_fitness

let test_classify_limits_retry () =
  (* Exceptions the guard does not classify as transient are penalized
     without retry: exactly one attempt per distinct genome. *)
  let calls = ref 0 in
  let fitness _ = incr calls; raise Exit in
  let guard =
    {
      Evolve.default_guard with
      Evolve.max_retries = 5;
      failure_threshold = 1.1;
      classify = (function Exit -> false | _ -> true);
    }
  in
  let r = Evolve.run ~guard ~spec:spec3 ~params:small_params ~fitness () in
  Alcotest.(check int) "one attempt per distinct genome" r.Evolve.evaluations !calls;
  Alcotest.(check int) "all quarantined" r.Evolve.evaluations r.Evolve.quarantined

(* --- Checkpoint / resume determinism --- *)

let run_ga ?checkpoint ?resume ~gens () =
  let params = { small_params with Evolve.generations = gens } in
  Evolve.run ?checkpoint ?resume ~guard:Evolve.default_guard ~spec:spec3 ~params
    ~fitness:sphere ()

let check_same_result label (a : Evolve.result) (b : Evolve.result) =
  Alcotest.(check (array int)) (label ^ ": best genome") a.Evolve.best b.Evolve.best;
  Alcotest.(check bool)
    (label ^ ": best fitness bit-identical")
    true
    (Int64.equal
       (Int64.bits_of_float a.Evolve.best_fitness)
       (Int64.bits_of_float b.Evolve.best_fitness));
  Alcotest.(check int) (label ^ ": evaluations") a.Evolve.evaluations b.Evolve.evaluations;
  Alcotest.(check int) (label ^ ": cache hits") a.Evolve.cache_hits b.Evolve.cache_hits;
  Alcotest.(check bool) (label ^ ": history") true (a.Evolve.history = b.Evolve.history)

let test_resume_matches_uninterrupted () =
  let ckpt = Filename.temp_file "inltune_resume" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove ckpt)
    (fun () ->
      let full = run_ga ~gens:6 () in
      Sys.remove ckpt;
      (* "Crash" after generation 3, then resume to the same horizon. *)
      let _interrupted = run_ga ~checkpoint:ckpt ~gens:3 () in
      let resumed = run_ga ~resume:ckpt ~gens:6 () in
      check_same_result "resume = uninterrupted" full resumed)

let test_resume_from_own_checkpoint_file () =
  (* Resuming and checkpointing into the same file mid-flight also works:
     snapshots append, and load picks the newest. *)
  let ckpt = Filename.temp_file "inltune_resume2" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove ckpt)
    (fun () ->
      let full = run_ga ~gens:6 () in
      Sys.remove ckpt;
      let _ = run_ga ~checkpoint:ckpt ~gens:2 () in
      let _ = run_ga ~checkpoint:ckpt ~resume:ckpt ~gens:4 () in
      let resumed = run_ga ~checkpoint:ckpt ~resume:ckpt ~gens:6 () in
      check_same_result "chained resumes" full resumed)

let test_resume_rejects_mismatched_params () =
  let ckpt = Filename.temp_file "inltune_resume3" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove ckpt)
    (fun () ->
      Sys.remove ckpt;
      let _ = run_ga ~checkpoint:ckpt ~gens:2 () in
      let params =
        { small_params with Evolve.generations = 4; seed = small_params.Evolve.seed + 1 }
      in
      let raised =
        try
          ignore
            (Evolve.run ~resume:ckpt ~guard:Evolve.default_guard ~spec:spec3 ~params
               ~fitness:sphere ());
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "seed mismatch rejected" true raised)

let suite =
  [
    ("faultinject parse ok", `Quick, test_parse_ok);
    ("faultinject parse empty", `Quick, test_parse_empty);
    ("faultinject parse errors", `Quick, test_parse_errors);
    ("faultinject fires at exactly k", `Quick, test_fires_at_exactly_k);
    ("faultinject clear disarms", `Quick, test_clear_disarms);
    ("sandbox first try", `Quick, test_sandbox_first_try);
    ("sandbox retry then success", `Quick, test_sandbox_retry_then_success);
    ("sandbox exhaustion", `Quick, test_sandbox_exhaustion);
    ("sandbox corrupt output", `Quick, test_sandbox_corrupt_output);
    ("sandbox classify rejects", `Quick, test_sandbox_classify_rejects);
    ("sandbox backoff schedule", `Quick, test_backoff_schedule);
    ("sandbox generic run corrupt", `Quick, test_sandbox_run_generic_corrupt);
    ("sandbox hang retries then succeeds", `Quick, test_sandbox_hang_retries_then_succeeds);
    ("sandbox hang exhaustion backoff", `Quick, test_sandbox_hang_exhaustion_deterministic_backoff);
    ("checkpoint roundtrip", `Quick, test_checkpoint_roundtrip);
    ("checkpoint float fidelity", `Quick, test_checkpoint_float_fidelity);
    ("checkpoint load last valid", `Quick, test_checkpoint_load_last_valid);
    ("checkpoint load missing", `Quick, test_checkpoint_load_missing);
    ("guarded run isolates failures", `Quick, test_guarded_run_isolates_failures);
    ("quarantine stops re-evaluation", `Quick, test_quarantine_stops_reevaluation);
    ("degradation stops search", `Quick, test_degradation_stops_search);
    ("classify limits retry", `Quick, test_classify_limits_retry);
    ("resume matches uninterrupted", `Quick, test_resume_matches_uninterrupted);
    ("resume from own checkpoint", `Quick, test_resume_from_own_checkpoint_file);
    ("resume rejects mismatched params", `Quick, test_resume_rejects_mismatched_params);
  ]
