open Inltune_core
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

(* --- Params --- *)

let test_table1_matches_heuristic_ranges () =
  List.iteri
    (fun i r ->
      let lo, hi = Heuristic.ranges.(i) in
      Alcotest.(check (pair int int)) (r.Params.pname ^ " range") (lo, hi) (r.Params.lo, r.Params.hi))
    Params.table1

let test_genome_spec_size () =
  Alcotest.(check int) "5 genes" 5 (Inltune_ga.Genome.length Params.genome_spec)

let test_heuristic_of_string_defaults () =
  Alcotest.(check bool) "empty = default" true
    (Heuristic.equal (Params.heuristic_of_string "") Heuristic.default)

let test_heuristic_of_string_override () =
  let h = Params.heuristic_of_string "CALLEE_MAX_SIZE=7, max_inline_depth=2" in
  Alcotest.(check int) "callee" 7 h.Heuristic.callee_max_size;
  Alcotest.(check int) "depth" 2 h.Heuristic.max_inline_depth;
  Alcotest.(check int) "others default" 2048 h.Heuristic.caller_max_size

let test_heuristic_of_string_rejects_garbage () =
  Alcotest.(check bool) "unknown key" true
    (try ignore (Params.heuristic_of_string "WAT=3"); false with Invalid_argument _ -> true)

(* --- Measure --- *)

let bm_compress = W.Suites.find "compress"

let test_measure_consistency () =
  let t = Measure.run ~scenario:Machine.Opt ~platform:Platform.x86 ~heuristic:Heuristic.default bm_compress in
  Alcotest.(check bool) "total >= running" true (t.Measure.total >= t.Measure.running);
  Alcotest.(check bool) "compile > 0" true (t.Measure.compile > 0.0)

let test_measure_default_cached () =
  let a = Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm_compress in
  let b = Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm_compress in
  Alcotest.(check bool) "physically cached" true (a == b)

let test_measure_deterministic () =
  let go () =
    (Measure.run ~scenario:Machine.Adapt ~platform:Platform.ppc ~heuristic:Heuristic.default bm_compress)
      .Measure.total
  in
  Alcotest.(check (float 0.0)) "repeatable" (go ()) (go ())

(* --- Fitcache --- *)

let bm_db = W.Suites.find "db"

let metric name = Inltune_obs.Metric.value (Inltune_obs.Metric.counter name)

(* Restore the cache's default state (on, no file, empty) around a test. *)
let with_clean_fitcache f =
  Fitcache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Fitcache.set_file None;
      Fitcache.set_enabled true;
      Fitcache.clear ())
    f

let test_fitcache_distinct_programs_distinct_keys () =
  (* The program digest is part of every key, so signatures can never
     collide across programs — even for the same heuristic and scenario. *)
  let p1 = W.Suites.program bm_compress and p2 = W.Suites.program bm_db in
  let key p =
    Fitcache.key ~scenario:Machine.Opt ~platform:Platform.x86 ~heuristic:Heuristic.default
      ~inline_enabled:true ~plan:Plan.default ~iterations:3 p
  in
  Alcotest.(check bool) "digests differ" true
    (Fitcache.program_digest p1 <> Fitcache.program_digest p2);
  Alcotest.(check bool) "keys differ" true (key p1 <> key p2)

let test_fitcache_signature_separates_decisions () =
  (* Heuristics with different decision vectors must not share a signature. *)
  let p = W.Suites.program bm_compress in
  let s h =
    Fitcache.signature ~scenario:Machine.Opt ~heuristic:h ~inline_enabled:true
      ~plan:Plan.default p
  in
  Alcotest.(check bool) "never <> default" true (s Heuristic.never <> s Heuristic.default);
  Alcotest.(check string) "inlining off merges everything" "off"
    (Fitcache.signature ~scenario:Machine.Opt ~heuristic:Heuristic.never ~inline_enabled:false
       ~plan:Plan.default p)

let test_fitcache_inert_param_merges_soundly () =
  (* Under Opt the hot-site path is never consulted, so HOT_CALLEE_MAX_SIZE
     is inert: the signature must merge it with the default's, and — the
     soundness claim behind that merge — the two queries must measure
     bit-identically even with the cache off. *)
  let p = W.Suites.program bm_compress in
  let h2 = { Heuristic.default with Heuristic.hot_callee_max_size = 17 } in
  let s h =
    Fitcache.signature ~scenario:Machine.Opt ~heuristic:h ~inline_enabled:true
      ~plan:Plan.default p
  in
  Alcotest.(check string) "signatures merge" (s Heuristic.default) (s h2);
  with_clean_fitcache (fun () ->
      Fitcache.set_enabled false;
      let m h =
        (Measure.run ~scenario:Machine.Opt ~platform:Platform.x86 ~heuristic:h bm_compress)
          .Measure.raw
      in
      Alcotest.(check bool) "cache-off measurements identical" true
        (m Heuristic.default = m h2))

let test_fitcache_hit_avoids_simulation () =
  with_clean_fitcache (fun () ->
      let s0 = metric "measure.simulations" in
      let m1 =
        Measure.run ~scenario:Machine.Opt ~platform:Platform.x86
          ~heuristic:Heuristic.default bm_compress
      in
      let s1 = metric "measure.simulations" in
      Alcotest.(check int) "first query simulates once" (s0 + 1) s1;
      let h2 = { Heuristic.default with Heuristic.hot_callee_max_size = 17 } in
      let m2 =
        Measure.run ~scenario:Machine.Opt ~platform:Platform.x86 ~heuristic:h2 bm_compress
      in
      Alcotest.(check int) "signature hit simulates nothing" s1 (metric "measure.simulations");
      Alcotest.(check bool) "reused measurement is bit-identical" true
        (m1.Measure.raw = m2.Measure.raw))

let test_fitcache_file_round_trip () =
  let path = Filename.temp_file "fitcache" ".jsonl" in
  with_clean_fitcache (fun () ->
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
          Fitcache.set_file (Some path);
          let m1 =
            Measure.run ~scenario:Machine.Adapt ~platform:Platform.x86
              ~heuristic:Heuristic.default bm_db
          in
          (* Forget the in-memory tier, then reload from disk. *)
          Fitcache.set_file None;
          Fitcache.clear ();
          Fitcache.set_file (Some path);
          let p = W.Suites.program bm_db in
          Alcotest.(check bool) "entry reloaded from disk" true
            (Fitcache.mem ~scenario:Machine.Adapt ~platform:Platform.x86
               ~heuristic:Heuristic.default ~inline_enabled:true ~plan:Plan.default
               ~iterations:3 p);
          let s0 = metric "measure.simulations" in
          let m2 =
            Measure.run ~scenario:Machine.Adapt ~platform:Platform.x86
              ~heuristic:Heuristic.default bm_db
          in
          Alcotest.(check int) "no new simulation after reload" s0
            (metric "measure.simulations");
          Alcotest.(check bool) "measurement identical across restart" true
            (m1.Measure.raw = m2.Measure.raw)))

let test_fitcache_corrupt_file_skipped () =
  let path = Filename.temp_file "fitcache" ".jsonl" in
  with_clean_fitcache (fun () ->
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
          (* A good entry, wrapped in garbage, a field-less record, and a
             line truncated mid-append: attach must keep the good entry and
             skip the rest with warnings, never abort. *)
          Fitcache.set_file (Some path);
          ignore
            (Measure.run ~scenario:Machine.Opt ~platform:Platform.x86
               ~heuristic:Heuristic.default bm_db);
          Fitcache.set_file None;
          let oc = open_out_gen [ Open_append ] 0o644 path in
          output_string oc "not json at all\n";
          output_string oc "{\"key\":\"orphan\"}\n";
          output_string oc "{\"key\":\"k/1\",\"total_cycles\":12,\"running_cy";
          close_out oc;
          Fitcache.clear ();
          Fitcache.set_file (Some path);
          let p = W.Suites.program bm_db in
          Alcotest.(check bool) "good entry survives corrupt neighbours" true
            (Fitcache.mem ~scenario:Machine.Opt ~platform:Platform.x86
               ~heuristic:Heuristic.default ~inline_enabled:true ~plan:Plan.default
               ~iterations:3 p)))

let test_fitcache_corrupt_lines_counted () =
  (* Every skipped line at attach time lands in the "fitness.cache_corrupt"
     counter (one summary warning per file, but each line counted), so a
     rotting cache file is visible in stats long after the stderr note
     scrolled away. *)
  let path = Filename.temp_file "fitcache" ".jsonl" in
  with_clean_fitcache (fun () ->
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
          let oc = open_out path in
          output_string oc "not json at all\n";
          output_string oc "{\"key\":\"orphan\"}\n";
          output_string oc "{\"key\":\"k/1\",\"total_cycles\":12,\"running_cy";
          close_out oc;
          let c0 = metric "fitness.cache_corrupt" in
          Fitcache.set_file (Some path);
          Alcotest.(check int) "three corrupt lines counted" (c0 + 3)
            (metric "fitness.cache_corrupt");
          Alcotest.(check int) "nothing loaded" 0 (Fitcache.size ());
          (* Re-attaching recounts: the counter tracks attach events, so a
             persistent daemon re-reading a bad file keeps reporting it. *)
          Fitcache.set_file None;
          Fitcache.set_file (Some path);
          Alcotest.(check int) "recounted on re-attach" (c0 + 6)
            (metric "fitness.cache_corrupt")))

let test_fitcache_cross_tenant_hits () =
  (* Tenant attribution: the first tenant to store a signature owns it; a
     different tenant hitting it bumps "fitness.cross_tenant_hits" — the
     daemon's evidence that tenants amortize each other's simulations. *)
  with_clean_fitcache (fun () ->
      let cur = ref (Some "alice") in
      Fitcache.set_tenant_hook (fun () -> !cur);
      Fun.protect
        ~finally:(fun () -> Fitcache.set_tenant_hook (fun () -> None))
        (fun () ->
          let x0 = metric "fitness.cross_tenant_hits" in
          let go () =
            Measure.run ~scenario:Machine.Opt ~platform:Platform.x86
              ~heuristic:Heuristic.default bm_db
          in
          ignore (go ());
          (* Alice hitting her own entry is not a cross-tenant hit. *)
          ignore (go ());
          Alcotest.(check int) "self hit not counted" x0
            (metric "fitness.cross_tenant_hits");
          cur := Some "bob";
          ignore (go ());
          Alcotest.(check int) "bob hits alice's entry" (x0 + 1)
            (metric "fitness.cross_tenant_hits")))

let test_fitcache_ga_bit_transparent () =
  (* The tentpole invariant: the same fixed-seed GA, cache off vs on, must
     produce the same best genome and the same per-generation history. *)
  let budget = { Tuner.pop = 6; gens = 3; seed = 5 } in
  let go () = Tuner.tune ~budget ~suite:[ bm_compress; bm_db ] Tuner.Opt_tot_x86 in
  let off =
    with_clean_fitcache (fun () ->
        Fitcache.set_enabled false;
        go ())
  in
  let on = with_clean_fitcache go in
  Alcotest.(check (array int)) "best genome identical"
    off.Tuner.ga.Inltune_ga.Evolve.best on.Tuner.ga.Inltune_ga.Evolve.best;
  Alcotest.(check (float 0.0)) "best fitness identical"
    off.Tuner.ga.Inltune_ga.Evolve.best_fitness on.Tuner.ga.Inltune_ga.Evolve.best_fitness;
  Alcotest.(check bool) "per-generation history identical" true
    (off.Tuner.ga.Inltune_ga.Evolve.history = on.Tuner.ga.Inltune_ga.Evolve.history)

(* --- Objective --- *)

let test_perf_running_and_total () =
  let mk running total =
    { Measure.running; total; compile = total -. running;
      raw =
        (let p = W.Suites.program bm_compress in
         Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p);
    }
  in
  let d = mk 100.0 200.0 in
  let t = mk 50.0 300.0 in
  Alcotest.(check (float 1e-9)) "running ratio" 0.5 (Objective.perf Objective.Running ~t ~default:d);
  Alcotest.(check (float 1e-9)) "total ratio" 1.5 (Objective.perf Objective.Total ~t ~default:d);
  (* balance: factor = 200/100 = 2; value = 2*50+300 = 400; default = 2*100+200 = 400 *)
  Alcotest.(check (float 1e-9)) "balance ratio" 1.0 (Objective.perf Objective.Balance ~t ~default:d)

let test_perf_default_is_unity () =
  let d = Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm_compress in
  List.iter
    (fun goal ->
      Alcotest.(check (float 1e-9))
        (Objective.goal_name goal ^ " of default = 1")
        1.0
        (Objective.perf goal ~t:d ~default:d))
    [ Objective.Running; Objective.Total; Objective.Balance ]

let test_goal_of_string () =
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun g -> Objective.goal_of_string (Objective.goal_name g) = g)
       [ Objective.Running; Objective.Total; Objective.Balance ]);
  Alcotest.(check bool) "garbage rejected" true
    (try ignore (Objective.goal_of_string "speed"); false with Invalid_argument _ -> true)

let test_fitness_of_default_is_one () =
  let f =
    Objective.fitness ~suite:[ bm_compress ] ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Total
  in
  Alcotest.(check (float 1e-9)) "default scores 1.0" 1.0 (f Heuristic.default)

let test_fitness_never_heuristic_differs () =
  let f =
    Objective.fitness ~suite:[ bm_compress ] ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Running
  in
  Alcotest.(check bool) "no-inlining scores worse than default" true (f Heuristic.never > 1.0)

(* --- Tuner --- *)

let test_scenario_specs () =
  List.iter
    (fun id ->
      let s = Tuner.spec_of id in
      Alcotest.(check bool) (s.Tuner.label ^ " wellformed") true (String.length s.Tuner.label > 0))
    Tuner.all_scenarios;
  Alcotest.(check bool) "adapt uses balance" true
    ((Tuner.spec_of Tuner.Adapt_x86).Tuner.goal = Objective.Balance);
  Alcotest.(check bool) "opt:tot uses total" true
    ((Tuner.spec_of Tuner.Opt_tot_x86).Tuner.goal = Objective.Total);
  Alcotest.(check bool) "ppc spec on ppc" true
    ((Tuner.spec_of Tuner.Adapt_ppc).Tuner.platform.Platform.pname = "ppc")

let test_scenario_of_string () =
  Alcotest.(check bool) "all round-trip" true
    (List.for_all
       (fun (s, id) -> Tuner.scenario_of_string s = id)
       [
         ("adapt", Tuner.Adapt_x86);
         ("opt:bal", Tuner.Opt_bal_x86);
         ("opt:tot", Tuner.Opt_tot_x86);
         ("adapt-ppc", Tuner.Adapt_ppc);
         ("opt:bal-ppc", Tuner.Opt_bal_ppc);
       ])

let test_tune_micro_budget_beats_or_matches_default () =
  (* A tiny GA run on a single benchmark: the tuned heuristic's fitness is
     <= 1.0 by construction (the GA can always keep the default's score by
     dominating it, but at minimum it must return a valid heuristic whose
     measured fitness equals its reported fitness). *)
  let budget = { Tuner.pop = 6; gens = 2; seed = 7 } in
  let o = Tuner.tune ~budget ~suite:[ bm_compress ] Tuner.Opt_tot_x86 in
  let f =
    Objective.fitness ~suite:[ bm_compress ] ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Total
  in
  Alcotest.(check (float 1e-9)) "reported = measured" o.Tuner.fitness (f o.Tuner.heuristic);
  Alcotest.(check bool) "genome in ranges" true
    (Inltune_ga.Genome.valid Params.genome_spec (Heuristic.to_array o.Tuner.heuristic))

(* --- Resilience wiring: classifier, fault hooks, fuel-exhaustion penalty --- *)

let test_transient_failure_classification () =
  Alcotest.(check bool) "out of fuel" true (Objective.transient_failure Machine.Out_of_fuel);
  Alcotest.(check bool) "trap" true (Objective.transient_failure (Machine.Trap "x"));
  Alcotest.(check bool) "stack overflow" true (Objective.transient_failure Stack_overflow);
  Alcotest.(check bool) "injected fault" true
    (Objective.transient_failure (Inltune_resilience.Faultinject.Injected "eval"));
  Alcotest.(check bool) "other exceptions are bugs" false (Objective.transient_failure Exit)

let test_genome_fitness_fault_injection () =
  let module F = Inltune_resilience.Faultinject in
  F.install
    [
      { F.site = "eval"; action = F.Corrupt; at = 1 };
      { F.site = "eval"; action = F.Raise; at = 2 };
    ];
  Fun.protect ~finally:F.clear (fun () ->
      let f =
        Objective.genome_fitness ~suite:[ bm_compress ] ~scenario:Machine.Opt
          ~platform:Platform.x86 ~goal:Objective.Total
      in
      let g = Heuristic.to_array Heuristic.default in
      Alcotest.(check bool) "corrupt -> nan" true (Float.is_nan (f g));
      Alcotest.(check bool) "raise -> Injected" true
        (try ignore (f g); false with F.Injected _ -> true);
      Alcotest.(check (float 1e-9)) "healthy call unaffected" 1.0 (f g))

let test_fuel_exhaustion_penalized () =
  (* An evaluation that exhausts its fuel budget is retried, then penalized
     and quarantined; genomes that evaluate cleanly still win the search. *)
  let fitness g = if g.(0) > 25 then raise Machine.Out_of_fuel else 1.0 in
  let guard =
    {
      Inltune_ga.Evolve.default_guard with
      Inltune_ga.Evolve.classify = Objective.transient_failure;
      failure_threshold = 1.1;
    }
  in
  let params =
    {
      Inltune_ga.Evolve.default_params with
      Inltune_ga.Evolve.pop_size = 8;
      generations = 3;
      seed = 11;
      domains = Some 1;
    }
  in
  let r = Inltune_ga.Evolve.run ~guard ~spec:Params.genome_spec ~params ~fitness () in
  Alcotest.(check bool) "some evaluations failed" true (r.Inltune_ga.Evolve.failures > 0);
  Alcotest.(check int) "failures quarantined" r.Inltune_ga.Evolve.failures
    r.Inltune_ga.Evolve.quarantined;
  Alcotest.(check (float 0.0)) "survivors score normally" 1.0
    r.Inltune_ga.Evolve.best_fitness

(* --- Report / Experiments (cheap ones only) --- *)

let test_report_bars_table () =
  let rows =
    [
      { Report.label = "a"; running_ratio = 0.9; total_ratio = 0.8 };
      { Report.label = "b"; running_ratio = 1.1; total_ratio = 1.2 };
    ]
  in
  let t, run_avg, tot_avg = Report.bars_table ~title:"t" ~baseline_name:"x" rows in
  Alcotest.(check bool) "geomean between" true (run_avg > 0.9 && run_avg < 1.1);
  Alcotest.(check bool) "tot geomean between" true (tot_avg > 0.8 && tot_avg < 1.2);
  Alcotest.(check bool) "renders" true (String.length (Inltune_support.Table.render t) > 0)

let test_experiment_table1_runs () =
  Alcotest.(check int) "one table" 1 (List.length (Experiments.table1 ()))

let test_experiment_fig1_runs () =
  Alcotest.(check int) "two tables" 2 (List.length (Experiments.fig1 ()))

let test_experiment_unknown_rejected () =
  let ctx = Experiments.make_ctx ~verbose:false () in
  Alcotest.(check bool) "unknown id" true
    (try Experiments.run_one ctx "fig99"; false with Invalid_argument _ -> true)

let test_fig2_series_varies () =
  let series =
    Experiments.fig2_series ~bench:"jess" ~scenario:Machine.Opt ~platform:Platform.x86
      [ 0; 5 ]
  in
  match series with
  | [ (0, t0); (5, t5) ] ->
    Alcotest.(check bool) "depth changes jess Opt total" true (t0 <> t5)
  | _ -> Alcotest.fail "series shape"

let suite =
  [
    ("table1 matches heuristic ranges", `Quick, test_table1_matches_heuristic_ranges);
    ("genome spec has 5 genes", `Quick, test_genome_spec_size);
    ("heuristic_of_string default", `Quick, test_heuristic_of_string_defaults);
    ("heuristic_of_string overrides", `Quick, test_heuristic_of_string_override);
    ("heuristic_of_string rejects garbage", `Quick, test_heuristic_of_string_rejects_garbage);
    ("measure consistency", `Quick, test_measure_consistency);
    ("measure default cached", `Quick, test_measure_default_cached);
    ("measure deterministic", `Quick, test_measure_deterministic);
    ("fitcache distinct programs distinct keys", `Quick, test_fitcache_distinct_programs_distinct_keys);
    ("fitcache signature separates decisions", `Quick, test_fitcache_signature_separates_decisions);
    ("fitcache inert parameter merges soundly", `Quick, test_fitcache_inert_param_merges_soundly);
    ("fitcache hit avoids simulation", `Quick, test_fitcache_hit_avoids_simulation);
    ("fitcache file round trip", `Quick, test_fitcache_file_round_trip);
    ("fitcache corrupt file skipped", `Quick, test_fitcache_corrupt_file_skipped);
    ("fitcache corrupt lines counted", `Quick, test_fitcache_corrupt_lines_counted);
    ("fitcache cross-tenant hits", `Quick, test_fitcache_cross_tenant_hits);
    ("fitcache GA bit transparent", `Slow, test_fitcache_ga_bit_transparent);
    ("objective perf formulas", `Quick, test_perf_running_and_total);
    ("objective default is unity", `Quick, test_perf_default_is_unity);
    ("objective goal parsing", `Quick, test_goal_of_string);
    ("fitness of default is 1.0", `Quick, test_fitness_of_default_is_one);
    ("fitness of never > 1.0", `Quick, test_fitness_never_heuristic_differs);
    ("tuner scenario specs", `Quick, test_scenario_specs);
    ("tuner scenario parsing", `Quick, test_scenario_of_string);
    ("tuner micro budget", `Slow, test_tune_micro_budget_beats_or_matches_default);
    ("transient failure classification", `Quick, test_transient_failure_classification);
    ("genome_fitness fault injection", `Quick, test_genome_fitness_fault_injection);
    ("fuel exhaustion penalized", `Quick, test_fuel_exhaustion_penalized);
    ("report bars table", `Quick, test_report_bars_table);
    ("experiment table1", `Quick, test_experiment_table1_runs);
    ("experiment fig1", `Slow, test_experiment_fig1_runs);
    ("experiment unknown id rejected", `Quick, test_experiment_unknown_rejected);
    ("fig2 series varies with depth", `Slow, test_fig2_series_varies);
  ]
