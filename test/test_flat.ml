open Inltune_jir
open Inltune_vm
open Inltune_opt
module Suites = Inltune_workloads.Suites

(* Differential tests for the flat interpreter: the compile-once lowered
   dispatch loop must be bit-identical to the tree-walking reference
   interpreter on every observable — per-iteration cycles, steps, output
   hashes and logs, profile state, and recompilation activity.  Anything the
   tuner's fitness function can see is compared here, so a divergence that
   would silently skew GA results fails a test instead.

   The comparison is exact integer equality throughout: both interpreters
   simulate the same deterministic machine, so there is no tolerance. *)

(* Everything observable about a VM run: the per-iteration records plus the
   end-of-run machine and profile state. *)
type obs = {
  o_iters : Machine.iteration list;
  o_opt : int;
  o_o1 : int;
  o_base : int;
  o_code_bytes : int;
  o_iacc : int;
  o_imiss : int;
  o_total_calls : int;
  o_interned : int;
  o_samples : int array;      (* per method *)
  o_invocations : int array;  (* per method *)
  o_edges : int array;        (* edge_count over all (owner, callee) pairs *)
}

let observe ~reference cfg plat prog ~iterations =
  let prev = Machine.reference_enabled () in
  Machine.set_reference reference;
  Fun.protect
    ~finally:(fun () -> Machine.set_reference prev)
    (fun () ->
      let vm = Machine.create cfg plat prog in
      let o_iters = List.init iterations (fun _ -> Machine.run_iteration vm) in
      let p = Machine.profile vm in
      let n = Array.length prog.Ir.methods in
      {
        o_iters;
        o_opt = Machine.opt_compiles vm;
        o_o1 = Machine.o1_compiles vm;
        o_base = Machine.baseline_compiles vm;
        o_code_bytes = Machine.code_bytes vm;
        o_iacc = Machine.icache_accesses vm;
        o_imiss = Machine.icache_misses vm;
        o_total_calls = Profile.total_calls p;
        o_interned = Profile.interned_sites p;
        o_samples = Array.init n (Profile.samples p);
        o_invocations = Array.init n (Profile.invocations p);
        o_edges =
          Array.init (n * n) (fun k ->
              Profile.edge_count p ~site_owner:(k / n) ~callee:(k mod n));
      })

let check_obs name a b =
  let ck what = Alcotest.(check int) (name ^ ": " ^ what) in
  List.iteri
    (fun k (x, y) ->
      let it what = Printf.sprintf "iter %d %s" k what in
      ck (it "ret") x.Machine.ret y.Machine.ret;
      ck (it "exec cycles") x.Machine.it_exec_cycles y.Machine.it_exec_cycles;
      ck (it "compile cycles") x.Machine.it_compile_cycles y.Machine.it_compile_cycles;
      ck (it "steps") x.Machine.it_steps y.Machine.it_steps;
      ck (it "out hash") x.Machine.it_out_hash y.Machine.it_out_hash;
      Alcotest.(check (array int)) (name ^ ": " ^ it "outputs") x.Machine.it_outputs
        y.Machine.it_outputs)
    (List.combine a.o_iters b.o_iters);
  ck "opt compiles" a.o_opt b.o_opt;
  ck "o1 compiles" a.o_o1 b.o_o1;
  ck "baseline compiles" a.o_base b.o_base;
  ck "code bytes" a.o_code_bytes b.o_code_bytes;
  ck "icache accesses" a.o_iacc b.o_iacc;
  ck "icache misses" a.o_imiss b.o_imiss;
  ck "total calls" a.o_total_calls b.o_total_calls;
  ck "interned sites" a.o_interned b.o_interned;
  Alcotest.(check (array int)) (name ^ ": samples") a.o_samples b.o_samples;
  Alcotest.(check (array int)) (name ^ ": invocations") a.o_invocations b.o_invocations;
  Alcotest.(check (array int)) (name ^ ": edge counts") a.o_edges b.o_edges

(* Run [prog] under both interpreters and compare every observable. *)
let check_identical name ?(iterations = 2) cfg prog =
  let plat = Platform.x86 in
  let flat = observe ~reference:false cfg plat prog ~iterations in
  let tree = observe ~reference:true cfg plat prog ~iterations in
  check_obs name flat tree

let scenarios = [ Machine.Opt; Machine.Adapt; Machine.Ladder ]

(* The whole corpus (training and test suites) under all three scenarios, at
   a reduced input size so the suite stays fast; the adaptive scenarios get a
   third iteration so post-promotion recompilation is exercised on both
   sides. *)
let test_corpus_all_scenarios () =
  List.iter
    (fun bm ->
      let prog = Suites.program_scaled bm ~scale:25 in
      List.iter
        (fun scen ->
          let iterations = if scen = Machine.Opt then 2 else 3 in
          check_identical
            (Printf.sprintf "%s/%s" bm.Suites.bname (Machine.scenario_name scen))
            ~iterations
            (Machine.config scen Heuristic.default)
            prog)
        scenarios)
    Suites.all

(* Two training programs at the paper's full input size — the exact workload
   the tuner measures. *)
let test_full_size () =
  List.iter
    (fun name ->
      let prog = Suites.program (Suites.find name) in
      List.iter
        (fun scen ->
          check_identical
            (Printf.sprintf "%s@100/%s" name (Machine.scenario_name scen))
            (Machine.config scen Heuristic.default)
            prog)
        scenarios)
    [ "jess"; "db" ]

(* Every ablation flag the experiment driver can flip, each alone and all
   together: the flags change compile decisions and cycle accounting, so
   each combination exercises a different mix of opcodes and tiers. *)
let test_ablations () =
  let prog = Suites.program_scaled (Suites.find "javac") ~scale:30 in
  let cases =
    [
      ("no-inline", fun s h -> Machine.config ~inline_enabled:false s h);
      ("no-opt", fun s h -> Machine.config ~optimize:false s h);
      ("no-icache", fun s h -> Machine.config ~icache_enabled:false s h);
      ("no-hot-path", fun s h -> Machine.config ~hot_path_enabled:false s h);
      ("no-devirt", fun s h -> Machine.config ~guarded_devirt_enabled:false s h);
      ( "all-off",
        fun s h ->
          Machine.config ~inline_enabled:false ~optimize:false ~icache_enabled:false
            ~hot_path_enabled:false ~guarded_devirt_enabled:false s h );
    ]
  in
  List.iter
    (fun (label, mk) ->
      List.iter
        (fun scen ->
          check_identical
            (Printf.sprintf "%s/%s" label (Machine.scenario_name scen))
            ~iterations:3
            (mk scen Heuristic.default)
            prog)
        [ Machine.Opt; Machine.Adapt ])
    cases

(* A non-default heuristic shifts which sites get inlined, changing the
   lowered code shape; run it across all scenarios. *)
let test_aggressive_heuristic () =
  let h =
    {
      Heuristic.default with
      Heuristic.callee_max_size = Heuristic.default.Heuristic.callee_max_size * 2;
      Heuristic.max_inline_depth = Heuristic.default.Heuristic.max_inline_depth + 2;
    }
  in
  let prog = Suites.program_scaled (Suites.find "raytrace") ~scale:30 in
  List.iter
    (fun scen ->
      check_identical
        (Printf.sprintf "aggressive/%s" (Machine.scenario_name scen))
        ~iterations:3
        (Machine.config scen h)
        prog)
    scenarios

(* Random well-formed programs: structural shapes the handwritten suites
   never produce.  Fixed seeds keep the test deterministic. *)
let test_random_programs () =
  for seed = 1 to 25 do
    let prog = Gen_random.program seed in
    check_identical
      (Printf.sprintf "random seed %d" seed)
      (Machine.config Machine.Opt Heuristic.default)
      prog
  done

(* The flags and traps that differ per interpreter must still agree on the
   exception raised: a fuel cutoff mid-run is a recompilation-relevant
   observable for the tuner's failure classification. *)
let test_out_of_fuel_agrees () =
  let prog = Suites.program_scaled (Suites.find "compress") ~scale:30 in
  let run reference =
    let prev = Machine.reference_enabled () in
    Machine.set_reference reference;
    Fun.protect
      ~finally:(fun () -> Machine.set_reference prev)
      (fun () ->
        let cfg = Machine.config ~fuel:10_000 Machine.Opt Heuristic.default in
        let vm = Machine.create cfg Platform.x86 prog in
        match Machine.run_iteration vm with
        | _ -> `Returned
        | exception Machine.Out_of_fuel -> `Fuel (vm.Machine.steps, vm.Machine.exec_cycles))
  in
  let a = run false and b = run true in
  Alcotest.(check bool) "both hit the fuel cutoff identically" true (a = b);
  Alcotest.(check bool) "fuel cutoff reached" true (a <> `Returned)

let suite =
  [
    Alcotest.test_case "corpus x scenarios identical" `Quick test_corpus_all_scenarios;
    Alcotest.test_case "full-size programs identical" `Quick test_full_size;
    Alcotest.test_case "ablation flags identical" `Quick test_ablations;
    Alcotest.test_case "aggressive heuristic identical" `Quick test_aggressive_heuristic;
    Alcotest.test_case "random programs identical" `Quick test_random_programs;
    Alcotest.test_case "fuel exhaustion agrees" `Quick test_out_of_fuel_agrees;
  ]
