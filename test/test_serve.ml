module S = Inltune_serve
module Proto = S.Proto
module Bucket = S.Bucket
module Admission = S.Admission
module Replycache = S.Replycache
module Server = S.Server
module Client = S.Client
module Json = Inltune_obs.Json

(* --- Proto --- *)

let test_proto_parse_full () =
  let line =
    {|{"id":"r1","tenant":"alice","deadline_ms":250,"op":"measure",
       "bench":"db","scenario":"adapt","platform":"ppc",
       "heuristic":"CALLEE_MAX_SIZE=7","iterations":5}|}
  in
  match Proto.parse_request (String.concat "" (String.split_on_char '\n' line)) with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok r ->
    Alcotest.(check (option string)) "id" (Some "r1") r.Proto.id;
    Alcotest.(check string) "tenant" "alice" r.Proto.tenant;
    Alcotest.(check (option int)) "deadline" (Some 250) r.Proto.deadline_ms;
    (match r.Proto.op with
    | Proto.Measure { m_bench; m_scenario; m_platform; m_heuristic; m_iterations } ->
      Alcotest.(check string) "bench" "db" m_bench;
      Alcotest.(check string) "scenario" "adapt" m_scenario;
      Alcotest.(check string) "platform" "ppc" m_platform;
      Alcotest.(check string) "heuristic" "CALLEE_MAX_SIZE=7" m_heuristic;
      Alcotest.(check int) "iterations" 5 m_iterations
    | op -> Alcotest.failf "wrong op %s" (Proto.op_name op))

let test_proto_defaults () =
  match Proto.parse_request {|{"op":"measure","bench":"compress"}|} with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok r ->
    Alcotest.(check (option string)) "no id" None r.Proto.id;
    Alcotest.(check string) "anon tenant" "anon" r.Proto.tenant;
    Alcotest.(check (option int)) "no deadline" None r.Proto.deadline_ms;
    (match r.Proto.op with
    | Proto.Measure { m_scenario; m_platform; m_heuristic; m_iterations; _ } ->
      Alcotest.(check string) "scenario default" "opt" m_scenario;
      Alcotest.(check string) "platform default" "x86" m_platform;
      Alcotest.(check string) "heuristic default" "" m_heuristic;
      Alcotest.(check int) "iterations default" 3 m_iterations
    | op -> Alcotest.failf "wrong op %s" (Proto.op_name op))

let test_proto_tune_defaults () =
  match Proto.parse_request {|{"op":"tune"}|} with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok r ->
    (match r.Proto.op with
    | Proto.Tune { t_scenario; t_pop; t_gens; t_seed; t_suite } ->
      Alcotest.(check string) "scenario" "opt:tot" t_scenario;
      Alcotest.(check int) "pop" 8 t_pop;
      Alcotest.(check int) "gens" 3 t_gens;
      Alcotest.(check int) "seed" 42 t_seed;
      Alcotest.(check (list string)) "suite" [] t_suite
    | op -> Alcotest.failf "wrong op %s" (Proto.op_name op))

let test_proto_rejects_malformed () =
  List.iter
    (fun line ->
      match Proto.parse_request line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error m -> Alcotest.(check bool) "reason non-empty" true (String.length m > 0))
    [
      "";                                      (* not JSON *)
      "not json";
      "[1,2,3]";                               (* not an object *)
      {|{"tenant":"a"}|};                      (* missing op *)
      {|{"op":"explode"}|};                    (* unknown op *)
      {|{"op":"measure"}|};                    (* measure requires bench *)
      {|{"op":"measure","bench":7}|};          (* mistyped field *)
      {|{"op":"ping","deadline_ms":"soon"}|};  (* mistyped deadline *)
    ]

let test_proto_reply_round_trip () =
  let line =
    Proto.render_reply
      [ ("id", Json.Str "r1"); ("status", Json.Str "ok"); ("total_cycles", Json.Num 123.0) ]
  in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  match Json.parse line with
  | Error m -> Alcotest.failf "reply is not JSON: %s" m
  | Ok j ->
    Alcotest.(check (option string)) "status" (Some "ok")
      (Option.bind (Json.member "status" j) Json.to_string);
    Alcotest.(check (option int)) "number survives" (Some 123)
      (Option.bind (Json.member "total_cycles" j) Json.to_int)

(* --- Bucket (hand-cranked clock: refill is deterministic) --- *)

let test_bucket_burst_then_deny () =
  let b = Bucket.create ~rate:1.0 ~burst:2.0 in
  Alcotest.(check bool) "first" true (Bucket.take b ~now:0.0 "t" = Ok ());
  Alcotest.(check bool) "second (burst)" true (Bucket.take b ~now:0.0 "t" = Ok ());
  (match Bucket.take b ~now:0.0 "t" with
  | Ok () -> Alcotest.fail "empty bucket must deny"
  | Error wait -> Alcotest.(check (float 1e-9)) "full token away" 1.0 wait);
  (* Half a second accumulates half a token: still denied, shorter wait. *)
  (match Bucket.take b ~now:0.5 "t" with
  | Ok () -> Alcotest.fail "half a token is not enough"
  | Error wait -> Alcotest.(check (float 1e-9)) "half a token away" 0.5 wait);
  Alcotest.(check bool) "refilled after 1s" true (Bucket.take b ~now:1.0 "t" = Ok ())

let test_bucket_tenants_independent () =
  let b = Bucket.create ~rate:1.0 ~burst:1.0 in
  Alcotest.(check bool) "a spends" true (Bucket.take b ~now:0.0 "a" = Ok ());
  Alcotest.(check bool) "a empty" true (Result.is_error (Bucket.take b ~now:0.0 "a"));
  Alcotest.(check bool) "b unaffected" true (Bucket.take b ~now:0.0 "b" = Ok ());
  Alcotest.(check int) "two tenants seen" 2 (Bucket.tenant_count b)

let test_bucket_unlimited () =
  for i = 1 to 100 do
    match Bucket.take Bucket.unlimited ~now:0.0 "t" with
    | Ok () -> ()
    | Error _ -> Alcotest.failf "unlimited bucket denied at %d" i
  done

(* --- Admission --- *)

let test_admission_shed_when_full () =
  let a = Admission.create ~permits:1 ~queue_cap:0 in
  Alcotest.(check bool) "first admitted" true (Admission.acquire a = Admission.Admitted);
  Alcotest.(check int) "in flight" 1 (Admission.in_flight a);
  (* queue_cap = 0: the instant all permits are busy, shed without blocking. *)
  Alcotest.(check bool) "second shed" true (Admission.acquire a = Admission.Overloaded);
  Admission.release a;
  Alcotest.(check bool) "readmitted after release" true
    (Admission.acquire a = Admission.Admitted)

let test_admission_expired_deadline_times_out () =
  let a = Admission.create ~permits:1 ~queue_cap:4 in
  Alcotest.(check bool) "saturate" true (Admission.acquire a = Admission.Admitted);
  let past = Inltune_support.Pool.now () -. 1.0 in
  Alcotest.(check bool) "expired deadline never queues" true
    (Admission.acquire ~deadline:past a = Admission.Timed_out)

let test_admission_queued_waiter_wakes_on_release () =
  let a = Admission.create ~permits:1 ~queue_cap:1 in
  Alcotest.(check bool) "saturate" true (Admission.acquire a = Admission.Admitted);
  let got = ref Admission.Overloaded in
  let th = Thread.create (fun () -> got := Admission.acquire a) () in
  (* Wait until the thread is actually queued, then free the permit. *)
  let rec spin n =
    if Admission.waiting a = 0 && n < 2000 then (Thread.delay 0.001; spin (n + 1))
  in
  spin 0;
  Alcotest.(check int) "one waiter" 1 (Admission.waiting a);
  Admission.release a;
  Thread.join th;
  Alcotest.(check bool) "waiter admitted" true (!got = Admission.Admitted)

let test_admission_stop_rejects_everyone () =
  let a = Admission.create ~permits:2 ~queue_cap:2 in
  Alcotest.(check bool) "admit one" true (Admission.acquire a = Admission.Admitted);
  Admission.stop a;
  Alcotest.(check bool) "post-stop acquire" true (Admission.acquire a = Admission.Stopping);
  Alcotest.(check bool) "stop is sticky" true (Admission.acquire a = Admission.Stopping)

(* --- Replycache --- *)

let test_replycache_first_store_wins () =
  let c = Replycache.create ~cap:4 in
  Alcotest.(check bool) "miss" true (Replycache.find c "t:1" = None);
  Replycache.store c "t:1" [ ("status", Json.Str "ok") ];
  Replycache.store c "t:1" [ ("status", Json.Str "late") ];
  match Replycache.find c "t:1" with
  | Some [ ("status", Json.Str "ok") ] -> ()
  | Some _ -> Alcotest.fail "second store must not overwrite"
  | None -> Alcotest.fail "stored reply lost"

let test_replycache_fifo_eviction () =
  let c = Replycache.create ~cap:2 in
  Replycache.store c "a" [ ("n", Json.Num 1.0) ];
  Replycache.store c "b" [ ("n", Json.Num 2.0) ];
  Replycache.store c "c" [ ("n", Json.Num 3.0) ];
  Alcotest.(check int) "bounded" 2 (Replycache.size c);
  Alcotest.(check bool) "oldest evicted" true (Replycache.find c "a" = None);
  Alcotest.(check bool) "newer kept" true (Replycache.find c "b" <> None);
  Alcotest.(check bool) "newest kept" true (Replycache.find c "c" <> None)

(* --- End-to-end over a Unix socket --- *)

let with_server f =
  let path = Filename.temp_file "inltune_serve_test" ".sock" in
  Sys.remove path;
  let ep = Proto.Unix_path path in
  let config = { Server.default_config with Server.quiet = true; permits = 2 } in
  let srv = Server.start ~config ep in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f ep)

let reply_field line name =
  match Json.parse line with
  | Error m -> Alcotest.failf "reply not JSON (%s): %s" m line
  | Ok j -> Option.bind (Json.member name j) Json.to_string

let rpc ep line =
  match Client.rpc ~timeout_s:60.0 ep line with
  | Ok reply -> reply
  | Error m -> Alcotest.failf "rpc failed: %s" m

let test_e2e_ping_measure_dedup () =
  with_server (fun ep ->
      let ping = rpc ep {|{"op":"ping"}|} in
      Alcotest.(check (option string)) "ping ok" (Some "ok") (reply_field ping "status");
      Alcotest.(check (option string)) "mode normal" (Some "normal")
        (reply_field ping "mode");
      (* Malformed line: a normal reply with status "error", not a hangup. *)
      let bad = rpc ep "not json" in
      Alcotest.(check (option string)) "protocol error" (Some "error")
        (reply_field bad "status");
      (* Same id twice: second reply is the first one replayed. *)
      let req =
        {|{"id":"m1","tenant":"tt","op":"measure","bench":"compress"}|}
      in
      let first = rpc ep req in
      Alcotest.(check (option string)) "measure ok" (Some "ok") (reply_field first "status");
      Alcotest.(check (option string)) "simulated" (Some "simulated")
        (reply_field first "source");
      let second = rpc ep req in
      (match Json.parse second with
      | Error m -> Alcotest.failf "dup reply not JSON: %s" m
      | Ok j ->
        Alcotest.(check (option bool)) "flagged duplicate" (Some true)
          (Option.bind (Json.member "duplicate" j) Json.to_bool);
        let cycles r =
          match Json.parse r with
          | Ok j -> Option.bind (Json.member "total_cycles" j) Json.to_float
          | Error _ -> None
        in
        Alcotest.(check bool) "replayed, not re-run" true
          (cycles first = cycles second && cycles first <> None));
      (* Stats reflects the traffic. *)
      let stats = rpc ep {|{"op":"stats"}|} in
      Alcotest.(check (option string)) "stats ok" (Some "ok") (reply_field stats "status"))

let test_e2e_stop_is_idempotent () =
  let path = Filename.temp_file "inltune_serve_test" ".sock" in
  Sys.remove path;
  let ep = Proto.Unix_path path in
  let srv = Server.start ~config:{ Server.default_config with Server.quiet = true } ep in
  let ping = rpc ep {|{"op":"ping"}|} in
  Alcotest.(check (option string)) "alive" (Some "ok") (reply_field ping "status");
  Server.stop srv;
  Server.stop srv;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists path);
  (match Client.rpc ep {|{"op":"ping"}|} with
  | Ok r -> Alcotest.failf "stopped daemon answered: %s" r
  | Error _ -> ())

let suite =
  [
    ("proto parse full", `Quick, test_proto_parse_full);
    ("proto defaults", `Quick, test_proto_defaults);
    ("proto tune defaults", `Quick, test_proto_tune_defaults);
    ("proto rejects malformed", `Quick, test_proto_rejects_malformed);
    ("proto reply round trip", `Quick, test_proto_reply_round_trip);
    ("bucket burst then deny", `Quick, test_bucket_burst_then_deny);
    ("bucket tenants independent", `Quick, test_bucket_tenants_independent);
    ("bucket unlimited", `Quick, test_bucket_unlimited);
    ("admission shed when full", `Quick, test_admission_shed_when_full);
    ("admission expired deadline", `Quick, test_admission_expired_deadline_times_out);
    ("admission waiter wakes on release", `Quick, test_admission_queued_waiter_wakes_on_release);
    ("admission stop rejects everyone", `Quick, test_admission_stop_rejects_everyone);
    ("replycache first store wins", `Quick, test_replycache_first_store_wins);
    ("replycache fifo eviction", `Quick, test_replycache_fifo_eviction);
    ("e2e ping/measure/dedup", `Quick, test_e2e_ping_measure_dedup);
    ("e2e stop idempotent", `Quick, test_e2e_stop_is_idempotent);
  ]
