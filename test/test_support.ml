module Rng = Inltune_support.Rng
module Stats = Inltune_support.Stats
module Vec = Inltune_support.Vec
module Table = Inltune_support.Table
module Pool = Inltune_support.Pool

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_range_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.range r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_range_singleton () =
  let r = Rng.create 5 in
  Alcotest.(check int) "lo=hi" 9 (Rng.range r 9 9)

let test_rng_invalid () =
  let r = Rng.create 6 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.range: empty range") (fun () ->
      ignore (Rng.range r 3 2))

let test_rng_float_bounds () =
  let r = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy () =
  let a = Rng.create 10 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_chance_extremes () =
  let r = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.chance r 1.0);
    Alcotest.(check bool) "p=0 always false" false (Rng.chance r 0.0)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 12 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* --- Stats --- *)

let test_mean () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_geomean () =
  check_float "geomean of 2,8" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  check_float "geomean of identical" 3.0 (Stats.geomean [| 3.0; 3.0; 3.0 |])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_geomean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.geomean: empty") (fun () ->
      ignore (Stats.geomean [||]))

let test_min_max () =
  check_float "min" 1.0 (Stats.min_of [| 3.0; 1.0; 2.0 |]);
  check_float "max" 3.0 (Stats.max_of [| 3.0; 1.0; 2.0 |])

let test_stddev () =
  check_float "constant array" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check_float "spread" 2.0 (Stats.stddev [| 2.0; 6.0 |])

let test_reduction_pct () =
  check_float "17% reduction" 17.0 (Stats.reduction_pct 0.83);
  check_float "no change" 0.0 (Stats.reduction_pct 1.0)

let test_ratio () =
  check_float "ratio" 0.5 (Stats.ratio ~baseline:4.0 2.0);
  Alcotest.check_raises "zero baseline"
    (Invalid_argument "Stats.ratio: non-positive baseline") (fun () ->
      ignore (Stats.ratio ~baseline:0.0 1.0))

let test_percentile () =
  let xs = [| 30.0; 10.0; 50.0; 20.0; 40.0 |] in
  (* Nearest-rank: always an actual sample, never an interpolation. *)
  check_float "p0 = min" 10.0 (Stats.percentile xs 0.0);
  check_float "p50 = median" 30.0 (Stats.percentile xs 50.0);
  check_float "p90" 50.0 (Stats.percentile xs 90.0);
  check_float "p100 = max" 50.0 (Stats.percentile xs 100.0);
  check_float "singleton" 7.0 (Stats.percentile [| 7.0 |] 99.0);
  (* Input order must not matter, and the input must not be mutated. *)
  check_float "unsorted input" 20.0 (Stats.percentile xs 40.0);
  Alcotest.(check bool) "input untouched" true (xs = [| 30.0; 10.0; 50.0; 20.0; 40.0 |])

let test_percentile_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 101.0));
  Alcotest.check_raises "nan p" (Invalid_argument "Stats.percentile: p outside [0, 100]")
    (fun () -> ignore (Stats.percentile [| 1.0 |] nan))

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check int) "last" (99 * 99) (Vec.last v)

let test_vec_pop () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_array [| 1 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_vec_roundtrip () =
  let a = Array.init 37 (fun i -> i * 3) in
  Alcotest.(check (array int)) "roundtrip" a (Vec.to_array (Vec.of_array a))

let test_vec_append () =
  let a = Vec.of_array [| 1; 2 |] and b = Vec.of_array [| 3; 4 |] in
  Vec.append a b;
  Alcotest.(check (array int)) "append" [| 1; 2; 3; 4 |] (Vec.to_array a)

let test_vec_fold_iter () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold ( + ) 0 v);
  let count = ref 0 in
  Vec.iteri (fun i x -> count := !count + i + x) v;
  Alcotest.(check int) "iteri" (0 + 1 + 2 + 3 + 10) !count

let test_vec_clear () =
  let v = Vec.of_array [| 1; 2 |] in
  Vec.clear v;
  Alcotest.(check bool) "empty after clear" true (Vec.is_empty v)

(* --- Table --- *)

let test_table_renders () =
  let t =
    Table.create ~title:"T" ~header:[| "a"; "b" |] ~aligns:[| Table.Left; Table.Right |]
  in
  Table.add_row t [| "x"; "1" |];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 &&
      (let rec has i = i >= 0 && (l.[i] = 'x' || has (i-1)) in has (String.length l - 1))))

let test_table_arity_checked () =
  let t = Table.create ~title:"T" ~header:[| "a" |] ~aligns:[| Table.Left |] in
  Alcotest.check_raises "bad arity" (Invalid_argument "Table.add_row: wrong arity") (fun () ->
      Table.add_row t [| "x"; "y" |])

let test_table_bar_midpoint () =
  let b = Table.bar ~width:40 1.0 in
  Alcotest.(check int) "bar width" 40 (String.length b);
  Alcotest.(check char) "baseline mark" '|' b.[20]

(* --- Pool --- *)

let test_pool_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "parallel = sequential" (Array.map f input)
    (Pool.map ~domains:4 f input)

let test_pool_empty () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map (fun x -> x) [||])

let test_pool_single_domain () =
  let input = [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "domains:1" [| 2; 4; 6 |]
    (Pool.map ~domains:1 (fun x -> 2 * x) input)

let test_pool_propagates_exception () =
  let raised =
    try
      ignore (Pool.map ~domains:2 (fun x -> if x = 13 then failwith "boom" else x)
                (Array.init 64 (fun i -> i)));
      false
    with Pool.Worker_failure _ -> true
  in
  Alcotest.(check bool) "Worker_failure raised" true raised

let test_pool_order_preserved () =
  let input = Array.init 200 (fun i -> 200 - i) in
  let out = Pool.map ~domains:2 (fun x -> -x) input in
  Array.iteri (fun i x -> Alcotest.(check int) "order" (-(200 - i)) x) out

let test_pool_mapi () =
  let out = Pool.mapi ~domains:2 (fun i x -> i + x) [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "mapi" [| 10; 21; 32 |] out

let test_pool_map_result_isolates () =
  let input = Array.init 64 (fun i -> i) in
  let out =
    Pool.map_result ~domains:2 (fun x -> if x = 13 then failwith "boom" else 2 * x) input
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok y -> Alcotest.(check int) "survivor" (2 * i) y
      | Error (Failure m) ->
        Alcotest.(check int) "only index 13 fails" 13 i;
        Alcotest.(check string) "failure carried" "boom" m
      | Error e -> Alcotest.failf "unexpected error at %d: %s" i (Printexc.to_string e))
    out

let test_pool_worker_failure_index () =
  (* map reports the lowest failing index, whatever domain hit it. *)
  let idx =
    try
      ignore
        (Pool.map ~domains:4
           (fun x -> if x mod 20 = 17 then failwith "boom" else x)
           (Array.init 100 (fun i -> i)));
      -1
    with Pool.Worker_failure (i, Failure _) -> i
  in
  Alcotest.(check int) "lowest failing index" 17 idx

let test_pool_now_monotonic () =
  let a = Pool.now () in
  let b = Pool.now () in
  let c = Pool.now () in
  Alcotest.(check bool) "non-decreasing" true (a <= b && b <= c);
  Alcotest.(check bool) "plausible wall clock" true (a > 0.0)

let test_pool_persistent_reuse () =
  (* One explicit pool serves many batches; workers survive between them. *)
  let pool = Pool.create ~domains:2 () in
  let f x = (3 * x) + 1 in
  for round = 1 to 5 do
    let input = Array.init (16 * round) (fun i -> i + round) in
    let out = Pool.await (Pool.submit pool f input) in
    Array.iteri
      (fun i r ->
        match r with
        | Ok y -> Alcotest.(check int) "batch value" (f input.(i)) y
        | Error e -> Alcotest.failf "round %d item %d: %s" round i (Printexc.to_string e))
      out
  done;
  Pool.shutdown pool

let test_pool_drains_after_failure () =
  (* A failing batch must not wedge the pool: every item's outcome is
     recorded, and the same pool keeps serving later batches. *)
  let pool = Pool.create ~domains:2 () in
  let bad = Pool.await (Pool.submit pool (fun x -> if x mod 7 = 3 then failwith "boom" else x)
                          (Array.init 50 (fun i -> i))) in
  Array.iteri
    (fun i r ->
      match (r, i mod 7 = 3) with
      | Ok y, false -> Alcotest.(check int) "survivor" i y
      | Error (Failure _), true -> ()
      | Ok _, true -> Alcotest.failf "item %d should have failed" i
      | Error e, _ -> Alcotest.failf "unexpected error at %d: %s" i (Printexc.to_string e))
    bad;
  let ok = Pool.await (Pool.submit pool (fun x -> x * x) (Array.init 20 (fun i -> i))) in
  Array.iteri
    (fun i r ->
      match r with
      | Ok y -> Alcotest.(check int) "pool still usable" (i * i) y
      | Error e -> Alcotest.failf "post-failure item %d: %s" i (Printexc.to_string e))
    ok;
  Pool.shutdown pool

let test_pool_submit_after_shutdown () =
  (* A stopped pool degrades to caller-only evaluation instead of hanging. *)
  let pool = Pool.create ~domains:1 () in
  Pool.shutdown pool;
  let out = Pool.await (Pool.submit pool (fun x -> x + 1) [| 1; 2; 3 |]) in
  Alcotest.(check (array int)) "caller evaluates" [| 2; 3; 4 |]
    (Array.map (function Ok y -> y | Error _ -> -1) out)

let test_pool_max_workers_one () =
  (* max_workers:1 keeps everything on the submitting domain. *)
  let pool = Pool.create ~domains:2 () in
  let self = Domain.self () in
  let out =
    Pool.await
      (Pool.submit pool ~max_workers:1 (fun _ -> Domain.self () = self)
         (Array.init 30 (fun i -> i)))
  in
  Array.iter
    (function
      | Ok ran_on_caller -> Alcotest.(check bool) "ran on caller" true ran_on_caller
      | Error e -> Alcotest.failf "unexpected: %s" (Printexc.to_string e))
    out;
  Pool.shutdown pool

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 () in
  ignore (Pool.await (Pool.submit pool (fun x -> x + 1) [| 1; 2 |]));
  Pool.shutdown pool;
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Still usable after repeated shutdowns: the caller evaluates. *)
  let out = Pool.await (Pool.submit pool (fun x -> x * 2) [| 3 |]) in
  Alcotest.(check bool) "caller evaluates" true (out.(0) = Ok 6)

let test_pool_shutdown_concurrent_domains () =
  (* Several domains race to shut the same pool down: exactly one performs
     the join, the rest block until it finishes, and every caller returns
     only once no worker domain is running.  (A second join of the same
     domain would crash — this is the regression test for that.) *)
  let pool = Pool.create ~domains:2 () in
  ignore (Pool.await (Pool.submit pool (fun x -> x) (Array.init 32 Fun.id)));
  let racers = Array.init 4 (fun _ -> Domain.spawn (fun () -> Pool.shutdown pool)) in
  Array.iter Domain.join racers;
  Pool.shutdown pool;
  let out = Pool.await (Pool.submit pool (fun x -> x + 1) [| 41 |]) in
  Alcotest.(check bool) "drained pool still answers" true (out.(0) = Ok 42)

let test_pool_cancel_skips_unstarted () =
  (* max_workers:1 keeps every item unclaimed until await, so cancelling
     first deterministically skips the whole batch without running it. *)
  let pool = Pool.create ~domains:2 () in
  let ran = Atomic.make 0 in
  let task =
    Pool.submit pool ~max_workers:1
      (fun x -> Atomic.incr ran; x)
      (Array.init 10 Fun.id)
  in
  Pool.cancel task;
  Pool.cancel task;
  (* idempotent *)
  let out = Pool.await task in
  Array.iter
    (function
      | Error Pool.Cancelled -> ()
      | Ok _ -> Alcotest.fail "cancelled item executed"
      | Error e -> Alcotest.failf "unexpected: %s" (Printexc.to_string e))
    out;
  Alcotest.(check int) "nothing executed" 0 (Atomic.get ran);
  Pool.shutdown pool

let test_pool_cancelled_hook () =
  (* The cooperative hook the serve daemon's deadlines are built on: once it
     reports true, unclaimed items resolve as Cancelled without running. *)
  let pool = Pool.create ~domains:2 () in
  let task =
    Pool.submit pool ~max_workers:1
      ~cancelled:(fun () -> true)
      (fun x -> x) (Array.init 8 Fun.id)
  in
  let out = Pool.await task in
  Array.iter
    (function
      | Error Pool.Cancelled -> ()
      | r ->
        Alcotest.failf "expected Cancelled, got %s"
          (match r with Ok _ -> "Ok" | Error e -> Printexc.to_string e))
    out;
  Pool.shutdown pool

let test_pool_priority_batch_completes () =
  (* A priority batch submitted behind a bulk batch still completes with
     correct per-item results (ordering itself is a scheduling property; this
     pins down that the priority path never corrupts or drops outcomes). *)
  let pool = Pool.create ~domains:2 () in
  let bulk = Pool.submit pool (fun x -> x * x) (Array.init 200 Fun.id) in
  let pri = Pool.submit pool ~priority:true (fun x -> -x) (Array.init 20 Fun.id) in
  let pout = Pool.await pri in
  Array.iteri
    (fun i r ->
      match r with
      | Ok y -> Alcotest.(check int) "priority result" (-i) y
      | Error e -> Alcotest.failf "priority item %d: %s" i (Printexc.to_string e))
    pout;
  let bout = Pool.await bulk in
  Array.iteri
    (fun i r ->
      match r with
      | Ok y -> Alcotest.(check int) "bulk result" (i * i) y
      | Error e -> Alcotest.failf "bulk item %d: %s" i (Printexc.to_string e))
    bout;
  Pool.shutdown pool

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng range bounds", `Quick, test_rng_range_bounds);
    ("rng range singleton", `Quick, test_rng_range_singleton);
    ("rng invalid args", `Quick, test_rng_invalid);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng chance extremes", `Quick, test_rng_chance_extremes);
    ("rng shuffle is a permutation", `Quick, test_rng_shuffle_permutation);
    ("stats mean", `Quick, test_mean);
    ("stats geomean", `Quick, test_geomean);
    ("stats geomean rejects non-positive", `Quick, test_geomean_rejects_nonpositive);
    ("stats geomean empty", `Quick, test_geomean_empty);
    ("stats min/max", `Quick, test_min_max);
    ("stats stddev", `Quick, test_stddev);
    ("stats reduction pct", `Quick, test_reduction_pct);
    ("stats ratio", `Quick, test_ratio);
    ("stats percentile", `Quick, test_percentile);
    ("stats percentile rejects bad input", `Quick, test_percentile_rejects_bad_input);
    ("vec push/get", `Quick, test_vec_push_get);
    ("vec pop", `Quick, test_vec_pop);
    ("vec bounds checked", `Quick, test_vec_bounds);
    ("vec roundtrip", `Quick, test_vec_roundtrip);
    ("vec append", `Quick, test_vec_append);
    ("vec fold/iteri", `Quick, test_vec_fold_iter);
    ("vec clear", `Quick, test_vec_clear);
    ("table renders", `Quick, test_table_renders);
    ("table arity checked", `Quick, test_table_arity_checked);
    ("table bar midpoint", `Quick, test_table_bar_midpoint);
    ("pool matches sequential", `Quick, test_pool_matches_sequential);
    ("pool empty", `Quick, test_pool_empty);
    ("pool single domain", `Quick, test_pool_single_domain);
    ("pool propagates exceptions", `Quick, test_pool_propagates_exception);
    ("pool preserves order", `Quick, test_pool_order_preserved);
    ("pool mapi", `Quick, test_pool_mapi);
    ("pool map_result isolates failures", `Quick, test_pool_map_result_isolates);
    ("pool worker failure index", `Quick, test_pool_worker_failure_index);
    ("pool now monotonic", `Quick, test_pool_now_monotonic);
    ("pool persistent across batches", `Quick, test_pool_persistent_reuse);
    ("pool drains after worker failure", `Quick, test_pool_drains_after_failure);
    ("pool submit after shutdown", `Quick, test_pool_submit_after_shutdown);
    ("pool max_workers one", `Quick, test_pool_max_workers_one);
    ("pool shutdown idempotent", `Quick, test_pool_shutdown_idempotent);
    ("pool shutdown concurrent domains", `Quick, test_pool_shutdown_concurrent_domains);
    ("pool cancel skips unstarted", `Quick, test_pool_cancel_skips_unstarted);
    ("pool cancelled hook", `Quick, test_pool_cancelled_hook);
    ("pool priority batch completes", `Quick, test_pool_priority_batch_completes);
  ]
