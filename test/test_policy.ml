open Inltune_opt
open Inltune_vm
module W = Inltune_workloads
module Pool = Inltune_support.Pool
module Vec = Inltune_support.Vec
module Features = Inltune_policy.Features
module Dtree = Inltune_policy.Dtree
module Cart = Inltune_policy.Cart
module Dataset = Inltune_policy.Dataset
module Store = Inltune_policy.Store
module Apply = Inltune_policy.Apply
module Evaluate = Inltune_policy.Evaluate
module Measure = Inltune_core.Measure

(* --- feature extraction ------------------------------------------------- *)

let static_vectors bench =
  let p = W.Suites.program (W.Suites.find bench) in
  let ctx = Features.make_ctx p in
  Array.map (fun (_, x) -> Features.vector_to_string x) (Features.of_program ctx p)

let test_feature_shape () =
  let p = W.Suites.program (W.Suites.find "compress") in
  let ctx = Features.make_ctx p in
  let sites = Features.of_program ctx p in
  Alcotest.(check bool) "found call sites" true (Array.length sites > 0);
  Array.iter
    (fun (_, x) ->
      Alcotest.(check int) "vector arity" Features.dim (Array.length x);
      Array.iter
        (fun v -> Alcotest.(check bool) "finite feature" true (Float.is_finite v))
        x)
    sites;
  Alcotest.(check int) "names arity" Features.dim (Array.length Features.names)

let test_feature_determinism_static () =
  List.iter
    (fun bench ->
      Alcotest.(check (array string)) (bench ^ " static vectors stable")
        (static_vectors bench) (static_vectors bench))
    [ "compress"; "jess"; "antlr" ]

(* The dynamic path: replaying the optimizer (profile state and all) twice
   must enumerate byte-identical feature vectors in the same order. *)
let test_feature_determinism_dynamic () =
  let enum () =
    let cfg = { Dataset.default_config with Dataset.scenario = Machine.Adapt } in
    match Dataset.enumerate cfg [ W.Suites.find "compress" ] with
    | [ (_, sites) ] ->
      Array.map (fun (x, accept) -> Features.vector_to_string x ^ string_of_bool accept) sites
    | _ -> Alcotest.fail "expected one benchmark"
  in
  let a = enum () in
  Alcotest.(check bool) "saw decisions" true (Array.length a > 0);
  Alcotest.(check (array string)) "replay is byte-identical" a (enum ())

let test_feature_extraction_parallel () =
  let p = W.Suites.program (W.Suites.find "jess") in
  let ctx = Features.make_ctx p in
  let sites = Features.of_program ctx p in
  let sequential = Array.map (fun (_, x) -> Features.vector_to_string x) sites in
  let parallel =
    Pool.map ~domains:4
      (fun (s, _) -> Features.vector_to_string (Features.of_site ctx s))
      sites
  in
  Alcotest.(check (array string)) "Pool extraction matches sequential" sequential parallel

(* --- Policy.of_heuristic equivalence ------------------------------------ *)

let test_of_heuristic_matches_consider () =
  let h = Heuristic.default in
  let pol = Policy.of_heuristic h in
  let p = W.Suites.program (W.Suites.find "jess") in
  let ctx = Features.make_ctx p in
  Array.iter
    (fun ((s : Policy.site), _) ->
      let v = pol.Policy.decide s in
      Alcotest.(check bool) "cold decision"
        (Heuristic.consider h ~callee_size:s.Policy.callee_size
           ~inline_depth:s.Policy.inline_depth ~caller_size:s.Policy.caller_size)
        v.Policy.accept;
      let hot = pol.Policy.decide { s with Policy.hot = true } in
      Alcotest.(check bool) "hot decision"
        (Heuristic.consider_hot h ~callee_size:s.Policy.callee_size)
        hot.Policy.accept)
    (Features.of_program ctx p)

(* Acceptance criterion: the threshold policy must reproduce the Fig. 3
   procedure *exactly* on the test corpus — same per-site reasons, same
   transformed code. *)
let test_threshold_reproduces_heuristic_decisions () =
  let store = Store.Threshold Heuristic.default in
  List.iter
    (fun bm ->
      let p = W.Suites.program bm in
      let ctx = Features.make_ctx p in
      let pol = Apply.policy ~ctx store in
      Array.iter
        (fun m ->
          let dh = Vec.create () and dp = Vec.create () in
          let mh, _ = Inline.run ~decisions:dh ~program:p ~heuristic:Heuristic.default m in
          let mp, _ = Inline.run_policy ~decisions:dp ~program:p ~policy:pol m in
          let summarize v =
            Array.map
              (fun (d : Inline.decision) ->
                Printf.sprintf "%d->%d %s %b" d.Inline.d_site_owner d.Inline.d_callee
                  (Inline.reason_name d.Inline.d_reason)
                  (Inline.decision_accepts d))
              (Vec.to_array v)
          in
          Alcotest.(check (array string))
            (bm.W.Suites.bname ^ "/" ^ m.Inltune_jir.Ir.mname ^ " decisions")
            (summarize dh) (summarize dp);
          Alcotest.(check bool)
            (bm.W.Suites.bname ^ "/" ^ m.Inltune_jir.Ir.mname ^ " code")
            true (mh = mp))
        p.Inltune_jir.Ir.methods)
    W.Suites.dacapo

let test_threshold_end_to_end_equals_default () =
  List.iter
    (fun scenario ->
      let bm = W.Suites.find "antlr" in
      let d = Measure.run ~scenario ~platform:Platform.x86 ~heuristic:Heuristic.default bm in
      let t =
        Evaluate.measure ~scenario ~platform:Platform.x86 (Store.Threshold Heuristic.default) bm
      in
      Alcotest.(check int) "total cycles" d.Measure.raw.Runner.total_cycles
        t.Measure.raw.Runner.total_cycles;
      Alcotest.(check int) "running cycles" d.Measure.raw.Runner.running_cycles
        t.Measure.raw.Runner.running_cycles;
      Alcotest.(check int) "checksum" d.Measure.raw.Runner.ret t.Measure.raw.Runner.ret)
    [ Machine.Opt; Machine.Adapt ]

(* --- decision trees ------------------------------------------------------ *)

let test_dtree_decide () =
  let t =
    Dtree.Split
      {
        feat = 0;
        thresh = 10.0;
        le = Dtree.Leaf true;
        gt = Dtree.Split { feat = 1; thresh = 2.0; le = Dtree.Leaf false; gt = Dtree.Leaf true };
      }
  in
  Alcotest.(check bool) "left leaf" true (Dtree.decide t [| 10.0; 0.0 |]);
  Alcotest.(check bool) "right-left leaf" false (Dtree.decide t [| 11.0; 2.0 |]);
  Alcotest.(check bool) "right-right leaf" true (Dtree.decide t [| 11.0; 2.5 |]);
  Alcotest.(check int) "size" 5 (Dtree.size t);
  Alcotest.(check int) "depth" 3 (Dtree.depth t)

let test_dtree_text_round_trip () =
  let t =
    Dtree.Split
      {
        feat = 3;
        thresh = 0.5;
        le = Dtree.Leaf false;
        gt = Dtree.Split { feat = 0; thresh = 22.75; le = Dtree.Leaf true; gt = Dtree.Leaf false };
      }
  in
  match Dtree.of_text ~dim:Features.dim (Dtree.to_text t) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok t' -> Alcotest.(check bool) "tree preserved" true (t = t')

let test_dtree_text_rejects_garbage () =
  let bad text =
    match Dtree.of_text ~dim:Features.dim text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted garbage: %s" (String.escaped text)
  in
  bad "";
  bad "leaf maybe\n";
  bad "split 0 1.0\nleaf inline\n";  (* missing right child *)
  bad "split 99 1.0\nleaf inline\nleaf no-inline\n";  (* feature out of range *)
  bad "split 0 nan\nleaf inline\nleaf no-inline\n";  (* non-finite threshold *)
  bad "split zero 1.0\nleaf inline\nleaf no-inline\n";
  bad "leaf inline\nleaf no-inline\n"  (* trailing garbage *)

let test_cart_learns_separable_rule () =
  (* label = (x0 <= 10) && (x1 > 3): CART must recover it exactly. *)
  let examples =
    Array.init 200 (fun i ->
        let x0 = Float.of_int (i mod 20) and x1 = Float.of_int (i / 20) in
        ([| x0; x1 |], x0 <= 10.0 && x1 > 3.0))
  in
  let tree = Cart.train ~params:{ Cart.max_depth = 4; min_leaf = 1; min_gain = 1e-9 } examples in
  Alcotest.(check (float 0.0)) "perfect accuracy" 1.0 (Cart.accuracy tree examples);
  (* Training is deterministic: re-training yields the identical tree. *)
  let tree' = Cart.train ~params:{ Cart.max_depth = 4; min_leaf = 1; min_gain = 1e-9 } examples in
  Alcotest.(check bool) "deterministic" true (tree = tree')

let test_cart_degenerate_inputs () =
  Alcotest.(check bool) "empty -> reject-all leaf" true (Cart.train [||] = Dtree.Leaf false);
  let pure = Array.init 10 (fun i -> ([| Float.of_int i |], true)) in
  Alcotest.(check bool) "pure -> accept leaf" true (Cart.train pure = Dtree.Leaf true);
  let tr, te = Cart.split ~k:4 (Array.init 8 (fun i -> ([| Float.of_int i |], true))) in
  Alcotest.(check int) "train size" 6 (Array.length tr);
  Alcotest.(check int) "test size" 2 (Array.length te)

(* --- policy store -------------------------------------------------------- *)

let test_store_round_trip () =
  let tree =
    Store.Tree
      (Dtree.Split { feat = 0; thresh = 22.5; le = Dtree.Leaf true; gt = Dtree.Leaf false })
  in
  let thr = Store.Threshold Heuristic.default in
  List.iter
    (fun s ->
      match Store.of_string (Store.to_string s) with
      | Error e -> Alcotest.failf "round trip failed: %s" e
      | Ok s' -> Alcotest.(check bool) "store preserved" true (s = s'))
    [ tree; thr ]

(* GP predicate trees are policy artifacts too: random genomes must
   round-trip through their canonical text form just like stores do.  The
   full property (200 random seeds) lives in the gp suite; this keeps the
   artifact-format contract visible next to the store tests. *)
let test_gp_tree_round_trip () =
  let module Gp = Inltune_gp in
  for seed = 1 to 20 do
    let t = Gp.Genetic.random (Inltune_support.Rng.create seed) in
    match Gp.Tree.of_string ~dim:Features.dim (Gp.Tree.to_string t) with
    | Error e -> Alcotest.failf "gp round trip failed: %s" e
    | Ok t' ->
      Alcotest.(check string) "canonical text preserved" (Gp.Tree.to_text t)
        (Gp.Tree.to_text t');
      Alcotest.(check string) "digest stable" (Gp.Tree.digest t) (Gp.Tree.digest t')
  done

let test_store_clamps_threshold_genes () =
  (* Out-of-range parameters clamp exactly like GA genomes (Table 1). *)
  match Store.of_string "inltune-policy v1 threshold\n9999 9999 9999 9999 9999\n" with
  | Error e -> Alcotest.failf "clampable genome rejected: %s" e
  | Ok (Store.Threshold h) ->
    Alcotest.(check bool) "clamped into Table 1 ranges" true
      (Heuristic.equal h (Heuristic.of_array [| 9999; 9999; 9999; 9999; 9999 |]))
  | Ok _ -> Alcotest.fail "wrong kind"

let test_store_rejects_corrupt () =
  let bad text =
    match Store.of_string text with
    | Error e ->
      Alcotest.(check bool) "one-line error" false (String.contains e '\n')
    | Ok _ -> Alcotest.failf "accepted corrupt policy: %s" (String.escaped text)
  in
  bad "";
  bad "not a policy\nstuff\n";
  bad "inltune-policy v2 tree\nleaf inline\n";
  bad "inltune-policy v1 threshold\n1 2 3\n";  (* wrong arity *)
  bad "inltune-policy v1 threshold\n1 2 three 4 5\n";
  bad "inltune-policy v1 tree\nsplit 0 1.0\nleaf inline\n";
  Alcotest.(check bool) "missing file is an Error" true
    (match Store.load "/nonexistent/policy.txt" with Error _ -> true | Ok _ -> false)

(* --- datasets ------------------------------------------------------------ *)

let example =
  {
    Dataset.x_bench = "compress";
    x_ordinal = 7;
    x_features = [| 1.0; 2.5; 0.0 |];
    x_base = true;
    x_label = false;
    x_benefit = 0.03125;
  }

let test_dataset_line_round_trip () =
  match Dataset.of_line (Dataset.to_line example) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok e' -> Alcotest.(check bool) "example preserved" true (example = e')

let test_dataset_load_skips_malformed () =
  let path = Filename.temp_file "inltune_ds" ".jsonl" in
  let oc = open_out path in
  output_string oc (Dataset.to_line example ^ "\n");
  output_string oc "{\"bench\":\"trunca\n";
  output_string oc (Dataset.to_line { example with Dataset.x_ordinal = 8 } ^ "\n");
  close_out oc;
  let examples, bad = Dataset.load path in
  Sys.remove path;
  Alcotest.(check int) "two examples" 2 (List.length examples);
  Alcotest.(check int) "one malformed line" 1 bad

let tiny_config =
  { Dataset.default_config with Dataset.max_sites = 2; iterations = 2 }

let test_dataset_generate_and_resume () =
  let bench = [ W.Suites.find "compress" ] in
  let path = Filename.temp_file "inltune_ds_resume" ".jsonl" in
  Sys.remove path;
  let first = Dataset.generate ~resume:path tiny_config bench in
  Alcotest.(check int) "labeled max_sites examples" 2 (List.length first);
  List.iter
    (fun e ->
      Alcotest.(check string) "bench name" "compress" e.Dataset.x_bench;
      Alcotest.(check int) "feature arity" Features.dim (Array.length e.Dataset.x_features);
      Alcotest.(check bool) "finite benefit" true (Float.is_finite e.Dataset.x_benefit))
    first;
  (* Resuming re-measures nothing: the labeled-sites counter stands still and
     the examples come back identical (from the file). *)
  let before = Inltune_obs.Metric.value (Inltune_obs.Metric.counter "policy.sites_labeled") in
  let second = Dataset.generate ~resume:path tiny_config bench in
  let after = Inltune_obs.Metric.value (Inltune_obs.Metric.counter "policy.sites_labeled") in
  Sys.remove path;
  Alcotest.(check int) "no new labels on resume" before after;
  Alcotest.(check bool) "resumed examples identical" true (first = second)

let test_dataset_labels_match_enumeration () =
  let bench = [ W.Suites.find "compress" ] in
  let enum =
    match Dataset.enumerate tiny_config bench with
    | [ (_, sites) ] -> sites
    | _ -> Alcotest.fail "expected one benchmark"
  in
  let examples = Dataset.generate tiny_config bench in
  List.iteri
    (fun i e ->
      let feats, accept = enum.(i) in
      Alcotest.(check string) "features match enumeration"
        (Features.vector_to_string feats)
        (Features.vector_to_string e.Dataset.x_features);
      Alcotest.(check bool) "base decision matches" accept e.Dataset.x_base)
    examples

(* --- end to end ---------------------------------------------------------- *)

(* Whatever a tree decides, inlining is semantics-preserving: program output
   must equal the default system's output. *)
let test_tree_policy_preserves_semantics () =
  List.iter
    (fun (feat, thresh) ->
      let store =
        Store.Tree (Dtree.Split { feat; thresh; le = Dtree.Leaf true; gt = Dtree.Leaf false })
      in
      List.iter
        (fun bench ->
          let bm = W.Suites.find bench in
          let d = Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm in
          let l = Evaluate.measure ~scenario:Machine.Opt ~platform:Platform.x86 store bm in
          Alcotest.(check int) (bench ^ " checksum") d.Measure.raw.Runner.ret
            l.Measure.raw.Runner.ret;
          Alcotest.(check int) (bench ^ " output hash") d.Measure.raw.Runner.out_hash
            l.Measure.raw.Runner.out_hash)
        [ "compress"; "fop" ])
    [ (0, 30.0); (8, 0.5) ]

let test_trained_policy_end_to_end () =
  let examples = Dataset.generate tiny_config [ W.Suites.find "compress" ] in
  let tree = Cart.train (Dataset.to_training examples) in
  let store = Store.Tree tree in
  (* Round-trip through serialization before running, as the CLI would. *)
  let store =
    match Store.of_string (Store.to_string store) with
    | Ok s -> s
    | Error e -> Alcotest.failf "trained tree does not round-trip: %s" e
  in
  let bm = W.Suites.find "antlr" in
  let d = Measure.run_default ~scenario:Machine.Opt ~platform:Platform.x86 bm in
  let l = Evaluate.measure ~scenario:Machine.Opt ~platform:Platform.x86 store bm in
  Alcotest.(check int) "semantics preserved" d.Measure.raw.Runner.ret l.Measure.raw.Runner.ret;
  let report =
    Evaluate.compare ~scenario:Machine.Opt ~platform:Platform.x86 store [ bm ]
  in
  let geo = Evaluate.learned_geo report in
  Alcotest.(check bool) "finite geomean" true
    (Float.is_finite geo.Evaluate.g_running && Float.is_finite geo.Evaluate.g_total);
  Alcotest.(check bool) "tuned column absent" true (Evaluate.tuned_geo report = None)

let suite =
  [
    Alcotest.test_case "feature vectors: shape and finiteness" `Quick test_feature_shape;
    Alcotest.test_case "feature vectors: static determinism" `Quick test_feature_determinism_static;
    Alcotest.test_case "feature vectors: dynamic replay determinism" `Quick
      test_feature_determinism_dynamic;
    Alcotest.test_case "feature vectors: parallel == sequential" `Quick
      test_feature_extraction_parallel;
    Alcotest.test_case "of_heuristic matches consider/consider_hot" `Quick
      test_of_heuristic_matches_consider;
    Alcotest.test_case "threshold policy reproduces Fig. 3 decisions" `Quick
      test_threshold_reproduces_heuristic_decisions;
    Alcotest.test_case "threshold policy: end-to-end cycle parity" `Quick
      test_threshold_end_to_end_equals_default;
    Alcotest.test_case "dtree: decide/size/depth" `Quick test_dtree_decide;
    Alcotest.test_case "dtree: text round trip" `Quick test_dtree_text_round_trip;
    Alcotest.test_case "dtree: rejects malformed text" `Quick test_dtree_text_rejects_garbage;
    Alcotest.test_case "cart: learns a separable rule" `Quick test_cart_learns_separable_rule;
    Alcotest.test_case "cart: degenerate inputs" `Quick test_cart_degenerate_inputs;
    Alcotest.test_case "store: round trip" `Quick test_store_round_trip;
    Alcotest.test_case "store: gp tree round trip" `Quick test_gp_tree_round_trip;
    Alcotest.test_case "store: clamps threshold genes" `Quick test_store_clamps_threshold_genes;
    Alcotest.test_case "store: rejects corrupt files" `Quick test_store_rejects_corrupt;
    Alcotest.test_case "dataset: line round trip" `Quick test_dataset_line_round_trip;
    Alcotest.test_case "dataset: load skips malformed lines" `Quick
      test_dataset_load_skips_malformed;
    Alcotest.test_case "dataset: generate + resume" `Quick test_dataset_generate_and_resume;
    Alcotest.test_case "dataset: labels match enumeration" `Quick
      test_dataset_labels_match_enumeration;
    Alcotest.test_case "tree policy preserves semantics" `Quick
      test_tree_policy_preserves_semantics;
    Alcotest.test_case "trained policy end to end" `Quick test_trained_policy_end_to_end;
  ]
