open Inltune_jir
open Inltune_opt
module B = Builder

(* --- Heuristic: the paper's Fig. 3 / Fig. 4 semantics, test by test --- *)

let h = Heuristic.default

let test_fig3_callee_too_big () =
  Alcotest.(check bool) "size > CALLEE_MAX -> no" false
    (Heuristic.consider h ~callee_size:24 ~inline_depth:1 ~caller_size:10)

let test_fig3_always_inline_beats_depth () =
  (* Order matters: a tiny callee is inlined even past the depth limit. *)
  Alcotest.(check bool) "tiny callee inlined at huge depth" true
    (Heuristic.consider h ~callee_size:10 ~inline_depth:99 ~caller_size:10)

let test_fig3_always_inline_beats_caller () =
  Alcotest.(check bool) "tiny callee inlined into huge caller" true
    (Heuristic.consider h ~callee_size:10 ~inline_depth:1 ~caller_size:1_000_000)

let test_fig3_depth_limit () =
  Alcotest.(check bool) "depth 5 allowed" true
    (Heuristic.consider h ~callee_size:15 ~inline_depth:5 ~caller_size:10);
  Alcotest.(check bool) "depth 6 blocked" false
    (Heuristic.consider h ~callee_size:15 ~inline_depth:6 ~caller_size:10)

let test_fig3_caller_limit () =
  Alcotest.(check bool) "caller 2048 allowed" true
    (Heuristic.consider h ~callee_size:15 ~inline_depth:1 ~caller_size:2048);
  Alcotest.(check bool) "caller 2049 blocked" false
    (Heuristic.consider h ~callee_size:15 ~inline_depth:1 ~caller_size:2049)

let test_fig3_all_tests_pass () =
  Alcotest.(check bool) "band callee inlined" true
    (Heuristic.consider h ~callee_size:15 ~inline_depth:2 ~caller_size:100)

let test_fig4_hot () =
  Alcotest.(check bool) "hot 135 yes" true (Heuristic.consider_hot h ~callee_size:135);
  Alcotest.(check bool) "hot 136 no" false (Heuristic.consider_hot h ~callee_size:136)

let test_never_heuristic () =
  for size = 1 to 100 do
    Alcotest.(check bool) "never inlines" false
      (Heuristic.consider Heuristic.never ~callee_size:size ~inline_depth:1 ~caller_size:1)
  done

let test_heuristic_roundtrip () =
  let g = [| 12; 7; 3; 900; 222 |] in
  Alcotest.(check (array int)) "roundtrip" g (Heuristic.to_array (Heuristic.of_array g))

let test_heuristic_of_array_arity () =
  Alcotest.check_raises "bad arity" (Invalid_argument "Heuristic.of_array: need 5 genes")
    (fun () -> ignore (Heuristic.of_array [| 1; 2 |]))

let test_heuristic_of_array_clamps () =
  (* Out-of-range genes (corrupt checkpoint, hand-written genome) clamp into
     the Table 1 ranges instead of producing an impossible heuristic. *)
  let low = Heuristic.of_array [| 0; -3; 0; -100; 0 |] in
  Alcotest.(check (array int)) "clamped to lower bounds" [| 1; 1; 1; 1; 1 |]
    (Heuristic.to_array low);
  let high = Heuristic.of_array [| 99; 999; 999; 99999; 9999 |] in
  Alcotest.(check (array int)) "clamped to upper bounds" [| 50; 20; 15; 4000; 400 |]
    (Heuristic.to_array high);
  Array.iteri
    (fun i (lo, hi) ->
      Alcotest.(check bool) "bounds match Table 1" true
        (lo = 1 && hi = [| 50; 20; 15; 4000; 400 |].(i)))
    Heuristic.ranges

let test_clamp_to_ranges () =
  let clamped = Heuristic.clamp_to_ranges [| 0; 100; -3; 9999; 0 |] in
  Alcotest.(check (array int)) "clamped" [| 1; 20; 1; 4000; 1 |] clamped

let test_ranges_match_paper () =
  Alcotest.(check (array (pair int int))) "Table 1 ranges"
    [| (1, 50); (1, 20); (1, 15); (1, 4000); (1, 400) |]
    Heuristic.ranges

let test_default_matches_jikes () =
  Alcotest.(check (array int)) "Jikes defaults" [| 23; 11; 5; 2048; 135 |]
    (Heuristic.to_array Heuristic.default)

(* --- Inline: structural behaviour on hand-built programs --- *)

let tiny_with_helper () =
  (* main -> wrap(x) -> helper(x); helper is tiny, wrap is band-size. *)
  let b = B.create "inline_test" in
  let helper =
    B.method_ b ~name:"helper" ~nargs:1 (fun mb ->
        let one = B.const mb 1 in
        let r = B.add mb 0 one in
        B.ret mb r)
  in
  let wrap =
    B.method_ b ~name:"wrap" ~nargs:1 (fun mb ->
        let r = B.call mb helper [ 0 ] in
        let r2 = B.add mb r 0 in
        B.ret mb r2)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let x = B.const mb 41 in
        let r = B.call mb wrap [ x ] in
        B.print mb r;
        B.ret mb r)
  in
  B.set_main b main;
  (B.finish b, helper, wrap, main)

let count_calls m =
  Array.fold_left
    (fun acc blk ->
      Array.fold_left
        (fun acc i -> match i with Ir.Call _ | Ir.CallVirt _ -> acc + 1 | _ -> acc)
        acc blk.Ir.instrs)
    0 m.Ir.blocks

let test_inline_removes_call () =
  let p, _, _, main = tiny_with_helper () in
  let m, stats = Inline.run ~program:p ~heuristic:Heuristic.default p.Ir.methods.(main) in
  Alcotest.(check int) "no calls left" 0 (count_calls m);
  Alcotest.(check int) "two sites seen" 2 stats.Inline.sites_seen;
  Alcotest.(check int) "two sites inlined" 2 stats.Inline.sites_inlined;
  Validate.check_exn { p with Ir.methods = Array.map (fun x -> if x.Ir.mid = main then m else x) p.Ir.methods }

let test_inline_never_heuristic_is_identity_shape () =
  let p, _, _, main = tiny_with_helper () in
  let m, stats = Inline.run ~program:p ~heuristic:Heuristic.never p.Ir.methods.(main) in
  Alcotest.(check int) "call kept" 1 (count_calls m);
  Alcotest.(check int) "nothing inlined" 0 stats.Inline.sites_inlined

let test_inline_depth_zero_blocks_band () =
  let p, _, _, main = tiny_with_helper () in
  (* wrap is band-size (>= always_inline); depth 0 must block it while the
     tiny helper below would still be inlined if reached. *)
  let h = { Heuristic.default with Heuristic.max_inline_depth = 0; always_inline_size = 1 } in
  let m, _ = Inline.run ~program:p ~heuristic:h p.Ir.methods.(main) in
  Alcotest.(check int) "call survives at depth 0" 1 (count_calls m)

let test_inline_respects_callee_max () =
  let p, _, wrap, main = tiny_with_helper () in
  let wrap_size = Size.of_method p.Ir.methods.(wrap) in
  let h =
    { Heuristic.never with Heuristic.callee_max_size = wrap_size - 1; always_inline_size = 0 }
  in
  let m, _ = Inline.run ~program:p ~heuristic:h p.Ir.methods.(main) in
  Alcotest.(check int) "wrap too big" 1 (count_calls m)

let test_inline_recursion_guard () =
  let b = B.create "rec" in
  let f = B.declare b ~name:"f" ~nargs:1 in
  B.define b f (fun mb ->
      let one = B.const mb 1 in
      let x = B.sub mb 0 one in
      let r = B.call mb f [ x ] in
      B.ret mb r);
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let z = B.const mb 3 in
        let r = B.call mb f [ z ] in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  (* With an aggressive heuristic, the self-call inside f must never unroll
     endlessly: f can be inlined into main once, but f-within-f is refused. *)
  let h = { Heuristic.default with Heuristic.always_inline_size = 20 } in
  let m, _ = Inline.run ~program:p ~heuristic:h p.Ir.methods.(main) in
  Alcotest.(check bool) "terminates with bounded size" true (Size.of_method m < 200)

let test_inline_grows_registers_not_blocks_lost () =
  let p, _, _, main = tiny_with_helper () in
  let before = p.Ir.methods.(main) in
  let m, _ = Inline.run ~program:p ~heuristic:Heuristic.default before in
  Alcotest.(check bool) "nregs grew" true (m.Ir.nregs > before.Ir.nregs);
  Alcotest.(check bool) "blocks grew" true (Array.length m.Ir.blocks > Array.length before.Ir.blocks)

let test_inline_hot_site_path () =
  let p, _helper, wrap, main = tiny_with_helper () in
  let wrap_size = Size.of_method p.Ir.methods.(wrap) in
  (* Static tests would refuse wrap (callee_max below its size), but the hot
     path allows anything up to hot_callee_max_size. *)
  let h =
    {
      Heuristic.never with
      Heuristic.hot_callee_max_size = wrap_size;
      callee_max_size = 0;
    }
  in
  let hot_site ~site_owner:_ ~callee:_ = true in
  let m, stats = Inline.run ~hot_site ~program:p ~heuristic:h p.Ir.methods.(main) in
  Alcotest.(check bool) "hot site inlined" true (stats.Inline.hot_sites_inlined >= 1);
  ignore m

(* --- Inline: decision records --- *)

let decision_reasons ?hot_site ~heuristic p main =
  let ds = Inltune_support.Vec.create () in
  let _ = Inline.run ?hot_site ~decisions:ds ~program:p ~heuristic p.Ir.methods.(main) in
  Array.map (fun d -> Inline.reason_name d.Inline.d_reason) (Inltune_support.Vec.to_array ds)

let test_decision_reasons_default () =
  let p, _, _, main = tiny_with_helper () in
  (* Both wrap and the helper revealed by inlining it sit below
     ALWAYS_INLINE_SIZE, so the second Fig. 3 test fires for each. *)
  Alcotest.(check (array string)) "reasons"
    [| "always_inline"; "always_inline" |]
    (decision_reasons ~heuristic:Heuristic.default p main);
  (* Shrinking ALWAYS_INLINE_SIZE to 1 pushes both sites through the full
     test chain instead. *)
  let h = { Heuristic.default with Heuristic.always_inline_size = 1 } in
  Alcotest.(check (array string)) "reasons without the always-inline shortcut"
    [| "all_tests_pass"; "all_tests_pass" |]
    (decision_reasons ~heuristic:h p main)

let test_decision_reasons_never () =
  let p, _, _, main = tiny_with_helper () in
  Alcotest.(check (array string)) "everything too big" [| "callee_too_big" |]
    (decision_reasons ~heuristic:Heuristic.never p main)

let test_decision_reasons_recursive () =
  let b = B.create "rec2" in
  let f = B.declare b ~name:"f" ~nargs:1 in
  B.define b f (fun mb ->
      let one = B.const mb 1 in
      let x = B.sub mb 0 one in
      let r = B.call mb f [ x ] in
      B.ret mb r);
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let z = B.const mb 3 in
        let r = B.call mb f [ z ] in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  let h = { Heuristic.default with Heuristic.always_inline_size = 20 } in
  let reasons = decision_reasons ~heuristic:h p main in
  Alcotest.(check bool) "self call recorded as recursive" true
    (Array.exists (fun r -> r = "recursive") reasons)

let test_decision_reasons_hot () =
  let p, _, wrap, main = tiny_with_helper () in
  let wrap_size = Size.of_method p.Ir.methods.(wrap) in
  let h =
    { Heuristic.never with Heuristic.hot_callee_max_size = wrap_size; callee_max_size = 0 }
  in
  let hot_site ~site_owner:_ ~callee:_ = true in
  let reasons = decision_reasons ~hot_site ~heuristic:h p main in
  Alcotest.(check bool) "hot path reason recorded" true
    (Array.exists (fun r -> r = "hot_accept") reasons)

(* --- Constprop --- *)

let build_single ~nregs ~instrs ~term =
  let m = { Ir.mid = 0; mname = "m"; nargs = 0; nregs; blocks = [| { Ir.instrs; term } |] } in
  let p = { Ir.pname = "t"; methods = [| m |]; classes = [||]; main = 0 } in
  (p, m)

let test_constprop_folds_binop () =
  let p, m =
    build_single ~nregs:3
      ~instrs:[| Ir.Const (0, 6); Ir.Const (1, 7); Ir.Binop (Ir.Mul, 2, 0, 1) |]
      ~term:(Ir.Ret 2)
  in
  let m', stats = Constprop.run p m in
  Alcotest.(check bool) "folded" true (stats.Constprop.folded >= 1);
  (match m'.Ir.blocks.(0).Ir.instrs.(2) with
  | Ir.Const (2, 42) -> ()
  | i -> Alcotest.failf "expected Const(2,42), got %s" (Fmt.str "%a" Pp.pp_instr i))

let test_constprop_folds_branch () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 2;
      blocks =
        [|
          { Ir.instrs = [| Ir.Const (0, 1) |]; term = Ir.Branch (0, 1, 2) };
          { Ir.instrs = [| Ir.Const (1, 10) |]; term = Ir.Ret 1 };
          { Ir.instrs = [| Ir.Const (1, 20) |]; term = Ir.Ret 1 };
        |];
    }
  in
  let p = { Ir.pname = "t"; methods = [| m |]; classes = [||]; main = 0 } in
  let m', stats = Constprop.run p m in
  Alcotest.(check int) "branch folded" 1 stats.Constprop.branches_folded;
  (match m'.Ir.blocks.(0).Ir.term with
  | Ir.Jump 1 -> ()
  | _ -> Alcotest.fail "expected jump to then-branch")

let test_constprop_identity_simplification () =
  let p, m =
    build_single ~nregs:3
      ~instrs:[| Ir.Const (0, 0); Ir.Load (1, 0, 1); Ir.Binop (Ir.Add, 2, 1, 0) |]
      ~term:(Ir.Ret 2)
  in
  (* r1 is unknown (load), r0 = 0: r1 + 0 should become a move. *)
  let m', _ = Constprop.run p m in
  match m'.Ir.blocks.(0).Ir.instrs.(2) with
  | Ir.Move (2, 1) -> ()
  | i -> Alcotest.failf "expected Move(2,1), got %s" (Fmt.str "%a" Pp.pp_instr i)

let test_constprop_devirtualizes () =
  let b = B.create "devirt" in
  let impl =
    B.method_ b ~name:"impl" ~nargs:2 (fun mb ->
        let r = B.add mb 0 1 in
        B.ret mb r)
  in
  let k = B.new_class b ~name:"k" ~vtable:[| impl |] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let o = B.alloc mb k ~slots:1 in
        let x = B.const mb 5 in
        let r = B.call_virt mb ~slot:0 o [ x ] in
        B.ret mb r)
  in
  B.set_main b main;
  let p = B.finish b in
  let m', stats = Constprop.run p p.Ir.methods.(main) in
  Alcotest.(check int) "one devirtualized" 1 stats.Constprop.devirtualized;
  let has_static_call =
    Array.exists
      (fun blk -> Array.exists (fun i -> match i with Ir.Call (_, t, _) -> t = impl | _ -> false)
          blk.Ir.instrs)
      m'.Ir.blocks
  in
  Alcotest.(check bool) "virtual became static" true has_static_call

let test_constprop_join_conflicting_consts () =
  (* Diamond assigning different constants must NOT fold the use. *)
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 1; nregs = 3;
      blocks =
        [|
          { Ir.instrs = [||]; term = Ir.Branch (0, 1, 2) };
          { Ir.instrs = [| Ir.Const (1, 1) |]; term = Ir.Jump 3 };
          { Ir.instrs = [| Ir.Const (1, 2) |]; term = Ir.Jump 3 };
          { Ir.instrs = [| Ir.Move (2, 1) |]; term = Ir.Ret 2 };
        |];
    }
  in
  let p = { Ir.pname = "t"; methods = [| m |]; classes = [||]; main = 0 } in
  (* main must have 0 args to validate; skip validation here on purpose and
     just check the rewrite. *)
  let m', _ = Constprop.run p m in
  match m'.Ir.blocks.(3).Ir.instrs.(0) with
  | Ir.Move (2, 1) -> ()
  | i -> Alcotest.failf "join folded incorrectly: %s" (Fmt.str "%a" Pp.pp_instr i)

(* --- Copyprop --- *)

let test_copyprop_rewrites_local_use () =
  let p, m =
    build_single ~nregs:3
      ~instrs:[| Ir.Const (0, 5); Ir.Move (1, 0); Ir.Binop (Ir.Add, 2, 1, 1) |]
      ~term:(Ir.Ret 2)
  in
  ignore p;
  let m', n = Copyprop.run m in
  Alcotest.(check bool) "rewrote uses" true (n >= 2);
  match m'.Ir.blocks.(0).Ir.instrs.(2) with
  | Ir.Binop (Ir.Add, 2, 0, 0) -> ()
  | i -> Alcotest.failf "expected Add(2,0,0), got %s" (Fmt.str "%a" Pp.pp_instr i)

let test_copyprop_invalidated_by_redefinition () =
  let p, m =
    build_single ~nregs:3
      ~instrs:
        [| Ir.Const (0, 5); Ir.Move (1, 0); Ir.Const (0, 9); Ir.Binop (Ir.Add, 2, 1, 1) |]
      ~term:(Ir.Ret 2)
  in
  ignore p;
  let m', _ = Copyprop.run m in
  (* After r0 is redefined, r1 must not be rewritten back to r0. *)
  match m'.Ir.blocks.(0).Ir.instrs.(3) with
  | Ir.Binop (Ir.Add, 2, 1, 1) -> ()
  | i -> Alcotest.failf "copy used after invalidation: %s" (Fmt.str "%a" Pp.pp_instr i)

(* --- DCE --- *)

let test_dce_removes_dead_pure () =
  let p, m =
    build_single ~nregs:3
      ~instrs:[| Ir.Const (0, 5); Ir.Const (1, 6); Ir.Binop (Ir.Mul, 2, 1, 1) |]
      ~term:(Ir.Ret 0)
  in
  ignore p;
  let m', removed = Dce.run m in
  Alcotest.(check int) "removed two" 2 removed;
  Alcotest.(check int) "one instr left" 1 (Array.length m'.Ir.blocks.(0).Ir.instrs)

let test_dce_keeps_side_effects () =
  let p, m =
    build_single ~nregs:2
      ~instrs:[| Ir.Const (0, 5); Ir.Print 0; Ir.Const (1, 7) |]
      ~term:(Ir.Ret 0)
  in
  ignore p;
  let m', removed = Dce.run m in
  Alcotest.(check int) "only dead const removed" 1 removed;
  Alcotest.(check bool) "print kept" true
    (Array.exists (fun i -> i = Ir.Print 0) m'.Ir.blocks.(0).Ir.instrs)

let test_dce_keeps_calls () =
  let b = B.create "dcecall" in
  let f = B.method_ b ~name:"f" ~nargs:0 (fun mb ->
      let r = B.const mb 1 in
      B.print mb r;
      B.ret mb r)
  in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let _dead = B.call mb f [] in
        let z = B.const mb 0 in
        B.ret mb z)
  in
  B.set_main b main;
  let p = B.finish b in
  let m', _ = Dce.run p.Ir.methods.(main) in
  Alcotest.(check int) "call kept" 1 (count_calls m')

let test_dce_loop_liveness () =
  (* A value defined before a loop and used inside it stays live. *)
  let b = B.create "dceloop" in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let step = B.const mb 3 in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Const (acc, 0));
        let n = B.const mb 4 in
        B.for_loop mb ~n (fun _i -> B.emit mb (Ir.Binop (Ir.Add, acc, acc, step)));
        B.ret mb acc)
  in
  B.set_main b main;
  let p = B.finish b in
  let m', _ = Dce.run p.Ir.methods.(main) in
  let has_step_const =
    Array.exists
      (fun blk -> Array.exists (fun i -> i = Ir.Const (0, 3)) blk.Ir.instrs)
      m'.Ir.blocks
  in
  Alcotest.(check bool) "loop-carried input kept" true has_step_const

(* --- Cleanup --- *)

let test_cleanup_threads_jumps () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 1;
      blocks =
        [|
          { Ir.instrs = [||]; term = Ir.Jump 1 };
          { Ir.instrs = [||]; term = Ir.Jump 2 };
          { Ir.instrs = [| Ir.Const (0, 1) |]; term = Ir.Ret 0 };
        |];
    }
  in
  let m' = Cleanup.run m in
  Alcotest.(check int) "empty hop removed" 2 (Array.length m'.Ir.blocks)

let test_cleanup_drops_unreachable () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 1;
      blocks =
        [|
          { Ir.instrs = [| Ir.Const (0, 1) |]; term = Ir.Ret 0 };
          { Ir.instrs = [| Ir.Const (0, 2) |]; term = Ir.Ret 0 };
        |];
    }
  in
  let m' = Cleanup.run m in
  Alcotest.(check int) "unreachable dropped" 1 (Array.length m'.Ir.blocks)

let test_cleanup_folds_equal_branch () =
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 1;
      blocks =
        [|
          { Ir.instrs = [| Ir.Const (0, 1) |]; term = Ir.Branch (0, 1, 1) };
          { Ir.instrs = [||]; term = Ir.Ret 0 };
        |];
    }
  in
  let m' = Cleanup.run m in
  match m'.Ir.blocks.(0).Ir.term with
  | Ir.Jump _ -> ()
  | _ -> Alcotest.fail "branch with equal arms not folded"

let test_cleanup_keeps_empty_loop () =
  (* An empty infinite loop must not be threaded into oblivion. *)
  let m =
    {
      Ir.mid = 0; mname = "m"; nargs = 0; nregs = 1;
      blocks = [| { Ir.instrs = [||]; term = Ir.Jump 0 } |];
    }
  in
  let m' = Cleanup.run m in
  Alcotest.(check int) "loop intact" 1 (Array.length m'.Ir.blocks)

(* --- Pipeline --- *)

let test_pipeline_stats_sizes () =
  let p, _, _, main = tiny_with_helper () in
  let cfg = Pipeline.opt_config Heuristic.default in
  let _, stats = Pipeline.run p cfg p.Ir.methods.(main) in
  Alcotest.(check bool) "peak >= before" true (stats.Pipeline.size_peak >= stats.Pipeline.size_before);
  Alcotest.(check bool) "sites inlined" true (stats.Pipeline.sites_inlined > 0)

let test_pipeline_no_inline_config () =
  let p, _, _, main = tiny_with_helper () in
  let m, stats = Pipeline.run p Pipeline.no_inline_config p.Ir.methods.(main) in
  Alcotest.(check int) "nothing inlined" 0 stats.Pipeline.sites_inlined;
  Alcotest.(check int) "call survives" 1 (count_calls m)

let test_pipeline_folds_after_inline () =
  (* main calls helper with a constant; after inlining, constprop folds the
     entire computation down to constants and DCE erases the rest. *)
  let p, _, _, main = tiny_with_helper () in
  let cfg = Pipeline.opt_config Heuristic.default in
  let m, _ = Pipeline.run p cfg p.Ir.methods.(main) in
  Alcotest.(check int) "no calls" 0 (count_calls m);
  Alcotest.(check bool) "smaller than inlined peak" true
    (Size.of_method m < Size.of_method p.Ir.methods.(main) + Size.of_method p.Ir.methods.(1))

let suite =
  [
    ("fig3: callee too big", `Quick, test_fig3_callee_too_big);
    ("fig3: always-inline precedes depth", `Quick, test_fig3_always_inline_beats_depth);
    ("fig3: always-inline precedes caller", `Quick, test_fig3_always_inline_beats_caller);
    ("fig3: depth limit", `Quick, test_fig3_depth_limit);
    ("fig3: caller limit", `Quick, test_fig3_caller_limit);
    ("fig3: all tests pass -> yes", `Quick, test_fig3_all_tests_pass);
    ("fig4: hot test", `Quick, test_fig4_hot);
    ("never heuristic", `Quick, test_never_heuristic);
    ("heuristic genome roundtrip", `Quick, test_heuristic_roundtrip);
    ("heuristic of_array arity", `Quick, test_heuristic_of_array_arity);
    ("heuristic of_array clamps", `Quick, test_heuristic_of_array_clamps);
    ("heuristic clamp", `Quick, test_clamp_to_ranges);
    ("heuristic ranges match Table 1", `Quick, test_ranges_match_paper);
    ("heuristic defaults match Jikes", `Quick, test_default_matches_jikes);
    ("inline removes calls", `Quick, test_inline_removes_call);
    ("inline with never is identity-shaped", `Quick, test_inline_never_heuristic_is_identity_shape);
    ("inline depth 0 blocks band callees", `Quick, test_inline_depth_zero_blocks_band);
    ("inline respects callee max", `Quick, test_inline_respects_callee_max);
    ("inline recursion guard", `Quick, test_inline_recursion_guard);
    ("inline grows registers and blocks", `Quick, test_inline_grows_registers_not_blocks_lost);
    ("inline hot-site path", `Quick, test_inline_hot_site_path);
    ("decision reasons: default heuristic", `Quick, test_decision_reasons_default);
    ("decision reasons: never heuristic", `Quick, test_decision_reasons_never);
    ("decision reasons: recursion", `Quick, test_decision_reasons_recursive);
    ("decision reasons: hot path", `Quick, test_decision_reasons_hot);
    ("constprop folds binops", `Quick, test_constprop_folds_binop);
    ("constprop folds branches", `Quick, test_constprop_folds_branch);
    ("constprop identity simplification", `Quick, test_constprop_identity_simplification);
    ("constprop devirtualizes", `Quick, test_constprop_devirtualizes);
    ("constprop join of conflicting constants", `Quick, test_constprop_join_conflicting_consts);
    ("copyprop rewrites local uses", `Quick, test_copyprop_rewrites_local_use);
    ("copyprop invalidation", `Quick, test_copyprop_invalidated_by_redefinition);
    ("dce removes dead pure code", `Quick, test_dce_removes_dead_pure);
    ("dce keeps side effects", `Quick, test_dce_keeps_side_effects);
    ("dce keeps calls", `Quick, test_dce_keeps_calls);
    ("dce loop liveness", `Quick, test_dce_loop_liveness);
    ("cleanup threads jumps", `Quick, test_cleanup_threads_jumps);
    ("cleanup drops unreachable blocks", `Quick, test_cleanup_drops_unreachable);
    ("cleanup folds equal branches", `Quick, test_cleanup_folds_equal_branch);
    ("cleanup keeps empty loops", `Quick, test_cleanup_keeps_empty_loop);
    ("pipeline size stats", `Quick, test_pipeline_stats_sizes);
    ("pipeline no-inline config", `Quick, test_pipeline_no_inline_config);
    ("pipeline folds after inline", `Quick, test_pipeline_folds_after_inline);
  ]

(* --- CSE --- *)

let test_cse_replaces_recomputation () =
  let p, m =
    build_single ~nregs:5
      ~instrs:
        [|
          Ir.Const (0, 3); Ir.Const (1, 4);
          Ir.Binop (Ir.Mul, 2, 0, 1);
          Ir.Binop (Ir.Mul, 3, 0, 1);
          Ir.Binop (Ir.Add, 4, 2, 3);
        |]
      ~term:(Ir.Ret 4)
  in
  ignore p;
  let m', n = Cse.run m in
  Alcotest.(check bool) "replaced at least one" true (n >= 1);
  (match m'.Ir.blocks.(0).Ir.instrs.(3) with
  | Ir.Move (3, 2) -> ()
  | i -> Alcotest.failf "expected Move(3,2), got %s" (Fmt.str "%a" Pp.pp_instr i))

let test_cse_commutative () =
  let p, m =
    build_single ~nregs:5
      ~instrs:
        [|
          Ir.Const (0, 3); Ir.Const (1, 4);
          Ir.Binop (Ir.Add, 2, 0, 1);
          Ir.Binop (Ir.Add, 3, 1, 0);
          Ir.Binop (Ir.Add, 4, 2, 3);
        |]
      ~term:(Ir.Ret 4)
  in
  ignore p;
  let m', _ = Cse.run m in
  match m'.Ir.blocks.(0).Ir.instrs.(3) with
  | Ir.Move (3, 2) -> ()
  | i -> Alcotest.failf "a+b vs b+a not unified: %s" (Fmt.str "%a" Pp.pp_instr i)

let test_cse_not_commutative_for_sub () =
  let p, m =
    build_single ~nregs:5
      ~instrs:
        [|
          Ir.Const (0, 3); Ir.Const (1, 4);
          Ir.Binop (Ir.Sub, 2, 0, 1);
          Ir.Binop (Ir.Sub, 3, 1, 0);
          Ir.Binop (Ir.Add, 4, 2, 3);
        |]
      ~term:(Ir.Ret 4)
  in
  ignore p;
  let m', _ = Cse.run m in
  match m'.Ir.blocks.(0).Ir.instrs.(3) with
  | Ir.Binop (Ir.Sub, 3, 1, 0) -> ()
  | i -> Alcotest.failf "a-b wrongly unified with b-a: %s" (Fmt.str "%a" Pp.pp_instr i)

let test_cse_respects_redefinition () =
  let p, m =
    build_single ~nregs:4
      ~instrs:
        [|
          Ir.Const (0, 3); Ir.Const (1, 4);
          Ir.Binop (Ir.Mul, 2, 0, 1);
          Ir.Const (0, 9);
          Ir.Binop (Ir.Mul, 3, 0, 1);
        |]
      ~term:(Ir.Ret 3)
  in
  ignore p;
  let m', _ = Cse.run m in
  (* r0 changed between the two multiplies: the second must stay. *)
  match m'.Ir.blocks.(0).Ir.instrs.(4) with
  | Ir.Binop (Ir.Mul, 3, 0, 1) -> ()
  | i -> Alcotest.failf "stale CSE reuse: %s" (Fmt.str "%a" Pp.pp_instr i)

(* --- ClassOf / guarded devirtualization --- *)

let devirt_program () =
  let b = B.create "gd" in
  let impl_a =
    B.method_ b ~name:"impl_a" ~nargs:2 (fun mb ->
        let one = B.const mb 1 in
        let r = B.add mb 1 one in
        B.ret mb r)
  in
  let impl_b =
    B.method_ b ~name:"impl_b" ~nargs:2 (fun mb ->
        let two = B.const mb 2 in
        let r = B.mul mb 1 two in
        B.ret mb r)
  in
  let ka = B.new_class b ~name:"ka" ~vtable:[| impl_a |] in
  let kb = B.new_class b ~name:"kb" ~vtable:[| impl_b |] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let oa = B.alloc mb ka ~slots:0 in
        let x = B.const mb 10 in
        let r = B.call_virt mb ~slot:0 oa [ x ] in
        B.print mb r;
        B.ret mb r)
  in
  B.set_main b main;
  (B.finish b, impl_a, impl_b, ka, kb, main)

let test_classof_interp () =
  let b = B.create "co" in
  let k0 = B.new_class b ~name:"k0" ~vtable:[||] in
  let k1 = B.new_class b ~name:"k1" ~vtable:[||] in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let _o0 = B.alloc mb k0 ~slots:0 in
        let o1 = B.alloc mb k1 ~slots:0 in
        let c = B.class_of mb o1 in
        B.ret mb c)
  in
  B.set_main b main;
  let p = B.finish b in
  let ret, _ = Inltune_vm.Runner.observe Inltune_vm.Platform.x86 p in
  Alcotest.(check int) "classof reads the header" k1 ret

let test_guarded_devirt_rewrites_monomorphic () =
  let p, impl_a, _, ka, _, main = devirt_program () in
  let oracle ~site_owner:_ ~slot:_ = Some ka in
  let m', stats = Guarded_devirt.run ~program:p ~oracle p.Ir.methods.(main) in
  Alcotest.(check int) "one site guarded" 1 stats.Guarded_devirt.sites_guarded;
  let has_static =
    Array.exists
      (fun blk ->
        Array.exists
          (fun i -> match i with Ir.Call (_, t, _) -> t = impl_a | _ -> false)
          blk.Ir.instrs)
      m'.Ir.blocks
  in
  Alcotest.(check bool) "guarded static call emitted" true has_static;
  Validate.check_exn
    { p with Ir.methods = Array.map (fun x -> if x.Ir.mid = main then m' else x) p.Ir.methods }

let test_guarded_devirt_none_oracle_is_identity () =
  let p, _, _, _, _, main = devirt_program () in
  let oracle ~site_owner:_ ~slot:_ = None in
  let m', stats = Guarded_devirt.run ~program:p ~oracle p.Ir.methods.(main) in
  Alcotest.(check int) "nothing guarded" 0 stats.Guarded_devirt.sites_guarded;
  Alcotest.(check int) "same blocks" (Array.length p.Ir.methods.(main).Ir.blocks)
    (Array.length m'.Ir.blocks)

let test_guarded_devirt_wrong_profile_still_correct () =
  (* Guard against the WRONG class: the slow path must preserve semantics. *)
  let p, _, _, _, kb, main = devirt_program () in
  let reference = Inltune_vm.Runner.observe Inltune_vm.Platform.x86 p in
  let oracle ~site_owner:_ ~slot:_ = Some kb in
  let m', stats = Guarded_devirt.run ~program:p ~oracle p.Ir.methods.(main) in
  Alcotest.(check int) "guard emitted" 1 stats.Guarded_devirt.sites_guarded;
  let p' = { p with Ir.methods = Array.map (fun x -> if x.Ir.mid = main then m' else x) p.Ir.methods } in
  let result = Inltune_vm.Runner.observe Inltune_vm.Platform.x86 p' in
  Alcotest.(check (pair int (array int))) "stale guard falls through" reference result

let test_oracle_of_profile_monomorphic () =
  let p, impl_a, _, ka, _, main = devirt_program () in
  let edge_count ~site_owner ~callee =
    if site_owner = main && callee = impl_a then 42 else 0
  in
  let oracle = Guarded_devirt.oracle_of_profile ~program:p ~edge_count in
  Alcotest.(check (option int)) "single receiver found" (Some ka)
    (oracle ~site_owner:main ~slot:0)

let test_oracle_of_profile_polymorphic () =
  let p, impl_a, impl_b, _, _, main = devirt_program () in
  let edge_count ~site_owner:_ ~callee = if callee = impl_a || callee = impl_b then 5 else 0 in
  let oracle = Guarded_devirt.oracle_of_profile ~program:p ~edge_count in
  Alcotest.(check (option int)) "polymorphic site refused" None (oracle ~site_owner:main ~slot:0)

let extra_suite =
  [
    ("cse replaces recomputation", `Quick, test_cse_replaces_recomputation);
    ("cse commutative unification", `Quick, test_cse_commutative);
    ("cse keeps non-commutative apart", `Quick, test_cse_not_commutative_for_sub);
    ("cse respects redefinition", `Quick, test_cse_respects_redefinition);
    ("classof reads header", `Quick, test_classof_interp);
    ("guarded devirt rewrites monomorphic site", `Quick, test_guarded_devirt_rewrites_monomorphic);
    ("guarded devirt identity without oracle", `Quick, test_guarded_devirt_none_oracle_is_identity);
    ("guarded devirt correct under stale profile", `Quick, test_guarded_devirt_wrong_profile_still_correct);
    ("profile oracle finds monomorphic sites", `Quick, test_oracle_of_profile_monomorphic);
    ("profile oracle refuses polymorphic sites", `Quick, test_oracle_of_profile_polymorphic);
  ]

let suite = suite @ extra_suite
