open Inltune_jir
open Inltune_vm
open Inltune_opt
module W = Inltune_workloads

(* Per-benchmark integration tests: every workload must validate, run under
   both scenarios, produce identical observable output regardless of the
   heuristic (inlining is semantics-preserving on real programs, not just on
   random ones), and actually exercise the structures it claims to. *)

let all_names =
  [
    "compress"; "jess"; "db"; "javac"; "mpegaudio"; "raytrace"; "jack";
    "antlr"; "fop"; "jython"; "pmd"; "ps"; "ipsixql"; "pseudojbb";
  ]

let test_registry_complete () =
  Alcotest.(check (list string)) "all 14 benchmarks" all_names (W.Suites.names W.Suites.all);
  Alcotest.(check int) "7 training" 7 (List.length W.Suites.spec);
  Alcotest.(check int) "7 test" 7 (List.length W.Suites.dacapo)

let test_find_unknown_rejected () =
  Alcotest.(check bool) "unknown benchmark" true
    (try ignore (W.Suites.find "nope"); false with Invalid_argument _ -> true)

let test_program_cached () =
  let bm = W.Suites.find "db" in
  Alcotest.(check bool) "same physical program" true
    (W.Suites.program bm == W.Suites.program bm)

(* One test per benchmark: semantics preserved across heuristics and
   scenarios (checksum equality), on both platforms' VM (platform only
   changes costs, never results). *)
let semantics_case name =
  let test () =
    let bm = W.Suites.find name in
    let p = W.Suites.program bm in
    (* The fully aggressive corner of the search space is exercised on the
       compact training programs; the wide DaCapo programs use a still
       aggressive but bounded setting so the suite stays fast. *)
    let aggressive =
      if List.exists (fun b -> b.W.Suites.bname = name) W.Suites.spec then
        Heuristic.of_array [| 50; 20; 15; 4000; 400 |]
      else Heuristic.of_array [| 30; 15; 8; 400; 200 |]
    in
    let outcomes =
      List.map
        (fun (scenario, heuristic, plat) ->
          let cfg = Machine.config scenario heuristic in
          let vm = Machine.create cfg plat p in
          let it = Machine.run_iteration vm in
          (it.Machine.ret, it.Machine.it_out_hash))
        [
          (Machine.Opt, Heuristic.never, Platform.x86);
          (Machine.Opt, Heuristic.default, Platform.x86);
          (Machine.Opt, aggressive, Platform.x86);
          (Machine.Adapt, Heuristic.default, Platform.x86);
          (Machine.Opt, Heuristic.default, Platform.ppc);
          (Machine.Adapt, aggressive, Platform.ppc);
        ]
    in
    match outcomes with
    | [] -> assert false
    | first :: rest ->
      List.iteri
        (fun i o ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s: config %d matches baseline" name (i + 1))
            first o)
        rest
  in
  (name ^ ": semantics invariant under heuristic/scenario/platform", `Slow, test)

let test_benchmarks_have_distinct_checksums () =
  (* Different workloads compute different things. *)
  let sums =
    List.map
      (fun bm ->
        let p = W.Suites.program bm in
        let ret, _ = Runner.observe Platform.x86 p in
        ret)
      W.Suites.all
  in
  let uniq = List.sort_uniq compare sums in
  Alcotest.(check int) "all distinct" (List.length sums) (List.length uniq)

let test_dacapo_more_methods_than_spec () =
  let avg suite =
    let n =
      List.fold_left
        (fun acc bm -> acc + Array.length (W.Suites.program bm).Ir.methods)
        0 suite
    in
    n / List.length suite
  in
  Alcotest.(check bool) "DaCapo wider" true (avg W.Suites.dacapo > 2 * avg W.Suites.spec)

let test_spec_runs_longer_than_dacapo_relative_to_compile () =
  (* The structural property behind the paper's DaCapo result: total time is
     compile-dominated on the test suite under Opt, much less so on SPEC. *)
  let compile_share suite =
    let shares =
      List.map
        (fun bm ->
          let p = W.Suites.program bm in
          let m = Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
          Float.of_int m.Runner.first_compile_cycles /. Float.of_int m.Runner.total_cycles)
        suite
    in
    Inltune_support.Stats.mean (Array.of_list shares)
  in
  Alcotest.(check bool) "DaCapo compile share greater" true
    (compile_share W.Suites.dacapo > compile_share W.Suites.spec)

let test_workloads_use_virtual_dispatch () =
  (* jess and pmd are dispatch benchmarks: they must contain CallVirt. *)
  List.iter
    (fun name ->
      let p = W.Suites.program (W.Suites.find name) in
      let has_virt =
        Array.exists
          (fun m ->
            Array.exists
              (fun blk ->
                Array.exists (fun i -> match i with Ir.CallVirt _ -> true | _ -> false) blk.Ir.instrs)
              m.Ir.blocks)
          p.Ir.methods
      in
      Alcotest.(check bool) (name ^ " uses virtual dispatch") true has_virt)
    [ "jess"; "pmd" ]

let test_workloads_have_recursion () =
  List.iter
    (fun name ->
      let p = W.Suites.program (W.Suites.find name) in
      let cg = Callgraph.build p in
      let recursive =
        Array.exists (fun m -> Callgraph.recursive cg m.Ir.mid) p.Ir.methods
      in
      Alcotest.(check bool) (name ^ " has recursion") true recursive)
    [ "javac"; "raytrace"; "antlr"; "ipsixql" ]

let test_inlining_improves_running_time () =
  (* The headline premise (paper Fig. 1): with the default heuristic, running
     time improves vs no inlining for the classic kernel benchmarks. *)
  List.iter
    (fun name ->
      let p = W.Suites.program (W.Suites.find name) in
      let on = Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p in
      let off =
        Runner.measure
          (Machine.config ~inline_enabled:false Machine.Opt Heuristic.never)
          Platform.x86 p
      in
      Alcotest.(check bool) (name ^ ": inlining speeds up running time") true
        (on.Runner.running_cycles < off.Runner.running_cycles))
    [ "compress"; "db"; "raytrace"; "mpegaudio" ]

let test_band_sizes_present () =
  (* Each benchmark needs callees inside the [ALWAYS_INLINE, CALLEE_MAX]
     band at the Jikes defaults, or the depth/caller parameters would be
     dead knobs (the flaw the paper's Fig. 2 disproves). *)
  List.iter
    (fun bm ->
      let p = W.Suites.program bm in
      let in_band =
        Array.exists
          (fun m ->
            let s = Size.of_method m in
            s >= 11 && s <= 23)
          p.Ir.methods
      in
      Alcotest.(check bool) (bm.W.Suites.bname ^ " has band-size methods") true in_band)
    W.Suites.all

let suite =
  [
    ("registry complete", `Quick, test_registry_complete);
    ("unknown benchmark rejected", `Quick, test_find_unknown_rejected);
    ("programs cached", `Quick, test_program_cached);
    ("benchmarks compute distinct checksums", `Slow, test_benchmarks_have_distinct_checksums);
    ("DaCapo wider than SPEC", `Quick, test_dacapo_more_methods_than_spec);
    ("DaCapo more compile-bound than SPEC", `Slow, test_spec_runs_longer_than_dacapo_relative_to_compile);
    ("dispatch benchmarks use CallVirt", `Quick, test_workloads_use_virtual_dispatch);
    ("recursive benchmarks have recursion", `Quick, test_workloads_have_recursion);
    ("inlining improves running time", `Slow, test_inlining_improves_running_time);
    ("band-size methods present everywhere", `Quick, test_band_sizes_present);
  ]
  @ List.map semantics_case all_names

(* --- input scaling --- *)

let test_scaled_program_runs_longer () =
  let bm = W.Suites.find "compress" in
  let small = W.Suites.program_scaled bm ~scale:25 in
  let big = W.Suites.program_scaled bm ~scale:200 in
  let steps p =
    (Runner.measure (Machine.config Machine.Opt Heuristic.default) Platform.x86 p).Runner.steps
  in
  Alcotest.(check bool) "more scale, more steps" true (steps big > 2 * steps small)

let test_scaled_program_same_shape () =
  (* Scaling changes loop trip counts, never the code structure. *)
  let bm = W.Suites.find "jess" in
  let a = W.Suites.program_scaled bm ~scale:10 in
  let b = W.Suites.program bm in
  Alcotest.(check int) "same method count" (Array.length a.Ir.methods) (Array.length b.Ir.methods);
  Alcotest.(check int) "same class count" (Array.length a.Ir.classes) (Array.length b.Ir.classes)

let test_scaled_default_is_cached_program () =
  let bm = W.Suites.find "db" in
  Alcotest.(check bool) "scale 100 = default program" true
    (W.Suites.program_scaled bm ~scale:100 == W.Suites.program bm)

let test_scaled_programs_validate () =
  List.iter
    (fun bm ->
      List.iter
        (fun scale ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s@%d validates" bm.W.Suites.bname scale)
            []
            (List.map
               (fun e -> e.Validate.where ^ ": " ^ e.Validate.what)
               (Validate.check (W.Suites.program_scaled bm ~scale))))
        [ 10; 300 ])
    [ W.Suites.find "compress"; W.Suites.find "ipsixql" ]

let scale_suite =
  [
    ("scaling increases work", `Quick, test_scaled_program_runs_longer);
    ("scaling preserves program shape", `Quick, test_scaled_program_same_shape);
    ("scale 100 is the cached default", `Quick, test_scaled_default_is_cached_program);
    ("scaled programs validate", `Quick, test_scaled_programs_validate);
  ]

(* --- generated corpus --- *)

let corpus name =
  match W.Corpus.find_opt name with
  | Some bm -> bm
  | None -> Alcotest.failf "corpus program %s not registered" name

let test_corpus_registry () =
  Alcotest.(check int) "110 programs" 110 (List.length W.Corpus.all);
  Alcotest.(check int) "names unique" 110
    (List.length
       (List.sort_uniq compare (List.map (fun bm -> bm.W.Suites.bname) W.Corpus.all)));
  Alcotest.(check bool) "family counts sum" true
    (List.fold_left (fun acc f -> acc + f.W.Corpus.fcount) 0 W.Corpus.families = 110);
  ignore (corpus "corpus_chain00");
  ignore (corpus "corpus_phase04");
  Alcotest.(check bool) "out-of-range index misses" true
    (W.Corpus.find_opt "corpus_phase05" = None);
  (* The corpus namespace is disjoint from the hand-modeled suites. *)
  List.iter
    (fun bm ->
      Alcotest.(check bool) (bm.W.Suites.bname ^ " is not a corpus name") true
        (W.Corpus.find_opt bm.W.Suites.bname = None))
    W.Suites.all

let test_corpus_programs_validate () =
  List.iter
    (fun bm ->
      Alcotest.(check (list string))
        (bm.W.Suites.bname ^ " validates")
        []
        (List.map
           (fun e -> e.Validate.where ^ ": " ^ e.Validate.what)
           (Validate.check (bm.W.Suites.generate ()))))
    W.Corpus.all

(* One program per family, regenerated twice: the corpus promise is
   byte-identical programs for the same name, in any process. *)
let corpus_sample =
  [ "corpus_chain17"; "corpus_dispatch23"; "corpus_recur11"; "corpus_sweep07";
    "corpus_phase02" ]

let test_corpus_deterministic_serial () =
  List.iter
    (fun name ->
      let bm = corpus name in
      Alcotest.(check string) (name ^ " regenerates byte-identically")
        (Text.to_string (bm.W.Suites.generate ()))
        (Text.to_string (bm.W.Suites.generate ())))
    corpus_sample

let test_corpus_deterministic_under_pool () =
  (* Parallel generation on pool domains must produce the same bytes as
     serial generation — no hidden global state in the generators. *)
  let serial =
    List.map (fun name -> Text.to_string ((corpus name).W.Suites.generate ())) corpus_sample
  in
  let pool = Inltune_support.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Inltune_support.Pool.shutdown pool)
    (fun () ->
      let task =
        Inltune_support.Pool.submit pool
          (fun name -> Text.to_string ((corpus name).W.Suites.generate ()))
          (Array.of_list corpus_sample)
      in
      let results = Inltune_support.Pool.await task in
      List.iteri
        (fun i expect ->
          match results.(i) with
          | Ok got ->
            Alcotest.(check string)
              (List.nth corpus_sample i ^ " identical under Pool") expect got
          | Error e -> raise e)
        serial)

let test_corpus_semantics_preserved () =
  (* Same checksum whatever the inliner does — corpus programs are real
     programs, and scaling stretches work without changing shape. *)
  List.iter
    (fun name ->
      let bm = corpus name in
      let p = W.Suites.program bm in
      let run heuristic scen =
        let m = Runner.measure (Machine.config scen heuristic) Platform.x86 p in
        (m.Runner.ret, m.Runner.out_hash)
      in
      let base = run Heuristic.default Machine.Opt in
      Alcotest.(check (pair int int)) (name ^ " checksum, never-inline") base
        (run Heuristic.never Machine.Opt);
      Alcotest.(check (pair int int)) (name ^ " checksum, adapt") base
        (run Heuristic.default Machine.Adapt);
      let scaled = W.Suites.program_scaled bm ~scale:30 in
      Alcotest.(check int) (name ^ " scaled keeps method count")
        (Array.length p.Ir.methods)
        (Array.length scaled.Ir.methods))
    corpus_sample

let corpus_suite =
  [
    ("corpus registry", `Quick, test_corpus_registry);
    ("corpus programs validate", `Slow, test_corpus_programs_validate);
    ("corpus generation deterministic", `Quick, test_corpus_deterministic_serial);
    ("corpus deterministic under Pool", `Quick, test_corpus_deterministic_under_pool);
    ("corpus semantics preserved", `Slow, test_corpus_semantics_preserved);
  ]

let suite = suite @ scale_suite @ corpus_suite
