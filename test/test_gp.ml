open Inltune_opt
open Inltune_vm
module W = Inltune_workloads
module Rng = Inltune_support.Rng
module Gp = Inltune_gp
module Tree = Gp.Tree
module E = Inltune_ga.Evolve
module Features = Inltune_policy.Features
module Dataset = Inltune_policy.Dataset
module Fitcache = Inltune_core.Fitcache
module Measure = Inltune_core.Measure
module Objective = Inltune_core.Objective
module Metric = Inltune_obs.Metric

let dim = Features.dim

(* Feature vector long enough for any index a test tree mentions. *)
let vec l = Array.append (Array.of_list l) (Array.make dim 0.0)

(* --- Tree: evaluation semantics ------------------------------------------ *)

let test_eval_semantics () =
  let open Tree in
  let x = vec [ 3.0; 10.0 ] in
  Alcotest.(check bool) "true" true (eval True x);
  Alcotest.(check bool) "false" false (eval False x);
  Alcotest.(check bool) "le holds" true (eval (Cmp (Le, Feat 0, Feat 1)) x);
  Alcotest.(check bool) "le on equal" true (eval (Cmp (Le, Feat 0, Const 3.0)) x);
  Alcotest.(check bool) "gt strict" false (eval (Cmp (Gt, Feat 0, Const 3.0)) x);
  Alcotest.(check bool) "and" false (eval (And (True, False)) x);
  Alcotest.(check bool) "or" true (eval (Or (True, False)) x);
  Alcotest.(check bool) "not" true (eval (Not False) x);
  (* arithmetic: (3 + 10) * 2 = 26 > 25 *)
  Alcotest.(check bool) "arith" true
    (eval (Cmp (Gt, Arith (Mul, Arith (Add, Feat 0, Feat 1), Const 2.0), Const 25.0)) x)

let test_eval_protected_div () =
  let open Tree in
  (* x/0 is protected: returns the dividend, so 10/0 = 10 > 5. *)
  let t = Cmp (Gt, Arith (Div, Feat 1, Const 0.0), Const 5.0) in
  let x = vec [ 3.0; 10.0 ] in
  Alcotest.(check bool) "div by zero yields dividend" true (eval t x);
  (* evaluation stays finite on any well-formed tree *)
  for seed = 1 to 50 do
    let t = Gp.Genetic.random (Rng.create seed) in
    ignore (eval t (vec [ 1.0; 2.0; 3.0 ]))
  done

(* --- Tree: clamping (satellite: decode clamping) ------------------------- *)

let test_clamp_constants () =
  let open Tree in
  let c = clamp (Cmp (Le, Const 1e9, Const (-3.0))) in
  Alcotest.(check bool) "out-of-range constants clamp to bounds" true
    (c = Cmp (Le, Const const_hi, Const const_lo));
  let n = clamp (Cmp (Gt, Const Float.nan, Const Float.infinity)) in
  Alcotest.(check bool) "non-finite constants become const_lo / clamp" true
    (n = Cmp (Gt, Const const_lo, Const const_hi))

let test_clamp_depth () =
  let open Tree in
  (* 12 nested Nots around a Cmp: far past max_depth. *)
  let deep = ref (Cmp (Le, Feat 0, Const 1.0)) in
  for _ = 1 to 12 do
    deep := Not !deep
  done;
  let c = clamp !deep in
  Alcotest.(check bool) "pruned within depth cap" true (depth c <= max_depth);
  Alcotest.(check bool) "well formed after prune" true (well_formed ~dim c);
  (* an over-deep numeric chain collapses to its leftmost leaf *)
  let num = ref (Feat 0) in
  for _ = 1 to 12 do
    num := Arith (Add, !num, Const 1.0)
  done;
  let cn = clamp (Cmp (Le, !num, Const 2.0)) in
  Alcotest.(check bool) "numeric chain pruned" true (depth cn <= max_depth);
  Alcotest.(check bool) "numeric prune well formed" true (well_formed ~dim cn)

let test_clamp_deterministic_idempotent () =
  for seed = 1 to 100 do
    let rng = Rng.create seed in
    (* build arbitrary (possibly ill-formed) trees by growing then injecting
       a bad constant *)
    let t = Gp.Genetic.random rng in
    let t =
      if Gp.Genetic.count_const t > 0 then
        Gp.Genetic.replace_const t 0 (Float.of_int seed *. 1e7)
      else t
    in
    let a = Tree.clamp t and b = Tree.clamp t in
    Alcotest.(check bool) "clamp deterministic" true (a = b);
    Alcotest.(check bool) "clamp idempotent" true (Tree.clamp a = a);
    Alcotest.(check bool) "clamp establishes invariant" true (Tree.well_formed ~dim a)
  done

(* --- Tree: canonical text form (satellite: round-trip property) ---------- *)

let round_trip_prop =
  QCheck.Test.make ~count:200 ~name:"gp tree: parse∘print = id, digest stable"
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let t = Gp.Genetic.random (Rng.create seed) in
      match Tree.of_string ~dim (Tree.to_string t) with
      | Error e -> QCheck.Test.fail_report e
      | Ok t' -> t' = t && Tree.digest t' = Tree.digest t && Tree.well_formed ~dim t')

let test_print_fixpoint () =
  (* printing a parsed tree reproduces the input byte-for-byte (the `gp
     print | cmp` CI check, in-process) *)
  for seed = 1 to 30 do
    let s = Tree.to_string (Gp.Genetic.random (Rng.create seed)) in
    match Tree.of_string ~dim s with
    | Error e -> Alcotest.fail e
    | Ok t -> Alcotest.(check string) "fixpoint" s (Tree.to_string t)
  done

let check_error name prefix = function
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  | Error e ->
    let ok =
      String.length e >= String.length prefix
      && String.sub e 0 (String.length prefix) = prefix
    in
    if not ok then Alcotest.failf "%s: error %S does not start with %S" name e prefix

let test_parse_errors () =
  check_error "bad header" "line 1:" (Tree.of_string ~dim "inltune-gp v9\ntrue\n");
  check_error "missing expression" "line 2: missing expression"
    (Tree.of_string ~dim "inltune-gp v1\n");
  check_error "trailing garbage" "line 3: trailing garbage"
    (Tree.of_string ~dim "inltune-gp v1\ntrue\ntrue\n");
  check_error "unknown operator" "line 2: token" (Tree.of_string ~dim "inltune-gp v1\n(xor true false)\n");
  check_error "unbalanced" "line 2: token" (Tree.of_string ~dim "inltune-gp v1\n(and true\n");
  check_error "feature index out of range" "token"
    (Tree.of_text ~dim (Printf.sprintf "(le (feat %d) (const 1))" dim));
  check_error "non-finite constant" "token" (Tree.of_text ~dim "(le (const inf) (const 1))");
  check_error "trailing tokens" "token" (Tree.of_text ~dim "true false")

(* --- Genetic operators ---------------------------------------------------- *)

let test_random_well_formed () =
  for seed = 1 to 200 do
    let t = Gp.Genetic.random (Rng.create seed) in
    Alcotest.(check bool) "well formed" true (Tree.well_formed ~dim t);
    Alcotest.(check bool) "within size cap" true (Tree.size t <= Tree.max_size)
  done

let test_random_deterministic () =
  let pop seed = List.init 20 (fun i -> Gp.Genetic.random (Rng.create (seed + i))) in
  Alcotest.(check bool) "same seed, same population" true (pop 7 = pop 7);
  Alcotest.(check bool) "different seeds diverge somewhere" true (pop 7 <> pop 1007)

let test_operators_deterministic_and_closed () =
  let a = Gp.Genetic.random (Rng.create 1) and b = Gp.Genetic.random (Rng.create 2) in
  let cx seed = Gp.Genetic.crossover (Rng.create seed) a b in
  Alcotest.(check bool) "crossover deterministic" true (cx 9 = cx 9);
  let mu seed = Gp.Genetic.mutate ~prob:1.0 (Rng.create seed) a in
  Alcotest.(check bool) "mutation deterministic" true (mu 9 = mu 9);
  for seed = 1 to 100 do
    let c1, c2 = cx seed in
    let m = mu seed in
    List.iter
      (fun t ->
        Alcotest.(check bool) "offspring well formed" true (Tree.well_formed ~dim t);
        Alcotest.(check bool) "offspring within size cap" true (Tree.size t <= Tree.max_size))
      [ c1; c2; m ]
  done

let test_mutate_prob_zero_is_identity () =
  let a = Gp.Genetic.random (Rng.create 3) in
  for seed = 1 to 20 do
    Alcotest.(check bool) "prob 0 never fires" true
      (Gp.Genetic.mutate ~prob:0.0 (Rng.create seed) a = a)
  done

(* --- Decode: tree → policy ------------------------------------------------ *)

let compress = W.Suites.find "compress"

let test_decode_policy_matches_eval () =
  let prog = W.Suites.program compress in
  let ctx = Features.make_ctx prog in
  let sites = Features.of_program ctx prog in
  Alcotest.(check bool) "have sites" true (Array.length sites > 0);
  let tree = Tree.(Cmp (Le, Feat 0, Const 20.0)) in
  let p = Gp.Decode.policy ~ctx tree in
  Alcotest.(check string) "family name" "gp" p.Policy.name;
  Array.iter
    (fun (site, x) ->
      let v = p.Policy.decide site in
      Alcotest.(check bool) "verdict matches eval" (Tree.eval tree x) v.Policy.accept;
      Alcotest.(check string) "rule name"
        (if v.Policy.accept then "gp_accept" else "gp_reject")
        v.Policy.rule)
    sites;
  (* the factory ignores the live profile: same policy for any profile *)
  let f = Gp.Decode.factory ~ctx tree in
  let prof = Profile.create 4 in
  Alcotest.(check bool) "factory is static" true
    (Array.for_all
       (fun (site, _) -> ((f prof).Policy.decide site).Policy.accept
                         = (p.Policy.decide site).Policy.accept)
       sites)

let test_decode_extremes () =
  let prog = W.Suites.program compress in
  let ctx = Features.make_ctx prog in
  let sites = Features.of_program ctx prog in
  let always = Gp.Decode.policy ~ctx Tree.True in
  let never = Gp.Decode.policy ~ctx Tree.False in
  Array.iter
    (fun (site, _) ->
      Alcotest.(check bool) "True accepts" true (always.Policy.decide site).Policy.accept;
      Alcotest.(check bool) "False rejects" false (never.Policy.decide site).Policy.accept)
    sites

(* Decision-identical trees share the Opt walk signature even though their
   digests differ: (le (feat 0) (const 10)) ≡ (not (gt (feat 0) (const 10))). *)
let test_policy_signature_shared_across_identical_trees () =
  let prog = W.Suites.program compress in
  let ctx = Features.make_ctx prog in
  let t1 = Tree.(Cmp (Le, Feat 0, Const 10.0)) in
  let t2 = Tree.(Not (Cmp (Gt, Feat 0, Const 10.0))) in
  Alcotest.(check bool) "distinct digests" true (Tree.digest t1 <> Tree.digest t2);
  let sig_of t =
    Fitcache.policy_signature ~scenario:Machine.Opt ~policy:(Gp.Decode.policy ~ctx t)
      ~digest:(Tree.digest t) ~static:true ~inline_enabled:true ~plan:Plan.default prog
  in
  let s1 = sig_of t1 and s2 = sig_of t2 in
  Alcotest.(check string) "identical decisions, one signature" s1 s2;
  Alcotest.(check bool) "walk namespace" true
    (String.length s1 > 2 && String.sub s1 0 2 = "w:")

let test_agreement () =
  let training =
    [|
      (vec [ 5.0 ], true);
      (vec [ 15.0 ], false);
      (vec [ 8.0 ], true);
      (vec [ 30.0 ], false);
    |]
  in
  let perfect = Tree.(Cmp (Le, Feat 0, Const 10.0)) in
  Alcotest.(check (float 1e-9)) "perfect tree" 1.0 (Gp.Decode.agreement training perfect);
  Alcotest.(check (float 1e-9)) "always-accept gets half" 0.5
    (Gp.Decode.agreement training Tree.True);
  Alcotest.(check (float 1e-9)) "empty data is vacuous" 1.0 (Gp.Decode.agreement [||] Tree.True)

(* --- Checkpoints ---------------------------------------------------------- *)

let sample_state =
  let t1 = Tree.(Cmp (Le, Feat 0, Const 10.0)) in
  let t2 = Tree.(And (True, Not (Cmp (Gt, Feat 2, Const 3.0)))) in
  {
    Gp.Ckpt.gen = 2;
    rng = 987654321098765L;
    pop = [| t1; t2; Tree.True |];
    best = Some t1;
    best_fitness = 1.0625;
    cache = [ (Tree.digest t1, 1.0625); (Tree.digest t2, 1.25) ];
    quarantine = [ "deadbeef" ];
    history =
      [
        { E.generation = 0; best_fitness = 1.5; mean_fitness = 2.25; evaluations = 3 };
        { E.generation = 1; best_fitness = 1.0625; mean_fitness = 1.75; evaluations = 6 };
      ];
    evaluations = 6;
    cache_hits = 2;
    failures = 1;
    retries = 1;
    pop_size = 3;
    seed = 7;
  }

let test_ckpt_round_trip () =
  let path = Filename.temp_file "inltune_gp_ckpt" ".jsonl" in
  Gp.Ckpt.write ~path sample_state;
  (match Gp.Ckpt.load ~path with
  | Error e -> Alcotest.fail e
  | Ok st -> Alcotest.(check bool) "round trip" true (st = sample_state));
  Sys.remove path

let test_ckpt_last_valid_line () =
  let path = Filename.temp_file "inltune_gp_ckpt2" ".jsonl" in
  Gp.Ckpt.write ~path sample_state;
  Gp.Ckpt.write ~path { sample_state with gen = 3; best_fitness = 1.03125 };
  (* simulate a mid-write kill: a truncated trailing line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"v\":1,\"gen\":4,\"rng\":\"12";
  close_out oc;
  (match Gp.Ckpt.load ~path with
  | Error e -> Alcotest.fail e
  | Ok st ->
    Alcotest.(check int) "last complete snapshot wins" 3 st.Gp.Ckpt.gen;
    Alcotest.(check (float 1e-12)) "fitness from that snapshot" 1.03125 st.Gp.Ckpt.best_fitness);
  Sys.remove path

let test_ckpt_rejects_garbage () =
  let path = Filename.temp_file "inltune_gp_ckpt3" ".jsonl" in
  let oc = open_out path in
  output_string oc "not a checkpoint\n";
  close_out oc;
  (match Gp.Ckpt.load ~path with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ());
  Sys.remove path

(* --- Evolution: determinism, resume, pre-filter --------------------------- *)

let tiny_params seed =
  { Gp.Evolve.default_params with pop_size = 4; generations = 2; seed; iterations = 2; elites = 1 }

let run_tiny ?checkpoint ?resume ?dataset seed =
  Gp.Evolve.run ?checkpoint ?resume ?dataset ~suite:[ compress ] ~scenario:Machine.Opt
    ~platform:Platform.x86 ~goal:Objective.Total ~params:(tiny_params seed) ()

let test_evolve_deterministic () =
  let a = run_tiny 11 and b = run_tiny 11 in
  Alcotest.(check string) "same best tree" (Tree.to_text a.Gp.Evolve.best)
    (Tree.to_text b.Gp.Evolve.best);
  Alcotest.(check (float 1e-12)) "same fitness" a.Gp.Evolve.best_fitness b.Gp.Evolve.best_fitness;
  Alcotest.(check bool) "same history" true (a.Gp.Evolve.history = b.Gp.Evolve.history);
  Alcotest.(check bool) "well-formed winner" true
    (Tree.well_formed ~dim a.Gp.Evolve.best)

let test_evolve_resume_bit_identical () =
  let full_ck = Filename.temp_file "inltune_gp_full" ".jsonl" in
  let part_ck = Filename.temp_file "inltune_gp_part" ".jsonl" in
  List.iter Sys.remove [ full_ck; part_ck ];
  let full =
    Gp.Evolve.run ~checkpoint:full_ck ~suite:[ compress ] ~scenario:Machine.Opt
      ~platform:Platform.x86 ~goal:Objective.Total ~params:(tiny_params 13) ()
  in
  (* interrupted run: one generation, then resume to the full budget *)
  let _ =
    Gp.Evolve.run ~checkpoint:part_ck ~suite:[ compress ] ~scenario:Machine.Opt
      ~platform:Platform.x86 ~goal:Objective.Total
      ~params:{ (tiny_params 13) with generations = 1 } ()
  in
  let resumed =
    Gp.Evolve.run ~checkpoint:part_ck ~resume:part_ck ~suite:[ compress ]
      ~scenario:Machine.Opt ~platform:Platform.x86 ~goal:Objective.Total
      ~params:(tiny_params 13) ()
  in
  Alcotest.(check string) "resume reproduces the best tree"
    (Tree.to_text full.Gp.Evolve.best) (Tree.to_text resumed.Gp.Evolve.best);
  Alcotest.(check (float 1e-17)) "and its fitness" full.Gp.Evolve.best_fitness
    resumed.Gp.Evolve.best_fitness;
  Alcotest.(check bool) "and the history" true
    (full.Gp.Evolve.history = resumed.Gp.Evolve.history);
  (* the final snapshots agree on generation, RNG stream, and population *)
  (match (Gp.Ckpt.load ~path:full_ck, Gp.Ckpt.load ~path:part_ck) with
  | Ok a, Ok b ->
    Alcotest.(check int) "same generation" a.Gp.Ckpt.gen b.Gp.Ckpt.gen;
    Alcotest.(check bool) "same rng state" true (a.Gp.Ckpt.rng = b.Gp.Ckpt.rng);
    Alcotest.(check (array string)) "same population"
      (Array.map Tree.to_text a.Gp.Ckpt.pop)
      (Array.map Tree.to_text b.Gp.Ckpt.pop)
  | Error e, _ | _, Error e -> Alcotest.fail e);
  List.iter Sys.remove [ full_ck; part_ck ]

let test_evolve_resume_rejects_mismatched_params () =
  let ck = Filename.temp_file "inltune_gp_mismatch" ".jsonl" in
  Sys.remove ck;
  let _ =
    Gp.Evolve.run ~checkpoint:ck ~suite:[ compress ] ~scenario:Machine.Opt
      ~platform:Platform.x86 ~goal:Objective.Total
      ~params:{ (tiny_params 13) with generations = 1 } ()
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match
     Gp.Evolve.run ~resume:ck ~suite:[ compress ] ~scenario:Machine.Opt
       ~platform:Platform.x86 ~goal:Objective.Total ~params:(tiny_params 14) ()
   with
  | _ -> Alcotest.fail "expected Invalid_argument on seed mismatch"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names both sides" true (contains msg "seed"));
  Sys.remove ck

let test_evolve_prefilter_counters () =
  (* a dataset every tree scores against: the pre-filter must examine every
     fresh tree from generation 1 onward and never skip more than it saw *)
  let training =
    Array.init 8 (fun i -> (vec [ Float.of_int (i * 5) ], i < 4))
  in
  let r = run_tiny ~dataset:training 17 in
  Alcotest.(check bool) "candidates counted" true (r.Gp.Evolve.prefilter_candidates >= 0);
  Alcotest.(check bool) "skips bounded by candidates" true
    (r.Gp.Evolve.prefilter_skips <= r.Gp.Evolve.prefilter_candidates);
  (* surrogate-scored trees never become the winner: the best tree always
     carries a real (simulated) fitness *)
  Alcotest.(check bool) "winner has real fitness" true
    (Float.is_finite r.Gp.Evolve.best_fitness);
  (* with a pre-filter the run stays deterministic *)
  let r2 = run_tiny ~dataset:training 17 in
  Alcotest.(check string) "prefiltered run deterministic"
    (Tree.to_text r.Gp.Evolve.best) (Tree.to_text r2.Gp.Evolve.best)

(* --- Dataset reuse (satellite: --dataset loads instead of recomputing) ---- *)

let test_dataset_reused_counter () =
  let file = Filename.temp_file "inltune_gp_ds" ".jsonl" in
  Sys.remove file;
  let cfg = { Dataset.default_config with Dataset.max_sites = 2; iterations = 2 } in
  let first = Dataset.load_or_generate ~file cfg [ compress ] in
  Alcotest.(check bool) "journal written" true (Sys.file_exists file);
  let before = Metric.value (Metric.counter "policy.dataset_reused") in
  let second = Dataset.load_or_generate ~file cfg [ compress ] in
  let after = Metric.value (Metric.counter "policy.dataset_reused") in
  Alcotest.(check int) "reuse counted" (before + 1) after;
  Alcotest.(check bool) "loaded examples match generated" true
    (Dataset.to_training first = Dataset.to_training second);
  Alcotest.(check bool) "non-empty" true (first <> []);
  Sys.remove file

let suite =
  [
    Alcotest.test_case "tree: eval semantics" `Quick test_eval_semantics;
    Alcotest.test_case "tree: protected division" `Quick test_eval_protected_div;
    Alcotest.test_case "tree: clamp constants" `Quick test_clamp_constants;
    Alcotest.test_case "tree: clamp prunes over-depth" `Quick test_clamp_depth;
    Alcotest.test_case "tree: clamp deterministic + idempotent" `Quick
      test_clamp_deterministic_idempotent;
    QCheck_alcotest.to_alcotest round_trip_prop;
    Alcotest.test_case "tree: print fixpoint" `Quick test_print_fixpoint;
    Alcotest.test_case "tree: parse errors are one-line and located" `Quick test_parse_errors;
    Alcotest.test_case "genetic: random trees well formed" `Quick test_random_well_formed;
    Alcotest.test_case "genetic: init deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "genetic: operators deterministic and closed" `Quick
      test_operators_deterministic_and_closed;
    Alcotest.test_case "genetic: mutate prob 0 is identity" `Quick
      test_mutate_prob_zero_is_identity;
    Alcotest.test_case "decode: policy matches eval" `Quick test_decode_policy_matches_eval;
    Alcotest.test_case "decode: True/False extremes" `Quick test_decode_extremes;
    Alcotest.test_case "decode: identical decisions share Opt signature" `Quick
      test_policy_signature_shared_across_identical_trees;
    Alcotest.test_case "decode: agreement score" `Quick test_agreement;
    Alcotest.test_case "ckpt: round trip" `Quick test_ckpt_round_trip;
    Alcotest.test_case "ckpt: last valid line wins" `Quick test_ckpt_last_valid_line;
    Alcotest.test_case "ckpt: rejects garbage" `Quick test_ckpt_rejects_garbage;
    Alcotest.test_case "evolve: deterministic under fixed seed" `Quick test_evolve_deterministic;
    Alcotest.test_case "evolve: resume is bit-identical" `Quick test_evolve_resume_bit_identical;
    Alcotest.test_case "evolve: resume rejects mismatched params" `Quick
      test_evolve_resume_rejects_mismatched_params;
    Alcotest.test_case "evolve: pre-filter counters" `Quick test_evolve_prefilter_counters;
    Alcotest.test_case "dataset: load_or_generate reuses labels" `Quick
      test_dataset_reused_counter;
  ]
