module Event = Inltune_obs.Event
module Json = Inltune_obs.Json
module Sink = Inltune_obs.Sink
module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Summary = Inltune_obs.Summary
module Vec = Inltune_support.Vec

(* --- Event serialization --- *)

let test_event_json_round_trip () =
  let ev =
    {
      Event.ts = 1.5;
      name = "unit.test";
      fields =
        [
          ("i", Event.Int (-42));
          ("f", Event.Float 2.25);
          ("s", Event.Str "quote\" slash\\ nl\n tab\t");
          ("b", Event.Bool true);
        ];
    }
  in
  match Json.parse (Event.to_json ev) with
  | Error e -> Alcotest.failf "emitted line does not parse: %s" e
  | Ok j ->
    Alcotest.(check (option string)) "ev" (Some "unit.test") Json.(member "ev" j |> Option.map (fun v -> Option.get (to_string v)));
    Alcotest.(check (option int)) "i" (Some (-42)) (Option.bind (Json.member "i" j) Json.to_int);
    Alcotest.(check (option (float 1e-9))) "f" (Some 2.25) (Option.bind (Json.member "f" j) Json.to_float);
    Alcotest.(check (option string)) "s"
      (Some "quote\" slash\\ nl\n tab\t")
      (Option.bind (Json.member "s" j) Json.to_string);
    Alcotest.(check (option bool)) "b" (Some true) (Option.bind (Json.member "b" j) Json.to_bool);
    Alcotest.(check (option (float 1e-9))) "ts" (Some 1.5) (Option.bind (Json.member "ts" j) Json.to_float)

let test_event_json_nonfinite () =
  let ev = { Event.ts = 0.0; name = "x"; fields = [ ("n", Event.Float nan) ] } in
  match Json.parse (Event.to_json ev) with
  | Error e -> Alcotest.failf "nan field broke the line: %s" e
  | Ok j -> Alcotest.(check bool) "nan is null" true (Json.member "n" j = Some Json.Null)

(* --- JSON parser --- *)

let test_json_parser_basics () =
  let ok s = match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e in
  Alcotest.(check bool) "int" true (ok "42" = Json.Num 42.0);
  Alcotest.(check bool) "negative float" true (ok "-2.5e1" = Json.Num (-25.0));
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "list" true (ok "[1, 2]" = Json.List [ Json.Num 1.0; Json.Num 2.0 ]);
  Alcotest.(check bool) "nested obj" true
    (ok {|{"a": {"b": [true, false]}}|}
    = Json.Obj [ ("a", Json.Obj [ ("b", Json.List [ Json.Bool true; Json.Bool false ]) ]) ]);
  Alcotest.(check (option string)) "unicode escape" (Some "A\xc3\xa9")
    (Json.to_string (ok {|"Aé"|}));
  Alcotest.(check (option int)) "to_int rejects fractions" None (Json.to_int (ok "1.5"))

let test_json_parser_errors () =
  let bad s = match Json.parse s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> () in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "tru";
  bad "\"unterminated";
  bad "1 2"

(* --- Sinks and the Trace front end --- *)

let test_disabled_trace_emits_nothing () =
  Trace.disable ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Trace.emit "ignored" ~fields:[ ("x", Event.Int 1) ];
  let r = Trace.span "ignored.span" ~post:(fun _ -> Alcotest.fail "post ran while disabled") (fun () -> 7) in
  Alcotest.(check int) "span passes result through" 7 r

let test_memory_sink_round_trip () =
  let sink, events = Sink.memory () in
  Trace.install sink;
  Trace.emit "one" ~fields:[ ("k", Event.Str "v") ];
  Trace.emit "two";
  let r = Trace.span "three" ~post:(fun r -> [ ("r", Event.Int r) ]) (fun () -> 9) in
  Alcotest.(check int) "span result" 9 r;
  Alcotest.(check bool) "enabled while installed" true (Trace.enabled ());
  Alcotest.(check int) "three events" 3 (Vec.length events);
  Alcotest.(check string) "first name" "one" (Vec.get events 0).Event.name;
  Alcotest.(check (option string)) "first field" (Some "v") (Event.str_field (Vec.get events 0) "k");
  let three = Vec.get events 2 in
  Alcotest.(check (option int)) "span post field" (Some 9) (Event.int_field three "r");
  Alcotest.(check bool) "span duration present" true (Event.find three "dur_us" <> None);
  Trace.disable ();
  Alcotest.(check bool) "disabled again" false (Trace.enabled ())

let test_jsonl_sink_file_round_trip () =
  let path = Filename.temp_file "inltune_obs" ".jsonl" in
  Trace.to_file path;
  Trace.emit "alpha" ~fields:[ ("s", Event.Str "a\"b\\c\nd") ];
  Trace.emit "beta" ~fields:[ ("n", Event.Int 3) ];
  Trace.disable ();
  let records, malformed = Summary.load_file path in
  Sys.remove path;
  Alcotest.(check int) "no malformed lines" 0 malformed;
  (* Metric flush may append counter events; ours must be the first two. *)
  let alpha = List.nth records 0 and beta = List.nth records 1 in
  Alcotest.(check string) "first ev" "alpha" alpha.Summary.ev;
  Alcotest.(check (option string)) "escaped string survives" (Some "a\"b\\c\nd")
    (Option.bind (Json.member "s" alpha.Summary.json) Json.to_string);
  Alcotest.(check (option int)) "int survives" (Some 3)
    (Option.bind (Json.member "n" beta.Summary.json) Json.to_int)

let test_jsonl_sink_appends () =
  let path = Filename.temp_file "inltune_obs" ".jsonl" in
  Trace.to_file path;
  Trace.emit "first";
  Trace.disable ();
  Trace.to_file path;
  Trace.emit "second";
  Trace.disable ();
  let records, _ = Summary.load_file path in
  Sys.remove path;
  let names = List.map (fun r -> r.Summary.ev) records in
  Alcotest.(check bool) "both runs present" true
    (List.mem "first" names && List.mem "second" names)

(* --- Metrics --- *)

let test_counter_across_domains () =
  Metric.reset_all ();
  let c = Metric.counter "test.ctr" in
  Metric.add c 5;
  let worker () =
    let c' = Metric.counter "test.ctr" in
    for _ = 1 to 10_000 do
      Metric.incr c'
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "atomic increments" 20_005 (Metric.value c);
  Alcotest.(check (list (pair string int))) "snapshot" [ ("test.ctr", 20_005) ]
    (Metric.counters_snapshot ())

let test_histogram_aggregation () =
  Metric.reset_all ();
  let h = Metric.histogram "test.hist" in
  List.iter (Metric.observe h) [ 0.25; 1.0; 2.0; 3.0; 1000.0 ];
  let s = Metric.snapshot h in
  Alcotest.(check int) "count" 5 s.Metric.hs_count;
  Alcotest.(check (float 1e-9)) "sum" 1006.25 s.Metric.hs_sum;
  Alcotest.(check (float 1e-9)) "min" 0.25 s.Metric.hs_min;
  Alcotest.(check (float 1e-9)) "max" 1000.0 s.Metric.hs_max;
  Alcotest.(check int) "buckets hold every observation" 5
    (Array.fold_left ( + ) 0 s.Metric.hs_buckets);
  Alcotest.(check int) "sub-1 bucket" 1 s.Metric.hs_buckets.(0);
  (* Exact nearest-rank percentiles over the retained samples — log2
     buckets alone could only bound these. *)
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.Metric.hs_p50;
  Alcotest.(check (float 1e-9)) "p90" 1000.0 s.Metric.hs_p90;
  Alcotest.(check (float 1e-9)) "p99" 1000.0 s.Metric.hs_p99

let test_histogram_empty_percentiles () =
  Metric.reset_all ();
  let s = Metric.snapshot (Metric.histogram "test.empty") in
  Alcotest.(check int) "count" 0 s.Metric.hs_count;
  Alcotest.(check bool) "percentiles are nan" true
    (Float.is_nan s.Metric.hs_p50 && Float.is_nan s.Metric.hs_p90 && Float.is_nan s.Metric.hs_p99)

let test_metrics_flush_into_trace () =
  Metric.reset_all ();
  let sink, events = Sink.memory () in
  Trace.install sink;
  Metric.add (Metric.counter "flush.me") 7;
  Trace.disable ();
  let found = ref None in
  Vec.iter
    (fun e ->
      if e.Event.name = "counter" && Event.str_field e "name" = Some "flush.me" then
        found := Event.int_field e "value")
    events;
  Alcotest.(check (option int)) "counter flushed on close" (Some 7) !found;
  Metric.reset_all ()

(* --- Summary aggregation --- *)

let synthetic_lines =
  [
    {|{"ts":0.1,"ev":"inline.decision","owner":"a","callee":"b","accept":true,"reason":"always_inline"}|};
    {|{"ts":0.2,"ev":"inline.decision","owner":"a","callee":"c","accept":false,"reason":"callee_too_big"}|};
    {|{"ts":0.3,"ev":"inline.decision","owner":"b","callee":"c","accept":false,"reason":"callee_too_big"}|};
    "this is not json";
    {|{"ts":0.4,"ev":"ga.generation","gen":0,"best":1.0,"mean":1.2,"evals":16}|};
    {|{"ts":0.5,"ev":"ga.generation","gen":1,"best":0.95,"mean":1.1,"evals":30}|};
    {|{"ts":0.6,"ev":"vm.compile","tier":"opt","cycles":100,"code_bytes":64,"recompile":false}|};
    {|{"ts":0.7,"ev":"vm.compile","tier":"opt","cycles":50,"code_bytes":32,"recompile":true}|};
    {|{"ts":0.8,"ev":"counter","name":"x","value":3}|};
  ]

let test_summary_of_lines () =
  let records, malformed = Summary.of_lines synthetic_lines in
  Alcotest.(check int) "one malformed line" 1 malformed;
  Alcotest.(check int) "eight records" 8 (List.length records)

let test_summary_inline_reasons () =
  let records, _ = Summary.of_lines synthetic_lines in
  Alcotest.(check bool) "sorted by count desc" true
    (Summary.inline_reasons records
    = [ ("callee_too_big", false, 2); ("always_inline", true, 1) ])

let test_summary_ga_generations () =
  let records, _ = Summary.of_lines synthetic_lines in
  Alcotest.(check bool) "generations in order" true
    (Summary.ga_generations records = [ (0, 1.0, 1.2, 16); (1, 0.95, 1.1, 30) ])

let test_summary_compile_tiers () =
  let records, _ = Summary.of_lines synthetic_lines in
  Alcotest.(check bool) "opt tier totals" true
    (Summary.compile_tiers records = [ ("opt", (2, 1, 150, 96)) ])

let test_summary_counter_values () =
  let records, _ = Summary.of_lines synthetic_lines in
  Alcotest.(check (list (pair string int))) "counter values" [ ("x", 3) ]
    (Summary.counter_values records)

let test_summary_tables_nonempty () =
  let records, _ = Summary.of_lines synthetic_lines in
  let tables = Summary.tables records in
  Alcotest.(check bool) "has tables" true (List.length tables >= 3);
  List.iter
    (fun t -> Alcotest.(check bool) "renders" true (String.length (Inltune_support.Table.render t) > 0))
    tables

let test_parameter_of_reason () =
  Alcotest.(check string) "callee cap" "CALLEE_MAX_SIZE" (Summary.parameter_of_reason "callee_too_big");
  Alcotest.(check string) "hot cap" "HOT_CALLEE_MAX_SIZE"
    (Summary.parameter_of_reason "hot_callee_too_big")

(* --- histogram and profiler aggregation from flushed snapshots --- *)

let prof_lines =
  [
    {|{"ts":0.9,"ev":"histogram","name":"h1","count":5,"sum":1006.25,"min":0.25,"max":1000.0,"mean":201.25,"p50":2.0,"p90":1000.0,"p99":1000.0}|};
    {|{"ts":1.0,"ev":"prof.node","path":"fitness.eval","label":"fitness.eval","depth":0,"calls":4,"total_us":100.0,"self_us":40.0,"p50_us":25.0,"p90_us":30.0,"p99_us":30.0,"max_us":30.0}|};
    {|{"ts":1.1,"ev":"prof.node","path":"fitness.eval;vm.execute","label":"vm.execute","depth":1,"calls":8,"total_us":60.0,"self_us":60.0,"p50_us":7.0,"p90_us":9.0,"p99_us":9.0,"max_us":9.0}|};
    {|{"ts":1.2,"ev":"prof.node","path":"zero.self","label":"zero.self","depth":0,"calls":1,"total_us":0.2,"self_us":0.2,"p50_us":0.2,"p90_us":0.2,"p99_us":0.2,"max_us":0.2}|};
  ]

let test_summary_histogram_values () =
  let records, _ = Summary.of_lines prof_lines in
  match Summary.histogram_values records with
  | [ ("h1", (count, sum, mn, mx, mean, p50, p90, p99)) ] ->
    Alcotest.(check int) "count" 5 count;
    Alcotest.(check (float 1e-9)) "sum" 1006.25 sum;
    Alcotest.(check (float 1e-9)) "min" 0.25 mn;
    Alcotest.(check (float 1e-9)) "max" 1000.0 mx;
    Alcotest.(check (float 1e-9)) "mean" 201.25 mean;
    Alcotest.(check (float 1e-9)) "p50" 2.0 p50;
    Alcotest.(check (float 1e-9)) "p90" 1000.0 p90;
    Alcotest.(check (float 1e-9)) "p99" 1000.0 p99
  | hs -> Alcotest.failf "expected one histogram, got %d" (List.length hs)

let test_summary_prof_nodes () =
  let records, _ = Summary.of_lines prof_lines in
  let nodes = Summary.prof_nodes records in
  Alcotest.(check (list string)) "paths in tree order"
    [ "fitness.eval"; "fitness.eval;vm.execute"; "zero.self" ]
    (List.map fst nodes);
  let _, (label, depth, calls, total_us, self_us, _, _, _, _) = List.nth nodes 1 in
  Alcotest.(check string) "label" "vm.execute" label;
  Alcotest.(check int) "depth" 1 depth;
  Alcotest.(check int) "calls" 8 calls;
  Alcotest.(check (float 1e-9)) "total us" 60.0 total_us;
  Alcotest.(check (float 1e-9)) "self us" 60.0 self_us

let test_summary_folded () =
  let records, _ = Summary.of_lines prof_lines in
  (* zero.self rounds to 0 µs and is dropped; the rest keep integer self µs. *)
  Alcotest.(check (list string)) "folded lines"
    [ "fitness.eval 40"; "fitness.eval;vm.execute 60" ]
    (Summary.folded records)

let test_has_events () =
  let parse lines = fst (Summary.of_lines lines) in
  Alcotest.(check bool) "empty trace" false (Summary.has_events []);
  Alcotest.(check bool) "counter/histogram-only trace" false
    (Summary.has_events
       (parse
          [
            {|{"ts":1.0,"ev":"counter","name":"x","value":3}|};
            {|{"ts":1.0,"ev":"histogram","name":"h","count":1}|};
          ]));
  Alcotest.(check bool) "real event" true
    (Summary.has_events
       (parse
          [
            {|{"ts":1.0,"ev":"counter","name":"x","value":3}|};
            {|{"ts":2.0,"ev":"inline.decision","reason":"always_inline","accept":true}|};
          ]))

let suite =
  [
    Alcotest.test_case "event json round trip" `Quick test_event_json_round_trip;
    Alcotest.test_case "event json non-finite floats" `Quick test_event_json_nonfinite;
    Alcotest.test_case "json parser basics" `Quick test_json_parser_basics;
    Alcotest.test_case "json parser rejects garbage" `Quick test_json_parser_errors;
    Alcotest.test_case "disabled trace emits nothing" `Quick test_disabled_trace_emits_nothing;
    Alcotest.test_case "memory sink round trip" `Quick test_memory_sink_round_trip;
    Alcotest.test_case "jsonl sink file round trip" `Quick test_jsonl_sink_file_round_trip;
    Alcotest.test_case "jsonl sink appends across installs" `Quick test_jsonl_sink_appends;
    Alcotest.test_case "counters are atomic across domains" `Quick test_counter_across_domains;
    Alcotest.test_case "histogram aggregation" `Quick test_histogram_aggregation;
    Alcotest.test_case "empty histogram percentiles" `Quick test_histogram_empty_percentiles;
    Alcotest.test_case "metrics flush into trace on close" `Quick test_metrics_flush_into_trace;
    Alcotest.test_case "summary skips malformed lines" `Quick test_summary_of_lines;
    Alcotest.test_case "summary inline reasons" `Quick test_summary_inline_reasons;
    Alcotest.test_case "summary ga generations" `Quick test_summary_ga_generations;
    Alcotest.test_case "summary compile tiers" `Quick test_summary_compile_tiers;
    Alcotest.test_case "summary counter values" `Quick test_summary_counter_values;
    Alcotest.test_case "summary tables render" `Quick test_summary_tables_nonempty;
    Alcotest.test_case "reason to Table 1 parameter" `Quick test_parameter_of_reason;
    Alcotest.test_case "summary histogram snapshots" `Quick test_summary_histogram_values;
    Alcotest.test_case "summary profile nodes" `Quick test_summary_prof_nodes;
    Alcotest.test_case "summary folded stacks" `Quick test_summary_folded;
    Alcotest.test_case "has_events ignores counter snapshots" `Quick test_has_events;
  ]
