open Inltune_jir
open Inltune_opt
open Inltune_vm
open Inltune_core
module W = Inltune_workloads

(* The pass-manager layer: plan text round-trips, the default plan
   reproduces the historical pipeline bit-identically, per-item deltas sum
   exactly to the pipeline totals, the plan-genome encoding decodes safely,
   and the fitness-cache key isolates non-default plans. *)

let parse_ok s =
  match Plan.of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "expected plan to parse: %s" msg

let parse_err s =
  match Plan.of_string s with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> msg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  Alcotest.(check bool) (what ^ ": error mentions '" ^ needle ^ "'") true (contains hay needle)

let bm_compress = W.Suites.find "compress"
let bm_jess = W.Suites.find "jess"

(* --- text form ----------------------------------------------------------- *)

let test_default_is_canonical_fixpoint () =
  let text = Plan.to_string Plan.default in
  let p = parse_ok text in
  Alcotest.(check bool) "parses back equal" true (Plan.equal p Plan.default);
  Alcotest.(check string) "canonical fixpoint" text (Plan.to_string p);
  Alcotest.(check bool) "is_default" true (Plan.is_default p);
  Alcotest.(check string) "digest stable" (Plan.digest Plan.default) (Plan.digest p)

let test_roundtrip_custom_plan () =
  let text =
    "# payoff passes reordered, one disabled\n\
     inltune-plan v1\n\n\
     pass guarded_devirt on\n\
     pass constprop on iters=1\n\
     pass inline on\n\
     pass dce on iters=3\n\
     pass cse off\n\
     pass cleanup on\n"
  in
  let p = parse_ok text in
  let p' = parse_ok (Plan.to_string p) in
  Alcotest.(check bool) "round-trips" true (Plan.equal p p');
  Alcotest.(check bool) "not the default" false (Plan.is_default p);
  Alcotest.(check bool) "digest differs from default" true
    (Plan.digest p <> Plan.digest Plan.default);
  (* Comments and blank lines are not part of the canonical form. *)
  Alcotest.(check bool) "canonical form drops comments" false
    (contains (Plan.to_string p) "payoff")

let test_parse_errors_are_one_line () =
  check_contains "missing header" (parse_err "pass inline on\n") "header";
  let err = parse_err "inltune-plan v1\npass warp_speed on\n" in
  check_contains "unknown pass" err "unknown pass";
  check_contains "unknown pass line number" err "line 2";
  check_contains "unknown knob"
    (parse_err "inltune-plan v1\npass inline on frobnicate=3\n")
    "unknown knob";
  let err = parse_err "inltune-plan v1\npass constprop on iters=99\n" in
  check_contains "out-of-range knob" err "out of range";
  check_contains "malformed line" (parse_err "inltune-plan v1\nnonsense here\n") "line 2";
  List.iter
    (fun e -> Alcotest.(check bool) "single line" false (contains e "\n"))
    [ parse_err "pass inline on\n"; parse_err "inltune-plan v1\npass warp_speed on\n" ]

let test_validate_rejects_bad_items () =
  let bad = { Plan.items = [| { Plan.pass = "warp_speed"; enabled = true; knobs = [] } |] } in
  (match Plan.validate bad with
  | Ok _ -> Alcotest.fail "unknown pass must not validate"
  | Error msg -> check_contains "validate unknown pass" msg "unknown pass");
  let bad_knob =
    { Plan.items = [| { Plan.pass = "cse"; enabled = true; knobs = [ ("iters", 0) ] } |] }
  in
  match Plan.validate bad_knob with
  | Ok _ -> Alcotest.fail "out-of-range knob must not validate"
  | Error msg -> check_contains "validate knob range" msg "out of range"

let test_item_knob_defaults_and_rejects () =
  let it = { Plan.pass = "cse"; enabled = true; knobs = [] } in
  Alcotest.(check int) "declared default" 1 (Plan.item_knob it "iters");
  let it2 = { it with Plan.knobs = [ ("iters", 3) ] } in
  Alcotest.(check int) "stored value wins" 3 (Plan.item_knob it2 "iters");
  Alcotest.check_raises "undeclared knob raises"
    (Invalid_argument "Plan.item_knob: cse has no knob frobnicate") (fun () ->
      ignore (Plan.item_knob it "frobnicate"))

(* --- inlining-strategy passes in the text form --------------------------- *)

(* Plan.default with one strategy switched on (with [knobs]) in place of the
   decider-driven inline item. *)
let strategy_plan ?(knobs = []) strategy =
  let items =
    Array.map
      (fun it ->
        if it.Plan.pass = strategy then { it with Plan.enabled = true; knobs }
        else if it.Plan.pass = "inline" then { it with Plan.enabled = false }
        else it)
      Plan.default.Plan.items
  in
  match Plan.validate { Plan.items } with
  | Ok p -> p
  | Error msg -> Alcotest.failf "strategy plan %s must validate: %s" strategy msg

let test_strategy_knobs_roundtrip () =
  let text =
    "inltune-plan v1\n\
     pass guarded_devirt on\n\
     pass constprop on iters=1\n\
     pass inline_leaves on leaf_size=30 rounds=3\n\
     pass inline_hot on hot_permille=200 budget=100\n\
     pass inline on\n\
     pass inline_region on budget=64 depth=2\n\
     pass dce on\n\
     pass cleanup on\n"
  in
  let p = parse_ok text in
  let p' = parse_ok (Plan.to_string p) in
  Alcotest.(check bool) "strategy knobs round-trip" true (Plan.equal p p');
  Alcotest.(check string) "canonical fixpoint" (Plan.to_string p) (Plan.to_string p');
  Alcotest.(check bool) "not the default" false (Plan.is_default p);
  List.iter
    (fun (pass, knob, v) ->
      let it =
        Array.to_list p.Plan.items |> List.find (fun it -> it.Plan.pass = pass)
      in
      Alcotest.(check int) (pass ^ "." ^ knob ^ " survives") v (Plan.item_knob it knob))
    [ ("inline_leaves", "leaf_size", 30); ("inline_leaves", "rounds", 3);
      ("inline_hot", "hot_permille", 200); ("inline_hot", "budget", 100);
      ("inline_region", "budget", 64); ("inline_region", "depth", 2) ]

let test_strategy_knob_errors_are_line_numbered () =
  let err = parse_err "inltune-plan v1\npass constprop on\npass inline_leaves on leaf=3\n" in
  check_contains "unknown strategy knob" err "unknown knob";
  check_contains "unknown strategy knob line" err "line 3";
  let err = parse_err "inltune-plan v1\npass inline_region on depth=99\n" in
  check_contains "out-of-range strategy knob" err "out of range";
  check_contains "out-of-range strategy knob line" err "line 2";
  let err =
    parse_err "inltune-plan v1\npass constprop on\npass inline on\npass inline on\n"
  in
  check_contains "duplicate inliner" err "duplicate pass";
  check_contains "duplicate inliner line" err "line 4";
  let err =
    parse_err
      "inltune-plan v1\npass inline_leaves on\npass inline on\npass inline_leaves on\n"
  in
  check_contains "duplicate strategy" err "duplicate pass";
  check_contains "duplicate strategy line" err "line 4";
  (* constprop is not an inliner: scheduling it twice stays legal (the
     default plan does). *)
  ignore (parse_ok "inltune-plan v1\npass constprop on\npass inline on\npass constprop on\n")

let test_validate_rejects_duplicate_inliner () =
  let dup =
    { Plan.items =
        [| { Plan.pass = "inline"; enabled = true; knobs = [] };
           { Plan.pass = "inline"; enabled = false; knobs = [] } |] }
  in
  match Plan.validate dup with
  | Ok _ -> Alcotest.fail "duplicate inliner must not validate"
  | Error msg ->
    check_contains "validate duplicate inliner" msg "duplicate pass";
    Alcotest.(check bool) "single line" false (contains msg "\n")

(* --- default-plan equivalence (the tentpole invariant) ------------------- *)

let each_method bm f =
  let p = W.Suites.program bm in
  Array.iter (fun m -> f p m) p.Ir.methods

let test_default_plan_bit_identical () =
  (* The plan interpreter under the parsed default plan must reproduce the
     built-in schedule exactly: same method, same stats, on every method. *)
  let parsed = parse_ok (Plan.to_string Plan.default) in
  each_method bm_jess (fun p m ->
      let legacy = Pipeline.run p (Pipeline.opt_config Heuristic.default) m in
      let planned =
        Pipeline.run p (Pipeline.make ~plan:parsed (Decider.Heuristic Heuristic.default)) m
      in
      Alcotest.(check bool) ("bit-identical: " ^ m.Ir.mname) true (legacy = planned))

let test_no_inline_plan_bit_identical () =
  let parsed = parse_ok (Plan.to_string Plan.no_inline) in
  each_method bm_compress (fun p m ->
      let legacy = Pipeline.run p Pipeline.no_inline_config m in
      let planned =
        Pipeline.run p (Pipeline.make ~plan:parsed (Decider.Heuristic Heuristic.default)) m
      in
      Alcotest.(check bool) ("bit-identical: " ^ m.Ir.mname) true (legacy = planned);
      let _, stats = planned in
      Alcotest.(check int) "nothing inlined" 0 stats.Pipeline.sites_inlined)

let test_measurements_bit_identical_across_scenarios () =
  (* End to end through the VM: explicit parsed default plan vs implicit
     built-in schedule, for every scenario. *)
  let parsed = parse_ok (Plan.to_string Plan.default) in
  let p = W.Suites.program bm_compress in
  List.iter
    (fun scen ->
      let implicit = Runner.measure (Machine.config scen Heuristic.default) Platform.x86 p in
      let planned =
        Runner.measure (Machine.config ~plan:parsed scen Heuristic.default) Platform.x86 p
      in
      Alcotest.(check bool)
        ("identical measurement: " ^ Machine.scenario_name scen)
        true (implicit = planned))
    [ Machine.Opt; Machine.Adapt; Machine.Ladder ]

(* --- delta accounting (satellite bugfix) --------------------------------- *)

let test_deltas_sum_to_totals () =
  each_method bm_jess (fun p m ->
      let _, stats, deltas =
        Pipeline.run_detailed p (Pipeline.opt_config Heuristic.default) m
      in
      let total =
        List.fold_left (fun acc (_, d) -> Pass.add_delta acc d) Pass.zero_delta deltas
      in
      let check name got want = Alcotest.(check int) (m.Ir.mname ^ ": " ^ name) want got in
      check "sites_seen" stats.Pipeline.sites_seen total.Pass.d_sites_seen;
      check "sites_inlined" stats.Pipeline.sites_inlined total.Pass.d_sites_inlined;
      check "hot_sites_seen" stats.Pipeline.hot_sites_seen total.Pass.d_hot_sites_seen;
      check "hot_sites_inlined" stats.Pipeline.hot_sites_inlined total.Pass.d_hot_sites_inlined;
      check "sites_guarded" stats.Pipeline.sites_guarded total.Pass.d_sites_guarded;
      check "folded" stats.Pipeline.folded total.Pass.d_folded;
      check "devirtualized" stats.Pipeline.devirtualized total.Pass.d_devirtualized;
      check "cse_replaced" stats.Pipeline.cse_replaced total.Pass.d_cse_replaced;
      check "copies_propagated" stats.Pipeline.copies_propagated total.Pass.d_copies_propagated;
      check "dce_removed" stats.Pipeline.dce_removed total.Pass.d_dce_removed)

let test_deltas_follow_execution_order () =
  let p = W.Suites.program bm_compress in
  let _, _, deltas =
    Pipeline.run_detailed p (Pipeline.opt_config Heuristic.default) p.Ir.methods.(p.Ir.main)
  in
  (* No devirt oracle: guarded_devirt must be structurally absent, and the
     remaining names must follow the default plan's order. *)
  Alcotest.(check (list string)) "execution order"
    [ "constprop"; "inline"; "constprop"; "cse"; "copyprop"; "dce"; "cleanup" ]
    (List.map fst deltas)

let test_pass_spans_feed_summary () =
  (* Each executed plan item emits one opt.pass.<name> span whose transforms
     and size fields the trace summary aggregates. *)
  let path = Filename.temp_file "inltune_plan" ".jsonl" in
  Inltune_obs.Trace.to_file path;
  let p = W.Suites.program bm_compress in
  let _, stats, deltas =
    Pipeline.run_detailed p (Pipeline.opt_config Heuristic.default) p.Ir.methods.(p.Ir.main)
  in
  Inltune_obs.Trace.disable ();
  let records, malformed = Inltune_obs.Summary.load_file path in
  Sys.remove path;
  Alcotest.(check int) "no malformed lines" 0 malformed;
  let totals = Inltune_obs.Summary.pass_totals records in
  Alcotest.(check int) "one span group per executed pass name"
    (List.length (List.sort_uniq compare (List.map fst deltas)))
    (List.length totals);
  let runs, tr, _, _, inl = List.assoc "inline" totals in
  Alcotest.(check int) "inline ran once" 1 runs;
  Alcotest.(check int) "span transforms = delta" stats.Pipeline.sites_inlined tr;
  Alcotest.(check int) "span attributes the inlined sites" stats.Pipeline.sites_inlined inl;
  (* Consecutive spans thread the same method, so the per-pass size deltas
     telescope to the whole pipeline's size change. *)
  let dsize_sum = List.fold_left (fun acc (_, (_, _, _, ds, _)) -> acc + ds) 0 totals in
  Alcotest.(check int) "size deltas telescope"
    (stats.Pipeline.size_after - stats.Pipeline.size_before)
    dsize_sum

(* --- genome encoding ----------------------------------------------------- *)

let test_genes_decode_default () =
  Alcotest.(check int) "gene arity matches ranges"
    (Array.length Plan.tunable_ranges) (Array.length Plan.default_genes);
  Alcotest.(check bool) "default genes decode to the default plan" true
    (Plan.equal (Plan.of_genes Plan.default_genes) Plan.default)

let test_genes_clamp_and_arity () =
  let wild = Array.map (fun (_, hi) -> hi + 50) Plan.tunable_ranges in
  let p = Plan.of_genes wild in
  (match Plan.validate p with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "clamped genes must decode to a valid plan: %s" msg);
  let low = Array.map (fun (lo, _) -> lo - 50) Plan.tunable_ranges in
  (match Plan.validate (Plan.of_genes low) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "clamped genes must decode to a valid plan: %s" msg);
  Alcotest.check_raises "wrong arity raises"
    (Invalid_argument "Plan.of_genes: wrong genome length") (fun () ->
      ignore (Plan.of_genes [| 1 |]))

let test_plan_genome_spec_is_composite () =
  Alcotest.(check int) "heuristic genes + plan genes"
    (5 + Array.length Plan.tunable_ranges)
    (Inltune_ga.Genome.length Params.plan_genome_spec);
  let h, p = Params.split_plan_genome Params.default_plan_genome in
  Alcotest.(check bool) "heuristic prefix decodes to default" true
    (Heuristic.equal h Heuristic.default);
  Alcotest.(check bool) "plan tail decodes to default" true (Plan.equal p Plan.default)

(* --- fitness-cache integration ------------------------------------------- *)

let test_cache_key_isolates_plans () =
  let p = W.Suites.program bm_compress in
  let key plan =
    Fitcache.key ~scenario:Machine.Opt ~platform:Platform.x86 ~heuristic:Heuristic.default
      ~inline_enabled:true ~plan ~iterations:3 p
  in
  let parsed = parse_ok (Plan.to_string Plan.default) in
  Alcotest.(check string) "parsed default shares the default key" (key Plan.default)
    (key parsed);
  let custom = parse_ok "inltune-plan v1\npass constprop on\npass inline on\npass cleanup on\n" in
  Alcotest.(check bool) "non-default plan gets its own key" true
    (key custom <> key Plan.default)

let test_signature_respects_plan () =
  let p = W.Suites.program bm_compress in
  let s plan =
    Fitcache.signature ~scenario:Machine.Opt ~heuristic:Heuristic.default ~inline_enabled:true
      ~plan p
  in
  Alcotest.(check string) "inline disabled in the plan merges everything" "off"
    (s Plan.no_inline);
  (* A plan whose pre-inline schedule differs from the historical one cannot
     use the static decision walk; the signature degrades to the raw
     heuristic parameters (no unsound merging). *)
  let odd =
    parse_ok
      "inltune-plan v1\npass constprop on iters=2\npass inline on\npass cleanup on\n"
  in
  Alcotest.(check bool) "walk-incompatible plan" false (Plan.walk_compatible odd);
  Alcotest.(check bool) "falls back to heuristic-parameter signature" true
    (String.length (s odd) > 2 && String.sub (s odd) 0 2 = "h:");
  Alcotest.(check bool) "default plan keeps the exact walk" true
    (Plan.walk_compatible Plan.default && String.sub (s Plan.default) 0 2 = "w:")

let test_signature_separates_strategies () =
  let p = W.Suites.program bm_compress in
  let s ?(heuristic = Heuristic.default) plan =
    Fitcache.signature ~scenario:Machine.Opt ~heuristic ~inline_enabled:true ~plan p
  in
  let leaves = strategy_plan "inline_leaves" in
  let region = strategy_plan "inline_region" in
  (* Both plans lead with a static strategy (decider inline off), so the
     cache takes the exact per-strategy decision walk... *)
  Alcotest.(check bool) "leaves signature is an exact walk" true
    (String.sub (s leaves) 0 2 = "w:");
  Alcotest.(check bool) "region signature is an exact walk" true
    (String.sub (s region) 0 2 = "w:");
  (* ...so strategies with different verdict vectors can never share a
     signature — the cross-strategy false-sharing bug this guards against. *)
  Alcotest.(check bool) "different strategies, different signatures" true
    (s leaves <> s region);
  (* Knob values that flip verdicts change the signature too. *)
  let tight = strategy_plan ~knobs:[ ("leaf_size", 1); ("rounds", 1) ] "inline_leaves" in
  Alcotest.(check bool) "verdict-changing knobs change the signature" true
    (s leaves <> s tight);
  (* Strategies never consult the heuristic, so a strategy-led plan's
     signature merges across heuristics — that merge is what makes the
     cache useful under --tune-passes, and it is sound precisely because
     the walk replays the strategy's own verdicts. *)
  Alcotest.(check string) "strategy walk is heuristic-independent"
    (s ~heuristic:Heuristic.default leaves)
    (s ~heuristic:Heuristic.never leaves)

(* --- plan-genome tuning -------------------------------------------------- *)

let test_tune_plan_smoke () =
  Fitcache.clear ();
  let budget = { Tuner.pop = 4; gens = 2; seed = 7 } in
  let o = Tuner.tune_plan ~budget ~suite:[ bm_compress ] Tuner.Opt_tot_x86 in
  Alcotest.(check bool) "finite fitness" true (Float.is_finite o.Tuner.p_fitness);
  (match Plan.validate o.Tuner.p_plan with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "tuned plan must validate: %s" msg);
  Alcotest.(check bool) "tuned plan keeps an enabled inline item or not, but parses" true
    (Plan.equal o.Tuner.p_plan (parse_ok (Plan.to_string o.Tuner.p_plan)));
  Alcotest.(check bool) "heuristic within Table 1 ranges" true
    (Heuristic.equal o.Tuner.p_heuristic
       (Heuristic.of_array (Heuristic.clamp_to_ranges (Heuristic.to_array o.Tuner.p_heuristic))))

let suite =
  [
    ("default plan is canonical fixpoint", `Quick, test_default_is_canonical_fixpoint);
    ("custom plan round-trips", `Quick, test_roundtrip_custom_plan);
    ("parse errors are one line", `Quick, test_parse_errors_are_one_line);
    ("validate rejects bad items", `Quick, test_validate_rejects_bad_items);
    ("item knob defaults and rejects", `Quick, test_item_knob_defaults_and_rejects);
    ("strategy knobs round-trip", `Quick, test_strategy_knobs_roundtrip);
    ("strategy knob errors are line-numbered", `Quick,
     test_strategy_knob_errors_are_line_numbered);
    ("validate rejects duplicate inliner", `Quick, test_validate_rejects_duplicate_inliner);
    ("default plan bit-identical pipeline", `Quick, test_default_plan_bit_identical);
    ("no-inline plan bit-identical", `Quick, test_no_inline_plan_bit_identical);
    ("measurements bit-identical across scenarios", `Quick,
     test_measurements_bit_identical_across_scenarios);
    ("per-pass deltas sum to totals", `Quick, test_deltas_sum_to_totals);
    ("deltas follow execution order", `Quick, test_deltas_follow_execution_order);
    ("pass spans feed the trace summary", `Quick, test_pass_spans_feed_summary);
    ("plan genes decode to default", `Quick, test_genes_decode_default);
    ("plan genes clamp and check arity", `Quick, test_genes_clamp_and_arity);
    ("plan genome spec is composite", `Quick, test_plan_genome_spec_is_composite);
    ("cache key isolates plans", `Quick, test_cache_key_isolates_plans);
    ("signature respects plan", `Quick, test_signature_respects_plan);
    ("signature separates strategies", `Quick, test_signature_separates_strategies);
    ("tune_plan smoke", `Quick, test_tune_plan_smoke);
  ]
