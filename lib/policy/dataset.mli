open Inltune_opt
open Inltune_vm
module Objective = Inltune_core.Objective

(** Labeled call-site datasets: replay the optimizer over a benchmark suite
    and label each inlining decision by a flip oracle — re-measure the
    benchmark with that one decision inverted and keep whichever choice runs
    faster.  Flip measurements are fault-isolated through
    {!Inltune_resilience.Sandbox.protect} (a trapping VM penalizes nothing;
    the base decision is kept as the label), and builds are resumable from an
    append-only JSONL file, the same discipline as GA checkpoints. *)

type example = {
  x_bench : string;        (** benchmark the site came from *)
  x_ordinal : int;         (** k-th policy decision of the whole run *)
  x_features : float array;(** {!Features.of_site} at decision time *)
  x_base : bool;           (** the base heuristic's decision *)
  x_label : bool;          (** the oracle's decision *)
  x_benefit : float;       (** relative metric gain of flipping; > 0 iff the
                               flip won and [x_label = not x_base] *)
}

(** One example per JSONL line; floats round-trip exactly. *)
val to_line : example -> string

val of_line : string -> (example, string) result

(** Parse a JSONL dataset file: examples in file order plus the count of
    malformed lines skipped (a build killed mid-append must still load). *)
val load : string -> example list * int

val save : string -> example list -> unit

(** Training pairs [(features, oracle label)]. *)
val to_training : example list -> (float array * bool) array

type config = {
  scenario : Machine.scenario;
  platform : Platform.t;
  heuristic : Heuristic.t;   (** base policy whose decisions are flipped *)
  goal : Objective.goal;     (** metric the oracle compares runs under *)
  iterations : int;
  max_sites : int;           (** flip-measurement cap per benchmark; 0 = all *)
  max_retries : int;         (** sandbox retries per flip measurement *)
}

(** Opt scenario, x86, Jikes default heuristic, Total goal, 20 sites per
    benchmark, 1 retry. *)
val default_config : config

(** The base run's decisions for one benchmark: feature vector and base
    accept per ordinal, in decision order.  Deterministic. *)
val enumerate : config -> Inltune_workloads.Suites.benchmark list
  -> (string * (float array * bool) array) list

(** Label every enumerated site of every benchmark.  [resume], when given,
    names an append-only JSONL file: already-labeled (bench, ordinal) pairs
    are loaded instead of re-measured, and every fresh label is appended
    immediately, so an interrupted build continues where it stopped.
    Progress counters: ["policy.sites_labeled"], ["policy.label_flips"],
    ["policy.label.failures"] (from the sandbox). *)
val generate :
  ?resume:string ->
  ?on_benchmark:(string -> int -> unit) ->
  config ->
  Inltune_workloads.Suites.benchmark list ->
  example list

(** [load_or_generate ?file cfg benches] returns [file]'s examples when it
    exists and holds at least one (bumping ["policy.dataset_reused"]);
    otherwise labels from scratch via {!generate} with [file] as its resume
    journal.  The [--dataset] flag's semantics: labeling is loaded, not
    recomputed, whenever the file is already there. *)
val load_or_generate :
  ?file:string ->
  ?on_benchmark:(string -> int -> unit) ->
  config ->
  Inltune_workloads.Suites.benchmark list ->
  example list
