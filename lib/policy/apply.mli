open Inltune_opt
open Inltune_vm

(** Turning a stored policy into the inliner's {!Policy.t} interface. *)

(** A {!Policy.t} for one compilation: threshold policies replay the Fig. 3/4
    procedure verbatim (identical rule strings, so traces look the same);
    tree policies extract features with [ctx] (the given profile attached, if
    any) and answer with ["tree_accept"]/["tree_reject"] rules. *)
val policy : ctx:Features.ctx -> ?profile:Profile.t -> Store.t -> Policy.t

(** A {!Machine.config}-ready factory over a precomputed feature context:
    invoked per (re)compile so tree features see the live profile. *)
val factory : ctx:Features.ctx -> Store.t -> Profile.t -> Policy.t
