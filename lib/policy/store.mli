open Inltune_opt

(** Serialized inlining policies: the trivial five-threshold baseline (a
    {!Heuristic.t}, which must reproduce the Fig. 3/4 procedure exactly) and
    trained decision trees.

    Loading validates like {!Heuristic.of_array} clamps genes: threshold
    genomes are clamped into the Table 1 ranges, tree files are checked for
    shape, feature range, and finite thresholds — a corrupt file is an
    [Error] with a one-line message, never an exception. *)

type t =
  | Threshold of Heuristic.t  (** the paper's parametric heuristic *)
  | Tree of Dtree.t           (** a trained CART policy *)

val kind_name : t -> string

(** Text form: a ["inltune-policy v1 <kind>"] header line followed by the
    payload.  {!of_string} accepts exactly this. *)
val to_string : t -> string

val of_string : string -> (t, string) result

val save : string -> t -> unit

(** [Error] on a missing or unreadable file as well as on corrupt content. *)
val load : string -> (t, string) result
