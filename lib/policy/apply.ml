open Inltune_opt

(* Stored policy -> the inliner's first-class interface.  The threshold kind
   routes through Policy.of_heuristic so its decisions — and the rule strings
   in "inline.decision" events — are indistinguishable from the built-in
   heuristic; that equivalence is an acceptance test. *)

let policy ~ctx ?profile store =
  match store with
  | Store.Threshold h -> Policy.of_heuristic h
  | Store.Tree t ->
    let fctx = match profile with None -> ctx | Some p -> Features.with_profile ctx p in
    {
      Policy.name = "tree";
      decide =
        (fun s ->
          let accept = Dtree.decide t (Features.of_site fctx s) in
          { Policy.accept; rule = (if accept then "tree_accept" else "tree_reject") });
    }

let factory ~ctx store profile = policy ~ctx ~profile store
