open Inltune_jir
open Inltune_opt
open Inltune_vm

(* Call-site feature vectors.  The static half (callee shape, recursion) is
   precomputed per method so per-decision extraction stays O(dim); the
   dynamic half (hotness flag, profiled edge count) reads the profile the
   context carries.  Everything is integral counts encoded as floats, so
   "%.17g" printing is exact and vectors compare bit-for-bit. *)

type mstats = {
  f_args : int;
  f_blocks : int;
  f_branches : int;   (* conditional terminators *)
  f_loops : int;      (* back edges: jump/branch targets <= source block *)
  f_calls : int;      (* static + virtual call instructions *)
  f_recursive : bool; (* can reach itself in the static call graph *)
}

type ctx = {
  per_method : mstats array;
  profile : Profile.t option;
}

let method_stats cg (m : Ir.methd) =
  let branches = ref 0 and loops = ref 0 and calls = ref 0 in
  Array.iteri
    (fun bi blk ->
      Array.iter
        (fun i -> match i with Ir.Call _ | Ir.CallVirt _ -> incr calls | _ -> ())
        blk.Ir.instrs;
      let back l = if l <= bi then incr loops in
      match blk.Ir.term with
      | Ir.Jump l -> back l
      | Ir.Branch (_, t, f) ->
        incr branches;
        back t;
        back f
      | Ir.Ret _ -> ())
    m.Ir.blocks;
  {
    f_args = m.Ir.nargs;
    f_blocks = Array.length m.Ir.blocks;
    f_branches = !branches;
    f_loops = !loops;
    f_calls = !calls;
    f_recursive = Callgraph.recursive cg m.Ir.mid;
  }

let make_ctx (p : Ir.program) =
  let cg = Callgraph.build p in
  { per_method = Array.map (method_stats cg) p.Ir.methods; profile = None }

let with_profile ctx profile = { ctx with profile = Some profile }

let names =
  [|
    "callee_size";
    "caller_size";
    "inline_depth";
    "hot";
    "callee_args";
    "callee_blocks";
    "callee_branches";
    "callee_loops";
    "callee_calls";
    "callee_recursive";
    "edge_calls";
  |]

let dim = Array.length names

let of_site ctx (s : Policy.site) =
  let m = ctx.per_method.(s.Policy.callee) in
  let edge =
    match ctx.profile with
    | None -> 0
    | Some p -> Profile.edge_count p ~site_owner:s.Policy.owner ~callee:s.Policy.callee
  in
  [|
    Float.of_int s.Policy.callee_size;
    Float.of_int s.Policy.caller_size;
    Float.of_int s.Policy.inline_depth;
    (if s.Policy.hot then 1.0 else 0.0);
    Float.of_int m.f_args;
    Float.of_int m.f_blocks;
    Float.of_int m.f_branches;
    Float.of_int m.f_loops;
    Float.of_int m.f_calls;
    (if m.f_recursive then 1.0 else 0.0);
    Float.of_int edge;
  |]

let vector_to_string x =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") x))

(* Every static call site at depth 1, in (method, block, instruction) order.
   Mirrors what the inliner would see on a fresh compile of each method:
   caller_size is the method's unexpanded size estimate. *)
let of_program ctx (p : Ir.program) =
  let sites = Inltune_support.Vec.create () in
  Array.iter
    (fun (m : Ir.methd) ->
      let caller_size = Size.of_method m in
      Array.iter
        (fun blk ->
          Array.iter
            (fun i ->
              match i with
              | Ir.Call (_, callee, _) ->
                let hot =
                  match ctx.profile with
                  | None -> false
                  | Some prof ->
                    Profile.hot_site prof ~fraction:0.01 ~floor:100 ~site_owner:m.Ir.mid
                      ~callee
                in
                let s =
                  {
                    Policy.owner = m.Ir.mid;
                    callee;
                    callee_size = Size.of_method p.Ir.methods.(callee);
                    inline_depth = 1;
                    caller_size;
                    hot;
                  }
                in
                Inltune_support.Vec.push sites (s, of_site ctx s)
              | _ -> ())
            blk.Ir.instrs)
        m.Ir.blocks)
    p.Ir.methods;
  Inltune_support.Vec.to_array sites
