open Inltune_jir
open Inltune_opt
open Inltune_vm

(** Call-site feature extraction: a fixed-width numeric vector per
    {!Policy.site}, the input representation both for labeled datasets and
    for trained policies at decision time.

    Extraction is deterministic: the static part depends only on the program
    (precomputed once per program in {!make_ctx}); the dynamic part reads the
    profile attached with {!with_profile} at the moment of the decision.
    Given the same program and the same profile state, the vector for a site
    is byte-identical across runs and across domains. *)

type ctx

(** Precompute the per-method static features (O(program size)).  The
    returned context carries no profile: the [hotness] and [edge_calls]
    features read as 0 until {!with_profile}. *)
val make_ctx : Ir.program -> ctx

(** O(1): the same static context with live profile data attached.  Cheap
    enough to call from a per-compile policy factory. *)
val with_profile : ctx -> Profile.t -> ctx

(** Number of features in a vector. *)
val dim : int

(** Feature names, in vector order (length {!dim}). *)
val names : string array

(** The feature vector for one call site (length {!dim}). *)
val of_site : ctx -> Policy.site -> float array

(** Canonical text form: the features joined by single spaces, each printed
    with ["%.17g"] (so equal vectors have equal strings). *)
val vector_to_string : float array -> string

(** All static call sites of a program as feature vectors, in deterministic
    (method id, block, instruction) order, paired with the callee's method
    id.  Used by the [features] CLI command and the determinism tests;
    [inline_depth] is 1 and [hot]/[edge_calls] read the context's profile. *)
val of_program : ctx -> Ir.program -> (Policy.site * float array) array
