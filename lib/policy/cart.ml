(* CART induction with Gini impurity.  Small datasets (thousands of call
   sites), so the O(features * n log n) scan per node is plenty; what matters
   here is determinism — training must be reproducible bit-for-bit, so split
   ties break on (feature index, threshold) order and nothing consults a
   clock or RNG. *)

type params = {
  max_depth : int;
  min_leaf : int;
  min_gain : float;
}

let default_params = { max_depth = 6; min_leaf = 3; min_gain = 1e-9 }

let gini pos n =
  if n = 0 then 0.0
  else
    let p = Float.of_int pos /. Float.of_int n in
    2.0 *. p *. (1.0 -. p)

let count_pos xs lo hi =
  let pos = ref 0 in
  for i = lo to hi - 1 do
    if snd xs.(i) then incr pos
  done;
  !pos

(* Majority label; ties prefer not inlining (the conservative decision). *)
let majority xs lo hi =
  let n = hi - lo in
  2 * count_pos xs lo hi > n

type best = { b_feat : int; b_thresh : float; b_gain : float }

let best_split ~dim ~min_leaf xs lo hi =
  let n = hi - lo in
  let total_pos = count_pos xs lo hi in
  let parent = gini total_pos n in
  let best = ref None in
  let better c =
    match !best with
    | None -> true
    | Some b ->
      c.b_gain > b.b_gain +. 1e-15
      || (Float.abs (c.b_gain -. b.b_gain) <= 1e-15
          && (c.b_feat < b.b_feat || (c.b_feat = b.b_feat && c.b_thresh < b.b_thresh)))
  in
  let vals = Array.make n (0.0, false) in
  for f = 0 to dim - 1 do
    for i = 0 to n - 1 do
      let x, y = xs.(lo + i) in
      vals.(i) <- (x.(f), y)
    done;
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) vals;
    (* Sweep left-to-right, considering a split between each pair of distinct
       consecutive values. *)
    let left_pos = ref 0 in
    for i = 0 to n - 2 do
      if snd vals.(i) then incr left_pos;
      let v, _ = vals.(i) and v', _ = vals.(i + 1) in
      if v < v' then begin
        let nl = i + 1 in
        let nr = n - nl in
        if nl >= min_leaf && nr >= min_leaf then begin
          let child =
            (Float.of_int nl *. gini !left_pos nl
            +. Float.of_int nr *. gini (total_pos - !left_pos) nr)
            /. Float.of_int n
          in
          let c = { b_feat = f; b_thresh = (v +. v') /. 2.0; b_gain = parent -. child } in
          if better c then best := Some c
        end
      end
    done
  done;
  !best

let train ?(params = default_params) examples =
  let dim =
    match Array.length examples with
    | 0 -> 0
    | _ ->
      let d = Array.length (fst examples.(0)) in
      Array.iter
        (fun (x, _) ->
          if Array.length x <> d then invalid_arg "Cart.train: ragged feature vectors")
        examples;
      d
  in
  if Array.length examples = 0 then Dtree.Leaf false
  else begin
    let xs = Array.copy examples in
    (* In-place partition of xs.(lo..hi-1); returns the split point. *)
    let partition lo hi feat thresh =
      let tmp = Array.sub xs lo (hi - lo) in
      let k = ref lo in
      Array.iter (fun ((x, _) as e) -> if x.(feat) <= thresh then begin xs.(!k) <- e; incr k end) tmp;
      let mid = !k in
      Array.iter (fun ((x, _) as e) -> if x.(feat) > thresh then begin xs.(!k) <- e; incr k end) tmp;
      mid
    in
    let rec grow lo hi d =
      let n = hi - lo in
      let pos = count_pos xs lo hi in
      if pos = 0 then Dtree.Leaf false
      else if pos = n then Dtree.Leaf true
      else if d >= params.max_depth || n < 2 * params.min_leaf then
        Dtree.Leaf (majority xs lo hi)
      else
        match best_split ~dim ~min_leaf:params.min_leaf xs lo hi with
        | Some b when b.b_gain >= params.min_gain ->
          let mid = partition lo hi b.b_feat b.b_thresh in
          let le = grow lo mid (d + 1) in
          let gt = grow mid hi (d + 1) in
          (* A split whose children agree is dead weight; collapse it. *)
          (match (le, gt) with
          | Dtree.Leaf a, Dtree.Leaf b' when a = b' -> Dtree.Leaf a
          | _ -> Dtree.Split { feat = b.b_feat; thresh = b.b_thresh; le; gt })
        | _ -> Dtree.Leaf (majority xs lo hi)
    in
    grow 0 (Array.length xs) 1
  end

let accuracy t examples =
  let n = Array.length examples in
  if n = 0 then 1.0
  else begin
    let ok = ref 0 in
    Array.iter (fun (x, y) -> if Dtree.decide t x = y then incr ok) examples;
    Float.of_int !ok /. Float.of_int n
  end

let split ~k examples =
  if k < 2 then invalid_arg "Cart.split: k must be >= 2";
  let train = Inltune_support.Vec.create () and test = Inltune_support.Vec.create () in
  Array.iteri
    (fun i e ->
      if i mod k = k - 1 then Inltune_support.Vec.push test e
      else Inltune_support.Vec.push train e)
    examples;
  (Inltune_support.Vec.to_array train, Inltune_support.Vec.to_array test)
