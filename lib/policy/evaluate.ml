open Inltune_opt
open Inltune_vm
module W = Inltune_workloads
module Measure = Inltune_core.Measure
module Fitcache = Inltune_core.Fitcache
module Stats = Inltune_support.Stats
module Table = Inltune_support.Table
module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event

(* Run stored policies end-to-end and compare against the default and the
   GA-tuned heuristics, mirroring the paper's test-suite protocol: train on
   SPECjvm98, report normalized times on unseen DaCapo+JBB. *)

let measure ?(iterations = 3) ~scenario ~platform store bm =
  match store with
  (* A threshold store is just a heuristic: route through Measure.run so the
     measurement shares the heuristic walk's fitness-cache entries. *)
  | Store.Threshold h -> Measure.run ~iterations ~scenario ~platform ~heuristic:h bm
  | Store.Tree _ ->
    let prog = W.Suites.program bm in
    let fctx = Features.make_ctx prog in
    let cfg = Machine.config ~policy_factory:(Apply.factory ~ctx:fctx store) scenario Heuristic.default in
    (* Stored decision trees consult the live profile under Adapt
       (Apply.factory re-derives features per compile), so they are not
       static policies: the cache key falls back to the store's content
       digest — sound, just no cross-policy merging. *)
    let policy = Apply.policy ~ctx:fctx store in
    Measure.of_measurement
      (Fitcache.lookup_or_measure_policy ~scenario ~platform ~policy
         ~digest:(Digest.to_hex (Digest.string (Store.to_string store)))
         ~static:false ~inline_enabled:true ~plan:Plan.default ~iterations ~program:prog
         (fun () ->
           Metric.incr (Metric.counter "measure.simulations");
           Runner.measure ~iterations cfg platform prog))

type row = {
  r_bench : string;
  r_default : Measure.times;
  r_tuned : Measure.times option;
  r_learned : Measure.times;
}

type report = {
  rows : row list;
  scenario : Machine.scenario;
  platform : Platform.t;
}

let compare ?(iterations = 3) ?tuned ~scenario ~platform store benches =
  let rows =
    List.map
      (fun bm ->
        let d = Measure.run_default ~iterations ~scenario ~platform bm in
        let t =
          Option.map
            (fun h -> Measure.run ~iterations ~scenario ~platform ~heuristic:h bm)
            tuned
        in
        let l = measure ~iterations ~scenario ~platform store bm in
        if Trace.enabled () then
          Trace.emit "policy.eval"
            ~fields:
              ([
                 ("bench", Event.Str bm.W.Suites.bname);
                 ("policy", Event.Str (Store.kind_name store));
                 ("running_ratio", Event.Float (l.Measure.running /. d.Measure.running));
                 ("total_ratio", Event.Float (l.Measure.total /. d.Measure.total));
               ]
              @
              match t with
              | None -> []
              | Some t ->
                [
                  ("tuned_running_ratio", Event.Float (t.Measure.running /. d.Measure.running));
                  ("tuned_total_ratio", Event.Float (t.Measure.total /. d.Measure.total));
                ]);
        { r_bench = bm.W.Suites.bname; r_default = d; r_tuned = t; r_learned = l })
      benches
  in
  { rows; scenario; platform }

type geo = { g_running : float; g_total : float }

let geo_of select report =
  let ratios f =
    Array.of_list
      (List.filter_map
         (fun r ->
           Option.map (fun t -> f t /. f r.r_default) (select r))
         report.rows)
  in
  let running = ratios (fun t -> t.Measure.running) in
  if Array.length running = 0 then None
  else
    Some
      {
        g_running = Stats.geomean running;
        g_total = Stats.geomean (ratios (fun t -> t.Measure.total));
      }

let learned_geo report =
  match geo_of (fun r -> Some r.r_learned) report with
  | Some g -> g
  | None -> { g_running = 1.0; g_total = 1.0 }

let tuned_geo report = geo_of (fun r -> r.r_tuned) report

let table report =
  let has_tuned = List.exists (fun r -> r.r_tuned <> None) report.rows in
  let header =
    if has_tuned then
      [| "program"; "tuned:run"; "tuned:tot"; "learned:run"; "learned:tot" |]
    else [| "program"; "learned:run"; "learned:tot" |]
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "policy comparison (%s, %s; time vs default, lower is better)"
           (Machine.scenario_name report.scenario)
           report.platform.Platform.pname)
      ~header
      ~aligns:(Array.map (fun _ -> Table.Right) header)
  in
  let cell v = Table.fmt_float v in
  List.iter
    (fun r ->
      let learned =
        [
          cell (r.r_learned.Measure.running /. r.r_default.Measure.running);
          cell (r.r_learned.Measure.total /. r.r_default.Measure.total);
        ]
      in
      let cols =
        match r.r_tuned with
        | Some tu when has_tuned ->
          [
            cell (tu.Measure.running /. r.r_default.Measure.running);
            cell (tu.Measure.total /. r.r_default.Measure.total);
          ]
          @ learned
        | None when has_tuned -> [ "-"; "-" ] @ learned
        | _ -> learned
      in
      Table.add_row t (Array.of_list (r.r_bench :: cols)))
    report.rows;
  Table.add_rule t;
  let lg = learned_geo report in
  let geo_cols =
    match tuned_geo report with
    | Some tg when has_tuned ->
      [ cell tg.g_running; cell tg.g_total; cell lg.g_running; cell lg.g_total ]
    | _ when has_tuned -> [ "-"; "-"; cell lg.g_running; cell lg.g_total ]
    | _ -> [ cell lg.g_running; cell lg.g_total ]
  in
  Table.add_row t (Array.of_list ("geomean" :: geo_cols));
  t

(* --- n-way comparison ---------------------------------------------------- *)
(* The 4-column protocol (default vs GA-tuned vs CART vs GP) outgrew the
   fixed three-system [report]; [compare_many] takes arbitrary labeled
   measurement closures and normalizes each against the shared default
   baseline. *)

type many_row = {
  n_bench : string;
  n_default : Measure.times;
  n_cells : Measure.times list;  (* one per system, in label order *)
}

type many_report = {
  m_labels : string list;
  m_rows : many_row list;
  m_scenario : Machine.scenario;
  m_platform : Platform.t;
}

let compare_many ?(iterations = 3) ~scenario ~platform systems benches =
  let m_labels = List.map fst systems in
  let m_rows =
    List.map
      (fun bm ->
        let d = Measure.run_default ~iterations ~scenario ~platform bm in
        let cells =
          List.map
            (fun (label, f) ->
              let t = f bm in
              if Trace.enabled () then
                Trace.emit "policy.eval"
                  ~fields:
                    [
                      ("bench", Event.Str bm.W.Suites.bname);
                      ("policy", Event.Str label);
                      ("running_ratio", Event.Float (t.Measure.running /. d.Measure.running));
                      ("total_ratio", Event.Float (t.Measure.total /. d.Measure.total));
                    ];
              t)
            systems
        in
        { n_bench = bm.W.Suites.bname; n_default = d; n_cells = cells })
      benches
  in
  { m_labels; m_rows; m_scenario = scenario; m_platform = platform }

let many_geos r =
  List.mapi
    (fun i label ->
      let ratios f =
        Array.of_list (List.map (fun row -> f (List.nth row.n_cells i) /. f row.n_default) r.m_rows)
      in
      let g =
        if r.m_rows = [] then { g_running = 1.0; g_total = 1.0 }
        else
          {
            g_running = Stats.geomean (ratios (fun t -> t.Measure.running));
            g_total = Stats.geomean (ratios (fun t -> t.Measure.total));
          }
      in
      (label, g))
    r.m_labels

let many_table r =
  let header =
    Array.of_list
      ("program" :: List.concat_map (fun l -> [ l ^ ":run"; l ^ ":tot" ]) r.m_labels)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "policy comparison (%s, %s; time vs default, lower is better)"
           (Machine.scenario_name r.m_scenario) r.m_platform.Platform.pname)
      ~header
      ~aligns:(Array.map (fun _ -> Table.Right) header)
  in
  let cell v = Table.fmt_float v in
  List.iter
    (fun row ->
      let cols =
        List.concat_map
          (fun c ->
            [
              cell (c.Measure.running /. row.n_default.Measure.running);
              cell (c.Measure.total /. row.n_default.Measure.total);
            ])
          row.n_cells
      in
      Table.add_row t (Array.of_list (row.n_bench :: cols)))
    r.m_rows;
  Table.add_rule t;
  let geo_cols =
    List.concat_map (fun (_, g) -> [ cell g.g_running; cell g.g_total ]) (many_geos r)
  in
  Table.add_row t (Array.of_list ("geomean" :: geo_cols));
  t
