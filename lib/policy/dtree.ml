(* Binary decision trees over feature vectors, with an exact-round-trip text
   form.  Parsing is defensive: policy files arrive from disk and must fail
   with a one-line message, not a crash (mirroring Heuristic.of_array's
   clamping contract for genomes). *)

type t =
  | Leaf of bool
  | Split of { feat : int; thresh : float; le : t; gt : t }

let rec decide t x =
  match t with
  | Leaf b -> b
  | Split s -> if x.(s.feat) <= s.thresh then decide s.le x else decide s.gt x

let rec size = function Leaf _ -> 1 | Split s -> 1 + size s.le + size s.gt

let rec depth = function Leaf _ -> 1 | Split s -> 1 + max (depth s.le) (depth s.gt)

(* Preorder, one node per line.  "%.17g" makes float thresholds round-trip
   bit-for-bit, the same choice the GA checkpoints make. *)
let to_text t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Leaf b -> Buffer.add_string buf (if b then "leaf inline\n" else "leaf no-inline\n")
    | Split s ->
      Buffer.add_string buf (Printf.sprintf "split %d %.17g\n" s.feat s.thresh);
      go s.le;
      go s.gt
  in
  go t;
  Buffer.contents buf

let of_text ~dim text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let rest = ref lines in
  let lineno = ref 0 in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let next () =
    incr lineno;
    match !rest with
    | [] -> fail "line %d: unexpected end of tree" !lineno
    | l :: tl ->
      rest := tl;
      String.trim l
  in
  let rec node () =
    let line = next () in
    match String.split_on_char ' ' line with
    | [ "leaf"; "inline" ] -> Leaf true
    | [ "leaf"; "no-inline" ] -> Leaf false
    | [ "split"; f; th ] ->
      let feat =
        match int_of_string_opt f with
        | Some i when i >= 0 && i < dim -> i
        | Some i -> fail "line %d: feature index %d outside [0, %d)" !lineno i dim
        | None -> fail "line %d: bad feature index '%s'" !lineno f
      in
      let thresh =
        match float_of_string_opt th with
        | Some v when Float.is_finite v -> v
        | Some _ -> fail "line %d: non-finite threshold" !lineno
        | None -> fail "line %d: bad threshold '%s'" !lineno th
      in
      let le = node () in
      let gt = node () in
      Split { feat; thresh; le; gt }
    | _ -> fail "line %d: bad node '%s'" !lineno line
  in
  match
    let t = node () in
    match !rest with
    | [] -> Ok t
    | l :: _ -> Error (Printf.sprintf "line %d: trailing garbage '%s'" (!lineno + 1) (String.trim l))
  with
  | result -> result
  | exception Bad msg -> Error msg

let pretty ~names t =
  let buf = Buffer.create 256 in
  let rec go indent = function
    | Leaf b -> Buffer.add_string buf (Printf.sprintf "%s-> %s\n" indent (if b then "inline" else "no-inline"))
    | Split s ->
      let name = if s.feat < Array.length names then names.(s.feat) else string_of_int s.feat in
      Buffer.add_string buf (Printf.sprintf "%sif %s <= %g:\n" indent name s.thresh);
      go (indent ^ "  ") s.le;
      Buffer.add_string buf (Printf.sprintf "%selse:\n" indent);
      go (indent ^ "  ") s.gt
  in
  go "" t;
  Buffer.contents buf
