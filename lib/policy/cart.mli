(** Hand-rolled CART-style decision-tree induction (Gini impurity, axis-
    aligned splits at midpoints between consecutive distinct feature values).
    Deterministic: ties between candidate splits resolve to the lowest
    feature index, then the lowest threshold. *)

type params = {
  max_depth : int;   (** leaves are forced at this depth (>= 1) *)
  min_leaf : int;    (** never produce a leaf holding fewer examples *)
  min_gain : float;  (** reject splits whose impurity decrease is below this *)
}

val default_params : params

(** [train ~params examples] induces a tree from [(features, inline?)] pairs.
    An empty dataset yields [Dtree.Leaf false] (never inline: the safe
    default).  Raises [Invalid_argument] on ragged feature vectors. *)
val train : ?params:params -> (float array * bool) array -> Dtree.t

(** Fraction of examples the tree classifies correctly (1.0 on empty). *)
val accuracy : Dtree.t -> (float array * bool) array -> float

(** Deterministic train/test split: every [1/k]-th example (by index) goes to
    the test set.  [k >= 2]. *)
val split : k:int -> (float array * bool) array -> (float array * bool) array * (float array * bool) array
