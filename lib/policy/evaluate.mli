open Inltune_opt
open Inltune_vm
module Measure = Inltune_core.Measure

(** End-to-end evaluation of stored policies: simulate a benchmark with the
    policy plugged into the inliner, and build the paper-style comparison
    table — default heuristic vs GA-tuned heuristic vs learned policy — on a
    suite (typically the unseen DaCapo+JBB programs). *)

(** Simulate one benchmark with [store] deciding every inlining. *)
val measure :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Store.t ->
  Inltune_workloads.Suites.benchmark ->
  Measure.times

type row = {
  r_bench : string;
  r_default : Measure.times;
  r_tuned : Measure.times option;  (** GA-tuned heuristic, when provided *)
  r_learned : Measure.times;
}

type report = {
  rows : row list;
  scenario : Machine.scenario;
  platform : Platform.t;
}

(** Measure every benchmark under the three systems ([tuned] omitted skips
    that column).  Emits one ["policy.eval"] trace event per benchmark. *)
val compare :
  ?iterations:int ->
  ?tuned:Heuristic.t ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Store.t ->
  Inltune_workloads.Suites.benchmark list ->
  report

type geo = { g_running : float; g_total : float }
    (** geometric-mean time ratios vs the default heuristic; < 1 is faster *)

val learned_geo : report -> geo
val tuned_geo : report -> geo option

(** The comparison as a report table (ratio columns, geomean footer). *)
val table : report -> Inltune_support.Table.t
