open Inltune_opt
open Inltune_vm
module Measure = Inltune_core.Measure

(** End-to-end evaluation of stored policies: simulate a benchmark with the
    policy plugged into the inliner, and build the paper-style comparison
    table — default heuristic vs GA-tuned heuristic vs learned policy — on a
    suite (typically the unseen DaCapo+JBB programs). *)

(** Simulate one benchmark with [store] deciding every inlining.
    Measurements route through the fitness cache: threshold stores share the
    heuristic walk's entries, stored trees are keyed by their content
    digest. *)
val measure :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Store.t ->
  Inltune_workloads.Suites.benchmark ->
  Measure.times

type row = {
  r_bench : string;
  r_default : Measure.times;
  r_tuned : Measure.times option;  (** GA-tuned heuristic, when provided *)
  r_learned : Measure.times;
}

type report = {
  rows : row list;
  scenario : Machine.scenario;
  platform : Platform.t;
}

(** Measure every benchmark under the three systems ([tuned] omitted skips
    that column).  Emits one ["policy.eval"] trace event per benchmark. *)
val compare :
  ?iterations:int ->
  ?tuned:Heuristic.t ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Store.t ->
  Inltune_workloads.Suites.benchmark list ->
  report

type geo = { g_running : float; g_total : float }
    (** geometric-mean time ratios vs the default heuristic; < 1 is faster *)

val learned_geo : report -> geo
val tuned_geo : report -> geo option

(** The comparison as a report table (ratio columns, geomean footer). *)
val table : report -> Inltune_support.Table.t

type many_row = {
  n_bench : string;
  n_default : Measure.times;
  n_cells : Measure.times list;  (** one per system, in label order *)
}

(** An n-way comparison: arbitrary labeled systems, each normalized against
    the shared default-heuristic baseline (the 4-column
    default/GA-tuned/CART/GP protocol). *)
type many_report = {
  m_labels : string list;
  m_rows : many_row list;
  m_scenario : Machine.scenario;
  m_platform : Platform.t;
}

(** [compare_many ~scenario ~platform systems benches] measures every
    benchmark under every labeled system ([iterations] applies to the
    default baseline; each system closure owns its measurement settings).
    Emits one ["policy.eval"] trace event per (benchmark, system). *)
val compare_many :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  (string * (Inltune_workloads.Suites.benchmark -> Measure.times)) list ->
  Inltune_workloads.Suites.benchmark list ->
  many_report

(** Per-system geomean ratios, in label order ([1.0]s when no rows). *)
val many_geos : many_report -> (string * geo) list

(** The n-way comparison as a report table. *)
val many_table : many_report -> Inltune_support.Table.t
