open Inltune_opt
open Inltune_vm
module W = Inltune_workloads
module Core = Inltune_core
module Objective = Inltune_core.Objective
module Vec = Inltune_support.Vec
module Json = Inltune_obs.Json
module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event
module Sandbox = Inltune_resilience.Sandbox

(* Flip-oracle dataset generation.

   The VM is deterministic, so "the k-th policy decision of the whole run"
   is a stable identity for a call site: the enumerate pass records features
   and the base decision per ordinal, and each labeling pass re-runs the
   benchmark with exactly one ordinal's verdict inverted.  Whichever choice
   yields the lower metric (paper Section 3.1 goals) becomes the label.
   Flipping decision k can change every later ordinal's context (the caller
   has different code); the oracle is defined as "flip k, let the rest
   re-decide under the base policy", which is the standard one-step
   counterfactual. *)

type example = {
  x_bench : string;
  x_ordinal : int;
  x_features : float array;
  x_base : bool;
  x_label : bool;
  x_benefit : float;
}

(* --- JSONL serialization ------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_line e =
  let feats =
    String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") e.x_features))
  in
  Printf.sprintf
    "{\"bench\":\"%s\",\"ordinal\":%d,\"features\":[%s],\"base\":%b,\"label\":%b,\"benefit\":%.17g}"
    (escape e.x_bench) e.x_ordinal feats e.x_base e.x_label e.x_benefit

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
    let str k = Option.bind (Json.member k j) Json.to_string in
    let int_f k = Option.bind (Json.member k j) Json.to_int in
    let bool_f k = Option.bind (Json.member k j) Json.to_bool in
    let num k = Option.bind (Json.member k j) Json.to_float in
    let feats =
      match Json.member "features" j with
      | Some (Json.List l) ->
        let ok = List.for_all (fun v -> Json.to_float v <> None) l in
        if ok then Some (Array.of_list (List.filter_map Json.to_float l)) else None
      | _ -> None
    in
    match (str "bench", int_f "ordinal", feats, bool_f "base", bool_f "label", num "benefit") with
    | Some b, Some o, Some f, Some base, Some label, Some benefit ->
      Ok { x_bench = b; x_ordinal = o; x_features = f; x_base = base; x_label = label; x_benefit = benefit }
    | _ -> Error "missing or ill-typed example field")

let load path =
  let ic = open_in path in
  let bad = ref 0 in
  let out = Vec.create () in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match of_line line with
         | Ok e -> Vec.push out e
         | Error _ -> incr bad
     done
   with End_of_file -> ());
  close_in ic;
  (Array.to_list (Vec.to_array out), !bad)

let save path examples =
  let oc = open_out path in
  List.iter (fun e -> output_string oc (to_line e ^ "\n")) examples;
  close_out oc

let to_training examples =
  Array.of_list (List.map (fun e -> (e.x_features, e.x_label)) examples)

(* --- generation --------------------------------------------------------- *)

type config = {
  scenario : Machine.scenario;
  platform : Platform.t;
  heuristic : Heuristic.t;
  goal : Objective.goal;
  iterations : int;
  max_sites : int;
  max_retries : int;
}

let default_config =
  {
    scenario = Machine.Opt;
    platform = Platform.x86;
    heuristic = Heuristic.default;
    goal = Objective.Total;
    iterations = 3;
    max_sites = 20;
    max_retries = 1;
  }

(* The oracle's scalar, per Section 3.1; Balance normalizes with the default
   heuristic's compile/run ratio for the benchmark (memoized baseline). *)
let metric cfg bm (t : Core.Measure.times) =
  match cfg.goal with
  | Objective.Running -> t.Core.Measure.running
  | Objective.Total -> t.Core.Measure.total
  | Objective.Balance ->
    let d =
      Core.Measure.run_default ~iterations:cfg.iterations ~scenario:cfg.scenario
        ~platform:cfg.platform bm
    in
    let factor = d.Core.Measure.total /. d.Core.Measure.running in
    (factor *. t.Core.Measure.running) +. t.Core.Measure.total

(* One simulation of [bm] where every policy decision flows through [wrap];
   the ordinal counter is shared across every compile of the run. *)
let measure_with cfg bm wrap =
  let prog = W.Suites.program bm in
  let fctx = Features.make_ctx prog in
  let base = Policy.of_heuristic cfg.heuristic in
  let ordinal = ref 0 in
  let factory profile =
    let f = Features.with_profile fctx profile in
    {
      Policy.name = "dataset";
      decide =
        (fun s ->
          let v = base.Policy.decide s in
          let k = !ordinal in
          incr ordinal;
          wrap ~ordinal:k ~features:(fun () -> Features.of_site f s) v);
    }
  in
  let mcfg = Machine.config ~policy_factory:factory cfg.scenario cfg.heuristic in
  Core.Measure.of_measurement (Runner.measure ~iterations:cfg.iterations mcfg cfg.platform prog)

let enumerate cfg benches =
  List.map
    (fun bm ->
      let sites = Vec.create () in
      let _ =
        measure_with cfg bm (fun ~ordinal:_ ~features v ->
            Vec.push sites (features (), v.Policy.accept);
            v)
      in
      (bm.W.Suites.bname, Vec.to_array sites))
    benches

let sites_labeled = Metric.counter "policy.sites_labeled"
let label_flips = Metric.counter "policy.label_flips"

let generate ?resume ?on_benchmark cfg benches =
  let done_tbl : (string * int, example) Hashtbl.t = Hashtbl.create 256 in
  (match resume with
  | Some path when Sys.file_exists path ->
    let prior, _bad = load path in
    List.iter (fun e -> Hashtbl.replace done_tbl (e.x_bench, e.x_ordinal) e) prior
  | _ -> ());
  let append_oc =
    match resume with
    | Some path -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
    | None -> None
  in
  let out = Vec.create () in
  List.iter
    (fun bm ->
      let bname = bm.W.Suites.bname in
      let sites = Vec.create () in
      let base_times =
        measure_with cfg bm (fun ~ordinal:_ ~features v ->
            Vec.push sites (features (), v.Policy.accept);
            v)
      in
      let base_metric = metric cfg bm base_times in
      let n = Vec.length sites in
      let limit = if cfg.max_sites = 0 then n else min n cfg.max_sites in
      (match on_benchmark with Some f -> f bname limit | None -> ());
      for k = 0 to limit - 1 do
        let feats, base_accept = Vec.get sites k in
        match Hashtbl.find_opt done_tbl (bname, k) with
        | Some e -> Vec.push out e
        | None ->
          let flipped =
            Sandbox.protect ~max_retries:cfg.max_retries
              ~classify:Objective.transient_failure ~site:"policy.label" (fun () ->
                let t =
                  measure_with cfg bm (fun ~ordinal ~features:_ v ->
                      if ordinal = k then
                        { Policy.accept = not v.Policy.accept; rule = "oracle_flip" }
                      else v)
                in
                metric cfg bm t)
          in
          let label, benefit =
            match flipped with
            | Ok { Sandbox.value = fm; _ } ->
              let gain = (base_metric -. fm) /. Float.max base_metric 1.0 in
              if fm < base_metric then (not base_accept, gain) else (base_accept, gain)
            | Error _ ->
              (* The flipped configuration kept failing: keep the decision
                 the base system actually makes (it demonstrably runs). *)
              (base_accept, 0.0)
          in
          let e =
            {
              x_bench = bname;
              x_ordinal = k;
              x_features = feats;
              x_base = base_accept;
              x_label = label;
              x_benefit = benefit;
            }
          in
          Metric.incr sites_labeled;
          if label <> base_accept then Metric.incr label_flips;
          (match append_oc with
          | Some oc ->
            output_string oc (to_line e ^ "\n");
            flush oc
          | None -> ());
          Vec.push out e
      done;
      if Trace.enabled () then
        Trace.emit "policy.dataset"
          ~fields:
            [
              ("bench", Event.Str bname);
              ("sites", Event.Int n);
              ("labeled", Event.Int limit);
            ])
    benches;
  (match append_oc with Some oc -> close_out oc | None -> ());
  Array.to_list (Vec.to_array out)

(* Labeling is by far the most expensive step of the CART/GP protocols (one
   flip measurement per site); when [file] already holds a usable dataset,
   load it instead of recomputing.  An absent, empty, or fully corrupt file
   falls back to [generate ?resume:file], which also (re)populates it. *)
let load_or_generate ?file ?on_benchmark cfg benches =
  match file with
  | Some path when Sys.file_exists path -> (
    match load path with
    | [], _ -> generate ?resume:file ?on_benchmark cfg benches
    | examples, _ ->
      (* looked up at use, not module init: counters survive a registry
         reset (Metric.reset_all) between runs in one process *)
      Metric.incr (Metric.counter "policy.dataset_reused");
      examples)
  | _ -> generate ?resume:file ?on_benchmark cfg benches
