open Inltune_opt

(* Policy files.  Format, line-oriented:

     inltune-policy v1 threshold
     23 11 5 2048 135

     inltune-policy v1 tree
     split 0 22.5
     leaf inline
     leaf no-inline

   Threshold payloads go through Heuristic.of_array, so out-of-range values
   are clamped into the Table 1 ranges exactly like a GA genome would be;
   wrong arity or non-integers are an error.  Tree payloads go through
   Dtree.of_text's validation. *)

type t =
  | Threshold of Heuristic.t
  | Tree of Dtree.t

let kind_name = function Threshold _ -> "threshold" | Tree _ -> "tree"

let header kind = Printf.sprintf "inltune-policy v1 %s" kind

let to_string = function
  | Threshold h ->
    let genes = Heuristic.to_array h in
    header "threshold" ^ "\n"
    ^ String.concat " " (Array.to_list (Array.map string_of_int genes))
    ^ "\n"
  | Tree t -> header "tree" ^ "\n" ^ Dtree.to_text t

let of_string text =
  match String.index_opt text '\n' with
  | None -> Error "empty policy file (missing header)"
  | Some i -> (
    let first = String.trim (String.sub text 0 i) in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    match String.split_on_char ' ' first with
    | [ "inltune-policy"; "v1"; "threshold" ] -> (
      let words =
        List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim rest))
      in
      match
        let genes = List.map int_of_string_opt words in
        if List.exists (( = ) None) genes then None
        else Some (Array.of_list (List.filter_map Fun.id genes))
      with
      | None -> Error "threshold policy: parameters must be integers"
      | Some genes -> (
        match Heuristic.of_array genes with
        | h -> Ok (Threshold h)
        | exception Invalid_argument _ ->
          Error
            (Printf.sprintf "threshold policy: expected %d parameters, got %d"
               (Array.length Heuristic.param_names)
               (Array.length genes))))
    | [ "inltune-policy"; "v1"; "tree" ] -> (
      match Dtree.of_text ~dim:Features.dim rest with
      | Ok t -> Ok (Tree t)
      | Error e -> Error ("tree policy: " ^ e))
    | [ "inltune-policy"; v; _ ] when v <> "v1" ->
      Error (Printf.sprintf "unsupported policy version '%s'" v)
    | _ -> Error (Printf.sprintf "bad policy header '%s'" first))

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    of_string text
