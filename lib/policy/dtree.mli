(** Binary decision trees over feature vectors: the representation trained
    policies are stored and evaluated in. *)

type t =
  | Leaf of bool  (** inline? *)
  | Split of {
      feat : int;      (** feature index, [0 .. Features.dim) *)
      thresh : float;  (** go left when [x.(feat) <= thresh] *)
      le : t;
      gt : t;
    }

(** Evaluate the tree on a feature vector.  Raises [Invalid_argument] if the
    vector is shorter than a referenced feature index (cannot happen for
    trees accepted by {!of_text} with the right [dim]). *)
val decide : t -> float array -> bool

(** Number of nodes (leaves + splits). *)
val size : t -> int

(** Longest root-to-leaf path; a lone leaf has depth 1. *)
val depth : t -> int

(** Serialize in preorder, one node per line: ["leaf inline"],
    ["leaf no-inline"], or ["split <feat> <thresh>"].  Threshold floats
    round-trip exactly (["%.17g"]). *)
val to_text : t -> string

(** Parse {!to_text} output.  Validates shape like {!Inltune_opt.Heuristic}
    validates genomes: a malformed node line, a feature index outside
    [0 .. dim), a non-finite threshold, or trailing garbage is an [Error]
    with a one-line message — never an exception. *)
val of_text : dim:int -> string -> (t, string) result

(** Human-readable rendering with feature names, for reports. *)
val pretty : names:string array -> t -> string
