module Json = Inltune_obs.Json

(** Line-delimited JSON wire protocol for the tuning daemon: one request per
    line, one reply per line, strict pairing on a connection.  This module
    parses requests and renders replies; all policy (quotas, admission,
    degradation) lives in {!Server}. *)

(** Where the daemon listens / the client connects.  TCP binds loopback
    only — the daemon has no authentication story beyond tenant names. *)
type endpoint = Unix_path of string | Tcp of int

val endpoint_to_string : endpoint -> string

type op =
  | Ping   (** liveness; never queued, never quota'd *)
  | Stats  (** counters + mode snapshot; never queued *)
  | Measure of {
      m_bench : string;      (** benchmark name ({!Inltune_workloads.Suites.find}) *)
      m_scenario : string;   (** opt | adapt | ladder (default opt) *)
      m_platform : string;   (** x86 | ppc (default x86) *)
      m_heuristic : string;  (** parameter overrides, [""] = Jikes default *)
      m_iterations : int;    (** default 3 *)
    }
  | Tune of {
      t_scenario : string;   (** Tuner scenario name, e.g. "opt:tot" *)
      t_pop : int;           (** GA population (default 8) *)
      t_gens : int;          (** GA generations (default 3) *)
      t_seed : int;          (** GA seed (default 42) *)
      t_suite : string list; (** benchmark names; [[]] = full training suite *)
    }

type request = {
  id : string option;        (** idempotency key, deduplicated per tenant *)
  tenant : string;           (** quota / cache-attribution key (default "anon") *)
  deadline_ms : int option;  (** per-request deadline *)
  op : op;
}

val op_name : op -> string

(** Parse one request line.  A present-but-mistyped field is an error; a
    missing optional field takes its default. *)
val parse_request : string -> (request, string) result

(** Render a reply object as one compact JSON line (no trailing newline). *)
val render_reply : (string * Json.t) list -> string
