(** The tuning daemon.

    One process owns the worker-domain pool, the fitness cache, and the
    measurement memo; many clients multiplex measure/tune requests onto them
    over the {!Proto} line protocol, so tenants amortize each other's
    simulations.  The daemon degrades instead of failing: saturation
    produces explicit backpressure replies, a request that keeps failing
    quarantines its genome (never the server), sustained overload switches
    to cache-only answers and Jikes-default heuristics, and SIGTERM drains
    in-flight work before exiting.

    Counters: ["serve.requests"], ["serve.ok"], ["serve.errors"],
    ["serve.shed"], ["serve.quota_denied"], ["serve.timeouts"],
    ["serve.failed"], ["serve.quarantine_hits"],
    ["serve.genomes_quarantined"], ["serve.duplicates"],
    ["serve.degraded_replies"], ["serve.degraded_entered"],
    ["serve.degraded_exited"], ["serve.shutdown_replies"],
    ["serve.connections"]; histogram ["serve.latency_ms"].
    Fault site ["serve"]: [INLTUNE_FAULTS="serve:raise@K"] makes the daemon's
    K-th gate check abort that request attempt. *)

type config = {
  permits : int;             (** concurrently executing requests (>= 1) *)
  queue_cap : int;           (** admission queue bound; beyond it, shed *)
  quota_rate : float;        (** per-tenant requests/second; <= 0 = unlimited *)
  quota_burst : float;       (** per-tenant burst size *)
  default_deadline_ms : int; (** applied when a request carries none; 0 = none *)
  max_retries : int;         (** sandbox retries per request *)
  degrade_after : int;       (** pressure events in the window that trip degraded mode *)
  degrade_window_s : float;
  cooldown_s : float;        (** quiet time required to leave degraded mode *)
  drain_timeout_s : float;   (** SIGTERM drain bound *)
  reply_cache_cap : int;     (** idempotent-reply cache entries *)
  quiet : bool;              (** suppress stderr lifecycle notes *)
}

val default_config : config

(** A running daemon (accept loop + housekeeping on background threads). *)
type t

(** Bind the endpoint and start serving.  Installs the {!Inltune_core.Fitcache}
    tenant hook (cross-tenant hit accounting).  No signal handlers are
    installed — use {!run} for that, or call {!stop} yourself. *)
val start : ?config:config -> Proto.endpoint -> t

(** Initiate shutdown and drain: queued waiters get ["shutdown"] replies,
    in-flight work is cut short via its cancellation hooks, connections
    close, the listener and any Unix socket path are removed.  Idempotent. *)
val stop : t -> unit

(** Is the daemon currently in degraded (cache-only) mode? *)
val degraded_mode : t -> bool

(** Foreground entry point for the CLI: serve until SIGTERM/SIGINT, then
    drain and return. *)
val run : ?config:config -> Proto.endpoint -> unit
