(** Minimal blocking client for the daemon's line protocol. *)

type conn

(** Raises [Unix.Unix_error] if the endpoint does not accept. *)
val connect : Proto.endpoint -> conn

val close : conn -> unit

(** [request c line] sends one request line and waits up to [timeout_s]
    (default 60) for the reply line.  Errors are connection-level; protocol
    errors come back as normal replies with ["status":"error"]. *)
val request : ?timeout_s:float -> conn -> string -> (string, string) result

(** One-shot: connect, {!request}, close. *)
val rpc : ?timeout_s:float -> Proto.endpoint -> string -> (string, string) result
