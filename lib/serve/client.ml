(* Minimal blocking client for the daemon's line protocol: connect, send one
   JSON line, read one JSON line back.  Used by the CLI's [client]
   subcommands, the load-generator bench, and the tests — production clients
   in other languages just need a socket and a JSON library. *)

type conn = { fd : Unix.file_descr; mutable residue : string }

let connect endpoint =
  let fd, addr =
    match endpoint with
    | Proto.Unix_path path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Proto.Tcp port ->
      ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (Unix.inet_addr_loopback, port) )
  in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; residue = "" }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with 0 -> raise End_of_file | n -> go (off + n)
  in
  go 0

(* Read up to the next newline, honoring [timeout_s] across partial reads. *)
let read_line_within c ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt c.residue '\n' with
    | Some i ->
      let line = String.sub c.residue 0 i in
      c.residue <- String.sub c.residue (i + 1) (String.length c.residue - i - 1);
      Ok line
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then Error "timed out waiting for reply"
      else (
        match Unix.select [ c.fd ] [] [] (Float.min left 0.5) with
        | [], _, _ -> go ()
        | _ -> (
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "server closed the connection"
          | n ->
            c.residue <- c.residue ^ Bytes.sub_string chunk 0 n;
            go ()
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))
  in
  go ()

let request ?(timeout_s = 60.0) c line =
  match send_all c.fd (line ^ "\n") with
  | () -> read_line_within c ~timeout_s
  | exception End_of_file -> Error "server closed the connection"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let rpc ?timeout_s endpoint line =
  match connect endpoint with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "connect %s: %s" (Proto.endpoint_to_string endpoint)
             (Unix.error_message e))
  | c -> Fun.protect ~finally:(fun () -> close c) (fun () -> request ?timeout_s c line)
