(* Per-tenant token buckets.

   Classic leaky-bucket quota: each tenant accumulates [rate] tokens per
   second up to [burst]; a request costs one token.  A denied take reports
   how long until enough tokens will have accumulated, which becomes the
   reply's retry_after_ms — clients get an honest schedule instead of a bare
   rejection.  Time is passed in by the caller (the pool's monotonic clock in
   production, a hand-cranked clock in tests), so refill is deterministic
   under test. *)

type tenant_state = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;   (* tokens per second; <= 0 means unlimited *)
  burst : float;  (* bucket capacity, >= 1 *)
  mu : Mutex.t;
  tenants : (string, tenant_state) Hashtbl.t;
}

let create ~rate ~burst =
  { rate; burst = Float.max 1.0 burst; mu = Mutex.create (); tenants = Hashtbl.create 16 }

let unlimited = create ~rate:0.0 ~burst:1.0

let take t ~now ?(cost = 1.0) tenant =
  if t.rate <= 0.0 then Ok ()
  else begin
    Mutex.lock t.mu;
    let st =
      match Hashtbl.find_opt t.tenants tenant with
      | Some st -> st
      | None ->
        (* New tenants start full: a first-ever request is never throttled. *)
        let st = { tokens = t.burst; last = now } in
        Hashtbl.add t.tenants tenant st;
        st
    in
    (* Refill monotonically; a caller-supplied clock that steps backwards
       (tests reusing a bucket) must not mint negative tokens. *)
    let dt = Float.max 0.0 (now -. st.last) in
    st.tokens <- Float.min t.burst (st.tokens +. (dt *. t.rate));
    st.last <- now;
    let r =
      if st.tokens >= cost then begin
        st.tokens <- st.tokens -. cost;
        Ok ()
      end
      else Error ((cost -. st.tokens) /. t.rate)
    in
    Mutex.unlock t.mu;
    r
  end

let tenant_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tenants in
  Mutex.unlock t.mu;
  n
