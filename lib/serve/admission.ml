(* Bounded admission with explicit backpressure.

   [permits] requests execute concurrently; up to [queue_cap] more may wait.
   Anything beyond that is shed *immediately* with [Overloaded] — the whole
   point of the bound is that an overloaded daemon answers "try later" in
   microseconds instead of accepting work it cannot finish, so clients can
   back off instead of timing out blind.

   Waiting is deadline-aware but OCaml's [Condition] has no timed wait, so
   deadlines are cooperative: the daemon's housekeeping thread calls {!kick}
   periodically, waking every waiter to re-check its deadline.  Deadline
   resolution is therefore the kick interval (~100ms), which is far below
   any useful request deadline. *)

module Pool = Inltune_support.Pool

type outcome = Admitted | Overloaded | Timed_out | Stopping

type t = {
  mu : Mutex.t;
  cv : Condition.t;
  permits : int;
  queue_cap : int;
  mutable available : int;
  mutable waiting : int;
  mutable stopping : bool;
}

let create ~permits ~queue_cap =
  let permits = max 1 permits in
  {
    mu = Mutex.create ();
    cv = Condition.create ();
    permits;
    queue_cap = max 0 queue_cap;
    available = permits;
    waiting = 0;
    stopping = false;
  }

let acquire ?deadline t =
  let now () = Pool.now () in
  let past_deadline () =
    match deadline with None -> false | Some d -> now () > d
  in
  Mutex.lock t.mu;
  let r =
    if t.stopping then Stopping
    else if t.available > 0 then begin
      t.available <- t.available - 1;
      Admitted
    end
    else if t.waiting >= t.queue_cap then Overloaded
    else if past_deadline () then Timed_out
    else begin
      t.waiting <- t.waiting + 1;
      let rec wait () =
        if t.stopping then Stopping
        else if t.available > 0 then begin
          t.available <- t.available - 1;
          Admitted
        end
        else if past_deadline () then Timed_out
        else begin
          Condition.wait t.cv t.mu;
          wait ()
        end
      in
      let r = wait () in
      t.waiting <- t.waiting - 1;
      r
    end
  in
  Mutex.unlock t.mu;
  r

let release t =
  Mutex.lock t.mu;
  if t.available < t.permits then t.available <- t.available + 1;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let kick t =
  Mutex.lock t.mu;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let stop t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let in_flight t =
  Mutex.lock t.mu;
  let n = t.permits - t.available in
  Mutex.unlock t.mu;
  n

let waiting t =
  Mutex.lock t.mu;
  let n = t.waiting in
  Mutex.unlock t.mu;
  n
