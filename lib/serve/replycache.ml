module Json = Inltune_obs.Json

(* Idempotency: a bounded FIFO of (tenant:id → reply fields).

   A client that times out and retries with the same id must get the
   original answer back, not a second execution — a tune request re-run with
   the same seed is merely wasteful, but a retried request that was actually
   admitted the first time would double-charge the tenant's quota and
   double-occupy the pool.  Only terminal replies are cached (the server
   decides which); the cache is a FIFO, not an LRU, because ids are
   typically retried promptly or never. *)

type t = {
  cap : int;
  mu : Mutex.t;
  order : string Queue.t;
  entries : (string, (string * Json.t) list) Hashtbl.t;
}

let create ~cap =
  {
    cap = max 1 cap;
    mu = Mutex.create ();
    order = Queue.create ();
    entries = Hashtbl.create 64;
  }

let find t key =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.entries key in
  Mutex.unlock t.mu;
  r

let store t key fields =
  Mutex.lock t.mu;
  if not (Hashtbl.mem t.entries key) then begin
    while Queue.length t.order >= t.cap do
      Hashtbl.remove t.entries (Queue.pop t.order)
    done;
    Queue.push key t.order;
    Hashtbl.add t.entries key fields
  end;
  Mutex.unlock t.mu

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.entries in
  Mutex.unlock t.mu;
  n
