module Pool = Inltune_support.Pool
module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event
module Json = Inltune_obs.Json
module Sandbox = Inltune_resilience.Sandbox
module Faultinject = Inltune_resilience.Faultinject
module Machine = Inltune_vm.Machine
module Platform = Inltune_vm.Platform
module Heuristic = Inltune_opt.Heuristic
module Plan = Inltune_opt.Plan
module Suites = Inltune_workloads.Suites
module Corpus = Inltune_workloads.Corpus
module Measure = Inltune_core.Measure
module Tuner = Inltune_core.Tuner
module Params = Inltune_core.Params
module Fitcache = Inltune_core.Fitcache

(* The tuning daemon.


   One process owns the worker-domain pool, the fitness cache, and the
   measurement memo; many clients multiplex compile/tune/measure requests
   onto them over a line-delimited JSON protocol, so tenants amortize each
   other's simulations instead of each paying for a cold cache.  The design
   priority is that the daemon *degrades* instead of failing: saturation
   produces explicit backpressure replies, poisoned requests quarantine the
   genome but never the server, sustained overload switches to cache-only
   answers, and SIGTERM drains in-flight work before exiting.

   Threading: the accept loop and each connection run on systhreads in the
   main domain (they spend their time blocked in [select]/simulations);
   simulations themselves are multiplexed onto the shared worker-domain
   pool.  Requests on one connection are processed strictly in order —
   concurrency comes from concurrent connections, which matches the
   one-outstanding-request-per-client protocol. *)

let bump name = Metric.incr (Metric.counter name)

(* --- tenant attribution -------------------------------------------------- *)

(* [Fitcache]'s tenant hook is ambient (the cache is consulted deep inside
   [Measure.run], far from any request context), so the daemon keys the
   current tenant by (domain, thread): connection threads register
   themselves for the duration of a request, and work items submitted to
   the pool re-register inside the worker.  Each pool worker is a single
   thread in its own domain and runs one item at a time, so entries never
   race; stale entries are overwritten by the next item. *)
let tenant_mu = Mutex.create ()
let tenant_tbl : (int * int, string) Hashtbl.t = Hashtbl.create 32

let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current_tenant () =
  Mutex.lock tenant_mu;
  let r = Hashtbl.find_opt tenant_tbl (self_key ()) in
  Mutex.unlock tenant_mu;
  r

let with_tenant tenant f =
  let k = self_key () in
  Mutex.lock tenant_mu;
  Hashtbl.replace tenant_tbl k tenant;
  Mutex.unlock tenant_mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock tenant_mu;
      Hashtbl.remove tenant_tbl k;
      Mutex.unlock tenant_mu)
    f

(* --- configuration ------------------------------------------------------- *)

type config = {
  permits : int;
  queue_cap : int;
  quota_rate : float;
  quota_burst : float;
  default_deadline_ms : int;
  max_retries : int;
  degrade_after : int;
  degrade_window_s : float;
  cooldown_s : float;
  drain_timeout_s : float;
  reply_cache_cap : int;
  quiet : bool;
}

let default_config =
  {
    permits = 4;
    queue_cap = 8;
    quota_rate = 0.0;
    quota_burst = 10.0;
    default_deadline_ms = 0;
    max_retries = 1;
    degrade_after = 5;
    degrade_window_s = 10.0;
    cooldown_s = 5.0;
    drain_timeout_s = 10.0;
    reply_cache_cap = 512;
    quiet = false;
  }

type t = {
  cfg : config;
  endpoint : Proto.endpoint;
  listen_fd : Unix.file_descr;
  adm : Admission.t;
  bucket : Bucket.t;
  replies : Replycache.t;
  stop_flag : bool Atomic.t;
  degraded : bool Atomic.t;
  press_mu : Mutex.t;
  mutable pressure : float list;  (* recent pressure-event timestamps *)
  mutable last_pressure : float;
  quar_mu : Mutex.t;
  quarantined : (string, string) Hashtbl.t;  (* genome key -> reason *)
  conns : int Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable housekeeper : Thread.t option;
}

(* Raised inside request execution when its deadline passed or the daemon is
   draining; the sandbox must let it escape (it is not a transient fault). *)
exception Cancelled_request of string  (* "timeout" | "shutdown" *)

let log srv fmt =
  Printf.ksprintf
    (fun s -> if not srv.cfg.quiet then Printf.eprintf "inltune serve: %s\n%!" s)
    fmt

(* --- degraded mode ------------------------------------------------------- *)

(* Pressure events are sheds and request failures.  Enough of them inside
   the window flips the daemon to degraded (cache-only answers, default
   heuristics); a full cooldown with no pressure flips it back.  The
   hysteresis keeps the mode from flapping per-request. *)
let note_pressure srv =
  let now = Pool.now () in
  Mutex.lock srv.press_mu;
  srv.last_pressure <- now;
  srv.pressure <-
    now :: List.filter (fun ts -> now -. ts <= srv.cfg.degrade_window_s) srv.pressure;
  let n = List.length srv.pressure in
  Mutex.unlock srv.press_mu;
  if n >= srv.cfg.degrade_after && Atomic.compare_and_set srv.degraded false true
  then begin
    bump "serve.degraded_entered";
    if Trace.enabled () then
      Trace.emit "serve.degraded" ~fields:[ ("pressure_events", Event.Int n) ];
    log srv "entering degraded mode (%d pressure events in %.0fs)" n
      srv.cfg.degrade_window_s
  end

let maybe_recover srv =
  if Atomic.get srv.degraded then begin
    Mutex.lock srv.press_mu;
    let quiet_for = Pool.now () -. srv.last_pressure in
    Mutex.unlock srv.press_mu;
    if quiet_for >= srv.cfg.cooldown_s
       && Atomic.compare_and_set srv.degraded true false
    then begin
      bump "serve.degraded_exited";
      log srv "recovered from degraded mode (%.1fs without pressure)" quiet_for
    end
  end

(* --- quarantine ---------------------------------------------------------- *)

(* A request whose execution kept failing poisons its *genome*, not the
   server: the exact (op, parameters) key is remembered and refused until
   restart, so one crashing heuristic cannot grind the daemon down through
   client retries. *)
let genome_key = function
  | Proto.Measure m ->
    Printf.sprintf "measure/%s/%s/%s/%d/%s" m.m_bench m.m_scenario m.m_platform
      m.m_iterations m.m_heuristic
  | Proto.Tune u ->
    Printf.sprintf "tune/%s/%d/%d/%d/%s" u.t_scenario u.t_pop u.t_gens u.t_seed
      (String.concat "," u.t_suite)
  | Proto.Ping | Proto.Stats -> ""

let quarantine_reason srv gk =
  if gk = "" then None
  else begin
    Mutex.lock srv.quar_mu;
    let r = Hashtbl.find_opt srv.quarantined gk in
    Mutex.unlock srv.quar_mu;
    r
  end

let add_quarantine srv gk reason =
  if gk <> "" then begin
    Mutex.lock srv.quar_mu;
    if not (Hashtbl.mem srv.quarantined gk) then begin
      Hashtbl.add srv.quarantined gk reason;
      bump "serve.genomes_quarantined"
    end;
    Mutex.unlock srv.quar_mu
  end

(* --- request validation -------------------------------------------------- *)

(* Benchmark names resolve against the hand-modeled suites first, then the
   generated corpus, so tenants can measure/tune over corpus programs too. *)
let find_bench name =
  match Corpus.find_opt name with Some bm -> bm | None -> Suites.find name

type jmeasure = {
  jm_bench : Suites.benchmark;
  jm_scenario : Machine.scenario;
  jm_platform : Platform.t;
  jm_heuristic : Heuristic.t;
  jm_iterations : int;
}

type jtune = {
  jt_id : Tuner.scenario_id;
  jt_budget : Tuner.budget;
  jt_suite : Suites.benchmark list;
}

type job = Jmeasure of jmeasure | Jtune of jtune

let validate = function
  | Proto.Ping | Proto.Stats -> assert false (* handled before validation *)
  | Proto.Measure m -> (
    match
      let scenario =
        match m.m_scenario with
        | "opt" -> Machine.Opt
        | "adapt" -> Machine.Adapt
        | "ladder" -> Machine.Ladder
        | s -> invalid_arg ("unknown scenario " ^ s)
      in
      let platform = Platform.by_name m.m_platform in
      let heuristic = Params.heuristic_of_string m.m_heuristic in
      let bench = find_bench m.m_bench in
      Jmeasure
        {
          jm_bench = bench;
          jm_scenario = scenario;
          jm_platform = platform;
          jm_heuristic = heuristic;
          jm_iterations = max 1 m.m_iterations;
        }
    with
    | job -> Ok job
    | exception Invalid_argument msg -> Error msg
    | exception Failure msg -> Error msg)
  | Proto.Tune u -> (
    match
      let id = Tuner.scenario_of_string u.t_scenario in
      let suite =
        match u.t_suite with [] -> Suites.spec | names -> List.map find_bench names
      in
      Jtune
        {
          jt_id = id;
          jt_budget =
            { Tuner.pop = max 2 u.t_pop; gens = max 1 u.t_gens; seed = u.t_seed };
          jt_suite = suite;
        }
    with
    | job -> Ok job
    | exception Invalid_argument msg -> Error msg)

(* --- execution ----------------------------------------------------------- *)

(* Deterministic fault hook, mirroring [Objective]'s evaluation gate: arm
   with INLTUNE_FAULTS="serve:ACTION@K".  [Raise] and [Hang] abort the
   attempt (the sandbox retries); [Corrupt] makes the result NaN, which the
   sandbox's corrupt check rejects. *)
let fault_gate () =
  match Faultinject.check "serve" with
  | None -> false
  | Some Faultinject.Raise -> raise (Faultinject.Injected "serve")
  | Some Faultinject.Hang -> raise Machine.Out_of_fuel
  | Some Faultinject.Corrupt -> true

type job_result = Rmeasure of Measure.times | Rtune of Tuner.outcome

let result_corrupt = function
  | Rmeasure tm when Float.is_nan tm.Measure.running -> Some "corrupt measurement (NaN)"
  | Rtune oc when Float.is_nan oc.Tuner.fitness -> Some "corrupt fitness (NaN)"
  | _ -> None

let past_deadline deadline =
  match deadline with None -> false | Some d -> Pool.now () > d

let run_measure srv ~tenant ~deadline m =
  let corrupt = fault_gate () in
  (* The simulation is multiplexed onto the shared worker-domain pool:
     [priority] so interactive requests overtake bulk tuning batches, and
     the [cancelled] hook so an item still queued when its deadline passes
     (or the daemon starts draining) never simulates at all. *)
  let work () =
    with_tenant tenant (fun () ->
        Measure.run ~iterations:m.jm_iterations ~scenario:m.jm_scenario
          ~platform:m.jm_platform ~heuristic:m.jm_heuristic m.jm_bench)
  in
  let cancelled () = Atomic.get srv.stop_flag || past_deadline deadline in
  let task =
    Pool.submit (Pool.get_default ()) ~priority:true ~cancelled
      (fun () -> work ())
      [| () |]
  in
  match (Pool.await task).(0) with
  | Ok tm -> if corrupt then { tm with Measure.running = Float.nan } else tm
  | Error Pool.Cancelled ->
    raise
      (Cancelled_request (if Atomic.get srv.stop_flag then "shutdown" else "timeout"))
  | Error e -> raise e

let run_tune srv ~tenant ~deadline u =
  let corrupt = fault_gate () in
  (* Cooperative cancellation at generation granularity: the GA loop itself
     is untouched (its results must stay bit-identical to the offline tune
     path), the hook just refuses to continue past a dead deadline. *)
  let on_generation (_ : Inltune_ga.Evolve.progress) =
    if Atomic.get srv.stop_flag then raise (Cancelled_request "shutdown");
    if past_deadline deadline then raise (Cancelled_request "timeout")
  in
  with_tenant tenant (fun () ->
      let oc =
        Tuner.tune ~budget:u.jt_budget ~on_generation ~suite:u.jt_suite
          ~max_retries:srv.cfg.max_retries u.jt_id
      in
      if corrupt then { oc with Tuner.fitness = Float.nan } else oc)

let heuristic_json h =
  Json.List
    (Array.to_list (Array.map (fun v -> Json.Num (float_of_int v)) (Heuristic.to_array h)))

let measure_fields ?(status = "ok") ?(source = "simulated") (tm : Measure.times) =
  [
    ("status", Json.Str status);
    ("source", Json.Str source);
    ("running_cycles", Json.Num tm.Measure.running);
    ("total_cycles", Json.Num tm.Measure.total);
    ("compile_cycles", Json.Num tm.Measure.compile);
  ]

let tune_fields (oc : Tuner.outcome) =
  [
    ("status", Json.Str "ok");
    ("scenario", Json.Str oc.Tuner.spec.Tuner.label);
    ("genome", heuristic_json oc.Tuner.heuristic);
    ("heuristic", Json.Str (Heuristic.to_string oc.Tuner.heuristic));
    ("fitness", Json.Num oc.Tuner.fitness);
  ]
  @
  match oc.Tuner.degraded with
  | Some why -> [ ("search_degraded", Json.Str why) ]
  | None -> []

let result_fields = function
  | Rmeasure tm -> measure_fields tm
  | Rtune oc -> tune_fields oc

(* Degraded execution: never simulate.  A measure whose decision signature
   is already cached is answered bit-identically from the cache (the
   [Measure.run] call below finds it without simulating); anything else
   falls back to the memoized Jikes-default measurement / default
   heuristic, clearly labelled so clients know what they got. *)
let execute_degraded ~tenant job =
  bump "serve.degraded_replies";
  with_tenant tenant (fun () ->
      match job with
      | Jmeasure m ->
        if
          Fitcache.mem ~scenario:m.jm_scenario ~platform:m.jm_platform
            ~heuristic:m.jm_heuristic ~inline_enabled:true ~plan:Plan.default
            ~iterations:m.jm_iterations
            (Suites.program m.jm_bench)
        then
          measure_fields ~status:"degraded" ~source:"cache"
            (Measure.run ~iterations:m.jm_iterations ~scenario:m.jm_scenario
               ~platform:m.jm_platform ~heuristic:m.jm_heuristic m.jm_bench)
        else
          measure_fields ~status:"degraded" ~source:"default-heuristic"
            (Measure.run_default ~iterations:m.jm_iterations ~scenario:m.jm_scenario
               ~platform:m.jm_platform m.jm_bench)
      | Jtune _ ->
        [
          ("status", Json.Str "degraded");
          ("genome", heuristic_json Heuristic.default);
          ("heuristic", Json.Str (Heuristic.to_string Heuristic.default));
          ("fitness", Json.Num 1.0);
          ("fallback", Json.Str "default-heuristic");
        ])

let execute srv ~tenant ~deadline ~gk job =
  let classify = function Cancelled_request _ -> false | _ -> true in
  let f () =
    match job with
    | Jmeasure m -> Rmeasure (run_measure srv ~tenant ~deadline m)
    | Jtune u -> Rtune (run_tune srv ~tenant ~deadline u)
  in
  match
    Sandbox.run ~max_retries:srv.cfg.max_retries ~classify ~corrupt:result_corrupt
      ~site:"serve.request" f
  with
  | Ok o ->
    if past_deadline deadline then begin
      (* The work finished, but nobody is waiting for a stale answer; the
         result still landed in the caches, so a retry is nearly free. *)
      bump "serve.timeouts";
      ([ ("status", Json.Str "timeout"); ("note", Json.Str "completed after deadline") ], false)
    end
    else begin
      bump "serve.ok";
      (result_fields o.Sandbox.result @ [ ("attempts", Json.Num (float_of_int o.Sandbox.o_attempts)) ], true)
    end
  | Error fl ->
    bump "serve.failed";
    note_pressure srv;
    add_quarantine srv gk fl.Sandbox.f_reason;
    ( [
        ("status", Json.Str "failed");
        ("reason", Json.Str fl.Sandbox.f_reason);
        ("attempts", Json.Num (float_of_int fl.Sandbox.f_attempts));
        ("quarantined", Json.Bool true);
      ],
      true )
  | exception Cancelled_request "shutdown" ->
    bump "serve.shutdown_replies";
    ([ ("status", Json.Str "shutdown") ], false)
  | exception Cancelled_request _ ->
    bump "serve.timeouts";
    ([ ("status", Json.Str "timeout") ], false)

(* --- stats --------------------------------------------------------------- *)

let stats_fields srv =
  let interesting (name, _) =
    List.exists
      (fun pfx -> String.length name >= String.length pfx
                  && String.sub name 0 (String.length pfx) = pfx)
      [ "serve."; "fitness."; "pool."; "measure." ]
  in
  let counters =
    Metric.counters_snapshot () |> List.filter interesting
    |> List.map (fun (n, v) -> (n, Json.Num (float_of_int v)))
  in
  [
    ("status", Json.Str "ok");
    ("in_flight", Json.Num (float_of_int (Admission.in_flight srv.adm)));
    ("queued", Json.Num (float_of_int (Admission.waiting srv.adm)));
    ("connections", Json.Num (float_of_int (Atomic.get srv.conns)));
    ("tenants", Json.Num (float_of_int (Bucket.tenant_count srv.bucket)));
    ("fitcache_entries", Json.Num (float_of_int (Fitcache.size ())));
    ("counters", Json.Obj counters);
  ]

(* --- the request pipeline ------------------------------------------------ *)

let retry_after_ms wait_s =
  ("retry_after_ms", Json.Num (Float.of_int (int_of_float (Float.ceil (wait_s *. 1000.)))))

let dispatch srv (req : Proto.request) =
  let idf = match req.id with Some i -> [ ("id", Json.Str i) ] | None -> [] in
  match req.op with
  | Proto.Ping -> (idf @ [ ("status", Json.Str "ok"); ("pong", Json.Bool true) ], false)
  | Proto.Stats -> (idf @ stats_fields srv, false)
  | (Proto.Measure _ | Proto.Tune _) as op -> (
    let now0 = Pool.now () in
    let deadline =
      match (req.deadline_ms, srv.cfg.default_deadline_ms) with
      | Some ms, _ -> Some (now0 +. (float_of_int ms /. 1000.))
      | None, d when d > 0 -> Some (now0 +. (float_of_int d /. 1000.))
      | None, _ -> None
    in
    match Bucket.take srv.bucket ~now:now0 req.tenant with
    | Error wait ->
      bump "serve.quota_denied";
      (idf @ [ ("status", Json.Str "quota"); retry_after_ms wait ], false)
    | Ok () -> (
      let gk = genome_key op in
      match quarantine_reason srv gk with
      | Some reason ->
        bump "serve.quarantine_hits";
        ( idf
          @ [
              ("status", Json.Str "quarantined");
              ("reason", Json.Str reason);
            ],
          false )
      | None -> (
        match validate op with
        | Error e ->
          bump "serve.errors";
          (idf @ [ ("status", Json.Str "error"); ("error", Json.Str e) ], true)
        | Ok job ->
          if Atomic.get srv.degraded then (idf @ execute_degraded ~tenant:req.tenant job, true)
          else begin
            match Admission.acquire ?deadline srv.adm with
            | Admission.Overloaded ->
              bump "serve.shed";
              note_pressure srv;
              (* Honest hint: the queue is full of simulations; suggest a
                 beat proportional to what's in front of the client. *)
              let hint = 0.25 *. float_of_int (1 + Admission.waiting srv.adm) in
              ( idf @ [ ("status", Json.Str "overloaded"); retry_after_ms hint ],
                false )
            | Admission.Timed_out ->
              bump "serve.timeouts";
              (idf @ [ ("status", Json.Str "timeout") ], false)
            | Admission.Stopping ->
              bump "serve.shutdown_replies";
              (idf @ [ ("status", Json.Str "shutdown") ], false)
            | Admission.Admitted ->
              Fun.protect
                ~finally:(fun () -> Admission.release srv.adm)
                (fun () ->
                  let fields, cacheable =
                    execute srv ~tenant:req.tenant ~deadline ~gk job
                  in
                  (idf @ fields, cacheable))
          end)))

let status_of fields =
  match List.assoc_opt "status" fields with Some (Json.Str s) -> s | _ -> "?"

let handle_line srv line =
  bump "serve.requests";
  let t0 = Pool.now () in
  let fields =
    match Proto.parse_request line with
    | Error e ->
      bump "serve.errors";
      [ ("status", Json.Str "error"); ("error", Json.Str e) ]
    | Ok req -> (
      let dedup_key = Option.map (fun id -> req.tenant ^ ":" ^ id) req.id in
      match Option.bind dedup_key (Replycache.find srv.replies) with
      | Some cached ->
        bump "serve.duplicates";
        cached @ [ ("duplicate", Json.Bool true) ]
      | None ->
        let fields, cacheable = dispatch srv req in
        (match dedup_key with
        | Some k when cacheable -> Replycache.store srv.replies k fields
        | _ -> ());
        fields)
  in
  let ms = (Pool.now () -. t0) *. 1000. in
  Metric.observe (Metric.histogram "serve.latency_ms") ms;
  if Trace.enabled () then
    Trace.emit "serve.request"
      ~fields:
        [
          ("status", Event.Str (status_of fields));
          ("ms", Event.Float ms);
          ("degraded", Event.Bool (Atomic.get srv.degraded));
        ];
  let mode = if Atomic.get srv.degraded then "degraded" else "normal" in
  Proto.render_reply (fields @ [ ("mode", Json.Str mode) ])

(* --- connection handling ------------------------------------------------- *)

let send_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let conn_loop srv fd =
  Atomic.incr srv.conns;
  bump "serve.connections";
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let process_buffered () =
    let rec go () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
        if String.trim line <> "" then send_line fd (handle_line srv line);
        go ()
    in
    go ()
  in
  let rec loop () =
    if not (Atomic.get srv.stop_flag) then begin
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> () (* client closed *)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          process_buffered ();
          loop ()
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Atomic.decr srv.conns)
    loop

let accept_loop srv =
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ srv.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept srv.listen_fd with
      | fd, _ -> ignore (Thread.create (fun () -> conn_loop srv fd) ())
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done

(* Periodic duties that cannot ride on request traffic: waking queued
   waiters so their deadlines are honored even when nothing completes, and
   leaving degraded mode after a quiet cooldown. *)
let housekeeping srv =
  while not (Atomic.get srv.stop_flag) do
    Thread.delay 0.1;
    Admission.kick srv.adm;
    maybe_recover srv
  done

(* --- lifecycle ----------------------------------------------------------- *)

let bind_endpoint = function
  | Proto.Unix_path path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Proto.Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    fd

let start ?(config = default_config) endpoint =
  Fitcache.set_tenant_hook current_tenant;
  let listen_fd = bind_endpoint endpoint in
  let srv =
    {
      cfg = config;
      endpoint;
      listen_fd;
      adm = Admission.create ~permits:config.permits ~queue_cap:config.queue_cap;
      bucket = Bucket.create ~rate:config.quota_rate ~burst:config.quota_burst;
      replies = Replycache.create ~cap:config.reply_cache_cap;
      stop_flag = Atomic.make false;
      degraded = Atomic.make false;
      press_mu = Mutex.create ();
      pressure = [];
      last_pressure = 0.0;
      quar_mu = Mutex.create ();
      quarantined = Hashtbl.create 16;
      conns = Atomic.make 0;
      accept_thread = None;
      housekeeper = None;
    }
  in
  srv.accept_thread <- Some (Thread.create accept_loop srv);
  srv.housekeeper <- Some (Thread.create housekeeping srv);
  srv

let stop srv =
  if not (Atomic.exchange srv.stop_flag true) then begin
    Admission.stop srv.adm;
    Option.iter Thread.join srv.accept_thread;
    Option.iter Thread.join srv.housekeeper;
    (* Drain: connection threads notice the flag within one select tick,
       finish the request they are on (cancellation hooks turn long tunes
       into prompt "shutdown" replies), and close. *)
    let drain_deadline = Pool.now () +. srv.cfg.drain_timeout_s in
    while Atomic.get srv.conns > 0 && Pool.now () < drain_deadline do
      Thread.delay 0.05
    done;
    if Atomic.get srv.conns > 0 then
      log srv "drain timeout with %d connection(s) still open" (Atomic.get srv.conns);
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    match srv.endpoint with
    | Proto.Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
    | Proto.Tcp _ -> ()
  end

let degraded_mode srv = Atomic.get srv.degraded

(* Foreground entry point for the CLI: serve until SIGTERM/SIGINT, then
   drain and return.  Signals only set a flag — all real work happens on
   the calling thread, where it is safe. *)
let run ?config endpoint =
  let stop_requested = Atomic.make false in
  let note _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle note);
  Sys.set_signal Sys.sigint (Sys.Signal_handle note);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let srv = start ?config endpoint in
  log srv "listening on %s (permits=%d queue=%d)" (Proto.endpoint_to_string endpoint)
    srv.cfg.permits srv.cfg.queue_cap;
  while not (Atomic.get stop_requested) do
    Thread.delay 0.1
  done;
  log srv "signal received, draining";
  stop srv;
  log srv "bye"
