(** Bounded admission with explicit backpressure.

    [permits] requests execute concurrently; up to [queue_cap] more wait;
    anything beyond is shed immediately with [Overloaded] so an overloaded
    daemon answers "try later" in microseconds instead of accepting work it
    cannot finish. *)

type outcome =
  | Admitted    (** holder must {!release} *)
  | Overloaded  (** queue full — shed, retry later *)
  | Timed_out   (** deadline passed while queued *)
  | Stopping    (** daemon is draining *)

type t

(** [permits] is clamped to [>= 1]; [queue_cap] to [>= 0]
    ([queue_cap = 0] sheds the instant all permits are busy). *)
val create : permits:int -> queue_cap:int -> t

(** Deadline checks while queued are cooperative: waiters re-check when
    {!release}d or {!kick}ed, so resolution is the daemon's housekeeping
    interval. *)
val acquire : ?deadline:float -> t -> outcome

val release : t -> unit

(** Wake every queued waiter to re-check its deadline (housekeeping tick). *)
val kick : t -> unit

(** Fail all queued waiters with [Stopping] and make every future
    {!acquire} return [Stopping].  Irreversible. *)
val stop : t -> unit

val in_flight : t -> int
val waiting : t -> int
