module Json = Inltune_obs.Json

(* Line-delimited JSON wire protocol for the tuning daemon.

   One request per line, one reply per line, strict request/reply pairing on
   a connection.  Requests carry an optional client-chosen [id] (for
   idempotent retry: the daemon replays the original reply for a repeated
   [tenant:id]), the tenant name quotas and cache attribution are keyed by,
   an optional per-request deadline, and the operation.  Replies are flat
   JSON objects whose ["status"] field is the machine-readable outcome; this
   module only parses requests and renders replies — all policy lives in
   [Server]. *)

type endpoint = Unix_path of string | Tcp of int

let endpoint_to_string = function
  | Unix_path p -> p
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

type op =
  | Ping
  | Stats
  | Measure of {
      m_bench : string;
      m_scenario : string;   (* opt | adapt | ladder *)
      m_platform : string;   (* x86 | ppc *)
      m_heuristic : string;  (* parameter overrides, "" = Jikes default *)
      m_iterations : int;
    }
  | Tune of {
      t_scenario : string;   (* Tuner scenario name, e.g. "opt:tot" *)
      t_pop : int;
      t_gens : int;
      t_seed : int;
      t_suite : string list; (* benchmark names; [] = full training suite *)
    }

type request = {
  id : string option;
  tenant : string;
  deadline_ms : int option;
  op : op;
}

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Measure _ -> "measure"
  | Tune _ -> "tune"

(* Accessors with defaults; a present-but-mistyped field is an error, a
   missing optional field takes its default. *)
let str_field ?default j name =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_string v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S must be a string" name))

let int_field ~default j name =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let str_list_field j name =
  match Json.member name j with
  | None -> Ok []
  | Some (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "field %S must be a list of strings" name)

let ( let* ) = Result.bind

let parse_op j =
  let* op = str_field j "op" ?default:None in
  match op with
  | None -> Error "missing \"op\""
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "measure" ->
    let* bench = str_field j "bench" ?default:None in
    let* m_scenario = str_field j "scenario" ~default:"opt" in
    let* m_platform = str_field j "platform" ~default:"x86" in
    let* m_heuristic = str_field j "heuristic" ~default:"" in
    let* m_iterations = int_field j "iterations" ~default:3 in
    (match bench with
    | None -> Error "measure: missing \"bench\""
    | Some m_bench ->
      Ok
        (Measure
           {
             m_bench;
             m_scenario = Option.get m_scenario;
             m_platform = Option.get m_platform;
             m_heuristic = Option.get m_heuristic;
             m_iterations;
           }))
  | Some "tune" ->
    let* scen = str_field j "scenario" ~default:"opt:tot" in
    let* t_pop = int_field j "pop" ~default:8 in
    let* t_gens = int_field j "gens" ~default:3 in
    let* t_seed = int_field j "seed" ~default:42 in
    let* t_suite = str_list_field j "suite" in
    Ok (Tune { t_scenario = Option.get scen; t_pop; t_gens; t_seed; t_suite })
  | Some other -> Error (Printf.sprintf "unknown op %S" other)

let parse_request line =
  match Json.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j ->
    let* id = str_field j "id" ?default:None in
    let* tenant = str_field j "tenant" ~default:"anon" in
    let* deadline_ms =
      match Json.member "deadline_ms" j with
      | None -> Ok None
      | Some v -> (
        match Json.to_int v with
        | Some i when i > 0 -> Ok (Some i)
        | _ -> Error "field \"deadline_ms\" must be a positive integer")
    in
    let* op = parse_op j in
    Ok { id; tenant = Option.get tenant; deadline_ms; op }

(* Replies are rendered from field lists so the reply cache can re-render a
   cached reply with extra fields (e.g. "duplicate":true) appended. *)
let render_reply fields = Json.encode (Json.Obj fields)
