module Json = Inltune_obs.Json

(** Idempotency: a bounded FIFO of (tenant:id → reply fields), so a client
    retrying a request id gets the original reply replayed instead of a
    second execution.  The server stores only terminal replies; eviction is
    strictly FIFO. *)

type t

(** [cap] is clamped to [>= 1]. *)
val create : cap:int -> t

val find : t -> string -> (string * Json.t) list option

(** First store per key wins; at capacity the oldest entry is evicted. *)
val store : t -> string -> (string * Json.t) list -> unit

val size : t -> int
