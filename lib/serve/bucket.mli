(** Per-tenant token-bucket quotas.

    Each tenant accumulates [rate] tokens per second up to [burst]; a
    request costs one token (by default).  Time is supplied by the caller —
    the pool's monotonic clock in the daemon, a hand-cranked clock in tests
    — so refill is deterministic under test. *)

type t

(** [rate <= 0] disables quotas entirely ({!take} always succeeds);
    [burst] is clamped to [>= 1].  New tenants start with a full bucket. *)
val create : rate:float -> burst:float -> t

(** A shared no-op bucket ([rate = 0]). *)
val unlimited : t

(** [take t ~now tenant] spends [cost] (default 1) tokens, or reports the
    seconds until the tenant will have accumulated enough — the caller turns
    that into a retry_after hint. *)
val take : t -> now:float -> ?cost:float -> string -> (unit, float) result

(** Number of tenants ever seen (stats). *)
val tenant_count : t -> int
