(* Parallel map across OCaml 5 domains.

   GA fitness evaluation is embarrassingly parallel: each individual's
   simulation touches only freshly allocated VM state.  We spawn [domains - 1]
   worker domains per call and share work through an atomic index counter; the
   calling domain participates too.

   [map_result] is the fault-isolating primitive: every item is evaluated and
   its outcome — value or exception — is recorded independently, so one bad
   item cannot abort the batch.  The legacy [map]/[mapi] are rebased on it and
   re-raise exactly one [Worker_failure], carrying the lowest failing index. *)

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

exception Worker_failure of int * exn

exception Deadline_exceeded of float

let run_item f x deadline_s =
  match deadline_s with
  | None -> ( match f x with y -> Ok y | exception e -> Error e)
  | Some limit -> (
    (* Domains cannot be interrupted, so the deadline is cooperative: the item
       runs to completion (the VM's own fuel budget bounds it) and an overrun
       result is discarded as a failure rather than returned late. *)
    let t0 = Unix.gettimeofday () in
    match f x with
    | y ->
      let dt = Unix.gettimeofday () -. t0 in
      if dt > limit then Error (Deadline_exceeded dt) else Ok y
    | exception e -> Error e)

let map_result ?domains ?deadline_s f input =
  let n = Array.length input in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map (fun x -> run_item f x deadline_s) input
  else begin
    let results = Array.make n (Error Not_found) in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else results.(i) <- run_item f input.(i) deadline_s
      done
    in
    let spawned = List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    results
  end

let reraise_first results =
  let fail = ref None in
  Array.iteri
    (fun i r ->
      match (r, !fail) with Error e, None -> fail := Some (i, e) | _ -> ())
    results;
  match !fail with
  | Some (i, e) -> raise (Worker_failure (i, e))
  | None -> Array.map (function Ok y -> y | Error _ -> assert false) results

let map ?domains f input = reraise_first (map_result ?domains f input)

let mapi ?domains f input =
  let indexed = Array.mapi (fun i x -> (i, x)) input in
  map ?domains (fun (i, x) -> f i x) indexed
