(* Persistent worker-domain pool with chunked work-stealing.

   GA fitness evaluation is embarrassingly parallel: each work item touches
   only freshly allocated VM state.  Earlier revisions spawned [domains - 1]
   fresh domains on every [map] call; domain spawn/join is not free (minor
   heap setup, STW registration), and a tuner calls [map] once per
   generation.  The pool below instead keeps one set of worker domains alive
   for the whole process and feeds them batches:

   - [submit] publishes a batch: an array of items, a results buffer and an
     atomic claim cursor.  Workers (and the submitter, inside [await]) claim
     chunks of indices with [Atomic.fetch_and_add] — work-stealing in the
     flat-grid sense: nothing is pre-partitioned, so a worker that drew cheap
     items immediately steals the next chunk of someone else's share.
   - [await] makes the calling domain participate until the batch drains,
     then blocks on a condition variable for stragglers.
   - A batch carries a participant cap so callers can bound parallelism
     (e.g. [--domains 1] debugging) below the pool's size.

   [map_result] is the fault-isolating primitive: every item is evaluated and
   its outcome — value or exception — is recorded independently, so one bad
   item cannot abort the batch.  The legacy [map]/[mapi] are compatibility
   wrappers over submit/await on a shared default pool and re-raise exactly
   one [Worker_failure], carrying the lowest failing index. *)

(* 0 = no override; set once from the CLI's --domains flag. *)
let default_override = Atomic.make 0
let set_default_domains n = Atomic.set default_override (max 1 n)

let default_domains () =
  match Atomic.get default_override with
  | 0 -> max 1 (min 8 (Domain.recommended_domain_count ()))
  | n -> n

exception Worker_failure of int * exn

exception Deadline_exceeded of float

exception Cancelled

(* Observability bridge.  [lib/support] sits below [lib/obs], so the pool
   cannot name Metric counters directly; Inltune_obs installs a hook at
   module-initialization time and stolen-chunk accounting flows through it.
   Plain ref: written once at startup, read-only afterwards. *)
let counter_hook : (string -> int -> unit) ref = ref (fun _ _ -> ())
let set_counter_hook f = counter_hook := f

(* Monotonic-ish clock for deadline accounting.  There is no monotonic
   syscall binding in the dependency set, so centralize the next best thing:
   a process-wide high-water mark over [Unix.gettimeofday].  A backwards NTP
   step can then never produce a negative or shrunken elapsed time — the
   clock stalls instead of jumping back, which is the safe direction for a
   [Deadline_exceeded] check. *)
let now_mu = Mutex.create ()
let now_last = ref neg_infinity

let now () =
  Mutex.lock now_mu;
  let t = Unix.gettimeofday () in
  let t = if t > !now_last then t else !now_last in
  now_last := t;
  Mutex.unlock now_mu;
  t

let run_item f x deadline_s =
  match deadline_s with
  | None -> ( match f x with y -> Ok y | exception e -> Error e)
  | Some limit -> (
    (* Domains cannot be interrupted, so the deadline is cooperative: the item
       runs to completion (the VM's own fuel budget bounds it) and an overrun
       result is discarded as a failure rather than returned late. *)
    let t0 = now () in
    match f x with
    | y ->
      let dt = now () -. t0 in
      if dt > limit then Error (Deadline_exceeded dt) else Ok y
    | exception e -> Error e)

(* One published unit of work.  Type-erased behind [b_run] so a single pool
   serves batches of any element type; the results buffer lives in the
   submitter's closure. *)
type batch = {
  b_total : int;
  b_chunk : int;               (* indices claimed per fetch_and_add *)
  b_next : int Atomic.t;       (* next unclaimed index *)
  b_done : int Atomic.t;       (* items fully evaluated *)
  b_slots : int Atomic.t;      (* pool workers still allowed to join *)
  b_run : int -> unit;         (* evaluate item [i] into the results buffer *)
  b_kill : int -> unit;        (* record item [i] as cancelled, without running *)
  b_cancelled : bool Atomic.t; (* imperative cancel flag ([cancel]) *)
  b_cancel_hook : unit -> bool; (* cooperative cancel (deadline, shutdown, ...) *)
  mutable b_finished : bool;   (* set under the pool lock; await sleeps on it *)
}

(* Cancellation is cooperative at chunk granularity: a running item is never
   interrupted (domains cannot be), but once the flag or hook trips, every
   chunk claimed from then on is recorded as [Error Cancelled] without
   executing.  The drain accounting (b_done) is unchanged, so [await] still
   unblocks exactly once all indices are accounted for. *)
let batch_cancelled b = Atomic.get b.b_cancelled || b.b_cancel_hook ()

type t = {
  lock : Mutex.t;
  work_cv : Condition.t;       (* new batch published / shutdown *)
  done_cv : Condition.t;       (* some batch finished / workers joined *)
  mutable queue : batch list;  (* batches that may still have unclaimed work *)
  mutable stopping : bool;
  mutable joined : bool;       (* shutdown finished joining the workers *)
  mutable workers : unit Domain.t list;
  size : int;                  (* worker-domain count *)
}

type 'a task = { t_pool : t; t_batch : batch; t_results : 'a array }

(* Claim and evaluate chunks until the batch has none left.  [stolen] marks
   execution by a pool worker rather than the submitting domain; those chunks
   are what the spawn-per-map design could never overlap. *)
let exec_batch pool b ~stolen =
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add b.b_next b.b_chunk in
    if lo >= b.b_total then continue := false
    else begin
      let hi = min b.b_total (lo + b.b_chunk) in
      let cancelled = batch_cancelled b in
      if stolen && not cancelled then !counter_hook "pool.tasks_stolen" (hi - lo);
      (* Raw gettimeofday, not [now]: that clock takes a process-wide mutex
         and this runs once per chunk on every worker. *)
      let t0 = if stolen then Unix.gettimeofday () else 0.0 in
      if cancelled then begin
        !counter_hook "pool.tasks_cancelled" (hi - lo);
        for i = lo to hi - 1 do
          b.b_kill i
        done
      end
      else
        for i = lo to hi - 1 do
          b.b_run i
        done;
      if stolen then
        !counter_hook "pool.busy_ns"
          (Float.to_int ((Unix.gettimeofday () -. t0) *. 1e9));
      let finished = hi - lo in
      if Atomic.fetch_and_add b.b_done finished + finished = b.b_total then begin
        Mutex.lock pool.lock;
        b.b_finished <- true;
        pool.queue <- List.filter (fun b' -> b' != b) pool.queue;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.lock
      end
    end
  done

let claimable b = Atomic.get b.b_next < b.b_total && Atomic.get b.b_slots > 0

let worker_main pool =
  Mutex.lock pool.lock;
  let continue = ref true in
  while !continue do
    match List.find_opt claimable pool.queue with
    | Some b ->
      (* Join the batch if a participant slot is left; losing the race just
         means another worker got there first — look again. *)
      if Atomic.fetch_and_add b.b_slots (-1) > 0 then begin
        Mutex.unlock pool.lock;
        exec_batch pool b ~stolen:true;
        Mutex.lock pool.lock
      end
    | None ->
      (* Drain before exiting: stop only once no batch has claimable work. *)
      if pool.stopping then continue := false
      else begin
        (* Starvation accounting: time spent parked waiting for work.
           pool.idle_ns / (pool.idle_ns + pool.busy_ns) is the pool's
           starvation fraction over the run. *)
        let t0 = Unix.gettimeofday () in
        Condition.wait pool.work_cv pool.lock;
        !counter_hook "pool.idle_ns" (Float.to_int ((Unix.gettimeofday () -. t0) *. 1e9))
      end
  done;
  Mutex.unlock pool.lock

let create ?domains () =
  let size = match domains with Some d -> max 1 d | None -> default_domains () in
  let pool =
    {
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      queue = [];
      stopping = false;
      joined = false;
      workers = [];
      size;
    }
  in
  pool.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_main pool));
  pool

(* Idempotent and safe from any number of domains: exactly one caller joins
   the workers; every other concurrent or later caller blocks until that
   join has completed, so "shutdown returned" always means "no worker domain
   is still running".  (Calling it from a pool worker itself would deadlock —
   workers never shut their own pool down.) *)
let shutdown pool =
  Mutex.lock pool.lock;
  if pool.stopping then begin
    while not pool.joined do
      Condition.wait pool.done_cv pool.lock
    done;
    Mutex.unlock pool.lock
  end
  else begin
    pool.stopping <- true;
    Condition.broadcast pool.work_cv;
    let ws = pool.workers in
    pool.workers <- [];
    Mutex.unlock pool.lock;
    List.iter Domain.join ws;
    Mutex.lock pool.lock;
    pool.joined <- true;
    Condition.broadcast pool.done_cv;
    Mutex.unlock pool.lock
  end

let submit pool ?chunk ?max_workers ?deadline_s ?(priority = false)
    ?(cancelled = fun () -> false) f input =
  let n = Array.length input in
  let results = Array.make n (Error Not_found) in
  let chunk =
    match chunk with
    | Some c -> max 1 c
    (* Adaptive default: large batches amortize the claim cas, small batches
       degrade to one-item chunks for load balance (fitness items are slow). *)
    | None -> max 1 (n / (8 * (pool.size + 1)))
  in
  let slots = match max_workers with Some w -> max 0 (w - 1) | None -> pool.size in
  let b =
    {
      b_total = n;
      b_chunk = chunk;
      b_next = Atomic.make 0;
      b_done = Atomic.make 0;
      b_slots = Atomic.make slots;
      b_run = (fun i -> results.(i) <- run_item f input.(i) deadline_s);
      b_kill = (fun i -> results.(i) <- Error Cancelled);
      b_cancelled = Atomic.make false;
      b_cancel_hook = cancelled;
      b_finished = (n = 0);
    }
  in
  if n > 0 && slots > 0 then begin
    Mutex.lock pool.lock;
    if not pool.stopping then begin
      (* Priority batches go to the head of the queue so idle workers pick
         them up before older bulk work; nothing running is preempted. *)
      pool.queue <- (if priority then b :: pool.queue else pool.queue @ [ b ]);
      Condition.broadcast pool.work_cv
    end;
    Mutex.unlock pool.lock
  end;
  { t_pool = pool; t_batch = b; t_results = results }

let cancel task = Atomic.set task.t_batch.b_cancelled true

let await task =
  let pool = task.t_pool and b = task.t_batch in
  (* The submitter is always a participant (not counted against b_slots), so
     even a stopped or fully busy pool makes progress. *)
  exec_batch pool b ~stolen:false;
  Mutex.lock pool.lock;
  while not b.b_finished do
    Condition.wait pool.done_cv pool.lock
  done;
  Mutex.unlock pool.lock;
  task.t_results

(* --- shared default pool ------------------------------------------------ *)

let default_mu = Mutex.create ()
let default_pool = ref None

let get_default () =
  Mutex.lock default_mu;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create ~domains:(default_domains ()) () in
      default_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock default_mu;
  p

(* --- compatibility wrappers -------------------------------------------- *)

let map_result ?domains ?deadline_s f input =
  let n = Array.length input in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then
    (* Strictly sequential on the calling domain: deterministic ordering for
       tests and fault-injection runs. *)
    Array.map (fun x -> run_item f x deadline_s) input
  else await (submit (get_default ()) ~chunk:1 ~max_workers:domains ?deadline_s f input)

let reraise_first results =
  let fail = ref None in
  Array.iteri
    (fun i r ->
      match (r, !fail) with Error e, None -> fail := Some (i, e) | _ -> ())
    results;
  match !fail with
  | Some (i, e) -> raise (Worker_failure (i, e))
  | None -> Array.map (function Ok y -> y | Error _ -> assert false) results

let map ?domains f input = reraise_first (map_result ?domains f input)

let mapi ?domains f input =
  let indexed = Array.mapi (fun i x -> (i, x)) input in
  map ?domains (fun (i, x) -> f i x) indexed
