(** Frame pool for flat interpreters: a single growable int array of
    back-to-back register windows plus parallel stacks of saved caller state
    (code payload, frame pointer, resume pc, destination register, method
    id).  The record is exposed so interpreter hot loops can touch the
    arrays directly; everything is single-threaded per pool. *)

type 'a t = {
  mutable regs : int array;   (** register windows, all live frames *)
  mutable sp : int;           (** next free slot in [regs] *)
  mutable depth : int;        (** number of saved caller frames *)
  mutable codes : 'a array;   (** saved caller code payloads *)
  mutable fps : int array;    (** saved caller frame pointers *)
  mutable pcs : int array;    (** saved caller resume pcs *)
  mutable dests : int array;  (** saved caller destination registers *)
  mutable mids : int array;   (** saved caller method ids *)
  dummy : 'a;                 (** fills unused [codes] slots *)
}

(** Fresh pool; [dummy] fills unused code slots. *)
val create : dummy:'a -> unit -> 'a t

(** Drop every frame (the arrays keep their capacity). *)
val reset : 'a t -> unit

(** Grow [regs] to hold at least [need] slots, preserving live windows.
    Precondition: [need > Array.length t.regs]. *)
val grow_regs : 'a t -> int -> unit

(** [grow_regs] only when needed. *)
val ensure_regs : 'a t -> int -> unit

(** Double the saved-caller stacks (call when [depth] hits their length). *)
val grow_meta : 'a t -> unit
