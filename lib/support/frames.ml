(* Frame pool for flat interpreters: one growable int array holds every
   frame's register window back to back, and parallel stacks hold the saved
   caller state (code payload, frame pointer, resume pc, destination
   register, method id).  Pushing a frame is a bounds check plus a few int
   stores — no per-call allocation once the pool is warm. *)

type 'a t = {
  mutable regs : int array;   (* register windows, all live frames *)
  mutable sp : int;           (* next free slot in [regs] *)
  mutable depth : int;        (* number of saved caller frames *)
  mutable codes : 'a array;   (* saved caller code payloads *)
  mutable fps : int array;    (* saved caller frame pointers *)
  mutable pcs : int array;    (* saved caller resume pcs *)
  mutable dests : int array;  (* saved caller destination registers *)
  mutable mids : int array;   (* saved caller method ids *)
  dummy : 'a;                 (* fills unused [codes] slots *)
}

let create ~dummy () =
  {
    regs = Array.make 1024 0;
    sp = 0;
    depth = 0;
    codes = Array.make 64 dummy;
    fps = Array.make 64 0;
    pcs = Array.make 64 0;
    dests = Array.make 64 0;
    mids = Array.make 64 0;
    dummy;
  }

let reset t =
  t.sp <- 0;
  t.depth <- 0

(* Live register windows ([0, sp)) survive the copy. *)
let grow_regs t need =
  let a = Array.make (max need (2 * Array.length t.regs)) 0 in
  Array.blit t.regs 0 a 0 t.sp;
  t.regs <- a

let ensure_regs t need = if need > Array.length t.regs then grow_regs t need

let grow_meta t =
  let n = Array.length t.fps in
  let n' = 2 * n in
  let codes = Array.make n' t.dummy in
  Array.blit t.codes 0 codes 0 n;
  t.codes <- codes;
  let grow_int a =
    let a' = Array.make n' 0 in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.fps <- grow_int t.fps;
  t.pcs <- grow_int t.pcs;
  t.dests <- grow_int t.dests;
  t.mids <- grow_int t.mids
