(* Splitmix64: a small, fast, high-quality deterministic PRNG.  Every random
   choice in the system (program generation, GA operators, sampling jitter)
   flows through one of these generators so that runs are reproducible from a
   single integer seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Raw state capture/restore, for checkpointing a search mid-run: a generator
   rebuilt with [of_state (state t)] continues the exact stream of [t]. *)
let state t = t.state

let of_state s = { state = s }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative int in [0, 2^62). *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

(* Inclusive range. *)
let range t lo hi =
  if lo > hi then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let float t bound = Float.of_int (bits t) /. 4.611686018427387904e18 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bernoulli trial with probability [p]. *)
let chance t p = float t 1.0 < p

let split t = create (Int64.to_int (next_int64 t))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
