(** Deterministic splitmix64 pseudo-random number generator.

    All stochastic behaviour in the library is driven by explicit generator
    values so experiments are reproducible from a single seed. *)

type t

(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** Independent copy sharing no future state with the original. *)
val copy : t -> t

(** Raw internal state, for checkpointing.  [of_state (state t)] continues
    the exact stream of [t]. *)
val state : t -> int64

(** Rebuild a generator from a captured {!state}. *)
val of_state : int64 -> t


(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform non-negative int in [0, 2{^62}). *)
val bits : t -> int

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in the inclusive range [lo..hi]. *)
val range : t -> int -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** Derive a statistically independent generator. *)
val split : t -> t

val shuffle_in_place : t -> 'a array -> unit

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a
