(** Persistent worker-domain pool with chunked work-stealing.

    Intended for pure, CPU-bound work items (e.g. GA fitness evaluations).
    Work functions must not share mutable state across items.

    One set of worker domains lives for the whole process (or per explicit
    {!create}) and is fed batches through {!submit}/{!await}; indices are
    claimed in chunks off a shared atomic cursor, so finishing early on cheap
    items means stealing the next chunk of the grid rather than idling.  The
    legacy {!map}/{!map_result}/{!mapi} are wrappers over a shared default
    pool and keep their original semantics exactly. *)

(** Raised by {!map}/{!mapi} when any work item raised; carries the lowest
    failing input index and that item's exception. *)
exception Worker_failure of int * exn

(** Recorded (never raised) by {!map_result}/{!submit} for items whose
    evaluation overran the [deadline_s] budget; carries the elapsed seconds.
    Domains cannot be interrupted, so the deadline is cooperative: the item
    runs to completion and its late result is discarded. *)
exception Deadline_exceeded of float

(** Recorded (never raised) for items of a batch that was cancelled — via
    {!cancel} or the batch's [cancelled] hook — before they started.
    Cancellation is cooperative at chunk granularity: items already running
    finish normally; items not yet claimed are skipped without executing. *)
exception Cancelled

(** Number of worker domains used by default (bounded, >= 1). *)
val default_domains : unit -> int

(** [set_default_domains n] overrides {!default_domains} process-wide
    (clamped to >= 1).  The CLI's [--domains] flag calls this once at
    startup, before the shared pool exists, so every evaluation path —
    including ones that never thread an explicit [?domains] — is bounded
    uniformly. *)
val set_default_domains : int -> unit

(** Monotonic-ish process clock, in seconds: a high-water mark over the wall
    clock, so elapsed times measured across an NTP step can stall but never
    go negative.  All deadline accounting in this module uses it. *)
val now : unit -> float

(** {1 Persistent pool} *)

(** A pool of worker domains.  Thread-safe; any domain may submit. *)
type t

(** A submitted batch whose results can be collected with {!await}. *)
type 'a task

(** [create ?domains ()] spawns a pool with that many worker domains
    (default {!default_domains}).  The submitting caller additionally
    participates in every batch it {!await}s, so total parallelism is
    [domains + 1]. *)
val create : ?domains:int -> unit -> t

(** [submit pool f input] publishes a batch; workers start on it
    immediately.  [chunk] is the number of indices claimed per steal
    (default: adaptive, 1 for small batches).  [max_workers], when given,
    caps total participants — the submitting caller plus at most
    [max_workers - 1] pool workers ([max_workers = 1] means the batch runs
    entirely on the caller inside {!await}).  [priority] batches are claimed
    ahead of older bulk work (the serve daemon marks interactive requests so
    a long tuning batch cannot starve them).  [cancelled] is polled at every
    chunk claim; once it returns [true], remaining unstarted items complete
    immediately as [Error Cancelled] — the cooperative-cancellation hook
    deadlines and shutdown drain are built on.  Each item's outcome is
    isolated exactly as in {!map_result}. *)
val submit :
  t ->
  ?chunk:int ->
  ?max_workers:int ->
  ?deadline_s:float ->
  ?priority:bool ->
  ?cancelled:(unit -> bool) ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn) result task

(** Cancel a batch's unstarted items: every index not yet claimed resolves
    to [Error Cancelled] without running.  Items already executing finish
    normally (domains cannot be interrupted).  {!await} must still be called
    to collect the results.  Idempotent. *)
val cancel : 'a task -> unit

(** [await task] participates in the batch until no work is left, blocks for
    stragglers, and returns the results in input order.  Must be called
    exactly once per task to observe the results; safe even after
    {!shutdown} (the caller then evaluates every remaining item itself). *)
val await : 'a task -> 'a array

(** Stop and join the pool's workers.  Pending batches are drained first.
    Idempotent and safe to call concurrently from several domains: exactly
    one caller performs the join, every other caller blocks until it has
    completed, so returning always means no worker domain is still running.
    Must not be called from one of the pool's own workers.  Submitting to a
    stopped pool is allowed — its batches are simply evaluated by the caller
    inside {!await}. *)
val shutdown : t -> unit

(** The lazily created process-wide pool used by {!map}/{!map_result}
    (shut down automatically at exit). *)
val get_default : unit -> t

(** [set_counter_hook f] routes the pool's observability counters through
    [f name delta]: ["pool.tasks_stolen"] (grid indices executed by a
    non-submitting worker), ["pool.busy_ns"] (wall time workers spent
    running stolen chunks), ["pool.idle_ns"] (wall time workers spent
    parked waiting for work — the starvation signal) and
    ["pool.tasks_cancelled"] (indices resolved as {!Cancelled} without
    running).  [lib/support] cannot
    depend on the metrics registry, so [Inltune_obs] installs the bridge at
    load time. *)
val set_counter_hook : (string -> int -> unit) -> unit

(** {1 Array map wrappers} *)

(** [map_result ?domains ?deadline_s f a] evaluates every item and returns
    its outcome in input order: [Ok (f a.(i))], or [Error e] if that item
    raised (or overran [deadline_s]).  One bad item never aborts the batch —
    this is the fault-isolation primitive the GA's guarded evaluation uses.
    [domains] caps total participating domains; [Some 1] runs strictly
    sequentially on the caller. *)
val map_result :
  ?domains:int -> ?deadline_s:float -> ('a -> 'b) -> 'a array -> ('b, exn) result array

(** [map ?domains f a] is [Array.map f a] computed in parallel.  Result order
    matches input order.  If any application of [f] raises, every other item
    still completes and exactly one [Worker_failure] is raised on the caller,
    carrying the lowest failing index. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Indexed variant of {!map}. *)
val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
