(** Parallel array map over OCaml 5 domains.

    Intended for pure, CPU-bound work items (e.g. GA fitness evaluations).
    The function [f] must not share mutable state across items. *)

(** Raised by {!map}/{!mapi} when any work item raised; carries the lowest
    failing input index and that item's exception. *)
exception Worker_failure of int * exn

(** Recorded (never raised) by {!map_result} for items whose evaluation
    overran the [deadline_s] budget; carries the elapsed seconds.  Domains
    cannot be interrupted, so the deadline is cooperative: the item runs to
    completion and its late result is discarded. *)
exception Deadline_exceeded of float

(** Number of domains used by default (bounded, >= 1). *)
val default_domains : unit -> int

(** [map_result ?domains ?deadline_s f a] evaluates every item and returns
    its outcome in input order: [Ok (f a.(i))], or [Error e] if that item
    raised (or overran [deadline_s]).  One bad item never aborts the batch —
    this is the fault-isolation primitive the GA's guarded evaluation uses. *)
val map_result :
  ?domains:int -> ?deadline_s:float -> ('a -> 'b) -> 'a array -> ('b, exn) result array

(** [map ?domains f a] is [Array.map f a] computed in parallel.  Result order
    matches input order.  If any application of [f] raises, every other item
    still completes and exactly one [Worker_failure] is raised on the caller,
    carrying the lowest failing index. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Indexed variant of {!map}. *)
val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
