(** Small statistics kit used by fitness functions and reports. *)

(** Arithmetic mean of a non-empty array. *)
val mean : float array -> float

(** Geometric mean of a non-empty array of positive values; the paper's
    suite-level aggregate. Raises [Invalid_argument] on non-positive input. *)
val geomean : float array -> float

val min_of : float array -> float
val max_of : float array -> float

(** Population standard deviation. *)
val stddev : float array -> float

(** [percentile xs p] is the exact nearest-rank [p]-th percentile of a
    non-empty array ([p] in [[0, 100]]): always an actual sample, never an
    interpolated value.  [percentile xs 0. = min], [percentile xs 100. = max].
    Raises [Invalid_argument] on an empty array or [p] outside the range. *)
val percentile : float array -> float -> float

(** [reduction_pct r] converts a normalized ratio to a percentage reduction;
    e.g. [reduction_pct 0.83 = 17.]. *)
val reduction_pct : float -> float

(** [ratio ~baseline x = x /. baseline]; baseline must be positive. *)
val ratio : baseline:float -> float -> float
