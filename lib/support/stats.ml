let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

(* Geometric mean, the paper's aggregate over a benchmark suite:
   Perf(S) = (prod Perf(s))^(1/|S|).  Computed in log space to avoid
   overflow on long suites. *)
let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive") xs;
  let s = Array.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs in
  Float.exp (s /. Float.of_int (Array.length xs))

let min_of xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_of: empty";
  Array.fold_left Float.min xs.(0) xs

let max_of xs =
  if Array.length xs = 0 then invalid_arg "Stats.max_of: empty";
  Array.fold_left Float.max xs.(0) xs

let stddev xs =
  let m = mean xs in
  let n = Float.of_int (Array.length xs) in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. n in
  Float.sqrt var

(* Exact nearest-rank percentile: the smallest element covering p percent of
   the sorted mass.  Nearest-rank (no interpolation) keeps the result an
   actual observed sample, which is what latency reporting wants. *)
let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if p = 0.0 then sorted.(0)
  else begin
    let rank = Float.to_int (Float.ceil (p /. 100.0 *. Float.of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* Percentage reduction relative to a baseline: 0.83 -> 17.%. *)
let reduction_pct ratio = (1.0 -. ratio) *. 100.0

let ratio ~baseline x =
  if baseline <= 0.0 then invalid_arg "Stats.ratio: non-positive baseline";
  x /. baseline
