(* JIR: a compact register-based IR standing in for Java bytecode / Jikes
   RVM's HIR.  Programs are closed: a method table indexed by method id and a
   class table indexed by class id.  Control flow is explicit basic blocks.

   Semantics conventions (chosen to keep the language total, which makes
   random-program property testing possible):
   - all values are OCaml ints;
   - division and modulus by zero yield 0;
   - shift amounts are masked to [0..62];
   - heap objects are blocks of slots, slot 0 holds the class id; [Load] and
     [Store] use slot offsets >= 1 for fields;
   - out-of-range heap accesses are a trap (the interpreter raises). *)

type reg = int
type mid = int
type kid = int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmpop = Lt | Le | Eq | Ne | Gt | Ge

type instr =
  | Const of reg * int
  | Move of reg * reg
  | Binop of binop * reg * reg * reg  (* dst, lhs, rhs *)
  | Cmp of cmpop * reg * reg * reg    (* dst <- 0/1 *)
  | Load of reg * reg * int           (* dst <- heap[obj + off] *)
  | Store of reg * int * reg          (* heap[obj + off] <- src *)
  | LoadIdx of reg * reg * reg        (* dst <- heap[obj + 1 + idx] *)
  | StoreIdx of reg * reg * reg       (* heap[obj + 1 + idx] <- src *)
  | ClassOf of reg * reg              (* dst <- class id of the object *)
  | Alloc of reg * kid * int          (* dst <- new object, n field slots *)
  | Call of reg * mid * reg array     (* dst <- m(args), static target *)
  | CallVirt of reg * int * reg * reg array
      (* dst <- recv.vtable[slot](recv, args) *)
  | Print of reg                      (* observable output *)

type terminator =
  | Jump of int
  | Branch of reg * int * int         (* non-zero ? then : else *)
  | Ret of reg

type block = {
  instrs : instr array;
  term : terminator;
}

type methd = {
  mid : mid;
  mname : string;
  nargs : int;  (* arguments arrive in registers 0 .. nargs-1 *)
  nregs : int;
  blocks : block array;  (* entry is block 0; never empty *)
}

type klass = {
  kid : kid;
  kname : string;
  vtable : mid array;
}

type program = {
  pname : string;
  methods : methd array;  (* index = mid *)
  classes : klass array;  (* index = kid *)
  main : mid;             (* entry point; must have nargs = 0 *)
}

let method_of p m =
  if m < 0 || m >= Array.length p.methods then invalid_arg "Ir.method_of";
  p.methods.(m)

let class_of p k =
  if k < 0 || k >= Array.length p.classes then invalid_arg "Ir.class_of";
  p.classes.(k)

(* Destination register written by an instruction, if any. *)
let def_of = function
  | Const (d, _)
  | Move (d, _)
  | Binop (_, d, _, _)
  | Cmp (_, d, _, _)
  | Load (d, _, _)
  | LoadIdx (d, _, _)
  | ClassOf (d, _)
  | Alloc (d, _, _)
  | Call (d, _, _)
  | CallVirt (d, _, _, _) -> Some d
  | Store _ | StoreIdx _ | Print _ -> None

(* Destination register, or -1 when the instruction writes none —
   allocation-free variant of [def_of] for per-instruction scans (the
   [Some d] box costs a minor-heap word per instruction per pass). *)
let def_reg = function
  | Const (d, _)
  | Move (d, _)
  | Binop (_, d, _, _)
  | Cmp (_, d, _, _)
  | Load (d, _, _)
  | LoadIdx (d, _, _)
  | ClassOf (d, _)
  | Alloc (d, _, _)
  | Call (d, _, _)
  | CallVirt (d, _, _, _) -> d
  | Store _ | StoreIdx _ | Print _ -> -1

(* Allocation-free iteration over the registers an instruction reads, for
   passes that scan every instruction of every compile ([uses_of] builds a
   fresh list per call, which shows up as GC traffic in hot analyses). *)
let iter_uses f = function
  | Const _ | Alloc _ -> ()
  | Move (_, s) -> f s
  | Binop (_, _, a, b) | Cmp (_, _, a, b) ->
    f a;
    f b
  | Load (_, o, _) -> f o
  | Store (o, _, s) ->
    f o;
    f s
  | LoadIdx (_, o, i) ->
    f o;
    f i
  | StoreIdx (o, i, s) ->
    f o;
    f i;
    f s
  | ClassOf (_, o) -> f o
  | Call (_, _, args) -> Array.iter f args
  | CallVirt (_, _, recv, args) ->
    f recv;
    Array.iter f args
  | Print s -> f s

(* Registers read by an instruction. *)
let uses_of = function
  | Const _ -> []
  | Move (_, s) -> [ s ]
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> [ a; b ]
  | Load (_, o, _) -> [ o ]
  | Store (o, _, s) -> [ o; s ]
  | LoadIdx (_, o, i) -> [ o; i ]
  | StoreIdx (o, i, s) -> [ o; i; s ]
  | ClassOf (_, o) -> [ o ]
  | Alloc _ -> []
  | Call (_, _, args) -> Array.to_list args
  | CallVirt (_, _, recv, args) -> recv :: Array.to_list args
  | Print s -> [ s ]

let term_uses = function
  | Jump _ -> []
  | Branch (c, _, _) -> [ c ]
  | Ret r -> [ r ]

let successors = function
  | Jump l -> [ l ]
  | Branch (_, t, f) -> [ t; f ]
  | Ret _ -> []

(* Whether removing the instruction is unobservable when its destination is
   dead.  Calls may have side effects (prints, stores) and must be kept. *)
let pure = function
  | Const _ | Move _ | Binop _ | Cmp _ | Load _ | LoadIdx _ | ClassOf _ | Alloc _ -> true
  | Call _ | CallVirt _ | Store _ | StoreIdx _ | Print _ -> false

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a asr (b land 62)

let eval_cmp op a b =
  let r =
    match op with
    | Lt -> a < b
    | Le -> a <= b
    | Eq -> a = b
    | Ne -> a <> b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let instr_count m =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs + 1) 0 m.blocks

let program_instr_count p =
  Array.fold_left (fun acc m -> acc + instr_count m) 0 p.methods
