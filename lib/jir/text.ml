(* A plain-text serialization of JIR programs: a prefix-form, line-based
   assembly that round-trips exactly ([parse (to_string p) = Ok p]).  Used by
   the CLI to export benchmarks and run user-written programs.

   Format (whitespace-tokenized, '#' starts a comment):

     program <name>
     class <name> <mid>*          # vtable entries in slot order
     method <name> args <n> regs <n>
     block
       const r2 5
       move r3 r2
       add|sub|mul|div|mod|and|or|xor|shl|shr r4 r2 r3
       cmp.lt|le|eq|ne|gt|ge r5 r2 r3
       load r5 r3 1
       store r3 1 r5
       loadidx r5 r3 r4
       storeidx r3 r4 r5
       classof r5 r3
       alloc r5 k0 3
       call r6 m2 r0 r1 ...
       callvirt r6 0 r5 r0 ...    # slot, receiver, args
       print r3
       jump 2 | branch r4 1 2 | ret r3   # exactly one terminator per block
     main m0

   Classes and methods are referenced positionally (k<i>, m<i>) in
   declaration order; names are preserved. *)

type error = { line : int; msg : string }

let binop_name = function
  | Ir.Add -> "add"
  | Ir.Sub -> "sub"
  | Ir.Mul -> "mul"
  | Ir.Div -> "div"
  | Ir.Mod -> "mod"
  | Ir.And -> "and"
  | Ir.Or -> "or"
  | Ir.Xor -> "xor"
  | Ir.Shl -> "shl"
  | Ir.Shr -> "shr"

let cmpop_name = function
  | Ir.Lt -> "cmp.lt"
  | Ir.Le -> "cmp.le"
  | Ir.Eq -> "cmp.eq"
  | Ir.Ne -> "cmp.ne"
  | Ir.Gt -> "cmp.gt"
  | Ir.Ge -> "cmp.ge"

let binop_of_name = function
  | "add" -> Some Ir.Add
  | "sub" -> Some Ir.Sub
  | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div
  | "mod" -> Some Ir.Mod
  | "and" -> Some Ir.And
  | "or" -> Some Ir.Or
  | "xor" -> Some Ir.Xor
  | "shl" -> Some Ir.Shl
  | "shr" -> Some Ir.Shr
  | _ -> None

let cmpop_of_name = function
  | "cmp.lt" -> Some Ir.Lt
  | "cmp.le" -> Some Ir.Le
  | "cmp.eq" -> Some Ir.Eq
  | "cmp.ne" -> Some Ir.Ne
  | "cmp.gt" -> Some Ir.Gt
  | "cmp.ge" -> Some Ir.Ge
  | _ -> None

(* ---- printing ------------------------------------------------------------ *)

let to_string (p : Ir.program) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let reg r = "r" ^ string_of_int r in
  let regs rs = String.concat " " (Array.to_list (Array.map reg rs)) in
  pf "program %s\n" p.Ir.pname;
  Array.iter
    (fun k ->
      pf "class %s%s\n" k.Ir.kname
        (Array.fold_left (fun acc m -> acc ^ " m" ^ string_of_int m) "" k.Ir.vtable))
    p.Ir.classes;
  Array.iter
    (fun m ->
      pf "method %s args %d regs %d\n" m.Ir.mname m.Ir.nargs m.Ir.nregs;
      Array.iter
        (fun blk ->
          pf "block\n";
          Array.iter
            (fun i ->
              match i with
              | Ir.Const (d, v) -> pf "  const %s %d\n" (reg d) v
              | Ir.Move (d, s) -> pf "  move %s %s\n" (reg d) (reg s)
              | Ir.Binop (op, d, a, b) ->
                pf "  %s %s %s %s\n" (binop_name op) (reg d) (reg a) (reg b)
              | Ir.Cmp (op, d, a, b) ->
                pf "  %s %s %s %s\n" (cmpop_name op) (reg d) (reg a) (reg b)
              | Ir.Load (d, o, off) -> pf "  load %s %s %d\n" (reg d) (reg o) off
              | Ir.Store (o, off, s) -> pf "  store %s %d %s\n" (reg o) off (reg s)
              | Ir.LoadIdx (d, o, ix) -> pf "  loadidx %s %s %s\n" (reg d) (reg o) (reg ix)
              | Ir.StoreIdx (o, ix, s) -> pf "  storeidx %s %s %s\n" (reg o) (reg ix) (reg s)
              | Ir.ClassOf (d, o) -> pf "  classof %s %s\n" (reg d) (reg o)
              | Ir.Alloc (d, kid, slots) -> pf "  alloc %s k%d %d\n" (reg d) kid slots
              | Ir.Call (d, t, args) ->
                pf "  call %s m%d%s\n" (reg d) t
                  (if Array.length args = 0 then "" else " " ^ regs args)
              | Ir.CallVirt (d, slot, recv, args) ->
                pf "  callvirt %s %d %s%s\n" (reg d) slot (reg recv)
                  (if Array.length args = 0 then "" else " " ^ regs args)
              | Ir.Print r -> pf "  print %s\n" (reg r))
            blk.Ir.instrs;
          match blk.Ir.term with
          | Ir.Jump l -> pf "  jump %d\n" l
          | Ir.Branch (c, t, f) -> pf "  branch %s %d %d\n" (reg c) t f
          | Ir.Ret r -> pf "  ret %s\n" (reg r))
        m.Ir.blocks)
    p.Ir.methods;
  pf "main m%d\n" p.Ir.main;
  Buffer.contents buf

(* ---- parsing ------------------------------------------------------------- *)

exception Parse_fail of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_fail (line, msg))) fmt

let parse_prefixed ~line ~prefix tok =
  let pl = String.length prefix in
  if String.length tok > pl && String.sub tok 0 pl = prefix then
    match int_of_string_opt (String.sub tok pl (String.length tok - pl)) with
    | Some n when n >= 0 -> n
    | _ -> fail line "bad token %s" tok
  else fail line "expected %s<n>, got %s" prefix tok

let parse_int ~line tok =
  match int_of_string_opt tok with Some n -> n | None -> fail line "expected integer, got %s" tok

let parse (src : string) : (Ir.program, error) result =
  let module Vec = Inltune_support.Vec in
  try
    let pname = ref "" in
    let classes : Ir.klass Vec.t = Vec.create () in
    (* methods under construction *)
    let methods : (string * int * int * Ir.block Vec.t) Vec.t = Vec.create () in
    let main = ref (-1) in
    let cur_instrs : Ir.instr Vec.t = Vec.create () in
    let in_block = ref false in
    let flush_block ~line term =
      if not !in_block then fail line "terminator outside a block";
      if Vec.is_empty methods then fail line "block outside a method";
      let _, _, _, blocks = Vec.last methods in
      Vec.push blocks { Ir.instrs = Vec.to_array cur_instrs; term };
      Vec.clear cur_instrs;
      in_block := false
    in
    let lines = String.split_on_char '\n' src in
    List.iteri
      (fun idx raw ->
        let line = idx + 1 in
        let body = match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw in
        let toks =
          String.split_on_char ' ' body
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        let r tok = parse_prefixed ~line ~prefix:"r" tok in
        match toks with
        | [] -> ()
        | "program" :: rest -> pname := String.concat " " rest
        | "class" :: name :: vtable ->
          let vt = List.map (parse_prefixed ~line ~prefix:"m") vtable in
          Vec.push classes { Ir.kid = Vec.length classes; kname = name; vtable = Array.of_list vt }
        | "method" :: name :: "args" :: a :: "regs" :: g :: [] ->
          if !in_block then fail line "method begins inside an unterminated block";
          Vec.push methods (name, parse_int ~line a, parse_int ~line g, Vec.create ())
        | [ "block" ] ->
          if !in_block then fail line "previous block not terminated";
          in_block := true
        | [ "main"; m ] -> main := parse_prefixed ~line ~prefix:"m" m
        | [ "jump"; l ] -> flush_block ~line (Ir.Jump (parse_int ~line l))
        | [ "branch"; c; t; f ] ->
          flush_block ~line (Ir.Branch (r c, parse_int ~line t, parse_int ~line f))
        | [ "ret"; x ] -> flush_block ~line (Ir.Ret (r x))
        | op :: rest ->
          if not !in_block then fail line "instruction outside a block";
          let i =
            match (op, rest) with
            | "const", [ d; v ] -> Ir.Const (r d, parse_int ~line v)
            | "move", [ d; s ] -> Ir.Move (r d, r s)
            | "load", [ d; o; off ] -> Ir.Load (r d, r o, parse_int ~line off)
            | "store", [ o; off; s ] -> Ir.Store (r o, parse_int ~line off, r s)
            | "loadidx", [ d; o; ix ] -> Ir.LoadIdx (r d, r o, r ix)
            | "storeidx", [ o; ix; s ] -> Ir.StoreIdx (r o, r ix, r s)
            | "classof", [ d; o ] -> Ir.ClassOf (r d, r o)
            | "alloc", [ d; k; slots ] ->
              Ir.Alloc (r d, parse_prefixed ~line ~prefix:"k" k, parse_int ~line slots)
            | "print", [ x ] -> Ir.Print (r x)
            | "call", d :: m :: args ->
              Ir.Call (r d, parse_prefixed ~line ~prefix:"m" m, Array.of_list (List.map r args))
            | "callvirt", d :: slot :: recv :: args ->
              Ir.CallVirt (r d, parse_int ~line slot, r recv, Array.of_list (List.map r args))
            | _, [ a; b; c ] -> (
              match (binop_of_name op, cmpop_of_name op) with
              | Some bop, _ -> Ir.Binop (bop, r a, r b, r c)
              | None, Some cop -> Ir.Cmp (cop, r a, r b, r c)
              | None, None -> fail line "unknown instruction %s" op)
            | _ -> fail line "unknown instruction %s" op
          in
          Vec.push cur_instrs i)
      lines;
    if !in_block then fail (List.length lines) "unterminated block at end of input";
    if !main < 0 then fail (List.length lines) "no main directive";
    let methods =
      Array.of_list
        (List.mapi
           (fun mid (name, nargs, nregs, blocks) ->
             { Ir.mid; mname = name; nargs; nregs; blocks = Vec.to_array blocks })
           (Array.to_list (Vec.to_array methods)))
    in
    let p =
      { Ir.pname = !pname; methods; classes = Vec.to_array classes; main = !main }
    in
    (match Validate.check p with
    | [] -> Ok p
    | { Validate.where; what } :: _ -> Error { line = 0; msg = where ^ ": " ^ what })
  with Parse_fail (line, msg) -> Error { line; msg }

let parse_exn src =
  match parse src with
  | Ok p -> p
  | Error { line; msg } -> invalid_arg (Printf.sprintf "Text.parse: line %d: %s" line msg)
