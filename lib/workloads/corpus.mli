open Inltune_jir

(** The generated corpus: 110 seeded synthetic programs in five families —
    deep leaf chains, megamorphic dispatch families, recursion shapes,
    one-shot compile-bound sweeps, and phase-shift workloads whose hot call
    set drifts mid-run.  Complements the hand-modeled {!Suites} benchmarks
    with shapes that separate the alternative inlining strategies
    (inline_leaves / inline_hot / inline_region) from the Fig. 3 default.

    Generation is deterministic: each program's shape is a pure function of
    its (family, index) seed, so the same name yields a byte-identical
    program in any process or domain. *)

(** One corpus family: [fcount] programs named [corpus_<fname>NN]. *)
type family = {
  fname : string;
  fcount : int;
  fdescription : string;
  fgenerate : index:int -> ?scale:int -> unit -> Ir.program;
}

val families : family list

(** Every corpus program, as regular {!Suites.benchmark}s (names
    [corpus_chain00] .. [corpus_phase04]), in family order. *)
val all : Suites.benchmark list

(** Look up a corpus benchmark by name. *)
val find_opt : string -> Suites.benchmark option
