open Inltune_jir
module B = Builder
module Rng = Inltune_support.Rng

(* The generated corpus: a seeded family of 110 small programs whose shapes
   give the alternative inlining strategies (inline_leaves / inline_hot /
   inline_region) a gradient the 14 hand-modeled suite programs cannot:

   - [chain]    deep leaf chains — long static call chains of small pure
                methods, where the Fig. 3 depth cut truncates profitable
                expansion and the region budget / leaf rounds decide;
   - [dispatch] megamorphic dispatch families — virtual fan-out the inliner
                cannot touch, whose implementations share small helpers
                (inlining those into every variant multiplies code);
   - [recur]    recursion — self- and mutually-recursive methods plus tree
                build/fold, exercising the engine's recursion guard;
   - [sweep]    one-shot breadth — setup methods executed exactly once with
                inline-bait utility callees, where *less* inlining wins
                total time (compile-time-bound);
   - [phase]    phase shift — the hot call set drifts mid-run, so a profile
                captured in phase A misleads hot-path decisions in phase B
                until the adaptive tiers recompile.

   Every program is deterministic in its (family, index) seed: generating
   the same benchmark twice — in any process, on any domain — yields
   byte-identical programs (a test locks this, serial and under [Pool]).
   Each generator derives all shape choices from its own [Rng] before
   emitting code, never from global state. *)

let scale_iters ~scale base = max 1 (base * scale / 100)

(* Distinct odd multipliers keep family seed streams disjoint. *)
let seed ~salt ~index = salt + (index * 7919)

(* --- chain: deep leaf chains -------------------------------------------- *)

let chain_program ~index ?(scale = 100) () =
  let name = Printf.sprintf "corpus_chain%02d" index in
  let b = B.create name in
  let rng = Rng.create (seed ~salt:0xC4A1 ~index) in
  let len = Rng.range rng 8 16 in
  let entry =
    Gen.chain b rng ~name:"work" ~len ~ops:(Rng.range rng 2 6)
      ~leaf_ops:(Rng.range rng 2 5)
  in
  let tiny1 = Gen.leaf b rng ~name:"tiny1" ~nargs:1 ~ops:(Rng.range rng 2 4) in
  let tiny2 = Gen.leaf b rng ~name:"tiny2" ~nargs:2 ~ops:(Rng.range rng 3 6) in
  let iters = Rng.range rng 18 40 in
  let start = Rng.range rng 1 9 in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let acc = B.fresh_reg mb in
        let z = B.const mb start in
        B.emit mb (Ir.Move (acc, z));
        Gen.repeat mb ~iters:(scale_iters ~scale iters) (fun i ->
            let a = B.call mb tiny1 [ i ] in
            let c = B.call mb tiny2 [ a; acc ] in
            let x = B.call mb entry [ c; i ] in
            let s = B.add mb acc x in
            B.emit mb (Ir.Move (acc, s)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b

(* --- dispatch: megamorphic families ------------------------------------- *)

let dispatch_program ~index ?(scale = 100) () =
  let name = Printf.sprintf "corpus_dispatch%02d" index in
  let b = B.create name in
  let rng = Rng.create (seed ~salt:0xD150 ~index) in
  let variants = Rng.range rng 6 20 in
  let kids = Gen.dispatch_family b rng ~name:"op" ~variants ~ops:(Rng.range rng 4 10) in
  let arr_kid = Gen.array_class b ~name:"objs" in
  let helper =
    Gen.nested_helper b rng ~name:"shared" ~outer_ops:(Rng.range rng 8 12)
      ~inner_ops:(Rng.range rng 8 12) ~leaf_ops:(Rng.range rng 3 6)
  in
  let iters = Rng.range rng 10 24 in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let arr = B.alloc mb arr_kid ~slots:variants in
        for v = 0 to variants - 1 do
          let i = B.const mb v in
          let f1 = B.const mb (v + 1) in
          let obj = Gen.make_obj mb ~kid:kids.(v) ~f1 ~f2:i in
          B.store_idx mb arr i obj
        done;
        let acc = B.fresh_reg mb in
        let z = B.const mb 1 in
        B.emit mb (Ir.Move (acc, z));
        Gen.repeat mb ~iters:(scale_iters ~scale iters) (fun _ ->
            Gen.repeat mb ~iters:variants (fun j ->
                let o = B.load_idx mb arr j in
                let r = B.call_virt mb ~slot:0 o [ acc ] in
                let h = B.call mb helper [ r; j ] in
                let s = B.add mb acc h in
                B.emit mb (Ir.Move (acc, s))));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b

(* --- recur: recursion shapes -------------------------------------------- *)

let recur_program ~index ?(scale = 100) () =
  let name = Printf.sprintf "corpus_recur%02d" index in
  let b = B.create name in
  let rng = Rng.create (seed ~salt:0x4EC0 ~index) in
  let t = Gen.tree b rng ~name:"t" ~fold_ops:(Rng.range rng 3 8) in
  (* A mutually recursive pair: the recursion guard stops expansion on the
     cycle, the local arithmetic around each call is still inline fodder. *)
  let mut_a = B.declare b ~name:"mut_a" ~nargs:1 in
  let mut_b = B.declare b ~name:"mut_b" ~nargs:1 in
  let mut_ops = Rng.range rng 2 5 in
  let define_mut self other =
    B.define b self (fun mb ->
        let zero = B.const mb 0 in
        let stop = B.cmp mb Ir.Le 0 zero in
        let result = B.fresh_reg mb in
        B.if_ mb stop
          ~then_:(fun () ->
            let base = B.const mb 1 in
            B.emit mb (Ir.Move (result, base)))
          ~else_:(fun () ->
            let one = B.const mb 1 in
            let n' = B.sub mb 0 one in
            let r = B.call mb other [ n' ] in
            let x = Gen.arith mb rng ~ops:mut_ops [ r ] in
            B.emit mb (Ir.Move (result, x)));
        B.ret mb result)
  in
  define_mut mut_a mut_b;
  define_mut mut_b mut_a;
  let depth = Rng.range rng 3 5 in
  let iters = Rng.range rng 6 14 in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let d = B.const mb depth in
        let s0 = B.const mb (Rng.range rng 1 7) in
        let root = B.call mb t.Gen.build [ d; s0 ] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, s0));
        Gen.repeat mb ~iters:(scale_iters ~scale iters) (fun i ->
            let f = B.call mb t.Gen.fold [ root; d ] in
            let m = B.call mb mut_a [ i ] in
            let x = B.add mb f m in
            let s = B.add mb acc x in
            B.emit mb (Ir.Move (acc, s)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b

(* --- sweep: one-shot breadth -------------------------------------------- *)

let sweep_program ~index ?(scale = 100) () =
  let name = Printf.sprintf "corpus_sweep%02d" index in
  let b = B.create name in
  let rng = Rng.create (seed ~salt:0x53EE ~index) in
  let count = Rng.range rng 60 130 in
  let driver =
    Gen.one_shot_sweep b rng ~name:"swp" ~count ~ops_min:(Rng.range rng 16 24)
      ~ops_max:(Rng.range rng 60 90) ()
  in
  let tiny = Gen.leaf b rng ~name:"tick" ~nargs:1 ~ops:(Rng.range rng 2 4) in
  let iters = Rng.range rng 8 20 in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let s0 = B.const mb (Rng.range rng 1 5) in
        let cfg = B.call mb driver [ s0 ] in
        let acc = B.fresh_reg mb in
        B.emit mb (Ir.Move (acc, cfg));
        Gen.repeat mb ~iters:(scale_iters ~scale iters) (fun i ->
            let x = B.call mb tiny [ i ] in
            let s = B.add mb acc x in
            B.emit mb (Ir.Move (acc, s)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b

(* --- phase: the hot set drifts mid-run ---------------------------------- *)

let phase_program ~index ?(scale = 100) () =
  let name = Printf.sprintf "corpus_phase%02d" index in
  let b = B.create name in
  let rng = Rng.create (seed ~salt:0xFA5E ~index) in
  (* Two disjoint helper sets.  Phase A hammers set A while set B stays
     cold, then the loop flips: any hot-path decision frozen from the phase
     A profile is wrong for the rest of the run until a recompile sees the
     drifted counts. *)
  let set_of tag =
    Array.init 4 (fun i ->
        Gen.nested_helper b rng
          ~name:(Printf.sprintf "%s%d" tag i)
          ~outer_ops:(Rng.range rng 7 12) ~inner_ops:(Rng.range rng 7 12)
          ~leaf_ops:(Rng.range rng 3 6))
  in
  let set_a = set_of "hota" in
  let set_b = set_of "hotb" in
  let phase_body tag set =
    B.method_ b ~name:("phase_" ^ tag) ~nargs:2 (fun mb ->
        let x =
          Array.fold_left
            (fun acc h ->
              let r = B.call mb h [ acc; 1 ] in
              B.add mb acc r)
            0 set
        in
        B.ret mb x)
  in
  let phase_a = phase_body "a" set_a in
  let phase_b = phase_body "b" set_b in
  let iters = Rng.range rng 40 70 in
  let main =
    B.method_ b ~name:"main" ~nargs:0 (fun mb ->
        let acc = B.fresh_reg mb in
        let z = B.const mb (Rng.range rng 1 9) in
        B.emit mb (Ir.Move (acc, z));
        Gen.repeat mb ~iters:(scale_iters ~scale iters) (fun i ->
            let x = B.call mb phase_a [ acc; i ] in
            B.emit mb (Ir.Move (acc, x)));
        Gen.repeat mb ~iters:(scale_iters ~scale iters) (fun i ->
            let x = B.call mb phase_b [ acc; i ] in
            B.emit mb (Ir.Move (acc, x)));
        Gen.finish_main mb acc)
  in
  B.set_main b main;
  B.finish b

(* --- registry ----------------------------------------------------------- *)

type family = {
  fname : string;
  fcount : int;
  fdescription : string;
  fgenerate : index:int -> ?scale:int -> unit -> Ir.program;
}

let families =
  [
    {
      fname = "chain";
      fcount = 30;
      fdescription = "deep leaf chain (depth-cut vs region/leaf gradient)";
      fgenerate = chain_program;
    };
    {
      fname = "dispatch";
      fcount = 30;
      fdescription = "megamorphic dispatch family with shared helpers";
      fgenerate = dispatch_program;
    };
    {
      fname = "recur";
      fcount = 25;
      fdescription = "self/mutual recursion and tree build/fold";
      fgenerate = recur_program;
    };
    {
      fname = "sweep";
      fcount = 20;
      fdescription = "one-shot breadth with inline bait (compile-bound)";
      fgenerate = sweep_program;
    };
    {
      fname = "phase";
      fcount = 5;
      fdescription = "hot call set drifts mid-run (adaptive re-tuning)";
      fgenerate = phase_program;
    };
  ]

let of_family f =
  List.init f.fcount (fun index ->
      {
        Suites.bname = Printf.sprintf "corpus_%s%02d" f.fname index;
        bdescription = Printf.sprintf "generated corpus: %s" f.fdescription;
        generate = f.fgenerate ~index;
      })

let all = List.concat_map of_family families
let find_opt name = List.find_opt (fun bm -> bm.Suites.bname = name) all
