(** Deterministic fault injection for exercising the failure paths in CI.

    Faults are armed per call site and 1-based call count: the spec
    ["eval:raise@3"] makes the 3rd {!check} of site ["eval"] return
    [Some Raise].  Several comma-separated specs may be armed at once,
    including several for the same site.  Nothing is armed by default, and
    an unarmed {!check} costs one ref read. *)

(** What the instrumented site should do when its turn comes:
    [Raise] an {!Injected} exception, [Hang] by burning the evaluation's
    whole fuel budget, or return [Corrupt] output (a NaN fitness). *)
type action = Raise | Hang | Corrupt

(** The exception injected sites raise for {!Raise} faults. *)
exception Injected of string

val action_name : action -> string

type spec = { site : string; action : action; at : int }

val spec_to_string : spec -> string

(** Parse a comma-separated fault list ([SITE:ACTION@K,...]).  The empty
    string is no faults. *)
val parse : string -> (spec list, string) result

(** Arm exactly these faults, resetting all per-site call counts. *)
val install : spec list -> unit

(** Disarm everything and reset call counts. *)
val clear : unit -> unit

(** Whether any fault is armed. *)
val active : unit -> bool

(** Arm faults from [INLTUNE_FAULTS]; unset/empty arms nothing.  A malformed
    value is reported, not ignored — silently dropping an injection would
    make a failing CI job look healthy. *)
val init_from_env : unit -> (unit, string) result

(** Bump the site's call count and return the armed action for this call, if
    any.  Safe to call from worker domains (counting is mutex-guarded). *)
val check : string -> action option

(** How many times the site has been checked (tests / diagnostics). *)
val calls : string -> int
