(* Deterministic fault injection.

   Long tuning runs only stay robust if the failure paths — retry, penalty,
   quarantine, checkpoint recovery — are exercised in CI, and real faults
   (fuel exhaustion, traps on pathological genomes) are too rare and too
   input-dependent to rely on.  This module lets a test or the
   [INLTUNE_FAULTS] environment variable arm faults at precise call counts:
   "the 3rd evaluation raises", "the 7th returns corrupt output".

   A fault spec is [SITE:ACTION@K]: at the K-th (1-based) [check] of SITE,
   the given action is returned.  Several specs are comma-separated and may
   target the same site.  Sites are just strings; the evaluation stack checks
   the "eval" site once per fitness evaluation attempt.

   Counting is process-global and mutex-guarded, so it is safe to check from
   worker domains; with parallel evaluation the K-th check is whichever
   domain gets there K-th, which is deterministic only under [domains = 1]
   (what the fault-path tests use). *)

type action = Raise | Hang | Corrupt

exception Injected of string

let action_name = function Raise -> "raise" | Hang -> "hang" | Corrupt -> "corrupt"

let action_of_string = function
  | "raise" -> Some Raise
  | "hang" -> Some Hang
  | "corrupt" -> Some Corrupt
  | _ -> None

type spec = { site : string; action : action; at : int }

let spec_to_string s = Printf.sprintf "%s:%s@%d" s.site (action_name s.action) s.at

let parse_one str =
  match String.split_on_char ':' (String.trim str) with
  | [ site; rest ] when site <> "" -> (
    match String.split_on_char '@' rest with
    | [ act; k ] -> (
      match (action_of_string act, int_of_string_opt k) with
      | Some action, Some at when at >= 1 -> Ok { site; action; at }
      | Some _, _ -> Error (Printf.sprintf "bad call index %S (need an integer >= 1)" k)
      | None, _ -> Error (Printf.sprintf "unknown action %S (use raise, hang, or corrupt)" act))
    | _ -> Error (Printf.sprintf "bad fault spec %S (expected SITE:ACTION@K)" str))
  | _ -> Error (Printf.sprintf "bad fault spec %S (expected SITE:ACTION@K)" str)

let parse str =
  if String.trim str = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> ( match parse_one part with Ok s -> go (s :: acc) rest | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' str)

(* --- armed state --------------------------------------------------------- *)

let mu = Mutex.create ()
let specs : spec list ref = ref []
let calls_tbl : (string, int) Hashtbl.t = Hashtbl.create 4

(* Fast path: one plain read on the hot path when no faults are armed.  The
   flag is only flipped under [mu] and before any worker domain starts. *)
let armed = ref false

let install ss =
  Mutex.protect mu (fun () ->
      specs := ss;
      Hashtbl.reset calls_tbl;
      armed := ss <> [])

let clear () = install []

let active () = !armed

let env_var = "INLTUNE_FAULTS"

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some str -> (
    match parse str with
    | Ok ss ->
      install ss;
      Ok ()
    | Error msg -> Error (Printf.sprintf "%s: %s" env_var msg))

let check site =
  if not !armed then None
  else
    Mutex.protect mu (fun () ->
        let n = 1 + Option.value (Hashtbl.find_opt calls_tbl site) ~default:0 in
        Hashtbl.replace calls_tbl site n;
        List.find_map
          (fun s -> if s.site = site && s.at = n then Some s.action else None)
          !specs)

let calls site =
  Mutex.protect mu (fun () -> Option.value (Hashtbl.find_opt calls_tbl site) ~default:0)
