(* GA checkpoint files: append-only JSONL, one self-contained snapshot per
   generation.

   The snapshot carries everything the search needs to continue bit-identically
   from where it stopped: the population, the RNG's raw state (all stochastic
   choices flow through it), the fitness memo cache (so no evaluation is
   repeated), the quarantine set (so known-bad genotypes stay penalized), the
   generation history, and the running counters.  Floats are printed with
   "%.17g" so parsing them back yields the identical bit pattern, and the RNG
   state is carried as a decimal string because JSON numbers are doubles and
   would silently round an int64.

   Append-only JSONL is deliberate: a run killed mid-write leaves at most one
   truncated final line, and the loader walks backwards to the last line that
   parses — the previous generation's complete snapshot. *)

module Json = Inltune_obs.Json
module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event

let version = 1

type entry = {
  e_gen : int;
  e_best : float;
  e_mean : float;
  e_evals : int;
}

type state = {
  gen : int;                      (* last completed generation *)
  rng : int64;                    (* raw RNG state after this generation *)
  pop : int array array;
  best : int array;
  best_fitness : float;
  cache : (string * float) list;  (* genome key -> fitness, sorted by key *)
  quarantine : string list;       (* genome keys, sorted *)
  history : entry list;           (* oldest first *)
  evaluations : int;
  cache_hits : int;
  failures : int;
  retries : int;
  pop_size : int;                 (* echo of the run's params, for validation *)
  seed : int;
}

(* --- writing ------------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_into buf s;
  Buffer.add_char buf '"'

(* Exact round-trip: %.17g re-parses to the identical double.  Non-finite
   values are not JSON numbers, so carry them as strings ("inf", "nan"). *)
let add_float buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else add_str buf (if f > 0.0 then "inf" else if f < 0.0 then "-inf" else "nan")

let add_int_array buf a =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    a;
  Buffer.add_char buf ']'

let to_line s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"v\":%d,\"gen\":%d,\"rng\":" version s.gen);
  add_str buf (Int64.to_string s.rng);
  Buffer.add_string buf ",\"pop_size\":";
  Buffer.add_string buf (string_of_int s.pop_size);
  Buffer.add_string buf ",\"seed\":";
  Buffer.add_string buf (string_of_int s.seed);
  Buffer.add_string buf ",\"pop\":[";
  Array.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf ',';
      add_int_array buf g)
    s.pop;
  Buffer.add_string buf "],\"best\":";
  add_int_array buf s.best;
  Buffer.add_string buf ",\"best_fitness\":";
  add_float buf s.best_fitness;
  Buffer.add_string buf ",\"cache\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_float buf v)
    s.cache;
  Buffer.add_string buf "},\"quarantine\":[";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k)
    s.quarantine;
  Buffer.add_string buf "],\"history\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"gen\":%d,\"best\":" e.e_gen);
      add_float buf e.e_best;
      Buffer.add_string buf ",\"mean\":";
      add_float buf e.e_mean;
      Buffer.add_string buf (Printf.sprintf ",\"evals\":%d}" e.e_evals))
    s.history;
  Buffer.add_string buf
    (Printf.sprintf "],\"evaluations\":%d,\"cache_hits\":%d,\"failures\":%d,\"retries\":%d}"
       s.evaluations s.cache_hits s.failures s.retries);
  Buffer.contents buf

let write ~path s =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_line s);
      output_char oc '\n');
  Metric.incr (Metric.counter "ckpt.writes");
  if Trace.enabled () then
    Trace.emit "ckpt.write"
      ~fields:[ ("gen", Event.Int s.gen); ("cache", Event.Int (List.length s.cache)) ]

(* --- reading ------------------------------------------------------------- *)

let field name j = Json.member name j

let get_int name j =
  match Option.bind (field name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer %S" name)

let get_float name j =
  match field name j with
  | Some (Json.Num f) -> Ok f
  | Some (Json.Str s) -> (
    (* Non-finite values round-trip as strings ("inf", "-inf", "nan"). *)
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad float string %S in %S" s name))
  | _ -> Error (Printf.sprintf "missing or non-number %S" name)

let get_str name j =
  match Option.bind (field name j) Json.to_string with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S" name)

let ( let* ) = Result.bind

let int_array name j =
  match field name j with
  | Some (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | it :: rest -> (
        match Json.to_int it with
        | Some v -> go (v :: acc) rest
        | None -> Error (Printf.sprintf "non-integer element in %S" name))
    in
    go [] items
  | _ -> Error (Printf.sprintf "missing or non-array %S" name)

let of_json j =
  let* v = get_int "v" j in
  if v <> version then Error (Printf.sprintf "unsupported checkpoint version %d" v)
  else
    let* gen = get_int "gen" j in
    let* rng_s = get_str "rng" j in
    let* rng =
      match Int64.of_string_opt rng_s with
      | Some r -> Ok r
      | None -> Error (Printf.sprintf "bad rng state %S" rng_s)
    in
    let* pop_size = get_int "pop_size" j in
    let* seed = get_int "seed" j in
    let* pop =
      match field "pop" j with
      | Some (Json.List gs) ->
        let rec go acc i = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | Json.List items :: rest ->
            let rec genes acc' = function
              | [] -> Ok (Array.of_list (List.rev acc'))
              | it :: r -> (
                match Json.to_int it with
                | Some v -> genes (v :: acc') r
                | None -> Error "non-integer gene in \"pop\"")
            in
            let* g = genes [] items in
            go (g :: acc) (i + 1) rest
          | _ -> Error "non-array individual in \"pop\""
        in
        go [] 0 gs
      | _ -> Error "missing or non-array \"pop\""
    in
    let* best = int_array "best" j in
    let* best_fitness = get_float "best_fitness" j in
    let* cache =
      match field "cache" j with
      | Some (Json.Obj kvs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Num f) :: rest -> go ((k, f) :: acc) rest
          | (k, Json.Str s) :: rest -> (
            match float_of_string_opt s with
            | Some f -> go ((k, f) :: acc) rest
            | None -> Error (Printf.sprintf "bad cached fitness for %S" k))
          | (k, _) :: _ -> Error (Printf.sprintf "non-number cache entry %S" k)
        in
        go [] kvs
      | _ -> Error "missing or non-object \"cache\""
    in
    let* quarantine =
      match field "quarantine" j with
      | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Str s :: rest -> go (s :: acc) rest
          | _ -> Error "non-string quarantine key"
        in
        go [] items
      | _ -> Error "missing or non-array \"quarantine\""
    in
    let* history =
      match field "history" j with
      | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | it :: rest ->
            let* e_gen = get_int "gen" it in
            let* e_best = get_float "best" it in
            let* e_mean = get_float "mean" it in
            let* e_evals = get_int "evals" it in
            go ({ e_gen; e_best; e_mean; e_evals } :: acc) rest
        in
        go [] items
      | _ -> Error "missing or non-array \"history\""
    in
    let* evaluations = get_int "evaluations" j in
    let* cache_hits = get_int "cache_hits" j in
    let* failures = get_int "failures" j in
    let* retries = get_int "retries" j in
    Ok
      {
        gen; rng; pop; best; best_fitness; cache; quarantine; history;
        evaluations; cache_hits; failures; retries; pop_size; seed;
      }

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j

(* Last line that parses wins: a kill mid-append truncates only the final
   line, and every earlier line is a complete snapshot. *)
let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let rec last_valid = function
      | [] -> Error (Printf.sprintf "%s: no complete checkpoint record" path)
      | line :: rest ->
        if String.trim line = "" then last_valid rest
        else ( match of_line line with Ok s -> Ok s | Error _ -> last_valid rest)
    in
    last_valid !lines
