(** GA checkpoint files: append-only JSONL, one complete snapshot per line.

    Each snapshot carries everything needed to continue a search
    bit-identically: population, raw RNG state, fitness memo cache,
    quarantine set, generation history, and counters.  Floats round-trip
    exactly ("%.17g"); the RNG state travels as a decimal string (JSON
    numbers are doubles and would round an int64).  {!load} returns the last
    line that parses, so a run killed mid-append resumes from the previous
    complete generation.  Writes bump the ["ckpt.writes"] counter and emit a
    ["ckpt.write"] trace event. *)

(** One generation of history (mirrors the GA's progress records). *)
type entry = {
  e_gen : int;
  e_best : float;
  e_mean : float;
  e_evals : int;
}

type state = {
  gen : int;                      (** last completed generation *)
  rng : int64;                    (** raw RNG state after this generation *)
  pop : int array array;
  best : int array;
  best_fitness : float;
  cache : (string * float) list;  (** genome key -> fitness *)
  quarantine : string list;       (** genome keys never to re-evaluate *)
  history : entry list;           (** oldest first *)
  evaluations : int;
  cache_hits : int;
  failures : int;
  retries : int;
  pop_size : int;                 (** echo of the run's params, for validation *)
  seed : int;
}

(** Append one snapshot line (creating the file if needed). *)
val write : path:string -> state -> unit

(** Serialize one snapshot (exposed for tests). *)
val to_line : state -> string

(** Parse one snapshot line (exposed for tests). *)
val of_line : string -> (state, string) result

(** Load the most recent complete snapshot, skipping truncated/garbled
    lines.  [Error] when the file is missing or holds no valid record. *)
val load : path:string -> (state, string) result
