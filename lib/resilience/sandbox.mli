(** Sandboxed evaluation with bounded retry and deterministic backoff.

    Turns "this evaluation raised / returned garbage" into a value the
    caller can penalize, instead of an exception that aborts the search.
    Emits the ["<site>.retries"], ["<site>.failures"], and
    ["<site>.backoff_units"] counters, and a ["<site>.failure"] trace event
    on final failure. *)

type ok = {
  value : float;    (** the successful evaluation's result *)
  attempts : int;   (** total attempts made; 1 = first try succeeded *)
}

type failure = {
  f_site : string;
  f_reason : string;       (** printable cause of the last attempt's failure *)
  f_attempts : int;        (** total attempts made, all failed *)
  f_backoff_units : int;   (** simulated backoff work units consumed *)
}

val failure_to_string : failure -> string

(** Deterministic exponential backoff schedule: [2^(attempt-1)] simulated
    work units after the given (1-based) failed attempt, capped. *)
val backoff_units : attempt:int -> int

(** A successful generic evaluation: the result and how many attempts it
    took (1 = first try). *)
type 'a outcome = { result : 'a; o_attempts : int }

(** [run ~site f] is the generic sandbox {!protect} is built on: it retries
    any computation, not just float-valued fitness.  [corrupt] may reject a
    successful result as garbage (retried like an exception; default: never).
    Exceptions for which [classify] holds (default: all) are transient and
    retried up to [max_retries] times; exceptions [classify] rejects
    propagate untouched — cancellation and shutdown signals must escape the
    sandbox, not be retried.  Emits the same ["<site>.retries"] /
    ["<site>.failures"] / ["<site>.backoff_units"] counters and
    ["<site>.failure"] trace event as {!protect}. *)
val run :
  ?max_retries:int ->
  ?classify:(exn -> bool) ->
  ?corrupt:('a -> string option) ->
  site:string ->
  (unit -> 'a) ->
  ('a outcome, failure) result

(** [protect ~site f] runs [f ()]; a non-finite result is treated as corrupt
    output and an exception for which [classify] holds (default: every
    exception) as a transient failure — both are retried up to [max_retries]
    times (default 1).  Exceptions [classify] rejects propagate to the
    caller.  The result is never an exception for sandboxed causes: either
    the value with its attempt count, or a {!failure} describing why every
    attempt failed. *)
val protect :
  ?max_retries:int ->
  ?classify:(exn -> bool) ->
  site:string ->
  (unit -> float) ->
  (ok, failure) result
