(* Sandboxed evaluation with bounded retry.

   One fitness evaluation of a pathological genome can exhaust its fuel
   budget, trap, or blow the stack; a days-long GA run must treat that as
   data about the genome, not as a reason to die.  [protect] runs one
   evaluation attempt, classifies any exception as sandboxable or not,
   retries transient failures a bounded number of times with a deterministic
   backoff, and reports the final outcome as a value instead of a raise.

   Backoff is counted in simulated work units (doubling per attempt), not
   wall-clock sleeps: the tuning loop is deterministic and the "time" that
   matters is the simulator's, so the units are recorded — in the returned
   outcome and the "<site>.backoff_units" counter — rather than slept.

   Corrupt output is a failure too: a fitness must be a finite float, and a
   NaN/infinity (from injected faults or a broken objective) would otherwise
   poison every comparison downstream of the memo cache. *)

module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event

type ok = {
  value : float;
  attempts : int;  (* 1 = first try succeeded *)
}

type failure = {
  f_site : string;
  f_reason : string;   (* printable cause of the last attempt's failure *)
  f_attempts : int;    (* total attempts made, all failed *)
  f_backoff_units : int;  (* simulated work units of backoff consumed *)
}

let failure_to_string f =
  Printf.sprintf "%s failed after %d attempt(s): %s" f.f_site f.f_attempts f.f_reason

(* Deterministic exponential backoff: 1, 2, 4, ... simulated units after
   attempt 1, 2, 3, ...; capped so a large retry budget cannot overflow. *)
let backoff_units ~attempt = 1 lsl min 20 (max 0 (attempt - 1))

let default_classify _ = true
let no_corrupt _ = None

(* The generic engine: retries any computation, not just float-valued
   fitness evaluations.  [corrupt] inspects a successful result and may
   reject it as garbage (retried like an exception); [classify] decides
   which exceptions are sandboxable — anything it rejects propagates to the
   caller untouched (e.g. a cooperative-cancellation exception must escape,
   not be retried).  The serve daemon wraps whole requests in this. *)
type 'a outcome = { result : 'a; o_attempts : int }

let run ?(max_retries = 1) ?(classify = default_classify) ?(corrupt = no_corrupt) ~site f =
  let c_retries = Metric.counter (site ^ ".retries") in
  let c_failures = Metric.counter (site ^ ".failures") in
  let c_backoff = Metric.counter (site ^ ".backoff_units") in
  let max_attempts = 1 + max 0 max_retries in
  let rec attempt n backoff =
    let outcome =
      match f () with
      | v -> ( match corrupt v with None -> Ok v | Some reason -> Error reason)
      | exception e when classify e -> Error (Printexc.to_string e)
    in
    match outcome with
    | Ok result -> Ok { result; o_attempts = n }
    | Error _ when n < max_attempts ->
      let units = backoff_units ~attempt:n in
      Metric.incr c_retries;
      Metric.add c_backoff units;
      attempt (n + 1) (backoff + units)
    | Error reason ->
      Metric.incr c_failures;
      let fl = { f_site = site; f_reason = reason; f_attempts = n; f_backoff_units = backoff } in
      if Trace.enabled () then
        Trace.emit (site ^ ".failure")
          ~fields:
            [
              ("reason", Event.Str reason);
              ("attempts", Event.Int n);
              ("backoff_units", Event.Int backoff);
            ];
      Error fl
  in
  attempt 1 0

(* Float-valued fitness evaluation: exactly the historical behavior —
   non-finite results are corrupt output. *)
let protect ?max_retries ?classify ~site f =
  let corrupt v =
    if Float.is_finite v then None else Some (Printf.sprintf "corrupt output %h" v)
  in
  match run ?max_retries ?classify ~corrupt ~site f with
  | Ok o -> Ok { value = o.result; attempts = o.o_attempts }
  | Error f -> Error f
