(** Process-wide named counters (lock-free) and histograms (mutex-guarded).
    Values accumulate for the life of the process and are flushed into the
    trace as "counter"/"histogram" events when the sink closes. *)

type counter

(** Get or create the counter registered under [name]. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

type histogram

(** Get or create the histogram registered under [name].  Buckets are
    powers of two: bucket 0 holds values < 1, bucket [i] holds
    [[2^(i-1), 2^i)]. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit

type hist_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : int array;
  (** Exact nearest-rank percentiles over every observation so far;
      [nan] when the histogram is empty. *)
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

val snapshot : histogram -> hist_snapshot

(** Sorted by name. *)
val counters_snapshot : unit -> (string * int) list

val histograms_snapshot : unit -> hist_snapshot list

(** Tests only: forget every registered metric. *)
val reset_all : unit -> unit
