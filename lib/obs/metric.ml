(* Process-wide named counters and histograms.

   Counters are lock-free (one Atomic.t each) so hot paths — memo-cache hits
   during GA fitness evaluation, compiles across worker domains — can bump
   them unconditionally.  Histograms take a per-histogram mutex; they are
   meant for per-compile / per-method observations, not per-instruction.

   Values accumulate for the life of the process and are flushed into the
   trace as "counter" / "histogram" events when the sink is closed (see
   [Trace.shutdown]). *)

type counter = { cname : string; cell : int Atomic.t }

let hist_buckets = 32

type histogram = {
  hname : string;
  mu : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  (* log2 buckets: bucket 0 holds values < 1, bucket i (i >= 1) holds
     values in [2^(i-1), 2^i); the last bucket is a catch-all. *)
  buckets : int array;
  (* Every observation, kept so snapshots can report exact percentiles.
     Histograms record per-compile / per-simulation values — thousands per
     run, not millions — so unbounded retention is cheap and honest. *)
  samples : float Inltune_support.Vec.t;
}

let registry_mu = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n : int)
let value c = Atomic.get c.cell
let counter_name c = c.cname

let histogram name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            hname = name;
            mu = Mutex.create ();
            count = 0;
            sum = 0.0;
            min_v = infinity;
            max_v = neg_infinity;
            buckets = Array.make hist_buckets 0;
            samples = Inltune_support.Vec.create ();
          }
        in
        Hashtbl.add histograms name h;
        h)

let bucket_of v =
  if Float.is_finite v && v >= 1.0 then
    min (hist_buckets - 1) (1 + Float.to_int (Float.log2 v))
  else 0

let observe h v =
  Mutex.protect h.mu (fun () ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      Inltune_support.Vec.push h.samples v)

type hist_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : int array;
  (* Exact nearest-rank percentiles over every observation; [nan] when the
     histogram is empty. *)
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

let snapshot h =
  Mutex.protect h.mu (fun () ->
      let pct =
        if h.count = 0 then fun _ -> Float.nan
        else
          let xs = Inltune_support.Vec.to_array h.samples in
          Inltune_support.Stats.percentile xs
      in
      {
        hs_name = h.hname;
        hs_count = h.count;
        hs_sum = h.sum;
        hs_min = h.min_v;
        hs_max = h.max_v;
        hs_buckets = Array.copy h.buckets;
        hs_p50 = pct 50.0;
        hs_p90 = pct 90.0;
        hs_p99 = pct 99.0;
      })

let counters_snapshot () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters [])
  |> List.sort compare

let histograms_snapshot () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold (fun _ h acc -> snapshot h :: acc) histograms [])
  |> List.sort (fun a b -> compare a.hs_name b.hs_name)

(* Tests only: forget every registered metric. *)
let reset_all () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset histograms)

(* [lib/support] sits below this library and cannot name the registry, so
   the pool's counters ("pool.tasks_stolen") arrive through a hook installed
   once, when this module is linked. *)
let () = Inltune_support.Pool.set_counter_hook (fun name n -> add (counter name) n)
