(* Minimal JSON reader for trace files.  The tracer only ever writes flat
   objects of scalars, but the parser accepts full JSON (nested objects,
   arrays) so hand-edited or foreign traces don't crash the summarizer.
   No external dependency: the toolchain image has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then error st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.src then error st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.src then error st "bad \\u escape";
         let hex = String.sub st.src st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u escape"
         in
         (* Our own writer only escapes control characters; decode the BMP
            codepoint as UTF-8 so round-trips are lossless for those. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> error st "unknown escape");
      go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error st ("bad number " ^ s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then (st.pos <- st.pos + 1; Obj [])
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; members ((k, v) :: acc)
        | Some '}' -> st.pos <- st.pos + 1; Obj (List.rev ((k, v) :: acc))
        | _ -> error st "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then (st.pos <- st.pos + 1; List [])
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; items (v :: acc)
        | Some ']' -> st.pos <- st.pos + 1; List (List.rev (v :: acc))
        | _ -> error st "expected ',' or ']'"
      in
      items []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing input" else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (Float.to_int f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

(* --- writer -------------------------------------------------------------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  (* Integral values print as integers so ids and counters round-trip
     without a spurious ".";  everything else uses enough digits to
     reparse to the same float. *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let encode v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      if Float.is_finite f then Buffer.add_string buf (number_to_string f)
      else Buffer.add_string buf "null" (* JSON has no nan/inf *)
    | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri (fun i v -> if i > 0 then Buffer.add_char buf ','; go v) vs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf
