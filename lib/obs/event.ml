(* A trace event: a name plus flat, typed fields.  Events are what every
   instrumented layer produces — one per inlining decision, optimizer pass,
   compile, GA generation — and what sinks serialize, one JSONL line or text
   line each.  The schema is deliberately flat (no nesting) so the summary
   aggregator and external tools (jq, pandas) can consume it directly. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  ts : float;  (* seconds since the trace was installed *)
  name : string;
  fields : (string * value) list;
}

(* JSON string escaping per RFC 8259: control characters, quote, backslash. *)
let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* NaN/infinity are not JSON; a trace must stay parseable no matter what
       the instrumented code computed. *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

(* One JSON object per event: {"ts":..., "ev":..., <fields>}.  No newline. *)
let to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f,\"ev\":\"" e.ts);
  escape_into buf e.name;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      escape_into buf k;
      Buffer.add_string buf "\":";
      add_value buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let value_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

(* Human-readable form for the text sink: "[12.345678] ev k=v k=v". *)
let to_text e =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "[%10.6f] %-18s" e.ts e.name);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf (value_to_string v))
    e.fields;
  Buffer.contents buf

let find e k = List.assoc_opt k e.fields

let int_field e k = match find e k with Some (Int n) -> Some n | _ -> None
let str_field e k = match find e k with Some (Str s) -> Some s | _ -> None
