(** Structured trace events: a name plus flat, typed fields.  One event per
    inlining decision, optimizer pass, compile, VM iteration, GA generation;
    sinks serialize each as one JSONL or text line. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  ts : float;  (** seconds since the trace was installed *)
  name : string;
  fields : (string * value) list;
}

(** One JSON object, no trailing newline: [{"ts":..,"ev":..,<fields>}].
    Non-finite floats serialize as [null] so the line stays parseable. *)
val to_json : t -> string

(** Human-readable single line for the text sink. *)
val to_text : t -> string

val value_to_string : value -> string

val find : t -> string -> value option
val int_field : t -> string -> int option
val str_field : t -> string -> string option
