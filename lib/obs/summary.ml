(* Aggregate a JSONL trace back into paper-style tables: which heuristic
   test accepted/rejected call sites (Fig. 3/4 vocabulary), where compile
   cycles went per tier, how optimizer passes spent their time, and how GA
   fitness evolved per generation.  This is the read side of the schema the
   instrumented layers write; it deliberately works on strings so it needs
   no dependency on the opt/vm/ga libraries. *)

module Table = Inltune_support.Table

type record = { ts : float; ev : string; json : Json.t }

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok json -> (
    match (Json.member "ev" json, Json.member "ts" json) with
    | Some (Json.Str ev), Some (Json.Num ts) -> Ok { ts; ev; json }
    | _ -> Error "missing \"ev\" or \"ts\"")

(* Returns the parsed records plus the count of malformed lines (a trace cut
   off mid-write must still summarize). *)
let of_lines lines =
  let bad = ref 0 in
  let recs =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match of_line line with
          | Ok r -> Some r
          | Error _ ->
            incr bad;
            None)
      lines
  in
  (recs, !bad)

let load_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  of_lines (List.rev !lines)

(* --- field helpers ------------------------------------------------------ *)

let str r k = Option.bind (Json.member k r.json) Json.to_string
let num r k = Option.bind (Json.member k r.json) Json.to_float
let int_f r k = Option.bind (Json.member k r.json) Json.to_int
let bool_f r k = Option.bind (Json.member k r.json) Json.to_bool

let select ev recs = List.filter (fun r -> r.ev = ev) recs

(* Which heuristic parameter (paper Table 1) governs each decision reason;
   mechanism-level reasons (recursion guard, space cap, custom policy) have
   no tunable parameter. *)
let parameter_of_reason = function
  | "always_inline" -> "ALWAYS_INLINE_SIZE"
  | "callee_too_big" -> "CALLEE_MAX_SIZE"
  | "depth_exceeded" -> "MAX_INLINE_DEPTH"
  | "caller_too_big" -> "CALLER_MAX_SIZE"
  | "all_tests_pass" -> "(all Fig. 3 tests)"
  | "hot_accept" | "hot_callee_too_big" -> "HOT_CALLEE_MAX_SIZE"
  | _ -> "-"

(* --- aggregations (exposed for tests) ----------------------------------- *)

(* reason -> (accepted, count), sorted by count descending. *)
let inline_reasons recs =
  let tbl : (string, bool * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match (str r "reason", bool_f r "accept") with
      | Some reason, Some accept ->
        let _, n = Option.value (Hashtbl.find_opt tbl reason) ~default:(accept, 0) in
        Hashtbl.replace tbl reason (accept, n + 1)
      | _ -> ())
    (select "inline.decision" recs);
  Hashtbl.fold (fun reason (acc, n) l -> (reason, acc, n) :: l) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

(* (gen, best, mean, evals) in generation order. *)
let ga_generations recs =
  List.filter_map
    (fun r ->
      match (int_f r "gen", num r "best", num r "mean", int_f r "evals") with
      | Some g, Some b, Some m, Some e -> Some (g, b, m, e)
      | _ -> None)
    (select "ga.generation" recs)

(* tier -> (compiles, recompiles, cycles, code_bytes). *)
let compile_tiers recs =
  let tbl : (string, int * int * int * int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      match str r "tier" with
      | None -> ()
      | Some tier ->
        let c, rc, cy, cb =
          Option.value (Hashtbl.find_opt tbl tier) ~default:(0, 0, 0, 0)
        in
        let recompile = Option.value (bool_f r "recompile") ~default:false in
        Hashtbl.replace tbl tier
          ( c + 1,
            (rc + if recompile then 1 else 0),
            cy + Option.value (int_f r "cycles") ~default:0,
            cb + Option.value (int_f r "code_bytes") ~default:0 ))
    (select "vm.compile" recs);
  Hashtbl.fold (fun tier v l -> (tier, v) :: l) tbl [] |> List.sort compare

(* pass -> (runs, transforms, total_us, size_delta, sites_inlined).
   [size_delta] sums size_out - size_in over the pass's spans;
   [sites_inlined] attributes inlined call sites to the pass (the inliner
   strategies each report their own).  Spans from traces written before
   those fields existed contribute 0. *)
let pass_totals recs =
  let tbl : (string, int * int * float * int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let prefix = "opt.pass." in
      let pn = String.length prefix in
      if String.length r.ev > pn && String.sub r.ev 0 pn = prefix then begin
        let pass = String.sub r.ev pn (String.length r.ev - pn) in
        let runs, tr, us, ds, inl =
          Option.value (Hashtbl.find_opt tbl pass) ~default:(0, 0, 0.0, 0, 0)
        in
        let dsize =
          match (int_f r "size_in", int_f r "size_out") with
          | Some si, Some so -> so - si
          | _ -> 0
        in
        Hashtbl.replace tbl pass
          ( runs + 1,
            tr + Option.value (int_f r "transforms") ~default:0,
            us +. Option.value (num r "dur_us") ~default:0.0,
            ds + dsize,
            inl + Option.value (int_f r "sites_inlined") ~default:0 )
      end)
    recs;
  Hashtbl.fold (fun pass v l -> (pass, v) :: l) tbl []
  |> List.sort (fun (_, (_, _, a, _, _)) (_, (_, _, b, _, _)) -> compare b a)

(* prog -> (measures, mean total, mean running, mean compile cycles). *)
let measure_by_prog recs =
  let tbl : (string, int * float * float * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match str r "prog" with
      | None -> ()
      | Some prog ->
        let n, t, ru, c =
          Option.value (Hashtbl.find_opt tbl prog) ~default:(0, 0.0, 0.0, 0.0)
        in
        Hashtbl.replace tbl prog
          ( n + 1,
            t +. Option.value (num r "total_cycles") ~default:0.0,
            ru +. Option.value (num r "running_cycles") ~default:0.0,
            c +. Option.value (num r "compile_cycles") ~default:0.0 ))
    (select "vm.measure" recs);
  Hashtbl.fold (fun prog v l -> (prog, v) :: l) tbl [] |> List.sort compare

(* name -> last reported value (counters accumulate, so last wins). *)
let counter_values recs =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match (str r "name", int_f r "value") with
      | Some name, Some v -> Hashtbl.replace tbl name v
      | _ -> ())
    (select "counter" recs);
  Hashtbl.fold (fun name v l -> (name, v) :: l) tbl [] |> List.sort compare

(* name -> (count, sum, min, max, mean, p50, p90, p99); last snapshot wins,
   like counters.  Percentile fields are absent in pre-percentile traces and
   reported as nan. *)
let histogram_values recs =
  let tbl : (string, int * float * float * float * float * float * float * float) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun r ->
      match (str r "name", int_f r "count") with
      | Some name, Some count ->
        let f k = Option.value (num r k) ~default:Float.nan in
        Hashtbl.replace tbl name
          (count, f "sum", f "min", f "max", f "mean", f "p50", f "p90", f "p99")
      | _ -> ())
    (select "histogram" recs);
  Hashtbl.fold (fun name v l -> (name, v) :: l) tbl [] |> List.sort compare

(* path -> (label, depth, calls, total_us, self_us, p50_us, p90_us, p99_us,
   max_us), in path (= tree) order. *)
let prof_nodes recs =
  List.filter_map
    (fun r ->
      match (str r "path", str r "label", int_f r "depth", int_f r "calls") with
      | Some path, Some label, Some depth, Some calls ->
        let f k = Option.value (num r k) ~default:Float.nan in
        Some
          ( path,
            ( label,
              depth,
              calls,
              f "total_us",
              f "self_us",
              f "p50_us",
              f "p90_us",
              f "p99_us",
              f "max_us" ) )
      | _ -> None)
    (select "prof.node" recs)
  |> List.sort compare

(* Folded-stack lines for flamegraph.pl / inferno, from the flushed profile
   nodes: "path;to;span <self-us>", nodes rounding to 0 omitted. *)
let folded recs =
  List.filter_map
    (fun (path, (_, _, _, _, self_us, _, _, _, _)) ->
      if Float.is_finite self_us && Float.round self_us > 0.0 then
        Some (Printf.sprintf "%s %d" path (Float.to_int (Float.round self_us)))
      else None)
    (prof_nodes recs)

(* Whether the trace holds any real events, as opposed to only the
   counter/histogram/profile snapshots every sink flushes on close.
   trace-summary uses this to say "no events" instead of printing a
   counters-only report that looks like a run happened. *)
let has_events recs =
  List.exists (fun r -> r.ev <> "counter" && r.ev <> "histogram" && r.ev <> "prof.node") recs

(* --- tables ------------------------------------------------------------- *)

let pct part whole =
  if whole = 0 then "-" else Printf.sprintf "%5.1f%%" (100.0 *. Float.of_int part /. Float.of_int whole)

let inline_table recs =
  let reasons = inline_reasons recs in
  if reasons = [] then None
  else begin
    let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 reasons in
    let t =
      Table.create ~title:"inlining decisions by reason"
        ~header:[| "reason"; "outcome"; "governing parameter"; "sites"; "share" |]
        ~aligns:[| Table.Left; Table.Left; Table.Left; Table.Right; Table.Right |]
    in
    List.iter
      (fun (reason, accepted, n) ->
        Table.add_row t
          [|
            reason;
            (if accepted then "inline" else "reject");
            parameter_of_reason reason;
            string_of_int n;
            pct n total;
          |])
      reasons;
    Table.add_rule t;
    Table.add_row t [| "total"; ""; ""; string_of_int total; "" |];
    Some t
  end

let compile_table recs =
  let tiers = compile_tiers recs in
  if tiers = [] then None
  else begin
    let t =
      Table.create ~title:"compile-time breakdown by tier"
        ~header:[| "tier"; "compiles"; "recompiles"; "cycles"; "code bytes"; "cycles/compile" |]
        ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right |]
    in
    let tot_cycles =
      List.fold_left (fun acc (_, (_, _, cy, _)) -> acc + cy) 0 tiers
    in
    List.iter
      (fun (tier, (c, rc, cy, cb)) ->
        Table.add_row t
          [|
            tier;
            string_of_int c;
            string_of_int rc;
            string_of_int cy;
            string_of_int cb;
            string_of_int (if c = 0 then 0 else cy / c);
          |])
      tiers;
    Table.add_rule t;
    Table.add_row t [| "total"; ""; ""; string_of_int tot_cycles; ""; "" |];
    Some t
  end

let pass_table recs =
  let passes = pass_totals recs in
  if passes = [] then None
  else begin
    let t =
      Table.create ~title:"optimizer pass totals"
        ~header:
          [| "pass"; "runs"; "transforms"; "inlined"; "size delta"; "total ms"; "us/run" |]
        ~aligns:
          [| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
             Table.Right |]
    in
    List.iter
      (fun (pass, (runs, tr, us, ds, inl)) ->
        Table.add_row t
          [|
            pass;
            string_of_int runs;
            string_of_int tr;
            string_of_int inl;
            Printf.sprintf "%+d" ds;
            Printf.sprintf "%.2f" (us /. 1000.0);
            Printf.sprintf "%.1f" (us /. Float.of_int (max 1 runs));
          |])
      passes;
    Some t
  end

let ga_table recs =
  let gens = ga_generations recs in
  if gens = [] then None
  else begin
    let first_best = match gens with (_, b, _, _) :: _ -> b | [] -> 1.0 in
    let t =
      Table.create ~title:"GA fitness by generation"
        ~header:[| "gen"; "best"; "mean"; "evals"; "best vs gen 0" |]
        ~aligns:[| Table.Right; Table.Right; Table.Right; Table.Right; Table.Left |]
    in
    List.iter
      (fun (g, b, m, e) ->
        Table.add_row t
          [|
            string_of_int g;
            Printf.sprintf "%.4f" b;
            Printf.sprintf "%.4f" m;
            string_of_int e;
            Table.bar (if first_best = 0.0 then 1.0 else b /. first_best);
          |])
      gens;
    Some t
  end

let measure_table recs =
  let rows = measure_by_prog recs in
  if rows = [] then None
  else begin
    let t =
      Table.create ~title:"VM measurements by program (means over the trace)"
        ~header:[| "program"; "measures"; "total"; "running"; "compile" |]
        ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
    in
    List.iter
      (fun (prog, (n, tot, run, comp)) ->
        let mean v = Printf.sprintf "%.0f" (v /. Float.of_int (max 1 n)) in
        Table.add_row t [| prog; string_of_int n; mean tot; mean run; mean comp |])
      rows;
    Some t
  end

let fmt_or_dash v fmt = if Float.is_finite v then Printf.sprintf fmt v else "-"

let histogram_table recs =
  let rows = histogram_values recs in
  if rows = [] then None
  else begin
    let t =
      Table.create ~title:"histograms"
        ~header:[| "histogram"; "count"; "sum"; "min"; "p50"; "p90"; "p99"; "max"; "mean" |]
        ~aligns:
          [|
            Table.Left;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
          |]
    in
    List.iter
      (fun (name, (count, sum, min_v, max_v, mean, p50, p90, p99)) ->
        let f v = fmt_or_dash v "%.2f" in
        Table.add_row t
          [| name; string_of_int count; f sum; f min_v; f p50; f p90; f p99; f max_v; f mean |])
      rows;
    Some t
  end

let profile_table recs =
  let rows = prof_nodes recs in
  if rows = [] then None
  else begin
    let t =
      Table.create ~title:"profile (wall time, self vs. cumulative)"
        ~header:[| "span"; "calls"; "total ms"; "self ms"; "p50 us"; "p90 us"; "p99 us"; "max us" |]
        ~aligns:
          [|
            Table.Left;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
            Table.Right;
          |]
    in
    List.iter
      (fun (_, (label, depth, calls, total_us, self_us, p50, p90, p99, max_us)) ->
        let ms v = fmt_or_dash (v /. 1e3) "%.3f" in
        let us v = fmt_or_dash v "%.1f" in
        Table.add_row t
          [|
            String.make (2 * depth) ' ' ^ label;
            string_of_int calls;
            ms total_us;
            ms self_us;
            us p50;
            us p90;
            us p99;
            us max_us;
          |])
      rows;
    Some t
  end

let counter_table recs =
  let rows = counter_values recs in
  if rows = [] then None
  else begin
    let t =
      Table.create ~title:"counters"
        ~header:[| "counter"; "value" |]
        ~aligns:[| Table.Left; Table.Right |]
    in
    List.iter (fun (name, v) -> Table.add_row t [| name; string_of_int v |]) rows;
    Some t
  end

(* Every table with data, in report order. *)
let tables recs =
  List.filter_map
    (fun f -> f recs)
    [
      inline_table;
      pass_table;
      compile_table;
      measure_table;
      ga_table;
      profile_table;
      histogram_table;
      counter_table;
    ]
