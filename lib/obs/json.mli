(** Minimal JSON reader for trace files (the toolchain image has no yojson).
    Accepts full JSON; the accessors cover the flat scalar objects the tracer
    writes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
val to_float : t -> float option

(** [Some] only for numbers with no fractional part. *)
val to_int : t -> int option

val to_string : t -> string option
val to_bool : t -> bool option

(** Compact one-line JSON encoding.  Integral numbers print without a
    fraction part, strings are fully escaped, and non-finite numbers (which
    JSON cannot represent) encode as [null].  [parse (encode v)] succeeds
    for every finite [v]; the serve protocol's wire format is built on
    this. *)
val encode : t -> string
