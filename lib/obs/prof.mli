(** Hierarchical self-profiler built on the span/metric backbone.

    Spans nest per domain: [span "fitness.eval" (fun () -> span "vm.compile"
    ...)] attributes wall time to the path ["fitness.eval;vm.compile"], and a
    snapshot reports both cumulative and {e self} time (cumulative minus the
    time of direct children) plus exact nearest-rank percentiles over the
    per-call durations.

    Cost discipline matches {!Trace}: when disabled (the default) {!span} is
    one [Atomic.get] and a direct call of the thunk — no clock reads, no
    allocation — so leaving instrumentation in hot paths is free.  Profiling
    must never feed back into measurements: everything here is wall-clock
    bookkeeping on the side, and the simulator's cycle counts are unaffected
    whether profiling is on or off.

    Samples are retained unbounded per node for exact percentiles; the
    profiler is opt-in and span counts are per-compile / per-simulation
    (thousands, not millions), so this is cheap.

    Paths use [';'] as the separator, which makes {!folded} output directly
    consumable by [flamegraph.pl] / inferno.  When a trace sink closes, every
    node is flushed as a ["prof.node"] event via a {!Trace.add_flush_hook}
    registered at module initialization. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [span label f] runs [f], attributing its wall time to [label] nested
    under the calling domain's current span path.  Exception-safe: the path
    is restored even if [f] raises (the aborted span is not recorded).
    [on_time dt] is invoked with the duration when profiling is enabled —
    a side channel for callers that want the same clock reading (e.g. the
    VM accumulating compile wall time) without a second [gettimeofday].
    Disabled: exactly [f ()]. *)
val span : ?on_time:(float -> unit) -> string -> (unit -> 'a) -> 'a

type node_snapshot = {
  n_path : string;  (** semicolon-joined span path, e.g. ["fitness.eval;vm.compile"] *)
  n_label : string;  (** last component of the path *)
  n_depth : int;  (** 0 for root spans *)
  n_calls : int;
  n_total_s : float;  (** cumulative wall seconds *)
  n_self_s : float;  (** cumulative minus direct children, clamped at 0 *)
  n_p50_s : float;  (** exact nearest-rank percentiles of per-call durations *)
  n_p90_s : float;
  n_p99_s : float;
  n_max_s : float;
}

(** All nodes in path order (parents before their children). *)
val snapshot : unit -> node_snapshot list

(** Folded-stack lines (["path;to;span <self-µs>"]) for flamegraph.pl /
    inferno.  Nodes whose self time rounds to 0 µs are omitted. *)
val folded : unit -> string list

(** Render the snapshot as an indented profile table. *)
val table : unit -> Inltune_support.Table.t

(** Print the profile table to [oc]; a one-liner when nothing was recorded. *)
val report : out_channel -> unit

(** Arrange for {!report} on stderr at process exit (idempotent). *)
val report_at_exit : unit -> unit

(** Forget all recorded nodes (the enabled flag is untouched). *)
val reset : unit -> unit

(** [INLTUNE_PROFILE=1] (any non-empty value except ["0"]) enables profiling
    and schedules an exit report on stderr. *)
val init_from_env : unit -> unit
