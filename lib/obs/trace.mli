(** The process-global trace.  With no sink installed, {!enabled} is one ref
    read and {!emit}/{!span} cost nothing measurable — instrumented code must
    build field lists only after checking [enabled ()] (or inside [span]'s
    [post] callback).

    The flag and sink are shared across domains (sinks lock internally).
    Install a sink up front — CLI flag or [INLTUNE_TRACE] — then run; sink
    installation is not meant to race with emission. *)

val enabled : unit -> bool

(** Wall-clock seconds ([Unix.gettimeofday]). *)
val now : unit -> float

(** Install a sink, closing (and metric-flushing) any previous one.  Resets
    the trace epoch; registers an [at_exit] hook that flushes and closes. *)
val install : Sink.t -> unit

(** Flush metrics into the trace, close the sink, return to disabled. *)
val disable : unit -> unit

(** [install (Sink.jsonl path)]. *)
val to_file : string -> unit

(** [install (Sink.text oc)]. *)
val to_channel : out_channel -> unit

(** [INLTUNE_TRACE=path] writes JSONL to [path]; [INLTUNE_TRACE=-] streams
    text to stderr; unset/empty leaves tracing disabled. *)
val init_from_env : unit -> unit

val emit : ?fields:(string * Event.value) list -> string -> unit

(** Emit accumulated counters/histograms as "counter"/"histogram" events
    (also done automatically when the sink closes). *)
val flush_metrics : unit -> unit

(** Register a hook run at every {!flush_metrics} (with the trace still
    enabled), letting higher modules emit their own snapshot events — e.g.
    {!Prof}'s ["prof.node"] records.  Hooks run in registration order. *)
val add_flush_hook : (unit -> unit) -> unit

val flush : unit -> unit

(** [span name f] times [f] and emits one event stamped at the span's start,
    with [post result] fields plus ["dur_us"].  Disabled: just [f ()]. *)
val span : ?post:('a -> (string * Event.value) list) -> string -> (unit -> 'a) -> 'a
