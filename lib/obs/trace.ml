(* The global trace: one process-wide sink plus an enabled flag.

   Cost discipline: when no sink is installed, [enabled] is a single ref
   read, [emit] returns immediately, and [span] runs its thunk directly —
   instrumented code must build its field lists only after checking
   [enabled ()] (or behind [span]'s [post] callback) so a disabled trace
   costs nothing measurable.

   The flag and sink are shared across domains; sinks do their own locking.
   Installation/teardown is not meant to race with emission — install a sink
   up front (CLI flag or INLTUNE_TRACE), run, then exit. *)

let sink = ref Sink.null
let enabled_flag = ref false
let t0 = ref 0.0

let enabled () = !enabled_flag

let now () = Unix.gettimeofday ()

let emit_at ts name fields =
  if !enabled_flag then !sink.Sink.emit { Event.ts; name; fields }

let emit ?(fields = []) name = emit_at (now () -. !t0) name fields

(* Modules above this one in the library (e.g. Prof) register hooks that
   emit their own snapshot events whenever metrics are flushed.  Hooks run
   in registration order, which module initialization makes topological. *)
let flush_hooks : (unit -> unit) list ref = ref []
let add_flush_hook f = flush_hooks := !flush_hooks @ [ f ]

(* Flush accumulated counters/histograms into the trace so a summary sees
   them even though they are process-global rather than per-event. *)
let flush_metrics () =
  if !enabled_flag then begin
    List.iter
      (fun (name, v) ->
        emit "counter" ~fields:[ ("name", Event.Str name); ("value", Event.Int v) ])
      (Metric.counters_snapshot ());
    List.iter
      (fun (s : Metric.hist_snapshot) ->
        if s.Metric.hs_count > 0 then
          emit "histogram"
            ~fields:
              [
                ("name", Event.Str s.Metric.hs_name);
                ("count", Event.Int s.Metric.hs_count);
                ("sum", Event.Float s.Metric.hs_sum);
                ("min", Event.Float s.Metric.hs_min);
                ("max", Event.Float s.Metric.hs_max);
                ("mean", Event.Float (s.Metric.hs_sum /. Float.of_int s.Metric.hs_count));
                ("p50", Event.Float s.Metric.hs_p50);
                ("p90", Event.Float s.Metric.hs_p90);
                ("p99", Event.Float s.Metric.hs_p99);
              ])
      (Metric.histograms_snapshot ());
    List.iter (fun f -> f ()) !flush_hooks
  end

let shutdown () =
  if !enabled_flag then begin
    flush_metrics ();
    let s = !sink in
    enabled_flag := false;
    sink := Sink.null;
    s.Sink.flush ();
    s.Sink.close ()
  end

let exit_hook = ref false

let install s =
  shutdown ();  (* close any previous sink, flushing its metrics *)
  sink := s;
  t0 := now ();
  enabled_flag := true;
  if not !exit_hook then begin
    exit_hook := true;
    at_exit shutdown
  end

let disable = shutdown

let to_file path = install (Sink.jsonl path)
let to_channel oc = install (Sink.text oc)

(* INLTUNE_TRACE=path writes JSONL to path; INLTUNE_TRACE=- streams
   human-readable events to stderr. *)
let init_from_env () =
  match Sys.getenv_opt "INLTUNE_TRACE" with
  | None | Some "" -> ()
  | Some "-" -> to_channel stderr
  | Some path -> to_file path

let flush () = !sink.Sink.flush ()

(* Time [f] and emit one event carrying [post result] plus the duration.
   The event's timestamp is the span's start.  Disabled: just [f ()]. *)
let span ?post name f =
  if not !enabled_flag then f ()
  else begin
    let start = now () in
    let r = f () in
    let dur_us = (now () -. start) *. 1e6 in
    let fields = match post with None -> [] | Some g -> g r in
    emit_at (start -. !t0) name (fields @ [ ("dur_us", Event.Float dur_us) ]);
    r
  end
