(** Event sinks.  All provided sinks are safe to call from multiple domains
    concurrently (GA fitness evaluation emits from worker domains). *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

(** Discards everything. *)
val null : t

(** Human-readable lines, flushed per event.  Does not close the channel. *)
val text : out_channel -> t

(** One JSON object per line, appended to [path] (append mode lets several
    commands accumulate into one trace file).  Buffered until close. *)
val jsonl : string -> t

(** In-memory capture for tests: the sink and the vector it fills. *)
val memory : unit -> t * Event.t Inltune_support.Vec.t
