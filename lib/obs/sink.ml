(* Where events go.  A sink is three closures so new backends need no
   variant-type change; all provided sinks are safe to call from multiple
   domains concurrently (GA fitness evaluation emits from worker domains). *)

module Vec = Inltune_support.Vec

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; flush = ignore; close = ignore }

(* Human-readable lines, flushed eagerly — meant for a person watching
   stderr, not for volume. *)
let text oc =
  let mu = Mutex.create () in
  {
    emit =
      (fun e ->
        Mutex.protect mu (fun () ->
            output_string oc (Event.to_text e);
            output_char oc '\n';
            flush oc));
    flush = (fun () -> flush oc);
    close = (fun () -> flush oc);  (* the channel (stderr) is not ours to close *)
  }

(* One JSON object per line, appended to [path].  Append mode lets several
   commands accumulate into one trace file (e.g. a run followed by a GA
   tune, summarized together).  Buffered; flushed on close. *)
let jsonl path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  let mu = Mutex.create () in
  let closed = ref false in
  {
    emit =
      (fun e ->
        Mutex.protect mu (fun () ->
            if not !closed then begin
              output_string oc (Event.to_json e);
              output_char oc '\n'
            end));
    flush = (fun () -> Mutex.protect mu (fun () -> if not !closed then flush oc));
    close =
      (fun () ->
        Mutex.protect mu (fun () ->
            if not !closed then begin
              closed := true;
              close_out oc
            end));
  }

(* In-memory capture for tests: returns the sink and the vector it fills. *)
let memory () =
  let mu = Mutex.create () in
  let events : Event.t Vec.t = Vec.create () in
  let sink =
    {
      emit = (fun e -> Mutex.protect mu (fun () -> Vec.push events e));
      flush = ignore;
      close = ignore;
    }
  in
  (sink, events)
