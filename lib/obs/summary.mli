(** Aggregate a JSONL trace into paper-style tables: inlining decisions by
    reason, optimizer pass totals, compile-time breakdown per tier, VM
    measurements per program, GA fitness per generation, counters. *)

type record = { ts : float; ev : string; json : Json.t }

val of_line : string -> (record, string) result

(** Records plus the count of malformed lines (skipped, not fatal). *)
val of_lines : string list -> record list * int

val load_file : string -> record list * int

(** reason name, accepted?, count — sorted by count descending. *)
val inline_reasons : record list -> (string * bool * int) list

(** (generation, best, mean, evaluations) in trace order. *)
val ga_generations : record list -> (int * float * float * int) list

(** tier -> (compiles, recompiles, cycles, code bytes), sorted by tier. *)
val compile_tiers : record list -> (string * (int * int * int * int)) list

(** pass -> (runs, transforms, total us, summed size_out - size_in, inlined
    call sites), sorted by total time.  [inlined] attributes inlining to the
    pass that performed it, so runs mixing strategies (inline_leaves /
    inline_hot / inline / inline_region) break down per strategy.  Spans
    without size or inlining fields (older traces) contribute 0. *)
val pass_totals : record list -> (string * (int * int * float * int * int)) list

(** counter name -> last reported value. *)
val counter_values : record list -> (string * int) list

(** histogram name -> (count, sum, min, max, mean, p50, p90, p99); the last
    snapshot wins.  Fields missing from older traces come back as [nan]. *)
val histogram_values :
  record list ->
  (string * (int * float * float * float * float * float * float * float)) list

(** profile path -> (label, depth, calls, total_us, self_us, p50_us, p90_us,
    p99_us, max_us) from flushed ["prof.node"] events, in tree order. *)
val prof_nodes :
  record list ->
  (string * (string * int * int * float * float * float * float * float * float)) list

(** Folded-stack lines ("path;to;span <self-µs>") for flamegraph.pl /
    inferno; nodes whose self time rounds to 0 µs are omitted. *)
val folded : record list -> string list

(** Whether any record is a real trace event (not a "counter"/"histogram"
    snapshot); false for empty or counter-only traces. *)
val has_events : record list -> bool

(** The heuristic parameter (paper Table 1) governing a decision reason. *)
val parameter_of_reason : string -> string

(** Every table with data, in report order. *)
val tables : record list -> Inltune_support.Table.t list
