(* Hierarchical wall-time profiler.  See prof.mli for the contract.

   Per-domain state is one DLS string ref holding the current span path;
   nodes live in a global path-keyed table guarded by a single mutex that is
   taken once per span *exit* (not per clock read), so contention is bounded
   by span rate, which is per-compile / per-simulation. *)

module Vec = Inltune_support.Vec
module Stats = Inltune_support.Stats
module Table = Inltune_support.Table

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* Current span path of the calling domain; "" at top level.  A worker
   domain starts fresh, so spans recorded inside pool tasks root at the
   task's outermost span regardless of which domain ran it — that is what
   keeps the merged tree shape independent of the domain count. *)
let path_key = Domain.DLS.new_key (fun () -> ref "")

type node = {
  path : string;
  label : string;
  mutable calls : int;
  mutable total_s : float;
  samples : float Vec.t;
}

let mu = Mutex.create ()
let nodes : (string, node) Hashtbl.t = Hashtbl.create 32

let record path label dt =
  Mutex.protect mu (fun () ->
      let n =
        match Hashtbl.find_opt nodes path with
        | Some n -> n
        | None ->
          let n = { path; label; calls = 0; total_s = 0.0; samples = Vec.create () } in
          Hashtbl.add nodes path n;
          n
      in
      n.calls <- n.calls + 1;
      n.total_s <- n.total_s +. dt;
      Vec.push n.samples dt)

let span ?on_time label f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let cur = Domain.DLS.get path_key in
    let parent = !cur in
    let path = if parent = "" then label else parent ^ ";" ^ label in
    cur := path;
    let t0 = Unix.gettimeofday () in
    match f () with
    | r ->
      let dt = Unix.gettimeofday () -. t0 in
      cur := parent;
      record path label dt;
      (match on_time with None -> () | Some g -> g dt);
      r
    | exception e ->
      cur := parent;
      raise e
  end

type node_snapshot = {
  n_path : string;
  n_label : string;
  n_depth : int;
  n_calls : int;
  n_total_s : float;
  n_self_s : float;
  n_p50_s : float;
  n_p90_s : float;
  n_p99_s : float;
  n_max_s : float;
}

let depth_of path =
  String.fold_left (fun d c -> if c = ';' then d + 1 else d) 0 path

let parent_of path =
  match String.rindex_opt path ';' with
  | None -> None
  | Some i -> Some (String.sub path 0 i)

let snapshot () =
  (* Copy under the mutex so concurrent span exits can't tear a node. *)
  let raw =
    Mutex.protect mu (fun () ->
        Hashtbl.fold
          (fun _ n acc -> (n.path, n.label, n.calls, n.total_s, Vec.to_array n.samples) :: acc)
          nodes [])
    |> List.sort compare
  in
  (* Sum of direct-children cumulative time per parent path, for self time. *)
  let child_total : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (path, _, _, total, _) ->
      match parent_of path with
      | None -> ()
      | Some p ->
        let cur = Option.value (Hashtbl.find_opt child_total p) ~default:0.0 in
        Hashtbl.replace child_total p (cur +. total))
    raw;
  List.map
    (fun (path, label, calls, total, samples) ->
      let kids = Option.value (Hashtbl.find_opt child_total path) ~default:0.0 in
      let pct = Stats.percentile samples in
      {
        n_path = path;
        n_label = label;
        n_depth = depth_of path;
        n_calls = calls;
        n_total_s = total;
        n_self_s = Float.max 0.0 (total -. kids);
        n_p50_s = pct 50.0;
        n_p90_s = pct 90.0;
        n_p99_s = pct 99.0;
        n_max_s = Stats.max_of samples;
      })
    raw

let folded () =
  List.filter_map
    (fun n ->
      let us = Float.to_int (Float.round (n.n_self_s *. 1e6)) in
      if us <= 0 then None else Some (Printf.sprintf "%s %d" n.n_path us))
    (snapshot ())

let table () =
  let t =
    Table.create ~title:"Profile (wall time, self vs. cumulative)"
      ~header:[| "span"; "calls"; "total ms"; "self ms"; "p50 us"; "p90 us"; "p99 us"; "max us" |]
      ~aligns:Table.[| Left; Right; Right; Right; Right; Right; Right; Right |]
  in
  let us v = Table.fmt_float ~digits:1 (v *. 1e6) in
  List.iter
    (fun n ->
      Table.add_row t
        [|
          String.make (2 * n.n_depth) ' ' ^ n.n_label;
          string_of_int n.n_calls;
          Table.fmt_float (n.n_total_s *. 1e3);
          Table.fmt_float (n.n_self_s *. 1e3);
          us n.n_p50_s;
          us n.n_p90_s;
          us n.n_p99_s;
          us n.n_max_s;
        |])
    (snapshot ());
  t

let report oc =
  if snapshot () = [] then output_string oc "[prof] no spans recorded\n"
  else begin
    output_string oc (Table.render (table ()));
    flush oc
  end

let exit_hook = ref false

let report_at_exit () =
  if not !exit_hook then begin
    exit_hook := true;
    at_exit (fun () -> report stderr)
  end

let reset () = Mutex.protect mu (fun () -> Hashtbl.reset nodes)

let init_from_env () =
  match Sys.getenv_opt "INLTUNE_PROFILE" with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
    enable ();
    report_at_exit ()

(* Flush nodes into a closing trace as "prof.node" events so trace-summary
   can rebuild the profile table and folded stacks offline. *)
let () =
  Trace.add_flush_hook (fun () ->
      List.iter
        (fun n ->
          Trace.emit "prof.node"
            ~fields:
              [
                ("path", Event.Str n.n_path);
                ("label", Event.Str n.n_label);
                ("depth", Event.Int n.n_depth);
                ("calls", Event.Int n.n_calls);
                ("total_us", Event.Float (n.n_total_s *. 1e6));
                ("self_us", Event.Float (n.n_self_s *. 1e6));
                ("p50_us", Event.Float (n.n_p50_s *. 1e6));
                ("p90_us", Event.Float (n.n_p90_s *. 1e6));
                ("p99_us", Event.Float (n.n_p99_s *. 1e6));
                ("max_us", Event.Float (n.n_max_s *. 1e6));
              ])
        (snapshot ()))
