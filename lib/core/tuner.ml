open Inltune_opt
open Inltune_vm
module Workloads = Inltune_workloads
module Ga = Inltune_ga

(* The paper's compilation scenarios (Section 6 / Table 4 columns) and the
   GA driver that tunes the heuristic for each. *)

type scenario_id = Adapt_x86 | Opt_bal_x86 | Opt_tot_x86 | Adapt_ppc | Opt_bal_ppc

type scenario_spec = {
  id : scenario_id;
  label : string;
  scenario : Machine.scenario;
  platform : Platform.t;
  goal : Objective.goal;
}

let spec_of = function
  | Adapt_x86 ->
    { id = Adapt_x86; label = "Adapt"; scenario = Machine.Adapt; platform = Platform.x86; goal = Objective.Balance }
  | Opt_bal_x86 ->
    { id = Opt_bal_x86; label = "Opt:Bal"; scenario = Machine.Opt; platform = Platform.x86; goal = Objective.Balance }
  | Opt_tot_x86 ->
    { id = Opt_tot_x86; label = "Opt:Tot"; scenario = Machine.Opt; platform = Platform.x86; goal = Objective.Total }
  | Adapt_ppc ->
    { id = Adapt_ppc; label = "Adapt (PPC)"; scenario = Machine.Adapt; platform = Platform.ppc; goal = Objective.Balance }
  | Opt_bal_ppc ->
    { id = Opt_bal_ppc; label = "Opt:Bal (PPC)"; scenario = Machine.Opt; platform = Platform.ppc; goal = Objective.Balance }

let all_scenarios = [ Adapt_x86; Opt_bal_x86; Opt_tot_x86; Adapt_ppc; Opt_bal_ppc ]

let scenario_names = [ "adapt"; "opt:bal"; "opt:tot"; "adapt-ppc"; "opt:bal-ppc" ]

let scenario_of_string = function
  | "adapt" -> Adapt_x86
  | "opt:bal" -> Opt_bal_x86
  | "opt:tot" -> Opt_tot_x86
  | "adapt-ppc" -> Adapt_ppc
  | "opt:bal-ppc" -> Opt_bal_ppc
  | s -> invalid_arg ("Tuner.scenario_of_string: " ^ s)

(* File-name-safe scenario tag (checkpoint paths, per-scenario artifacts). *)
let scenario_slug = function
  | Adapt_x86 -> "adapt"
  | Opt_bal_x86 -> "opt_bal"
  | Opt_tot_x86 -> "opt_tot"
  | Adapt_ppc -> "adapt_ppc"
  | Opt_bal_ppc -> "opt_bal_ppc"

(* Search effort.  The paper evolves 20 individuals over 500 generations on
   real hardware over days; the simulator makes far smaller budgets converge
   because the fitness landscape is deterministic. *)
type budget = { pop : int; gens : int; seed : int }

let default_budget = { pop = 16; gens = 10; seed = 42 }

type outcome = {
  spec : scenario_spec;
  heuristic : Heuristic.t;
  fitness : float;  (* geomean vs default; < 1 is an improvement *)
  ga : Ga.Evolve.result;
  degraded : string option;  (* why the search stopped early, if it did *)
}

(* Failure isolation for fitness evaluation: retry transient VM failures,
   penalize and quarantine genomes that keep failing, stop the search (with
   the best-known answer) if a generation's failure rate explodes. *)
let guard ~max_retries =
  { Ga.Evolve.default_guard with Ga.Evolve.max_retries; classify = Objective.transient_failure }

(* A search can degrade so far that its "best" genome is itself a penalized
   failure; shipping that as a tuned heuristic would be worse than useless,
   so fall back to the Jikes default (paper Table 4, column 1). *)
let best_or_default gu (ga : Ga.Evolve.result) =
  if Float.is_finite ga.Ga.Evolve.best_fitness
     && ga.Ga.Evolve.best_fitness < gu.Ga.Evolve.penalty
  then Heuristic.of_array ga.Ga.Evolve.best
  else Heuristic.default

(* Tune the heuristic for one scenario over the training suite.  Evaluation
   goes through the flat genome × benchmark grid ([Evolve.run ?grid]) so
   fresh simulations saturate the domain pool; the scalar [fitness] is still
   supplied for interface compatibility and produces bit-identical values. *)
let tune ?(budget = default_budget) ?on_generation ?on_stats ?(suite = Workloads.Suites.spec)
    ?checkpoint ?resume ?(max_retries = 1) ?domains ?plan id =
  let spec = spec_of id in
  let fitness =
    Objective.genome_fitness ?plan ~suite ~scenario:spec.scenario ~platform:spec.platform
      ~goal:spec.goal
  in
  let grid =
    Objective.genome_grid ?plan ~suite ~scenario:spec.scenario ~platform:spec.platform
      ~goal:spec.goal ()
  in
  let params =
    {
      Ga.Evolve.default_params with
      Ga.Evolve.pop_size = budget.pop;
      generations = budget.gens;
      seed = budget.seed;
      domains;
    }
  in
  let gu = guard ~max_retries in
  let ga =
    Ga.Evolve.run ?on_generation ?on_stats ?checkpoint ?resume ~guard:gu ~grid
      ~spec:Params.genome_spec ~params ~fitness ()
  in
  {
    spec;
    heuristic = best_or_default gu ga;
    fitness = ga.Ga.Evolve.best_fitness;
    ga;
    degraded = ga.Ga.Evolve.stopped;
  }

(* Plan tuning: co-evolve the five heuristic parameters with the pass
   schedule (toggles, strengths, payoff order) over the composite
   {!Params.plan_genome_spec}.  Fitness values are normalized against the
   same stock baseline as {!tune}, so the two searches are directly
   comparable. *)
type plan_outcome = {
  p_spec : scenario_spec;
  p_heuristic : Heuristic.t;
  p_plan : Plan.t;
  p_fitness : float;
  p_ga : Ga.Evolve.result;
  p_degraded : string option;
}

(* Same fallback logic as {!best_or_default}: a penalized "best" would ship
   a broken schedule, so fall back to the stock heuristic and plan. *)
let plan_best_or_default gu (ga : Ga.Evolve.result) =
  if Float.is_finite ga.Ga.Evolve.best_fitness
     && ga.Ga.Evolve.best_fitness < gu.Ga.Evolve.penalty
  then Params.split_plan_genome ga.Ga.Evolve.best
  else (Heuristic.default, Plan.default)

let tune_plan ?(budget = default_budget) ?on_generation ?on_stats
    ?(suite = Workloads.Suites.spec) ?checkpoint ?resume ?(max_retries = 1) ?domains id =
  let spec = spec_of id in
  let fitness =
    Objective.plan_genome_fitness ~suite ~scenario:spec.scenario ~platform:spec.platform
      ~goal:spec.goal
  in
  let grid =
    Objective.plan_genome_grid ~suite ~scenario:spec.scenario ~platform:spec.platform
      ~goal:spec.goal
  in
  let params =
    {
      Ga.Evolve.default_params with
      Ga.Evolve.pop_size = budget.pop;
      generations = budget.gens;
      seed = budget.seed;
      domains;
    }
  in
  let gu = guard ~max_retries in
  let ga =
    Ga.Evolve.run ?on_generation ?on_stats ?checkpoint ?resume ~guard:gu ~grid
      ~spec:Params.plan_genome_spec ~params ~fitness ()
  in
  let heuristic, plan = plan_best_or_default gu ga in
  {
    p_spec = spec;
    p_heuristic = heuristic;
    p_plan = plan;
    p_fitness = ga.Ga.Evolve.best_fitness;
    p_ga = ga;
    p_degraded = ga.Ga.Evolve.stopped;
  }

(* Per-program tuning for running time (paper Fig. 10). *)
let tune_per_program ?(budget = default_budget) ?(max_retries = 1) ?domains ?plan bm =
  let suite = [ bm ] in
  let fitness =
    Objective.genome_fitness ?plan ~suite ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Running
  in
  let grid =
    Objective.genome_grid ?plan ~suite ~scenario:Machine.Opt ~platform:Platform.x86
      ~goal:Objective.Running ()
  in
  let params =
    {
      Ga.Evolve.default_params with
      Ga.Evolve.pop_size = budget.pop;
      generations = budget.gens;
      seed = budget.seed;
      domains;
    }
  in
  let gu = guard ~max_retries in
  let ga = Ga.Evolve.run ~guard:gu ~grid ~spec:Params.genome_spec ~params ~fitness () in
  (best_or_default gu ga, ga.Ga.Evolve.best_fitness)
