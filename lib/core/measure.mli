open Inltune_opt
open Inltune_vm
module Workloads = Inltune_workloads

(** Benchmark measurement following the paper's methodology: one simulated VM
    per (benchmark, scenario, platform, heuristic) combination. *)

type times = {
  running : float;  (** best later-iteration exec cycles *)
  total : float;    (** first-iteration exec + compile cycles *)
  compile : float;  (** first-iteration compile cycles *)
  raw : Runner.measurement;
}

val of_measurement : Runner.measurement -> times

(** [run ~scenario ~platform ~heuristic bm] simulates the benchmark
    ([iterations] defaults to 3 so the adaptive system reaches steady
    state).  [inline_enabled:false] is the Fig. 1 no-inlining baseline. *)
val run :
  ?iterations:int ->
  ?inline_enabled:bool ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  heuristic:Heuristic.t ->
  Workloads.Suites.benchmark ->
  times

(** Like {!run} with the Jikes default heuristic; memoized (normalized bars
    divide by this constantly).  The memo table is mutex-guarded, so calling
    from worker domains is safe; hits and misses are reported via the
    "measure.memo_hits"/"measure.memo_misses" counters. *)
val run_default :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Workloads.Suites.benchmark ->
  times

(** The paper's Fig. 1 baseline: same scenario, inlining disabled. *)
val run_no_inlining :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Workloads.Suites.benchmark ->
  times
