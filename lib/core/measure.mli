open Inltune_opt
open Inltune_vm
module Workloads = Inltune_workloads

(** Benchmark measurement following the paper's methodology: one simulated VM
    per (benchmark, scenario, platform, heuristic) combination. *)

type times = {
  running : float;  (** best later-iteration exec cycles *)
  total : float;    (** first-iteration exec + compile cycles *)
  compile : float;  (** first-iteration compile cycles *)
  raw : Runner.measurement;
}

val of_measurement : Runner.measurement -> times

(** [run ~scenario ~platform ~heuristic bm] simulates the benchmark
    ([iterations] defaults to 3 so the adaptive system reaches steady
    state).  [inline_enabled:false] is the Fig. 1 no-inlining baseline;
    [plan] (default {!Inltune_opt.Plan.default}) selects the optimizing
    tier's pass schedule.  Results are shared through {!Fitcache}: a query
    whose decision signature was already measured reuses that measurement
    instead of simulating; the "measure.simulations" counter reports full
    simulations actually run. *)
val run :
  ?iterations:int ->
  ?inline_enabled:bool ->
  ?plan:Plan.t ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  heuristic:Heuristic.t ->
  Workloads.Suites.benchmark ->
  times

(** Like {!run} with the Jikes default heuristic; memoized (normalized bars
    divide by this constantly — callers get a physically shared [times]).
    The mutex-guarded memo key includes [inline_enabled], and a miss routes
    through {!run}, i.e. through {!Fitcache}, so a matching decision
    signature still avoids the simulation.  Safe from worker domains; the
    "measure.memo_hits"/"measure.memo_misses" counters report this table's
    outcomes exactly. *)
val run_default :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Workloads.Suites.benchmark ->
  times

(** The paper's Fig. 1 baseline: same scenario, inlining disabled. *)
val run_no_inlining :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Workloads.Suites.benchmark ->
  times
