open Inltune_jir
open Inltune_opt
open Inltune_vm
module Metric = Inltune_obs.Metric
module Json = Inltune_obs.Json

(* Decision-signature fitness cache.

   The GA revisits heuristics constantly, and — the paper's plateau
   observation — many *distinct* 5-parameter genomes induce exactly the same
   inlining decisions on a given program.  Simulating both is pure waste: the
   compiled code, and therefore every cycle count the VM reports, is a
   function of which call sites get expanded, not of the parameter values
   that chose them.  This module computes a cheap semantic key — the
   **decision signature** — for a (program, scenario, platform, heuristic)
   query by running only the inliner's decision procedure, and reuses the
   previously measured [Runner.measurement] whenever the signature matches.

   Soundness is scenario-split:

   - [Opt]: every method is optimized exactly once, on its
     constant-propagated form, with no profile input ([hot_site] and the
     devirt oracle are [None]).  [Inline.plan] over the constprop'd methods
     therefore reproduces the *exact* verdict sequence the real compile
     performs, so the signature is the hash of those plans — two heuristics
     with equal plans compile every method identically and the measurement
     carries over bit-for-bit.  This is the maximal sound merge.

   - [Adapt]/[Ladder]: which sites are decided (and their hot flags) depends
     on the runtime profile, which itself depends on earlier decisions, so a
     static walk cannot enumerate the queries.  Instead the signature
     projects the heuristic onto the program: for every distinct static
     method size [s] it records the three threshold bits
     [s > CALLEE_MAX_SIZE], [s < ALWAYS_INLINE_SIZE] and
     [s <= HOT_CALLEE_MAX_SIZE], plus [MAX_INLINE_DEPTH] clamped to the
     method count (an inline chain holds distinct methods, so no reachable
     depth exceeds it) and [CALLER_MAX_SIZE] verbatim.  Two heuristics with
     equal projections return identical verdicts for *any* reachable query —
     by induction over the decision sequence the whole execution, profile
     included, stays identical.  Weaker merging than the walk, but sound
     under profile feedback.

   Alternative inlining strategies (inline_leaves / inline_hot /
   inline_region) never read the heuristic or the decider, which is what
   keeps both arguments intact when a plan schedules them: a strategy's
   output is a deterministic function of its input, its plan knobs (inside
   the key's plan tag), and — for inline_hot — the profile trajectory, which
   the induction already covers.  When a *static* strategy (one whose
   decisions read only the program and the site record) is the plan's
   leading inliner and the decider-driven inline item is off, the signature
   is that strategy's own exact engine walk, so two strategies with
   different verdict vectors can never share a measurement; every other
   strategy shape falls back conservatively (exact heuristic parameters when
   the heuristic still runs, an opaque constant when it does not).

   The cache is two-tier: a mutex-guarded in-memory table, plus an optional
   append-only JSONL file ([set_file], CLI [--fitness-cache]) that is loaded
   on attach and appended to on every fresh measurement, so warm state
   survives process restarts and composes with GA checkpoint/resume (the
   checkpoint layer memoizes genome fitness above this layer; this layer
   dedups the simulations below it).  Keys are content-addressed — program
   digest × scenario × platform × iterations × signature — so files can be
   shared across runs and machines; a corrupt or truncated line (killed
   mid-append) is skipped with a warning, never an abort. *)

(* --- per-program derived data ------------------------------------------ *)

type pinfo = {
  p_digest : string;            (* hex MD5 of the canonical text form *)
  p_cp : Ir.methd array;        (* constant-propagated methods (Opt walks) *)
  p_sizes : int array;          (* distinct static method sizes, sorted *)
  p_nmethods : int;
}

(* Keyed by physical identity: [Suites.program] shares one immutable program
   value per benchmark per process, so this list stays as short as the suite. *)
let pinfo_mu = Mutex.create ()
let pinfos : (Ir.program * pinfo) list ref = ref []

let pinfo_of prog =
  Mutex.lock pinfo_mu;
  let info =
    match List.find_opt (fun (p, _) -> p == prog) !pinfos with
    | Some (_, i) -> i
    | None ->
      let digest = Digest.to_hex (Digest.string (Text.to_string prog)) in
      let cp = Array.map (fun m -> fst (Constprop.run prog m)) prog.Ir.methods in
      let sizes =
        Array.to_list prog.Ir.methods
        |> List.map Size.of_method
        |> List.sort_uniq compare |> Array.of_list
      in
      let i =
        {
          p_digest = digest;
          p_cp = cp;
          p_sizes = sizes;
          p_nmethods = Array.length prog.Ir.methods;
        }
      in
      pinfos := (prog, i) :: !pinfos;
      i
  in
  Mutex.unlock pinfo_mu;
  info

let program_digest prog = (pinfo_of prog).p_digest

(* --- signatures --------------------------------------------------------- *)

(* The plan with the VM's legacy inline ablation applied — what the
   pipeline actually interprets; every shape question below is asked of
   this. *)
let effective_plan ~inline_enabled plan =
  if inline_enabled then plan else Plan.disable "inline" plan

(* Under [Opt] the inline_hot pass is structurally inapplicable (no profile
   exists), so the plan-shape analysis must not see it. *)
let opt_skip pass = pass = "inline_hot"

let any_enabled_inliner ~skip plan =
  List.exists (fun n -> (not (skip n)) && Plan.has_enabled n plan) Pass.inliner_names

(* Exact walk signature: hash of the concatenated per-method decision-plan
   bit strings of [policy_of] over the constprop'd methods. *)
let walk_signature info prog policy_of =
  let buf = Buffer.create 256 in
  Array.iter
    (fun cpm ->
      Buffer.add_string buf (Inline.plan_policy ~program:prog ~policy:(policy_of cpm) cpm);
      Buffer.add_char buf '|')
    info.p_cp;
  "w:" ^ Digest.to_hex (Digest.string (Buffer.contents buf))

let signature ~scenario ~heuristic ~inline_enabled ~plan prog =
  let plan = effective_plan ~inline_enabled plan in
  let heuristic_params () =
    Printf.sprintf "h:%s"
      (String.concat ","
         (Array.to_list (Array.map string_of_int (Heuristic.to_array heuristic))))
  in
  match scenario with
  | Machine.Opt -> (
    if not (any_enabled_inliner ~skip:opt_skip plan) then "off"
    else
      let heuristic_used = Plan.has_enabled "inline" plan in
      let info () = pinfo_of prog in
      match Plan.first_walkable_inliner ~skip:opt_skip plan with
      | Some it when it.Plan.pass = "inline" ->
        (* Exact: the walk replays the decider's verdict sequence.  Strategy
           items scheduled after inline are decider-independent functions of
           its output, so equal walks still imply identical compilation. *)
        walk_signature (info ()) prog (fun _ -> Policy.of_heuristic heuristic)
      | Some it when not heuristic_used -> (
        (* The leading inliner is a strategy and the decider-driven inline
           item is off: decisions read nothing the heuristic controls, so
           the strategy's own walk is exact — and distinct strategies with
           different verdict vectors hash apart, which keeps their
           measurements apart even before the key's plan tag does. *)
        match Option.bind (Pass.find it.Plan.pass) (fun p -> p.Pass.static_policy) with
        | Some mk -> walk_signature (info ()) prog (mk (Plan.item_knob it) prog)
        | None -> "n:static" (* non-static strategy: plan tag isolates *))
      | Some _ ->
        (* A strategy leads but the heuristic-driven inline item still runs
           later, on code the walk cannot reconstruct: fall back to the
           exact parameters — still sound (no merging beyond identical
           heuristics under the same plan, which the key's plan tag already
           isolates), just maximally conservative. *)
        heuristic_params ()
      | None ->
        (* Pre-inline schedule diverges from the single constprop the
           [p_cp] walk assumes: same fallbacks, by heuristic relevance. *)
        if heuristic_used then heuristic_params () else "n:static")
  | Machine.Adapt | Machine.Ladder ->
    if not (any_enabled_inliner ~skip:(fun _ -> false) plan) then "off"
    else if not (Plan.has_enabled "inline" plan) then
      (* Only strategy inliners run.  Their decisions read the program, the
         site record, and the profile — never the heuristic — and the
         profile trajectory is deterministic given the plan, so under a
         fixed plan tag every heuristic produces the same execution. *)
      "n:static"
    else begin
      (* Sound projection under profile feedback: threshold bits per distinct
         callee size + clamped depth limit + caller limit.  Strategy items
         stay heuristic-independent, so the induction (equal projections ⇒
         identical decisions ⇒ identical profile ⇒ identical execution)
         carries over unchanged. *)
      let info = pinfo_of prog in
      let buf = Buffer.create 64 in
      Buffer.add_string buf "p:";
      Array.iter
        (fun s ->
          let b = ref 0 in
          if s > heuristic.Heuristic.callee_max_size then b := !b lor 4;
          if s < heuristic.Heuristic.always_inline_size then b := !b lor 2;
          if s <= heuristic.Heuristic.hot_callee_max_size then b := !b lor 1;
          Buffer.add_char buf (Char.chr (Char.code '0' + !b)))
        info.p_sizes;
      Buffer.add_string buf
        (Printf.sprintf "/d%d/c%d"
           (min heuristic.Heuristic.max_inline_depth info.p_nmethods)
           heuristic.Heuristic.caller_max_size);
      Buffer.contents buf
    end

(* First-class policy queries (lib/policy stores, GP trees).  Under [Opt]
   with a walk-compatible plan and a *static* policy — one whose decisions
   read nothing but the program and the site record, never the live profile —
   [Inline.plan_policy] over the constprop'd methods reproduces the exact
   compile-time verdict sequence, the same argument as the heuristic walk.
   The resulting signature lives in the same "w:" namespace as the heuristic
   one, and [Inline.plan] *is* [plan_policy] over [Policy.of_heuristic], so
   a policy whose decisions equal some heuristic's shares that heuristic's
   measurements: cache hits transfer across structurally different policies
   (and across the policy/heuristic divide) whenever the decisions agree.

   Everywhere else — profile-feedback scenarios, non-static policies,
   walk-incompatible plans — the signature falls back to the caller-supplied
   content [digest] of the policy artifact: sound (identical policies replay
   identical decisions), just no cross-policy merging. *)
let policy_signature ~scenario ~policy ~digest ~static ~inline_enabled ~plan prog =
  let plan = effective_plan ~inline_enabled plan in
  let skip = match scenario with Machine.Opt -> opt_skip | _ -> fun _ -> false in
  if not (Plan.has_enabled "inline" plan) then
    (* The policy drives only the inline item; with it off the execution is
       policy-independent — "off" when nothing inlines at all, an opaque
       constant (isolated by the key's plan tag) when strategies still run. *)
    if any_enabled_inliner ~skip plan then "n:static" else "off"
  else
    match scenario with
    | Machine.Opt when static && Plan.walk_compatible plan ->
      walk_signature (pinfo_of prog) prog (fun _ -> policy)
    | Machine.Opt | Machine.Adapt | Machine.Ladder -> "g:" ^ digest

(* Non-default plans change what every compile does, so their measurements
   must never alias the default plan's: the key carries a plan tag — a fixed
   "default" for the default plan, the plan's content digest otherwise. *)
let plan_tag plan = if Plan.is_default plan then "default" else "plan:" ^ Plan.digest plan

let key ~scenario ~platform ~heuristic ~inline_enabled ~plan ~iterations prog =
  Printf.sprintf "%s/%s/%s/%s/%d/%s" (program_digest prog)
    (Machine.scenario_name scenario) platform.Platform.pname (plan_tag plan) iterations
    (signature ~scenario ~heuristic ~inline_enabled ~plan prog)

(* --- the cache proper --------------------------------------------------- *)

(* Counters are re-resolved per use (not captured at module init) so they
   stay attached to the registry across [Metric.reset_all]. *)
let bump name = Metric.incr (Metric.counter name)

let mu = Mutex.create ()
let table : (string, Runner.measurement) Hashtbl.t = Hashtbl.create 256
let file : string option ref = ref None
let on = ref true

(* Multi-tenant attribution (the serve daemon).  The hook names the tenant
   on whose behalf the *current thread* is working; [owners] remembers which
   tenant first paid for each key's simulation, so a hit by a different
   tenant can be counted as cross-tenant amortization.  Entirely inert —
   zero lookups, zero counters — until a hook is installed. *)
let tenant_hook : (unit -> string option) ref = ref (fun () -> None)
let set_tenant_hook f = tenant_hook := f
let owners : (string, string) Hashtbl.t = Hashtbl.create 64

let enabled () = !on
let set_enabled v = on := v

let clear () =
  Mutex.lock mu;
  Hashtbl.reset table;
  Hashtbl.reset owners;
  Mutex.unlock mu

let size () =
  Mutex.lock mu;
  let n = Hashtbl.length table in
  Mutex.unlock mu;
  n

(* --- JSONL persistence -------------------------------------------------- *)

let fields (m : Runner.measurement) =
  [
    ("total_cycles", m.Runner.total_cycles);
    ("running_cycles", m.Runner.running_cycles);
    ("first_exec_cycles", m.Runner.first_exec_cycles);
    ("first_compile_cycles", m.Runner.first_compile_cycles);
    ("opt_compiles", m.Runner.opt_compiles);
    ("baseline_compiles", m.Runner.baseline_compiles);
    ("code_bytes", m.Runner.code_bytes);
    ("icache_misses", m.Runner.icache_misses);
    ("icache_accesses", m.Runner.icache_accesses);
    ("steps", m.Runner.steps);
    ("ret", m.Runner.ret);
    ("out_hash", m.Runner.out_hash);
  ]

let entry_to_line k m =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"key\":\"";
  Buffer.add_string b (String.escaped k);
  Buffer.add_string b "\"";
  (* Fields like out_hash (and ret for some programs) span the full 63-bit
     int range, and the JSON layer stores numbers as floats — so every field
     is encoded as a decimal string to survive the round trip exactly. *)
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf ",\"%s\":\"%d\"" name v))
    (fields m);
  Buffer.add_char b '}';
  Buffer.contents b

let entry_of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
    (* String-encoded to dodge float precision loss; see [entry_to_line]. *)
    let int name =
      match Json.member name j with
      | Some (Json.Str s) -> int_of_string_opt s
      | _ -> None
    in
    match
      ( Json.member "key" j,
        int "total_cycles", int "running_cycles", int "first_exec_cycles",
        int "first_compile_cycles", int "opt_compiles", int "baseline_compiles",
        int "code_bytes", int "icache_misses", int "icache_accesses",
        int "steps", int "ret", int "out_hash" )
    with
    | ( Some (Json.Str k),
        Some total_cycles, Some running_cycles, Some first_exec_cycles,
        Some first_compile_cycles, Some opt_compiles, Some baseline_compiles,
        Some code_bytes, Some icache_misses, Some icache_accesses,
        Some steps, Some ret, Some out_hash ) ->
      Ok
        ( k,
          {
            Runner.total_cycles; running_cycles; first_exec_cycles;
            first_compile_cycles; opt_compiles; baseline_compiles; code_bytes;
            icache_misses; icache_accesses; steps; ret; out_hash;
          } )
    | _ -> Error "missing or non-integer field")

let append_entry path k m =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (entry_to_line k m);
  output_char oc '\n';
  close_out oc

let set_file path =
  Mutex.lock mu;
  file := path;
  (match path with
  | Some p when Sys.file_exists p ->
    let ic = open_in p in
    (* Warn once per file, not once per line: a big cache truncated by a
       crashed writer could otherwise spray thousands of identical lines on
       stderr.  The first bad line's position and cause are kept for the
       summary; the count also lands in the "fitness.cache_corrupt"
       counter so the serve daemon's stats expose it without scraping. *)
    let lineno = ref 0 and skipped = ref 0 in
    let first_bad : (int * string) option ref = ref None in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then
           match entry_of_line line with
           | Ok (k, m) -> if not (Hashtbl.mem table k) then Hashtbl.add table k m
           | Error e ->
             incr skipped;
             if !first_bad = None then first_bad := Some (!lineno, e)
       done
     with End_of_file -> ());
    close_in ic;
    if !skipped > 0 then begin
      Metric.add (Metric.counter "fitness.cache_corrupt") !skipped;
      let where, why = match !first_bad with Some (l, e) -> (l, e) | None -> (0, "") in
      Printf.eprintf
        "warning: fitness cache %s: %d corrupt line%s ignored (first at line %d: %s)\n%!"
        p !skipped
        (if !skipped = 1 then "" else "s")
        where why
    end
  | _ -> ());
  Mutex.unlock mu

(* --- lookup ------------------------------------------------------------- *)

let find_measurement k =
  Mutex.lock mu;
  let r = Hashtbl.find_opt table k in
  Mutex.unlock mu;
  r

let store_measurement k m =
  Mutex.lock mu;
  if not (Hashtbl.mem table k) then begin
    Hashtbl.add table k m;
    (match !tenant_hook () with
    | Some t when not (Hashtbl.mem owners k) -> Hashtbl.add owners k t
    | _ -> ());
    bump "fitness.unique_plans";
    match !file with Some p -> append_entry p k m | None -> ()
  end;
  Mutex.unlock mu

(* A hit where the key's simulation was paid for by a *different* tenant:
   the cross-tenant amortization the serve daemon exists to create. *)
let count_tenant_hit k =
  match !tenant_hook () with
  | None -> ()
  | Some t ->
    Mutex.lock mu;
    let cross =
      match Hashtbl.find_opt owners k with Some owner -> owner <> t | None -> false
    in
    Mutex.unlock mu;
    if cross then bump "fitness.cross_tenant_hits"

let mem ~scenario ~platform ~heuristic ~inline_enabled ~plan ~iterations prog =
  !on
  &&
  let k = key ~scenario ~platform ~heuristic ~inline_enabled ~plan ~iterations prog in
  Mutex.lock mu;
  let r = Hashtbl.mem table k in
  Mutex.unlock mu;
  r

(* Two domains racing on the same fresh key both simulate (the simulation
   runs outside the lock and is deterministic, so both arrive at the same
   measurement); the first store wins and the counters are best-effort. *)
let lookup_or_measure ~scenario ~platform ~heuristic ~inline_enabled ~plan ~iterations
    ~program simulate =
  if not !on then simulate ()
  else begin
    let k = key ~scenario ~platform ~heuristic ~inline_enabled ~plan ~iterations program in
    match find_measurement k with
    | Some m ->
      bump "fitness.sig_hits";
      count_tenant_hit k;
      m
    | None ->
      bump "fitness.sig_misses";
      let m = simulate () in
      store_measurement k m;
      m
  end

let policy_key ~scenario ~platform ~policy ~digest ~static ~inline_enabled ~plan ~iterations
    prog =
  Printf.sprintf "%s/%s/%s/%s/%d/%s" (program_digest prog)
    (Machine.scenario_name scenario) platform.Platform.pname (plan_tag plan) iterations
    (policy_signature ~scenario ~policy ~digest ~static ~inline_enabled ~plan prog)

(* The policy twin of [lookup_or_measure]: same table, same counters, same
   two-tier persistence — only the signature half of the key differs. *)
let lookup_or_measure_policy ~scenario ~platform ~policy ~digest ~static ~inline_enabled
    ~plan ~iterations ~program simulate =
  if not !on then simulate ()
  else begin
    let k =
      policy_key ~scenario ~platform ~policy ~digest ~static ~inline_enabled ~plan ~iterations
        program
    in
    match find_measurement k with
    | Some m ->
      bump "fitness.sig_hits";
      count_tenant_hit k;
      m
    | None ->
      bump "fitness.sig_misses";
      let m = simulate () in
      store_measurement k m;
      m
  end
