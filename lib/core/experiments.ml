open Inltune_opt
open Inltune_vm
module W = Inltune_workloads
module Table = Inltune_support.Table
module Stats = Inltune_support.Stats

(* One driver per table/figure of the paper's evaluation.  Each returns the
   rendered tables (and prints progress on stderr for the long GA runs); the
   bench harness and the CLI both route through here. *)

(* Tuned heuristics are shared across experiments: Table 4 and Figs. 5–9 all
   use the same five GA runs. *)
type ctx = {
  budget : Tuner.budget;
  verbose : bool;
  checkpoint : string option;  (* base path; per-scenario suffix appended *)
  resume : string option;
  max_retries : int;
  domains : int option;        (* evaluation parallelism; None = pool default *)
  mutable tuned : (Tuner.scenario_id * Tuner.outcome) list;
}

let make_ctx ?(verbose = true) ?(budget = Tuner.default_budget) ?checkpoint ?resume
    ?(max_retries = 1) ?domains () =
  { budget; verbose; checkpoint; resume; max_retries; domains; tuned = [] }

let progress ctx fmt =
  Printf.ksprintf (fun s -> if ctx.verbose then Printf.eprintf "[inltune] %s\n%!" s) fmt

(* One experiment drives several GA runs (Table 4 tunes all five scenarios),
   so a single --checkpoint path fans out into one file per scenario. *)
let scenario_path base id = Printf.sprintf "%s.%s" base (Tuner.scenario_slug id)

let tuned ctx id =
  match List.assoc_opt id ctx.tuned with
  | Some o -> o
  | None ->
    let spec = Tuner.spec_of id in
    progress ctx "tuning %s (pop %d, %d generations)..." spec.Tuner.label ctx.budget.Tuner.pop
      ctx.budget.Tuner.gens;
    let on_generation (p : Inltune_ga.Evolve.progress) =
      progress ctx "  gen %2d: best %.4f mean %.4f (%d evals)" p.Inltune_ga.Evolve.generation
        p.Inltune_ga.Evolve.best_fitness p.Inltune_ga.Evolve.mean_fitness
        p.Inltune_ga.Evolve.evaluations
    in
    let checkpoint = Option.map (fun b -> scenario_path b id) ctx.checkpoint in
    let resume = Option.map (fun b -> scenario_path b id) ctx.resume in
    let o =
      Tuner.tune ~budget:ctx.budget ~on_generation ?checkpoint ?resume
        ~max_retries:ctx.max_retries ?domains:ctx.domains id
    in
    ctx.tuned <- (id, o) :: ctx.tuned;
    (match o.Tuner.degraded with
    | Some reason -> progress ctx "  !! search stopped early: %s" reason
    | None -> ());
    progress ctx "  -> %s  fitness %.4f" (Heuristic.to_string o.Tuner.heuristic) o.Tuner.fitness;
    o

(* ---- Figure 1: default heuristic vs no inlining ------------------------- *)

let fig1_rows ~scenario ~platform suite =
  List.map
    (fun bm ->
      let d = Measure.run_default ~scenario ~platform bm in
      let n = Measure.run_no_inlining ~scenario ~platform bm in
      {
        Report.label = bm.W.Suites.bname;
        running_ratio = d.Measure.running /. n.Measure.running;
        total_ratio = d.Measure.total /. n.Measure.total;
      })
    suite

let fig1 () =
  let mk title scenario =
    let rows = fig1_rows ~scenario ~platform:Platform.x86 W.Suites.spec in
    let t, _, _ = Report.bars_table ~title ~baseline_name:"no inlining" rows in
    t
  in
  [
    mk "Fig 1(a): inlining impact, Opt scenario, SPECjvm98, x86 (1.0 = no inlining)" Machine.Opt;
    mk "Fig 1(b): inlining impact, Adapt scenario, SPECjvm98, x86 (1.0 = no inlining)" Machine.Adapt;
  ]

(* ---- Figure 2: execution time vs inline depth --------------------------- *)

let fig2_series ~bench ~scenario ~platform depths =
  let bm = W.Suites.find bench in
  List.map
    (fun d ->
      let heuristic = Heuristic.with_depth Heuristic.default d in
      let t = Measure.run ~scenario ~platform ~heuristic bm in
      (d, Platform.seconds platform (Float.to_int t.Measure.total)))
    depths

let fig2 () =
  let depths = List.init 11 (fun i -> i) in
  let mk bench =
    let t =
      Table.create
        ~title:(Printf.sprintf "Fig 2: total time (s) vs MAX_INLINE_DEPTH, %s, x86" bench)
        ~header:[| "depth"; "Opt (s)"; "Adapt (s)" |]
        ~aligns:[| Table.Right; Table.Right; Table.Right |]
    in
    let opt = fig2_series ~bench ~scenario:Machine.Opt ~platform:Platform.x86 depths in
    let adapt = fig2_series ~bench ~scenario:Machine.Adapt ~platform:Platform.x86 depths in
    List.iter2
      (fun (d, o) (_, a) ->
        Table.add_row t
          [| string_of_int d; Table.fmt_float ~digits:6 o; Table.fmt_float ~digits:6 a |])
      opt adapt;
    t
  in
  [ mk "compress"; mk "jess" ]

(* ---- Parameter sensitivity sweep (extension of Fig. 2 to all params) ---- *)

(* For each Table 1 parameter: hold the others at the Jikes defaults, sweep
   this one across its range, and report the SPEC-suite total-time geomean
   (1.0 = default heuristic) under both scenarios.  Quantifies paper §2's
   "parameter sensitivity" claim beyond MAX_INLINE_DEPTH. *)
let sweep_points = 8

let sweep_values lo hi =
  List.init sweep_points (fun i -> lo + ((hi - lo) * i / (sweep_points - 1)))
  |> List.sort_uniq compare

let sweep_one ~param_index ~scenario ~platform value =
  let g = Heuristic.to_array Heuristic.default in
  g.(param_index) <- value;
  let heuristic = Heuristic.of_array g in
  let ratios =
    List.map
      (fun bm ->
        let d = Measure.run_default ~scenario ~platform bm in
        let t = Measure.run ~scenario ~platform ~heuristic bm in
        t.Measure.total /. d.Measure.total)
      W.Suites.spec
  in
  Stats.geomean (Array.of_list ratios)

let sweep () =
  List.mapi
    (fun idx row ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf "Sweep: SPEC total-time geomean vs %s (others at default; 1.0 = default)"
               row.Params.pname)
          ~header:[| "value"; "Opt"; "Adapt" |]
          ~aligns:[| Table.Right; Table.Right; Table.Right |]
      in
      List.iter
        (fun v ->
          let o = sweep_one ~param_index:idx ~scenario:Machine.Opt ~platform:Platform.x86 v in
          let a = sweep_one ~param_index:idx ~scenario:Machine.Adapt ~platform:Platform.x86 v in
          Table.add_row t
            [| string_of_int v; Table.fmt_float o; Table.fmt_float a |])
        (sweep_values row.Params.lo row.Params.hi);
      t)
    Params.table1

(* ---- Table 1: parameters and ranges ------------------------------------- *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: parameters tuned with the genetic algorithm"
      ~header:[| "parameter"; "description"; "range"; "default" |]
      ~aligns:[| Table.Left; Table.Left; Table.Right; Table.Right |]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [|
          r.Params.pname;
          r.Params.meaning;
          Printf.sprintf "%d-%d" r.Params.lo r.Params.hi;
          string_of_int r.Params.default;
        |])
    Params.table1;
  [ t ]

(* ---- Table 4: tuned parameter values ------------------------------------ *)

let table4 ctx =
  let scenarios = Tuner.all_scenarios in
  let outcomes = List.map (fun id -> tuned ctx id) scenarios in
  let t =
    Table.create ~title:"Table 4: inlining parameter values found (per scenario)"
      ~header:
        (Array.of_list
           ("parameter" :: "Default"
           :: List.map (fun o -> o.Tuner.spec.Tuner.label) outcomes))
      ~aligns:(Array.make (2 + List.length outcomes) Table.Left)
  in
  let row i name getter =
    Table.add_row t
      (Array.of_list
         (name
         :: string_of_int (Heuristic.to_array Heuristic.default).(i)
         :: List.map
              (fun o ->
                let uses_hot = o.Tuner.spec.Tuner.scenario = Machine.Adapt in
                if name = "HOT_CALLEE_MAX_SIZE" && not uses_hot then "NA"
                else string_of_int (getter o.Tuner.heuristic))
              outcomes))
  in
  row 0 "CALLEE_MAX_SIZE" (fun h -> h.Heuristic.callee_max_size);
  row 1 "ALWAYS_INLINE_SIZE" (fun h -> h.Heuristic.always_inline_size);
  row 2 "MAX_INLINE_DEPTH" (fun h -> h.Heuristic.max_inline_depth);
  row 3 "CALLER_MAX_SIZE" (fun h -> h.Heuristic.caller_max_size);
  row 4 "HOT_CALLEE_MAX_SIZE" (fun h -> h.Heuristic.hot_callee_max_size);
  [ t ]

(* ---- Figures 5-9: tuned heuristic vs default, per suite ----------------- *)

type suite_summary = {
  scenario_label : string;
  spec_running : float;
  spec_total : float;
  dacapo_running : float;
  dacapo_total : float;
}

let tuned_rows ~outcome suite =
  let spec = outcome.Tuner.spec in
  List.map
    (fun bm ->
      let d =
        Measure.run_default ~scenario:spec.Tuner.scenario ~platform:spec.Tuner.platform bm
      in
      let t =
        Measure.run ~scenario:spec.Tuner.scenario ~platform:spec.Tuner.platform
          ~heuristic:outcome.Tuner.heuristic bm
      in
      {
        Report.label = bm.W.Suites.bname;
        running_ratio = t.Measure.running /. d.Measure.running;
        total_ratio = t.Measure.total /. d.Measure.total;
      })
    suite

let tuned_figure ctx ~fig ~id =
  let outcome = tuned ctx id in
  let label = outcome.Tuner.spec.Tuner.label in
  let mk part suite =
    let rows = tuned_rows ~outcome suite in
    let title =
      Printf.sprintf "Fig %s: %s tuned heuristic vs Jikes default — %s (1.0 = default)" fig label
        part
    in
    Report.bars_table ~title ~baseline_name:"default" rows
  in
  let t1, spec_run, spec_tot = mk "SPECjvm98" W.Suites.spec in
  let t2, dc_run, dc_tot = mk "DaCapo+JBB" W.Suites.dacapo in
  ( [ t1; t2 ],
    {
      scenario_label = label;
      spec_running = spec_run;
      spec_total = spec_tot;
      dacapo_running = dc_run;
      dacapo_total = dc_tot;
    } )

let fig5 ctx = tuned_figure ctx ~fig:"5" ~id:Tuner.Adapt_x86
let fig6 ctx = tuned_figure ctx ~fig:"6" ~id:Tuner.Opt_bal_x86
let fig7 ctx = tuned_figure ctx ~fig:"7" ~id:Tuner.Opt_tot_x86
let fig8 ctx = tuned_figure ctx ~fig:"8" ~id:Tuner.Adapt_ppc
let fig9 ctx = tuned_figure ctx ~fig:"9" ~id:Tuner.Opt_bal_ppc

(* ---- Figure 10: per-program tuning for running time --------------------- *)

let fig10 ctx =
  let t =
    Table.create
      ~title:"Fig 10: running time when tuning for each program in turn (Opt, x86; 1.0 = default)"
      ~header:[| "benchmark"; "running"; "bar"; "tuned heuristic" |]
      ~aligns:[| Table.Left; Table.Right; Table.Left; Table.Left |]
  in
  let ratios =
    List.map
      (fun bm ->
        progress ctx "per-program tuning: %s..." bm.W.Suites.bname;
        let h, fit = Tuner.tune_per_program ~budget:ctx.budget ?domains:ctx.domains bm in
        Table.add_row t
          [|
            bm.W.Suites.bname;
            Table.fmt_float ~digits:3 fit;
            Table.bar fit;
            Heuristic.to_string h;
          |];
        fit)
      W.Suites.all
  in
  Table.add_rule t;
  let avg = Stats.geomean (Array.of_list ratios) in
  Table.add_row t [| "geomean"; Table.fmt_float ~digits:3 avg; Table.bar avg; "" |];
  [ t ]

(* ---- Table 5: summary of average reductions ----------------------------- *)

let pct_reduction ratio = Printf.sprintf "%.0f%%" (Stats.reduction_pct ratio)

let table5 summaries =
  let t =
    Table.create ~title:"Table 5: average reductions of the tuned heuristics (vs Jikes default)"
      ~header:
        [|
          "scenario"; "SPEC running"; "SPEC total"; "DaCapo running"; "DaCapo total";
        |]
      ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [|
          s.scenario_label;
          pct_reduction s.spec_running;
          pct_reduction s.spec_total;
          pct_reduction s.dacapo_running;
          pct_reduction s.dacapo_total;
        |])
    summaries;
  [ t ]

(* ---- everything ---------------------------------------------------------- *)

let print_tables ts = List.iter (fun t -> Table.print t; print_newline ()) ts

let run_all ctx =
  print_tables (table1 ());
  print_tables (fig1 ());
  print_tables (fig2 ());
  print_tables (sweep ());
  print_tables (table4 ctx);
  let tables5, s5 = fig5 ctx in
  print_tables tables5;
  let tables6, s6 = fig6 ctx in
  print_tables tables6;
  let tables7, s7 = fig7 ctx in
  print_tables tables7;
  let tables8, s8 = fig8 ctx in
  print_tables tables8;
  let tables9, s9 = fig9 ctx in
  print_tables tables9;
  print_tables (fig10 ctx);
  print_tables (table5 [ s5; s6; s7; s8; s9 ])

let run_one ctx = function
  | "table1" -> print_tables (table1 ())
  | "fig1" -> print_tables (fig1 ())
  | "fig2" -> print_tables (fig2 ())
  | "table4" -> print_tables (table4 ctx)
  | "fig5" -> print_tables (fst (fig5 ctx))
  | "fig6" -> print_tables (fst (fig6 ctx))
  | "fig7" -> print_tables (fst (fig7 ctx))
  | "fig8" -> print_tables (fst (fig8 ctx))
  | "fig9" -> print_tables (fst (fig9 ctx))
  | "fig10" -> print_tables (fig10 ctx)
  | "sweep" -> print_tables (sweep ())
  | "table5" ->
    let _, s5 = fig5 ctx in
    let _, s6 = fig6 ctx in
    let _, s7 = fig7 ctx in
    let _, s8 = fig8 ctx in
    let _, s9 = fig9 ctx in
    print_tables (table5 [ s5; s6; s7; s8; s9 ])
  | "all" -> run_all ctx
  | s -> invalid_arg ("Experiments.run_one: unknown experiment " ^ s)

let known =
  [ "table1"; "fig1"; "fig2"; "table4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
    "table5"; "sweep"; "all" ]
