open Inltune_opt

(** The paper's fitness functions (Section 3.1), normalized so the default
    heuristic scores exactly 1.0 per benchmark. *)

type goal =
  | Running  (** minimize running time (later iterations, no compilation) *)
  | Total    (** minimize total time (first iteration, incl. compilation) *)
  | Balance  (** minimize [factor * Running(s) + Total(s)],
                 [factor = Total(s_def) / Running(s_def)] *)

val goal_name : goal -> string
val goal_of_string : string -> goal

(** Per-benchmark metric, as a ratio to the default heuristic's value. *)
val perf : goal -> t:Measure.times -> default:Measure.times -> float

(** Suite-level fitness: geometric mean of {!perf} over the suite.  Baseline
    measurements are taken eagerly on the calling domain; the returned
    closure is safe to call from worker domains.  [plan] selects the pass
    schedule candidates run under (default {!Inltune_opt.Plan.default});
    baselines always use the default plan, so 1.0 means "the stock
    system". *)
val fitness :
  ?plan:Plan.t ->
  suite:Inltune_workloads.Suites.benchmark list ->
  scenario:Inltune_vm.Machine.scenario ->
  platform:Inltune_vm.Platform.t ->
  goal:goal ->
  Heuristic.t -> float

(** Whether an exception is a transient evaluation failure — fuel
    exhaustion, a VM trap, a stack overflow, or an injected fault — worth a
    bounded retry before the genome is penalized. *)
val transient_failure : exn -> bool

(** The ["eval"] fault-injection gate every fitness-evaluation path checks
    (see {!Inltune_resilience.Faultinject}): raises on an injected [Raise],
    burns the fuel budget on [Hang], and returns [true] — evaluate to NaN —
    on [Corrupt].  Exposed so alternative searches over the same simulations
    (the GP policy search) share one fault boundary with the GA. *)
val eval_fault_gate : unit -> bool

(** {!fitness} composed with the genome decoding, for the GA.  Each call
    checks the ["eval"] fault-injection site (see
    {!Inltune_resilience.Faultinject}), so failure paths are testable. *)
val genome_fitness :
  ?plan:Plan.t ->
  suite:Inltune_workloads.Suites.benchmark list ->
  scenario:Inltune_vm.Machine.scenario ->
  platform:Inltune_vm.Platform.t ->
  goal:goal ->
  int array -> float

(** Grid form of {!genome_fitness} for [Evolve.run ?grid]: the suite becomes
    the explicit benchmark axis and every (genome, benchmark) cell is one
    independent pool work item, so unique simulations saturate all domains.
    Cell and combine use the exact float operations of the scalar path —
    the two evaluation modes are bit-identical.  The ["eval"] fault gate is
    checked per cell (one occurrence per simulation).  Baselines are
    measured eagerly on the calling domain. *)
val genome_grid :
  ?plan:Plan.t ->
  suite:Inltune_workloads.Suites.benchmark list ->
  scenario:Inltune_vm.Machine.scenario ->
  platform:Inltune_vm.Platform.t ->
  goal:goal ->
  unit ->
  (int array, Inltune_workloads.Suites.benchmark * Measure.times) Inltune_ga.Evolve.grid

(** Plan-genome fitness: the genome is the five Table 1 genes followed by
    the plan genes ({!Params.plan_genome_spec}); heuristic and plan are
    decoded together per evaluation ({!Params.split_plan_genome}).
    Baselines stay the default heuristic under the default plan, so values
    are directly comparable to {!genome_fitness}'s.  Checks the ["eval"]
    fault gate like {!genome_fitness}. *)
val plan_genome_fitness :
  suite:Inltune_workloads.Suites.benchmark list ->
  scenario:Inltune_vm.Machine.scenario ->
  platform:Inltune_vm.Platform.t ->
  goal:goal ->
  int array -> float

(** Grid form of {!plan_genome_fitness} — same relationship as
    {!genome_grid} to {!genome_fitness}: bit-identical combine, per-cell
    fault gate, eager baselines. *)
val plan_genome_grid :
  suite:Inltune_workloads.Suites.benchmark list ->
  scenario:Inltune_vm.Machine.scenario ->
  platform:Inltune_vm.Platform.t ->
  goal:goal ->
  (int array, Inltune_workloads.Suites.benchmark * Measure.times) Inltune_ga.Evolve.grid
