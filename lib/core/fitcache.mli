open Inltune_jir
open Inltune_opt
open Inltune_vm

(** Decision-signature fitness cache.

    Before paying for a full VM simulation, compute a cheap semantic key for
    the (program, scenario, platform, heuristic) query — a signature of the
    inline/no-inline verdicts the Fig. 3/4 tests produce — and reuse the
    previously measured {!Inltune_vm.Runner.measurement} whenever it
    matches.  Distinct genomes with identical decisions (the paper's plateau
    observation) then cost one simulation instead of many; caching is
    bit-transparent because the compiled code is a function of the decision
    vector alone.

    Under [Opt] the signature hashes the exact per-method decision plans
    ({!Inltune_opt.Inline.plan} over the constant-propagated methods — the
    maximal sound merge); under [Adapt]/[Ladder], where decisions depend on
    the runtime profile, it projects the heuristic's thresholds onto the
    program's distinct method sizes, which is sufficient for identical
    verdicts at every reachable query.

    Two tiers: a process-wide mutex-guarded table (on by default), plus an
    optional append-only JSONL file ({!set_file}; CLI [--fitness-cache])
    whose entries are content-keyed — program digest × scenario × platform ×
    iterations × signature — so they survive restarts and compose with GA
    checkpoint/resume.  Counters: ["fitness.sig_hits"],
    ["fitness.sig_misses"], ["fitness.unique_plans"],
    ["fitness.cache_corrupt"] (skipped JSONL lines on load) and — with a
    tenant hook installed — ["fitness.cross_tenant_hits"]. *)

(** Hex digest of the program's canonical text form; memoized per program
    value.  Part of every cache key, so signatures can never collide across
    programs. *)
val program_digest : Ir.program -> string

(** The decision signature alone (no program digest or platform).
    ["off"] when [inline_enabled] is false or the plan's inline item is
    disabled — every heuristic then compiles identically.  Under [Opt] with
    a plan whose pre-inline schedule differs from the historical one
    ({!Inltune_opt.Plan.walk_compatible} is false) the signature falls back
    to the raw heuristic parameters: still sound, just no cross-genome
    merging. *)
val signature :
  scenario:Machine.scenario ->
  heuristic:Heuristic.t ->
  inline_enabled:bool ->
  plan:Plan.t ->
  Ir.program ->
  string

(** The full content-addressed cache key.  Non-default plans contribute
    their content digest, so their measurements never alias the default
    plan's. *)
val key :
  scenario:Machine.scenario ->
  platform:Platform.t ->
  heuristic:Heuristic.t ->
  inline_enabled:bool ->
  plan:Plan.t ->
  iterations:int ->
  Ir.program ->
  string

val enabled : unit -> bool

(** Toggle the cache (default on).  Disabled, {!lookup_or_measure} always
    simulates and the table is neither consulted nor extended. *)
val set_enabled : bool -> unit

(** Forget every in-memory measurement and tenant-ownership record
    (per-program signature data and the attached file are kept).  Tests and
    the off/on benchmark use this. *)
val clear : unit -> unit

(** Number of measurements currently in the in-memory table. *)
val size : unit -> int

(** [set_tenant_hook f] attributes cache traffic to tenants: [f ()] names
    the tenant the calling thread is currently working for (or [None] for
    anonymous work — e.g. pool worker domains).  Each key remembers the
    tenant that first paid for its simulation; a later hit by a *different*
    tenant bumps ["fitness.cross_tenant_hits"].  The default hook returns
    [None], keeping the whole mechanism inert outside the serve daemon. *)
val set_tenant_hook : (unit -> string option) -> unit

(** [set_file (Some path)] attaches the on-disk tier: existing entries are
    loaded, and every fresh measurement is appended as one JSONL line.
    Corrupt or truncated lines are skipped — never an abort — counted in
    ["fitness.cache_corrupt"], with a single summary warning per file on
    stderr carrying the first bad line's position and cause.  [set_file
    None] detaches. *)
val set_file : string option -> unit

(** Is the query's measurement already cached?  (No counters are bumped;
    [Measure.run_default] uses this to keep its memo counters truthful.) *)
val mem :
  scenario:Machine.scenario ->
  platform:Platform.t ->
  heuristic:Heuristic.t ->
  inline_enabled:bool ->
  plan:Plan.t ->
  iterations:int ->
  Ir.program ->
  bool

(** [lookup_or_measure ... ~program simulate] returns the cached measurement
    for the query's key, or runs [simulate] (outside the cache lock) and
    stores — and, when a file is attached, appends — its result.  When the
    cache is disabled this is just [simulate ()]. *)
val lookup_or_measure :
  scenario:Machine.scenario ->
  platform:Platform.t ->
  heuristic:Heuristic.t ->
  inline_enabled:bool ->
  plan:Plan.t ->
  iterations:int ->
  program:Ir.program ->
  (unit -> Runner.measurement) ->
  Runner.measurement

(** Decision signature of a first-class policy.  [static] asserts the policy
    reads nothing but the program and the site record — never the VM's live
    profile; under [Opt] with a walk-compatible plan that makes
    {!Inltune_opt.Inline.plan_policy} over the constprop'd methods exact, so
    the signature shares the heuristic walk's "w:" namespace and cache hits
    transfer across structurally different policies (and heuristics) that
    make identical decisions.  Everywhere else the signature is ["g:"]
    followed by [digest] — the policy artifact's content digest (sound, no
    cross-policy merging). *)
val policy_signature :
  scenario:Machine.scenario ->
  policy:Policy.t ->
  digest:string ->
  static:bool ->
  inline_enabled:bool ->
  plan:Plan.t ->
  Ir.program ->
  string

(** Full content-addressed key for a policy query. *)
val policy_key :
  scenario:Machine.scenario ->
  platform:Platform.t ->
  policy:Policy.t ->
  digest:string ->
  static:bool ->
  inline_enabled:bool ->
  plan:Plan.t ->
  iterations:int ->
  Ir.program ->
  string

(** {!lookup_or_measure} keyed by {!policy_signature}: same table, counters,
    and on-disk tier, so policy and heuristic measurements amortize each
    other whenever their decision signatures coincide. *)
val lookup_or_measure_policy :
  scenario:Machine.scenario ->
  platform:Platform.t ->
  policy:Policy.t ->
  digest:string ->
  static:bool ->
  inline_enabled:bool ->
  plan:Plan.t ->
  iterations:int ->
  program:Ir.program ->
  (unit -> Runner.measurement) ->
  Runner.measurement
