open Inltune_opt
module Stats = Inltune_support.Stats

(* The paper's fitness functions (Section 3.1): minimize the geometric mean
   over the training suite of a per-benchmark metric — running time, total
   time, or the balance  Perf(s) = factor * Running(s) + Total(s)  with
   factor = Total(s_def) / Running(s_def).

   Each per-benchmark metric is normalized by the default heuristic's value
   for the same benchmark so the geomean is scale-free (1.0 = exactly the
   default heuristic's performance). *)

type goal = Running | Total | Balance

let goal_name = function Running -> "running" | Total -> "total" | Balance -> "balance"

let goal_of_string = function
  | "running" -> Running
  | "total" -> Total
  | "balance" -> Balance
  | s -> invalid_arg ("Objective.goal_of_string: " ^ s)

let perf goal ~(t : Measure.times) ~(default : Measure.times) =
  match goal with
  | Running -> t.Measure.running /. default.Measure.running
  | Total -> t.Measure.total /. default.Measure.total
  | Balance ->
    let factor = default.Measure.total /. default.Measure.running in
    let v = (factor *. t.Measure.running) +. t.Measure.total in
    let d = (factor *. default.Measure.running) +. default.Measure.total in
    v /. d

(* A reusable fitness function over a suite.  Baseline (default-heuristic,
   default-plan) measurements are taken once, up front, on the calling
   domain; the returned closure is then safe to call from worker domains.
   [plan] selects the pass schedule the candidate heuristics run under; the
   baselines always use the default plan, so 1.0 means "the stock system"
   regardless of the plan being evaluated. *)
let fitness ?plan ~suite ~scenario ~platform ~goal =
  let baselines =
    List.map (fun bm -> (bm, Measure.run_default ~scenario ~platform bm)) suite
  in
  fun heuristic ->
    let scores =
      List.map
        (fun (bm, default) ->
          let t = Measure.run ?plan ~scenario ~platform ~heuristic bm in
          perf goal ~t ~default)
        baselines
    in
    Stats.geomean (Array.of_list scores)

(* Which exceptions a fitness evaluation may raise transiently — worth a
   bounded retry before the genome is penalized and quarantined.  Everything
   else is a bug and should fail fast (the guarded GA still isolates it to
   the one genome, but does not retry). *)
let transient_failure = function
  | Inltune_vm.Machine.Out_of_fuel | Inltune_vm.Machine.Trap _ -> true
  | Stack_overflow -> true
  | Inltune_resilience.Faultinject.Injected _ -> true
  | _ -> false

(* Genome-level fitness for the GA.  This is the evaluation stack's fault
   boundary: each call checks the "eval" fault-injection site, so CI can make
   the k-th evaluation raise, burn its fuel budget, or return corrupt output
   and exercise the retry/penalty/quarantine paths end to end. *)
(* The "eval" fault-injection gate shared by the scalar and grid evaluation
   paths, so CI can make the k-th evaluation raise, burn its fuel budget, or
   return corrupt output and exercise retry/penalty/quarantine end to end. *)
let eval_fault_gate () =
  match Inltune_resilience.Faultinject.check "eval" with
  | Some Inltune_resilience.Faultinject.Raise ->
    raise (Inltune_resilience.Faultinject.Injected "eval")
  | Some Inltune_resilience.Faultinject.Hang ->
    (* A hung evaluation is one that burns its whole fuel budget. *)
    raise Inltune_vm.Machine.Out_of_fuel
  | Some Inltune_resilience.Faultinject.Corrupt -> true
  | None -> false

let genome_fitness ?plan ~suite ~scenario ~platform ~goal =
  let f = fitness ?plan ~suite ~scenario ~platform ~goal in
  fun g -> if eval_fault_gate () then Float.nan else f (Heuristic.of_array g)

(* Grid form of {!genome_fitness} for [Evolve.run ?grid]: the benchmark axis
   is explicit and each (genome, benchmark) cell is one pool work item.  The
   cell value and the combine are the exact float operations of the scalar
   path (per-benchmark [perf] in suite order, then geomean), so the two
   evaluation modes produce bit-identical fitness.  The fault gate moves to
   cell granularity — each simulation is one "eval" occurrence. *)
let genome_grid ?plan ~suite ~scenario ~platform ~goal () =
  let baselines =
    List.map (fun bm -> (bm, Measure.run_default ~scenario ~platform bm)) suite
  in
  {
    Inltune_ga.Evolve.grid_axis = Array.of_list baselines;
    grid_cell =
      (fun g (bm, default) ->
        if eval_fault_gate () then Float.nan
        else
          let t = Measure.run ?plan ~scenario ~platform ~heuristic:(Heuristic.of_array g) bm in
          perf goal ~t ~default);
    grid_combine = (fun _ cells -> Stats.geomean cells);
  }

(* Plan-genome mode: the genome is the five Table 1 genes followed by the
   plan genes ({!Params.plan_genome_spec}); heuristic and plan are decoded
   together per evaluation.  Baselines stay the default heuristic under the
   default plan, so 1.0 still means "the stock system" and plan-genome
   fitness values are directly comparable to heuristic-only ones. *)
let plan_genome_fitness ~suite ~scenario ~platform ~goal =
  let baselines =
    List.map (fun bm -> (bm, Measure.run_default ~scenario ~platform bm)) suite
  in
  fun g ->
    if eval_fault_gate () then Float.nan
    else
      let heuristic, plan = Params.split_plan_genome g in
      let scores =
        List.map
          (fun (bm, default) ->
            let t = Measure.run ~plan ~scenario ~platform ~heuristic bm in
            perf goal ~t ~default)
          baselines
      in
      Stats.geomean (Array.of_list scores)

let plan_genome_grid ~suite ~scenario ~platform ~goal =
  let baselines =
    List.map (fun bm -> (bm, Measure.run_default ~scenario ~platform bm)) suite
  in
  {
    Inltune_ga.Evolve.grid_axis = Array.of_list baselines;
    grid_cell =
      (fun g (bm, default) ->
        if eval_fault_gate () then Float.nan
        else
          let heuristic, plan = Params.split_plan_genome g in
          let t = Measure.run ~plan ~scenario ~platform ~heuristic bm in
          perf goal ~t ~default);
    grid_combine = (fun _ cells -> Stats.geomean cells);
  }

