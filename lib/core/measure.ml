open Inltune_opt
open Inltune_vm
module Workloads = Inltune_workloads

(* Benchmark measurement: one (benchmark, scenario, platform, heuristic)
   simulation following the paper's two-iteration methodology.

   Every measurement flows through [Fitcache]: a query whose decision
   signature was measured before reuses that result instead of simulating
   again.  "measure.simulations" counts the full VM simulations actually
   performed — the number the tuner bench reports caching savings against. *)

type times = {
  running : float;  (* cycles, as float for the fitness arithmetic *)
  total : float;
  compile : float;
  raw : Runner.measurement;
}

let of_measurement m =
  {
    running = Float.of_int m.Runner.running_cycles;
    total = Float.of_int m.Runner.total_cycles;
    compile = Float.of_int m.Runner.first_compile_cycles;
    raw = m;
  }

(* Counters are re-resolved per use (not captured at module init) so they
   stay attached to the registry across [Metric.reset_all]. *)
let bump name = Inltune_obs.Metric.incr (Inltune_obs.Metric.counter name)

let run ?(iterations = 3) ?(inline_enabled = true) ?(plan = Plan.default) ~scenario ~platform
    ~heuristic bm =
  let prog = Workloads.Suites.program bm in
  let simulate () =
    bump "measure.simulations";
    let cfg = Machine.config ~inline_enabled ~plan scenario heuristic in
    Runner.measure ~iterations cfg platform prog
  in
  if not (Inltune_obs.Prof.enabled ()) then
    of_measurement
      (Fitcache.lookup_or_measure ~scenario ~platform ~heuristic ~inline_enabled ~plan ~iterations
         ~program:prog simulate)
  else begin
    (* Profiled path: same calls, plus a "fitness.eval" span whose self time
       is exactly the Fitcache lookup overhead (simulation time lands in the
       nested "vm.execute"), and a per-evaluation breakdown event splitting
       wall time into simulate vs. cache bookkeeping. *)
    let module Trace = Inltune_obs.Trace in
    let module Event = Inltune_obs.Event in
    let sim_wall = ref 0.0 in
    let simulate () =
      let t0 = Trace.now () in
      let m = simulate () in
      sim_wall := Trace.now () -. t0;
      m
    in
    let wall = ref 0.0 in
    let m =
      Inltune_obs.Prof.span "fitness.eval" ~on_time:(fun dt -> wall := dt) (fun () ->
          Fitcache.lookup_or_measure ~scenario ~platform ~heuristic ~inline_enabled ~plan
            ~iterations ~program:prog simulate)
    in
    Inltune_obs.Metric.observe (Inltune_obs.Metric.histogram "fitness.eval_us") (!wall *. 1e6);
    if Trace.enabled () then
      Trace.emit "fitness.breakdown"
        ~fields:
          [
            ("prog", Event.Str bm.Workloads.Suites.bname);
            ("scenario", Event.Str (Machine.scenario_name scenario));
            ("simulated", Event.Bool (!sim_wall > 0.0));
            ("wall_us", Event.Float (!wall *. 1e6));
            ("sim_us", Event.Float (!sim_wall *. 1e6));
            ("cache_us", Event.Float (Float.max 0.0 (!wall -. !sim_wall) *. 1e6));
          ];
    of_measurement m
  end

(* Measurements with the default (Jikes) heuristic are requested constantly —
   every normalized bar divides by one — so memoize the [times] value itself
   (callers rely on physical sharing).  A miss routes through {!run}, i.e.
   through [Fitcache]: even a first-time call here avoids the simulation
   when some other heuristic with the same decision signature (or a loaded
   --fitness-cache file) already measured it, and two domains racing on the
   same key both get the same deterministic result.  The memo key includes
   [inline_enabled] (pinned true here) so it can never alias a
   differently-configured measurement; the memo_hits/memo_misses counters
   report this table's outcomes exactly. *)
let default_cache : (string, times) Hashtbl.t = Hashtbl.create 64
let default_cache_mu = Mutex.create ()

let run_default ?(iterations = 3) ~scenario ~platform bm =
  let key =
    Printf.sprintf "%s/%s/%s/%d/%b" bm.Workloads.Suites.bname
      (Machine.scenario_name scenario) platform.Platform.pname iterations true
  in
  let cached =
    Mutex.lock default_cache_mu;
    let c = Hashtbl.find_opt default_cache key in
    Mutex.unlock default_cache_mu;
    c
  in
  match cached with
  | Some t ->
    bump "measure.memo_hits";
    t
  | None ->
    bump "measure.memo_misses";
    let t = run ~iterations ~scenario ~platform ~heuristic:Heuristic.default bm in
    Mutex.lock default_cache_mu;
    let t =
      match Hashtbl.find_opt default_cache key with
      | Some existing -> existing
      | None ->
        Hashtbl.add default_cache key t;
        t
    in
    Mutex.unlock default_cache_mu;
    t

(* The Fig. 1 baseline: same scenario, inlining disabled entirely. *)
let run_no_inlining ?(iterations = 3) ~scenario ~platform bm =
  run ~iterations ~inline_enabled:false ~scenario ~platform ~heuristic:Heuristic.never bm
