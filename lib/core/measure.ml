open Inltune_opt
open Inltune_vm
module Workloads = Inltune_workloads

(* Benchmark measurement: one (benchmark, scenario, platform, heuristic)
   simulation following the paper's two-iteration methodology. *)

type times = {
  running : float;  (* cycles, as float for the fitness arithmetic *)
  total : float;
  compile : float;
  raw : Runner.measurement;
}

let of_measurement m =
  {
    running = Float.of_int m.Runner.running_cycles;
    total = Float.of_int m.Runner.total_cycles;
    compile = Float.of_int m.Runner.first_compile_cycles;
    raw = m;
  }

let run ?(iterations = 3) ?(inline_enabled = true) ~scenario ~platform ~heuristic bm =
  let prog = Workloads.Suites.program bm in
  let cfg = Machine.config ~inline_enabled scenario heuristic in
  of_measurement (Runner.measure ~iterations cfg platform prog)

(* Measurements with the default (Jikes) heuristic are requested constantly —
   every normalized bar divides by one — so memoize those alone.  The cache
   key is benchmark/scenario/platform; the heuristic is pinned to default.
   Mutex-guarded so callers in worker domains (e.g. a fitness function that
   didn't precompute its baselines) can't corrupt the table; the simulation
   itself runs outside the lock, so two domains racing on the same key may
   both measure, but both get the same deterministic result. *)
let default_cache : (string, times) Hashtbl.t = Hashtbl.create 64
let default_cache_mu = Mutex.create ()
let memo_hits = Inltune_obs.Metric.counter "measure.memo_hits"
let memo_misses = Inltune_obs.Metric.counter "measure.memo_misses"

let run_default ?(iterations = 3) ~scenario ~platform bm =
  let key =
    Printf.sprintf "%s/%s/%s/%d" bm.Workloads.Suites.bname (Machine.scenario_name scenario)
      platform.Platform.pname iterations
  in
  let cached =
    Mutex.lock default_cache_mu;
    let c = Hashtbl.find_opt default_cache key in
    Mutex.unlock default_cache_mu;
    c
  in
  match cached with
  | Some t ->
    Inltune_obs.Metric.incr memo_hits;
    t
  | None ->
    Inltune_obs.Metric.incr memo_misses;
    let t = run ~iterations ~scenario ~platform ~heuristic:Heuristic.default bm in
    Mutex.lock default_cache_mu;
    if not (Hashtbl.mem default_cache key) then Hashtbl.add default_cache key t;
    Mutex.unlock default_cache_mu;
    t

(* The Fig. 1 baseline: same scenario, inlining disabled entirely. *)
let run_no_inlining ?(iterations = 3) ~scenario ~platform bm =
  run ~iterations ~inline_enabled:false ~scenario ~platform ~heuristic:Heuristic.never bm
