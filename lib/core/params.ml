open Inltune_opt

(* Paper Table 1: the tuned parameters, their meanings and search ranges,
   plus the Jikes RVM defaults (Table 4, column 1). *)

type row = {
  pname : string;
  meaning : string;
  lo : int;
  hi : int;
  default : int;
}

let table1 =
  [
    {
      pname = "CALLEE_MAX_SIZE";
      meaning = "Maximum callee size allowable to inline";
      lo = 1;
      hi = 50;
      default = Heuristic.default.Heuristic.callee_max_size;
    };
    {
      pname = "ALWAYS_INLINE_SIZE";
      meaning = "Callee methods less than this size are always inlined";
      lo = 1;
      hi = 20;
      default = Heuristic.default.Heuristic.always_inline_size;
    };
    {
      pname = "MAX_INLINE_DEPTH";
      meaning = "Maximum inlining depth at a particular call site";
      lo = 1;
      hi = 15;
      default = Heuristic.default.Heuristic.max_inline_depth;
    };
    {
      pname = "CALLER_MAX_SIZE";
      meaning = "Maximum caller size to inline into";
      lo = 1;
      hi = 4000;
      default = Heuristic.default.Heuristic.caller_max_size;
    };
    {
      pname = "HOT_CALLEE_MAX_SIZE";
      meaning = "Maximum hot callee to inline";
      lo = 1;
      hi = 400;
      default = Heuristic.default.Heuristic.hot_callee_max_size;
    };
  ]

(* The GA's genome spec is exactly these ranges, in order. *)
let genome_spec =
  Inltune_ga.Genome.spec (Array.of_list (List.map (fun r -> (r.lo, r.hi)) table1))

let heuristic_of_genome g = Heuristic.of_array g
let genome_of_heuristic h = Heuristic.to_array h

(* The composite genome for plan tuning: the five Table 1 heuristic genes
   followed by the plan genes (pass toggles, strengths, payoff order). *)
let plan_genome_spec =
  Inltune_ga.Genome.concat genome_spec (Inltune_ga.Genome.spec Plan.tunable_ranges)

let default_plan_genome =
  Array.append (Heuristic.to_array Heuristic.default) Plan.default_genes

let split_plan_genome g =
  let nh = List.length table1 in
  if Array.length g < nh then
    invalid_arg "Params.split_plan_genome: genome shorter than the heuristic prefix";
  ( Heuristic.of_array (Array.sub g 0 nh),
    Plan.of_genes (Array.sub g nh (Array.length g - nh)) )

(* Parse "k=v,k=v" overrides on top of the default heuristic (CLI syntax). *)
let heuristic_of_string s =
  let h = ref (Heuristic.to_array Heuristic.default) in
  if String.trim s <> "" then
    String.split_on_char ',' s
    |> List.iter (fun kv ->
           match String.split_on_char '=' (String.trim kv) with
           | [ k; v ] ->
             let v = int_of_string (String.trim v) in
             let k = String.uppercase_ascii (String.trim k) in
             let idx =
               match k with
               | "CALLEE_MAX_SIZE" -> 0
               | "ALWAYS_INLINE_SIZE" -> 1
               | "MAX_INLINE_DEPTH" -> 2
               | "CALLER_MAX_SIZE" -> 3
               | "HOT_CALLEE_MAX_SIZE" -> 4
               | _ -> invalid_arg ("unknown parameter " ^ k)
             in
             !h.(idx) <- v
           | _ -> invalid_arg ("bad parameter syntax: " ^ kv));
  Heuristic.of_array !h
