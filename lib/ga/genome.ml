module Rng = Inltune_support.Rng

(* Integer-vector genomes with per-gene inclusive ranges — the genome class
   the paper configures ECJ with (one gene per inlining parameter). *)

type spec = { ranges : (int * int) array }

let spec ranges =
  Array.iter (fun (lo, hi) -> if lo > hi then invalid_arg "Genome.spec: empty range") ranges;
  { ranges }

let length s = Array.length s.ranges

(* [a]'s genes followed by [b]'s — the composite heuristic+plan genome. *)
let concat a b = { ranges = Array.append a.ranges b.ranges }

let random s rng = Array.map (fun (lo, hi) -> Rng.range rng lo hi) s.ranges

let clamp s g =
  Array.mapi
    (fun i v ->
      let lo, hi = s.ranges.(i) in
      max lo (min hi v))
    g

let valid s g =
  Array.length g = length s
  && Array.for_all2 (fun v (lo, hi) -> v >= lo && v <= hi) g s.ranges

(* Stable key for fitness memoization. *)
let key g = String.concat "," (Array.to_list (Array.map string_of_int g))

(* Size of the search space, as a float (2.4e10 for the paper's Table 1
   ranges; the paper itself quotes ~3e11). *)
let space_size s =
  Array.fold_left (fun acc (lo, hi) -> acc *. Float.of_int (hi - lo + 1)) 1.0 s.ranges

let range s i = s.ranges.(i)
