module Rng = Inltune_support.Rng
module Pool = Inltune_support.Pool
module Stats = Inltune_support.Stats
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event
module Metric = Inltune_obs.Metric
module Sandbox = Inltune_resilience.Sandbox
module Checkpoint = Inltune_resilience.Checkpoint

(* Generational genetic algorithm, minimizing a fitness function — the role
   ECJ plays in the paper.

   The search loop itself is representation-agnostic: [run_repr] works over
   an abstract genome type through a [repr] record (key, random, crossover,
   mutate, copy) and is what both the paper's integer-vector GA ([run], one
   gene per inlining parameter) and the genetic-programming policy search
   (lib/gp, expression-tree genomes) instantiate.

   One generation: keep the [elites] best individuals, then fill the
   population with offspring produced by tournament selection, crossover and
   mutation.  Fitness evaluations are memoized (the GA revisits genotypes
   constantly) and cache misses of a generation are evaluated in parallel
   across domains.

   The paper's searches run for days; two mechanisms keep them alive:

   - A [guard] makes evaluation fault-tolerant: each cache miss runs inside
     [Sandbox.protect] (bounded retry, deterministic backoff), a genome whose
     every attempt fails gets the penalty fitness and is quarantined so it is
     never evaluated again, and a generation whose fresh-evaluation failure
     rate exceeds the threshold stops the search gracefully — best-known
     result, recorded reason — instead of crashing it.

   - [save] appends one complete snapshot per generation (population,
     RNG state, memo cache, quarantine, history, counters); [resume] restores
     the snapshot and continues bit-identically to an uninterrupted run,
     because every stochastic choice flows through the restored RNG and no
     fitness is ever recomputed. *)

type params = {
  pop_size : int;
  generations : int;
  crossover_prob : float;
  mutation_prob : float;  (* int genomes: per gene; trees: per individual *)
  tournament : int;
  elites : int;
  seed : int;
  domains : int option;   (* None = Pool's default; Some 1 = sequential *)
}

let default_params =
  {
    pop_size = 20;
    generations = 50;
    crossover_prob = 0.9;
    mutation_prob = 0.1;
    tournament = 2;
    elites = 2;
    seed = 42;
    domains = None;
  }

(* Failure isolation policy for fitness evaluation.  [classify] decides which
   exceptions are sandboxed (retried, then penalized); anything else is still
   isolated per-item by the pool but fails without retry. *)
type guard = {
  max_retries : int;          (* additional attempts after the first failure *)
  penalty : float;            (* fitness assigned to genomes that keep failing *)
  failure_threshold : float;  (* stop when > this fraction of a generation's
                                 fresh evaluations fail *)
  classify : exn -> bool;     (* transient (retryable) failure? *)
}

let default_guard =
  {
    max_retries = 1;
    penalty = 1.0e6;
    failure_threshold = 0.5;
    classify = (fun _ -> true);
  }

(* Flat-grid evaluation: instead of one opaque [fitness] call per genome
   (inside which the suite is walked serially), the GA can be handed the
   benchmark axis explicitly and submit the whole genome × benchmark grid to
   the pool as independent cells.  Unique simulations then saturate every
   domain even when the fresh-genome count of a generation is smaller than
   the domain count.  [grid_combine] folds one genome's per-benchmark cell
   values (in [grid_axis] order) into its fitness — with the same float
   operations as the scalar path, so switching modes is bit-transparent.
   The genome is passed to the combine so representations can apply
   genome-shape terms (the GP's parsimony pressure) on top of the fold. *)
type ('g, 'bm) grid = {
  grid_axis : 'bm array;
  grid_cell : 'g -> 'bm -> float;
  grid_combine : 'g -> float array -> float;
}

type progress = {
  generation : int;
  best_fitness : float;
  mean_fitness : float;
  evaluations : int;  (* cumulative distinct evaluations so far *)
}

(* Search telemetry, one record per generation.  Deliberately separate from
   [progress]: progress maps 1:1 onto checkpoint entries and is part of the
   bit-identity contract (resume must reproduce it exactly), whereas these
   numbers include wall-clock and pool readings that legitimately vary
   between runs. *)
type gen_stats = {
  g_gen : int;
  g_best : float;
  g_mean : float;
  g_evals : int;        (* cumulative distinct evaluations *)
  g_fresh : int;        (* distinct genomes evaluated this generation *)
  g_cache_hits : int;   (* cumulative memo-cache hits *)
  g_diversity : float;  (* distinct genotypes / pop_size, in (0, 1] *)
  g_quarantined : int;  (* quarantine size so far *)
  g_stolen : int;       (* pool chunks stolen by workers this generation *)
  g_idle_ns : int;      (* pool worker idle time this generation *)
  g_busy_ns : int;      (* pool worker busy time this generation *)
  g_wall_s : float;     (* wall time of this generation *)
}

type result = {
  best : int array;
  best_fitness : float;
  history : progress list;  (* oldest first *)
  evaluations : int;
  cache_hits : int;
  failures : int;           (* distinct genomes whose evaluation failed *)
  quarantined : int;        (* size of the quarantine set at the end *)
  stopped : string option;  (* reason the search degraded/stopped early *)
}

(* --- the representation-generic engine ---------------------------------- *)

(* What the engine needs from a genome representation.  Every stochastic
   operator takes the run's RNG so the whole search stays a deterministic
   function of the seed. *)
type 'g repr = {
  r_key : 'g -> string;                      (* stable memoization key *)
  r_random : Rng.t -> 'g;                    (* fresh random individual *)
  r_crossover : Rng.t -> 'g -> 'g -> 'g * 'g;
  r_mutate : Rng.t -> 'g -> 'g;
  r_copy : 'g -> 'g;                         (* [Fun.id] for immutable genomes *)
}

(* One self-contained snapshot of the search, the unit of checkpointing.
   [run_repr] hands these to the [save] hook after every generation and
   restores one from the [resume] hook; persistence formats are the
   instantiation's business (int-array GA: {!Inltune_resilience.Checkpoint};
   GP trees: lib/gp's own JSONL). *)
type 'g snapshot = {
  s_gen : int;                     (* last completed generation *)
  s_rng : int64;                   (* raw RNG state after this generation *)
  s_pop : 'g array;
  s_best : 'g option;
  s_best_fitness : float;
  s_cache : (string * float) list; (* genome key -> fitness, sorted by key *)
  s_quarantine : string list;      (* genome keys, sorted *)
  s_history : progress list;       (* oldest first *)
  s_evaluations : int;
  s_cache_hits : int;
  s_failures : int;
  s_retries : int;
}

(* Generic search outcome; [run] narrows it back to [result]. *)
type 'g search = {
  s_best_genome : 'g option;   (* None only if nothing ever evaluated finite *)
  s_fitness : float;
  s_progress : progress list;  (* oldest first *)
  s_evals : int;
  s_hits : int;
  s_failed : int;
  s_quarantined : int;
  s_stopped : string option;
}

let crossover rng a b =
  let n = Array.length a in
  if n < 2 then (Array.copy a, Array.copy b)
  else begin
    let cut = 1 + Rng.int rng (n - 1) in
    let child1 = Array.init n (fun i -> if i < cut then a.(i) else b.(i)) in
    let child2 = Array.init n (fun i -> if i < cut then b.(i) else a.(i)) in
    (child1, child2)
  end

let mutate spec params rng g =
  Array.mapi
    (fun i v ->
      if Rng.chance rng params.mutation_prob then
        let lo, hi = Genome.range spec i in
        Rng.range rng lo hi
      else v)
    g

let progress_entry p =
  {
    Checkpoint.e_gen = p.generation;
    e_best = p.best_fitness;
    e_mean = p.mean_fitness;
    e_evals = p.evaluations;
  }

let entry_progress (e : Checkpoint.entry) =
  {
    generation = e.Checkpoint.e_gen;
    best_fitness = e.Checkpoint.e_best;
    mean_fitness = e.Checkpoint.e_mean;
    evaluations = e.Checkpoint.e_evals;
  }

(* [prefilter], when given, is consulted for every fresh (uncached) genome
   before its simulations are submitted: [Some surrogate] records that value
   as the genome's fitness without evaluating it.  It receives the best
   individual of the *previous* generation (None until one exists), which is
   exactly what a restored snapshot carries — so prefilter decisions replay
   identically across resume.  Surrogates enter the memo cache and therefore
   the checkpoint, like any other fitness.

   [best_view], when given, adds a ["best_genome"] field (the rendered best
   individual) to the per-generation trace event — the GP's best-tree trace.

   [label] names the trace events ("ga" -> "ga.generation" etc.). *)
let run_repr ?on_generation ?on_stats ?guard ?save ?resume ?grid ?prefilter ?best_view
    ~label ~repr ~params ~fitness () =
  if params.pop_size < 2 then invalid_arg "Evolve.run: population too small";
  if params.elites >= params.pop_size then invalid_arg "Evolve.run: too many elites";
  if params.tournament < 1 then invalid_arg "Evolve.run: tournament size must be >= 1";
  let t_start = Trace.now () in
  let c_quarantined = Metric.counter "eval.quarantined" in
  let c_quarantine_hits = Metric.counter "eval.quarantine_hits" in
  let cache : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let quarantine : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let evaluations = ref 0 in
  let cache_hits = ref 0 in
  let failures = ref 0 in
  let retries = ref 0 in
  let stopped = ref None in
  let best = ref None in
  let best_fit = ref infinity in
  (* Failure rate of the most recent evaluate_all, for the degradation check. *)
  let last_failed = ref 0 in
  let last_attempted = ref 0 in
  (* Fresh-genome count of the most recent evaluate_all, for telemetry. *)
  let last_fresh = ref 0 in
  (* Pool-counter high-water marks so telemetry reports per-generation
     deltas; reads only, so profiling/telemetry cannot perturb the search. *)
  let prev_stolen = ref (Metric.value (Metric.counter "pool.tasks_stolen")) in
  let prev_idle = ref (Metric.value (Metric.counter "pool.idle_ns")) in
  let prev_busy = ref (Metric.value (Metric.counter "pool.busy_ns")) in
  let last_t = ref t_start in
  let evaluate_all pop =
    (* Partition into cached and new genotypes; evaluate the new ones in
       parallel, then read everything from the cache. *)
    let fresh = Hashtbl.create 16 in
    Array.iter
      (fun g ->
        let k = repr.r_key g in
        if Hashtbl.mem cache k then begin
          incr cache_hits;
          if Hashtbl.mem quarantine k then Metric.incr c_quarantine_hits
        end
        else if not (Hashtbl.mem fresh k) then Hashtbl.add fresh k g)
      pop;
    let todo = Hashtbl.fold (fun _ g acc -> g :: acc) fresh [] |> Array.of_list in
    (* Sort for a deterministic evaluation order independent of hashing. *)
    Array.sort compare todo;
    (* The prefilter sees fresh genomes in that same deterministic order and
       assigns surrogates against the previous generation's best, so its
       verdicts are a pure function of checkpointed state. *)
    let todo =
      match prefilter with
      | None -> todo
      | Some pf ->
        let elite =
          match !best with Some b when !best_fit < infinity -> Some (b, !best_fit) | _ -> None
        in
        let keep = Inltune_support.Vec.create () in
        Array.iter
          (fun g ->
            match pf ~best:elite g with
            | Some surrogate -> Hashtbl.replace cache (repr.r_key g) surrogate
            | None -> Inltune_support.Vec.push keep g)
          todo;
        Inltune_support.Vec.to_array keep
    in
    last_fresh := Array.length todo;
    (* Grid mode flattens fresh genomes × benchmarks into independent pool
       cells; [flat] builds that cell array in genome-major, axis order. *)
    let flat gr =
      let nb = Array.length gr.grid_axis in
      ( nb,
        Array.init (Array.length todo * nb) (fun i ->
            (todo.(i / nb), gr.grid_axis.(i mod nb))) )
    in
    (match guard with
    | None ->
      (* Legacy semantics: any failure escapes as Pool.Worker_failure,
         carrying the index of the genome in evaluation order. *)
      let scores =
        match grid with
        | None -> Pool.map ?domains:params.domains fitness todo
        | Some gr ->
          let nb, cells = flat gr in
          let vals =
            try Pool.map ?domains:params.domains (fun (g, bm) -> gr.grid_cell g bm) cells
            with Pool.Worker_failure (i, e) -> raise (Pool.Worker_failure (i / nb, e))
          in
          Array.mapi (fun i g -> gr.grid_combine g (Array.sub vals (i * nb) nb)) todo
      in
      Array.iteri
        (fun i g ->
          Hashtbl.replace cache (repr.r_key g) scores.(i);
          incr evaluations)
        todo
    | Some gu ->
      let protect f x =
        Sandbox.protect ~max_retries:gu.max_retries ~classify:gu.classify ~site:"eval"
          (fun () -> f x)
      in
      (* Per-genome outcome: fitness with the extra (retry) attempts spent, a
         sandboxed failure, or a non-sandboxable exception.  In grid mode a
         genome fails if any of its cells failed; the first failing cell (in
         axis order) names the attempts/reason, and retries spent on its
         other cells still count. *)
      let outcomes =
        match grid with
        | None ->
          Array.map
            (function
              | Ok (Ok ok) -> `Value (ok.Sandbox.value, ok.Sandbox.attempts - 1)
              | Ok (Error fl) ->
                (* Sandboxed failure: every attempt raised or returned garbage. *)
                `Sandboxed (fl.Sandbox.f_attempts, fl.Sandbox.f_reason, fl.Sandbox.f_attempts - 1)
              | Error e -> `Raw e)
            (Pool.map_result ?domains:params.domains (protect fitness) todo)
        | Some gr ->
          let nb, cells = flat gr in
          let couts =
            Pool.map_result ?domains:params.domains
              (protect (fun (g, bm) -> gr.grid_cell g bm))
              cells
          in
          Array.mapi
            (fun i g ->
              let vals = Array.make nb 0.0 in
              let extra = ref 0 in
              let fail = ref None in
              for j = 0 to nb - 1 do
                match couts.((i * nb) + j) with
                | Ok (Ok ok) ->
                  extra := !extra + (ok.Sandbox.attempts - 1);
                  vals.(j) <- ok.Sandbox.value
                | Ok (Error fl) ->
                  extra := !extra + (fl.Sandbox.f_attempts - 1);
                  if !fail = None then
                    fail := Some (`Cell (fl.Sandbox.f_attempts, fl.Sandbox.f_reason))
                | Error e -> if !fail = None then fail := Some (`Exn e)
              done;
              match !fail with
              | Some (`Cell (attempts, reason)) -> `Sandboxed (attempts, reason, !extra)
              | Some (`Exn e) -> `Raw e
              | None -> `Value (gr.grid_combine g vals, !extra))
            todo
      in
      let failed_here = ref 0 in
      Array.iteri
        (fun i g ->
          let k = repr.r_key g in
          (match outcomes.(i) with
          | `Value (v, extra) ->
            retries := !retries + extra;
            Hashtbl.replace cache k v
          | `Sandboxed (attempts, reason, extra) ->
            incr failed_here;
            retries := !retries + extra;
            Hashtbl.replace cache k gu.penalty;
            Hashtbl.replace quarantine k ();
            Metric.incr c_quarantined;
            if Trace.enabled () then
              Trace.emit "eval.quarantine"
                ~fields:
                  [
                    ("genome", Event.Str k);
                    ("attempts", Event.Int attempts);
                    ("reason", Event.Str reason);
                  ]
          | `Raw e ->
            (* Non-sandboxable exception (guard.classify rejected it): the
               pool still isolated it, so penalize without retry. *)
            incr failed_here;
            Metric.incr (Metric.counter "eval.failures");
            Hashtbl.replace cache k gu.penalty;
            Hashtbl.replace quarantine k ();
            Metric.incr c_quarantined;
            if Trace.enabled () then
              Trace.emit "eval.quarantine"
                ~fields:
                  [
                    ("genome", Event.Str k);
                    ("attempts", Event.Int 1);
                    ("reason", Event.Str (Printexc.to_string e));
                  ]);
          incr evaluations)
        todo;
      failures := !failures + !failed_here;
      last_failed := !failed_here;
      last_attempted := Array.length todo);
    Array.map (fun g -> Hashtbl.find cache (repr.r_key g)) pop
  in
  let degraded gen =
    match guard with
    | Some gu
      when !last_attempted > 0
           && Float.of_int !last_failed /. Float.of_int !last_attempted > gu.failure_threshold ->
      let reason =
        Printf.sprintf "generation %d: %d of %d fresh evaluations failed (threshold %.2f)" gen
          !last_failed !last_attempted gu.failure_threshold
      in
      if Trace.enabled () then
        Trace.emit (label ^ ".degraded")
          ~fields:
            [
              ("gen", Event.Int gen);
              ("failed", Event.Int !last_failed);
              ("attempted", Event.Int !last_attempted);
              ("threshold", Event.Float gu.failure_threshold);
            ];
      Some reason
    | _ -> None
  in
  (* Restore a snapshot, or build generation 0 from scratch. *)
  let restored =
    match resume with
    | None -> None
    | Some load -> (
      match load () with
      | Error msg -> invalid_arg (Printf.sprintf "Evolve.run: cannot resume: %s" msg)
      | Ok (s : 'g snapshot) -> Some s)
  in
  let rng =
    match restored with
    | Some s -> Rng.of_state s.s_rng
    | None -> Rng.create params.seed
  in
  let pop = ref [||] in
  let fits = ref [||] in
  let history = ref [] in
  let note_generation gen =
    Array.iteri
      (fun i f ->
        if f < !best_fit then begin
          best_fit := f;
          best := Some (repr.r_copy !pop.(i))
        end)
      !fits;
    let p =
      {
        generation = gen;
        best_fitness = !best_fit;
        mean_fitness = Stats.mean !fits;
        evaluations = !evaluations;
      }
    in
    history := p :: !history;
    (* Telemetry is computed only when someone is listening; it reads
       counters and clocks but never writes search state. *)
    let stats =
      if Option.is_none on_stats && not (Trace.enabled ()) then None
      else begin
        let now = Trace.now () in
        let stolen = Metric.value (Metric.counter "pool.tasks_stolen") in
        let idle = Metric.value (Metric.counter "pool.idle_ns") in
        let busy = Metric.value (Metric.counter "pool.busy_ns") in
        let distinct = Hashtbl.create 16 in
        Array.iter (fun g -> Hashtbl.replace distinct (repr.r_key g) ()) !pop;
        let s =
          {
            g_gen = gen;
            g_best = !best_fit;
            g_mean = p.mean_fitness;
            g_evals = !evaluations;
            g_fresh = !last_fresh;
            g_cache_hits = !cache_hits;
            g_diversity = Float.of_int (Hashtbl.length distinct) /. Float.of_int params.pop_size;
            g_quarantined = Hashtbl.length quarantine;
            g_stolen = stolen - !prev_stolen;
            g_idle_ns = idle - !prev_idle;
            g_busy_ns = busy - !prev_busy;
            g_wall_s = now -. !last_t;
          }
        in
        prev_stolen := stolen;
        prev_idle := idle;
        prev_busy := busy;
        last_t := now;
        Some s
      end
    in
    if Trace.enabled () then begin
      let s = Option.get stats in
      Trace.emit (label ^ ".generation")
        ~fields:
          ([
             ("gen", Event.Int p.generation);
             ("best", Event.Float p.best_fitness);
             ("mean", Event.Float p.mean_fitness);
             ("evals", Event.Int p.evaluations);
             ("cache_hits", Event.Int !cache_hits);
             ("wall_s", Event.Float (Trace.now () -. t_start));
             ("fresh", Event.Int s.g_fresh);
             ("diversity", Event.Float s.g_diversity);
             ("quarantined", Event.Int s.g_quarantined);
             ("stolen", Event.Int s.g_stolen);
             ("idle_ns", Event.Int s.g_idle_ns);
             ("busy_ns", Event.Int s.g_busy_ns);
             ("gen_wall_s", Event.Float s.g_wall_s);
           ]
          @
          match (best_view, !best) with
          | Some view, Some b -> [ ("best_genome", Event.Str (view b)) ]
          | _ -> [])
    end;
    (match on_stats, stats with Some f, Some s -> f s | _ -> ());
    match on_generation with Some f -> f p | None -> ()
  in
  let write_ckpt gen =
    match save with
    | None -> ()
    | Some sv ->
      let cache_assoc =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let quarantine_keys =
        Hashtbl.fold (fun k () acc -> k :: acc) quarantine [] |> List.sort compare
      in
      sv
        {
          s_gen = gen;
          s_rng = Rng.state rng;
          s_pop = !pop;
          s_best = !best;
          s_best_fitness = !best_fit;
          s_cache = cache_assoc;
          s_quarantine = quarantine_keys;
          s_history = List.rev !history;
          s_evaluations = !evaluations;
          s_cache_hits = !cache_hits;
          s_failures = !failures;
          s_retries = !retries;
        }
  in
  let start_gen =
    match restored with
    | Some s ->
      pop := s.s_pop;
      List.iter (fun (k, v) -> Hashtbl.replace cache k v) s.s_cache;
      List.iter (fun k -> Hashtbl.replace quarantine k ()) s.s_quarantine;
      evaluations := s.s_evaluations;
      cache_hits := s.s_cache_hits;
      failures := s.s_failures;
      retries := s.s_retries;
      best := s.s_best;
      best_fit := s.s_best_fitness;
      history := List.rev s.s_history;
      fits := Array.map (fun g -> Hashtbl.find cache (repr.r_key g)) !pop;
      if Trace.enabled () then
        Trace.emit (label ^ ".resume")
          ~fields:[ ("gen", Event.Int s.s_gen); ("evals", Event.Int !evaluations) ];
      s.s_gen + 1
    | None ->
      pop := Array.init params.pop_size (fun _ -> repr.r_random rng);
      fits := evaluate_all !pop;
      note_generation 0;
      write_ckpt 0;
      (match degraded 0 with Some r -> stopped := Some r | None -> ());
      1
  in
  let select () =
    (* Tournament: best (lowest fitness) of [tournament] uniform picks. *)
    let best_i = ref (Rng.int rng params.pop_size) in
    for _ = 2 to params.tournament do
      let i = Rng.int rng params.pop_size in
      if !fits.(i) < !fits.(!best_i) then best_i := i
    done;
    !pop.(!best_i)
  in
  let exception Stop in
  (try
     for gen = start_gen to params.generations do
       if !stopped <> None then raise Stop;
       (* Elites: indices of the best [elites] individuals. *)
       let order = Array.init params.pop_size (fun i -> i) in
       Array.sort (fun a b -> compare !fits.(a) !fits.(b)) order;
       let next = Inltune_support.Vec.create () in
       for e = 0 to params.elites - 1 do
         Inltune_support.Vec.push next (repr.r_copy !pop.(order.(e)))
       done;
       while Inltune_support.Vec.length next < params.pop_size do
         let a = select () and b = select () in
         let c1, c2 =
           if Rng.chance rng params.crossover_prob then repr.r_crossover rng a b
           else (repr.r_copy a, repr.r_copy b)
         in
         Inltune_support.Vec.push next (repr.r_mutate rng c1);
         if Inltune_support.Vec.length next < params.pop_size then
           Inltune_support.Vec.push next (repr.r_mutate rng c2)
       done;
       pop := Inltune_support.Vec.to_array next;
       fits := evaluate_all !pop;
       note_generation gen;
       write_ckpt gen;
       match degraded gen with Some r -> stopped := Some r | None -> ()
     done
   with Stop -> ());
  if Trace.enabled () then
    Trace.emit (label ^ ".result")
      ~fields:
        [
          ("best", Event.Float !best_fit);
          ("evals", Event.Int !evaluations);
          ("cache_hits", Event.Int !cache_hits);
          ("failures", Event.Int !failures);
          ("wall_s", Event.Float (Trace.now () -. t_start));
        ];
  {
    s_best_genome = !best;
    s_fitness = !best_fit;
    s_progress = List.rev !history;
    s_evals = !evaluations;
    s_hits = !cache_hits;
    s_failed = !failures;
    s_quarantined = Hashtbl.length quarantine;
    s_stopped = !stopped;
  }

(* --- the paper's integer-vector GA --------------------------------------- *)

(* [run] is [run_repr] instantiated at int-array genomes with [Checkpoint]
   persistence; every stochastic operator flows through the same RNG calls in
   the same order as it always did, so seeds, checkpoints, and resumes stay
   bit-compatible with runs recorded before the engine was generalized. *)
let run ?on_generation ?on_stats ?guard ?checkpoint ?resume ?grid ~spec ~params ~fitness () =
  let repr =
    {
      r_key = Genome.key;
      r_random = Genome.random spec;
      r_crossover = crossover;
      r_mutate = mutate spec params;
      r_copy = Array.copy;
    }
  in
  let save =
    Option.map
      (fun path (s : int array snapshot) ->
        Checkpoint.write ~path
          {
            Checkpoint.gen = s.s_gen;
            rng = s.s_rng;
            pop = s.s_pop;
            best = Option.value ~default:[||] s.s_best;
            best_fitness = s.s_best_fitness;
            cache = s.s_cache;
            quarantine = s.s_quarantine;
            history = List.map progress_entry s.s_history;
            evaluations = s.s_evaluations;
            cache_hits = s.s_cache_hits;
            failures = s.s_failures;
            retries = s.s_retries;
            pop_size = params.pop_size;
            seed = params.seed;
          })
      checkpoint
  in
  let resume =
    Option.map
      (fun path () ->
        match Checkpoint.load ~path with
        | Error msg -> Error msg
        | Ok s ->
          if s.Checkpoint.pop_size <> params.pop_size || s.Checkpoint.seed <> params.seed then
            invalid_arg
              (Printf.sprintf
                 "Evolve.run: checkpoint was written with pop_size %d seed %d, params say %d/%d"
                 s.Checkpoint.pop_size s.Checkpoint.seed params.pop_size params.seed);
          if not (Array.for_all (Genome.valid spec) s.Checkpoint.pop) then
            invalid_arg "Evolve.run: checkpoint population does not fit the genome spec";
          Ok
            {
              s_gen = s.Checkpoint.gen;
              s_rng = s.Checkpoint.rng;
              s_pop = s.Checkpoint.pop;
              s_best =
                (if Array.length s.Checkpoint.best = 0 then None else Some s.Checkpoint.best);
              s_best_fitness = s.Checkpoint.best_fitness;
              s_cache = s.Checkpoint.cache;
              s_quarantine = s.Checkpoint.quarantine;
              s_history = List.map entry_progress s.Checkpoint.history;
              s_evaluations = s.Checkpoint.evaluations;
              s_cache_hits = s.Checkpoint.cache_hits;
              s_failures = s.Checkpoint.failures;
              s_retries = s.Checkpoint.retries;
            })
      resume
  in
  let r =
    run_repr ?on_generation ?on_stats ?guard ?save ?resume ?grid ~label:"ga" ~repr ~params
      ~fitness ()
  in
  {
    best = Option.value ~default:[||] r.s_best_genome;
    best_fitness = r.s_fitness;
    history = r.s_progress;
    evaluations = r.s_evals;
    cache_hits = r.s_hits;
    failures = r.s_failed;
    quarantined = r.s_quarantined;
    stopped = r.s_stopped;
  }

(* Random search with the same evaluation budget — the ablation baseline the
   GA is compared against. *)
let random_search ~spec ~budget ~seed ~fitness () =
  if budget < 1 then invalid_arg "Evolve.random_search";
  let rng = Rng.create seed in
  let best = ref (Genome.random spec rng) in
  let best_fit = ref (fitness !best) in
  for _ = 2 to budget do
    let g = Genome.random spec rng in
    let f = fitness g in
    if f < !best_fit then begin
      best := g;
      best_fit := f
    end
  done;
  (!best, !best_fit)
