module Rng = Inltune_support.Rng
module Pool = Inltune_support.Pool
module Stats = Inltune_support.Stats
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event

(* Generational genetic algorithm over integer-vector genomes, minimizing a
   fitness function — the role ECJ plays in the paper.

   One generation: keep the [elites] best individuals, then fill the
   population with offspring produced by tournament selection, one-point
   crossover and per-gene reset mutation.  Fitness evaluations are memoized
   (the GA revisits genotypes constantly) and cache misses of a generation
   are evaluated in parallel across domains. *)

type params = {
  pop_size : int;
  generations : int;
  crossover_prob : float;
  mutation_prob : float;  (* per gene: reset uniformly within its range *)
  tournament : int;
  elites : int;
  seed : int;
  domains : int option;   (* None = Pool's default; Some 1 = sequential *)
}

let default_params =
  {
    pop_size = 20;
    generations = 50;
    crossover_prob = 0.9;
    mutation_prob = 0.1;
    tournament = 2;
    elites = 2;
    seed = 42;
    domains = None;
  }

type progress = {
  generation : int;
  best_fitness : float;
  mean_fitness : float;
  evaluations : int;  (* cumulative distinct evaluations so far *)
}

type result = {
  best : int array;
  best_fitness : float;
  history : progress list;  (* oldest first *)
  evaluations : int;
  cache_hits : int;
}

let crossover rng a b =
  let n = Array.length a in
  if n < 2 then (Array.copy a, Array.copy b)
  else begin
    let cut = 1 + Rng.int rng (n - 1) in
    let child1 = Array.init n (fun i -> if i < cut then a.(i) else b.(i)) in
    let child2 = Array.init n (fun i -> if i < cut then b.(i) else a.(i)) in
    (child1, child2)
  end

let mutate spec params rng g =
  Array.mapi
    (fun i v ->
      if Rng.chance rng params.mutation_prob then
        let lo, hi = Genome.range spec i in
        Rng.range rng lo hi
      else v)
    g

let run ?on_generation ~spec ~params ~fitness () =
  if params.pop_size < 2 then invalid_arg "Evolve.run: population too small";
  if params.elites >= params.pop_size then invalid_arg "Evolve.run: too many elites";
  if params.tournament < 1 then invalid_arg "Evolve.run: tournament size must be >= 1";
  let rng = Rng.create params.seed in
  let t_start = Trace.now () in
  let cache : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let evaluations = ref 0 in
  let cache_hits = ref 0 in
  let evaluate_all pop =
    (* Partition into cached and new genotypes; evaluate the new ones in
       parallel, then read everything from the cache. *)
    let fresh = Hashtbl.create 16 in
    Array.iter
      (fun g ->
        let k = Genome.key g in
        if Hashtbl.mem cache k then incr cache_hits
        else if not (Hashtbl.mem fresh k) then Hashtbl.add fresh k g)
      pop;
    let todo = Hashtbl.fold (fun _ g acc -> g :: acc) fresh [] |> Array.of_list in
    (* Sort for a deterministic evaluation order independent of hashing. *)
    Array.sort compare todo;
    let scores = Pool.map ?domains:params.domains fitness todo in
    Array.iteri
      (fun i g ->
        Hashtbl.replace cache (Genome.key g) scores.(i);
        incr evaluations)
      todo;
    Array.map (fun g -> Hashtbl.find cache (Genome.key g)) pop
  in
  let pop = ref (Array.init params.pop_size (fun _ -> Genome.random spec rng)) in
  let fits = ref (evaluate_all !pop) in
  let best = ref !pop.(0) in
  let best_fit = ref infinity in
  let history = ref [] in
  let note_generation gen =
    Array.iteri
      (fun i f ->
        if f < !best_fit then begin
          best_fit := f;
          best := Array.copy !pop.(i)
        end)
      !fits;
    let p =
      {
        generation = gen;
        best_fitness = !best_fit;
        mean_fitness = Stats.mean !fits;
        evaluations = !evaluations;
      }
    in
    history := p :: !history;
    if Trace.enabled () then
      Trace.emit "ga.generation"
        ~fields:
          [
            ("gen", Event.Int p.generation);
            ("best", Event.Float p.best_fitness);
            ("mean", Event.Float p.mean_fitness);
            ("evals", Event.Int p.evaluations);
            ("cache_hits", Event.Int !cache_hits);
            ("wall_s", Event.Float (Trace.now () -. t_start));
          ];
    match on_generation with Some f -> f p | None -> ()
  in
  note_generation 0;
  let select () =
    (* Tournament: best (lowest fitness) of [tournament] uniform picks. *)
    let best_i = ref (Rng.int rng params.pop_size) in
    for _ = 2 to params.tournament do
      let i = Rng.int rng params.pop_size in
      if !fits.(i) < !fits.(!best_i) then best_i := i
    done;
    !pop.(!best_i)
  in
  for gen = 1 to params.generations do
    (* Elites: indices of the best [elites] individuals. *)
    let order = Array.init params.pop_size (fun i -> i) in
    Array.sort (fun a b -> compare !fits.(a) !fits.(b)) order;
    let next = Inltune_support.Vec.create () in
    for e = 0 to params.elites - 1 do
      Inltune_support.Vec.push next (Array.copy !pop.(order.(e)))
    done;
    while Inltune_support.Vec.length next < params.pop_size do
      let a = select () and b = select () in
      let c1, c2 =
        if Rng.chance rng params.crossover_prob then crossover rng a b
        else (Array.copy a, Array.copy b)
      in
      Inltune_support.Vec.push next (mutate spec params rng c1);
      if Inltune_support.Vec.length next < params.pop_size then
        Inltune_support.Vec.push next (mutate spec params rng c2)
    done;
    pop := Inltune_support.Vec.to_array next;
    fits := evaluate_all !pop;
    note_generation gen
  done;
  if Trace.enabled () then
    Trace.emit "ga.result"
      ~fields:
        [
          ("best", Event.Float !best_fit);
          ("evals", Event.Int !evaluations);
          ("cache_hits", Event.Int !cache_hits);
          ("wall_s", Event.Float (Trace.now () -. t_start));
        ];
  {
    best = !best;
    best_fitness = !best_fit;
    history = List.rev !history;
    evaluations = !evaluations;
    cache_hits = !cache_hits;
  }

(* Random search with the same evaluation budget — the ablation baseline the
   GA is compared against. *)
let random_search ~spec ~budget ~seed ~fitness () =
  if budget < 1 then invalid_arg "Evolve.random_search";
  let rng = Rng.create seed in
  let best = ref (Genome.random spec rng) in
  let best_fit = ref (fitness !best) in
  for _ = 2 to budget do
    let g = Genome.random spec rng in
    let f = fitness g in
    if f < !best_fit then begin
      best := g;
      best_fit := f
    end
  done;
  (!best, !best_fit)
