(** Integer-vector genomes with per-gene inclusive ranges. *)

type spec

(** Build a spec; raises if any range is empty. *)
val spec : (int * int) array -> spec

val length : spec -> int

(** [concat a b]: [a]'s genes followed by [b]'s (e.g. heuristic + plan). *)
val concat : spec -> spec -> spec

(** Uniform random individual within the ranges. *)
val random : spec -> Inltune_support.Rng.t -> int array

(** Clamp each gene into its range. *)
val clamp : spec -> int array -> int array

(** Whether the individual has the right arity and every gene is in range. *)
val valid : spec -> int array -> bool

(** Stable string key for memoization. *)
val key : int array -> string

(** Cardinality of the search space as a float. *)
val space_size : spec -> float

(** Inclusive range of gene [i]. *)
val range : spec -> int -> int * int
