(** Genetic-programming policy evolution over {!Tree.t} genomes.

    The tree instantiation of {!Inltune_ga.Evolve.run_repr}: same sandboxed
    fitness with quarantine, per-generation checkpoints with bit-identical
    resume ({!Ckpt}), flat genome × benchmark pool grid, and
    decision-signature fitness cache as the parameter GA — only the
    representation differs.  Trace events are ["gp.generation"] (with a
    ["best_genome"] field carrying the best tree's canonical text),
    ["gp.resume"], ["gp.degraded"], ["gp.result"]. *)

open Inltune_vm
module E = Inltune_ga.Evolve
module W = Inltune_workloads
module Objective = Inltune_core.Objective

type params = {
  pop_size : int;
  generations : int;
  crossover_prob : float;
  mutation_prob : float;     (** per individual, not per gene *)
  tournament : int;
  elites : int;
  seed : int;
  domains : int option;
  parsimony : float;         (** fitness += parsimony · tree size *)
  prefilter_margin : float;  (** dataset-agreement slack before a fresh tree
                                 is surrogate-scored instead of simulated *)
  iterations : int;          (** VM iterations per measurement *)
}

val default_params : params

type result = {
  best : Tree.t;
  best_fitness : float;
  history : E.progress list;
  evaluations : int;
  cache_hits : int;
  failures : int;
  quarantined : int;
  stopped : string option;
  prefilter_skips : int;       (** simulations avoided by the agreement
                                   pre-filter, this process only *)
  prefilter_candidates : int;  (** fresh trees the pre-filter examined *)
}

(** {!Inltune_ga.Evolve.default_guard} with transient-failure
    classification. *)
val default_guard : E.guard

(** Run the evolution.  [checkpoint]/[resume] name the JSONL snapshot file
    ({!Ckpt}); resume validates the stored [pop_size]/[seed] echo and then
    continues bit-identically.  [dataset] (flip-oracle training pairs,
    {!Inltune_policy.Dataset.to_training}) enables the agreement pre-filter:
    fresh trees whose label agreement trails the current elite's by more
    than [prefilter_margin] receive a pessimistic surrogate fitness and skip
    simulation; surrogates enter the memo cache and hence the checkpoint, so
    resumed runs replay them exactly.  Counters ["gp.prefilter_skips"] /
    ["gp.prefilter_pass"] report the filter's traffic. *)
val run :
  ?on_generation:(E.progress -> unit) ->
  ?on_stats:(E.gen_stats -> unit) ->
  ?guard:E.guard ->
  ?checkpoint:string ->
  ?resume:string ->
  ?dataset:(float array * bool) array ->
  suite:W.Suites.benchmark list ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  goal:Objective.goal ->
  params:params ->
  unit ->
  result
