(** Genetic operators over {!Tree.t} genomes.

    Ramped half-and-half initialization (grow/full halves over depths
    [3..6]), classic subtree crossover, and three-way point mutation
    (subtree replacement, Table 1 constant redraw, comparison flip).  Every
    operator consumes the generator in a fixed order and clamps its
    offspring, so populations are a pure function of the seed and all trees
    in flight satisfy {!Tree.well_formed}. *)

module Rng = Inltune_support.Rng

(** Uniform Table 1 draw: a random row of the paper's parameter table, then
    an integer in its [lo..hi] range. *)
val random_const : Rng.t -> float

(** One ramped half-and-half individual (clamped). *)
val random : Rng.t -> Tree.t

(** Number of boolean positions (preorder; comparisons are single nodes). *)
val count_bool : Tree.t -> int

(** Boolean subtree at preorder position [i]; the root when out of range. *)
val nth_bool : Tree.t -> int -> Tree.t

(** Replace the boolean subtree at preorder position [i] (not clamped —
    callers clamp the result). *)
val replace_bool : Tree.t -> int -> Tree.t -> Tree.t

val count_const : Tree.t -> int
val replace_const : Tree.t -> int -> float -> Tree.t
val count_cmp : Tree.t -> int
val flip_cmp : Tree.t -> int -> Tree.t

(** [crossover rng a b] exchanges one random boolean subtree between the
    parents.  Offspring are clamped; a child exceeding {!Tree.max_size}
    falls back to its parent. *)
val crossover : Rng.t -> Tree.t -> Tree.t -> Tree.t * Tree.t

(** [mutate ~prob rng t] fires with probability [prob] (the draw happens
    unconditionally, keeping the stream outcome-independent) and applies one
    of: boolean-subtree replacement, constant redraw, comparison flip. *)
val mutate : prob:float -> Rng.t -> Tree.t -> Tree.t
