(* Typed expression-tree genomes for genetic programming over the call-site
   feature vector (lib/policy/features): a boolean predicate — the inlining
   decision — built from comparisons over arithmetic on features and
   constants.  Two syntactic categories keep every generated, crossed-over,
   or mutated tree well-typed by construction: [num] expressions evaluate to
   a float, [t] (boolean) expressions to the accept/reject verdict.

   Trees are first-class serializable artifacts like [Plan.t]: a canonical
   single-line prefix form under an "inltune-gp v1" header, parse∘print = id,
   "%.17g" constants so values round-trip exactly, and a content digest over
   the canonical file form.  [clamp] is the decode discipline — the tree
   analogue of [Heuristic.of_array]'s Table 1 clamping: out-of-range or
   non-finite constants are clamped into [const_lo, const_hi] and subtrees
   beyond [max_depth] are pruned deterministically, so every tree in memory
   is canonical no matter how wild the genetic operator (or the file on
   disk) that produced it. *)

type cmp = Le | Gt

type nop = Add | Sub | Mul | Div | Min | Max

type num =
  | Feat of int          (* feature index into the 11-vector *)
  | Const of float
  | Arith of nop * num * num

type t =
  | True
  | False
  | Cmp of cmp * num * num
  | And of t * t
  | Or of t * t
  | Not of t

(* Constants live in Table 1's envelope: the largest parameter cap
   (CALLER_MAX_SIZE's 4000) rounded up to a power-of-two-ish bound.  Every
   feature is a non-negative count, so nothing below zero is ever a useful
   threshold. *)
let const_lo = 0.0
let const_hi = 4096.0

(* Depth counts every node, boolean and numeric alike, root = 1. *)
let max_depth = 8

(* Node-count cap; genetic operators whose offspring exceed it fall back to
   the parent (parsimony pressure handles the gradient below the cap). *)
let max_size = 96

(* --- evaluation ---------------------------------------------------------- *)

let rec eval_num x = function
  | Feat i -> x.(i)
  | Const c -> c
  | Arith (op, a, b) -> (
    let va = eval_num x a in
    let vb = eval_num x b in
    match op with
    | Add -> va +. vb
    | Sub -> va -. vb
    | Mul -> va *. vb
    | Div -> if Float.abs vb < 1e-9 then va else va /. vb (* protected division *)
    | Min -> Float.min va vb
    | Max -> Float.max va vb)

let rec eval t x =
  match t with
  | True -> true
  | False -> false
  | Cmp (Le, a, b) -> eval_num x a <= eval_num x b
  | Cmp (Gt, a, b) -> eval_num x a > eval_num x b
  | And (a, b) -> eval a x && eval b x
  | Or (a, b) -> eval a x || eval b x
  | Not a -> not (eval a x)

(* --- shape --------------------------------------------------------------- *)

let rec num_size = function
  | Feat _ | Const _ -> 1
  | Arith (_, a, b) -> 1 + num_size a + num_size b

let rec size = function
  | True | False -> 1
  | Cmp (_, a, b) -> 1 + num_size a + num_size b
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Not a -> 1 + size a

let rec num_depth = function
  | Feat _ | Const _ -> 1
  | Arith (_, a, b) -> 1 + max (num_depth a) (num_depth b)

let rec depth = function
  | True | False -> 1
  | Cmp (_, a, b) -> 1 + max (num_depth a) (num_depth b)
  | And (a, b) | Or (a, b) -> 1 + max (depth a) (depth b)
  | Not a -> 1 + depth a

(* --- the decode discipline ----------------------------------------------- *)

let clamp_const c =
  if Float.is_nan c then const_lo else Float.max const_lo (Float.min const_hi c)

(* Deterministic depth pruning keeps the leftmost leaf of an over-deep
   numeric subtree (constants clamped on the way out); an over-deep boolean
   combinator collapses to [False] — reject, the safe default, the same
   conservative direction [Inline.max_expanded_size] takes. *)
let rec num_leftmost = function
  | Feat _ as n -> n
  | Const c -> Const (clamp_const c)
  | Arith (_, a, _) -> num_leftmost a

let clamp t =
  let rec cnum budget n =
    match n with
    | Feat _ -> n
    | Const c -> Const (clamp_const c)
    | Arith (op, a, b) ->
      if budget <= 1 then num_leftmost n
      else Arith (op, cnum (budget - 1) a, cnum (budget - 1) b)
  in
  let rec cbool budget t =
    match t with
    | True | False -> t
    | Cmp (op, a, b) ->
      (* A comparison needs one level for itself and one for its operands. *)
      if budget < 2 then False else Cmp (op, cnum (budget - 1) a, cnum (budget - 1) b)
    | And (a, b) ->
      if budget < 2 then False else And (cbool (budget - 1) a, cbool (budget - 1) b)
    | Or (a, b) ->
      if budget < 2 then False else Or (cbool (budget - 1) a, cbool (budget - 1) b)
    | Not a -> if budget < 2 then False else Not (cbool (budget - 1) a)
  in
  cbool max_depth t

let rec num_well_formed ~dim = function
  | Feat i -> i >= 0 && i < dim
  | Const c -> Float.is_finite c && c >= const_lo && c <= const_hi
  | Arith (_, a, b) -> num_well_formed ~dim a && num_well_formed ~dim b

let well_formed ~dim t =
  let rec go = function
    | True | False -> true
    | Cmp (_, a, b) -> num_well_formed ~dim a && num_well_formed ~dim b
    | And (a, b) | Or (a, b) -> go a && go b
    | Not a -> go a
  in
  go t && depth t <= max_depth

(* --- canonical text form ------------------------------------------------- *)

let header = "inltune-gp v1"

let nop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Min -> "min"
  | Max -> "max"

let to_text t =
  let buf = Buffer.create 128 in
  let rec pnum = function
    | Feat i -> Buffer.add_string buf (Printf.sprintf "(feat %d)" i)
    | Const c -> Buffer.add_string buf (Printf.sprintf "(const %.17g)" c)
    | Arith (op, a, b) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (nop_name op);
      Buffer.add_char buf ' ';
      pnum a;
      Buffer.add_char buf ' ';
      pnum b;
      Buffer.add_char buf ')'
  in
  let binary name a b pa pb =
    Buffer.add_char buf '(';
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    pa a;
    Buffer.add_char buf ' ';
    pb b;
    Buffer.add_char buf ')'
  in
  let rec pbool = function
    | True -> Buffer.add_string buf "true"
    | False -> Buffer.add_string buf "false"
    | Cmp (Le, a, b) -> binary "le" a b pnum pnum
    | Cmp (Gt, a, b) -> binary "gt" a b pnum pnum
    | And (a, b) -> binary "and" a b pbool pbool
    | Or (a, b) -> binary "or" a b pbool pbool
    | Not a ->
      Buffer.add_string buf "(not ";
      pbool a;
      Buffer.add_char buf ')'
  in
  pbool t;
  Buffer.contents buf

let to_string t = header ^ "\n" ^ to_text t ^ "\n"

let digest t = Digest.to_hex (Digest.string (to_string t))

exception Bad of string

let tokenize s =
  let toks = Inltune_support.Vec.create () in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      Inltune_support.Vec.push toks (Buffer.contents buf);
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' ->
        flush ();
        Inltune_support.Vec.push toks (String.make 1 c)
      | ' ' | '\t' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  Inltune_support.Vec.to_array toks

(* Parses the canonical expression form; constants are clamped and over-deep
   subtrees pruned on the way in ([clamp]), so a successful parse always
   yields a canonical in-memory tree — print∘parse is the identity on
   anything this module ever printed. *)
let of_text ~dim s =
  let toks = tokenize s in
  let n = Array.length toks in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "token %d: %s" (!pos + 1) m))) fmt
  in
  let next what =
    if !pos >= n then fail "unexpected end of expression, expected %s" what
    else begin
      let t = toks.(!pos) in
      incr pos;
      t
    end
  in
  let expect t =
    let got = next (Printf.sprintf "%S" t) in
    if got <> t then fail "expected %S, got %S" t got
  in
  let rec pnum () =
    match next "a numeric expression" with
    | "(" ->
      let v =
        match next "a numeric operator" with
        | "feat" -> (
          let tk = next "a feature index" in
          match int_of_string_opt tk with
          | Some i when i >= 0 && i < dim -> Feat i
          | Some i -> fail "feature index %d out of range [0, %d)" i dim
          | None -> fail "bad feature index %S" tk)
        | "const" -> (
          let tk = next "a constant" in
          match float_of_string_opt tk with
          | Some c when Float.is_finite c -> Const c
          | Some _ -> fail "non-finite constant %S" tk
          | None -> fail "bad constant %S" tk)
        | ("add" | "sub" | "mul" | "div" | "min" | "max") as opn ->
          let op =
            match opn with
            | "add" -> Add
            | "sub" -> Sub
            | "mul" -> Mul
            | "div" -> Div
            | "min" -> Min
            | _ -> Max
          in
          let a = pnum () in
          let b = pnum () in
          Arith (op, a, b)
        | tk -> fail "unknown numeric operator %S" tk
      in
      expect ")";
      v
    | tk -> fail "expected \"(\", got %S" tk
  in
  let rec pbool () =
    match next "a boolean expression" with
    | "true" -> True
    | "false" -> False
    | "(" ->
      let v =
        match next "a boolean operator" with
        | ("le" | "gt") as opn ->
          let a = pnum () in
          let b = pnum () in
          Cmp ((if opn = "le" then Le else Gt), a, b)
        | "and" ->
          let a = pbool () in
          let b = pbool () in
          And (a, b)
        | "or" ->
          let a = pbool () in
          let b = pbool () in
          Or (a, b)
        | "not" -> Not (pbool ())
        | tk -> fail "unknown boolean operator %S" tk
      in
      expect ")";
      v
    | tk -> fail "unknown boolean leaf %S" tk
  in
  if n = 0 then Error "empty expression"
  else
    match pbool () with
    | t ->
      if !pos < n then
        Error (Printf.sprintf "token %d: trailing %S after expression" (!pos + 1) toks.(!pos))
      else Ok (clamp t)
    | exception Bad m -> Error m

(* File form: header line, expression line, nothing else.  Errors are
   one-line and carry the 1-based line number, matching the plan/policy
   artifact convention. *)
let of_string ~dim s =
  match String.split_on_char '\n' s with
  | [] -> Error "line 1: empty file"
  | first :: rest ->
    if String.trim first <> header then
      Error (Printf.sprintf "line 1: expected header %S, got %S" header (String.trim first))
    else (
      match rest with
      | [] -> Error "line 2: missing expression"
      | expr :: tail -> (
        let rec garbage i = function
          | [] -> None
          | l :: ls -> if String.trim l <> "" then Some i else garbage (i + 1) ls
        in
        match garbage 3 tail with
        | Some i -> Error (Printf.sprintf "line %d: trailing garbage after expression" i)
        | None -> (
          if String.trim expr = "" then Error "line 2: missing expression"
          else
            match of_text ~dim expr with
            | Ok t -> Ok t
            | Error m -> Error ("line 2: " ^ m))))

let load ~dim path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | s -> of_string ~dim s

let save path t = Out_channel.with_open_bin path (fun oc -> output_string oc (to_string t))

(* --- human-readable rendering -------------------------------------------- *)

let nop_sym = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"

let pretty ~names t =
  let rec pnum = function
    | Feat i -> if i >= 0 && i < Array.length names then names.(i) else Printf.sprintf "f%d" i
    | Const c -> Printf.sprintf "%g" c
    | Arith (((Min | Max) as op), a, b) ->
      Printf.sprintf "%s(%s, %s)" (nop_sym op) (pnum a) (pnum b)
    | Arith (op, a, b) -> Printf.sprintf "(%s %s %s)" (pnum a) (nop_sym op) (pnum b)
  in
  let rec pbool = function
    | True -> "true"
    | False -> "false"
    | Cmp (Le, a, b) -> Printf.sprintf "(%s <= %s)" (pnum a) (pnum b)
    | Cmp (Gt, a, b) -> Printf.sprintf "(%s > %s)" (pnum a) (pnum b)
    | And (a, b) -> Printf.sprintf "(%s && %s)" (pbool a) (pbool b)
    | Or (a, b) -> Printf.sprintf "(%s || %s)" (pbool a) (pbool b)
    | Not a -> Printf.sprintf "!%s" (pbool a)
  in
  pbool t
