(** Fitness of tree genomes: decode → unchanged VM → geomean-vs-default
    score with parsimony pressure.

    Measurements route through the decision-signature fitness cache
    ({!Inltune_core.Fitcache.lookup_or_measure_policy}, [~static:true]):
    under Opt, structurally different trees making identical decisions share
    one simulation — including with plain heuristics. *)

open Inltune_vm
module W = Inltune_workloads
module Measure = Inltune_core.Measure
module Objective = Inltune_core.Objective

(** Measure one benchmark under the tree's decoded policy (cached). *)
val measure :
  ?iterations:int ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  Tree.t ->
  W.Suites.benchmark ->
  Measure.times

(** Geomean of per-benchmark cells plus [parsimony · size]. *)
val score : parsimony:float -> Tree.t -> float array -> float

(** Per-benchmark grid for the evolution engine's work pool; baselines are
    forced eagerly on the calling domain.  Cells are NaN under an injected
    evaluation fault (resilience tests). *)
val grid :
  ?iterations:int ->
  suite:W.Suites.benchmark list ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  goal:Objective.goal ->
  parsimony:float ->
  unit ->
  (Tree.t, W.Suites.benchmark * Measure.times) Inltune_ga.Evolve.grid

(** Scalar fitness computing the same float operations as {!grid} (used
    when no work pool is wanted). *)
val fitness :
  ?iterations:int ->
  suite:W.Suites.benchmark list ->
  scenario:Machine.scenario ->
  platform:Platform.t ->
  goal:Objective.goal ->
  parsimony:float ->
  unit ->
  Tree.t ->
  float
