(** Typed expression-tree genomes for genetic-programming policy search.

    Where the GA (lib/ga) tunes the {e parameters} of the paper's fixed
    Fig. 3/4 rule, these trees are the rule itself: a boolean predicate over
    the call-site feature vector ({!Inltune_policy.Features}), free to
    discover structure the hand-written heuristic lacks.  Two syntactic
    categories — numeric expressions and boolean combinators — keep every
    genome well-typed under crossover and mutation.

    Trees are serializable artifacts like plans and policy stores: canonical
    single-line prefix text under an ["inltune-gp v1"] header, parse∘print =
    id, ["%.17g"] constants, one-line line-numbered parse errors, and a
    content {!digest} over the file form. *)

type cmp = Le | Gt

type nop = Add | Sub | Mul | Div | Min | Max

type num =
  | Feat of int                (** feature index into {!Inltune_policy.Features.names} *)
  | Const of float
  | Arith of nop * num * num

type t =
  | True
  | False
  | Cmp of cmp * num * num
  | And of t * t
  | Or of t * t
  | Not of t

(** Constants are clamped into [[const_lo, const_hi]] — Table 1's envelope
    (the largest parameter cap rounded up). *)
val const_lo : float

val const_hi : float

(** Depth cap counting every node (boolean and numeric), root at 1.
    {!clamp} prunes deeper trees deterministically. *)
val max_depth : int

(** Node-count cap; genetic operators fall back to the parent when an
    offspring would exceed it. *)
val max_size : int

(** [eval t x] decides a call site from its feature vector.  Division is
    protected (divisor magnitudes below 1e-9 return the dividend), so
    evaluation is total and finite on finite inputs. *)
val eval : t -> float array -> bool

val size : t -> int
val depth : t -> int
val num_size : num -> int
val num_depth : num -> int

(** The decode discipline — the tree analogue of [Heuristic.of_array]'s
    Table 1 clamping.  Non-finite constants become {!const_lo}, out-of-range
    ones clamp to the nearest bound; numeric subtrees past the depth budget
    collapse to their leftmost leaf, boolean ones to [False] (reject, the
    conservative direction).  Deterministic and idempotent; every tree this
    module parses or the genetic operators produce has it applied. *)
val clamp : t -> t

(** All feature indices in range, all constants finite and in range, depth
    within {!max_depth} — the invariant {!clamp} establishes. *)
val well_formed : dim:int -> t -> bool

(** ["inltune-gp v1"], the first line of the file form. *)
val header : string

(** Canonical single-line expression form, e.g.
    [(and (le (feat 0) (const 23)) (gt (feat 3) (const 0)))]. *)
val to_text : t -> string

(** Full file form: {!header}, newline, {!to_text}, newline. *)
val to_string : t -> string

(** Hex content digest of {!to_string} — the genome's identity for the
    fitness cache, checkpoints, and quarantine. *)
val digest : t -> string

(** Parse the expression form (no header).  Errors are one-line,
    token-indexed.  The result is {!clamp}ed, so printing it reproduces the
    canonical form. *)
val of_text : dim:int -> string -> (t, string) result

(** Parse the file form.  Errors are one-line and carry the 1-based line
    number (["line 1: expected header ..."], ["line 2: token 4: ..."]). *)
val of_string : dim:int -> string -> (t, string) result

val load : dim:int -> string -> (t, string) result
val save : string -> t -> unit

(** Infix rendering with feature names, for human eyes only
    (e.g. [(callee_size <= 23)]). *)
val pretty : names:string array -> t -> string
