(* Fitness of a tree genome: decode to a static policy, run the benchmark
   through the unchanged VM under [Machine.config ~policy_factory], and
   score against the memoized default-heuristic baseline — the same
   geomean-vs-default objective the GA optimizes, plus parsimony pressure
   (α · tree size) so equally-fit smaller rules win.

   Measurements route through [Fitcache.lookup_or_measure_policy] with
   [~static:true]: under Opt the cache key is the exact decision walk, so
   structurally different trees making identical decisions — the dominant
   case late in a GP run — cost one simulation between them, and even share
   entries with plain heuristics that decide the same way. *)

module W = Inltune_workloads
module Measure = Inltune_core.Measure
module Fitcache = Inltune_core.Fitcache
module Objective = Inltune_core.Objective
module Metric = Inltune_obs.Metric
module Stats = Inltune_support.Stats
module Features = Inltune_policy.Features
open Inltune_opt
open Inltune_vm

(* Feature contexts are per-program static analyses; memoize them by
   physical program identity (suite programs are shared values), mirroring
   Fitcache's per-program info table. *)
let ctx_mu = Mutex.create ()
let ctxs : (Inltune_jir.Ir.program * Features.ctx) list ref = ref []

let ctx_of prog =
  Mutex.lock ctx_mu;
  let ctx =
    match List.find_opt (fun (p, _) -> p == prog) !ctxs with
    | Some (_, ctx) -> ctx
    | None ->
      let ctx = Features.make_ctx prog in
      ctxs := (prog, ctx) :: !ctxs;
      ctx
  in
  Mutex.unlock ctx_mu;
  ctx

let measure ?(iterations = 3) ~scenario ~platform tree bm =
  let prog = W.Suites.program bm in
  let ctx = ctx_of prog in
  let policy = Decode.policy ~ctx tree in
  let cfg = Machine.config ~policy_factory:(fun _ -> policy) scenario Heuristic.default in
  Measure.of_measurement
    (Fitcache.lookup_or_measure_policy ~scenario ~platform ~policy ~digest:(Tree.digest tree)
       ~static:true ~inline_enabled:true ~plan:Plan.default ~iterations ~program:prog
       (fun () ->
         Metric.incr (Metric.counter "measure.simulations");
         Runner.measure ~iterations cfg platform prog))

let score ~parsimony tree cells =
  Stats.geomean cells +. (parsimony *. Float.of_int (Tree.size tree))

(* Baselines are forced eagerly on the calling domain (run_default is
   memoized), so worker-domain evaluations never race the memo fill. *)
let baselines ~iterations ~scenario ~platform suite =
  List.map (fun bm -> (bm, Measure.run_default ~iterations ~scenario ~platform bm)) suite

let grid ?(iterations = 3) ~suite ~scenario ~platform ~goal ~parsimony () =
  let base = baselines ~iterations ~scenario ~platform suite in
  {
    Inltune_ga.Evolve.grid_axis = Array.of_list base;
    grid_cell =
      (fun tree (bm, default) ->
        if Objective.eval_fault_gate () then Float.nan
        else Objective.perf goal ~t:(measure ~iterations ~scenario ~platform tree bm) ~default);
    grid_combine = (fun tree cells -> score ~parsimony tree cells);
  }

let fitness ?(iterations = 3) ~suite ~scenario ~platform ~goal ~parsimony () =
  let base = baselines ~iterations ~scenario ~platform suite in
  fun tree ->
    if Objective.eval_fault_gate () then Float.nan
    else begin
      let cells =
        List.map
          (fun (bm, default) ->
            Objective.perf goal ~t:(measure ~iterations ~scenario ~platform tree bm) ~default)
          base
      in
      score ~parsimony tree (Array.of_list cells)
    end
